// Command appx-trace works with user-study traces: it generates the seeded
// synthetic study (the stand-in for the paper's 30 recorded participants),
// inspects trace files, and replays them against a running acceleration
// proxy, reporting per-interaction latencies.
//
// Usage:
//
//	appx-trace -app wish -generate -users 30 -duration 3m -o traces/
//	appx-trace -inspect traces/wish-u00.json
//	appx-trace -app wish -replay traces/wish-u00.json -proxy 127.0.0.1:8080 -speed 10
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"appx/internal/apps"
	"appx/internal/device"
	"appx/internal/interp"
	"appx/internal/netem"
	"appx/internal/trace"
)

func main() {
	var (
		appName  = flag.String("app", "", "built-in app")
		generate = flag.Bool("generate", false, "generate the synthetic user study")
		users    = flag.Int("users", 30, "number of users to generate")
		duration = flag.Duration("duration", 3*time.Minute, "session length per user")
		seed     = flag.Int64("seed", 1, "generation seed")
		out      = flag.String("o", "traces", "output directory for generated traces")
		inspect  = flag.String("inspect", "", "print a summary of a trace file")
		replay   = flag.String("replay", "", "replay a trace file against -proxy")
		proxy    = flag.String("proxy", "127.0.0.1:8080", "proxy address for replay")
		speed    = flag.Float64("speed", 1, "think-time compression during replay")
		scale    = flag.Float64("scale", 1, "render-delay scale during replay")
	)
	flag.Parse()

	if err := run(*appName, *generate, *users, *duration, *seed, *out, *inspect, *replay, *proxy, *speed, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "appx-trace:", err)
		os.Exit(1)
	}
}

func run(appName string, generate bool, users int, duration time.Duration, seed int64,
	out, inspect, replay, proxyAddr string, speed, scale float64,
) error {
	switch {
	case inspect != "":
		return runInspect(inspect)
	case generate:
		return runGenerate(appName, users, duration, seed, out)
	case replay != "":
		return runReplay(appName, replay, proxyAddr, speed, scale)
	default:
		return fmt.Errorf("one of -generate, -inspect, or -replay is required")
	}
}

func runGenerate(appName string, users int, duration time.Duration, seed int64, out string) error {
	a := apps.ByName(appName)
	if a == nil {
		return fmt.Errorf("unknown app %q", appName)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	traces := trace.GenerateStudy(a.APK, users, seed, duration)
	for _, tr := range traces {
		b, err := tr.Marshal()
		if err != nil {
			return err
		}
		path := filepath.Join(out, fmt.Sprintf("%s-%s.json", a.Name, tr.User))
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d traces to %s\n", len(traces), out)
	return nil
}

func runInspect(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	tr, err := trace.Unmarshal(b)
	if err != nil {
		return err
	}
	var taps, mains, backs int
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.Tap:
			taps++
			if e.Main {
				mains++
			}
		case trace.BackNav:
			backs++
		}
	}
	fmt.Printf("app=%s user=%s events=%d taps=%d main-interactions=%d backs=%d duration~%s\n",
		tr.App, tr.User, len(tr.Events), taps, mains, backs, tr.Duration().Round(time.Second))
	return nil
}

func runReplay(appName, path, proxyAddr string, speed, scale float64) error {
	a := apps.ByName(appName)
	if a == nil {
		return fmt.Errorf("unknown app %q", appName)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	tr, err := trace.Unmarshal(b)
	if err != nil {
		return err
	}
	d, err := device.New(device.Config{
		APK:         a.APK,
		RenderDelay: a.RenderDelay,
		Scale:       scale,
		ProxyAddr:   proxyAddr,
		ClientLink:  scaleLink(netem.Mobile4G(), scale),
		User:        tr.User,
		Props: interp.DeviceProps{
			UserAgent:  "AppxTrace/1.0",
			Locale:     "en-US",
			AppVersion: a.APK.Manifest.Version,
		},
	})
	if err != nil {
		return err
	}
	results := trace.Replay(d, tr, speed)
	for _, m := range results {
		if m.Err != nil {
			fmt.Printf("%-8s %-12s ERROR %v\n", m.Event.Kind, m.Event.Widget, m.Err)
			continue
		}
		tag := ""
		if m.Event.Main {
			tag = " [main]"
		}
		fmt.Printf("%-8s %-12s total=%v network=%v%s\n",
			m.Event.Kind, m.Event.Widget, m.Measure.Total.Round(time.Millisecond),
			m.Measure.Network.Round(time.Millisecond), tag)
	}
	return nil
}

func scaleLink(l netem.Link, s float64) netem.Link {
	if s <= 0 {
		s = 1
	}
	out := netem.Link{RTT: time.Duration(float64(l.RTT) * s)}
	if l.Bandwidth > 0 {
		out.Bandwidth = int64(float64(l.Bandwidth) / s)
	}
	return out
}
