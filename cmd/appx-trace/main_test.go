package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestGenerateAndInspect(t *testing.T) {
	dir := t.TempDir()
	if err := run("wish", true, 3, time.Minute, 7, dir, "", "", "", 1, 1); err != nil {
		t.Fatalf("generate: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("traces = %d, want 3", len(entries))
	}
	if err := run("", false, 0, 0, 0, "", filepath.Join(dir, entries[0].Name()), "", "", 1, 1); err != nil {
		t.Fatalf("inspect: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", false, 0, 0, 0, "", "", "", "", 1, 1); err == nil {
		t.Fatal("no mode accepted")
	}
	if err := run("nope", true, 1, time.Minute, 1, t.TempDir(), "", "", "", 1, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := run("", false, 0, 0, 0, "", filepath.Join(t.TempDir(), "missing.json"), "", "", 1, 1); err == nil {
		t.Fatal("missing trace accepted")
	}
	if err := run("nope", false, 0, 0, 0, "", "", "some.json", "", 1, 1); err == nil {
		t.Fatal("replay with unknown app accepted")
	}
}
