package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"appx/internal/cluster"
	"appx/internal/config"
	"appx/internal/httpmsg"
	"appx/internal/persist"
	"appx/internal/proxy"
	"appx/internal/sig"
)

// TestGracefulShutdown: cancelling serve's parent context (the test stand-in
// for SIGTERM) lets an in-flight request finish with its real response,
// refuses requests that arrive during the drain, and returns nil — a clean
// exit with nothing dropped.
func TestGracefulShutdown(t *testing.T) {
	entered := make(chan struct{})
	var once sync.Once
	up := proxy.UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Path == "/slow" {
			once.Do(func() { close(entered) })
			// Long enough that the shutdown signal definitely lands while
			// this request is still in flight.
			time.Sleep(200 * time.Millisecond)
		}
		return &httpmsg.Response{Status: 200, Body: []byte("origin:" + r.Path)}, nil
	})
	g := sig.NewGraph("t")
	px := proxy.New(proxy.Options{Graph: g, Config: config.Default(g), Upstream: up, DisablePrefetch: true})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- serve(ctx, px, ln, options{drainTimeout: 5 * time.Second})
	}()

	proxyURL := &url.URL{Scheme: "http", Host: ln.Addr().String()}
	client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)}}

	inflight := make(chan error, 1)
	go func() {
		resp, err := client.Get("http://app.example/slow")
		if err != nil {
			inflight <- err
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 || string(body) != "origin:/slow" {
			inflight <- fmt.Errorf("in-flight request got %d %q", resp.StatusCode, body)
			return
		}
		inflight <- nil
	}()
	<-entered

	// The shutdown signal arrives while /slow is still being served.
	cancel()
	// Wait for the drain to take effect, then verify new work is refused
	// while the old request is still completing.
	deadline := time.Now().Add(time.Second)
	for !px.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !px.Draining() {
		t.Fatal("proxy never entered draining after context cancel")
	}
	if resp, err := client.Get("http://app.example/late"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Fatalf("request during drain = %d, want 503", resp.StatusCode)
		}
	}

	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request dropped during shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v, want nil on clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain")
	}
}

// TestShutdownLeavesNoGoroutines: a full serve lifecycle — prune loop,
// cache sweeper, prefetch workers, snapshot loop, disk-tier spill worker —
// must stop every goroutine it started by the time serve returns. The old
// code returned without waiting for the prune loop; this pins the fix.
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	up := proxy.UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		return &httpmsg.Response{Status: 200, Body: []byte("ok")}, nil
	})
	baseline := runtime.NumGoroutine()

	g := sig.NewGraph("t")
	px := proxy.New(proxy.Options{
		Graph: g, Config: config.Default(g), Upstream: up,
		StateDir:         t.TempDir(),
		SnapshotInterval: 10 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- serve(ctx, px, ln, options{
			drainTimeout:  5 * time.Second,
			pruneInterval: 5 * time.Millisecond,
			pruneMaxIdle:  time.Minute,
		})
	}()

	proxyURL := &url.URL{Scheme: "http", Host: ln.Addr().String()}
	client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)}}
	if resp, err := client.Get("http://app.example/x"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	client.CloseIdleConnections()
	// Let the prune and snapshot loops demonstrably tick before shutdown.
	time.Sleep(30 * time.Millisecond)

	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return")
	}

	// Idle HTTP transport goroutines unwind asynchronously; poll briefly.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	var sb strings.Builder
	pprof.Lookup("goroutine").WriteTo(&sb, 1)
	t.Fatalf("goroutines leaked after shutdown: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), sb.String())
}

// TestShutdownAbortsClusterProbes pins the shutdown ordering for cluster
// mode: BeginDrain closes the cluster (cancelling its in-flight probes and
// forwards) before the final state snapshot is written and before serve
// returns. A peer that accepts connections but never answers would
// otherwise hold a probe for the full 30s probe timeout and stall the exit.
func TestShutdownAbortsClusterProbes(t *testing.T) {
	// A peer that reads nothing and writes nothing: probes to it hang until
	// their context is cancelled.
	hung, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer hung.Close()
	go func() {
		for {
			c, err := hung.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	up := proxy.UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		return &httpmsg.Response{Status: 200, Body: []byte("ok")}, nil
	})
	g := sig.NewGraph("t")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	stateDir := t.TempDir()
	px := proxy.New(proxy.Options{
		Graph: g, Config: config.Default(g), Upstream: up,
		StateDir: stateDir,
		Cluster: cluster.Config{
			Self:          ln.Addr().String(),
			Peers:         []string{ln.Addr().String(), hung.Addr().String()},
			ProbeInterval: 10 * time.Millisecond,
			ProbeTimeout:  30 * time.Second, // shutdown must not wait this out
		},
	})

	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- serve(ctx, px, ln, options{drainTimeout: 5 * time.Second})
	}()
	// Let at least one probe to the hung peer get in flight.
	time.Sleep(50 * time.Millisecond)

	start := time.Now()
	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v, want nil", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("serve stuck behind a hung cluster probe")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shutdown took %v with a hung peer; cluster close must abort probes", elapsed)
	}
	// BeginDrain snapshots after the cluster is down: the final state must
	// be on disk.
	if _, err := os.Stat(filepath.Join(stateDir, persist.SnapshotFile)); err != nil {
		t.Fatalf("final drain snapshot missing: %v", err)
	}
}
