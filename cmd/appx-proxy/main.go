// Command appx-proxy runs the APPx acceleration proxy for one app.
//
// In emulation mode (the default) it also starts the app's origin servers in
// process behind emulated WAN links, so the whole §2 deployment — device,
// edge proxy, remote origins — is reachable from one machine:
//
//	appx-proxy -app wish -listen 127.0.0.1:8080
//	curl -x http://127.0.0.1:8080 http://api.wish.example/api/get-feed -X POST -d offset=0
//
// With -origin mappings the proxy fronts externally running origins instead:
//
//	appx-proxy -app wish -listen :8080 -origin api.wish.example=10.0.0.5:80,img.wish.example=10.0.0.6:80
//
// Signatures and configuration default to running Phase 1 (and optionally
// Phase 2 with -verify) at startup; pass -sigs/-config to use files from
// appx-analyze / appx-verify.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"appx/internal/apps"
	"appx/internal/config"
	"appx/internal/netem"
	"appx/internal/proxy"
	"appx/internal/sig"
	"appx/internal/static"
	"appx/internal/verify"
)

func main() {
	var (
		appName  = flag.String("app", "", "built-in app to accelerate")
		listen   = flag.String("listen", "127.0.0.1:8080", "proxy listen address")
		sigsPath = flag.String("sigs", "", "signature graph JSON (default: analyze at startup)")
		cfgPath  = flag.String("config", "", "proxy configuration JSON (default: derived)")
		origins  = flag.String("origin", "", "comma-separated host=addr overrides; empty = start built-in origins in process")
		doVerify = flag.Bool("verify", false, "run Phase 2 verification before serving")
		scale    = flag.Float64("scale", 1, "emulated time scale for in-process origins")
		workers  = flag.Int("workers", 8, "prefetch worker pool size")
	)
	flag.Parse()

	if err := run(*appName, *listen, *sigsPath, *cfgPath, *origins, *doVerify, *scale, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "appx-proxy:", err)
		os.Exit(1)
	}
}

func run(appName, listen, sigsPath, cfgPath, origins string, doVerify bool, scale float64, workers int) error {
	a := apps.ByName(appName)
	if a == nil {
		return fmt.Errorf("unknown app %q", appName)
	}

	g, err := loadGraph(a, sigsPath)
	if err != nil {
		return err
	}

	var cfg *config.Config
	switch {
	case cfgPath != "":
		b, err := os.ReadFile(cfgPath)
		if err != nil {
			return err
		}
		cfg, err = config.Unmarshal(b)
		if err != nil {
			return err
		}
	case doVerify:
		rep, err := verify.Run(verify.Options{
			APK: a.APK, Graph: g, Origin: a.Handler(scale),
			FuzzEvents: 200, ProbeMax: time.Second,
		})
		if err != nil {
			return fmt.Errorf("verification: %w", err)
		}
		cfg = rep.Config
		fmt.Fprintf(os.Stderr, "verification: %d cleared, %d disabled\n", len(rep.Verified), len(rep.Disabled))
	default:
		cfg = config.Default(g)
	}

	resolve := map[string]string{}
	links := map[string]netem.Link{}
	if origins == "" {
		// Emulation mode: start the app's origins in process.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: a.Handler(scale)}
		go srv.Serve(ln)
		for _, h := range a.Hosts {
			resolve[h] = ln.Addr().String()
			links[h] = netem.Link{
				RTT:       time.Duration(float64(a.HostRTT[h]) * scale),
				Bandwidth: int64(25_000_000 / scale),
			}
		}
		fmt.Fprintf(os.Stderr, "origins for %s emulated at %s (hosts: %s)\n",
			a.Name, ln.Addr(), strings.Join(a.Hosts, ", "))
	} else {
		for _, pair := range strings.Split(origins, ",") {
			kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("bad -origin entry %q (want host=addr)", pair)
			}
			resolve[kv[0]] = kv[1]
		}
	}

	px := proxy.New(proxy.Options{
		Graph:    g,
		Config:   cfg,
		Upstream: proxy.NewNetUpstream(resolve, links),
		Workers:  workers,
	})
	defer px.Close()

	fmt.Fprintf(os.Stderr, "appx-proxy for %s listening on %s (%d signatures, %d prefetchable)\n",
		a.Name, listen, len(g.Sigs), len(g.Prefetchable()))
	return http.ListenAndServe(listen, px)
}

func loadGraph(a *apps.App, sigsPath string) (*sig.Graph, error) {
	if sigsPath != "" {
		b, err := os.ReadFile(sigsPath)
		if err != nil {
			return nil, err
		}
		return sig.Unmarshal(b)
	}
	return static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
}
