// Command appx-proxy runs the APPx acceleration proxy for one app.
//
// In emulation mode (the default) it also starts the app's origin servers in
// process behind emulated WAN links, so the whole §2 deployment — device,
// edge proxy, remote origins — is reachable from one machine:
//
//	appx-proxy -app wish -listen 127.0.0.1:8080
//	curl -x http://127.0.0.1:8080 http://api.wish.example/api/get-feed -X POST -d offset=0
//
// With -origin mappings the proxy fronts externally running origins instead:
//
//	appx-proxy -app wish -listen :8080 -origin api.wish.example=10.0.0.5:80,img.wish.example=10.0.0.6:80
//
// Signatures and configuration default to running Phase 1 (and optionally
// Phase 2 with -verify) at startup; pass -sigs/-config to use files from
// appx-analyze / appx-verify.
//
// The origin path is resilient: idempotent requests are retried with
// jittered backoff, per-host circuit breakers shed traffic to sick origins,
// and failing prefetch signatures back off. The -retry-*, -breaker-* and
// -prefetch-backoff-* flags override the config file's resilience section;
// -fault injects deterministic connect failures for resilience drills:
//
//	appx-proxy -app wish -fault api.wish.example=0.3 -fault-seed 7
//
// The admin API is versioned under /appx/v1 (served directly, not
// proxied): /appx/v1/health reports breaker states, suspended signatures,
// and the overload mode; /appx/v1/stats adds cache and request-lifecycle
// telemetry; /appx/v1/spans returns the most recent per-request spans
// (-span-buffer bounds the ring); /appx/v1/metrics is the same registry in
// Prometheus text format. The pre-versioning /appx/health and /appx/stats
// paths 307-redirect to their v1 successors with a Deprecation header.
//
// The proxy protects itself under overload: -max-concurrent bounds
// concurrently served client requests (arrivals past it wait at most
// -admission-wait before a 503), and an AIMD governor scales speculative
// prefetching down when the prefetch queue, client p95 (-target-p95), or
// admission sheds signal pressure. Queued prefetches older than
// -prefetch-queue-deadline are dropped at dispatch (the old -queue-deadline
// spelling still works and logs a deprecation note).
//
// Prefetch decisions run through a pluggable policy (-prefetch-policy):
// "static" issues candidates in dependency-graph order, "markov" learns a
// per-user first-order transition model and reorders/prunes chains by
// observed behaviour (-policy-decay sets the history half-life,
// -policy-max-users bounds the model's footprint).
//
// Cluster mode scales the proxy across instances: -cluster-self names this
// instance, -cluster-peers the static fleet seed list (the same value works
// on every instance), and the fleet forms a consistent-hash ring
// (-cluster-vnodes) that pins each user's learned state to one owner.
// Requests landing on a non-owner are relayed there; user-agnostic cache
// misses try ring siblings (-cluster-replicas of them) before the origin.
// Peers are health-probed every -cluster-probe-interval over /appx/v1/health
// and dead instances are rebalanced around without failing foreground
// requests:
//
//	appx-proxy -app wish -listen 127.0.0.1:7001 \
//	  -cluster-self 127.0.0.1:7001 -cluster-peers 127.0.0.1:7001,127.0.0.1:7002
//
// Shutdown is graceful: on SIGINT/SIGTERM the proxy stops admitting new
// proxied requests, finishes the in-flight ones (bounded by
// -drain-timeout), then exits cleanly. A background loop prunes user states
// idle longer than -prune-max-idle every -prune-interval.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"appx/internal/apps"
	"appx/internal/cluster"
	"appx/internal/config"
	"appx/internal/netem"
	"appx/internal/proxy"
	"appx/internal/sig"
	"appx/internal/static"
	"appx/internal/verify"
)

// options collects the command-line configuration.
type options struct {
	appName  string
	listen   string
	sigsPath string
	cfgPath  string
	origins  string
	doVerify bool
	scale    float64
	workers  int

	spanBuffer int

	// Resilience overrides; zero values defer to -config / built-in defaults.
	retryAttempts       int
	retryBase           time.Duration
	attemptTimeout      time.Duration
	breakerFailures     int
	breakerOpen         time.Duration
	prefetchFailLimit   int
	prefetchBackoffBase time.Duration
	prefetchBackoffMax  time.Duration

	// Prefetch flag group: every knob shaping what (and how eagerly) the
	// proxy prefetches registers together in prefetchFlags.
	prefetch prefetchFlags

	// Cache overrides; zero values defer to -config / built-in defaults,
	// negative values disable the corresponding bound.
	cacheMaxBytes    int64
	cacheUserBytes   int64
	cacheUserEntries int
	cacheShards      int
	cacheSweep       time.Duration
	cacheNoShared    bool

	// Overload overrides; zero values defer to -config / built-in defaults.
	maxConcurrent    int
	admissionWait    time.Duration
	targetP95        time.Duration
	governorInterval time.Duration

	// Lifecycle.
	drainTimeout  time.Duration
	pruneInterval time.Duration
	pruneMaxIdle  time.Duration

	// Persistence.
	stateDir         string
	snapshotInterval time.Duration

	// Fault injection (resilience drills).
	fault     string
	faultSeed int64

	// Cluster mode.
	clusterSelf          string
	clusterPeers         string
	clusterVNodes        int
	clusterReplicas      int
	clusterProbeInterval time.Duration

	// Latency-budget and hedging knobs.
	requestBudget time.Duration
	hedgeDelay    time.Duration
	hedgeRateCap  float64
	noHedging     bool

	// Streaming data plane.
	streamChunkBytes int
	captureMaxBytes  int64
	maxBodyBytes     int64
}

func main() {
	var o options
	flag.StringVar(&o.appName, "app", "", "built-in app to accelerate")
	flag.StringVar(&o.listen, "listen", "127.0.0.1:8080", "proxy listen address")
	flag.StringVar(&o.sigsPath, "sigs", "", "signature graph JSON (default: analyze at startup)")
	flag.StringVar(&o.cfgPath, "config", "", "proxy configuration JSON (default: derived)")
	flag.StringVar(&o.origins, "origin", "", "comma-separated host=addr overrides; empty = start built-in origins in process")
	flag.BoolVar(&o.doVerify, "verify", false, "run Phase 2 verification before serving")
	flag.Float64Var(&o.scale, "scale", 1, "emulated time scale for in-process origins")
	flag.IntVar(&o.workers, "workers", 8, "prefetch worker pool size")
	flag.IntVar(&o.spanBuffer, "span-buffer", 0, "recent request spans kept for /appx/v1/spans (0 = default 1024)")

	flag.IntVar(&o.retryAttempts, "retry-attempts", 0, "total tries per idempotent origin request, including the first (0 = config default)")
	flag.DurationVar(&o.retryBase, "retry-base", 0, "base delay of the jittered exponential retry backoff (0 = config default)")
	flag.DurationVar(&o.attemptTimeout, "attempt-timeout", 0, "per-attempt origin deadline (0 = config default)")
	flag.IntVar(&o.breakerFailures, "breaker-failures", 0, "consecutive failures that open a host's circuit breaker (0 = config default)")
	flag.DurationVar(&o.breakerOpen, "breaker-open", 0, "how long an open breaker waits before probing the host again (0 = config default)")
	flag.IntVar(&o.prefetchFailLimit, "prefetch-failure-limit", 0, "consecutive failures that suspend a prefetch signature (0 = config default)")
	flag.DurationVar(&o.prefetchBackoffBase, "prefetch-backoff-base", 0, "initial suspension of a failing prefetch signature (0 = config default)")
	flag.DurationVar(&o.prefetchBackoffMax, "prefetch-backoff-max", 0, "suspension cap for a failing prefetch signature (0 = config default)")
	o.prefetch.register(flag.CommandLine)

	flag.Int64Var(&o.cacheMaxBytes, "cache-max-bytes", 0, "global prefetch-store byte budget (0 = config default, <0 = unlimited)")
	flag.Int64Var(&o.cacheUserBytes, "cache-user-bytes", 0, "per-user resident-byte cap (0 = config default, <0 = uncapped)")
	flag.IntVar(&o.cacheUserEntries, "cache-user-entries", 0, "per-user entry cap (0 = config default, <0 = uncapped)")
	flag.IntVar(&o.cacheShards, "cache-shards", 0, "prefetch-store lock-partition count (0 = config default)")
	flag.DurationVar(&o.cacheSweep, "cache-sweep", 0, "background expiry-sweep period (0 = config default, <0 = disabled)")
	flag.BoolVar(&o.cacheNoShared, "cache-no-shared", false, "disable the cross-user shared cache tier")

	flag.IntVar(&o.maxConcurrent, "max-concurrent", 0, "concurrently served client requests before admission 503s (0 = config default, <0 = unbounded)")
	flag.DurationVar(&o.admissionWait, "admission-wait", 0, "how long an arriving request may wait for an admission slot (0 = config default)")
	flag.DurationVar(&o.targetP95, "target-p95", 0, "client p95 latency ceiling that signals overload to the prefetch governor (0 = config default: disabled)")
	flag.DurationVar(&o.governorInterval, "governor-interval", 0, "AIMD governor adjustment period (0 = config default)")

	flag.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests to finish")
	flag.DurationVar(&o.pruneInterval, "prune-interval", 5*time.Minute, "how often to prune idle per-user state (<=0 disables)")
	flag.DurationVar(&o.pruneMaxIdle, "prune-max-idle", 30*time.Minute, "idle age past which per-user state is pruned")

	flag.StringVar(&o.stateDir, "state-dir", "", "directory for crash-safe persistence (disk cache tier + state snapshots); empty disables")
	flag.DurationVar(&o.snapshotInterval, "snapshot-interval", time.Minute, "periodic state-snapshot cadence when -state-dir is set (<=0 disables the loop; drain still snapshots)")

	flag.StringVar(&o.fault, "fault", "", "comma-separated host=prob connect-refusal injection, e.g. api.wish.example=0.3")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "seed for the deterministic fault injector")

	flag.StringVar(&o.clusterSelf, "cluster-self", "", "this instance's advertised host:port; non-empty enables cluster mode")
	flag.StringVar(&o.clusterPeers, "cluster-peers", "", "comma-separated host:port seed list (may include self; same value on every instance)")
	flag.IntVar(&o.clusterVNodes, "cluster-vnodes", 0, "virtual nodes per ring member (0 = default 128)")
	flag.IntVar(&o.clusterReplicas, "cluster-replicas", 0, "ring siblings consulted per peer fill (0 = default 2)")
	flag.DurationVar(&o.clusterProbeInterval, "cluster-probe-interval", 0, "peer health-probe period (0 = default 1s)")

	flag.DurationVar(&o.requestBudget, "request-budget", 0, "per-request latency budget; decremented across stages and propagated (clamped, never grown) over relay hops (0 disables)")
	flag.DurationVar(&o.hedgeDelay, "hedge-delay", 0, "static fallback delay before a slow peer-fill peek is hedged to the next ring successor (0 = default 30ms; adaptive per-peer p90 takes over with samples)")
	flag.Float64Var(&o.hedgeRateCap, "hedge-rate-cap", 0, "hedge launches per second across the instance (0 = default 64)")
	flag.BoolVar(&o.noHedging, "no-hedging", false, "disable hedged peer reads; slow peers are waited out sequentially")

	flag.IntVar(&o.streamChunkBytes, "stream-chunk-bytes", 0, "pooled body-chunk size on the streaming data plane (0 = default 64KiB)")
	flag.Int64Var(&o.captureMaxBytes, "capture-max-bytes", 0, "largest response body captured for cache insertion; bigger bodies stream through uncached (0 = default 4MiB)")
	flag.Int64Var(&o.maxBodyBytes, "max-body-bytes", 0, "largest accepted client request body, 413 past it (0 = default 64MiB, <0 = unlimited)")
	flag.Parse()

	if err := o.prefetch.validate(flag.CommandLine); err != nil {
		fmt.Fprintln(os.Stderr, "appx-proxy:", err)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "appx-proxy:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	a := apps.ByName(o.appName)
	if a == nil {
		return fmt.Errorf("unknown app %q", o.appName)
	}

	g, err := loadGraph(a, o.sigsPath)
	if err != nil {
		return err
	}

	var cfg *config.Config
	switch {
	case o.cfgPath != "":
		b, err := os.ReadFile(o.cfgPath)
		if err != nil {
			return err
		}
		cfg, err = config.Unmarshal(b)
		if err != nil {
			return err
		}
	case o.doVerify:
		rep, err := verify.Run(verify.Options{
			APK: a.APK, Graph: g, Origin: a.Handler(o.scale),
			FuzzEvents: 200, ProbeMax: time.Second,
		})
		if err != nil {
			return fmt.Errorf("verification: %w", err)
		}
		cfg = rep.Config
		fmt.Fprintf(os.Stderr, "verification: %d cleared, %d disabled\n", len(rep.Verified), len(rep.Disabled))
	default:
		cfg = config.Default(g)
	}
	applyResilienceFlags(cfg, o)
	applyCacheFlags(cfg, o)
	applyOverloadFlags(cfg, o)

	resolve := map[string]string{}
	links := map[string]netem.Link{}
	if o.origins == "" {
		// Emulation mode: start the app's origins in process.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: a.Handler(o.scale)}
		go srv.Serve(ln)
		for _, h := range a.Hosts {
			resolve[h] = ln.Addr().String()
			links[h] = netem.Link{
				RTT:       time.Duration(float64(a.HostRTT[h]) * o.scale),
				Bandwidth: int64(25_000_000 / o.scale),
			}
		}
		fmt.Fprintf(os.Stderr, "origins for %s emulated at %s (hosts: %s)\n",
			a.Name, ln.Addr(), strings.Join(a.Hosts, ", "))
	} else {
		for _, pair := range strings.Split(o.origins, ",") {
			kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("bad -origin entry %q (want host=addr)", pair)
			}
			resolve[kv[0]] = kv[1]
		}
	}

	up := proxy.NewNetUpstream(resolve, links)
	if o.fault != "" {
		in, err := parseFaults(o.fault, o.faultSeed)
		if err != nil {
			return err
		}
		up.SetFaults(in)
		fmt.Fprintf(os.Stderr, "fault injection active (%s, seed %d)\n", o.fault, o.faultSeed)
	}

	var cl cluster.Config
	if o.clusterSelf != "" {
		cl = cluster.Config{
			Self:          o.clusterSelf,
			VNodes:        o.clusterVNodes,
			Replicas:      o.clusterReplicas,
			ProbeInterval: o.clusterProbeInterval,
		}
		for _, p := range strings.Split(o.clusterPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cl.Peers = append(cl.Peers, p)
			}
		}
		fmt.Fprintf(os.Stderr, "appx-proxy: cluster mode: self=%s peers=%v\n", cl.Self, cl.Peers)
	}

	px := proxy.New(proxy.Options{
		Graph:            g,
		Config:           cfg,
		Upstream:         up,
		Workers:          o.workers,
		SpanBuffer:       o.spanBuffer,
		StateDir:         o.stateDir,
		SnapshotInterval: o.snapshotInterval,
		Cluster:          cl,
		RequestBudget:    o.requestBudget,
		HedgeDelay:       o.hedgeDelay,
		HedgeRateCap:     o.hedgeRateCap,
		DisableHedging:   o.noHedging,
		StreamChunkBytes: o.streamChunkBytes,
		CaptureMaxBytes:  o.captureMaxBytes,
		MaxBodyBytes:     o.maxBodyBytes,
		PrefetchPolicy:   o.prefetch.policy,
		PolicyDecay:      o.prefetch.policyDecay,
		PolicyMaxUsers:   o.prefetch.policyMaxUsers,
	})
	if o.stateDir != "" {
		switch outcome := px.RestoreOutcome(); outcome {
		case proxy.RestoreWarm:
			fmt.Fprintf(os.Stderr, "appx-proxy: warm restart: restored state from %s (%d users)\n",
				o.stateDir, px.UserCount())
		case proxy.RestoreFailed:
			fmt.Fprintf(os.Stderr, "appx-proxy: restore failed (%s); starting cold\n", px.RestoreDetail())
		default:
			fmt.Fprintf(os.Stderr, "appx-proxy: no usable snapshot in %s; starting cold\n", o.stateDir)
		}
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		px.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "appx-proxy for %s listening on %s (%d signatures, %d prefetchable)\n",
		a.Name, ln.Addr(), len(g.Sigs), len(g.Prefetchable()))
	return serve(context.Background(), px, ln, o)
}

// serve runs the proxy on the listener until the parent context is done or
// a termination signal arrives, then shuts down gracefully: stop admitting
// new proxied requests, wait (bounded by -drain-timeout) for the in-flight
// ones, and release the proxy's background resources. Returns nil on a
// clean signal-driven exit.
func serve(parent context.Context, px *proxy.Proxy, ln net.Listener, o options) error {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background loops are tracked so shutdown can prove they stopped: the
	// drain below waits for this group before releasing the proxy, so no
	// prune tick can race Store.Close and nothing leaks past serve's return.
	var bg sync.WaitGroup
	bgCtx, bgCancel := context.WithCancel(ctx)
	defer bgCancel()
	if o.pruneInterval > 0 && o.pruneMaxIdle > 0 {
		bg.Add(1)
		go func() {
			defer bg.Done()
			pruneLoop(bgCtx, px, o.pruneInterval, o.pruneMaxIdle)
		}()
	}

	srv := &http.Server{Handler: px}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// closeAll tears down in dependency order: stop the background loops
	// that poke the proxy, then the proxy itself (scheduler → store →
	// persistence tier).
	closeAll := func() {
		bgCancel()
		bg.Wait()
		px.Close()
	}

	select {
	case err := <-errc:
		// The listener failed on its own; nothing is left to drain.
		closeAll()
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us
	fmt.Fprintln(os.Stderr, "appx-proxy: termination signal; draining in-flight requests")

	// Admission stops first so the drain only has to wait out requests that
	// were already in flight when the signal arrived. With -state-dir set,
	// BeginDrain also writes the final state snapshot.
	px.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		closeAll()
		return serveErr
	}
	closeAll()
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "appx-proxy: drained; exiting")
	return nil
}

// pruneLoop periodically drops per-user proxy state idle past maxIdle, so a
// long-running proxy's memory tracks its active population rather than
// everyone it has ever served.
func pruneLoop(ctx context.Context, px *proxy.Proxy, every, maxIdle time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if n := px.PruneUsers(maxIdle); n > 0 {
				fmt.Fprintf(os.Stderr, "appx-proxy: pruned %d idle user states\n", n)
			}
		}
	}
}

// applyResilienceFlags folds non-zero command-line overrides into the
// configuration's resilience section.
func applyResilienceFlags(cfg *config.Config, o options) {
	r := config.Resilience{}
	if cfg.Resilience != nil {
		r = *cfg.Resilience
	}
	set := false
	for _, f := range []struct {
		flag int64
		dst  func()
	}{
		{int64(o.retryAttempts), func() { r.RetryAttempts = o.retryAttempts }},
		{int64(o.retryBase), func() { r.RetryBaseDelay = config.Duration(o.retryBase) }},
		{int64(o.attemptTimeout), func() { r.AttemptTimeout = config.Duration(o.attemptTimeout) }},
		{int64(o.breakerFailures), func() { r.BreakerFailures = o.breakerFailures }},
		{int64(o.breakerOpen), func() { r.BreakerOpenTimeout = config.Duration(o.breakerOpen) }},
		{int64(o.prefetchFailLimit), func() { r.PrefetchFailureLimit = o.prefetchFailLimit }},
		{int64(o.prefetchBackoffBase), func() { r.PrefetchBackoffBase = config.Duration(o.prefetchBackoffBase) }},
		{int64(o.prefetchBackoffMax), func() { r.PrefetchBackoffMax = config.Duration(o.prefetchBackoffMax) }},
		{int64(o.prefetch.timeout), func() { r.PrefetchTimeout = config.Duration(o.prefetch.timeout) }},
	} {
		if f.flag > 0 {
			f.dst()
			set = true
		}
	}
	if set || cfg.Resilience != nil {
		cfg.Resilience = &r
	}
}

// applyCacheFlags folds non-zero command-line overrides into the
// configuration's cache section. Negative values pass through: the store
// reads them as "bound disabled".
func applyCacheFlags(cfg *config.Config, o options) {
	c := config.Cache{}
	if cfg.Cache != nil {
		c = *cfg.Cache
	}
	set := false
	if o.cacheMaxBytes != 0 {
		c.MaxBytes = o.cacheMaxBytes
		set = true
	}
	if o.cacheUserBytes != 0 {
		c.PerUserBytes = o.cacheUserBytes
		set = true
	}
	if o.cacheUserEntries != 0 {
		c.MaxEntriesPerUser = o.cacheUserEntries
		set = true
	}
	if o.cacheShards > 0 {
		c.Shards = o.cacheShards
		set = true
	}
	if o.cacheSweep != 0 {
		c.SweepInterval = config.Duration(o.cacheSweep)
		set = true
	}
	if o.cacheNoShared {
		c.DisableSharedTier = true
		set = true
	}
	if set || cfg.Cache != nil {
		cfg.Cache = &c
	}
}

// applyOverloadFlags folds non-zero command-line overrides into the
// configuration's overload section. Negative values pass through where the
// config documents them as "disable this bound".
func applyOverloadFlags(cfg *config.Config, o options) {
	v := config.Overload{}
	if cfg.Overload != nil {
		v = *cfg.Overload
	}
	set := false
	if o.maxConcurrent != 0 {
		v.MaxConcurrentRequests = o.maxConcurrent
		set = true
	}
	if o.admissionWait > 0 {
		v.AdmissionWait = config.Duration(o.admissionWait)
		set = true
	}
	if o.targetP95 > 0 {
		v.TargetP95 = config.Duration(o.targetP95)
		set = true
	}
	if o.governorInterval > 0 {
		v.GovernorInterval = config.Duration(o.governorInterval)
		set = true
	}
	if o.prefetch.queueDeadline != 0 {
		v.QueueDeadline = config.Duration(o.prefetch.queueDeadline)
		set = true
	}
	if o.prefetch.queue > 0 {
		v.MaxQueue = o.prefetch.queue
		set = true
	}
	if set || cfg.Overload != nil {
		cfg.Overload = &v
	}
}

// parseFaults builds a deterministic connect-refusal injector from
// host=prob pairs.
func parseFaults(spec string, seed int64) (*netem.Injector, error) {
	in := netem.NewInjector(seed)
	for _, pair := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -fault entry %q (want host=prob)", pair)
		}
		p, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("bad -fault probability %q (want 0..1)", kv[1])
		}
		in.SetFault(kv[0], netem.Fault{ConnectRefuseProb: p})
	}
	return in, nil
}

func loadGraph(a *apps.App, sigsPath string) (*sig.Graph, error) {
	if sigsPath != "" {
		b, err := os.ReadFile(sigsPath)
		if err != nil {
			return nil, err
		}
		return sig.Unmarshal(b)
	}
	return static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
}

// prefetchFlags is the consolidated prefetch flag group: every knob shaping
// what the proxy speculates on — and how eagerly — registers here together
// and is checked by one validation pass after flag.Parse.
type prefetchFlags struct {
	timeout       time.Duration
	queue         int
	queueDeadline time.Duration
	// legacyQueueDeadline receives the deprecated -queue-deadline
	// spelling; validate folds it into queueDeadline with a one-time note.
	legacyQueueDeadline time.Duration

	policy         string
	policyDecay    time.Duration
	policyMaxUsers int
}

// register adds the prefetch flag group to fs.
func (pf *prefetchFlags) register(fs *flag.FlagSet) {
	fs.DurationVar(&pf.timeout, "prefetch-timeout", 0, "whole-prefetch deadline, retries included (0 = config default)")
	fs.IntVar(&pf.queue, "prefetch-queue", 0, "prefetch scheduler queue bound (0 = config default)")
	fs.DurationVar(&pf.queueDeadline, "prefetch-queue-deadline", 0, "queued-prefetch staleness bound; older tasks drop at dispatch (0 = config default, <0 = disabled)")
	fs.DurationVar(&pf.legacyQueueDeadline, "queue-deadline", 0, "deprecated alias for -prefetch-queue-deadline")
	fs.StringVar(&pf.policy, "prefetch-policy", "static", "prefetch decision policy: static or markov")
	fs.DurationVar(&pf.policyDecay, "policy-decay", 0, "markov history half-life (0 = built-in default)")
	fs.IntVar(&pf.policyMaxUsers, "policy-max-users", 0, "markov per-user model cap (0 = built-in default)")
}

// validate is the group's single validation pass. It also resolves the
// renamed deadline flag: the old spelling still works, logging one
// deprecation note, but passing both is an error.
func (pf *prefetchFlags) validate(fs *flag.FlagSet) error {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["queue-deadline"] {
		if set["prefetch-queue-deadline"] {
			return errors.New("-queue-deadline is a deprecated alias for -prefetch-queue-deadline; pass only one")
		}
		fmt.Fprintln(os.Stderr, "appx-proxy: -queue-deadline is deprecated; use -prefetch-queue-deadline")
		pf.queueDeadline = pf.legacyQueueDeadline
	}
	switch pf.policy {
	case "static", "markov":
	default:
		return fmt.Errorf("unknown -prefetch-policy %q (want static or markov)", pf.policy)
	}
	if pf.policyDecay < 0 {
		return fmt.Errorf("-policy-decay must be >= 0, got %v", pf.policyDecay)
	}
	if pf.policyMaxUsers < 0 {
		return fmt.Errorf("-policy-max-users must be >= 0, got %d", pf.policyMaxUsers)
	}
	return nil
}
