package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"appx/internal/config"
)

func TestRunVerifyBuiltin(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "config.json")
	repPath := filepath.Join(dir, "report.json")
	if err := run("postmates", "", cfgPath, repPath, 2, 80, 2*time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := os.ReadFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := config.Unmarshal(b)
	if err != nil || len(cfg.Policies) == 0 {
		t.Fatalf("config output bad: %v", err)
	}
	rb, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(rb, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep["app"] != "postmates" {
		t.Fatalf("report app = %v", rep["app"])
	}
}

func TestRunVerifyErrors(t *testing.T) {
	if err := run("nope", "", "", "", 1, 10, time.Millisecond); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := run("wish", filepath.Join(t.TempDir(), "missing.json"), "", "", 1, 10, time.Millisecond); err == nil {
		t.Fatal("missing sigs file accepted")
	}
}
