// Command appx-verify runs APPx Phase 2: it drives the app through a freshly
// generated proxy with random UI events against the app's origin servers,
// disables signatures whose reconstructed requests fail, estimates
// per-signature expiration times, and writes the resulting initial proxy
// configuration (§4.3 of the paper).
//
// Usage:
//
//	appx-verify -app wish -sigs wish.sigs.json -o wish.config.json
//	appx-verify -app wish -events 400 -report report.json
//
// When -sigs is omitted, Phase 1 analysis runs first. Origins are the
// built-in in-process implementations of the selected app.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"appx/internal/apps"
	"appx/internal/sig"
	"appx/internal/static"
	"appx/internal/verify"
)

func main() {
	var (
		appName = flag.String("app", "", "built-in app to verify")
		sigs    = flag.String("sigs", "", "signature graph JSON from appx-analyze (default: run analysis)")
		out     = flag.String("o", "", "output path for the verified configuration (default stdout)")
		report  = flag.String("report", "", "optional path for the full verification report JSON")
		seed    = flag.Int64("seed", 1, "fuzzing seed")
		events  = flag.Int("events", 200, "number of fuzzing UI events")
		probeMx = flag.Duration("probe-max", 2*time.Second, "maximum expiration probe period")
	)
	flag.Parse()

	if err := run(*appName, *sigs, *out, *report, *seed, *events, *probeMx); err != nil {
		fmt.Fprintln(os.Stderr, "appx-verify:", err)
		os.Exit(1)
	}
}

func run(appName, sigsPath, out, reportPath string, seed int64, events int, probeMax time.Duration) error {
	a := apps.ByName(appName)
	if a == nil {
		return fmt.Errorf("unknown app %q", appName)
	}
	var g *sig.Graph
	if sigsPath != "" {
		b, err := os.ReadFile(sigsPath)
		if err != nil {
			return err
		}
		g, err = sig.Unmarshal(b)
		if err != nil {
			return err
		}
	} else {
		var err error
		g, err = static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
		if err != nil {
			return err
		}
	}

	rep, err := verify.Run(verify.Options{
		APK:        a.APK,
		Graph:      g,
		Origin:     a.Handler(1),
		FuzzSeed:   seed,
		FuzzEvents: events,
		ProbeMax:   probeMax,
	})
	if err != nil {
		return err
	}

	cfgBytes, err := rep.Config.Marshal()
	if err != nil {
		return err
	}
	if out == "" {
		os.Stdout.Write(cfgBytes)
		fmt.Println()
	} else if err := os.WriteFile(out, cfgBytes, 0o644); err != nil {
		return err
	}
	if reportPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(reportPath, b, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "verified %s: %d signatures cleared, %d disabled (%d fuzz events, %d errors)\n",
		a.Name, len(rep.Verified), len(rep.Disabled), rep.FuzzEvents, rep.FuzzErrors)
	for _, d := range rep.Disabled {
		fmt.Fprintf(os.Stderr, "  disabled %s: %s\n", d.SigID, d.Reason)
	}
	return nil
}
