package main

import (
	"os"
	"path/filepath"
	"testing"

	"appx/internal/sig"
	"appx/internal/static"
)

func TestRunBuiltinApp(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sigs.json")
	if err := run("wish", "", "", "", out, "all", "", true); err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sig.Unmarshal(b)
	if err != nil {
		t.Fatalf("output not a signature graph: %v", err)
	}
	if len(g.Sigs) == 0 || len(g.Deps) == 0 {
		t.Fatalf("empty graph: %d sigs %d deps", len(g.Sigs), len(g.Deps))
	}
}

func TestRunDumpAndReanalyzeAPK(t *testing.T) {
	dir := t.TempDir()
	apkPath := filepath.Join(dir, "wish.apk.json")
	if err := run("wish", "", "", "", "", "all", apkPath, true); err != nil {
		t.Fatalf("dump: %v", err)
	}
	sigsPath := filepath.Join(dir, "sigs.json")
	if err := run("", apkPath, "", "", sigsPath, "all", "", true); err != nil {
		t.Fatalf("reanalyze: %v", err)
	}
	b, _ := os.ReadFile(sigsPath)
	g, err := sig.Unmarshal(b)
	if err != nil || len(g.Sigs) == 0 {
		t.Fatalf("round-tripped apk analysis failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", "", "", "all", "", true); err == nil {
		t.Fatal("no input accepted")
	}
	if err := run("nope", "", "", "", "", "all", "", true); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := run("wish", "also.apk", "", "", "", "all", "", true); err == nil {
		t.Fatal("both -app and -apk accepted")
	}
	if err := run("wish", "", "", "", "", "bogus-features", "", true); err == nil {
		t.Fatal("unknown features accepted")
	}
	if err := run("", filepath.Join(t.TempDir(), "missing.apk"), "", "", "", "all", "", true); err == nil {
		t.Fatal("missing apk file accepted")
	}
}

func TestParseFeatures(t *testing.T) {
	all, err := parseFeatures("all")
	if err != nil || all != static.AllFeatures() {
		t.Fatalf("all = %+v, %v", all, err)
	}
	ni, err := parseFeatures("no-intents")
	if err != nil || ni.Intents || !ni.Rx || !ni.Alias {
		t.Fatalf("no-intents = %+v, %v", ni, err)
	}
	if _, err := parseFeatures("x"); err == nil {
		t.Fatal("bogus features accepted")
	}
}

func TestRunAIRInput(t *testing.T) {
	dir := t.TempDir()
	airPath := filepath.Join(dir, "custom.air")
	src := `activity Main {
  method onCreate(params=0, regs=8) {
    b0:
      const-str v0, "GET"
      call-api v1, http.newRequest(v0)
      const-str v2, "http://api.example/feed"
      call-api v3, http.setURL(v1, v2)
      call-api v4, http.execute(v1)
      call-api v5, http.respBody(v4)
      const-str v6, "items[*].id"
      call-api v7, json.get(v5, v6)
      for-each v7, Main.loadItem(item)
      return _
  }
  method loadItem(params=1, regs=6) {
    b0:
      const-str v1, "GET"
      call-api v2, http.newRequest(v1)
      const-str v3, "http://api.example/item"
      call-api v4, http.setURL(v2, v3)
      const-str v5, "id"
      call-api v1, http.addQuery(v2, v5, v0)
      call-api v1, http.execute(v2)
      return _
  }
}
`
	if err := os.WriteFile(airPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "sigs.json")
	if err := run("", "", airPath, "", out, "all", "", true); err != nil {
		t.Fatalf("run -air: %v", err)
	}
	b, _ := os.ReadFile(out)
	g, err := sig.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sigs) != 2 || len(g.Deps) != 1 {
		t.Fatalf("air analysis: %d sigs, %d deps", len(g.Sigs), len(g.Deps))
	}
}
