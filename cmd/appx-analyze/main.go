// Command appx-analyze runs APPx Phase 1: static program analysis of an app
// package, producing the message-signature and dependency graph the
// acceleration proxy consumes.
//
// Usage:
//
//	appx-analyze -app wish -o wish.sigs.json
//	appx-analyze -apk custom.apk.json -o sigs.json -features no-alias
//	appx-analyze -air custom.air -entries Main.onCreate -o sigs.json
//	appx-analyze -app doordash -dump-apk doordash.apk.json
//
// The -app flag selects one of the built-in evaluation apps; -apk analyzes a
// serialized package instead; -air analyzes a textual AIR program (see
// internal/air's assembler), with -entries naming the entry-point methods
// (default: every zero-parameter method of activity/service classes).
// -features enables ablated analysis variants (all, baseline, no-intents,
// no-rx, no-alias).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"appx/internal/air"
	"appx/internal/apk"
	"appx/internal/apps"
	"appx/internal/static"
)

// defaultEntries picks every zero-parameter method of activity and service
// classes — the components the Android system invokes directly.
func defaultEntries(prog *air.Program) []string {
	var out []string
	for _, c := range prog.Classes {
		if c.Kind == air.KindPlain {
			continue
		}
		for _, m := range c.Methods {
			if m.NumParams == 0 {
				out = append(out, m.QualifiedName())
			}
		}
	}
	return out
}

func main() {
	var (
		appName  = flag.String("app", "", "built-in app to analyze (wish, geek, doordash, purpleocean, postmates)")
		apkPath  = flag.String("apk", "", "path to a serialized app package to analyze instead of a built-in")
		airPath  = flag.String("air", "", "path to a textual AIR program to analyze")
		entries  = flag.String("entries", "", "comma-separated entry methods for -air (default: auto)")
		out      = flag.String("o", "", "output path for the signature graph JSON (default stdout)")
		features = flag.String("features", "all", "analysis variant: all, baseline, no-intents, no-rx, no-alias")
		dumpAPK  = flag.String("dump-apk", "", "write the selected built-in app's package to this path and exit")
		quiet    = flag.Bool("q", false, "suppress the summary on stderr")
	)
	flag.Parse()

	if err := run(*appName, *apkPath, *airPath, *entries, *out, *features, *dumpAPK, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "appx-analyze:", err)
		os.Exit(1)
	}
}

func run(appName, apkPath, airPath, entriesFlag, out, features, dumpAPK string, quiet bool) error {
	var prog *air.Program
	var entryList []string
	var pkg *apk.APK
	name := appName
	switch {
	case (appName != "" && apkPath != "") || (appName != "" && airPath != "") || (apkPath != "" && airPath != ""):
		return fmt.Errorf("use exactly one of -app, -apk, or -air")
	case appName != "":
		a := apps.ByName(appName)
		if a == nil {
			return fmt.Errorf("unknown app %q (have: wish, geek, doordash, purpleocean, postmates)", appName)
		}
		pkg = a.APK
	case apkPath != "":
		b, err := os.ReadFile(apkPath)
		if err != nil {
			return err
		}
		pkg, err = apk.Unmarshal(b)
		if err != nil {
			return err
		}
		name = pkg.Manifest.Package
	case airPath != "":
		b, err := os.ReadFile(airPath)
		if err != nil {
			return err
		}
		prog, err = air.Assemble(string(b))
		if err != nil {
			return err
		}
		name = strings.TrimSuffix(filepath.Base(airPath), filepath.Ext(airPath))
		if entriesFlag != "" {
			entryList = strings.Split(entriesFlag, ",")
		} else {
			entryList = defaultEntries(prog)
		}
		if len(entryList) == 0 {
			return fmt.Errorf("no entry points: pass -entries")
		}
	default:
		return fmt.Errorf("one of -app, -apk, or -air is required")
	}
	if pkg != nil {
		prog = pkg.Program
		entryList = pkg.Entries()
	}

	if dumpAPK != "" {
		if pkg == nil {
			return fmt.Errorf("-dump-apk needs -app or -apk")
		}
		b, err := pkg.Marshal()
		if err != nil {
			return err
		}
		return os.WriteFile(dumpAPK, b, 0o644)
	}

	feats, err := parseFeatures(features)
	if err != nil {
		return err
	}
	g, err := static.Analyze(prog, name, entryList, static.Options{Features: feats})
	if err != nil {
		return err
	}
	b, err := g.Marshal()
	if err != nil {
		return err
	}
	if out == "" {
		os.Stdout.Write(b)
		fmt.Println()
	} else if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "analyzed %s: %d signatures, %d prefetchable, %d dependencies, max chain %d\n",
			name, len(g.Sigs), len(g.Prefetchable()), len(g.Deps), g.MaxChainLen())
	}
	return nil
}

func parseFeatures(s string) (static.Features, error) {
	switch s {
	case "all", "":
		return static.AllFeatures(), nil
	case "baseline":
		return static.BaselineFeatures(), nil
	case "no-intents":
		return static.Features{Rx: true, Alias: true}, nil
	case "no-rx":
		return static.Features{Intents: true, Alias: true}, nil
	case "no-alias":
		return static.Features{Intents: true, Rx: true}, nil
	default:
		return static.Features{}, fmt.Errorf("unknown feature set %q", s)
	}
}
