package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"appx/internal/obs/adminv1"
)

// TestAdminModeDecodesTypedViews serves the three v1 endpoints from canned
// adminv1 values and checks the admin mode decodes and renders them.
func TestAdminModeDecodesTypedViews(t *testing.T) {
	stats := adminv1.StatsResponse{
		Hits: 7, Misses: 3, HitRatio: 0.7, Prefetches: 12,
		CacheResidentBytes: 4096, SavedLatencyMs: 1500,
		Overload: adminv1.Overload{Mode: "normal", Level: 1.0, Admitted: 10},
		Requests: adminv1.Requests{
			Total: 10,
			Outcomes: map[string]adminv1.OutcomeStats{
				"prefetch-hit": {Count: 7, P50Ms: 1.2, P95Ms: 3.4, P99Ms: 5.6},
				"origin":       {Count: 3, P50Ms: 80, P95Ms: 120, P99Ms: 150},
			},
			StageP95Ms: map[string]float64{"cache": 0.4, "origin": 110},
		},
	}
	health := adminv1.HealthResponse{
		Status:   "degraded",
		Breakers: map[string]adminv1.Breaker{"sick.example": {State: "open", ConsecutiveFailures: 5}},
		Overload: adminv1.Overload{Mode: "normal", Level: 1.0, Admitted: 10},
	}
	spans := adminv1.SpansResponse{
		Total: 10,
		Spans: []adminv1.Span{{
			ID: 10, Start: time.Now(), WallMs: 2.5, Outcome: "prefetch-hit",
			SigID: "t:item#0", StageMs: map[string]float64{"cache": 0.3, "write": 0.1},
		}},
	}

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body any
		switch r.URL.Path {
		case adminv1.PathStats:
			body = stats
		case adminv1.PathHealth:
			body = health
		case adminv1.PathSpans:
			if r.URL.Query().Get("n") != "5" {
				t.Errorf("spans n = %q, want 5", r.URL.Query().Get("n"))
			}
			body = spans
		default:
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(body)
	}))
	defer srv.Close()

	v, err := fetchAdmin(srv.Client(), srv.URL, 5)
	if err != nil {
		t.Fatalf("fetchAdmin: %v", err)
	}
	if v.Stats.Requests.Outcomes["prefetch-hit"].Count != 7 {
		t.Fatalf("typed decode lost outcome counts: %+v", v.Stats.Requests)
	}
	if v.Health.Breakers["sick.example"].State != "open" {
		t.Fatalf("typed decode lost breaker state: %+v", v.Health.Breakers)
	}
	if len(v.Spans.Spans) != 1 || v.Spans.Spans[0].Outcome != "prefetch-hit" {
		t.Fatalf("typed decode lost spans: %+v", v.Spans)
	}

	var out strings.Builder
	renderAdmin(&out, v)
	for _, want := range []string{
		"health: degraded",
		"breaker sick.example: open",
		"requests: 10 total",
		"prefetch-hit",
		"stage p95:",
		"hit ratio 0.700",
		"#10",
		"sig=t:item#0",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("render missing %q in:\n%s", want, out.String())
		}
	}
}
