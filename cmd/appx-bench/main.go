// Command appx-bench regenerates the tables and figures of the paper's
// evaluation (§6) against the emulated testbed.
//
// Usage:
//
//	appx-bench                         # everything, default parameters
//	appx-bench -experiment fig13       # one experiment
//	appx-bench -users 30 -duration 3m  # the full-size user study
//
// Experiments: table1 table2 table3 fig11 fig12 fig13 fig14 fig15 fig16
// fig17 ablation mech faultsweep cachesweep overload matchsweep warmstart
// clustersweep chaossweep stream policysweep all. The stream and policysweep
// experiments additionally write machine-readable results to
// BENCH_stream.json and BENCH_policy.json in the working directory.
//
// With -admin it is an operator client instead: it fetches the typed
// /appx/v1/{stats,health,spans} views from a running appx-proxy and renders
// a one-page summary:
//
//	appx-bench -admin http://127.0.0.1:8080 -admin-spans 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"appx/internal/exp"
)

func main() {
	var (
		which     = flag.String("experiment", "all", "experiment to run")
		scale     = flag.Float64("scale", 0.2, "emulated time scale (1 = paper-real)")
		runs      = flag.Int("runs", 5, "microbenchmark repetitions per app")
		users     = flag.Int("users", 8, "user-study participants")
		duration  = flag.Duration("duration", 3*time.Minute, "per-user session length")
		think     = flag.Float64("think-speed", 10, "extra think-time compression")
		events    = flag.Int("fuzz-events", 400, "fuzzing events for Table 3")
		seed      = flag.Int64("seed", 42, "random seed")
		chaosSeed = flag.Int64("chaos-seed", 0, "chaossweep fault-schedule seed (0 = -seed); a fixed seed replays the same fault pattern")

		admin      = flag.String("admin", "", "base URL of a running appx-proxy; render its /appx/v1 admin views instead of running experiments")
		adminSpans = flag.Int("admin-spans", 10, "recent spans to fetch in -admin mode")
	)
	flag.Parse()

	if *admin != "" {
		if err := runAdmin(*admin, *adminSpans, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "appx-bench:", err)
			os.Exit(1)
		}
		return
	}

	p := exp.Params{
		Scale:         *scale,
		Runs:          *runs,
		Users:         *users,
		TraceDuration: *duration,
		ThinkSpeed:    *think,
		FuzzEvents:    *events,
		Seed:          *seed,
	}

	cs := *chaosSeed
	if cs == 0 {
		cs = *seed
	}
	if err := run(*which, p, cs); err != nil {
		fmt.Fprintln(os.Stderr, "appx-bench:", err)
		os.Exit(1)
	}
}

func run(which string, p exp.Params, chaosSeed int64) error {
	sel := map[string]bool{}
	for _, w := range strings.Split(which, ",") {
		sel[strings.TrimSpace(w)] = true
	}
	want := func(name string) bool { return sel["all"] || sel[name] }
	section := func(s string) { fmt.Println(s); fmt.Println() }

	if want("table1") {
		section(exp.RunTable1().Render())
	}
	if want("table2") {
		section(exp.RunTable2().Render())
	}
	if want("table3") {
		res, err := exp.RunTable3(p)
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("fig11") {
		res, err := exp.RunFig11()
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("fig12") {
		res, err := exp.RunFig12()
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("fig13") {
		res, err := exp.RunFig13(p)
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("fig14") {
		res, err := exp.RunFig14(p)
		if err != nil {
			return err
		}
		section(res.Render())
	}

	var sweep *exp.RTTSweep
	if want("fig15") || want("fig16") {
		var err error
		sweep, err = exp.RunFig15(p, nil)
		if err != nil {
			return err
		}
	}
	if want("fig15") {
		section(sweep.Render())
	}
	if want("fig16") {
		res, err := exp.RunFig16(p, sweep, nil)
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("fig17") {
		res, err := exp.RunFig17(p, nil)
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("ablation") {
		res, err := exp.RunAblation()
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("mech") {
		res, err := exp.RunMechAblation(p)
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("faultsweep") {
		res, err := exp.RunFaultSweep(p.Seed, nil)
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("cachesweep") {
		res, err := exp.RunCacheSweep(p.Seed, nil)
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("overload") {
		res, err := exp.RunOverload(p.Seed, nil)
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("matchsweep") {
		res, err := exp.RunMatchSweep(p.Seed, nil)
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("warmstart") {
		res, err := exp.RunWarmStart(p.Seed)
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("clustersweep") {
		res, err := exp.RunClusterSweep(p.Seed)
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("chaossweep") {
		res, err := exp.RunChaosSweep(chaosSeed)
		if err != nil {
			return err
		}
		section(res.Render())
	}
	if want("stream") {
		res, err := exp.RunStreamBench(p.Seed)
		if err != nil {
			return err
		}
		section(res.Render())
		if err := res.WriteJSON("BENCH_stream.json"); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_stream.json")
		fmt.Println()
	}
	if want("policysweep") {
		res, err := exp.RunPolicySweep(p.Seed)
		if err != nil {
			return err
		}
		section(res.Render())
		if err := res.WriteJSON("BENCH_policy.json"); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_policy.json")
		fmt.Println()
	}
	return nil
}
