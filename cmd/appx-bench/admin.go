package main

// Admin mode: instead of running experiments, fetch the typed /appx/v1
// views from a running appx-proxy and render an operator summary. This is
// the reference consumer of the adminv1 schema outside the proxy's own
// tests.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"appx/internal/obs/adminv1"
)

// adminView is one scrape of a proxy's versioned admin endpoints.
type adminView struct {
	Stats  adminv1.StatsResponse
	Health adminv1.HealthResponse
	Spans  adminv1.SpansResponse
}

// fetchAdmin pulls stats, health, and the spanN most recent spans from the
// proxy at base (e.g. http://127.0.0.1:8080).
func fetchAdmin(c *http.Client, base string, spanN int) (*adminView, error) {
	base = strings.TrimRight(base, "/")
	v := &adminView{}
	for _, ep := range []struct {
		path string
		into any
	}{
		{adminv1.PathStats, &v.Stats},
		{adminv1.PathHealth, &v.Health},
		{fmt.Sprintf("%s?n=%d", adminv1.PathSpans, spanN), &v.Spans},
	} {
		if err := getJSON(c, base+ep.path, ep.into); err != nil {
			return nil, err
		}
	}
	return v, nil
}

func getJSON(c *http.Client, url string, into any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return fmt.Errorf("GET %s: decode: %w", url, err)
	}
	return nil
}

// renderAdmin writes the operator summary: health and overload posture,
// request outcomes with wall-time quantiles, per-stage p95s, cache
// efficiency, and the most recent spans.
func renderAdmin(w io.Writer, v *adminView) {
	s, h := &v.Stats, &v.Health
	fmt.Fprintf(w, "health: %s  overload: %s (level %.2f)  admitted %d  shed %d\n",
		h.Status, h.Overload.Mode, h.Overload.Level, h.Overload.Admitted, h.Overload.AdmissionShed)
	if len(h.Breakers) > 0 {
		for _, host := range sortedKeys(h.Breakers) {
			b := h.Breakers[host]
			fmt.Fprintf(w, "  breaker %s: %s (%d consecutive failures)\n", host, b.State, b.ConsecutiveFailures)
		}
	}
	if len(h.SuspendedSignatures) > 0 {
		for _, id := range sortedKeys(h.SuspendedSignatures) {
			ss := h.SuspendedSignatures[id]
			fmt.Fprintf(w, "  suspended %s: resume in %dms\n", id, ss.ResumeInMs)
		}
	}

	fmt.Fprintf(w, "\nrequests: %d total\n", s.Requests.Total)
	for _, name := range sortedKeys(s.Requests.Outcomes) {
		o := s.Requests.Outcomes[name]
		fmt.Fprintf(w, "  %-12s %6d   p50 %7.2fms  p95 %7.2fms  p99 %7.2fms\n",
			name, o.Count, o.P50Ms, o.P95Ms, o.P99Ms)
	}
	if len(s.Requests.StageP95Ms) > 0 {
		fmt.Fprintf(w, "stage p95:")
		for _, st := range sortedKeys(s.Requests.StageP95Ms) {
			fmt.Fprintf(w, "  %s %.2fms", st, s.Requests.StageP95Ms[st])
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\ncache: hit ratio %.3f (%d hits / %d misses, %d shared)  resident %dB  prefetches %d (%d errors, %d suppressed)\n",
		s.HitRatio, s.Hits, s.Misses, s.SharedHits, s.CacheResidentBytes,
		s.Prefetches, s.PrefetchErrors, s.SuppressedPrefetches)
	fmt.Fprintf(w, "saved latency: %s  data used: %dB\n",
		time.Duration(s.SavedLatencyMs)*time.Millisecond, s.DataUsedBytes)

	fmt.Fprintf(w, "\nspans: %d recorded, %d most recent (newest first)\n", v.Spans.Total, len(v.Spans.Spans))
	for _, sp := range v.Spans.Spans {
		line := fmt.Sprintf("  #%-6d %-12s %8.2fms", sp.ID, sp.Outcome, sp.WallMs)
		if sp.SigID != "" {
			line += "  sig=" + sp.SigID
		}
		for _, st := range sortedKeys(sp.StageMs) {
			line += fmt.Sprintf("  %s=%.2fms", st, sp.StageMs[st])
		}
		fmt.Fprintln(w, line)
	}
}

// runAdmin is the -admin entry point.
func runAdmin(base string, spanN int, w io.Writer) error {
	v, err := fetchAdmin(&http.Client{Timeout: 10 * time.Second}, base, spanN)
	if err != nil {
		return err
	}
	renderAdmin(w, v)
	return nil
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
