# Convenience targets; scripts/check.sh is the canonical gate.

.PHONY: build test check bench bench-cache bench-overload bench-match bench-cluster bench-chaos bench-policy

build:
	go build ./...

test:
	go test ./...

# check runs vet, build, and the race-enabled test suite.
check:
	./scripts/check.sh

bench:
	go run ./cmd/appx-bench

# bench-cache runs the prefetch-store microbenchmarks (sharding, eviction).
bench-cache:
	go test ./internal/cache/ -run '^$$' -bench . -benchmem

# bench-overload runs the scheduler dispatch microbenchmarks and the
# offered-load sweep (foreground latency vs prefetch shedding).
bench-overload:
	go test ./internal/proxy/sched/ -run '^$$' -bench . -benchmem
	go run ./cmd/appx-bench -experiment overload

# bench-match runs the signature-matching microbenchmarks (indexed vs naive
# scan, canonical-key memoization) and the graph-size sweep.
bench-match:
	go test ./internal/sig/ -run '^$$' -bench . -benchmem
	go run ./cmd/appx-bench -experiment matchsweep

# bench-cluster runs the scale-out sweep: origin offload of a clustered fleet
# vs independent instances, plus the kill/rejoin churn phase.
bench-cluster:
	go run ./cmd/appx-bench -experiment clustersweep

# bench-chaos replays the seeded fault schedules (partition, slow peer,
# flapping link, disk faults, kill/restart) against a 3-instance cluster and
# prints the oracle verdict plus the hedged-vs-unhedged fill comparison.
# Override the fault pattern with: make bench-chaos CHAOS_SEED=7
CHAOS_SEED ?= 42
bench-chaos:
	go run ./cmd/appx-bench -experiment chaossweep -chaos-seed $(CHAOS_SEED)

# bench-policy replays the hostile workloads (flash crowd, mixed fleet,
# sequential scan, diurnal gap, legacy replay) against the static and markov
# prefetch policies and writes BENCH_policy.json.
bench-policy:
	go run ./cmd/appx-bench -experiment policysweep
