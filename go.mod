module appx

go 1.22
