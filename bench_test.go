package appx

// The benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6), each regenerating its artifact against the
// emulated testbed and reporting headline metrics. Run all of them with
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the rendered table/figure via b.Log (visible with
// -v) and reports the paper-comparable scalar (latency reduction, data-usage
// multiplier, signature counts) through b.ReportMetric. Parameters are kept
// small so the full suite finishes in minutes; cmd/appx-bench runs the same
// experiments at any size.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"appx/internal/exp"
)

// settle lets the previous benchmark's labs fully drain (closing servers,
// scheduler workers, and emulated connections) so wire-lab measurements do
// not bleed into each other.
func settle(b *testing.B) {
	b.Helper()
	runtime.GC()
	time.Sleep(300 * time.Millisecond)
	b.ResetTimer()
}

// benchParams sizes the experiments for benchmark runs.
func benchParams() exp.Params {
	return exp.Params{
		Scale:         0.1,
		Runs:          3,
		Users:         4,
		TraceDuration: 150 * time.Second,
		ThinkSpeed:    8,
		FuzzEvents:    200,
		Seed:          42,
	}
}

// The RTT sweep feeds both Figure 15 and Figure 16 (the paper derives both
// from the same replays); run it once and share.
var (
	sweepOnce sync.Once
	sweepRes  *exp.RTTSweep
	sweepErr  error
)

func sharedSweep(p exp.Params) (*exp.RTTSweep, error) {
	sweepOnce.Do(func() {
		sweepRes, sweepErr = exp.RunFig15(p, nil)
	})
	return sweepRes, sweepErr
}

func BenchmarkTable1Apps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.RunTable1()
		if len(res.Rows) != 5 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkTable2RTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.RunTable2()
		if len(res.Rows) == 0 {
			b.Fatal("empty")
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkTable3Signatures(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable3(p)
		if err != nil {
			b.Fatal(err)
		}
		var appxSigs, fuzzSigs, userSigs int
		for _, r := range res.Rows {
			appxSigs += r.SigsTotal
			fuzzSigs += r.FuzzSigs
			userSigs += r.UserSigs
		}
		b.ReportMetric(float64(appxSigs), "appx-sigs")
		b.ReportMetric(float64(fuzzSigs), "fuzz-sigs")
		b.ReportMetric(float64(userSigs), "user-sigs")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFig11ChainCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Chain)), "chain-len")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFig12FanOutCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.FanOut)), "fan-out")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFig13MainInteraction(b *testing.B) {
	p := benchParams()
	settle(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig13(p)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range res.Rows {
			sum += r.Reduction
		}
		b.ReportMetric(sum/float64(len(res.Rows))*100, "avg-reduction-%")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFig14Launch(b *testing.B) {
	p := benchParams()
	settle(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig14(p)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range res.Rows {
			sum += r.Reduction
		}
		b.ReportMetric(sum/float64(len(res.Rows))*100, "avg-reduction-%")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFig15RTTSweep(b *testing.B) {
	p := benchParams()
	settle(b)
	for i := 0; i < b.N; i++ {
		res, err := sharedSweep(p)
		if err != nil {
			b.Fatal(err)
		}
		var p90, med float64
		for _, r := range res.Rows {
			p90 += r.Reduction
			med += r.MedReduction
		}
		b.ReportMetric(p90/float64(len(res.Rows))*100, "avg-p90-reduction-%")
		b.ReportMetric(med/float64(len(res.Rows))*100, "avg-median-reduction-%")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFig16CDF(b *testing.B) {
	p := benchParams()
	settle(b)
	for i := 0; i < b.N; i++ {
		sweep, err := sharedSweep(p)
		if err != nil {
			b.Fatal(err)
		}
		res, err := exp.RunFig16(p, sweep, nil)
		if err != nil {
			b.Fatal(err)
		}
		var usage, red float64
		for _, r := range res.Rows {
			usage += r.DataUsage
			red += r.MedianReduction
		}
		n := float64(len(res.Rows))
		b.ReportMetric(usage/n, "avg-data-usage-x")
		b.ReportMetric(red/n*100, "avg-median-reduction-%")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFig17Tradeoff(b *testing.B) {
	p := benchParams()
	settle(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig17(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(first.Median.Milliseconds()), "p0-median-ms")
		b.ReportMetric(float64(last.Median.Milliseconds()), "p100-median-ms")
		b.ReportMetric(last.DataUsage, "p100-data-usage-x")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkAblationAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunAblation()
		if err != nil {
			b.Fatal(err)
		}
		var fullDeps, baseDeps int
		for _, r := range res.Rows {
			switch r.Variant {
			case "full":
				fullDeps += r.Deps
			case "baseline":
				baseDeps += r.Deps
			}
		}
		b.ReportMetric(float64(fullDeps), "full-deps")
		b.ReportMetric(float64(baseDeps), "baseline-deps")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkMechAblation(b *testing.B) {
	p := benchParams()
	settle(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunMechAblation(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			switch r.Variant {
			case "full":
				b.ReportMetric(float64(r.StoreOpen.Milliseconds()), "full-ms")
			case "no-chain":
				b.ReportMetric(float64(r.StoreOpen.Milliseconds()), "nochain-ms")
			case "no-prefetch":
				b.ReportMetric(float64(r.StoreOpen.Milliseconds()), "orig-ms")
			}
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}
