// Package appx is a complete Go reproduction of "APPx: An Automated App
// Acceleration Framework for Low Latency Mobile App" (Choi, Kim, Cho, Kim,
// Han — CoNEXT 2018).
//
// APPx takes a mobile app binary as input, statically extracts the message
// formats and inter-transaction dependencies of the HTTP traffic the app can
// generate, and emits an acceleration proxy that combines that static
// knowledge with dynamic learning over live traffic to prefetch responses
// before the client asks for them.
//
// The repository layout:
//
//	internal/air       the app intermediate representation (dex stand-in)
//	internal/apk       app packaging: manifest, UI model, AIR program
//	internal/static    Phase 1 — network-aware static taint analysis
//	internal/sig       message signatures and the dependency graph
//	internal/verify    Phase 2 — fuzz-driven testing & verification
//	internal/config    Phase 3 — proxy policy configuration
//	internal/core      framework orchestration (Figure 4)
//	internal/proxy     the acceleration proxy: dynamic learning, prefetching
//	internal/interp    AIR interpreter (the emulated app runtime)
//	internal/device    the emulated handset and latency measurement
//	internal/netem     WAN link emulation (RTT + bandwidth shaping)
//	internal/apps      the five synthetic evaluation apps + origin servers
//	internal/trace     user-study traces: generation, record, replay
//	internal/fuzz      Monkey-style UI fuzzing
//	internal/lab       end-to-end evaluation wiring
//	internal/exp       the §6 experiments (tables and figures)
//	cmd/...            appx-analyze, appx-verify, appx-proxy, appx-bench
//	examples/...       runnable scenarios on the public pipeline
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package appx
