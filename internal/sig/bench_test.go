package sig

import (
	"fmt"
	"testing"

	"appx/internal/httpmsg"
)

// benchGraph builds an n-signature graph with the shape the paper reports:
// mostly literal-URI signatures, a slice of wildcard-tail patterns, and a few
// leading-wildcard hosts that can only be regex-verified.
func benchGraph(n int) (*Graph, []*httpmsg.Request) {
	g := NewGraph("bench")
	var reqs []*httpmsg.Request
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i)
		switch i % 10 {
		case 0: // wildcard tail under a shared prefix (trie bucket)
			g.Add(&Signature{ID: id, Method: "GET",
				URI: Concat(Literal(fmt.Sprintf("api%d.example/v1/items/", i%7)), Wildcard(""))})
			reqs = append(reqs, &httpmsg.Request{Method: "GET",
				Host: fmt.Sprintf("api%d.example", i%7), Path: fmt.Sprintf("/v1/items/%d", i)})
		case 1: // leading-wildcard host (root fallback, always regex)
			g.Add(&Signature{ID: id, Method: "GET",
				URI: Concat(Wildcard("host"), Literal(fmt.Sprintf("/api/feed%d", i)))})
			reqs = append(reqs, &httpmsg.Request{Method: "GET",
				Host: "cdn.example", Path: fmt.Sprintf("/api/feed%d", i)})
		default: // fully literal (exact map)
			g.Add(&Signature{ID: id, Method: "GET",
				URI: Literal(fmt.Sprintf("api%d.example/v1/res/%d", i%7, i))})
			reqs = append(reqs, &httpmsg.Request{Method: "GET",
				Host: fmt.Sprintf("api%d.example", i%7), Path: fmt.Sprintf("/v1/res/%d", i)})
		}
	}
	return g, reqs
}

// BenchmarkMatchRequest measures the indexed hot path at 1,000 signatures.
func BenchmarkMatchRequest(b *testing.B) {
	g, reqs := benchGraph(1000)
	g.matchIndex() // build outside the timed region, as in steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.MatchRequest(reqs[i%len(reqs)]); len(got) == 0 {
			b.Fatal("no match")
		}
	}
}

// BenchmarkMatchRequestNaive measures the seed's linear regex scan on the
// same graph and request stream, for the speedup figure in EXPERIMENTS.md.
func BenchmarkMatchRequestNaive(b *testing.B) {
	g, reqs := benchGraph(1000)
	for _, s := range g.Sigs {
		s.URIRegexp() // precompile; the seed amortized this too after warm-up
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.matchRequestScan(reqs[i%len(reqs)]); len(got) == 0 {
			b.Fatal("no match")
		}
	}
}

// BenchmarkCanonicalKey measures the memoized key on a repeated request (the
// cache-lookup hot path) …
func BenchmarkCanonicalKey(b *testing.B) {
	req := benchKeyRequest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if req.CanonicalKey() == "" {
			b.Fatal("empty key")
		}
	}
}

// … and BenchmarkCanonicalKeyCold the full recomputation.
func BenchmarkCanonicalKeyCold(b *testing.B) {
	req := benchKeyRequest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := req.Clone() // drops the memo
		if r.CanonicalKey() == "" {
			b.Fatal("empty key")
		}
	}
}

func benchKeyRequest() *httpmsg.Request {
	return &httpmsg.Request{
		Method: "GET", Scheme: "http", Host: "api.example", Path: "/v1/items/42",
		Query: []httpmsg.Field{{Key: "b", Value: "2"}, {Key: "a", Value: "1"}},
		Header: []httpmsg.Field{
			{Key: "User-Agent", Value: "bench/1.0"},
			{Key: "Accept", Value: "application/json"},
			{Key: "Cookie", Value: "session=abcdef"},
		},
	}
}
