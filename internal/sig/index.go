// Match and adjacency indexes for Graph.
//
// The proxy identifies the signature of *every* live transaction by URI
// matching (§4.2), and walks the dependency graph on every prefetch chain
// step. The seed implementation scanned all signatures (one anchored regex
// each) per request and rescanned the full Deps slice per graph query —
// O(|Sigs|·regex) and O(|Deps|) on the hottest paths in the proxy. This file
// replaces both scans with indexes built once and invalidated on mutation:
//
//   - matchIndex: an exact map keyed by the full literal URI (one hash
//     lookup, zero regex evaluations) plus a longest-literal-prefix radix
//     trie that narrows patterns with wild/dep parts to a small candidate
//     bucket, with regexes precompiled at build time. Candidates carry a
//     precomputed specificity key so results come out most-specific-first
//     without sorting machinery on the hot path.
//   - adjIndex: successor/predecessor edge maps and the prefetchable set,
//     so chain walking never rescans Deps.
//
// Invalidation rules: Add invalidates the match index (signatures changed),
// AddDep invalidates the adjacency index (edges changed), and reindex —
// which Unmarshal calls — invalidates both. Indexes rebuild lazily on next
// use, under a mutex, so graph construction stays O(1) per insert and
// concurrent readers never see a half-built index. Mutating a graph while
// other goroutines match against it is not supported (and never was — the
// Sigs/Deps slices themselves are unsynchronized); the lazy rebuild is
// guarded so that read-only concurrent use, the proxy's steady state, is
// race-free.
package sig

import (
	"math"
	"strings"

	"appx/internal/httpmsg"
)

// matchCand is one indexed signature: its precompiled URI matcher (nil for
// fully-literal URIs, which never need one) and the hot-path ordering key.
type matchCand struct {
	sig *Signature
	re  matcher
	// lits holds the pattern's literal fragments in order and endLit its
	// trailing literal, if any. They drive a substring prefilter that rejects
	// most non-matching URIs before a regex evaluation is spent — crucial for
	// root-bucket candidates (leading-wildcard patterns), which the trie
	// cannot narrow.
	lits   []string
	endLit string
	// key orders candidates most-specific-first with ties broken by Sigs
	// position — exactly the order the naive scan's stable sort produced:
	// high 32 bits hold the inverted literal length, low 32 the ordinal.
	key uint64
}

// prefilter reports whether uri could possibly match the candidate: every
// literal fragment must occur in order, and a trailing literal must be a
// suffix of what remains. A necessary condition only — survivors still get
// the anchored regex — but it is pure substring scanning, no regex machinery.
func (c *matchCand) prefilter(uri string) bool {
	rest := uri
	for _, lit := range c.lits {
		j := strings.Index(rest, lit)
		if j < 0 {
			return false
		}
		rest = rest[j+len(lit):]
	}
	if c.endLit != "" {
		return strings.HasSuffix(rest, c.endLit)
	}
	return true
}

// litFragments extracts the pattern's non-empty literal fragments in order;
// a trailing literal is returned separately (it anchors as a suffix) and
// excluded from the in-order list.
func litFragments(p Pattern) ([]string, string) {
	var lits []string
	for _, part := range p.Parts {
		if part.Kind == Lit && part.Lit != "" {
			lits = append(lits, part.Lit)
		}
	}
	endLit := ""
	if n := len(p.Parts); n > 0 && p.Parts[n-1].Kind == Lit && p.Parts[n-1].Lit != "" {
		endLit = p.Parts[n-1].Lit
		lits = lits[:len(lits)-1]
	}
	return lits, endLit
}

// matcher is the minimal regexp surface the hot path needs; an interface so
// matchCand stays regexp-free for exact literals.
type matcher interface{ MatchString(string) bool }

func candKey(litLen, ordinal int) uint64 {
	return uint64(math.MaxUint32-uint32(litLen))<<32 | uint64(uint32(ordinal))
}

// trieNode is one node of the radix trie over literal URI prefixes.
// Candidates hang off the node where their literal prefix ends; matching a
// request visits every node on the path its URI spells, so each request sees
// exactly the candidates whose literal prefix is a prefix of its URI.
type trieNode struct {
	label    string
	children map[byte]*trieNode
	cands    []*matchCand
}

func (n *trieNode) insert(prefix string, c *matchCand) {
	node := n
	for {
		if prefix == "" {
			node.cands = append(node.cands, c)
			return
		}
		if node.children == nil {
			node.children = map[byte]*trieNode{}
		}
		child := node.children[prefix[0]]
		if child == nil {
			node.children[prefix[0]] = &trieNode{label: prefix, cands: []*matchCand{c}}
			return
		}
		common := commonPrefixLen(prefix, child.label)
		if common == len(child.label) {
			prefix = prefix[common:]
			node = child
			continue
		}
		// Split the child at the divergence point.
		split := &trieNode{
			label:    child.label[:common],
			children: map[byte]*trieNode{},
		}
		child.label = child.label[common:]
		split.children[child.label[0]] = child
		node.children[split.label[0]] = split
		prefix = prefix[common:]
		node = split
	}
}

// collect appends the candidates of every node on s's path into out and
// returns it. The walk touches O(len(s)) nodes regardless of index size.
func (n *trieNode) collect(s string, out []*matchCand) []*matchCand {
	node := n
	for {
		out = append(out, node.cands...)
		if len(s) == 0 || node.children == nil {
			return out
		}
		child := node.children[s[0]]
		if child == nil || !strings.HasPrefix(s, child.label) {
			return out
		}
		s = s[len(child.label):]
		node = child
	}
}

func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// matchIndex is the two-level signature lookup structure.
type matchIndex struct {
	// exact maps a fully-literal host+path to its candidates. Zero regex
	// evaluations on this level: key equality is the match.
	exact map[string][]*matchCand
	// root holds patterns with wild/dep parts, bucketed by longest literal
	// prefix. Patterns starting with a wildcard (the paper's dynamic-host
	// shape) land at the root and are verified by regex on every lookup —
	// the fallback the telemetry's regexEvals counter makes visible.
	root *trieNode
}

// literalPrefix returns the concatenation of the pattern's leading literal
// parts — the trie bucketing key.
func literalPrefix(p Pattern) string {
	var b strings.Builder
	for _, part := range p.Parts {
		if part.Kind != Lit {
			break
		}
		b.WriteString(part.Lit)
	}
	return b.String()
}

// literalString joins all parts of a fully-literal pattern.
func literalString(p Pattern) string {
	var b strings.Builder
	for _, part := range p.Parts {
		b.WriteString(part.Lit)
	}
	return b.String()
}

func buildMatchIndex(sigs []*Signature) *matchIndex {
	idx := &matchIndex{
		exact: make(map[string][]*matchCand),
		root:  &trieNode{},
	}
	for i, s := range sigs {
		c := &matchCand{sig: s, key: candKey(literalLen(s.URI), i)}
		if !s.URI.HasUnknown() {
			uri := literalString(s.URI)
			idx.exact[uri] = append(idx.exact[uri], c)
			continue
		}
		// Precompiled here, at build time, on one goroutine — the hot path
		// never touches the lazy compile again (the old check-then-write on
		// the cached regexp raced under concurrent matching).
		c.re = s.URIRegexp()
		c.lits, c.endLit = litFragments(s.URI)
		idx.root.insert(literalPrefix(s.URI), c)
	}
	// Exact buckets come out pre-ordered; trie buckets are ordered per node,
	// and the cross-node merge happens in MatchRequest's insertion sort.
	for _, bucket := range idx.exact {
		sortCands(bucket)
	}
	sortTrieCands(idx.root)
	return idx
}

func sortTrieCands(n *trieNode) {
	sortCands(n.cands)
	for _, child := range n.children {
		sortTrieCands(child)
	}
}

// sortCands orders a candidate slice by key ascending (most-specific-first,
// ties in Sigs order). Buckets are small; insertion sort is allocation-free
// and stable by construction (keys are unique — ordinals differ).
func sortCands(cands []*matchCand) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].key < cands[j-1].key; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

// adjIndex caches the dependency graph's adjacency so chain walking and the
// status endpoints stop scanning Deps. Returned slices are shared: callers
// must treat them as read-only.
type adjIndex struct {
	succ         map[string][]string
	pred         map[string][]string
	depsInto     map[string][]Dependency
	depsFrom     map[string][]Dependency
	prefetchable []string
}

func buildAdjIndex(deps []Dependency) *adjIndex {
	a := &adjIndex{
		succ:     make(map[string][]string),
		pred:     make(map[string][]string),
		depsInto: make(map[string][]Dependency),
		depsFrom: make(map[string][]Dependency),
	}
	for _, d := range deps {
		a.depsInto[d.SuccID] = append(a.depsInto[d.SuccID], d)
		a.depsFrom[d.PredID] = append(a.depsFrom[d.PredID], d)
	}
	prefSet := make(map[string]bool, len(a.depsInto))
	for succID, ds := range a.depsInto {
		prefSet[succID] = true
		set := make(map[string]bool, len(ds))
		for _, d := range ds {
			set[d.PredID] = true
		}
		a.pred[succID] = sortedKeys(set)
	}
	for predID, ds := range a.depsFrom {
		set := make(map[string]bool, len(ds))
		for _, d := range ds {
			set[d.SuccID] = true
		}
		a.succ[predID] = sortedKeys(set)
	}
	a.prefetchable = sortedKeys(prefSet)
	return a
}

// matchIndex returns the current match index, building it if a mutation (or
// construction) invalidated it. Double-checked under idxMu so concurrent
// readers build at most once.
func (g *Graph) matchIndex() *matchIndex {
	if idx := g.midx.Load(); idx != nil {
		return idx
	}
	g.idxMu.Lock()
	defer g.idxMu.Unlock()
	if idx := g.midx.Load(); idx != nil {
		return idx
	}
	idx := buildMatchIndex(g.Sigs)
	g.midx.Store(idx)
	return idx
}

// adjIndex returns the current adjacency index, building it on demand.
func (g *Graph) adjIndex() *adjIndex {
	if a := g.adj.Load(); a != nil {
		return a
	}
	g.idxMu.Lock()
	defer g.idxMu.Unlock()
	if a := g.adj.Load(); a != nil {
		return a
	}
	a := buildAdjIndex(g.Deps)
	g.adj.Store(a)
	return a
}

// MatchTelemetry counts match-index hot-path events since graph creation.
// Counters survive index rebuilds (they live on the Graph, not the index).
type MatchTelemetry struct {
	// Lookups counts MatchRequest calls.
	Lookups int64
	// ExactHits counts lookups answered (at least partly) by the exact map —
	// zero regex evaluations on that level.
	ExactHits int64
	// TrieCandidates counts candidates the prefix trie handed up for
	// verification, totalled across lookups.
	TrieCandidates int64
	// RegexEvals counts anchored-regex executions — the work the index
	// exists to avoid; RegexMatches is the subset that matched (fallback
	// regex matches).
	RegexEvals   int64
	RegexMatches int64
}

// MatchTelemetry snapshots the match-index counters.
func (g *Graph) MatchTelemetry() MatchTelemetry {
	return MatchTelemetry{
		Lookups:        g.matchLookups.Load(),
		ExactHits:      g.matchExactHits.Load(),
		TrieCandidates: g.matchTrieCands.Load(),
		RegexEvals:     g.matchRegexEvals.Load(),
		RegexMatches:   g.matchRegexMatches.Load(),
	}
}

// MatchRequest finds the signatures whose URI pattern matches a live request,
// most-specific (longest literal prefix) first — the same set in the same
// order as the retained reference scan (matchRequestScan), via the two-level
// index: exact map first (pure literals, no regex), then the prefix trie's
// candidate bucket verified with precompiled regexes.
func (g *Graph) MatchRequest(r *httpmsg.Request) []*Signature {
	idx := g.matchIndex()
	g.matchLookups.Add(1)
	uri := r.Host + r.Path

	var candBuf [8]*matchCand
	cands := candBuf[:0]
	if bucket := idx.exact[uri]; len(bucket) > 0 {
		hit := false
		for _, c := range bucket {
			if strings.EqualFold(c.sig.Method, r.Method) {
				cands = append(cands, c)
				hit = true
			}
		}
		if hit {
			g.matchExactHits.Add(1)
		}
	}

	var rawBuf [8]*matchCand
	raw := idx.root.collect(uri, rawBuf[:0])
	if len(raw) > 0 {
		g.matchTrieCands.Add(int64(len(raw)))
		evals, hits := int64(0), int64(0)
		for _, c := range raw {
			if !strings.EqualFold(c.sig.Method, r.Method) {
				continue
			}
			if !c.prefilter(uri) {
				continue
			}
			evals++
			if c.re.MatchString(uri) {
				hits++
				cands = append(cands, c)
			}
		}
		if evals > 0 {
			g.matchRegexEvals.Add(evals)
		}
		if hits > 0 {
			g.matchRegexMatches.Add(hits)
		}
	}

	if len(cands) == 0 {
		return nil
	}
	// Exact and trie buckets are each pre-ordered, but their union (and
	// candidates drawn from several trie nodes) needs a merge; candidate
	// sets are small, so an insertion sort on the precomputed keys replaces
	// the seed's sort.SliceStable + closure on the hot path.
	sortCands(cands)
	out := make([]*Signature, len(cands))
	for i, c := range cands {
		out[i] = c.sig
	}
	return out
}

// matchRequestScan is the seed's O(|Sigs|·regex) matcher, retained as the
// reference implementation the differential test holds MatchRequest to.
func (g *Graph) matchRequestScan(r *httpmsg.Request) []*Signature {
	var out []*Signature
	for _, s := range g.Sigs {
		if s.MatchesRequest(r) {
			out = append(out, s)
		}
	}
	stableSortByLiteralLen(out)
	return out
}
