package sig

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"appx/internal/httpmsg"
)

// wishGraph models the paper's Figure 5: get-feed (①) → product/get (②).
func wishGraph() *Graph {
	g := NewGraph("wish")
	feed := &Signature{
		ID:     "wish:Main.loadFeed#0",
		App:    "wish",
		Method: "GET",
		URI:    Concat(Wildcard("host"), Literal("/api/get-feed")),
		Header: []Field{{Key: "User-Agent", Value: Wildcard("device.userAgent")}},
		RespFields: []string{
			"data.products[*].product_info.id",
		},
	}
	detail := &Signature{
		ID:       "wish:Detail.load#0",
		App:      "wish",
		Method:   "POST",
		URI:      Concat(Wildcard("host"), Literal("/product/get")),
		BodyKind: httpmsg.BodyForm,
		BodyForm: []Field{
			{Key: "cid", Value: DepValue("wish:Main.loadFeed#0", "data.products[*].product_info.id")},
			{Key: "_client", Value: Literal("android")},
			{Key: "credit_id", Value: Wildcard("branch"), Optional: true},
		},
	}
	g.Add(feed)
	g.Add(detail)
	g.AddDep(Dependency{
		PredID:   feed.ID,
		SuccID:   detail.ID,
		RespPath: "data.products[*].product_info.id",
		Loc:      FieldLoc{Where: "form", Key: "cid"},
	})
	return g
}

func TestPatternString(t *testing.T) {
	p := Concat(Wildcard("host"), Literal("/api/get-feed"))
	if got := p.String(); got != ".*/api/get-feed" {
		t.Fatalf("String = %q", got)
	}
}

func TestPatternRegexp(t *testing.T) {
	p := Concat(Wildcard(""), Literal("/img"), Wildcard(""))
	re, err := p.Regexp()
	if err != nil {
		t.Fatalf("Regexp: %v", err)
	}
	if !re.MatchString("cdn.wish.example/img?x=1") {
		t.Fatal("regexp should match")
	}
	if re.MatchString("cdn.wish.example/other") {
		t.Fatal("regexp should not match")
	}
}

func TestPatternRegexpEscapesLiterals(t *testing.T) {
	p := Literal("/a.b/c?d=1")
	re, _ := p.Regexp()
	if !re.MatchString("/a.b/c?d=1") {
		t.Fatal("literal should match itself")
	}
	if re.MatchString("/aXb/c?d=1") {
		t.Fatal("dot must be escaped")
	}
}

func TestPatternPredicates(t *testing.T) {
	lit := Literal("x")
	if s, ok := lit.IsLiteral(); !ok || s != "x" {
		t.Fatal("IsLiteral failed")
	}
	if lit.HasDep() || lit.HasUnknown() {
		t.Fatal("literal misclassified")
	}
	dep := DepValue("p", "a.b")
	if !dep.HasDep() || !dep.HasUnknown() {
		t.Fatal("dep misclassified")
	}
	w := Wildcard("o")
	if w.HasDep() || !w.HasUnknown() {
		t.Fatal("wild misclassified")
	}
	if _, ok := Concat(lit, w).IsLiteral(); ok {
		t.Fatal("concat misclassified as literal")
	}
}

func TestMatchesRequest(t *testing.T) {
	g := wishGraph()
	feedReq := &httpmsg.Request{Method: "GET", Host: "wish.example", Path: "/api/get-feed"}
	s := g.Sig("wish:Main.loadFeed#0")
	if !s.MatchesRequest(feedReq) {
		t.Fatal("feed signature should match feed request")
	}
	if s.MatchesRequest(&httpmsg.Request{Method: "POST", Host: "wish.example", Path: "/api/get-feed"}) {
		t.Fatal("method mismatch should not match")
	}
	if s.MatchesRequest(&httpmsg.Request{Method: "GET", Host: "wish.example", Path: "/api/get-feed/x"}) {
		t.Fatal("URI suffix should not match anchored pattern")
	}
}

func TestMatchRequestSpecificityOrder(t *testing.T) {
	g := NewGraph("a")
	g.Add(&Signature{ID: "generic", Method: "GET", URI: Concat(Wildcard(""), Literal("/img"), Wildcard(""))})
	g.Add(&Signature{ID: "specific", Method: "GET", URI: Concat(Wildcard(""), Literal("/img/full/size"), Wildcard(""))})
	req := &httpmsg.Request{Method: "GET", Host: "h", Path: "/img/full/size"}
	got := g.MatchRequest(req)
	if len(got) != 2 || got[0].ID != "specific" {
		ids := make([]string, len(got))
		for i, s := range got {
			ids[i] = s.ID
		}
		t.Fatalf("MatchRequest order = %v, want specific first", ids)
	}
}

func TestGraphTopology(t *testing.T) {
	g := wishGraph()
	if got := g.Predecessors("wish:Detail.load#0"); !reflect.DeepEqual(got, []string{"wish:Main.loadFeed#0"}) {
		t.Fatalf("Predecessors = %v", got)
	}
	if got := g.Successors("wish:Main.loadFeed#0"); !reflect.DeepEqual(got, []string{"wish:Detail.load#0"}) {
		t.Fatalf("Successors = %v", got)
	}
	if got := g.Prefetchable(); !reflect.DeepEqual(got, []string{"wish:Detail.load#0"}) {
		t.Fatalf("Prefetchable = %v", got)
	}
	if got := g.MaxChainLen(); got != 2 {
		t.Fatalf("MaxChainLen = %d, want 2", got)
	}
}

func TestChain(t *testing.T) {
	g := NewGraph("doordash")
	for _, id := range []string{"list", "store", "menu", "suggest"} {
		g.Add(&Signature{ID: id, Method: "GET", URI: Literal("/" + id)})
	}
	g.AddDep(Dependency{PredID: "list", SuccID: "store", RespPath: "id", Loc: FieldLoc{Where: "query", Key: "id"}})
	g.AddDep(Dependency{PredID: "store", SuccID: "menu", RespPath: "id", Loc: FieldLoc{Where: "query", Key: "id"}})
	g.AddDep(Dependency{PredID: "menu", SuccID: "suggest", RespPath: "id", Loc: FieldLoc{Where: "query", Key: "id"}})
	want := []string{"list", "store", "menu", "suggest"}
	if got := g.Chain(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Chain = %v, want %v", got, want)
	}
	if got := g.MaxChainLen(); got != 4 {
		t.Fatalf("MaxChainLen = %d, want 4", got)
	}
}

func TestMaxChainLenHandlesCycles(t *testing.T) {
	g := NewGraph("x")
	g.Add(&Signature{ID: "a", Method: "GET", URI: Literal("/a")})
	g.Add(&Signature{ID: "b", Method: "GET", URI: Literal("/b")})
	g.AddDep(Dependency{PredID: "a", SuccID: "b", RespPath: "p", Loc: FieldLoc{Where: "query", Key: "k"}})
	g.AddDep(Dependency{PredID: "b", SuccID: "a", RespPath: "p", Loc: FieldLoc{Where: "query", Key: "k"}})
	if got := g.MaxChainLen(); got != 2 {
		t.Fatalf("MaxChainLen with cycle = %d, want 2", got)
	}
}

func TestAddDepDeduplicates(t *testing.T) {
	g := wishGraph()
	n := len(g.Deps)
	g.AddDep(g.Deps[0])
	if len(g.Deps) != n {
		t.Fatal("duplicate dependency added")
	}
}

func TestAddReplacesByID(t *testing.T) {
	g := wishGraph()
	n := len(g.Sigs)
	g.Add(&Signature{ID: "wish:Detail.load#0", Method: "GET", URI: Literal("/new")})
	if len(g.Sigs) != n {
		t.Fatalf("Add with same ID grew Sigs to %d", len(g.Sigs))
	}
	if s := g.Sig("wish:Detail.load#0"); s.Method != "GET" {
		t.Fatal("Add did not replace")
	}
}

func TestHashStableAndSensitive(t *testing.T) {
	a := wishGraph().Sig("wish:Detail.load#0")
	b := wishGraph().Sig("wish:Detail.load#0")
	if a.Hash() != b.Hash() {
		t.Fatal("hash not deterministic")
	}
	if len(a.Hash()) != 12 {
		t.Fatalf("hash length = %d", len(a.Hash()))
	}
	b.Method = "PUT"
	if a.Hash() == b.Hash() {
		t.Fatal("hash insensitive to method")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	g := wishGraph()
	b, err := g.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	g2, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(g2.Sigs) != len(g.Sigs) || len(g2.Deps) != len(g.Deps) {
		t.Fatalf("round trip lost data: %d/%d sigs, %d/%d deps",
			len(g2.Sigs), len(g.Sigs), len(g2.Deps), len(g.Deps))
	}
	if g2.Sig("wish:Detail.load#0") == nil {
		t.Fatal("round-tripped graph lost index")
	}
	if g2.Sig("wish:Detail.load#0").Hash() != g.Sig("wish:Detail.load#0").Hash() {
		t.Fatal("hash changed across serialization")
	}
}

// Property: a pattern built from random literal/wildcard parts always
// matches a string built by substituting arbitrary text for wildcards.
func TestPatternRegexpMatchesInstancesProperty(t *testing.T) {
	f := func(kinds []bool, fills []string) bool {
		if len(kinds) == 0 || len(kinds) > 8 {
			return true
		}
		var p Pattern
		var inst strings.Builder
		fi := 0
		for i, isLit := range kinds {
			if isLit {
				litStr := "seg" + string(rune('a'+i))
				p = Concat(p, Literal(litStr))
				inst.WriteString(litStr)
			} else {
				p = Concat(p, Wildcard(""))
				fill := "x"
				if fi < len(fills) {
					// Strip newlines: '.' does not match '\n'.
					fill = strings.Map(func(r rune) rune {
						if r == '\n' || r == '\r' {
							return 'n'
						}
						return r
					}, fills[fi])
					fi++
				}
				inst.WriteString(fill)
			}
		}
		re, err := p.Regexp()
		if err != nil {
			return false
		}
		return re.MatchString(inst.String())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldLocString(t *testing.T) {
	l := FieldLoc{Where: "form", Key: "cid"}
	if l.String() != "form:cid" {
		t.Fatalf("FieldLoc.String = %q", l.String())
	}
}

func TestMerge(t *testing.T) {
	a := wishGraph()
	b := NewGraph("geek")
	b.Add(&Signature{ID: "geek:Main.f#0", Method: "GET", URI: Literal("api.geek.example/feed")})
	b.Add(&Signature{ID: "geek:Det.g#0", Method: "GET", URI: Literal("api.geek.example/item")})
	b.AddDep(Dependency{PredID: "geek:Main.f#0", SuccID: "geek:Det.g#0", RespPath: "id",
		Loc: FieldLoc{Where: "query", Key: "id"}})

	m := Merge(a, b)
	if len(m.Sigs) != len(a.Sigs)+len(b.Sigs) {
		t.Fatalf("merged sigs = %d", len(m.Sigs))
	}
	if len(m.Deps) != len(a.Deps)+len(b.Deps) {
		t.Fatalf("merged deps = %d", len(m.Deps))
	}
	if m.Sig("geek:Det.g#0") == nil || m.Sig("wish:Detail.load#0") == nil {
		t.Fatal("merged graph lost signatures")
	}
	// Per-app topology preserved.
	if got := m.Predecessors("geek:Det.g#0"); len(got) != 1 || got[0] != "geek:Main.f#0" {
		t.Fatalf("merged preds = %v", got)
	}
	if single := Merge(a); single.App != "wish" {
		t.Fatalf("single merge app = %q", single.App)
	}
	if Merge(a, nil) == nil {
		t.Fatal("nil graph not tolerated")
	}
}
