// Package sig defines APPx message signatures and the inter-transaction
// dependency graph — the interchange format between the static analyzer
// (internal/static), the verification phase (internal/verify), and the
// acceleration proxy (internal/proxy).
//
// A Signature characterizes one HTTP transaction site in the app: the
// request's method, URI, query, header, and body fields as patterns
// (concatenations of literals, run-time wildcards, and dependency
// references), plus the response fields the app is known to consume. A
// Dependency records that a field of a successor request is derived from a
// field of a predecessor response (Figure 5 of the paper: Signature ②'s
// 'cid' body field ← Signature ①'s 'data.products[*].product_info.id').
package sig

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"appx/internal/httpmsg"
)

// PartKind discriminates the atoms of a Pattern.
type PartKind string

const (
	// Lit is a string literal known statically.
	Lit PartKind = "lit"
	// Wild is a value determined only at run time (device property, server
	// cookie, dynamic host): matches anything, learned by the proxy.
	Wild PartKind = "wild"
	// Dep is a value derived from a predecessor transaction's response
	// field; resolvable by dynamic learning once the predecessor is seen.
	Dep PartKind = "dep"
)

// Part is one atom of a concatenation pattern.
type Part struct {
	Kind PartKind `json:"kind"`
	Lit  string   `json:"lit,omitempty"`
	// Origin describes where a wild value comes from (e.g. "device.userAgent"),
	// for diagnostics only.
	Origin string `json:"origin,omitempty"`
	// PredID and RespPath locate the source of a dep value: the predecessor
	// signature and the JSON path inside its response body.
	PredID   string `json:"pred,omitempty"`
	RespPath string `json:"respPath,omitempty"`
}

// Pattern is a concatenation of parts describing one field value.
type Pattern struct {
	Parts []Part `json:"parts"`
}

// Literal builds a single-literal pattern.
func Literal(s string) Pattern { return Pattern{Parts: []Part{{Kind: Lit, Lit: s}}} }

// Wildcard builds a single-wildcard pattern.
func Wildcard(origin string) Pattern {
	return Pattern{Parts: []Part{{Kind: Wild, Origin: origin}}}
}

// DepValue builds a single-dependency pattern.
func DepValue(predID, respPath string) Pattern {
	return Pattern{Parts: []Part{{Kind: Dep, PredID: predID, RespPath: respPath}}}
}

// Concat joins several patterns into one.
func Concat(ps ...Pattern) Pattern {
	var out Pattern
	for _, p := range ps {
		out.Parts = append(out.Parts, p.Parts...)
	}
	return out
}

// IsLiteral reports whether the pattern is a pure literal and returns it.
func (p Pattern) IsLiteral() (string, bool) {
	if len(p.Parts) == 1 && p.Parts[0].Kind == Lit {
		return p.Parts[0].Lit, true
	}
	return "", false
}

// HasDep reports whether any part references a predecessor.
func (p Pattern) HasDep() bool {
	for _, part := range p.Parts {
		if part.Kind == Dep {
			return true
		}
	}
	return false
}

// HasUnknown reports whether any part must be resolved at run time (wild or
// dep).
func (p Pattern) HasUnknown() bool {
	for _, part := range p.Parts {
		if part.Kind != Lit {
			return true
		}
	}
	return false
}

// String renders the pattern in the paper's notation: literals verbatim,
// unknowns as ".*".
func (p Pattern) String() string {
	var b strings.Builder
	for _, part := range p.Parts {
		if part.Kind == Lit {
			b.WriteString(part.Lit)
		} else {
			b.WriteString(".*")
		}
	}
	return b.String()
}

// Regexp compiles the pattern to an anchored regular expression: literals
// escaped, unknowns as non-greedy wildcards.
func (p Pattern) Regexp() (*regexp.Regexp, error) {
	var b strings.Builder
	b.WriteString("^")
	for _, part := range p.Parts {
		if part.Kind == Lit {
			b.WriteString(regexp.QuoteMeta(part.Lit))
		} else {
			b.WriteString("(.*)")
		}
	}
	b.WriteString("$")
	return regexp.Compile(b.String())
}

// Field is a named pattern in the query string, header, or form body.
// Optional fields appear only under some run-time branch conditions
// (Figure 8 of the paper); the proxy learns which instance class is current.
type Field struct {
	Key      string  `json:"key"`
	Value    Pattern `json:"value"`
	Optional bool    `json:"optional,omitempty"`
}

// JSONField is a pattern at a path inside a JSON request body.
type JSONField struct {
	Path     string  `json:"path"`
	Value    Pattern `json:"value"`
	Optional bool    `json:"optional,omitempty"`
}

// Signature describes one transaction site.
type Signature struct {
	// ID is the stable analysis-site identifier, e.g.
	// "wish:DetailActivity.onCreate#1".
	ID string `json:"id"`
	// App is the application package name.
	App string `json:"app"`

	Method string  `json:"method"`
	URI    Pattern `json:"uri"` // host + path (scheme-less), e.g. ".*/product/get"

	Query  []Field `json:"query,omitempty"`
	Header []Field `json:"header,omitempty"`

	BodyKind httpmsg.BodyKind `json:"bodyKind"`
	BodyForm []Field          `json:"bodyForm,omitempty"`
	BodyJSON []JSONField      `json:"bodyJSON,omitempty"`

	// RespFields are the response-body JSON paths the app consumes —
	// the positions successors may depend on.
	RespFields []string `json:"respFields,omitempty"`

	// compiled URI matcher cache, initialized exactly once (URIRegexp).
	uriOnce sync.Once
	uriRe   *regexp.Regexp
}

// Hash returns a short stable digest of the signature's request shape, used
// by the configuration file (§4.4, the `hash` field of Figure 9).
func (s *Signature) Hash() string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// Hash a reduced, deterministic view.
	view := struct {
		ID     string
		Method string
		URI    string
		Query  []Field
		Header []Field
		BKind  httpmsg.BodyKind
		BForm  []Field
		BJSON  []JSONField
	}{s.ID, s.Method, s.URI.String(), s.Query, s.Header, s.BodyKind, s.BodyForm, s.BodyJSON}
	enc.Encode(view)
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// URIRegexp returns the compiled anchored URI matcher, caching it. The
// compile runs under sync.Once: request goroutines share signatures, and the
// old check-then-write cache raced when two of them matched the same cold
// signature concurrently. Index builds compile every pattern up front, so
// steady-state matching never takes the Once's slow path.
func (s *Signature) URIRegexp() *regexp.Regexp {
	s.uriOnce.Do(func() {
		re, err := s.URI.Regexp()
		if err != nil {
			// Signatures are machine-generated; a bad pattern is a bug.
			panic(fmt.Sprintf("sig: signature %s has invalid URI pattern: %v", s.ID, err))
		}
		s.uriRe = re
	})
	return s.uriRe
}

// MatchesRequest reports whether a live request plausibly instantiates this
// signature: method equality plus URI regex match (the paper's learning
// target identification, §4.2: "the proxy performs regular expression
// matching on the URI of the incoming transaction").
func (s *Signature) MatchesRequest(r *httpmsg.Request) bool {
	if !strings.EqualFold(s.Method, r.Method) {
		return false
	}
	return s.URIRegexp().MatchString(r.Host + r.Path)
}

// UserAgnostic reports whether every pattern of the signature is free of
// run-time wildcards: each field is either a static literal or derived from
// a predecessor *response* (a Dep part). Wild parts are the per-user
// runtime values (cookies, device properties, learned hosts); a signature
// without them reconstructs identically for every user whose predecessor
// returned the same data, making its responses candidates for the proxy's
// cross-user shared cache tier. The exemplar's extra runtime headers are
// vetted separately by the proxy's header check.
func (s *Signature) UserAgnostic() bool {
	if s.URI.hasWild() {
		return false
	}
	for _, f := range s.Query {
		if f.Value.hasWild() {
			return false
		}
	}
	for _, f := range s.Header {
		if f.Value.hasWild() {
			return false
		}
	}
	for _, f := range s.BodyForm {
		if f.Value.hasWild() {
			return false
		}
	}
	for _, f := range s.BodyJSON {
		if f.Value.hasWild() {
			return false
		}
	}
	return true
}

func (p Pattern) hasWild() bool {
	for _, part := range p.Parts {
		if part.Kind == Wild {
			return true
		}
	}
	return false
}

// FieldLoc names a position inside a request where a dependency lands.
type FieldLoc struct {
	// Where is one of "uri", "query", "header", "form", "json".
	Where string `json:"where"`
	// Key is the query/header/form key or JSON body path; for "uri" it is
	// the decimal index of the pattern part.
	Key string `json:"key"`
}

func (l FieldLoc) String() string { return l.Where + ":" + l.Key }

// Dependency is one edge of the dependency graph: successor field ← value at
// RespPath of predecessor's response.
type Dependency struct {
	PredID   string   `json:"pred"`
	SuccID   string   `json:"succ"`
	RespPath string   `json:"respPath"`
	Loc      FieldLoc `json:"loc"`
}

// Graph bundles an app's signatures and dependencies.
type Graph struct {
	App  string       `json:"app"`
	Sigs []*Signature `json:"sigs"`
	Deps []Dependency `json:"deps"`

	byID map[string]*Signature
	// sigPos maps an ID to its position in Sigs, so replace-by-ID swaps via
	// the map instead of rescanning the slice.
	sigPos map[string]int
	// depSet backs AddDep's dedup with O(1) membership instead of an
	// O(|Deps|) scan per insert.
	depSet map[Dependency]bool

	// Lazily built, atomically published lookup indexes (index.go). Add
	// invalidates midx, AddDep invalidates adj, reindex invalidates both.
	idxMu sync.Mutex
	midx  atomic.Pointer[matchIndex]
	adj   atomic.Pointer[adjIndex]

	// Match-index telemetry (MatchTelemetry); lives here so counters
	// survive index rebuilds.
	matchLookups      atomic.Int64
	matchExactHits    atomic.Int64
	matchTrieCands    atomic.Int64
	matchRegexEvals   atomic.Int64
	matchRegexMatches atomic.Int64
}

// NewGraph builds an empty graph for an app.
func NewGraph(app string) *Graph {
	return &Graph{
		App:    app,
		byID:   make(map[string]*Signature),
		sigPos: make(map[string]int),
		depSet: make(map[Dependency]bool),
	}
}

// Add inserts a signature, replacing any previous one with the same ID.
func (g *Graph) Add(s *Signature) {
	if g.byID == nil {
		g.reindex()
	}
	if pos, exists := g.sigPos[s.ID]; exists {
		g.Sigs[pos] = s
	} else {
		g.sigPos[s.ID] = len(g.Sigs)
		g.Sigs = append(g.Sigs, s)
	}
	g.byID[s.ID] = s
	g.midx.Store(nil)
}

// Sig resolves a signature by ID; nil when absent.
func (g *Graph) Sig(id string) *Signature {
	if g.byID == nil {
		g.reindex()
	}
	return g.byID[id]
}

func (g *Graph) reindex() {
	g.byID = make(map[string]*Signature, len(g.Sigs))
	g.sigPos = make(map[string]int, len(g.Sigs))
	for i, s := range g.Sigs {
		g.byID[s.ID] = s
		g.sigPos[s.ID] = i
	}
	g.depSet = make(map[Dependency]bool, len(g.Deps))
	for _, d := range g.Deps {
		g.depSet[d] = true
	}
	g.midx.Store(nil)
	g.adj.Store(nil)
}

// AddDep appends a dependency edge (deduplicating exact repeats).
func (g *Graph) AddDep(d Dependency) {
	if g.depSet == nil {
		g.reindex()
	}
	if g.depSet[d] {
		return
	}
	g.depSet[d] = true
	g.Deps = append(g.Deps, d)
	g.adj.Store(nil)
}

// Predecessors returns the IDs of signatures that id depends on, in
// deterministic order. The returned slice is shared with the graph's
// adjacency index: treat it as read-only.
func (g *Graph) Predecessors(id string) []string {
	return g.adjIndex().pred[id]
}

// Successors returns the IDs of signatures depending on id. The returned
// slice is shared with the adjacency index: treat it as read-only.
func (g *Graph) Successors(id string) []string {
	return g.adjIndex().succ[id]
}

// DepsInto returns the dependency edges landing in succ, in Deps order.
// Shared with the adjacency index: treat it as read-only.
func (g *Graph) DepsInto(succ string) []Dependency {
	return g.adjIndex().depsInto[succ]
}

// DepsFrom returns the dependency edges leaving pred, in Deps order.
// Shared with the adjacency index: treat it as read-only.
func (g *Graph) DepsFrom(pred string) []Dependency {
	return g.adjIndex().depsFrom[pred]
}

// Prefetchable returns the IDs of successor signatures — those with at least
// one incoming dependency (the paper's "prefetchable signature is a
// successor"). Sorted, cached in the adjacency index: treat as read-only.
func (g *Graph) Prefetchable() []string {
	return g.adjIndex().prefetchable
}

// MaxChainLen returns the length (in edges + 1, i.e. number of transactions)
// of the longest successive dependency chain. Cycles, which static
// over-approximation can produce, are broken by visit marking.
func (g *Graph) MaxChainLen() int {
	adj := map[string][]string{}
	for _, d := range g.Deps {
		adj[d.PredID] = append(adj[d.PredID], d.SuccID)
	}
	memo := map[string]int{}
	onPath := map[string]bool{}
	var depth func(id string) int
	depth = func(id string) int {
		if v, ok := memo[id]; ok {
			return v
		}
		if onPath[id] {
			return 0
		}
		onPath[id] = true
		best := 0
		for _, nxt := range adj[id] {
			if d := depth(nxt); d > best {
				best = d
			}
		}
		onPath[id] = false
		memo[id] = best + 1
		return best + 1
	}
	max := 0
	if len(g.Sigs) > 0 && len(g.Deps) > 0 {
		for _, s := range g.Sigs {
			if d := depth(s.ID); d > max {
				max = d
			}
		}
	}
	return max
}

// Chain returns one longest dependency chain as a sequence of signature IDs,
// for the case-study outputs (Figures 11/12 of the paper).
func (g *Graph) Chain() []string {
	adj := map[string][]string{}
	for _, d := range g.Deps {
		adj[d.PredID] = append(adj[d.PredID], d.SuccID)
	}
	for _, v := range adj {
		sort.Strings(v)
	}
	var best []string
	onPath := map[string]bool{}
	var walk func(id string, path []string)
	walk = func(id string, path []string) {
		if onPath[id] {
			return
		}
		onPath[id] = true
		path = append(path, id)
		if len(path) > len(best) {
			best = append([]string(nil), path...)
		}
		for _, nxt := range adj[id] {
			walk(nxt, path)
		}
		onPath[id] = false
	}
	ids := make([]string, 0, len(g.Sigs))
	for _, s := range g.Sigs {
		ids = append(ids, s.ID)
	}
	sort.Strings(ids)
	for _, id := range ids {
		walk(id, nil)
	}
	return best
}

// stableSortByLiteralLen orders signatures most-specific-first (longest
// total literal length), preserving input order among equals — the reference
// ordering MatchRequest's index reproduces via precomputed keys.
func stableSortByLiteralLen(out []*Signature) {
	sort.SliceStable(out, func(i, j int) bool {
		return literalLen(out[i].URI) > literalLen(out[j].URI)
	})
}

func literalLen(p Pattern) int {
	n := 0
	for _, part := range p.Parts {
		if part.Kind == Lit {
			n += len(part.Lit)
		}
	}
	return n
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge combines several apps' graphs into one, so a single proxy instance
// can accelerate multiple target apps (§2 of the paper: "the proxy can
// accelerate multiple target apps"). Signature IDs are app-prefixed by
// construction, so they cannot collide.
func Merge(graphs ...*Graph) *Graph {
	out := NewGraph("multi")
	if len(graphs) == 1 {
		out.App = graphs[0].App
	}
	for _, g := range graphs {
		if g == nil {
			continue
		}
		for _, s := range g.Sigs {
			out.Add(s)
		}
		for _, d := range g.Deps {
			out.AddDep(d)
		}
	}
	return out
}

// Fingerprint returns a short stable digest of the whole graph — every
// signature's ID and shape hash plus every dependency edge, order
// independent. Persisted learner state is keyed by it: exemplars and
// samples learned against one graph are meaningless (or wrong) against
// another, so a restore only applies when the fingerprints match.
func (g *Graph) Fingerprint() string {
	lines := make([]string, 0, len(g.Sigs)+len(g.Deps))
	for _, s := range g.Sigs {
		lines = append(lines, "sig\x00"+s.ID+"\x00"+s.Hash())
	}
	for _, d := range g.Deps {
		lines = append(lines, "dep\x00"+d.PredID+"\x00"+d.SuccID+"\x00"+d.RespPath+"\x00"+d.Loc.String())
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Marshal serializes the graph to JSON.
func (g *Graph) Marshal() ([]byte, error) {
	return json.MarshalIndent(g, "", "  ")
}

// Unmarshal parses a graph from JSON.
func Unmarshal(b []byte) (*Graph, error) {
	var g Graph
	if err := json.Unmarshal(b, &g); err != nil {
		return nil, err
	}
	g.reindex()
	return &g, nil
}
