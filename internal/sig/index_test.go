package sig

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"appx/internal/httpmsg"
)

// --- differential testing: indexed MatchRequest ≡ naive scan -------------

// randPattern builds a random URI pattern over a small segment pool so that
// prefixes collide across signatures (the interesting case for the trie).
func randPattern(rnd *rand.Rand) Pattern {
	hosts := []string{"api.a.example", "api.b.example", "cdn.c.example", "h"}
	segs := []string{"/v1", "/v2", "/items", "/feed", "/img", "/x"}
	var p Pattern
	switch rnd.Intn(10) {
	case 0, 1, 2, 3: // fully literal
		p = Literal(hosts[rnd.Intn(len(hosts))])
		for n := rnd.Intn(3); n >= 0; n-- {
			p = Concat(p, Literal(segs[rnd.Intn(len(segs))]))
		}
		if rnd.Intn(3) == 0 { // multi-part literal, still exact-map material
			p = Concat(p, Literal(fmt.Sprintf("/%d", rnd.Intn(8))))
		}
	case 4, 5, 6: // literal prefix + wild tail (trie bucket)
		p = Literal(hosts[rnd.Intn(len(hosts))] + segs[rnd.Intn(len(segs))] + "/")
		p = Concat(p, Wildcard(""))
		if rnd.Intn(2) == 0 {
			p = Concat(p, Literal(segs[rnd.Intn(len(segs))]), Wildcard(""))
		}
	case 7, 8: // leading wildcard host (paper shape; root fallback bucket)
		p = Concat(Wildcard("host"), Literal(segs[rnd.Intn(len(segs))]+segs[rnd.Intn(len(segs))]))
		if rnd.Intn(2) == 0 {
			p = Concat(p, Wildcard(""))
		}
	default: // dep part in the URI (also an unknown)
		p = Concat(Literal(hosts[rnd.Intn(len(hosts))]+"/go/"), DepValue("pred", "id"))
	}
	return p
}

// instantiate renders a concrete URI from the pattern with random wild fills.
func instantiateURI(rnd *rand.Rand, p Pattern) string {
	fills := []string{"", "1", "abc", "a/b", "0/full/size"}
	var out string
	for _, part := range p.Parts {
		if part.Kind == Lit {
			out += part.Lit
		} else {
			out += fills[rnd.Intn(len(fills))]
		}
	}
	return out
}

func TestMatchRequestDifferential(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	methods := []string{"GET", "POST", "PUT", "get"}
	pairs := 0
	for gi := 0; gi < 120; gi++ {
		g := NewGraph("diff")
		nsigs := 3 + rnd.Intn(38)
		for i := 0; i < nsigs; i++ {
			g.Add(&Signature{
				ID:     fmt.Sprintf("s%d", i),
				Method: methods[rnd.Intn(3)],
				URI:    randPattern(rnd),
			})
		}
		// Mutate mid-stream sometimes, so invalidation is part of the
		// property, not a separate code path.
		for ri := 0; ri < 12; ri++ {
			if ri == 6 && rnd.Intn(2) == 0 {
				g.Add(&Signature{ID: "late", Method: "GET", URI: randPattern(rnd)})
			}
			var uri string
			if rnd.Intn(5) == 0 {
				uri = "no.such.example/none" // deliberate miss
			} else {
				uri = instantiateURI(rnd, g.Sigs[rnd.Intn(len(g.Sigs))].URI)
			}
			req := &httpmsg.Request{Method: methods[rnd.Intn(len(methods))], Host: uri}
			want := g.matchRequestScan(req)
			got := g.MatchRequest(req)
			if len(got) != len(want) {
				t.Fatalf("graph %d req %q: indexed %d matches, scan %d", gi, uri, len(got), len(want))
			}
			for k := range want {
				if got[k].ID != want[k].ID {
					gotIDs := make([]string, len(got))
					wantIDs := make([]string, len(want))
					for m := range got {
						gotIDs[m], wantIDs[m] = got[m].ID, want[m].ID
					}
					t.Fatalf("graph %d req %q: indexed %v, scan %v", gi, uri, gotIDs, wantIDs)
				}
			}
			pairs++
		}
	}
	if pairs < 1000 {
		t.Fatalf("only %d request/graph pairs exercised, want >= 1000", pairs)
	}
}

// Overlap of exact-literal and wildcard patterns on one URI, with a literal
// tie: the index must reproduce the scan's (literal length desc, insertion
// order) ordering without a hot-path sort.
func TestMatchRequestExactAndTrieMerge(t *testing.T) {
	g := NewGraph("merge")
	g.Add(&Signature{ID: "wild-early", Method: "GET", URI: Concat(Literal("h/p"), Wildcard(""))})
	g.Add(&Signature{ID: "exact", Method: "GET", URI: Literal("h/p")})
	g.Add(&Signature{ID: "wild-long", Method: "GET", URI: Concat(Literal("h/p"), Wildcard(""), Literal("x"))})
	req := &httpmsg.Request{Method: "GET", Host: "h", Path: "/p"}
	got := g.MatchRequest(req)
	want := g.matchRequestScan(req)
	if len(got) != 2 || len(want) != 2 || got[0].ID != want[0].ID || got[1].ID != want[1].ID {
		t.Fatalf("merge order: indexed %v scan %v", ids(got), ids(want))
	}
	// Equal literal length (3): insertion order breaks the tie.
	if got[0].ID != "wild-early" || got[1].ID != "exact" {
		t.Fatalf("tie order = %v, want [wild-early exact]", ids(got))
	}
}

func ids(sigs []*Signature) []string {
	out := make([]string, len(sigs))
	for i, s := range sigs {
		out[i] = s.ID
	}
	return out
}

// --- concurrency: the lazy URIRegexp compile raced before this PR --------

// TestMatchRequestConcurrent hammers matching and direct URIRegexp access on
// a cold graph from many goroutines. Under -race this failed against the
// seed's unsynchronized check-then-write regexp cache.
func TestMatchRequestConcurrent(t *testing.T) {
	g := NewGraph("conc")
	for i := 0; i < 64; i++ {
		g.Add(&Signature{ID: fmt.Sprintf("w%d", i), Method: "GET",
			URI: Concat(Wildcard("host"), Literal(fmt.Sprintf("/api/e%d/", i)), Wildcard(""))})
		g.Add(&Signature{ID: fmt.Sprintf("l%d", i), Method: "GET",
			URI: Literal(fmt.Sprintf("api.example/lit/%d", i))})
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				req := &httpmsg.Request{Method: "GET", Host: "h.example",
					Path: fmt.Sprintf("/api/e%d/%d", i%64, i)}
				if got := g.MatchRequest(req); len(got) != 1 {
					t.Errorf("worker %d: %d matches for %s", w, len(got), req.Path)
					return
				}
				// Direct signature-level access, the exact seed race site.
				g.Sigs[(w+i)%len(g.Sigs)].URIRegexp()
			}
		}(w)
	}
	wg.Wait()
}

// --- telemetry and index shape -------------------------------------------

func TestExactMatchZeroRegex(t *testing.T) {
	g := NewGraph("exact")
	for i := 0; i < 50; i++ {
		g.Add(&Signature{ID: fmt.Sprintf("lit%d", i), Method: "GET",
			URI: Literal(fmt.Sprintf("api.example/item/%d", i))})
	}
	// A wildcard signature under a different prefix must not cost the
	// literal lookups any regex evaluations.
	g.Add(&Signature{ID: "wild", Method: "GET",
		URI: Concat(Literal("cdn.example/static/"), Wildcard(""))})
	for i := 0; i < 50; i++ {
		req := &httpmsg.Request{Method: "GET", Host: "api.example", Path: fmt.Sprintf("/item/%d", i)}
		if got := g.MatchRequest(req); len(got) != 1 {
			t.Fatalf("item %d: %d matches", i, len(got))
		}
	}
	mt := g.MatchTelemetry()
	if mt.Lookups != 50 || mt.ExactHits != 50 {
		t.Fatalf("lookups/exactHits = %d/%d, want 50/50", mt.Lookups, mt.ExactHits)
	}
	if mt.RegexEvals != 0 {
		t.Fatalf("literal-URI lookups performed %d regex evaluations, want 0", mt.RegexEvals)
	}
	if mt.TrieCandidates != 0 {
		t.Fatalf("literal-URI lookups examined %d trie candidates, want 0", mt.TrieCandidates)
	}
}

func TestTrieNarrowsCandidates(t *testing.T) {
	g := NewGraph("trie")
	// 40 wildcard signatures split across two disjoint prefixes.
	for i := 0; i < 20; i++ {
		g.Add(&Signature{ID: fmt.Sprintf("a%d", i), Method: "GET",
			URI: Concat(Literal(fmt.Sprintf("a.example/x%d/", i)), Wildcard(""))})
		g.Add(&Signature{ID: fmt.Sprintf("b%d", i), Method: "GET",
			URI: Concat(Literal(fmt.Sprintf("b.example/y%d/", i)), Wildcard(""))})
	}
	req := &httpmsg.Request{Method: "GET", Host: "a.example", Path: "/x7/123"}
	if got := g.MatchRequest(req); len(got) != 1 || got[0].ID != "a7" {
		t.Fatalf("MatchRequest = %v", ids(got))
	}
	mt := g.MatchTelemetry()
	if mt.TrieCandidates >= 40 {
		t.Fatalf("trie examined %d candidates — no narrowing over the full scan", mt.TrieCandidates)
	}
	if mt.TrieCandidates < 1 || mt.RegexEvals < 1 || mt.RegexMatches != 1 {
		t.Fatalf("telemetry = %+v", mt)
	}
}

// --- invalidation rules ---------------------------------------------------

func TestMatchIndexInvalidatedByAdd(t *testing.T) {
	g := NewGraph("inv")
	g.Add(&Signature{ID: "a", Method: "GET", URI: Literal("h/a")})
	req := &httpmsg.Request{Method: "GET", Host: "h", Path: "/b"}
	if got := g.MatchRequest(req); len(got) != 0 {
		t.Fatalf("unexpected match %v", ids(got))
	}
	g.Add(&Signature{ID: "b", Method: "GET", URI: Literal("h/b")})
	if got := g.MatchRequest(req); len(got) != 1 || got[0].ID != "b" {
		t.Fatalf("index not invalidated by Add: %v", ids(got))
	}
	// Replace-by-ID must also take effect.
	g.Add(&Signature{ID: "b", Method: "GET", URI: Literal("h/b2")})
	if got := g.MatchRequest(req); len(got) != 0 {
		t.Fatalf("index kept replaced signature: %v", ids(got))
	}
}

func TestAdjIndexInvalidatedByAddDep(t *testing.T) {
	g := NewGraph("adj")
	g.Add(&Signature{ID: "p", Method: "GET", URI: Literal("h/p")})
	g.Add(&Signature{ID: "s", Method: "GET", URI: Literal("h/s")})
	if got := g.Prefetchable(); len(got) != 0 {
		t.Fatalf("Prefetchable before deps = %v", got)
	}
	g.AddDep(Dependency{PredID: "p", SuccID: "s", RespPath: "id", Loc: FieldLoc{Where: "query", Key: "id"}})
	if got := g.Prefetchable(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("adjacency index not invalidated by AddDep: %v", got)
	}
	if got := g.Successors("p"); len(got) != 1 || got[0] != "s" {
		t.Fatalf("Successors = %v", got)
	}
	if got := g.DepsInto("s"); len(got) != 1 || got[0].PredID != "p" {
		t.Fatalf("DepsInto = %v", got)
	}
}

func TestAddDepDedupAfterUnmarshal(t *testing.T) {
	g := wishGraph()
	b, err := g.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	n := len(g2.Deps)
	g2.AddDep(g2.Deps[0])
	if len(g2.Deps) != n {
		t.Fatal("depSet not rebuilt by Unmarshal: duplicate added")
	}
}
