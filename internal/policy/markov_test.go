package policy

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// markovAt builds a markov policy over a settable frozen clock.
func markovAt(cfg MarkovConfig) (*Markov, *time.Time) {
	now := time.Unix(1_700_000_000, 0)
	cfg.Now = func() time.Time { return now }
	return NewMarkov(Hooks{}, cfg), &now
}

// teach feeds n home→fav transitions, 10 seconds apart.
func teach(m *Markov, now *time.Time, user, fav string, n int) {
	for i := 0; i < n; i++ {
		*now = now.Add(10 * time.Second)
		m.Observe(user, "home", *now)
		*now = now.Add(2 * time.Second)
		m.Observe(user, fav, *now)
	}
}

func branchCands(n int) []Candidate {
	out := make([]Candidate, n)
	for i := range out {
		out[i] = Candidate{SigID: fmt.Sprintf("b%d", i), Index: i, Prior: 1}
	}
	return out
}

// TestMarkovLearnsAndPrunes: after enough favourite observations the model
// ranks the favourite first and prunes the never-taken branches as
// unlikely.
func TestMarkovLearnsAndPrunes(t *testing.T) {
	m, now := markovAt(MarkovConfig{})
	teach(m, now, "u", "b2", 6)
	ds := m.Rank("u", "home", branchCands(4))
	if ds[0].SigID != "b2" || !ds[0].Keep {
		t.Fatalf("favourite not ranked first/kept: %+v", ds)
	}
	for _, d := range ds[1:] {
		if d.Keep {
			t.Fatalf("unlikely branch %s not pruned: %+v", d.SigID, d)
		}
		if d.KeepReason != ReasonUnlikely {
			t.Fatalf("branch %s reason = %q", d.SigID, d.KeepReason)
		}
	}
	st := m.Stats()
	if st.Pruned == 0 || st.Reordered == 0 || st.Users != 1 {
		t.Fatalf("stats after learning: %+v", st)
	}
	if st.TableBytes <= 0 {
		t.Fatalf("table bytes = %d", st.TableBytes)
	}
}

// TestMarkovColdIdentity: with no history at all, markov's decisions are
// byte-identical to static's — same order, no pruning.
func TestMarkovColdIdentity(t *testing.T) {
	m, _ := markovAt(MarkovConfig{})
	cands := branchCands(6)
	got := m.Rank("u", "home", cands)
	want := NewStatic(Hooks{}).Rank("u", "home", cands)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cold markov diverged from static:\n got %+v\nwant %+v", got, want)
	}
}

// TestMarkovNoTransitionContext: issue-time ranking (from == "") never
// reorders or prunes, whatever the model knows.
func TestMarkovNoTransitionContext(t *testing.T) {
	m, now := markovAt(MarkovConfig{})
	teach(m, now, "u", "b2", 8)
	cands := branchCands(4)
	for i, d := range m.Rank("u", "", cands) {
		if !d.Keep || d.SigID != cands[i].SigID {
			t.Fatalf("issue-time rank intervened: %+v", d)
		}
	}
}

// TestMarkovSessionGap: hits separated by more than SessionGap do not form
// transitions — a returning user starts a fresh session.
func TestMarkovSessionGap(t *testing.T) {
	m, now := markovAt(MarkovConfig{})
	m.Observe("u", "home", *now)
	*now = now.Add(2 * time.Hour)
	m.Observe("u", "b0", *now)
	if st := m.Stats(); st.Transitions != 0 {
		t.Fatalf("cross-session transition recorded: %+v", st)
	}
	// Self-transitions (refreshes) are not navigation evidence either.
	*now = now.Add(time.Second)
	m.Observe("u", "b0", *now)
	if st := m.Stats(); st.Transitions != 0 {
		t.Fatalf("self-transition recorded: %+v", st)
	}
}

// TestMarkovDecayForgets: evidence many half-lives old no longer clears the
// prune confidence bar, so a long-idle model degrades to static behaviour
// instead of acting on stale counts.
func TestMarkovDecayForgets(t *testing.T) {
	m, now := markovAt(MarkovConfig{HalfLife: time.Minute})
	teach(m, now, "u", "b2", 6)
	*now = now.Add(24 * time.Hour)
	for _, d := range m.Rank("u", "home", branchCands(4)) {
		if !d.Keep {
			t.Fatalf("stale evidence still prunes: %+v", d)
		}
	}
}

// TestMarkovBounds: the model's footprint stays bounded — least recently
// seen users evict at MaxUsers, and a row tracks at most
// defaultMaxSuccessorsPerRow successors.
func TestMarkovBounds(t *testing.T) {
	m, now := markovAt(MarkovConfig{MaxUsers: 2})
	for i := 0; i < 5; i++ {
		*now = now.Add(time.Second)
		m.Observe(fmt.Sprintf("u%d", i), "home", *now)
	}
	if st := m.Stats(); st.Users != 2 {
		t.Fatalf("users = %d, want 2 (MaxUsers)", st.Users)
	}

	m2, now2 := markovAt(MarkovConfig{})
	for i := 0; i < 2*defaultMaxSuccessorsPerRow; i++ {
		*now2 = now2.Add(time.Second)
		m2.Observe("u", "home", *now2)
		*now2 = now2.Add(time.Second)
		m2.Observe("u", fmt.Sprintf("b%d", i), *now2)
		*now2 = now2.Add(time.Second)
		m2.Observe("u", "home", *now2)
	}
	// Per-user and global "home" rows each cap their successor fan-out.
	ex := m2.Export()
	rowLens := map[string]int{}
	for _, r := range ex.Users[0].Rows {
		rowLens["user/"+r.From] = len(r.To)
	}
	for _, r := range ex.Global {
		rowLens["global/"+r.From] = len(r.To)
	}
	for _, table := range []string{"user", "global"} {
		if n := rowLens[table+"/home"]; n == 0 || n > defaultMaxSuccessorsPerRow {
			t.Fatalf("%s home row tracks %d successors, cap %d",
				table, n, defaultMaxSuccessorsPerRow)
		}
	}
}

// TestMarkovExportRestoreRoundTrip: Export → Restore reproduces the model
// exactly — identical re-export and identical ranking behaviour.
func TestMarkovExportRestoreRoundTrip(t *testing.T) {
	m, now := markovAt(MarkovConfig{})
	teach(m, now, "u1", "b2", 6)
	teach(m, now, "u2", "b0", 4)
	st := m.Export()
	if st.Name != "markov" || len(st.Users) != 2 || len(st.Global) == 0 {
		t.Fatalf("export shape: %+v", st)
	}

	fresh, _ := markovAt(MarkovConfig{})
	// Restored model must rank with the restored clock context, so share
	// the original's Now.
	fresh.cfg.Now = m.cfg.Now
	fresh.Restore(st)
	if got := fresh.Export(); !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip changed state:\n got %+v\nwant %+v", got, st)
	}
	want := m.Rank("u1", "home", branchCands(4))
	got := fresh.Rank("u1", "home", branchCands(4))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored model ranks differently:\n got %+v\nwant %+v", got, want)
	}
	s1, s2 := m.Stats(), fresh.Stats()
	if s1.Users != s2.Users || s1.Rows != s2.Rows || s1.Transitions != s2.Transitions {
		t.Fatalf("restored bookkeeping differs: %+v vs %+v", s1, s2)
	}
}

// TestMarkovConcurrent hammers Observe/Rank/Stats/Export from many
// goroutines — the -race gate in scripts/check.sh relies on this test to
// prove the model's locking.
func TestMarkovConcurrent(t *testing.T) {
	m := NewMarkov(Hooks{}, MarkovConfig{})
	base := time.Unix(1_700_000_000, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", w%4)
			for i := 0; i < 200; i++ {
				at := base.Add(time.Duration(w*1000+i) * time.Second)
				m.Observe(user, fmt.Sprintf("b%d", i%6), at)
				m.Rank(user, "b0", branchCands(4))
				if i%50 == 0 {
					m.Stats()
					m.Export()
				}
			}
		}(w)
	}
	wg.Wait()
	if st := m.Stats(); st.Observations != 8*200 {
		t.Fatalf("observations = %d, want %d", st.Observations, 8*200)
	}
}
