package policy

import (
	"strings"

	"appx/internal/httpmsg"
)

// perUserShareDeny lists header-name fragments that conservatively mark a
// request as carrying per-user state (credentials, sessions, accounts).
// Matching entries never enter the shared tier — not because serving them
// would be unsafe (exact-match still holds), but because a credentialed
// response is per-user data that must not outlive its user's eviction, and
// a shared slot for it could never serve anyone else anyway.
var perUserShareDeny = []string{"cookie", "auth", "token", "session", "secret", "credential", "account"}

// SharedEligible is the header half of shared-tier eligibility: whether a
// reconstructed request's live headers (which carry the exemplar's extra
// run-time headers) smell of per-user state. The caller has already
// established that the signature's patterns are user-agnostic.
func SharedEligible(header []httpmsg.Field) bool {
	for _, h := range header {
		name := strings.ToLower(h.Key)
		for _, deny := range perUserShareDeny {
			if strings.Contains(name, deny) {
				return false
			}
		}
	}
	return true
}
