// Package policy holds the proxy's prefetch decision logic behind one
// pluggable interface: given the candidates a predecessor transaction fans
// out to, a Policy decides which survive (Keep), in what order they are
// attempted, and — at issue time — whether the scheduler may run each one
// (Allow) and with what probability (Prob).
//
// Two implementations ship: Static reproduces the proxy's historical
// behaviour exactly (dependency-graph order, governor/backoff/breaker
// gating, no history), and Markov layers a first-order per-user transition
// model over it that reorders and prunes chains by observed behaviour
// (ROADMAP: "per-user history predicts next requests far better than static
// structure alone", after Zhao et al.).
//
// The proxy talks to a Policy at two moments:
//
//   - Fan-out (learn): Rank the batch of successor candidates of one
//     predecessor. The caller honours Keep and the output order only —
//     execution gates are re-checked at issue time, because a candidate may
//     sit parked (awaiting an exemplar) for arbitrarily long between the
//     two moments.
//   - Issue (maybePrefetch): Rank a single concrete candidate just before
//     scheduling. The caller honours Allow, AllowReason, and Prob.
//
// Hooks carry the proxy-side gate state (governor level, shedding mode,
// signature suspension, breaker readiness, chain-depth ceiling) as
// functions, so a Policy never imports the proxy. Every hook must be
// side-effect free: Rank may be called at any point relative to the
// probability draw.
package policy

import "time"

// Candidate is one prefetch the proxy is considering.
type Candidate struct {
	// SigID is the candidate signature.
	SigID string
	// Host is the origin host of the concrete request, when known. Empty
	// at fan-out time (the request is not materialized yet); the breaker
	// gate is skipped for empty hosts.
	Host string
	// Depth is the chain depth this prefetch would run at (0 = fanned out
	// from live traffic).
	Depth int
	// Index is the candidate's position in the caller's slice; callers use
	// it to correlate decisions back to their own bookkeeping after
	// reordering.
	Index int
	// Foreground marks refresh work riding in the foreground scheduler
	// class; the governor never throttles it.
	Foreground bool
	// Prior is the configured issue probability (per-signature probability
	// × user scale) before any governor scaling.
	Prior float64
}

// Decision is a Policy's verdict on one Candidate.
type Decision struct {
	Candidate

	// Keep is the fan-out verdict: false means the candidate should not be
	// instantiated at all (chain-depth ceiling, or history says the
	// transition is too unlikely to pay for). KeepReason names why.
	Keep       bool
	KeepReason string

	// Allow is the issue-time verdict: false means the prefetch must not be
	// scheduled right now (governor shedding, signature suspended, breaker
	// open). AllowReason names why.
	Allow       bool
	AllowReason string

	// Prob is the probability the caller should issue the prefetch with
	// (prior scaled by the governor level for non-foreground work).
	Prob float64
	// Score orders candidates: higher runs earlier. Static scores by Prior;
	// Markov by estimated transition probability.
	Score float64
}

// Decision reasons.
const (
	ReasonShedding  = "shedding"     // governor is in shedding mode
	ReasonSuspended = "suspended"    // signature is in failure backoff
	ReasonBreaker   = "breaker-open" // origin host's breaker is not admitting
	ReasonDepth     = "depth"        // beyond the effective chain depth
	ReasonUnlikely  = "unlikely"     // history says this transition is improbable
)

// Stats is a point-in-time snapshot of a policy's model and activity.
// Static policies report zeroes.
type Stats struct {
	// Users is the number of per-user models held.
	Users int
	// Rows is the total transition rows (distinct observed "from"
	// signatures) across users.
	Rows int
	// Transitions is the total (from, to) pairs tracked.
	Transitions int
	// TableBytes estimates the model's memory footprint.
	TableBytes int64

	// Observations counts Observe calls folded into the model.
	Observations int64
	// RankCalls counts Rank invocations.
	RankCalls int64
	// Pruned counts candidates dropped with ReasonUnlikely.
	Pruned int64
	// Reordered counts Rank calls whose output order differed from the
	// input order.
	Reordered int64
}

// Policy ranks prefetch candidates and (optionally) learns from observed
// traffic. Implementations must be safe for concurrent use.
type Policy interface {
	// Name identifies the policy ("static", "markov").
	Name() string
	// Rank decides each candidate's fate. from is the signature the
	// candidates would be prefetched after (the predecessor); empty means
	// "no transition context" and disables history scoring. The returned
	// slice is a permutation of decisions over the input candidates,
	// ordered best-first.
	Rank(user, from string, cands []Candidate) []Decision
	// Observe folds one live signature hit for a user into the model.
	Observe(user, sigID string, now time.Time)
	// Stats snapshots the model for telemetry.
	Stats() Stats
}

// Hooks supplies the proxy-side gate state policies consult. Nil function
// fields are permissive (treated as "no gate"). All hooks must be
// side-effect free and safe for concurrent use.
type Hooks struct {
	// Level is the governor's prefetch level (0..1); scales Prob for
	// non-foreground candidates.
	Level func() float64
	// Shedding reports whether the governor is refusing speculative work.
	Shedding func() bool
	// Suspended reports whether a signature is inside its failure-backoff
	// window.
	Suspended func(sigID string) bool
	// HostReady reports whether a host's circuit breaker would admit a
	// request right now.
	HostReady func(host string) bool
	// MaxDepth is the effective chain-depth ceiling (already scaled by the
	// governor).
	MaxDepth func() int
}

// decide applies the shared execution gates to one candidate, reproducing
// the proxy's historical gate order and precedence exactly: shedding is
// checked first (and the governor level multiplies Prob only when not
// shedding), then suspension, then the breaker; the chain-depth ceiling is
// an independent Keep verdict. Depth 0 (live fan-out) is never
// depth-pruned.
func (h Hooks) decide(c Candidate) Decision {
	d := Decision{Candidate: c, Keep: true, Allow: true, Prob: c.Prior, Score: c.Prior}
	if !c.Foreground {
		if h.Shedding != nil && h.Shedding() {
			d.Allow = false
			d.AllowReason = ReasonShedding
		} else if h.Level != nil {
			d.Prob *= h.Level()
		}
	}
	if d.Allow && h.Suspended != nil && h.Suspended(c.SigID) {
		d.Allow = false
		d.AllowReason = ReasonSuspended
	}
	if d.Allow && c.Host != "" && h.HostReady != nil && !h.HostReady(c.Host) {
		d.Allow = false
		d.AllowReason = ReasonBreaker
	}
	if c.Depth > 0 && h.MaxDepth != nil && c.Depth > h.MaxDepth() {
		d.Keep = false
		d.KeepReason = ReasonDepth
	}
	return d
}
