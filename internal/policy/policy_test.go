package policy

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// refConfig is a concrete, randomized gate configuration for the
// differential tests below.
type refConfig struct {
	level     float64
	shedding  bool
	suspended map[string]bool
	hostDown  map[string]bool
	maxDepth  int
}

func (rc refConfig) hooks() Hooks {
	return Hooks{
		Level:     func() float64 { return rc.level },
		Shedding:  func() bool { return rc.shedding },
		Suspended: func(id string) bool { return rc.suspended[id] },
		HostReady: func(h string) bool { return !rc.hostDown[h] },
		MaxDepth:  func() int { return rc.maxDepth },
	}
}

// reference reimplements the pre-policy inline decision logic of
// internal/proxy — the depth ceiling from the old runPrefetch chain gate
// and the governor/backoff/breaker sequence from the old maybePrefetch —
// independently of Hooks.decide, so the differential test pins the static
// policy to the historical behaviour rather than to its own implementation.
func (rc refConfig) reference(c Candidate) Decision {
	d := Decision{Candidate: c, Keep: true, Allow: true, Prob: c.Prior, Score: c.Prior}
	if !c.Foreground {
		if rc.shedding {
			d.Allow = false
			d.AllowReason = ReasonShedding
		} else {
			d.Prob *= rc.level
		}
	}
	if d.Allow && rc.suspended[c.SigID] {
		d.Allow = false
		d.AllowReason = ReasonSuspended
	}
	if d.Allow && c.Host != "" && rc.hostDown[c.Host] {
		d.Allow = false
		d.AllowReason = ReasonBreaker
	}
	if c.Depth > 0 && c.Depth > rc.maxDepth {
		d.Keep = false
		d.KeepReason = ReasonDepth
	}
	return d
}

// TestStaticDifferentialIdentity pins the static policy byte-identical to
// the pre-policy chain behaviour across >1000 randomized candidate batches
// and gate configurations: same keep/allow verdicts, same reasons, same
// probabilities, same order.
func TestStaticDifferentialIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 1200; iter++ {
		rc := refConfig{
			level:     rng.Float64(),
			shedding:  rng.Intn(4) == 0,
			suspended: map[string]bool{},
			hostDown:  map[string]bool{},
			maxDepth:  rng.Intn(5),
		}
		n := 1 + rng.Intn(12)
		cands := make([]Candidate, n)
		for i := range cands {
			id := fmt.Sprintf("sig%d", rng.Intn(8))
			host := ""
			if rng.Intn(2) == 0 {
				host = fmt.Sprintf("h%d.example", rng.Intn(3))
			}
			cands[i] = Candidate{
				SigID:      id,
				Host:       host,
				Depth:      rng.Intn(6),
				Index:      i,
				Foreground: rng.Intn(4) == 0,
				Prior:      rng.Float64(),
			}
			if rng.Intn(6) == 0 {
				rc.suspended[id] = true
			}
			if host != "" && rng.Intn(6) == 0 {
				rc.hostDown[host] = true
			}
		}
		want := make([]Decision, n)
		for i, c := range cands {
			want[i] = rc.reference(c)
		}
		got := NewStatic(rc.hooks()).Rank("u", "from", cands)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: static diverged from reference\n got %+v\nwant %+v", iter, got, want)
		}
	}
}

// TestStaticNilHooksPermissive: a static policy with no hooks wired gates
// nothing — every candidate keeps, allows, and carries its prior.
func TestStaticNilHooksPermissive(t *testing.T) {
	cands := []Candidate{
		{SigID: "a", Depth: 3, Prior: 0.5},
		{SigID: "b", Host: "h.example", Depth: 0, Prior: 1},
	}
	for i, d := range NewStatic(Hooks{}).Rank("u", "", cands) {
		if !d.Keep || !d.Allow || d.Prob != cands[i].Prior {
			t.Fatalf("candidate %d gated by nil hooks: %+v", i, d)
		}
	}
}

// TestStaticPreservesOrder: static never reorders — output decisions carry
// the input candidates in input order.
func TestStaticPreservesOrder(t *testing.T) {
	cands := make([]Candidate, 20)
	for i := range cands {
		cands[i] = Candidate{SigID: fmt.Sprintf("s%d", i), Index: i, Prior: float64(20-i) / 20}
	}
	ds := NewStatic(Hooks{}).Rank("u", "from", cands)
	for i, d := range ds {
		if d.SigID != cands[i].SigID || d.Index != i {
			t.Fatalf("order changed at %d: %+v", i, d)
		}
	}
	if st := NewStatic(Hooks{}).Stats(); st.Users != 0 || st.Pruned != 0 {
		t.Fatalf("static stats carry model state: %+v", st)
	}
}

// TestHooksDecideDepth: the depth rule is the exact complement of the old
// `depth < effectiveChainDepth` chain gate — live fan-out (depth 0) is
// never pruned, chained candidates prune strictly beyond MaxDepth.
func TestHooksDecideDepth(t *testing.T) {
	h := Hooks{MaxDepth: func() int { return 2 }}
	for depth, wantKeep := range map[int]bool{0: true, 1: true, 2: true, 3: false, 4: false} {
		d := h.decide(Candidate{SigID: "s", Depth: depth, Prior: 1})
		if d.Keep != wantKeep {
			t.Fatalf("depth %d: keep = %v, want %v", depth, d.Keep, wantKeep)
		}
		if !wantKeep && d.KeepReason != ReasonDepth {
			t.Fatalf("depth %d: reason = %q", depth, d.KeepReason)
		}
		// The depth rule prunes from the fan-out but never touches the
		// issue gates — a pruned candidate still reports Allow.
		if !d.Allow {
			t.Fatalf("depth %d: depth rule leaked into Allow", depth)
		}
	}
}
