package policy

import (
	"sync/atomic"
	"time"
)

// Static is the historical prefetch policy: candidates keep their
// dependency-graph order, no history is consulted, and only the shared
// execution gates (governor, suspension, breaker, chain depth) apply. It is
// the differential baseline every proxy behaviour test pins against.
type Static struct {
	hooks     Hooks
	rankCalls atomic.Int64
}

// NewStatic builds the static policy over the proxy's gate hooks.
func NewStatic(hooks Hooks) *Static { return &Static{hooks: hooks} }

// Name implements Policy.
func (s *Static) Name() string { return "static" }

// Rank implements Policy: gate each candidate, preserve input order.
func (s *Static) Rank(user, from string, cands []Candidate) []Decision {
	s.rankCalls.Add(1)
	ds := make([]Decision, len(cands))
	for i, c := range cands {
		ds[i] = s.hooks.decide(c)
	}
	return ds
}

// Observe implements Policy; static learns nothing.
func (s *Static) Observe(user, sigID string, now time.Time) {}

// Stats implements Policy.
func (s *Static) Stats() Stats { return Stats{RankCalls: s.rankCalls.Load()} }
