package policy

import (
	"math"
	"sort"
	"sync"
	"time"

	"appx/internal/persist"
)

// Markov defaults.
const (
	// DefaultHalfLife is the transition-count decay half-life: after one
	// half-life without reinforcement, a count contributes half its weight.
	DefaultHalfLife = 10 * time.Minute
	// DefaultSessionGap is the largest gap between two hits that still
	// counts as a transition; beyond it the user started a new session.
	DefaultSessionGap = 30 * time.Minute
	// DefaultMaxUsers bounds tracked per-user models.
	DefaultMaxUsers = 10000
	// defaultMaxRowsPerUser bounds transition rows per user (distinct
	// "from" signatures).
	defaultMaxRowsPerUser = 128
	// defaultMaxSuccessorsPerRow bounds successors tracked per row.
	defaultMaxSuccessorsPerRow = 32
	// defaultAlpha is the Laplace smoothing constant of the global prior.
	defaultAlpha = 0.5
	// defaultPriorStrength is how many observations the global prior is
	// worth against a user's own evidence.
	defaultPriorStrength = 4
	// defaultMinSamples is the (decayed) evidence mass required before the
	// model is confident enough to prune a candidate.
	defaultMinSamples = 3
	// defaultPruneFraction prunes candidates whose estimated transition
	// probability falls below this fraction of the uniform baseline 1/K.
	defaultPruneFraction = 0.5
	// minCount is the decayed weight below which a count is dropped.
	minCount = 0.01
)

// MarkovConfig tunes the history model. Zero values take the defaults
// above.
type MarkovConfig struct {
	// HalfLife is the exponential-decay half-life of transition counts.
	HalfLife time.Duration
	// SessionGap bounds the inter-hit gap that still forms a transition.
	SessionGap time.Duration
	// MaxUsers bounds per-user models; the least recently seen user is
	// evicted beyond it.
	MaxUsers int
	// Now supplies time for Rank-side decay; defaults to time.Now.
	// (Observe receives its timestamp from the caller.)
	Now func() time.Time
}

// markovRow holds the decayed successor counts observed after one "from"
// signature. at stamps when the counts were last physically decayed.
type markovRow struct {
	counts map[string]float64
	total  float64
	at     time.Time
}

// markovUser is one user's model: transition rows plus the last hit, which
// seeds the next transition.
type markovUser struct {
	rows    map[string]*markovRow
	lastSig string
	lastAt  time.Time
	seen    time.Time
}

// Markov is the history-aware prefetch policy: a first-order per-user
// transition model (signature → signature counts with Laplace smoothing and
// exponential decay) layered over a cross-user global table that seeds
// priors for users with thin history. Rank reorders candidates by estimated
// transition probability and prunes those the evidence says are unlikely;
// everything else — the execution gates — is identical to Static.
//
// Decay is applied two ways: physically at Observe time (counts are scaled
// down before new evidence lands, keeping the stored mass bounded), and
// virtually at Rank time (a read-only scale factor), so stale user evidence
// smoothly defers to the global prior without Rank mutating anything.
type Markov struct {
	hooks Hooks
	cfg   MarkovConfig

	mu     sync.Mutex
	users  map[string]*markovUser
	global map[string]*markovRow

	// Bookkeeping maintained incrementally so Stats never walks the maps.
	rowCount   int // rows across users + global
	transCount int // (from, to) pairs across users + global

	observations int64
	rankCalls    int64
	pruned       int64
	reordered    int64
}

// NewMarkov builds the markov policy over the proxy's gate hooks.
func NewMarkov(hooks Hooks, cfg MarkovConfig) *Markov {
	if cfg.HalfLife <= 0 {
		cfg.HalfLife = DefaultHalfLife
	}
	if cfg.SessionGap <= 0 {
		cfg.SessionGap = DefaultSessionGap
	}
	if cfg.MaxUsers <= 0 {
		cfg.MaxUsers = DefaultMaxUsers
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Markov{
		hooks:  hooks,
		cfg:    cfg,
		users:  map[string]*markovUser{},
		global: map[string]*markovRow{},
	}
}

// Name implements Policy.
func (m *Markov) Name() string { return "markov" }

// factor is the virtual decay multiplier for a row last touched at `at`.
func (m *Markov) factor(at, now time.Time) float64 {
	dt := now.Sub(at)
	if dt <= 0 {
		return 1
	}
	return math.Exp2(-float64(dt) / float64(m.cfg.HalfLife))
}

// Observe implements Policy: fold one live hit into the user's model. A hit
// within SessionGap of the previous one records a lastSig → sigID
// transition (self-transitions are skipped — refreshes of the same page are
// not navigation evidence).
func (m *Markov) Observe(user, sigID string, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observations++
	u := m.users[user]
	if u == nil {
		if len(m.users) >= m.cfg.MaxUsers {
			m.evictOldestUserLocked()
		}
		u = &markovUser{rows: map[string]*markovRow{}}
		m.users[user] = u
	}
	u.seen = now
	if u.lastSig != "" && u.lastSig != sigID && now.Sub(u.lastAt) <= m.cfg.SessionGap {
		m.recordLocked(u.rows, u.lastSig, sigID, now, defaultMaxRowsPerUser)
		m.recordLocked(m.global, u.lastSig, sigID, now, 0)
	}
	u.lastSig = sigID
	u.lastAt = now
}

// recordLocked adds one from→to observation to a row table, decaying the
// row first and enforcing the per-row successor cap and (when maxRows > 0)
// the table's row cap.
func (m *Markov) recordLocked(rows map[string]*markovRow, from, to string, now time.Time, maxRows int) {
	row := rows[from]
	if row == nil {
		if maxRows > 0 && len(rows) >= maxRows {
			m.evictOldestRowLocked(rows)
		}
		row = &markovRow{counts: map[string]float64{}, at: now}
		rows[from] = row
		m.rowCount++
	}
	m.decayRowLocked(row, now)
	if _, ok := row.counts[to]; !ok {
		if len(row.counts) >= defaultMaxSuccessorsPerRow {
			m.evictSmallestCountLocked(row)
		}
		m.transCount++
	}
	row.counts[to]++
	row.total++
}

// decayRowLocked physically scales a row's counts down to now, dropping
// negligible ones.
func (m *Markov) decayRowLocked(row *markovRow, now time.Time) {
	f := m.factor(row.at, now)
	if f >= 1 {
		row.at = now
		return
	}
	total := 0.0
	for k, c := range row.counts {
		c *= f
		if c < minCount {
			delete(row.counts, k)
			m.transCount--
			continue
		}
		row.counts[k] = c
		total += c
	}
	row.total = total
	row.at = now
}

// evictOldestUserLocked drops the least recently seen user model.
func (m *Markov) evictOldestUserLocked() {
	var oldestKey string
	var oldest time.Time
	for k, u := range m.users {
		if oldestKey == "" || u.seen.Before(oldest) {
			oldestKey, oldest = k, u.seen
		}
	}
	if oldestKey == "" {
		return
	}
	u := m.users[oldestKey]
	for _, row := range u.rows {
		m.rowCount--
		m.transCount -= len(row.counts)
	}
	delete(m.users, oldestKey)
}

// evictOldestRowLocked drops the least recently touched row of a table.
func (m *Markov) evictOldestRowLocked(rows map[string]*markovRow) {
	var oldestKey string
	var oldest time.Time
	for k, row := range rows {
		if oldestKey == "" || row.at.Before(oldest) {
			oldestKey, oldest = k, row.at
		}
	}
	if oldestKey == "" {
		return
	}
	m.rowCount--
	m.transCount -= len(rows[oldestKey].counts)
	delete(rows, oldestKey)
}

// evictSmallestCountLocked drops a row's weakest successor to make room.
func (m *Markov) evictSmallestCountLocked(row *markovRow) {
	var minKey string
	min := math.Inf(1)
	for k, c := range row.counts {
		if c < min {
			minKey, min = k, c
		}
	}
	if minKey != "" {
		row.total -= row.counts[minKey]
		delete(row.counts, minKey)
		m.transCount--
	}
}

// Rank implements Policy. Gates apply exactly as in Static; on top of them,
// when transition context exists (from != "" and the model holds evidence
// for it), candidates are scored by estimated transition probability —
// user evidence shrunk toward the Laplace-smoothed global row — then
// stably reordered best-first, and confidently-unlikely ones are dropped
// (Keep=false, ReasonUnlikely). With no evidence at all the input order is
// returned untouched, so a cold markov behaves exactly like static.
func (m *Markov) Rank(user, from string, cands []Candidate) []Decision {
	// Gates run outside the model lock: hooks reach into other subsystems'
	// locks and must not nest inside ours.
	ds := make([]Decision, len(cands))
	for i, c := range cands {
		ds[i] = m.hooks.decide(c)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rankCalls++
	if from == "" || len(cands) < 1 {
		return ds
	}
	now := m.cfg.Now()
	var uRow, gRow *markovRow
	if u := m.users[user]; u != nil {
		uRow = u.rows[from]
	}
	gRow = m.global[from]
	tU, tG, uf, gf := 0.0, 0.0, 1.0, 1.0
	if uRow != nil {
		uf = m.factor(uRow.at, now)
		tU = uRow.total * uf
	}
	if gRow != nil {
		gf = m.factor(gRow.at, now)
		tG = gRow.total * gf
	}
	if tU == 0 && tG == 0 {
		return ds
	}
	// K is the support size of the smoothed distribution: at least the
	// candidate set, grown by the successors the fleet has actually seen.
	k := len(cands)
	if gRow != nil && len(gRow.counts)+1 > k {
		k = len(gRow.counts) + 1
	}
	for i := range ds {
		cU, cG := 0.0, 0.0
		if uRow != nil {
			cU = uRow.counts[ds[i].SigID] * uf
		}
		if gRow != nil {
			cG = gRow.counts[ds[i].SigID] * gf
		}
		g := (cG + defaultAlpha) / (tG + defaultAlpha*float64(k))
		est := (cU + defaultPriorStrength*g) / (tU + defaultPriorStrength)
		ds[i].Score = est
		if ds[i].Keep && tU+tG >= defaultMinSamples && est < defaultPruneFraction/float64(k) {
			ds[i].Keep = false
			ds[i].KeepReason = ReasonUnlikely
			m.pruned++
		}
	}
	// Only an order that actually changed pays for a sort (and counts as a
	// reorder); equal scores keep input order, so a uniform estimate — no
	// discriminating evidence — leaves the static order intact.
	for i := 1; i < len(ds); i++ {
		if ds[i].Score > ds[i-1].Score {
			sort.SliceStable(ds, func(a, b int) bool { return ds[a].Score > ds[b].Score })
			m.reordered++
			break
		}
	}
	return ds
}

// Stats implements Policy.
func (m *Markov) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Users:       len(m.users),
		Rows:        m.rowCount,
		Transitions: m.transCount,
		// Footprint estimate: map-header + key overhead per user, per row,
		// and per (from, to) pair.
		TableBytes:   int64(len(m.users))*96 + int64(m.rowCount)*112 + int64(m.transCount)*64,
		Observations: m.observations,
		RankCalls:    m.rankCalls,
		Pruned:       m.pruned,
		Reordered:    m.reordered,
	}
}

// Export snapshots the model for persistence. Output is deterministic
// (users sorted by key, rows by "from" signature, counts by successor) so
// byte-identical state produces byte-identical snapshots.
func (m *Markov) Export() *persist.PolicyState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := &persist.PolicyState{Name: m.Name()}
	for key, u := range m.users {
		pu := persist.PolicyUser{
			Key:      key,
			LastSig:  u.lastSig,
			LastAt:   u.lastAt,
			LastSeen: u.seen,
			Rows:     exportRows(u.rows),
		}
		st.Users = append(st.Users, pu)
	}
	sort.Slice(st.Users, func(a, b int) bool { return st.Users[a].Key < st.Users[b].Key })
	st.Global = exportRows(m.global)
	return st
}

func exportRows(rows map[string]*markovRow) []persist.PolicyRow {
	out := make([]persist.PolicyRow, 0, len(rows))
	for from, row := range rows {
		pr := persist.PolicyRow{From: from, Total: row.total, At: row.at}
		for sig, n := range row.counts {
			pr.To = append(pr.To, persist.PolicyCount{Sig: sig, N: n})
		}
		sort.Slice(pr.To, func(a, b int) bool { return pr.To[a].Sig < pr.To[b].Sig })
		out = append(out, pr)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].From < out[b].From })
	return out
}

// Restore replaces the model with a persisted one (warm restart). Counters
// are not part of the snapshot; bookkeeping is recomputed.
func (m *Markov) Restore(st *persist.PolicyState) {
	if st == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.users = map[string]*markovUser{}
	m.global = map[string]*markovRow{}
	m.rowCount, m.transCount = 0, 0
	for _, pu := range st.Users {
		u := &markovUser{
			rows:    m.restoreRows(pu.Rows),
			lastSig: pu.LastSig,
			lastAt:  pu.LastAt,
			seen:    pu.LastSeen,
		}
		m.users[pu.Key] = u
	}
	m.global = m.restoreRows(st.Global)
}

func (m *Markov) restoreRows(prs []persist.PolicyRow) map[string]*markovRow {
	rows := make(map[string]*markovRow, len(prs))
	for _, pr := range prs {
		row := &markovRow{counts: make(map[string]float64, len(pr.To)), total: pr.Total, at: pr.At}
		for _, pc := range pr.To {
			row.counts[pc.Sig] = pc.N
			m.transCount++
		}
		rows[pr.From] = row
		m.rowCount++
	}
	return rows
}
