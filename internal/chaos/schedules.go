package chaos

import "time"

// Event is one fault action, applied just before its batch is driven.
type Event struct {
	// Batch is the 0-based batch index the event fires before.
	Batch int
	// Name describes the action for reports and logs.
	Name string
	// Apply mutates the harness (set faults, kill, restart, ...).
	Apply func(*Harness)
}

// Schedule is a named, ordered fault scenario replayed over a fixed number
// of workload batches. With a fixed Options.Seed the whole run — fault
// draws, workload order, ring churn — replays identically.
type Schedule struct {
	Name   string
	Detail string
	// Batches is how many times the full user population is driven.
	Batches int
	// Persist marks schedules that need state directories (disk faults,
	// warm restarts). Run requires Options.StateRoot for these.
	Persist bool
	Events  []Event
	// Drive overrides the default batch (every user's session, round-robin)
	// for schedules that need a particular traffic shape.
	Drive func(*Harness) error
}

// Schedules returns the builtin scenarios, one per failure family the
// cluster claims to survive.
func Schedules() []Schedule {
	return []Schedule{
		{
			Name:    "partition",
			Detail:  "two-way cut between 0 and 1, then an asymmetric one-way stall from 2 to 0, then heal",
			Batches: 6,
			Events: []Event{
				{Batch: 1, Name: "cut 0<->1", Apply: func(h *Harness) { h.Cut(0, 1) }},
				{Batch: 3, Name: "one-way slow 2->0", Apply: func(h *Harness) {
					h.inj.SetFault(h.link(2, 0), slowReadFault(80*time.Millisecond))
				}},
				{Batch: 5, Name: "heal", Apply: func(h *Harness) { h.Heal() }},
			},
		},
		{
			Name:    "slowpeer",
			Detail:  "every link into instance 2 stalls and drips while its probes stay green — the hedging regime",
			Batches: 5,
			Events: []Event{
				{Batch: 1, Name: "slow links into 2", Apply: func(h *Harness) {
					h.SlowLinksTo(2, 100*time.Millisecond)
				}},
			},
			// Each batch replays the hedging textbook case: a fresh catalog
			// epoch seeded onto instances 1 and 2 (the data is replicated),
			// then driven through instance 0, whose misses race a fill
			// against one degraded and one healthy holder. Without hedging
			// every race that peeks the slow holder first waits out the
			// stall; with hedging the healthy replica rescues it.
			Drive: func(h *Harness) error {
				h.epoch.Add(1)
				for j := 0; j < chaosCatalog; j++ {
					h.SeedAsset(1, j)
					h.SeedAsset(2, j)
				}
				user := h.users[0] // owned by instance 0: served, not relayed
				for j := 0; j < chaosCatalog; j++ {
					if err := h.getVia(0, user, "/asset", h.assetID(j)); err != nil {
						return err
					}
				}
				h.drainAll()
				return nil
			},
		},
		{
			Name:    "flappy",
			Detail:  "instance 1 oscillates between partitioned and healthy every batch — probe flapping and ring churn",
			Batches: 6,
			Events: []Event{
				{Batch: 1, Name: "flap down 1", Apply: func(h *Harness) { h.FlapLinksTo(1, true) }},
				{Batch: 2, Name: "flap up 1", Apply: func(h *Harness) { h.FlapLinksTo(1, false) }},
				{Batch: 3, Name: "flap down 1", Apply: func(h *Harness) { h.FlapLinksTo(1, true) }},
				{Batch: 4, Name: "flap up 1", Apply: func(h *Harness) { h.FlapLinksTo(1, false) }},
			},
		},
		{
			Name:    "diskfault",
			Detail:  "torn, corrupt, and failed disk writes while snapshots and spills run; state must stay decodable-or-typed-corrupt",
			Batches: 5,
			Persist: true,
			Events: []Event{
				{Batch: 1, Name: "disk faults on", Apply: func(h *Harness) { h.DiskChaos(0.15, 0.15, 0.10) }},
				{Batch: 2, Name: "snapshot under faults", Apply: func(h *Harness) { h.SnapshotAll() }},
				{Batch: 3, Name: "disk faults off", Apply: func(h *Harness) { h.DiskChaos(0, 0, 0) }},
				{Batch: 4, Name: "clean snapshot", Apply: func(h *Harness) { h.SnapshotAll() }},
			},
		},
		{
			Name:    "killrestart",
			Detail:  "instance 2 crashes mid-load and warm-restarts from its state directory two batches later",
			Batches: 6,
			Persist: true,
			Events: []Event{
				{Batch: 1, Name: "snapshot", Apply: func(h *Harness) { h.SnapshotAll() }},
				{Batch: 2, Name: "kill 2", Apply: func(h *Harness) {
					h.Kill(2)
					h.WaitMembers(len(h.addrs)-1, 3*time.Second)
				}},
				{Batch: 4, Name: "restart 2", Apply: func(h *Harness) {
					h.Restart(2)
					h.WaitMembers(len(h.addrs), 3*time.Second)
				}},
			},
		},
	}
}

// ScheduleByName finds a builtin schedule.
func ScheduleByName(name string) (Schedule, bool) {
	for _, s := range Schedules() {
		if s.Name == name {
			return s, true
		}
	}
	return Schedule{}, false
}
