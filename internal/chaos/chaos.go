// Package chaos is the seeded fault-schedule harness: it boots a real
// multi-instance cluster on loopback listeners, threads every inter-instance
// dial through a seeded netem injector (and every disk write through a
// seeded persist injector), replays a named schedule of faults against a
// deterministic workload, and checks a set of invariants that must hold no
// matter what the schedule did.
//
// The harness reuses the production wiring end to end — cluster.Config.Dial
// carries the injector into the probe, forward, and peer-fill transports, so
// a partitioned link degrades probes and relays exactly the way a real
// network cut would. Nothing in the data path is mocked.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync/atomic"
	"time"

	"appx/internal/cache"
	"appx/internal/cluster"
	"appx/internal/httpmsg"
	"appx/internal/netem"
	"appx/internal/obs"
	"appx/internal/persist"
	"appx/internal/proxy"
	"appx/internal/sig"
)

const (
	chaosCatalog   = 8    // assets fanned out of one feed response
	chaosAssetSize = 2000 // bytes per asset response

	probeInterval = 25 * time.Millisecond
	// probeTimeout is generous enough that a stalled-but-alive link (the
	// slowpeer schedule) keeps its probes green while its data path crawls:
	// the interesting regime where hedging matters is "slow", not "dead".
	probeTimeout = 500 * time.Millisecond
	// settleDelay is how long the harness waits after applying an event so
	// probes can notice the new link state before the next batch drives.
	settleDelay = 6 * probeInterval
)

// Options configures one chaos run.
type Options struct {
	// Instances is the fleet size (default 3).
	Instances int
	// Seed feeds the network injector, the disk injectors, and the workload
	// (default 42). A fixed seed reproduces the same fault pattern.
	Seed int64
	// Users is the number of driven user sessions per batch (default 6),
	// ring-spread so every instance owns a share.
	Users int
	// RequestBudget is each instance's per-request latency budget
	// (default 2s); it propagates over relay hops like production.
	RequestBudget time.Duration
	// HedgeDelay overrides the static peer-fill hedge delay (default 25ms
	// here, so loopback stalls trip hedges quickly).
	HedgeDelay time.Duration
	// DisableHedging turns hedged peer reads off — the control arm of the
	// slow-peer comparison.
	DisableHedging bool
	// StateRoot, when non-empty, gives every instance a state directory
	// under it (persistence on). Schedules that inject disk faults or
	// restart instances require it.
	StateRoot string
}

func (o Options) withDefaults() Options {
	if o.Instances <= 0 {
		o.Instances = 3
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Users <= 0 {
		o.Users = 6
	}
	if o.RequestBudget == 0 {
		o.RequestBudget = 2 * time.Second
	}
	if o.HedgeDelay == 0 {
		o.HedgeDelay = 25 * time.Millisecond
	}
	return o
}

// chaosGraph is the feed→asset dependency graph the workload replays: one
// list request fanning out to the catalog, the same shape the cache and
// cluster sweeps use.
func chaosGraph() *sig.Graph {
	g := sig.NewGraph("chaos")
	pred := &sig.Signature{ID: "ch:feed#0", Method: "GET", URI: sig.Literal("app.example/feed")}
	succ := &sig.Signature{ID: "ch:asset#0", Method: "GET", URI: sig.Literal("app.example/asset"),
		Query: []sig.Field{{Key: "id", Value: sig.DepValue(pred.ID, "ids[*]")}}}
	g.Add(pred)
	g.Add(succ)
	g.AddDep(sig.Dependency{PredID: pred.ID, SuccID: succ.ID, RespPath: "ids[*]",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})
	return g
}

// node is one live instance. Killed slots hold nil in Harness.nodes.
type node struct {
	addr string
	px   *proxy.Proxy
	srv  *http.Server
	dir  string
}

// Harness is the running fleet plus the injectors and driver tallies. It is
// driven single-threaded: schedules apply events and batches in sequence,
// which is what keeps a seeded run reproducible.
type Harness struct {
	opts Options
	inj  *netem.Injector
	// disk[i] is instance i's persist fault injector (nil without StateRoot).
	disk []*persist.Faults

	nodes  []*node
	addrs  []string
	origin atomic.Int64

	clients map[string]*http.Client
	rr      int

	requests, oks, sheds, failures int
	failureDetail                  []string
	latencies                      []time.Duration

	users []string
	// epoch versions the asset catalog: each batch rotates it so foreground
	// misses — and therefore peer-fill races — keep happening against the
	// faults instead of draining away once every instance is warm.
	epoch atomic.Int64
}

// assetID names asset j of the current catalog epoch.
func (h *Harness) assetID(j int) string {
	return fmt.Sprintf("e%d-a%d", h.epoch.Load(), j)
}

// link is the directed fault key for dials from instance i to instance j.
func (h *Harness) link(i, j int) string { return h.addrs[i] + "->" + h.addrs[j] }

func (h *Harness) upstream() proxy.UpstreamFunc {
	return func(_ context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		h.origin.Add(1)
		if r.Path == "/feed" {
			ids := make([]string, chaosCatalog)
			for i := range ids {
				ids[i] = h.assetID(i)
			}
			body, _ := json.Marshal(map[string]any{"ids": ids})
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   body}, nil
		}
		body := make([]byte, chaosAssetSize)
		for i := range body {
			body[i] = 'x'
		}
		return &httpmsg.Response{Status: 200, Body: body}, nil
	}
}

// start boots instance i on ln, with its dials routed through the injector
// under the directed "self->peer" key.
func (h *Harness) start(i int, ln net.Listener) {
	self := h.addrs[i]
	dial := func(ctx context.Context, network, addr string) (net.Conn, error) {
		return h.inj.DialContext(ctx, network, addr, self+"->"+addr)
	}
	opts := proxy.Options{
		Graph:          chaosGraph(),
		Upstream:       h.upstream(),
		Workers:        1,
		RequestBudget:  h.opts.RequestBudget,
		HedgeDelay:     h.opts.HedgeDelay,
		DisableHedging: h.opts.DisableHedging,
		Cluster: cluster.Config{
			Self:          self,
			Peers:         h.addrs,
			Replicas:      2,
			ProbeInterval: probeInterval,
			ProbeTimeout:  probeTimeout,
			Dial:          dial,
		},
	}
	if h.opts.StateRoot != "" {
		opts.StateDir = h.dirFor(i)
		opts.PersistFaults = h.disk[i]
		opts.SnapshotInterval = 150 * time.Millisecond
	}
	px := proxy.New(opts)
	srv := &http.Server{Handler: px}
	go srv.Serve(ln)
	h.nodes[i] = &node{addr: self, px: px, srv: srv, dir: opts.StateDir}
}

func (h *Harness) dirFor(i int) string {
	return fmt.Sprintf("%s/node%d", h.opts.StateRoot, i)
}

// newHarness boots the fleet and spreads the user population over the ring.
func newHarness(opts Options) (*Harness, error) {
	opts = opts.withDefaults()
	h := &Harness{
		opts:    opts,
		inj:     netem.NewInjector(opts.Seed),
		nodes:   make([]*node, opts.Instances),
		addrs:   make([]string, opts.Instances),
		clients: map[string]*http.Client{},
	}
	if opts.StateRoot != "" {
		h.disk = make([]*persist.Faults, opts.Instances)
		for i := range h.disk {
			h.disk[i] = persist.NewFaults(opts.Seed + int64(i))
		}
	}
	lns := make([]net.Listener, opts.Instances)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		h.addrs[i] = ln.Addr().String()
	}
	for i := range lns {
		h.start(i, lns[i])
	}
	for _, addr := range h.addrs {
		h.clients[addr] = &http.Client{
			Timeout: 10 * time.Second,
			Transport: &http.Transport{
				Proxy:              http.ProxyURL(&url.URL{Scheme: "http", Host: addr}),
				DisableCompression: true,
			},
		}
	}
	h.users = spreadUsers(h.addrs, opts.Users)
	return h, nil
}

// spreadUsers picks user names so user k is owned by addrs[k%n] — every
// instance owns a share of the workload whatever ephemeral ports it got.
func spreadUsers(addrs []string, count int) []string {
	r := cluster.NewRing(cluster.DefaultVNodes)
	for _, a := range addrs {
		r.Add(a)
	}
	out := make([]string, 0, count)
	next := 0
	for k := 0; k < count; k++ {
		want := addrs[k%len(addrs)]
		for ; ; next++ {
			name := fmt.Sprintf("u%d", next)
			if r.Owner(name) == want {
				out = append(out, name)
				next++
				break
			}
		}
	}
	return out
}

func (h *Harness) close() {
	for i, n := range h.nodes {
		if n != nil {
			h.Kill(i)
		}
	}
	for _, c := range h.clients {
		c.CloseIdleConnections()
	}
}

// ---- fault events (called by schedules) ----

// Cut severs the link between instances i and j in both directions: future
// dials refuse, in-flight operations reset, pooled keep-alives die.
func (h *Harness) Cut(i, j int) {
	for _, k := range []string{h.link(i, j), h.link(j, i)} {
		h.inj.SetFault(k, netem.Partition())
		h.inj.Sever(k)
	}
}

// CutOneWay partitions only dials from i to j — the asymmetric failure
// where i believes j is gone while j still reaches i.
func (h *Harness) CutOneWay(i, j int) {
	h.inj.SetFault(h.link(i, j), netem.Partition())
	h.inj.Sever(h.link(i, j))
}

// SlowLinksTo degrades every link INTO instance j: each I/O operation
// stalls, and writes slow-drip in small chunks. The instance stays alive
// and probed-healthy — only slow. This is the regime hedged reads exist for.
func (h *Harness) SlowLinksTo(j int, stall time.Duration) {
	for i := range h.addrs {
		if i == j {
			continue
		}
		h.inj.SetFault(h.link(i, j), netem.Fault{
			StallProb:  1,
			StallDelay: stall,
			DripBytes:  256,
			DripDelay:  2 * time.Millisecond,
		})
	}
}

// FlapLinksTo partitions (down=true) or heals (down=false) every link into
// instance j — the probe-flapping pathology where an instance oscillates
// between dead and alive in its peers' rings.
func (h *Harness) FlapLinksTo(j int, down bool) {
	for i := range h.addrs {
		if i == j {
			continue
		}
		if down {
			h.inj.SetFault(h.link(i, j), netem.Partition())
			h.inj.Sever(h.link(i, j))
		} else {
			h.inj.SetFault(h.link(i, j), netem.Fault{})
		}
	}
}

// Heal clears every link fault.
func (h *Harness) Heal() {
	for i := range h.addrs {
		for j := range h.addrs {
			if i != j {
				h.inj.SetFault(h.link(i, j), netem.Fault{})
			}
		}
	}
}

// DiskChaos sets every instance's disk-fault probabilities (no-op without
// persistence).
func (h *Harness) DiskChaos(torn, corrupt, writeErr float64) {
	for _, f := range h.disk {
		f.SetProbs(torn, corrupt, writeErr)
	}
}

// SnapshotAll forces an immediate snapshot on every live instance — under
// DiskChaos this is how torn and corrupt snapshots get onto disk mid-run.
func (h *Harness) SnapshotAll() {
	for _, n := range h.nodes {
		if n != nil {
			n.px.SnapshotNow()
		}
	}
}

// Kill hard-stops instance i: listener and proxy down, no drain.
func (h *Harness) Kill(i int) {
	n := h.nodes[i]
	h.nodes[i] = nil
	n.srv.Close()
	n.px.Close()
}

// Restart boots a fresh instance on the killed slot's address (and, with
// persistence, the same state directory — a warm restart).
func (h *Harness) Restart(i int) error {
	var ln net.Listener
	var err error
	for try := 0; try < 100; try++ {
		ln, err = net.Listen("tcp", h.addrs[i])
		if err == nil {
			h.start(i, ln)
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("chaos: rebind %s: %w", h.addrs[i], err)
}

// WaitMembers blocks until every live instance's ring has exactly want
// members, or the timeout passes.
func (h *Harness) WaitMembers(want int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, n := range h.nodes {
			if n != nil && len(n.px.ClusterStats().Members) != want {
				ok = false
			}
		}
		if ok {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ---- workload driver ----

func (h *Harness) nextLive() *node {
	for try := 0; try < len(h.nodes); try++ {
		n := h.nodes[h.rr%len(h.nodes)]
		h.rr++
		if n != nil {
			return n
		}
	}
	return nil
}

// get issues one request for user through the next live instance. A
// transport error or a status >= 500 — except a shed (503 with Retry-After)
// — counts as a foreground failure: the instance is alive, it must serve.
func (h *Harness) get(user, path, id string) error {
	n := h.nextLive()
	if n == nil {
		return fmt.Errorf("chaos: no live instances")
	}
	return h.getNode(n, user, path, id)
}

// getVia issues one request through a specific instance (schedules that
// need a fill to start on a chosen node use this instead of round-robin).
func (h *Harness) getVia(i int, user, path, id string) error {
	n := h.nodes[i]
	if n == nil {
		return fmt.Errorf("chaos: instance %d is down", i)
	}
	return h.getNode(n, user, path, id)
}

func (h *Harness) getNode(n *node, user, path, id string) error {
	u := "http://app.example" + path
	if id != "" {
		u += "?id=" + id
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Appx-User", user)
	req.Header.Set("User-Agent", "") // keep canonical keys header-free
	start := time.Now()
	resp, err := h.clients[n.addr].Do(req)
	elapsed := time.Since(start)
	h.requests++
	if err != nil {
		h.failures++
		h.failureDetail = append(h.failureDetail, fmt.Sprintf("%s %s: %v", n.addr, path, err))
		return nil
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 500 {
		if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "" {
			h.sheds++
		} else {
			h.failures++
			h.failureDetail = append(h.failureDetail, fmt.Sprintf("%s %s: status %d", n.addr, path, resp.StatusCode))
		}
		return nil
	}
	h.oks++
	h.latencies = append(h.latencies, elapsed)
	return nil
}

func (h *Harness) drainAll() {
	for _, n := range h.nodes {
		if n != nil {
			n.px.Drain()
		}
	}
}

// session drives one user through a feed open and the full catalog, draining
// prefetch queues so peer fills land before the assets are requested.
func (h *Harness) session(user string) error {
	if err := h.get(user, "/feed", ""); err != nil {
		return err
	}
	h.drainAll()
	for j := 0; j < chaosCatalog; j++ {
		if err := h.get(user, "/asset", h.assetID(j)); err != nil {
			return err
		}
	}
	h.drainAll()
	return nil
}

// driveBatch rotates the catalog epoch and runs every user's session once.
func (h *Harness) driveBatch() error {
	h.epoch.Add(1)
	for _, u := range h.users {
		if err := h.session(u); err != nil {
			return err
		}
	}
	return nil
}

// SeedAsset plants the current epoch's asset j directly into instance i's
// shared cache tier — the replicated-data precondition for a fill race
// where a hedge has somewhere useful to go.
func (h *Harness) SeedAsset(i, j int) {
	n := h.nodes[i]
	if n == nil {
		return
	}
	body := make([]byte, chaosAssetSize)
	for k := range body {
		body[k] = 'x'
	}
	keyReq := &httpmsg.Request{Method: "GET", Host: "app.example", Path: "/asset",
		Query: []httpmsg.Field{{Key: "id", Value: h.assetID(j)}}}
	n.px.Cache().Put(cache.SharedScope, keyReq.CanonicalKey(), &cache.Entry{
		Resp:    &httpmsg.Response{Status: 200, Body: body},
		SigID:   "ch:asset#0",
		Expires: time.Now().Add(time.Minute),
	})
}

// durQuantile is the nearest-rank quantile of the collected latencies in ms.
func durQuantile(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted))*q+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Nanoseconds()) / 1e6
}

// collect gathers per-node counters into the report while nodes are live.
func (h *Harness) collect(rep *Report) {
	for _, n := range h.nodes {
		if n == nil {
			continue
		}
		cs := n.px.ClusterStats()
		rep.Forwarded += cs.Forwarded
		rep.ForwardFallbacks += cs.ForwardFallbacks
		rep.PeerFillHits += cs.PeerFill.Hits
		rep.HedgesLaunched += cs.Hedge.Launched
		rep.HedgeWins += cs.Hedge.Wins
		rep.HedgesSuppressed += cs.Hedge.Suppressed
		rep.Rebalances += cs.Rebalances
		if p99 := n.px.FillLatencyQuantile(0.99); p99 > 0 {
			ms := float64(p99.Nanoseconds()) / 1e6
			if ms > rep.FillP99Ms {
				rep.FillP99Ms = ms
			}
		}
		if n.px.RestoreOutcome() == proxy.RestoreWarm {
			rep.WarmRestores++
		}
	}
	for _, f := range h.disk {
		st := f.Stats()
		rep.DiskFaultsInjected += st.Torn + st.Corrupted + st.Failed
	}
	rep.Requests = h.requests
	rep.OK = h.oks
	rep.Sheds = h.sheds
	rep.Failures = h.failures
	rep.Origin = h.origin.Load()
	rep.P50Ms = durQuantile(h.latencies, 0.50)
	rep.P99Ms = durQuantile(h.latencies, 0.99)
	if served := rep.Requests - rep.Sheds; served > 0 {
		rep.Availability = float64(rep.OK) / float64(served)
	}
}

// spans snapshots recent request spans from every live instance for the
// oracle's time-accounting check.
func (h *Harness) spans() []obs.SpanSnapshot {
	var out []obs.SpanSnapshot
	for _, n := range h.nodes {
		if n != nil {
			out = append(out, n.px.RecentSpans(256)...)
		}
	}
	return out
}

// forwardLoops sums detected relay loops across live instances.
func (h *Harness) forwardLoops() int64 {
	var total int64
	for _, n := range h.nodes {
		if n != nil {
			total += n.px.ClusterStats().ForwardLoops
		}
	}
	return total
}
