package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"appx/internal/netem"
	"appx/internal/persist"
)

// Violation is one broken invariant with enough detail to chase it.
type Violation struct {
	Invariant string
	Detail    string
}

// Report is the outcome of one schedule run: workload tallies, cluster
// counters, and every oracle violation (empty means the run held).
type Report struct {
	Schedule  string
	Seed      int64
	Instances int
	Batches   int
	Events    []string

	Requests, OK, Sheds, Failures int
	// Availability is OK / (Requests - Sheds): sheds are the governor doing
	// its job and are budgeted separately from failures.
	Availability float64
	P50Ms, P99Ms float64
	// FillP99Ms is the worst per-instance peer-fill p99 — the number hedging
	// is supposed to hold down when a peer turns slow.
	FillP99Ms float64

	Origin           int64
	Forwarded        int64
	ForwardFallbacks int64
	PeerFillHits     int64
	Rebalances       int64
	HedgesLaunched   int64
	HedgeWins        int64
	HedgesSuppressed int64
	WarmRestores     int
	// DiskFaultsInjected counts torn, corrupted, and failed writes the disk
	// injectors actually produced (proof the diskfault schedule bit).
	DiskFaultsInjected int64

	Violations []Violation
}

// Ok reports whether every invariant held.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

func (r *Report) violate(invariant, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// Run replays one schedule against a fresh fleet and checks the oracle.
//
// The invariants, in the order checked:
//
//  1. no-foreground-failures: a live instance never answers a foreground
//     request with a non-shed 5xx or a transport error, whatever the
//     cluster links are doing. Sheds (503 + Retry-After) are counted
//     separately and excluded.
//  2. no-forward-loops: no relayed request ever bounced through a second
//     hop, even with partitioned, divergent ring views.
//  3. span-accounting: every recorded request span's per-stage time sums to
//     at most its wall time — chaos must not corrupt attribution.
//  4. state-decodes: after the run, every persisted artifact (snapshot
//     ladder rungs, disk-tier entries) either decodes cleanly or fails as
//     typed corruption — never as undecodable garbage or a crash.
//  5. no-goroutine-leak: after the fleet closes, the process settles back
//     to its baseline goroutine count — no probe, hedge, drip, or relay
//     goroutine outlives its instance.
func Run(opts Options, sched Schedule) (*Report, error) {
	opts = opts.withDefaults()
	if sched.Persist && opts.StateRoot == "" {
		return nil, fmt.Errorf("chaos: schedule %q needs Options.StateRoot", sched.Name)
	}
	if !sched.Persist {
		opts.StateRoot = "" // keep non-persist runs identical with or without a root
	}
	baseline := runtime.NumGoroutine()

	h, err := newHarness(opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{Schedule: sched.Name, Seed: opts.Seed, Instances: opts.Instances, Batches: sched.Batches}

	// One live asset request teaches the first exemplar; later users'
	// exemplars ride their own first miss.
	if err := h.get(h.users[0], "/asset", "seed"); err != nil {
		h.close()
		return nil, err
	}
	for b := 0; b < sched.Batches; b++ {
		for _, ev := range sched.Events {
			if ev.Batch == b {
				ev.Apply(h)
				rep.Events = append(rep.Events, fmt.Sprintf("b%d:%s", b, ev.Name))
			}
		}
		// Drive immediately — the first requests after an event race the
		// fault before probes have noticed, which is exactly the window the
		// invariants must cover. The settle afterwards lets the ring
		// converge before the next event lands.
		drive := h.driveBatch
		if sched.Drive != nil {
			drive = func() error { return sched.Drive(h) }
		}
		if err := drive(); err != nil {
			h.close()
			return nil, err
		}
		time.Sleep(settleDelay)
	}
	h.Heal()
	time.Sleep(settleDelay)

	// Live-fleet collection and checks, then teardown, then post checks.
	h.collect(rep)
	checkFailures(rep, h)
	checkForwardLoops(rep, h)
	checkSpans(rep, h)
	stateDirs := make([]string, 0, len(h.nodes))
	for _, n := range h.nodes {
		if n != nil && n.dir != "" {
			stateDirs = append(stateDirs, n.dir)
		}
	}
	h.close()
	checkStateDecodes(rep, stateDirs)
	checkGoroutines(rep, baseline)
	return rep, nil
}

func checkFailures(rep *Report, h *Harness) {
	if rep.Failures > 0 {
		detail := h.failureDetail
		if len(detail) > 5 {
			detail = detail[:5]
		}
		rep.violate("no-foreground-failures", "%d of %d requests failed (first: %s)",
			rep.Failures, rep.Requests, strings.Join(detail, "; "))
	}
}

func checkForwardLoops(rep *Report, h *Harness) {
	if loops := h.forwardLoops(); loops > 0 {
		rep.violate("no-forward-loops", "%d relayed requests bounced through a second hop", loops)
	}
}

func checkSpans(rep *Report, h *Harness) {
	for _, sp := range h.spans() {
		if sum := sp.StageSum(); sum > sp.Wall {
			rep.violate("span-accounting", "span %d (%s): stage sum %v > wall %v", sp.ID, sp.SigID, sum, sp.Wall)
			return // one example is enough; the rest would repeat it
		}
	}
}

// checkStateDecodes walks each instance's state directory after teardown:
// snapshot rungs and disk-tier entries must decode or fail as typed
// corruption (persist.IsCorrupt) — the damage model disk faults are allowed
// to produce. Anything else means a writer produced garbage the recovery
// ladder cannot even classify.
func checkStateDecodes(rep *Report, stateDirs []string) {
	for _, dir := range stateDirs {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				rep.violate("state-decodes", "%s: unreadable: %v", path, rerr)
				return nil
			}
			var derr error
			switch {
			case strings.HasSuffix(d.Name(), ".ent"):
				_, derr = persist.DecodeEntry(data)
			case strings.HasPrefix(d.Name(), "snapshot.appx"):
				_, derr = persist.DecodeSnapshot(data)
			default:
				return nil
			}
			if derr != nil && !persist.IsCorrupt(derr) {
				rep.violate("state-decodes", "%s: undecodable and untyped: %v", path, derr)
			}
			return nil
		})
		if err != nil && !os.IsNotExist(err) {
			rep.violate("state-decodes", "walk %s: %v", dir, err)
		}
	}
}

// checkGoroutines waits for the goroutine count to settle back to the
// pre-run baseline (plus scheduler slack) after the fleet is gone.
func checkGoroutines(rep *Report, baseline int) {
	const slack = 8
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			rep.violate("no-goroutine-leak", "goroutines %d, baseline %d (+%d slack) — something outlived the fleet",
				n, baseline, slack)
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// slowReadFault stalls only reads: requests leave promptly, responses crawl.
func slowReadFault(d time.Duration) netem.Fault {
	return netem.Fault{StallProb: 1, StallDelay: d, Dir: netem.DirRead}
}
