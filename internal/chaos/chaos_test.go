package chaos

import (
	"testing"

	"appx/internal/netem"
)

// TestSchedulesWellFormed: every builtin schedule has a name, batches, and
// events inside its batch range; persist schedules refuse to run rootless.
func TestSchedulesWellFormed(t *testing.T) {
	scheds := Schedules()
	if len(scheds) < 4 {
		t.Fatalf("only %d builtin schedules, want >= 4", len(scheds))
	}
	for _, s := range scheds {
		if s.Name == "" || s.Batches <= 0 || len(s.Events) == 0 {
			t.Fatalf("malformed schedule %+v", s)
		}
		for _, ev := range s.Events {
			if ev.Batch < 0 || ev.Batch >= s.Batches {
				t.Fatalf("%s: event %q at batch %d outside [0,%d)", s.Name, ev.Name, ev.Batch, s.Batches)
			}
			if ev.Apply == nil {
				t.Fatalf("%s: event %q has no action", s.Name, ev.Name)
			}
		}
		if got, ok := ScheduleByName(s.Name); !ok || got.Name != s.Name {
			t.Fatalf("ScheduleByName(%q) lookup failed", s.Name)
		}
	}
	sched, _ := ScheduleByName("diskfault")
	if _, err := Run(Options{}, sched); err == nil {
		t.Fatal("persist schedule ran without a state root")
	}
}

// TestRunPartitionHoldsInvariants is the package smoke: a full partition
// schedule against a 3-instance fleet must finish with zero oracle
// violations while actually exercising the failure path (fallbacks fired).
func TestRunPartitionHoldsInvariants(t *testing.T) {
	sched, ok := ScheduleByName("partition")
	if !ok {
		t.Fatal("partition schedule missing")
	}
	rep, err := Run(Options{Seed: 7, Users: 3}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("oracle violations: %+v", rep.Violations)
	}
	if rep.Requests == 0 || rep.OK == 0 {
		t.Fatalf("no workload driven: %+v", rep)
	}
	if rep.Availability < 0.99 {
		t.Fatalf("availability %.4f under partition, want >= 0.99", rep.Availability)
	}
	if rep.ForwardFallbacks == 0 {
		t.Fatal("partition never forced a forward fallback — the cut did not bite")
	}
}

// TestRunDiskFaultHoldsInvariants: torn/corrupt/failed writes land on disk
// mid-run and every surviving artifact still decodes or reports typed
// corruption.
func TestRunDiskFaultHoldsInvariants(t *testing.T) {
	sched, ok := ScheduleByName("diskfault")
	if !ok {
		t.Fatal("diskfault schedule missing")
	}
	rep, err := Run(Options{Seed: 11, Users: 3, StateRoot: t.TempDir()}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("oracle violations: %+v", rep.Violations)
	}
	if rep.DiskFaultsInjected == 0 {
		t.Fatal("disk injectors never fired — the schedule did not bite")
	}
}

// TestHarnessLinkFaultIsolated: a cut between 0 and 1 must not touch the
// 0<->2 links — fault keys are directed per-pair.
func TestHarnessLinkFaultIsolated(t *testing.T) {
	h, err := newHarness(Options{Seed: 3, Users: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer h.close()
	h.Cut(0, 1)
	if f := h.inj.Fault(h.link(0, 1)); f.ConnectRefuseProb != 1 {
		t.Fatalf("cut link 0->1 fault = %+v, want partition", f)
	}
	if f := h.inj.Fault(h.link(0, 2)); !faultZero(f) {
		t.Fatalf("uninvolved link 0->2 got fault %+v", f)
	}
	h.Heal()
	if f := h.inj.Fault(h.link(0, 1)); !faultZero(f) {
		t.Fatalf("healed link still faulted: %+v", f)
	}
}

func faultZero(f netem.Fault) bool {
	return f == netem.Fault{}
}
