// Package jsonpath implements the small field-path language APPx uses to name
// positions inside JSON request/response bodies, e.g.
//
//	data.products[*].product_info.id
//
// A path is a dot-separated list of object keys; a key may carry an [i] index
// or a [*] wildcard for arrays. The static analyzer emits paths when it sees
// the app access response fields; the proxy's dynamic-learning stage uses
// Extract to pull live values out of predecessor responses (with [*] fanning
// out to one value per array element — the paper's "replicate the request
// instance as many as the number of the 'id' fields") and Inject/Build to
// render prefetch request bodies.
package jsonpath

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Step is one component of a parsed path.
type Step struct {
	Key      string // object key; empty for a bare index step
	Index    int    // array index when HasIndex
	HasIndex bool
	Wildcard bool // [*]
}

// Path is a parsed field path.
type Path []Step

// Parse parses a textual path. The empty string yields the root path (which
// addresses the whole document).
func Parse(s string) (Path, error) {
	if s == "" {
		return Path{}, nil
	}
	var p Path
	for _, seg := range strings.Split(s, ".") {
		if seg == "" {
			return nil, fmt.Errorf("jsonpath: empty segment in %q", s)
		}
		key := seg
		var suffix string
		if i := strings.IndexByte(seg, '['); i >= 0 {
			key, suffix = seg[:i], seg[i:]
		}
		if key == "" {
			return nil, fmt.Errorf("jsonpath: segment %q lacks a key in %q", seg, s)
		}
		st := Step{Key: key}
		for suffix != "" {
			if !strings.HasPrefix(suffix, "[") {
				return nil, fmt.Errorf("jsonpath: malformed segment %q in %q", seg, s)
			}
			end := strings.IndexByte(suffix, ']')
			if end < 0 {
				return nil, fmt.Errorf("jsonpath: unterminated index in %q", s)
			}
			idx := suffix[1:end]
			// Emit the preceding key step first, then the index as its own step
			// when chained (a[0][1] → key a idx0, then bare idx1).
			if st.HasIndex || st.Wildcard {
				p = append(p, st)
				st = Step{}
			}
			if idx == "*" {
				st.Wildcard = true
			} else {
				n, err := strconv.Atoi(idx)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("jsonpath: bad index %q in %q", idx, s)
				}
				st.Index = n
				st.HasIndex = true
			}
			suffix = suffix[end+1:]
		}
		p = append(p, st)
	}
	return p, nil
}

// MustParse is Parse that panics on error, for statically known paths.
func MustParse(s string) Path {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the path back to its textual form.
func (p Path) String() string {
	var b strings.Builder
	for i, st := range p {
		if st.Key != "" {
			if i > 0 {
				b.WriteByte('.')
			}
			b.WriteString(st.Key)
		}
		switch {
		case st.Wildcard:
			b.WriteString("[*]")
		case st.HasIndex:
			fmt.Fprintf(&b, "[%d]", st.Index)
		}
	}
	return b.String()
}

// HasWildcard reports whether any step is a [*].
func (p Path) HasWildcard() bool {
	for _, st := range p {
		if st.Wildcard {
			return true
		}
	}
	return false
}

// Extract returns every value addressed by the path within doc (a value of
// the encoding/json generic shape: map[string]any, []any, string, float64,
// bool, nil). Wildcards fan out in document order; the result is empty when
// the path does not resolve. A root path returns doc itself.
func Extract(doc any, p Path) []any {
	vals := []any{doc}
	for _, st := range p {
		var next []any
		for _, v := range vals {
			if st.Key != "" {
				m, ok := v.(map[string]any)
				if !ok {
					continue
				}
				v, ok = m[st.Key]
				if !ok {
					continue
				}
			}
			switch {
			case st.Wildcard:
				arr, ok := v.([]any)
				if !ok {
					continue
				}
				next = append(next, arr...)
				continue
			case st.HasIndex:
				arr, ok := v.([]any)
				if !ok || st.Index >= len(arr) {
					continue
				}
				v = arr[st.Index]
			}
			next = append(next, v)
		}
		vals = next
		if len(vals) == 0 {
			return nil
		}
	}
	return vals
}

// ExtractStrings is Extract with each value coerced to its string form
// (Stringify); non-scalar values are skipped.
func ExtractStrings(doc any, p Path) []string {
	var out []string
	for _, v := range Extract(doc, p) {
		if s, ok := Stringify(v); ok {
			out = append(out, s)
		}
	}
	return out
}

// Stringify renders a scalar JSON value the way an app would interpolate it
// into a request (strings verbatim, numbers without a trailing ".0" when
// integral, booleans as true/false). ok is false for objects, arrays and nil.
func Stringify(v any) (string, bool) {
	switch x := v.(type) {
	case string:
		return x, true
	case float64:
		if x == float64(int64(x)) {
			return strconv.FormatInt(int64(x), 10), true
		}
		return strconv.FormatFloat(x, 'g', -1, 64), true
	case json.Number:
		return x.String(), true
	case bool:
		return strconv.FormatBool(x), true
	default:
		return "", false
	}
}

// Inject sets the value at a wildcard-free path inside doc, creating
// intermediate objects as needed, and returns the (possibly new) root.
// Array steps require the array and index to already exist.
func Inject(doc any, p Path, val any) (any, error) {
	if len(p) == 0 {
		return val, nil
	}
	if p.HasWildcard() {
		return nil, fmt.Errorf("jsonpath: cannot inject through wildcard path %s", p)
	}
	root := doc
	if root == nil {
		root = map[string]any{}
	}
	cur := root
	for i, st := range p {
		last := i == len(p)-1
		m, ok := cur.(map[string]any)
		if st.Key != "" {
			if !ok {
				return nil, fmt.Errorf("jsonpath: %s: step %d expects object", p, i)
			}
			if st.HasIndex {
				arr, ok := m[st.Key].([]any)
				if !ok || st.Index >= len(arr) {
					return nil, fmt.Errorf("jsonpath: %s: missing array at step %d", p, i)
				}
				if last {
					arr[st.Index] = val
					return root, nil
				}
				if arr[st.Index] == nil {
					arr[st.Index] = map[string]any{}
				}
				cur = arr[st.Index]
				continue
			}
			if last {
				m[st.Key] = val
				return root, nil
			}
			next, ok := m[st.Key]
			if !ok || next == nil {
				next = map[string]any{}
				m[st.Key] = next
			}
			cur = next
			continue
		}
		// Bare index step.
		arr, ok := cur.([]any)
		if !ok || !st.HasIndex || st.Index >= len(arr) {
			return nil, fmt.Errorf("jsonpath: %s: bad bare index at step %d", p, i)
		}
		if last {
			arr[st.Index] = val
			return root, nil
		}
		if arr[st.Index] == nil {
			arr[st.Index] = map[string]any{}
		}
		cur = arr[st.Index]
	}
	return root, nil
}

// Decode parses JSON bytes into the generic value shape used by Extract.
func Decode(b []byte) (any, error) {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// Encode renders a generic value back to JSON bytes.
func Encode(v any) ([]byte, error) {
	return json.Marshal(v)
}
