package jsonpath

import (
	"reflect"
	"testing"
	"testing/quick"
)

func doc(t *testing.T, s string) any {
	t.Helper()
	v, err := Decode([]byte(s))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return v
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"",
		"id",
		"data.products[*].product_info.id",
		"items[0].name",
		"grid[2][3]",
		"a[*][*]",
	} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"a..b", "a[", "a[x]", "a[-1]", ".", "a.[0]"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestExtractScalar(t *testing.T) {
	d := doc(t, `{"data":{"contest":{"cache":"c1","info":42}}}`)
	got := Extract(d, MustParse("data.contest.info"))
	if len(got) != 1 || got[0] != float64(42) {
		t.Fatalf("Extract = %v", got)
	}
}

func TestExtractWildcardFanOut(t *testing.T) {
	d := doc(t, `{"data":{"products":[
		{"product_info":{"id":"09cf"}},
		{"product_info":{"id":"3gf3"}},
		{"product_info":{"id":"vm98"}}]}}`)
	got := ExtractStrings(d, MustParse("data.products[*].product_info.id"))
	want := []string{"09cf", "3gf3", "vm98"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractStrings = %v, want %v", got, want)
	}
}

func TestExtractIndexAndMissing(t *testing.T) {
	d := doc(t, `{"items":[{"name":"a"},{"name":"b"}]}`)
	if got := ExtractStrings(d, MustParse("items[1].name")); len(got) != 1 || got[0] != "b" {
		t.Fatalf("index extract = %v", got)
	}
	if got := Extract(d, MustParse("items[9].name")); got != nil {
		t.Fatalf("out-of-range extract = %v, want nil", got)
	}
	if got := Extract(d, MustParse("nope.x")); got != nil {
		t.Fatalf("missing-key extract = %v, want nil", got)
	}
	if got := Extract(d, MustParse("items.name")); got != nil {
		t.Fatalf("type-mismatch extract = %v, want nil", got)
	}
}

func TestExtractRoot(t *testing.T) {
	d := doc(t, `{"a":1}`)
	got := Extract(d, Path{})
	if len(got) != 1 {
		t.Fatalf("root extract = %v", got)
	}
}

func TestExtractNestedWildcards(t *testing.T) {
	d := doc(t, `{"rows":[{"cols":[1,2]},{"cols":[3]}]}`)
	got := ExtractStrings(d, MustParse("rows[*].cols[*]"))
	want := []string{"1", "2", "3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("nested wildcard = %v, want %v", got, want)
	}
}

func TestStringify(t *testing.T) {
	cases := []struct {
		in   any
		want string
		ok   bool
	}{
		{"x", "x", true},
		{float64(30), "30", true},
		{float64(1.5), "1.5", true},
		{true, "true", true},
		{nil, "", false},
		{map[string]any{}, "", false},
		{[]any{}, "", false},
	}
	for _, c := range cases {
		got, ok := Stringify(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("Stringify(%v) = %q,%v want %q,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestInjectCreatesObjects(t *testing.T) {
	root, err := Inject(nil, MustParse("a.b.c"), "v")
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	got := ExtractStrings(root, MustParse("a.b.c"))
	if len(got) != 1 || got[0] != "v" {
		t.Fatalf("after inject, extract = %v", got)
	}
}

func TestInjectIntoExistingArray(t *testing.T) {
	d := doc(t, `{"items":[{"id":"a"},{"id":"b"}]}`)
	root, err := Inject(d, MustParse("items[1].id"), "z")
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	got := ExtractStrings(root, MustParse("items[*].id"))
	want := []string{"a", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after inject = %v, want %v", got, want)
	}
}

func TestInjectErrors(t *testing.T) {
	if _, err := Inject(nil, MustParse("a[*].b"), 1); err == nil {
		t.Error("Inject through wildcard succeeded")
	}
	if _, err := Inject(map[string]any{}, MustParse("a[0]"), 1); err == nil {
		t.Error("Inject into missing array succeeded")
	}
}

func TestInjectRoot(t *testing.T) {
	root, err := Inject(map[string]any{"x": 1}, Path{}, "replaced")
	if err != nil || root != "replaced" {
		t.Fatalf("Inject(root) = %v, %v", root, err)
	}
}

// Property: for random key chains, Inject then Extract returns the injected
// value (Extract ∘ Inject identity).
func TestInjectExtractRoundTripProperty(t *testing.T) {
	f := func(keys [3]uint8, val int16) bool {
		p := Path{}
		for _, k := range keys {
			p = append(p, Step{Key: string(rune('a' + k%26))})
		}
		root, err := Inject(nil, p, float64(val))
		if err != nil {
			return false
		}
		got := Extract(root, p)
		return len(got) == 1 && got[0] == float64(val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: wildcard fan-out count equals the product of array lengths along
// a two-level wildcard path.
func TestWildcardFanOutCountProperty(t *testing.T) {
	f := func(outer, inner uint8) bool {
		n, m := int(outer%8), int(inner%8)
		rows := make([]any, n)
		for i := range rows {
			cols := make([]any, m)
			for j := range cols {
				cols[j] = float64(i*m + j)
			}
			rows[i] = map[string]any{"cols": cols}
		}
		d := map[string]any{"rows": rows}
		got := Extract(d, MustParse("rows[*].cols[*]"))
		return len(got) == n*m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := doc(t, `{"a":[1,2,{"b":"c"}]}`)
	b, err := Encode(d)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	d2, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(d, d2) {
		t.Fatalf("round trip mismatch: %v vs %v", d, d2)
	}
}
