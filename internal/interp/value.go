package interp

import (
	"fmt"

	"appx/internal/httpmsg"
)

// Value is a run-time AIR value. The concrete types are:
//
//	nil            null
//	string         string
//	int64          integer
//	bool           boolean
//	*Object        class instance
//	*MapObj        mutable map
//	*ListObj       mutable list
//	map[string]any / []any / float64   parsed JSON (encoding/json shapes)
//	*ReqHandle     HTTP request under construction
//	*RespHandle    received HTTP response
//	*Observable    Rx observable
type Value = any

// Object is a heap-allocated class instance.
type Object struct {
	Class  string
	Fields map[string]Value
}

// MapObj is a mutable string-keyed map.
type MapObj struct {
	M map[string]Value
}

// ListObj is a mutable list.
type ListObj struct {
	Items []Value
}

// ReqHandle wraps an httpmsg.Request being built by the app.
type ReqHandle struct {
	Req *httpmsg.Request
}

// RespHandle wraps a received response.
type RespHandle struct {
	Resp *httpmsg.Response
}

// Observable is a single-value Rx source evaluated on subscription.
type Observable struct {
	// force computes the value; it is invoked once per subscription.
	force func() (Value, error)
}

// Truthy implements AIR branch semantics: false, 0, "", and null are falsy;
// everything else (including empty containers) is truthy.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	default:
		return true
	}
}

// ToString renders a value the way string concatenation in the app would.
func ToString(v Value) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case int64:
		return fmt.Sprintf("%d", x)
	case float64:
		if x == float64(int64(x)) {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%g", x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("%v", x)
	}
}

// asInt coerces a value to an integer (strings parsed leniently, digits only).
func asInt(v Value) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case float64:
		return int64(x)
	case string:
		var n int64
		for _, r := range x {
			if r < '0' || r > '9' {
				return n
			}
			n = n*10 + int64(r-'0')
		}
		return n
	case bool:
		if x {
			return 1
		}
	}
	return 0
}

// elements returns the iterable items of a list-like value for OpForEach.
func elements(v Value) ([]Value, bool) {
	switch x := v.(type) {
	case *ListObj:
		return x.Items, true
	case []any:
		out := make([]Value, len(x))
		for i, e := range x {
			out[i] = e
		}
		return out, true
	case nil:
		return nil, true
	default:
		return nil, false
	}
}
