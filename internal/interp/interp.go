// Package interp executes AIR programs.
//
// The interpreter is the "Dalvik VM" of the emulated device: UI event
// handlers of the synthetic apps run here, construct HTTP requests through
// the semantic APIs, execute them via an injected transport, parse JSON
// responses, and render screens. Because it consumes the same AIR the static
// analyzer consumes, the traffic it generates is ground truth for the
// analyzer's signatures.
package interp

import (
	"errors"
	"fmt"
	"net/url"
	"strings"
	"sync"

	"appx/internal/air"
	"appx/internal/httpmsg"
	"appx/internal/jsonpath"
)

// Transport performs a single HTTP transaction on behalf of the app.
type Transport interface {
	RoundTrip(*httpmsg.Request) (*httpmsg.Response, error)
}

// TransportFunc adapts a function to Transport.
type TransportFunc func(*httpmsg.Request) (*httpmsg.Response, error)

// RoundTrip implements Transport.
func (f TransportFunc) RoundTrip(r *httpmsg.Request) (*httpmsg.Response, error) { return f(r) }

// DeviceProps are the run-time values static analysis cannot know (§4.2 of
// the paper: "device-specific values (e.g., user-agent request header)").
type DeviceProps struct {
	UserAgent  string
	Locale     string
	AppVersion string
	// Flags drive run-time branch conditions (device.flag), producing the
	// paper's Figure-8 instance classes.
	Flags map[string]bool
}

// Hooks observe app-level events during execution.
type Hooks struct {
	// OnTransaction fires after each completed HTTP transaction.
	OnTransaction func(*httpmsg.Transaction)
	// OnRender fires when the app renders a screen (ui.render).
	OnRender func(screen string)
	// OnImage fires when the app displays an image blob (ui.showImage).
	OnImage func(bytes int)
}

// Env is one app execution environment — the mutable device/session state
// shared across handler invocations.
type Env struct {
	Prog      *air.Program
	Transport Transport
	Device    DeviceProps
	Hooks     Hooks

	// MaxSteps bounds total executed instructions per Call to catch runaway
	// programs; 0 means the default of 1,000,000.
	MaxSteps int

	mu      sync.Mutex
	intents map[string]Value
	cookies map[string]string

	steps int
}

// NewEnv builds an execution environment for a verified program.
func NewEnv(prog *air.Program, tr Transport, dev DeviceProps) *Env {
	return &Env{
		Prog:      prog,
		Transport: tr,
		Device:    dev,
		intents:   make(map[string]Value),
		cookies:   make(map[string]string),
	}
}

// Cookie returns the stored cookie for host.
func (e *Env) Cookie(host string) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cookies[host]
}

// errTooManySteps aborts runaway executions.
var errTooManySteps = errors.New("interp: step budget exhausted")

// Call invokes a method by qualified name with the given arguments.
func (e *Env) Call(qualified string, args ...Value) (Value, error) {
	e.steps = 0
	return e.call(qualified, args)
}

func (e *Env) call(qualified string, args []Value) (Value, error) {
	m := e.Prog.Method(qualified)
	if m == nil {
		return nil, fmt.Errorf("interp: unknown method %q", qualified)
	}
	if len(args) != m.NumParams {
		return nil, fmt.Errorf("interp: %s wants %d args, got %d", qualified, m.NumParams, len(args))
	}
	regs := make([]Value, m.NumRegs)
	copy(regs, args)

	bi := 0
	for {
		if bi < 0 || bi >= len(m.Blocks) {
			return nil, fmt.Errorf("interp: %s: fell off block range at b%d", qualified, bi)
		}
		blk := m.Blocks[bi]
		jumped := false
		for ii := 0; ii < len(blk.Instrs); ii++ {
			in := blk.Instrs[ii]
			maxSteps := e.MaxSteps
			if maxSteps == 0 {
				maxSteps = 1_000_000
			}
			if e.steps++; e.steps > maxSteps {
				return nil, errTooManySteps
			}
			switch in.Op {
			case air.OpConstStr:
				regs[in.Dst] = in.Str
			case air.OpConstInt:
				regs[in.Dst] = in.Int
			case air.OpConstBool:
				regs[in.Dst] = in.Int != 0
			case air.OpMove:
				regs[in.Dst] = regs[in.A]
			case air.OpConcat:
				regs[in.Dst] = ToString(regs[in.A]) + ToString(regs[in.B])
			case air.OpNewObject:
				regs[in.Dst] = &Object{Class: in.Sym, Fields: map[string]Value{}}
			case air.OpIPut:
				obj, ok := regs[in.A].(*Object)
				if !ok {
					return nil, fmt.Errorf("interp: %s b%d[%d]: iput on non-object %T", qualified, bi, ii, regs[in.A])
				}
				obj.Fields[in.Sym] = regs[in.B]
			case air.OpIGet:
				obj, ok := regs[in.A].(*Object)
				if !ok {
					return nil, fmt.Errorf("interp: %s b%d[%d]: iget on non-object %T", qualified, bi, ii, regs[in.A])
				}
				regs[in.Dst] = obj.Fields[in.Sym]
			case air.OpNewMap:
				regs[in.Dst] = &MapObj{M: map[string]Value{}}
			case air.OpMapPut:
				mo, ok := regs[in.A].(*MapObj)
				if !ok {
					return nil, fmt.Errorf("interp: %s b%d[%d]: map-put on %T", qualified, bi, ii, regs[in.A])
				}
				mo.M[in.Sym] = regs[in.B]
			case air.OpMapGet:
				switch src := regs[in.A].(type) {
				case *MapObj:
					regs[in.Dst] = src.M[in.Sym]
				case map[string]any:
					regs[in.Dst] = src[in.Sym]
				default:
					return nil, fmt.Errorf("interp: %s b%d[%d]: map-get on %T", qualified, bi, ii, regs[in.A])
				}
			case air.OpNewList:
				regs[in.Dst] = &ListObj{}
			case air.OpListAdd:
				lo, ok := regs[in.A].(*ListObj)
				if !ok {
					return nil, fmt.Errorf("interp: %s b%d[%d]: list-add on %T", qualified, bi, ii, regs[in.A])
				}
				lo.Items = append(lo.Items, regs[in.B])
			case air.OpInvoke:
				callArgs := make([]Value, len(in.Args))
				for i, a := range in.Args {
					callArgs[i] = regs[a]
				}
				v, err := e.call(in.Sym, callArgs)
				if err != nil {
					return nil, err
				}
				regs[in.Dst] = v
			case air.OpCallAPI:
				callArgs := make([]Value, len(in.Args))
				for i, a := range in.Args {
					callArgs[i] = regs[a]
				}
				v, err := e.callAPI(in.Sym, callArgs)
				if err != nil {
					return nil, fmt.Errorf("interp: %s b%d[%d] %s: %w", qualified, bi, ii, in.Sym, err)
				}
				regs[in.Dst] = v
			case air.OpIf:
				if Truthy(regs[in.A]) {
					bi = in.Target
					jumped = true
				}
			case air.OpIfNull:
				if regs[in.A] == nil {
					bi = in.Target
					jumped = true
				}
			case air.OpGoto:
				bi = in.Target
				jumped = true
			case air.OpForEach:
				items, ok := elements(regs[in.A])
				if !ok {
					return nil, fmt.Errorf("interp: %s b%d[%d]: for-each over %T", qualified, bi, ii, regs[in.A])
				}
				extra := make([]Value, len(in.Args))
				for i, a := range in.Args {
					extra[i] = regs[a]
				}
				for _, item := range items {
					callArgs := append([]Value{item}, extra...)
					if _, err := e.call(in.Sym, callArgs); err != nil {
						return nil, err
					}
				}
			case air.OpReturn:
				if in.A == air.NoReg {
					return nil, nil
				}
				return regs[in.A], nil
			default:
				return nil, fmt.Errorf("interp: %s: unsupported op %v", qualified, in.Op)
			}
			if jumped {
				break
			}
		}
		if !jumped {
			bi++ // fall through
		}
	}
}

func (e *Env) callAPI(api string, args []Value) (Value, error) {
	switch api {
	case air.APIHTTPNewRequest:
		return &ReqHandle{Req: &httpmsg.Request{Method: strings.ToUpper(ToString(args[0])), Scheme: "http"}}, nil

	case air.APIHTTPSetURL:
		rh, err := reqArg(args[0])
		if err != nil {
			return nil, err
		}
		raw := ToString(args[1])
		u, perr := url.Parse(raw)
		if perr != nil || u.Host == "" {
			return nil, fmt.Errorf("bad URL %q: %v", raw, perr)
		}
		rh.Req.Scheme = "http" // emulation is plaintext regardless of app scheme
		rh.Req.Host = u.Host
		rh.Req.Path = u.Path
		for _, k := range sortedKeys(u.Query()) {
			for _, v := range u.Query()[k] {
				rh.Req.Query = append(rh.Req.Query, httpmsg.Field{Key: k, Value: v})
			}
		}
		return nil, nil

	case air.APIHTTPAddQuery:
		rh, err := reqArg(args[0])
		if err != nil {
			return nil, err
		}
		rh.Req.Query = append(rh.Req.Query, httpmsg.Field{Key: ToString(args[1]), Value: ToString(args[2])})
		return nil, nil

	case air.APIHTTPAddHeader:
		rh, err := reqArg(args[0])
		if err != nil {
			return nil, err
		}
		rh.Req.Header = append(rh.Req.Header, httpmsg.Field{Key: ToString(args[1]), Value: ToString(args[2])})
		return nil, nil

	case air.APIHTTPSetBodyField:
		rh, err := reqArg(args[0])
		if err != nil {
			return nil, err
		}
		rh.Req.BodyKind = httpmsg.BodyForm
		rh.Req.BodyForm = append(rh.Req.BodyForm, httpmsg.Field{Key: ToString(args[1]), Value: ToString(args[2])})
		return nil, nil

	case air.APIHTTPExecute:
		rh, err := reqArg(args[0])
		if err != nil {
			return nil, err
		}
		if e.Transport == nil {
			return nil, errors.New("no transport configured")
		}
		req := rh.Req.Clone()
		resp, err := e.Transport.RoundTrip(req)
		if err != nil {
			return nil, fmt.Errorf("execute %s %s: %w", req.Method, req.URL(), err)
		}
		e.absorbCookies(req.Host, resp)
		if e.Hooks.OnTransaction != nil {
			e.Hooks.OnTransaction(&httpmsg.Transaction{Request: req, Response: resp})
		}
		return &RespHandle{Resp: resp}, nil

	case air.APIHTTPRespBody:
		resp, err := respArg(args[0])
		if err != nil {
			return nil, err
		}
		v, jerr := resp.Resp.JSON()
		if jerr != nil {
			return nil, nil // non-JSON body (e.g. image): app sees null
		}
		return v, nil

	case air.APIJSONGet:
		path, err := jsonpath.Parse(ToString(args[1]))
		if err != nil {
			return nil, err
		}
		vals := jsonpath.Extract(args[0], path)
		if len(vals) == 0 {
			return nil, nil
		}
		if path.HasWildcard() {
			return vals, nil // wildcard paths yield the whole fan-out
		}
		return vals[0], nil

	case air.APIListGet:
		items, ok := elements(args[0])
		if !ok {
			return nil, fmt.Errorf("list.get over %T", args[0])
		}
		idx := int(asInt(args[1]))
		if idx < 0 || idx >= len(items) {
			return nil, nil
		}
		return items[idx], nil
	case air.APIListLen:
		items, ok := elements(args[0])
		if !ok {
			return nil, fmt.Errorf("list.len over %T", args[0])
		}
		return int64(len(items)), nil

	case air.APIDeviceUserAgent:
		return e.Device.UserAgent, nil
	case air.APIDeviceLocale:
		return e.Device.Locale, nil
	case air.APIDeviceVersion:
		return e.Device.AppVersion, nil
	case air.APIDeviceCookie:
		return e.Cookie(ToString(args[0])), nil
	case air.APIDeviceFlag:
		return e.Device.Flags[ToString(args[0])], nil

	case air.APIIntentPut:
		e.mu.Lock()
		e.intents[ToString(args[0])] = args[1]
		e.mu.Unlock()
		return nil, nil
	case air.APIIntentGet:
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.intents[ToString(args[0])], nil

	case air.APIRxJust:
		v := args[0]
		return &Observable{force: func() (Value, error) { return v, nil }}, nil
	case air.APIRxDefer:
		name := ToString(args[0])
		return &Observable{force: func() (Value, error) { return e.call(name, nil) }}, nil
	case air.APIRxMap:
		src, err := obsArg(args[0])
		if err != nil {
			return nil, err
		}
		name := ToString(args[1])
		return &Observable{force: func() (Value, error) {
			v, err := src.force()
			if err != nil {
				return nil, err
			}
			return e.call(name, []Value{v})
		}}, nil
	case air.APIRxFlatMap:
		src, err := obsArg(args[0])
		if err != nil {
			return nil, err
		}
		name := ToString(args[1])
		return &Observable{force: func() (Value, error) {
			v, err := src.force()
			if err != nil {
				return nil, err
			}
			inner, err := e.call(name, []Value{v})
			if err != nil {
				return nil, err
			}
			io, ok := inner.(*Observable)
			if !ok {
				return nil, fmt.Errorf("rx.flatMap mapper %s returned %T, want observable", name, inner)
			}
			return io.force()
		}}, nil
	case air.APIRxSubscribe:
		src, err := obsArg(args[0])
		if err != nil {
			return nil, err
		}
		v, err := src.force()
		if err != nil {
			return nil, err
		}
		return e.call(ToString(args[1]), []Value{v})

	case air.APIUIRender:
		if e.Hooks.OnRender != nil {
			e.Hooks.OnRender(ToString(args[0]))
		}
		return nil, nil
	case air.APIUIShowImage:
		n := 0
		if rh, ok := args[0].(*RespHandle); ok {
			n = len(rh.Resp.Body)
		}
		if e.Hooks.OnImage != nil {
			e.Hooks.OnImage(n)
		}
		return nil, nil
	case air.APIJSONForEach:
		return nil, errors.New("json.forEach is expressed as OpForEach over json.get")
	}
	return nil, fmt.Errorf("unknown API %q", api)
}

// absorbCookies stores Set-Cookie values in the device cookie jar (the name
// before '=' through the first ';').
func (e *Env) absorbCookies(host string, resp *httpmsg.Response) {
	for _, f := range resp.Header {
		if !strings.EqualFold(f.Key, "Set-Cookie") {
			continue
		}
		v := f.Value
		if i := strings.IndexByte(v, ';'); i >= 0 {
			v = v[:i]
		}
		e.mu.Lock()
		e.cookies[host] = v
		e.mu.Unlock()
	}
}

func reqArg(v Value) (*ReqHandle, error) {
	rh, ok := v.(*ReqHandle)
	if !ok {
		return nil, fmt.Errorf("expected request handle, got %T", v)
	}
	return rh, nil
}

func respArg(v Value) (*RespHandle, error) {
	rh, ok := v.(*RespHandle)
	if !ok {
		return nil, fmt.Errorf("expected response handle, got %T", v)
	}
	return rh, nil
}

func obsArg(v Value) (*Observable, error) {
	o, ok := v.(*Observable)
	if !ok {
		return nil, fmt.Errorf("expected observable, got %T", v)
	}
	return o, nil
}

func sortedKeys(v url.Values) []string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	// insertion sort; query maps are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
