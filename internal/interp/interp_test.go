package interp

import (
	"fmt"
	"testing"

	"appx/internal/air"
	"appx/internal/httpmsg"
)

// fakeServer routes requests by path, recording them.
type fakeServer struct {
	got  []*httpmsg.Request
	fail bool
}

func (s *fakeServer) RoundTrip(r *httpmsg.Request) (*httpmsg.Response, error) {
	s.got = append(s.got, r)
	if s.fail {
		return nil, fmt.Errorf("server down")
	}
	switch r.Path {
	case "/api/get-feed":
		return &httpmsg.Response{
			Status: 200,
			Header: []httpmsg.Field{{Key: "Set-Cookie", Value: "bsid=c38e; Path=/"}, {Key: "Content-Type", Value: "application/json"}},
			Body:   []byte(`{"data":{"products":[{"product_info":{"id":"09cf"}},{"product_info":{"id":"3gf3"}}]}}`),
		}, nil
	case "/product/get":
		cid, _ := r.GetForm("cid")
		return &httpmsg.Response{
			Status: 200,
			Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
			Body:   []byte(`{"detail":{"cid":"` + cid + `"}}`),
		}, nil
	case "/img":
		return &httpmsg.Response{Status: 200, Body: make([]byte, 1024)}, nil
	default:
		return &httpmsg.Response{Status: 404, Body: []byte(`{"error":"nf"}`)}, nil
	}
}

// buildWishlike compiles a miniature Wish-like app: feed → per-item detail
// (cid from feed id), with a branch-conditional body field and an image per
// item.
func buildWishlike(t testing.TB) *air.Program {
	t.Helper()
	pb := air.NewProgramBuilder()
	c := pb.Class("Main", air.KindActivity)

	m := c.Method("launch", 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://wish.example/api/get-feed"))
	m.CallAPI(air.APIHTTPAddHeader, req, m.ConstStr("User-Agent"), m.CallAPI(air.APIDeviceUserAgent))
	resp := m.CallAPI(air.APIHTTPExecute, req)
	body := m.CallAPI(air.APIHTTPRespBody, resp)
	ids := m.CallAPI(air.APIJSONGet, body, m.ConstStr("data.products[*].product_info.id"))
	m.ForEach(ids, "Main.loadDetail")
	m.CallAPI(air.APIUIRender, m.ConstStr("feed"))
	m.Done()

	d := c.Method("loadDetail", 1)
	dreq := d.CallAPI(air.APIHTTPNewRequest, d.ConstStr("POST"))
	d.CallAPI(air.APIHTTPSetURL, dreq, d.ConstStr("http://wish.example/product/get"))
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("cid"), d.Param(0))
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("_client"), d.ConstStr("android"))
	skip := d.Block()
	cont := d.Block()
	flag := d.CallAPI(air.APIDeviceFlag, d.ConstStr("no_credit"))
	d.If(flag, skip)
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("credit_id"), d.CallAPI(air.APIDeviceVersion))
	d.Goto(cont)
	d.Enter(skip)
	d.Goto(cont)
	d.Enter(cont)
	dresp := d.CallAPI(air.APIHTTPExecute, dreq)
	_ = dresp
	ireq := d.CallAPI(air.APIHTTPNewRequest, d.ConstStr("GET"))
	iurl := d.StrConcat("http://img.wish.example/img?cid=", d.Param(0))
	d.CallAPI(air.APIHTTPSetURL, ireq, iurl)
	iresp := d.CallAPI(air.APIHTTPExecute, ireq)
	d.CallAPI(air.APIUIShowImage, iresp)
	d.CallAPI(air.APIUIRender, d.ConstStr("detail"))
	d.Done()

	return pb.MustBuild()
}

func TestEndToEndFanOut(t *testing.T) {
	srv := &fakeServer{}
	env := NewEnv(buildWishlike(t), srv, DeviceProps{UserAgent: "UA/1", AppVersion: "4.13.0"})
	var renders []string
	var images int
	env.Hooks.OnRender = func(s string) { renders = append(renders, s) }
	env.Hooks.OnImage = func(n int) { images += n }

	if _, err := env.Call("Main.launch"); err != nil {
		t.Fatalf("Call: %v", err)
	}
	// 1 feed + 2 details + 2 images
	if len(srv.got) != 5 {
		t.Fatalf("requests = %d, want 5", len(srv.got))
	}
	if ua, _ := srv.got[0].GetHeader("User-Agent"); ua != "UA/1" {
		t.Fatalf("user agent = %q", ua)
	}
	if cid, _ := srv.got[1].GetForm("cid"); cid != "09cf" {
		t.Fatalf("first detail cid = %q", cid)
	}
	if cid, _ := srv.got[3].GetForm("cid"); cid != "3gf3" {
		t.Fatalf("second detail cid = %q", cid)
	}
	if v, ok := srv.got[1].GetForm("credit_id"); !ok || v != "4.13.0" {
		t.Fatalf("credit_id = %q %v (flag off: field expected)", v, ok)
	}
	if q, _ := srv.got[2].GetQuery("cid"); q != "09cf" {
		t.Fatalf("image query cid = %q", q)
	}
	if images != 2048 {
		t.Fatalf("images bytes = %d", images)
	}
	if len(renders) != 3 || renders[2] != "feed" {
		t.Fatalf("renders = %v", renders)
	}
}

func TestBranchConditionDropsField(t *testing.T) {
	srv := &fakeServer{}
	env := NewEnv(buildWishlike(t), srv, DeviceProps{Flags: map[string]bool{"no_credit": true}})
	if _, err := env.Call("Main.launch"); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if _, ok := srv.got[1].GetForm("credit_id"); ok {
		t.Fatal("credit_id present despite no_credit flag")
	}
}

func TestCookieJar(t *testing.T) {
	srv := &fakeServer{}
	env := NewEnv(buildWishlike(t), srv, DeviceProps{})
	if _, err := env.Call("Main.launch"); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got := env.Cookie("wish.example"); got != "bsid=c38e" {
		t.Fatalf("cookie = %q", got)
	}
}

func TestIntentFlow(t *testing.T) {
	pb := air.NewProgramBuilder()
	a := pb.Class("A", air.KindActivity)
	m := a.Method("go", 0)
	m.CallAPI(air.APIIntentPut, m.ConstStr("item_id"), m.ConstStr("e5f"))
	r := m.Invoke("B.onCreate")
	m.Return(r)
	m.Done()
	b := pb.Class("B", air.KindActivity)
	bm := b.Method("onCreate", 0)
	id := bm.CallAPI(air.APIIntentGet, bm.ConstStr("item_id"))
	bm.Return(id)
	bm.Done()
	env := NewEnv(pb.MustBuild(), nil, DeviceProps{})
	v, err := env.Call("A.go")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if v != "e5f" {
		t.Fatalf("intent value = %v", v)
	}
}

func TestRxPipeline(t *testing.T) {
	pb := air.NewProgramBuilder()
	c := pb.Class("C", air.KindPlain)

	double := c.Method("double", 1)
	double.Return(double.Concat(double.Param(0), double.Param(0)))
	double.Done()

	inner := c.Method("inner", 1)
	o := inner.CallAPI(air.APIRxJust, inner.ConcatStr(inner.Param(0), "!"))
	inner.Return(o)
	inner.Done()

	sink := c.Method("sink", 1)
	sink.Return(sink.Param(0))
	sink.Done()

	m := c.Method("run", 0)
	src := m.CallAPI(air.APIRxJust, m.ConstStr("ab"))
	mapped := m.CallAPI(air.APIRxMap, src, m.ConstStr("C.double"))
	flat := m.CallAPI(air.APIRxFlatMap, mapped, m.ConstStr("C.inner"))
	out := m.CallAPI(air.APIRxSubscribe, flat, m.ConstStr("C.sink"))
	m.Return(out)
	m.Done()

	env := NewEnv(pb.MustBuild(), nil, DeviceProps{})
	v, err := env.Call("C.run")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if v != "abab!" {
		t.Fatalf("rx result = %v, want abab!", v)
	}
}

func TestRxDefer(t *testing.T) {
	pb := air.NewProgramBuilder()
	c := pb.Class("C", air.KindPlain)
	prod := c.Method("produce", 0)
	prod.Return(prod.ConstStr("lazy"))
	prod.Done()
	sink := c.Method("sink", 1)
	sink.Return(sink.Param(0))
	sink.Done()
	m := c.Method("run", 0)
	o := m.CallAPI(air.APIRxDefer, m.ConstStr("C.produce"))
	res := m.CallAPI(air.APIRxSubscribe, o, m.ConstStr("C.sink"))
	m.Return(res)
	m.Done()
	env := NewEnv(pb.MustBuild(), nil, DeviceProps{})
	v, err := env.Call("C.run")
	if err != nil || v != "lazy" {
		t.Fatalf("rx.defer = %v, %v", v, err)
	}
}

func TestTransportErrorPropagates(t *testing.T) {
	srv := &fakeServer{fail: true}
	env := NewEnv(buildWishlike(t), srv, DeviceProps{})
	if _, err := env.Call("Main.launch"); err == nil {
		t.Fatal("expected transport error")
	}
}

func TestStepBudget(t *testing.T) {
	pb := air.NewProgramBuilder()
	c := pb.Class("C", air.KindPlain)
	m := c.Method("loop", 0)
	m.Goto(0)
	m.Done()
	env := NewEnv(pb.MustBuild(), nil, DeviceProps{})
	env.MaxSteps = 1000
	if _, err := env.Call("C.loop"); err == nil {
		t.Fatal("infinite loop not caught")
	}
}

func TestObjectFieldsAndMaps(t *testing.T) {
	pb := air.NewProgramBuilder()
	c := pb.Class("C", air.KindPlain)
	m := c.Method("run", 0)
	obj := m.NewObject("Holder")
	m.IPut(obj, "name", m.ConstStr("silk"))
	alias := m.Move(obj)
	name := m.IGet(alias, "name")
	mp := m.NewMap()
	m.MapPut(mp, "k", name)
	out := m.MapGet(mp, "k")
	m.Return(out)
	m.Done()
	env := NewEnv(pb.MustBuild(), nil, DeviceProps{})
	v, err := env.Call("C.run")
	if err != nil || v != "silk" {
		t.Fatalf("field/map flow = %v, %v", v, err)
	}
}

func TestListOps(t *testing.T) {
	pb := air.NewProgramBuilder()
	c := pb.Class("C", air.KindPlain)
	add := c.Method("accum", 2) // (item, acc)
	acc := add.Param(1)
	add.IPut(acc, "last", add.Param(0))
	add.Done()
	m := c.Method("run", 0)
	l := m.NewList()
	m.ListAdd(l, m.ConstStr("a"))
	m.ListAdd(l, m.ConstStr("b"))
	accObj := m.NewObject("Acc")
	m.ForEach(l, "C.accum", accObj)
	m.Return(m.IGet(accObj, "last"))
	m.Done()
	env := NewEnv(pb.MustBuild(), nil, DeviceProps{})
	v, err := env.Call("C.run")
	if err != nil || v != "b" {
		t.Fatalf("list foreach = %v, %v", v, err)
	}
}

func TestTruthyToString(t *testing.T) {
	if Truthy(nil) || Truthy(false) || Truthy(int64(0)) || Truthy("") {
		t.Fatal("falsy values misjudged")
	}
	if !Truthy(true) || !Truthy(int64(2)) || !Truthy("x") || !Truthy(&Object{}) {
		t.Fatal("truthy values misjudged")
	}
	if ToString(int64(42)) != "42" || ToString(float64(30)) != "30" || ToString(true) != "true" || ToString(nil) != "" {
		t.Fatal("ToString wrong")
	}
	if ToString(1.5) != "1.5" {
		t.Fatalf("ToString(1.5) = %q", ToString(1.5))
	}
}

func TestUnknownMethodAndArity(t *testing.T) {
	env := NewEnv(buildWishlike(t), nil, DeviceProps{})
	if _, err := env.Call("Nope.nothing"); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := env.Call("Main.loadDetail"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestJSONGetScalarVsWildcard(t *testing.T) {
	pb := air.NewProgramBuilder()
	c := pb.Class("C", air.KindPlain)
	m := c.Method("run", 1)
	v := m.CallAPI(air.APIJSONGet, m.Param(0), m.ConstStr("a.b"))
	m.Return(v)
	m.Done()
	env := NewEnv(pb.MustBuild(), nil, DeviceProps{})
	doc := map[string]any{"a": map[string]any{"b": "deep"}}
	got, err := env.Call("C.run", doc)
	if err != nil || got != "deep" {
		t.Fatalf("json.get scalar = %v, %v", got, err)
	}
	missing, err := env.Call("C.run", map[string]any{})
	if err != nil || missing != nil {
		t.Fatalf("json.get missing = %v, %v", missing, err)
	}
}

func TestOnTransactionHook(t *testing.T) {
	srv := &fakeServer{}
	env := NewEnv(buildWishlike(t), srv, DeviceProps{})
	var txns []*httpmsg.Transaction
	env.Hooks.OnTransaction = func(txn *httpmsg.Transaction) { txns = append(txns, txn) }
	if _, err := env.Call("Main.launch"); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if len(txns) != 5 {
		t.Fatalf("transactions observed = %d, want 5", len(txns))
	}
	if txns[0].Response.Status != 200 {
		t.Fatalf("status = %d", txns[0].Response.Status)
	}
}

func TestIfNullRuntime(t *testing.T) {
	pb := air.NewProgramBuilder()
	c := pb.Class("C", air.KindPlain)
	m := c.Method("pick", 1)
	nullArm := m.Block()
	m.IfNull(m.Param(0), nullArm)
	a := m.ConstStr("non-null")
	m.Return(a)
	m.Enter(nullArm)
	b := m.ConstStr("was-null")
	m.Return(b)
	m.Done()
	env := NewEnv(pb.MustBuild(), nil, DeviceProps{})
	if v, err := env.Call("C.pick", nil); err != nil || v != "was-null" {
		t.Fatalf("null arm = %v, %v", v, err)
	}
	if v, err := env.Call("C.pick", "x"); err != nil || v != "non-null" {
		t.Fatalf("non-null arm = %v, %v", v, err)
	}
}

func TestAsInt(t *testing.T) {
	cases := []struct {
		in   Value
		want int64
	}{
		{int64(7), 7}, {float64(3.9), 3}, {"12", 12}, {"12x", 12}, {"x", 0},
		{true, 1}, {false, 0}, {nil, 0},
	}
	for _, c := range cases {
		if got := asInt(c.in); got != c.want {
			t.Errorf("asInt(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestListGetOutOfRange(t *testing.T) {
	pb := air.NewProgramBuilder()
	c := pb.Class("C", air.KindPlain)
	m := c.Method("run", 2)
	v := m.CallAPI(air.APIListGet, m.Param(0), m.Param(1))
	m.Return(v)
	m.Done()
	env := NewEnv(pb.MustBuild(), nil, DeviceProps{})
	list := []any{"a", "b"}
	got, err := env.Call("C.run", list, "1")
	if err != nil || got != "b" {
		t.Fatalf("list.get = %v, %v", got, err)
	}
	got, err = env.Call("C.run", list, "9")
	if err != nil || got != nil {
		t.Fatalf("out of range = %v, %v (want nil)", got, err)
	}
}

func TestListLen(t *testing.T) {
	pb := air.NewProgramBuilder()
	c := pb.Class("C", air.KindPlain)
	m := c.Method("run", 1)
	n := m.CallAPI(air.APIListLen, m.Param(0))
	m.Return(n)
	m.Done()
	env := NewEnv(pb.MustBuild(), nil, DeviceProps{})
	got, err := env.Call("C.run", []any{"a", "b", "c"})
	if err != nil || got != int64(3) {
		t.Fatalf("list.len = %v, %v", got, err)
	}
}

func TestCookieJarPerHost(t *testing.T) {
	srv := interp_testMultiHost{}
	pb := air.NewProgramBuilder()
	c := pb.Class("C", air.KindPlain)
	m := c.Method("run", 0)
	for _, host := range []string{"a.example", "b.example"} {
		req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
		m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://"+host+"/"))
		m.CallAPI(air.APIHTTPExecute, req)
	}
	m.Done()
	env := NewEnv(pb.MustBuild(), srv, DeviceProps{})
	if _, err := env.Call("C.run"); err != nil {
		t.Fatal(err)
	}
	if env.Cookie("a.example") != "sid=a" || env.Cookie("b.example") != "sid=b" {
		t.Fatalf("cookies = %q / %q", env.Cookie("a.example"), env.Cookie("b.example"))
	}
}

type interp_testMultiHost struct{}

func (interp_testMultiHost) RoundTrip(r *httpmsg.Request) (*httpmsg.Response, error) {
	return &httpmsg.Response{
		Status: 200,
		Header: []httpmsg.Field{{Key: "Set-Cookie", Value: "sid=" + r.Host[:1] + "; Path=/"}},
		Body:   []byte(`{}`),
	}, nil
}
