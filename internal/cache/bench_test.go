package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"appx/internal/httpmsg"
)

// mutexStore reproduces the pre-sharding layout this subsystem replaced:
// one registry lock in front of per-user entry maps, every operation
// serialized through it. It exists only as the benchmark baseline.
type mutexStore struct {
	mu    sync.Mutex
	users map[string]map[string]*Entry
	now   func() time.Time
}

func newMutexStore(now func() time.Time) *mutexStore {
	return &mutexStore{users: map[string]map[string]*Entry{}, now: now}
}

func (m *mutexStore) Get(scope, key string) (*Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.users[scope][key]
	if e == nil {
		return nil, false
	}
	if !m.now().Before(e.Expires) {
		delete(m.users[scope], key)
		return e, false
	}
	return e, true
}

func (m *mutexStore) Put(scope, key string, e *Entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	u := m.users[scope]
	if u == nil {
		u = map[string]*Entry{}
		m.users[scope] = u
	}
	u[key] = e
}

type kv interface {
	Get(scope, key string) (*Entry, bool)
	Put(scope, key string, e *Entry)
}

// benchLoop drives a read-heavy mixed workload (15/16 gets, 1/16 puts)
// over 64 user scopes × 64 keys — the shape of many users hitting their
// prefetch caches while prefetch workers insert.
func benchLoop(b *testing.B, s kv, expires time.Time) {
	const scopes, keys = 64, 64
	scopeNames := make([]string, scopes)
	keyNames := make([]string, keys)
	for i := range scopeNames {
		scopeNames[i] = fmt.Sprintf("user-%d", i)
	}
	for i := range keyNames {
		keyNames[i] = fmt.Sprintf("GET|cdn.example|/asset|id=%d", i)
	}
	body := make([]byte, 2048)
	for i := 0; i < scopes; i++ {
		for j := 0; j < keys; j++ {
			s.Put(scopeNames[i], keyNames[j], &Entry{
				Resp:    &httpmsg.Response{Status: 200, Body: body},
				SigID:   "bench",
				Expires: expires,
			})
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			scope := scopeNames[i%scopes]
			key := keyNames[(i/scopes)%keys]
			if i%16 == 15 {
				s.Put(scope, key, &Entry{
					Resp:    &httpmsg.Response{Status: 200, Body: body},
					SigID:   "bench",
					Expires: expires,
				})
			} else {
				s.Get(scope, key)
			}
			i++
		}
	})
}

// BenchmarkCacheParallel contrasts the sharded store with the single-mutex
// baseline under concurrency. Run with -cpu 8 (or more) on a multi-core
// host to see the shard win: the baseline serializes every operation
// through one lock, the shards run ~32-way concurrent. On a single-core
// host both serialize and the baseline's lighter bookkeeping wins — the
// interesting number there is BenchmarkCacheEvictionAtCap below.
func BenchmarkCacheParallel(b *testing.B) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	expires := now.Add(time.Hour)
	b.Run("sharded", func(b *testing.B) {
		benchLoop(b, New(Options{Now: clock, MaxBytes: -1, PerScopeBytes: -1, MaxEntriesPerScope: -1}), expires)
	})
	b.Run("single-mutex", func(b *testing.B) {
		benchLoop(b, newMutexStore(clock), expires)
	})
}

// putCapped reproduces the seed proxy's capacity behaviour: at the entry
// cap, scan the whole user map for the entry closest to expiry and evict it
// — the O(n) evictOneLocked the expiry heap + LRU replaced.
func (m *mutexStore) putCapped(scope, key string, e *Entry, cap int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	u := m.users[scope]
	if u == nil {
		u = map[string]*Entry{}
		m.users[scope] = u
	}
	if len(u) >= cap {
		now := m.now()
		var victim string
		var soonest time.Time
		for k, en := range u {
			if now.After(en.Expires) {
				victim = k
				break
			}
			if victim == "" || en.Expires.Before(soonest) {
				victim, soonest = k, en.Expires
			}
		}
		if victim != "" {
			delete(u, victim)
		}
	}
	u[key] = e
}

// BenchmarkCacheEvictionAtCap measures one Put into a full per-user cache
// (4096 entries, the seed's default cap) — the steady state of a busy user.
// The sharded store pays O(log n) heap maintenance plus an O(1) LRU pop;
// the seed's layout pays a full O(n) expiry scan per insert. This win is
// core-count independent.
func BenchmarkCacheEvictionAtCap(b *testing.B) {
	const capEntries = 4096
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	mkEnt := func(i int) *Entry {
		return &Entry{
			Resp:    &httpmsg.Response{Status: 200, Body: make([]byte, 128)},
			SigID:   "bench",
			Expires: now.Add(time.Hour + time.Duration(i)*time.Second),
		}
	}
	b.Run("heap-sharded", func(b *testing.B) {
		s := New(Options{Now: clock, MaxEntriesPerScope: capEntries, MaxBytes: -1, PerScopeBytes: -1})
		for i := 0; i < capEntries; i++ {
			s.Put("u", fmt.Sprintf("k%d", i), mkEnt(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Put("u", fmt.Sprintf("n%d", i), mkEnt(capEntries+i))
		}
	})
	b.Run("scan-single-mutex", func(b *testing.B) {
		m := newMutexStore(clock)
		for i := 0; i < capEntries; i++ {
			m.putCapped("u", fmt.Sprintf("k%d", i), mkEnt(i), capEntries)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.putCapped("u", fmt.Sprintf("n%d", i), mkEnt(capEntries+i), capEntries)
		}
	})
}
