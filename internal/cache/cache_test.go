package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"appx/internal/httpmsg"
)

func testStore(opts Options, now *time.Time) *Store {
	opts.Now = func() time.Time { return *now }
	return New(opts)
}

func ent(sigID string, bodyLen int, expires time.Time) *Entry {
	return &Entry{
		Resp:    &httpmsg.Response{Status: 200, Body: make([]byte, bodyLen)},
		SigID:   sigID,
		Expires: expires,
	}
}

// The R3 invariant: a response is never served past its expiration time, no
// matter how recently it was stored — asserted by advancing the injected
// clock past the deadline.
func TestNeverServeStale(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	s := testStore(Options{}, &now)
	s.Put("u1", "k", ent("sig", 100, now.Add(time.Minute)))

	if e, fresh := s.Get("u1", "k"); !fresh || e == nil {
		t.Fatalf("fresh entry not served: entry=%v fresh=%v", e, fresh)
	}
	now = now.Add(time.Minute) // exactly at the deadline: already stale
	e, fresh := s.Get("u1", "k")
	if fresh {
		t.Fatal("expired entry served as fresh")
	}
	if e == nil {
		t.Fatal("expired entry's payload not returned for refresh")
	}
	if e2, _ := s.Get("u1", "k"); e2 != nil {
		t.Fatal("expired entry not removed at lookup")
	}
	m := s.Metrics()
	if m.Evictions.Expired != 1 {
		t.Fatalf("expired evictions = %d, want 1", m.Evictions.Expired)
	}
	if m.ResidentBytes != 0 {
		t.Fatalf("resident bytes = %d after sole entry expired, want 0", m.ResidentBytes)
	}
}

func TestSweepExpiredUsesHeapOrder(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	s := testStore(Options{Shards: 1}, &now)
	for i := 0; i < 10; i++ {
		// Staggered deadlines, inserted out of order.
		exp := now.Add(time.Duration(10-i) * time.Minute)
		s.Put("u1", fmt.Sprintf("k%d", i), ent("sig", 10, exp))
	}
	now = now.Add(5*time.Minute + time.Second) // k6..k9 (deadlines 1..4m) and k5 (5m) are past
	if removed := s.SweepExpired(); removed != 5 {
		t.Fatalf("sweep removed %d, want 5", removed)
	}
	for i := 0; i < 10; i++ {
		_, fresh := s.Get("u1", fmt.Sprintf("k%d", i))
		wantFresh := i < 5
		if fresh != wantFresh {
			t.Fatalf("k%d fresh=%v, want %v", i, fresh, wantFresh)
		}
	}
}

func TestGlobalByteBudgetEvictsLRU(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	const entrySz = 1000 + 2 + entryOverhead // body + key "kN" + overhead
	s := testStore(Options{Shards: 1, MaxBytes: 4 * entrySz, PerScopeBytes: -1, MaxEntriesPerScope: -1}, &now)
	exp := now.Add(time.Hour)
	for i := 0; i < 4; i++ {
		s.Put("u1", fmt.Sprintf("k%d", i), ent("sig", 1000, exp))
	}
	// Touch k0 so k1 becomes the least recently used.
	if _, fresh := s.Get("u1", "k0"); !fresh {
		t.Fatal("warm-up get missed")
	}
	s.Put("u1", "k4", ent("sig", 1000, exp))

	if _, fresh := s.Get("u1", "k1"); fresh {
		t.Fatal("LRU victim k1 survived the budget eviction")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, fresh := s.Get("u1", k); !fresh {
			t.Fatalf("%s evicted, want only the LRU entry gone", k)
		}
	}
	if got := s.ResidentBytes(); got > 4*entrySz {
		t.Fatalf("resident %d exceeds budget %d", got, 4*entrySz)
	}
	if m := s.Metrics(); m.Evictions.Budget != 1 {
		t.Fatalf("budget evictions = %d, want 1", m.Evictions.Budget)
	}
}

func TestPerScopeEntryCapIsolatesScopes(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	s := testStore(Options{Shards: 1, MaxEntriesPerScope: 3}, &now)
	exp := now.Add(time.Hour)
	s.Put("victim", "other", ent("sig", 10, exp))
	for i := 0; i < 5; i++ {
		s.Put("hog", fmt.Sprintf("k%d", i), ent("sig", 10, exp))
	}
	if n, _ := s.ScopeStats("hog"); n != 3 {
		t.Fatalf("hog holds %d entries, want cap 3", n)
	}
	// The cap evicts the scope's own oldest entries, never a neighbour's.
	if _, fresh := s.Get("victim", "other"); !fresh {
		t.Fatal("neighbour scope's entry evicted by another scope's cap")
	}
	for i := 0; i < 2; i++ {
		if _, fresh := s.Get("hog", fmt.Sprintf("k%d", i)); fresh {
			t.Fatalf("hog k%d survived, want oldest evicted", i)
		}
	}
	if m := s.Metrics(); m.Evictions.ScopeEntries != 2 {
		t.Fatalf("scope-entry evictions = %d, want 2", m.Evictions.ScopeEntries)
	}
}

func TestPerScopeByteCap(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	const entrySz = 1000 + 2 + entryOverhead
	s := testStore(Options{Shards: 1, PerScopeBytes: 2 * entrySz, MaxEntriesPerScope: -1}, &now)
	exp := now.Add(time.Hour)
	for i := 0; i < 4; i++ {
		s.Put("u1", fmt.Sprintf("k%d", i), ent("sig", 1000, exp))
	}
	if _, bytes := s.ScopeStats("u1"); bytes > 2*entrySz {
		t.Fatalf("scope bytes %d exceed cap %d", bytes, 2*entrySz)
	}
	if m := s.Metrics(); m.Evictions.ScopeBytes != 2 {
		t.Fatalf("scope-byte evictions = %d, want 2", m.Evictions.ScopeBytes)
	}
}

func TestSharedScopeExemptFromScopeCaps(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	s := testStore(Options{Shards: 1, MaxEntriesPerScope: 2}, &now)
	exp := now.Add(time.Hour)
	for i := 0; i < 10; i++ {
		s.Put(SharedScope, fmt.Sprintf("k%d", i), ent("sig", 10, exp))
	}
	if n, _ := s.ScopeStats(SharedScope); n != 10 {
		t.Fatalf("shared tier holds %d entries, want all 10 (caps are per-user)", n)
	}
}

func TestTryIssueSingleflight(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	s := testStore(Options{}, &now)
	window := time.Minute

	if !s.TryIssue(SharedScope, "k", window) {
		t.Fatal("first claim refused")
	}
	if s.TryIssue(SharedScope, "k", window) {
		t.Fatal("second claim admitted while first inflight")
	}
	// A failed prefetch releases the claim for immediate retry.
	s.CancelIssue(SharedScope, "k")
	if !s.TryIssue(SharedScope, "k", window) {
		t.Fatal("claim refused after cancel")
	}
	// A successful Put both clears the claim and blocks further claims via
	// the fresh entry itself.
	s.Put(SharedScope, "k", ent("sig", 10, now.Add(time.Hour)))
	if s.TryIssue(SharedScope, "k", window) {
		t.Fatal("claim admitted while a fresh entry exists")
	}
	// An abandoned claim (worker died without Put or Cancel) lapses with
	// its window.
	if !s.TryIssue("u1", "k2", window) {
		t.Fatal("unrelated claim refused")
	}
	now = now.Add(window)
	if !s.TryIssue("u1", "k2", window) {
		t.Fatal("claim not released after its window lapsed")
	}
}

func TestDropScope(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	s := testStore(Options{}, &now)
	exp := now.Add(time.Hour)
	for i := 0; i < 5; i++ {
		s.Put("u1", fmt.Sprintf("k%d", i), ent("sig", 100, exp))
		s.Put(SharedScope, fmt.Sprintf("s%d", i), ent("sig", 100, exp))
	}
	s.TryIssue("u1", "inflight", time.Minute)

	n, bytes := s.DropScope("u1")
	if n != 5 || bytes == 0 {
		t.Fatalf("DropScope(u1) = (%d, %d), want 5 entries and nonzero bytes", n, bytes)
	}
	if !s.TryIssue("u1", "inflight", time.Minute) {
		t.Fatal("inflight claim survived its scope's drop")
	}
	// Shared entries hash across all shards; dropping the shared scope must
	// reach every one.
	if n, _ := s.DropScope(SharedScope); n != 5 {
		t.Fatalf("DropScope(shared) = %d entries, want 5", n)
	}
	if got := s.ResidentBytes(); got != 0 {
		t.Fatalf("resident %d after dropping everything, want 0", got)
	}
	if m := s.Metrics(); m.Evictions.Dropped != 10 {
		t.Fatalf("dropped evictions = %d, want 10", m.Evictions.Dropped)
	}
}

func TestMetricsAndSharedHitRatio(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	s := testStore(Options{}, &now)
	exp := now.Add(time.Hour)
	s.Put("u1", "a", ent("sigA", 10, exp))
	s.Put(SharedScope, "b", ent("sigB", 10, exp))

	s.Get("u1", "a")        // hit
	s.Get(SharedScope, "b") // shared hit
	s.Get(SharedScope, "b") // shared hit
	s.Get("u1", "nope")     // miss

	m := s.Metrics()
	if m.Hits != 3 || m.Misses != 1 || m.SharedHits != 2 || m.Puts != 2 {
		t.Fatalf("metrics = hits %d misses %d shared %d puts %d", m.Hits, m.Misses, m.SharedHits, m.Puts)
	}
	if got := m.SharedHitRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("shared hit ratio = %v, want 2/3", got)
	}
	if m.SharedEntries != 1 || m.SharedBytes == 0 {
		t.Fatalf("shared occupancy = (%d, %d)", m.SharedEntries, m.SharedBytes)
	}
	if st := m.PerSig["sigB"]; st.Hits != 2 || st.Puts != 1 {
		t.Fatalf("sigB stats = %+v", st)
	}
}

func TestReplacePutAccounting(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	s := testStore(Options{}, &now)
	s.Put("u1", "k", ent("sig", 1000, now.Add(time.Hour)))
	s.Put("u1", "k", ent("sig", 50, now.Add(time.Hour)))
	want := size("k", ent("sig", 50, now))
	if got := s.ResidentBytes(); got != want {
		t.Fatalf("resident %d after replacement, want %d", got, want)
	}
	if m := s.Metrics(); m.Evictions.Replaced != 1 || m.Entries != 1 {
		t.Fatalf("replaced = %d entries = %d", m.Evictions.Replaced, m.Entries)
	}
}

func TestFirstUse(t *testing.T) {
	e := ent("sig", 1, time.Unix(1_700_000_000, 0))
	if !e.FirstUse() {
		t.Fatal("first FirstUse() = false")
	}
	if e.FirstUse() {
		t.Fatal("second FirstUse() = true")
	}
}

func TestSweeperLifecycle(t *testing.T) {
	// The sweeper goroutine reads the clock concurrently; guard it.
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	s := New(Options{Now: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}})
	s.StartSweeper(time.Millisecond)
	s.StartSweeper(time.Millisecond) // second start is a no-op, not a leak
	s.Put("u1", "k", ent("sig", 10, now.Add(time.Minute)))
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, _ := s.ScopeStats("u1"); n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background sweeper never removed the expired entry")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	s.Close() // idempotent
}

// The inflight-dedup key must include the scope *kind*: under the old
// scope+NUL+key concatenation these pairs collided, so one claim starved
// the other's singleflight.
func TestTryIssueScopeKindDisjoint(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	s := testStore(Options{Shards: 1}, &now) // one shard forces map sharing

	// Structural ambiguity of raw concatenation: ("a", "b\x00c") vs
	// ("a\x00b", "c") serialize identically without a length prefix.
	if !s.TryIssue("a", "b\x00c", time.Minute) {
		t.Fatal("first claim refused")
	}
	if !s.TryIssue("a\x00b", "c", time.Minute) {
		t.Fatal(`claim ("a\x00b", "c") collided with ("a", "b\x00c")`)
	}

	// Shared vs user scope of the same canonical key must be independent
	// flights — the cluster peer-fill key is IssueKey(SharedScope, key).
	if !s.TryIssue(SharedScope, "ckey", time.Minute) {
		t.Fatal("shared claim refused")
	}
	if !s.TryIssue("some-user", "ckey", time.Minute) {
		t.Fatal("user claim collided with shared claim of the same key")
	}
	if s.TryIssue(SharedScope, "ckey", time.Minute) {
		t.Fatal("duplicate shared claim admitted")
	}

	// DropScope must release exactly its own scope's claims under the new
	// key scheme.
	s.CancelIssue("a", "b\x00c")
	s.DropScope("some-user")
	if !s.TryIssue("some-user", "ckey", time.Minute) {
		t.Fatal("DropScope did not release the user's claim")
	}
	if s.TryIssue(SharedScope, "ckey", time.Minute) {
		t.Fatal("DropScope of a user scope released the shared claim")
	}
}

// Peek must be side-effect-free: no counters, no LRU promotion, no removal
// of expired entries — sibling peeks must not distort local telemetry.
func TestPeekNoSideEffects(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	s := testStore(Options{}, &now)
	s.Put(SharedScope, "k", ent("sig", 64, now.Add(time.Minute)))

	if e, ok := s.Peek(SharedScope, "k"); !ok || e == nil {
		t.Fatal("fresh entry not peekable")
	}
	if _, ok := s.Peek(SharedScope, "absent"); ok {
		t.Fatal("peek fabricated an entry")
	}
	m := s.Metrics()
	if m.Hits != 0 || m.Misses != 0 {
		t.Fatalf("peek moved counters: hits=%d misses=%d", m.Hits, m.Misses)
	}

	now = now.Add(2 * time.Minute)
	if _, ok := s.Peek(SharedScope, "k"); ok {
		t.Fatal("expired entry peeked as fresh")
	}
	if n, _ := s.ScopeStats(SharedScope); n != 1 {
		t.Fatalf("peek removed the expired entry (remaining=%d), Get owns expiry", n)
	}
}
