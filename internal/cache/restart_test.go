package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"appx/internal/httpmsg"
)

// TestSweeperRestartCycles: StartSweeper and Close must compose in any
// order, repeatedly — a warm-restarting embedder stops and restarts the
// sweeper across config reloads, and each cycle must leave exactly zero or
// one sweeper goroutine, never two.
func TestSweeperRestartCycles(t *testing.T) {
	s := New(Options{})
	for cycle := 0; cycle < 5; cycle++ {
		s.StartSweeper(time.Millisecond)
		// Re-entrant start must be a no-op, not a second goroutine.
		s.StartSweeper(time.Millisecond)
		s.Put("u", fmt.Sprintf("k%d", cycle), &Entry{
			Resp:    &httpmsg.Response{Status: 200, Body: []byte("x")},
			Expires: time.Now().Add(time.Hour),
		})
		time.Sleep(3 * time.Millisecond) // let at least one sweep tick run
		s.Close()
		// Close must be idempotent.
		s.Close()
	}
	// The store survives every cycle and still serves.
	if _, fresh := s.Get("u", "k4"); !fresh {
		t.Fatal("store unusable after sweeper restart cycles")
	}
}

// TestDropScopeRacesSweep: concurrent DropScope, SweepExpired, Put, and Get
// over overlapping scopes must be free of races and leave consistent
// accounting. Run under -race (scripts/check.sh does).
func TestDropScopeRacesSweep(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	s := New(Options{Now: clock, Shards: 4})
	defer s.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	scopes := []string{"alice", "bob", SharedScope}

	// Writers: half the entries already expired, so sweeps have work.
	for _, scope := range scopes {
		scope := scope
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				exp := clock().Add(time.Hour)
				if i%2 == 0 {
					exp = clock().Add(-time.Second)
				}
				s.Put(scope, fmt.Sprintf("k%d", i%64), &Entry{
					Resp:    &httpmsg.Response{Status: 200, Body: []byte("payload")},
					Expires: exp,
				})
			}
		}()
	}
	// Sweeper hammering expiry heaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.SweepExpired()
			}
		}
	}()
	// Scope dropper racing the sweeps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.DropScope(scopes[i%len(scopes)])
			}
		}
	}()
	// Readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.Get(scopes[i%len(scopes)], fmt.Sprintf("k%d", i%64))
			}
		}
	}()

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesced: accounting must be internally consistent.
	for _, scope := range scopes {
		s.DropScope(scope)
	}
	if rb := s.ResidentBytes(); rb != 0 {
		t.Fatalf("resident bytes after dropping every scope = %d, want 0", rb)
	}
	if m := s.Metrics(); m.Entries != 0 {
		t.Fatalf("entries after dropping every scope = %d, want 0", m.Entries)
	}
}

// TestSweeperRunsAfterRestart: a restarted sweeper actually sweeps — the
// stop channel from the first run must not wedge the second.
func TestSweeperRunsAfterRestart(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	s := New(Options{Now: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}})
	s.StartSweeper(time.Millisecond)
	s.Close()
	s.StartSweeper(time.Millisecond)
	defer s.Close()

	s.Put("u", "k", &Entry{
		Resp:    &httpmsg.Response{Status: 200, Body: []byte("x")},
		Expires: now.Add(time.Minute),
	})
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics().Entries == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("restarted sweeper never swept the expired entry")
}
