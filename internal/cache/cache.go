// Package cache implements the proxy's prefetch-response store: a
// hash-sharded, byte-budgeted, TTL-indexed cache with a cross-user shared
// tier.
//
// The paper's prototype keeps prefetched responses in one map per user (§5:
// "manages prefetched response per user separately"); this subsystem keeps
// that per-user semantics — a *scope* is a user key — while adding what a
// production deployment needs: per-shard locks instead of one mutex,
// expiry-ordered eviction via a min-heap instead of an O(n) scan, LRU
// ordering under byte pressure, a global resident-byte budget with
// per-scope fairness caps, and eviction/hit telemetry by cause.
//
// The shared tier is one distinguished scope (SharedScope): responses to
// requests that carry no per-user runtime values are stored once and served
// to every user. Safety rests on the proxy's exact-match rule (R3) — a
// cached response is only ever served to a byte-identical request — so the
// shared tier changes *who pays for the origin fetch*, never *what any
// client observes*. Inflight deduplication (TryIssue/CancelIssue) rides on
// the same scopes, so N concurrent users wanting one shared entry trigger a
// single origin fetch.
package cache

import (
	"container/heap"
	"container/list"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"appx/internal/httpmsg"
)

// SharedScope is the reserved scope for entries shared across all users.
// The NUL prefix keeps it disjoint from any proxy user key (user keys come
// from IPs or header values, which never contain NUL).
const SharedScope = "\x00shared"

// Options configures a Store. Zero fields take defaults.
type Options struct {
	// Shards is the number of independently locked shard partitions
	// (default 32).
	Shards int
	// MaxBytes is the global resident-byte budget across all shards and
	// scopes (default 256 MiB); exceeding it evicts least-recently-used
	// entries. <0 disables the budget.
	MaxBytes int64
	// PerScopeBytes caps one user scope's resident bytes (default
	// MaxBytes/64, at least 1 MiB) so a single chatty user cannot occupy
	// the whole budget. The shared scope is exempt. <0 disables the cap.
	PerScopeBytes int64
	// MaxEntriesPerScope caps one user scope's entry count (default 4096).
	// The shared scope is exempt. <0 disables the cap.
	MaxEntriesPerScope int
	// Now supplies time; defaults to time.Now. Injected for expiry tests.
	Now func() time.Time
	// Tier, when non-nil, is a lower storage level (a disk tier): Put
	// spills entries into it write-behind, Get probes it on a miss and
	// promotes what it finds, and DropScope propagates scope removal.
	Tier Tier
}

// Tier is a lower storage level below the in-memory store. Implementations
// must be safe for concurrent use and must never block the caller for long:
// Spill is fire-and-forget, Load is a synchronous read bounded by one file
// read, Drop is a synchronous scope removal.
type Tier interface {
	Spill(scope, key string, e *Entry)
	Load(scope, key string) (*Entry, bool)
	Drop(scope string)
}

func (o Options) filled() Options {
	if o.Shards <= 0 {
		o.Shards = 32
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 256 << 20
	}
	if o.PerScopeBytes == 0 {
		o.PerScopeBytes = o.MaxBytes / 64
		if o.PerScopeBytes < 1<<20 {
			o.PerScopeBytes = 1 << 20
		}
	}
	if o.MaxEntriesPerScope == 0 {
		o.MaxEntriesPerScope = 4096
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Entry is one prefetched response payload. Req is retained so an expired
// entry can seed a refresh prefetch; SigID attributes telemetry.
type Entry struct {
	Resp    *httpmsg.Response
	Req     *httpmsg.Request
	SigID   string
	Expires time.Time
	// Refreshed marks an entry produced by a foreground refresh of an
	// expired entry (kept warm for a demonstrated client) rather than a
	// speculative prefetch — telemetry distinguishes the two hit kinds.
	Refreshed bool

	used atomic.Bool
}

// FirstUse atomically marks the entry served and reports whether this was
// the first time (the numerator of the paper's used-prefetch ratio).
func (e *Entry) FirstUse() bool { return e.used.CompareAndSwap(false, true) }

// entryOverhead approximates the per-entry bookkeeping cost (maps, list and
// heap slots, struct headers) charged against the byte budget.
const entryOverhead = 256

// size approximates an entry's resident footprint: response body and
// headers, the canonical key, and fixed overhead. The retained request is
// a reconstruction recipe, small next to response bodies, and is not
// charged.
func size(key string, e *Entry) int64 {
	n := int64(len(key)) + entryOverhead
	if e.Resp != nil {
		n += int64(len(e.Resp.Body))
		for _, f := range e.Resp.Header {
			n += int64(len(f.Key) + len(f.Value))
		}
	}
	return n
}

// entry is the shard-internal wrapper: payload plus index state.
type entry struct {
	payload *Entry
	scope   string
	key     string
	size    int64
	lruEl   *list.Element
	heapIdx int
}

// entryHeap is a min-heap on expiry time; heapIdx tracks positions so
// arbitrary removal is O(log n).
type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	return h[i].payload.Expires.Before(h[j].payload.Expires)
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *entryHeap) Push(x any) {
	e := x.(*entry)
	e.heapIdx = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.heapIdx = -1
	*h = old[:n-1]
	return e
}

// shard is one lock domain: a fraction of the scopes (and of the shared
// tier's keys), with its own LRU list, expiry heap, and inflight-dedup map.
// Hot-path counters live here too, guarded by the lock the operation
// already holds, so telemetry adds no cross-shard synchronization.
type shard struct {
	mu         sync.Mutex
	byScope    map[string]map[string]*entry // scope → canonical key → entry
	lru        *list.List                   // front = most recently used
	heap       entryHeap
	scopeBytes map[string]int64
	issued     map[string]time.Time // scope+NUL+key → dedup deadline

	hits, misses, sharedHits, puts int64
	sigs                           map[string]*SigStats
}

// sigStat returns the shard-local counters for a signature (sh.mu held).
func (sh *shard) sigStat(id string) *SigStats {
	st := sh.sigs[id]
	if st == nil {
		st = &SigStats{}
		sh.sigs[id] = st
	}
	return st
}

// EvictionCounts breaks evictions down by cause.
type EvictionCounts struct {
	// Expired entries were past their expiration time (heap sweep or
	// discovered at lookup).
	Expired int64
	// Budget entries were evicted to respect the global byte budget.
	Budget int64
	// ScopeBytes / ScopeEntries entries were evicted to respect one user
	// scope's byte or entry cap.
	ScopeBytes   int64
	ScopeEntries int64
	// Replaced entries were overwritten by a newer Put of the same key.
	Replaced int64
	// Dropped entries left with their whole scope (user eviction).
	Dropped int64
}

// SigStats is one signature's cache telemetry. Hit ratio is hits over
// entries stored (misses cannot be attributed to a signature: an absent
// key names no signature).
type SigStats struct {
	Puts, Hits, Expired int64
}

// HitRatio returns hits per stored entry (may exceed 1: one entry can be
// served many times).
func (s SigStats) HitRatio() float64 {
	if s.Puts == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Puts)
}

// Metrics is an immutable snapshot of the store's counters.
type Metrics struct {
	// Hits and SharedHits count fresh lookups served, overall and from the
	// shared tier; Misses counts per-tier probes that found nothing fresh
	// (a layered lookup probing two tiers can record two misses).
	Hits, Misses, SharedHits int64
	// Puts counts entries stored.
	Puts int64
	// ResidentBytes / Entries describe current occupancy; SharedBytes /
	// SharedEntries the shared tier's slice of it.
	ResidentBytes, SharedBytes int64
	Entries, SharedEntries     int
	Evictions                  EvictionCounts
	// PerSig carries per-signature put/hit/expiry counts.
	PerSig map[string]SigStats
}

// HitRatio returns hits/(hits+misses), 0 when idle.
func (m Metrics) HitRatio() float64 {
	if m.Hits+m.Misses == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Hits+m.Misses)
}

// SharedHitRatio returns the fraction of hits served from the shared tier.
func (m Metrics) SharedHitRatio() float64 {
	if m.Hits == 0 {
		return 0
	}
	return float64(m.SharedHits) / float64(m.Hits)
}

// Store is the sharded prefetch store. All methods are safe for concurrent
// use.
type Store struct {
	opts     Options
	shards   []*shard
	resident atomic.Int64

	// Eviction causes are rare events; plain atomics suffice.
	evExpired, evBudget, evScopeB, evScopeN atomic.Int64
	evReplaced, evDropped                   atomic.Int64

	sweepMu   sync.Mutex
	sweepStop chan struct{}
}

// New builds a store.
func New(opts Options) *Store {
	s := &Store{opts: opts.filled()}
	s.shards = make([]*shard, s.opts.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{
			byScope:    map[string]map[string]*entry{},
			lru:        list.New(),
			scopeBytes: map[string]int64{},
			issued:     map[string]time.Time{},
			sigs:       map[string]*SigStats{},
		}
	}
	return s
}

// shardOf picks the lock domain: user scopes hash by scope, so one user's
// entries share a shard and per-user accounting and DropScope touch one
// lock; shared entries hash by key, spreading the hot shared tier across
// all shards.
func (s *Store) shardOf(scope, key string) *shard {
	x := scope
	if scope == SharedScope {
		x = key
	}
	// FNV-1a.
	h := uint32(2166136261)
	for i := 0; i < len(x); i++ {
		h ^= uint32(x[i])
		h *= 16777619
	}
	return s.shards[h%uint32(len(s.shards))]
}

// issueKey builds the inflight-dedup map key. The scope *kind* is part of
// the key: the old scope+"\x00"+key concatenation let a user-scoped and a
// shared-scoped fetch of the same canonical key collide (and was ambiguous
// outright — ("a", "b\x00c") equaled ("a\x00b", "c")), so one user's
// prefetch claim could starve the shared tier's singleflight. Shared keys
// get a fixed "s\x00" tag; user keys get a "u<len>\x00" tag whose length
// prefix makes the scope/key split structurally unambiguous.
func issueKey(scope, key string) string {
	if scope == SharedScope {
		return "s\x00" + key
	}
	return "u" + strconv.Itoa(len(scope)) + "\x00" + scope + key
}

// IssueKey exposes the inflight-dedup key. The cluster layer uses
// IssueKey(SharedScope, canonicalKey) as the fleet-wide flight key for peer
// fills: it is identical on every instance and collision-free against user
// claims by construction.
func IssueKey(scope, key string) string { return issueKey(scope, key) }

// Get looks up scope/key. fresh=true means the entry is valid to serve.
// A non-nil entry with fresh=false was expired at lookup: it has been
// removed, and its payload is returned so the caller may use the retained
// request to refresh (never the response — the stale invariant).
func (s *Store) Get(scope, key string) (e *Entry, fresh bool) {
	sh := s.shardOf(scope, key)
	now := s.opts.Now()
	sh.mu.Lock()
	en := sh.byScope[scope][key]
	if en == nil {
		sh.mu.Unlock()
		// Read-through: a memory miss probes the lower tier (outside the
		// shard lock — tier loads touch the disk). A fresh tier entry is
		// promoted into memory without re-spilling it back down.
		if t := s.opts.Tier; t != nil {
			if p, ok := t.Load(scope, key); ok && p != nil && now.Before(p.Expires) {
				s.put(scope, key, p, false)
				sh.mu.Lock()
				sh.hits++
				if scope == SharedScope {
					sh.sharedHits++
				}
				sh.sigStat(p.SigID).Hits++
				sh.mu.Unlock()
				return p, true
			}
		}
		sh.mu.Lock()
		sh.misses++
		sh.mu.Unlock()
		return nil, false
	}
	if !now.Before(en.payload.Expires) {
		s.removeLocked(sh, en)
		sh.misses++
		sh.sigStat(en.payload.SigID).Expired++
		sh.mu.Unlock()
		s.evExpired.Add(1)
		return en.payload, false
	}
	sh.lru.MoveToFront(en.lruEl)
	sh.hits++
	if scope == SharedScope {
		sh.sharedHits++
	}
	sh.sigStat(en.payload.SigID).Hits++
	sh.mu.Unlock()
	return en.payload, true
}

// Peek returns scope/key if present and fresh, with none of Get's side
// effects: no hit/miss counters, no LRU touch, no tier read-through, no
// expired-entry removal. Cluster siblings peek each other's shared tiers
// during peer fill; remote probes must not distort local telemetry or
// eviction order.
func (s *Store) Peek(scope, key string) (*Entry, bool) {
	sh := s.shardOf(scope, key)
	now := s.opts.Now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	en := sh.byScope[scope][key]
	if en == nil || !now.Before(en.payload.Expires) {
		return nil, false
	}
	return en.payload, true
}

// Put stores an entry, replacing any previous one under the same key,
// clearing the inflight-dedup record, and enforcing the scope caps and the
// global budget. When a lower tier is configured the entry is also spilled
// to it write-behind.
func (s *Store) Put(scope, key string, p *Entry) {
	s.put(scope, key, p, true)
}

// put is Put's body; spill=false is the tier-promotion path, which must not
// echo the entry back down to the tier it just came from.
func (s *Store) put(scope, key string, p *Entry, spill bool) {
	sz := size(key, p)
	sh := s.shardOf(scope, key)
	sh.mu.Lock()
	if old := sh.byScope[scope][key]; old != nil {
		s.removeLocked(sh, old)
		s.evReplaced.Add(1)
	}
	en := &entry{payload: p, scope: scope, key: key, size: sz}
	m := sh.byScope[scope]
	if m == nil {
		m = map[string]*entry{}
		sh.byScope[scope] = m
	}
	m[key] = en
	en.lruEl = sh.lru.PushFront(en)
	heap.Push(&sh.heap, en)
	sh.scopeBytes[scope] += sz
	delete(sh.issued, issueKey(scope, key))
	s.resident.Add(sz)
	if scope != SharedScope {
		// Per-scope fairness caps: evict the scope's own LRU entries, never
		// another user's. The new entry itself is exempt so a single
		// oversized response still caches (and ages out normally).
		for s.opts.MaxEntriesPerScope > 0 && len(m) > s.opts.MaxEntriesPerScope {
			v := oldestOfScopeLocked(sh, scope, en)
			if v == nil {
				break
			}
			s.removeLocked(sh, v)
			s.evScopeN.Add(1)
		}
		for s.opts.PerScopeBytes > 0 && sh.scopeBytes[scope] > s.opts.PerScopeBytes {
			v := oldestOfScopeLocked(sh, scope, en)
			if v == nil {
				break
			}
			s.removeLocked(sh, v)
			s.evScopeB.Add(1)
		}
	}
	sh.puts++
	sh.sigStat(p.SigID).Puts++
	sh.mu.Unlock()
	if spill {
		// Only complete buffered bodies spill: a streaming or truncated
		// capture serialized to disk would restore as a silently short entry.
		if t := s.opts.Tier; t != nil && (p.Resp == nil || p.Resp.BodyComplete()) {
			t.Spill(scope, key, p)
		}
	}
	if s.opts.MaxBytes > 0 && s.resident.Load() > s.opts.MaxBytes {
		s.evictGlobal(sh)
	}
}

// oldestOfScopeLocked walks the shard LRU from the cold end for the scope's
// least recently used entry, skipping keep (sh.mu held). Other scopes'
// entries are passed over, so a scope-cap eviction costs O(shard entries)
// worst case — acceptable because it only runs when a scope is at its cap.
func oldestOfScopeLocked(sh *shard, scope string, keep *entry) *entry {
	for el := sh.lru.Back(); el != nil; el = el.Prev() {
		if en := el.Value.(*entry); en.scope == scope && en != keep {
			return en
		}
	}
	return nil
}

// removeLocked unlinks an entry from all three indexes and the accounting
// (sh.mu held).
func (s *Store) removeLocked(sh *shard, en *entry) {
	m := sh.byScope[en.scope]
	delete(m, en.key)
	if len(m) == 0 {
		delete(sh.byScope, en.scope)
	}
	sh.lru.Remove(en.lruEl)
	heap.Remove(&sh.heap, en.heapIdx)
	sh.scopeBytes[en.scope] -= en.size
	if sh.scopeBytes[en.scope] <= 0 {
		delete(sh.scopeBytes, en.scope)
	}
	s.resident.Add(-en.size)
}

// evictGlobal enforces the global byte budget: drain the inserting shard's
// LRU tail first (cheapest — the lock is warm and the bytes just landed
// there), then sweep the other shards one lock at a time. Locks are never
// nested, so no ordering deadlock is possible.
func (s *Store) evictGlobal(pref *shard) {
	evictOne := func(sh *shard) bool {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		el := sh.lru.Back()
		if el == nil {
			return false
		}
		s.removeLocked(sh, el.Value.(*entry))
		s.evBudget.Add(1)
		return true
	}
	for s.resident.Load() > s.opts.MaxBytes && evictOne(pref) {
	}
	for s.resident.Load() > s.opts.MaxBytes {
		progress := false
		for _, sh := range s.shards {
			if s.resident.Load() <= s.opts.MaxBytes {
				return
			}
			if evictOne(sh) {
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// TryIssue claims the right to prefetch scope/key: it fails when a fresh
// entry already exists or another prefetch for the same key is inflight
// (issued within window). On success the claim stands until Put,
// CancelIssue, or the window elapses — singleflight across all users of a
// shared key.
func (s *Store) TryIssue(scope, key string, window time.Duration) bool {
	sh := s.shardOf(scope, key)
	now := s.opts.Now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if en := sh.byScope[scope][key]; en != nil && now.Before(en.payload.Expires) {
		return false
	}
	ik := issueKey(scope, key)
	if dl, ok := sh.issued[ik]; ok && now.Before(dl) {
		return false
	}
	sh.issued[ik] = now.Add(window)
	return true
}

// CancelIssue releases a TryIssue claim after a failed or abandoned
// prefetch, so the next opportunity may retry immediately.
func (s *Store) CancelIssue(scope, key string) {
	sh := s.shardOf(scope, key)
	sh.mu.Lock()
	delete(sh.issued, issueKey(scope, key))
	sh.mu.Unlock()
}

// DropScope removes every entry and inflight claim of a scope (user
// eviction). Returns entries and bytes dropped. A user scope lives in one
// shard; dropping SharedScope touches all of them.
func (s *Store) DropScope(scope string) (entries int, bytes int64) {
	targets := []*shard{s.shardOf(scope, "")}
	if scope == SharedScope {
		targets = s.shards
	}
	prefix := issueKey(scope, "")
	for _, sh := range targets {
		sh.mu.Lock()
		m := sh.byScope[scope]
		victims := make([]*entry, 0, len(m))
		for _, en := range m {
			victims = append(victims, en)
		}
		for _, en := range victims {
			bytes += en.size
			s.removeLocked(sh, en)
		}
		entries += len(victims)
		for ik := range sh.issued {
			if len(ik) > len(prefix) && ik[:len(prefix)] == prefix {
				delete(sh.issued, ik)
			}
		}
		sh.mu.Unlock()
	}
	s.evDropped.Add(int64(entries))
	// The lower tier must not keep a dropped scope's entries alive (user
	// eviction is a privacy boundary); propagate after the shard locks are
	// released — tier drops touch the disk.
	if t := s.opts.Tier; t != nil {
		t.Drop(scope)
	}
	return entries, bytes
}

// SweepExpired pops every expired entry off each shard's expiry heap —
// O(expired · log n), no full scans — and prunes lapsed inflight claims.
// Returns entries removed.
func (s *Store) SweepExpired() int {
	now := s.opts.Now()
	removed := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for len(sh.heap) > 0 && !now.Before(sh.heap[0].payload.Expires) {
			en := sh.heap[0]
			s.removeLocked(sh, en)
			removed++
			s.evExpired.Add(1)
			sh.sigStat(en.payload.SigID).Expired++
		}
		for ik, dl := range sh.issued {
			if !now.Before(dl) {
				delete(sh.issued, ik)
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// StartSweeper runs SweepExpired every interval until Close. No-op for
// interval <= 0 or when already running.
func (s *Store) StartSweeper(interval time.Duration) {
	if interval <= 0 {
		return
	}
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if s.sweepStop != nil {
		return
	}
	stop := make(chan struct{})
	s.sweepStop = stop
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.SweepExpired()
			case <-stop:
				return
			}
		}
	}()
}

// Close stops the background sweeper. The store remains usable.
func (s *Store) Close() {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if s.sweepStop != nil {
		close(s.sweepStop)
		s.sweepStop = nil
	}
}

// ResidentBytes reports current charged occupancy.
func (s *Store) ResidentBytes() int64 { return s.resident.Load() }

// ScopeStats reports one scope's current entry count and bytes.
func (s *Store) ScopeStats(scope string) (entries int, bytes int64) {
	targets := []*shard{s.shardOf(scope, "")}
	if scope == SharedScope {
		targets = s.shards
	}
	for _, sh := range targets {
		sh.mu.Lock()
		entries += len(sh.byScope[scope])
		bytes += sh.scopeBytes[scope]
		sh.mu.Unlock()
	}
	return entries, bytes
}

// Metrics snapshots the store's counters and occupancy, merging the
// per-shard tallies.
func (s *Store) Metrics() Metrics {
	m := Metrics{
		ResidentBytes: s.resident.Load(),
		Evictions: EvictionCounts{
			Expired:      s.evExpired.Load(),
			Budget:       s.evBudget.Load(),
			ScopeBytes:   s.evScopeB.Load(),
			ScopeEntries: s.evScopeN.Load(),
			Replaced:     s.evReplaced.Load(),
			Dropped:      s.evDropped.Load(),
		},
		PerSig: map[string]SigStats{},
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		m.Hits += sh.hits
		m.Misses += sh.misses
		m.SharedHits += sh.sharedHits
		m.Puts += sh.puts
		for scope, ents := range sh.byScope {
			m.Entries += len(ents)
			if scope == SharedScope {
				m.SharedEntries += len(ents)
				m.SharedBytes += sh.scopeBytes[scope]
			}
		}
		for id, st := range sh.sigs {
			agg := m.PerSig[id]
			agg.Puts += st.Puts
			agg.Hits += st.Hits
			agg.Expired += st.Expired
			m.PerSig[id] = agg
		}
		sh.mu.Unlock()
	}
	return m
}
