package fuzz

// Go-native fuzz targets for the persistence decoders. The snapshot and
// disk-tier entry files are the only inputs the proxy reads back from disk
// after a crash, so they are exactly the bytes an adversarial filesystem (or
// a torn write) gets to choose. The decoders must never panic and must
// report every rejection as a typed, recoverable DecodeError.
//
// Run with: go test ./internal/fuzz -fuzz FuzzSnapshotDecode

import (
	"errors"
	"testing"
	"time"

	"appx/internal/httpmsg"
	"appx/internal/persist"
)

// seedSnapshot builds a small but fully populated snapshot envelope.
func seedSnapshot(t testing.TB) []byte {
	t.Helper()
	st := &persist.State{
		SavedAt:          time.Unix(1_700_000_000, 0),
		GraphFingerprint: "deadbeefcafef00d",
		Users: []persist.UserState{{
			Key:      "10.0.0.1",
			LastSeen: time.Unix(1_700_000_000, 0),
			Exemplars: map[string]persist.ExemplarState{
				"app:item#0": {
					URIWilds:   []string{"id"},
					FieldWilds: map[string][]string{"query": {"id"}},
					Present:    map[string]bool{"query:id": true},
					Headers:    []httpmsg.Field{{Key: "Accept", Value: "application/json"}},
				},
			},
		}},
		Samples: map[string]*httpmsg.Request{
			"app:item#0": {Method: "GET", Host: "h.example", Path: "/item"},
		},
		Breakers:   map[string]persist.BreakerState{"h.example": {State: "open", ConsecutiveFailures: 3, OpenForMs: 1500}},
		SigBackoff: map[string]persist.BackoffState{"app:item#0": {Consecutive: 2, RemainingMs: 900}},
	}
	data, err := persist.EncodeSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// seedEntry builds a valid disk-tier entry envelope.
func seedEntry(t testing.TB) []byte {
	t.Helper()
	rec := &persist.EntryRecord{
		Scope:   "__shared__",
		Key:     "GET h.example/item?id=1",
		SigID:   "app:item#0",
		Expires: time.Unix(1_700_003_600, 0),
		Resp:    &httpmsg.Response{Status: 200, Body: []byte(`{"item":"payload"}`)},
	}
	data, err := persist.EncodeEntry(rec)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// mutations returns systematic corruptions of a valid envelope: the torn and
// bit-flipped shapes the fault injector produces, as fuzz corpus seeds.
func mutations(data []byte) [][]byte {
	out := [][]byte{
		nil,
		{},
		data[:1],
		data[:len(data)/2],
		data[:len(data)-1],
		append(append([]byte{}, data...), 0xFF),
	}
	for _, off := range []int{0, 7, 9, 15, 25, len(data) - 1} {
		if off < 0 || off >= len(data) {
			continue
		}
		m := append([]byte{}, data...)
		m[off] ^= 0x40
		out = append(out, m)
	}
	return out
}

// FuzzSnapshotDecode: DecodeSnapshot on arbitrary bytes either returns a
// valid state or a typed DecodeError — never a panic, never an untyped
// error.
func FuzzSnapshotDecode(f *testing.F) {
	valid := seedSnapshot(f)
	f.Add(valid)
	for _, m := range mutations(valid) {
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := persist.DecodeSnapshot(data)
		switch {
		case err == nil:
			if st == nil {
				t.Fatal("nil state with nil error")
			}
		case !persist.IsCorrupt(err):
			var de *persist.DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("decode error is not a *persist.DecodeError: %T %v", err, err)
			}
		}
	})
}

// FuzzEntryDecode: same contract for the disk-tier entry decoder, which
// additionally must never return a record the tier would nil-deref on (a nil
// response).
func FuzzEntryDecode(f *testing.F) {
	valid := seedEntry(f)
	f.Add(valid)
	for _, m := range mutations(valid) {
		f.Add(m)
	}
	// An entry that json-decodes but carries no response must be rejected.
	f.Add(persist.Encode(persist.MagicEntry, []byte(`{"scope":"s","key":"k"}`)))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := persist.DecodeEntry(data)
		switch {
		case err == nil:
			if rec == nil || rec.Resp == nil {
				t.Fatalf("decoder accepted an unusable record: %+v", rec)
			}
		case !persist.IsCorrupt(err):
			var de *persist.DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("decode error is not a *persist.DecodeError: %T %v", err, err)
			}
		}
	})
}
