package fuzz

import (
	"testing"
	"time"

	"appx/internal/apps"
	"appx/internal/device"
	"appx/internal/httpmsg"
	"appx/internal/interp"
)

// inProcDevice builds a device whose transport goes straight to the app's
// origin handler.
func inProcDevice(t testing.TB, a *apps.App) (*device.Device, *[]*httpmsg.Transaction) {
	t.Helper()
	h := a.Handler(0)
	d, err := device.New(device.Config{
		APK:   a.APK,
		Scale: 1, // render delays skipped: no RenderDelay map entries used
		Transport: interp.TransportFunc(func(r *httpmsg.Request) (*httpmsg.Response, error) {
			return httpmsg.ServeViaHandler(h, r)
		}),
		Props: interp.DeviceProps{UserAgent: "Fuzz/1.0", AppVersion: a.APK.Manifest.Version},
	})
	if err != nil {
		t.Fatalf("device.New: %v", err)
	}
	var txns []*httpmsg.Transaction
	d.OnTransaction(func(txn *httpmsg.Transaction) { txns = append(txns, txn) })
	return d, &txns
}

func TestFuzzDrivesApp(t *testing.T) {
	a := apps.Wish()
	d, txns := inProcDevice(t, a)
	res, err := Run(d, a.APK, Options{Seed: 1, Events: 40})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Events < 40 {
		t.Fatalf("events = %d", res.Events)
	}
	if len(*txns) == 0 {
		t.Fatal("fuzzing generated no traffic")
	}
	if !res.ScreensSeen["feed"] {
		t.Fatalf("screens seen = %v", res.ScreensSeen)
	}
}

func TestFuzzDeterministic(t *testing.T) {
	a := apps.DoorDash()
	d1, tx1 := inProcDevice(t, a)
	d2, tx2 := inProcDevice(t, a)
	if _, err := Run(d1, a.APK, Options{Seed: 42, Events: 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(d2, a.APK, Options{Seed: 42, Events: 30}); err != nil {
		t.Fatal(err)
	}
	if len(*tx1) != len(*tx2) {
		t.Fatalf("same seed, different traffic: %d vs %d", len(*tx1), len(*tx2))
	}
	for i := range *tx1 {
		if (*tx1)[i].Request.URL() != (*tx2)[i].Request.URL() {
			t.Fatalf("txn %d differs: %s vs %s", i, (*tx1)[i].Request.URL(), (*tx2)[i].Request.URL())
		}
	}
}

func TestFuzzSeedsDiffer(t *testing.T) {
	a := apps.Wish()
	d1, tx1 := inProcDevice(t, a)
	d2, tx2 := inProcDevice(t, a)
	Run(d1, a.APK, Options{Seed: 1, Events: 30})
	Run(d2, a.APK, Options{Seed: 2, Events: 30})
	if len(*tx1) == len(*tx2) {
		same := true
		for i := range *tx1 {
			if (*tx1)[i].Request.URL() != (*tx2)[i].Request.URL() {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traffic")
		}
	}
}

func TestFuzzReachesDeepScreens(t *testing.T) {
	// Enough events must reach the DoorDash item screen (depth 3).
	a := apps.DoorDash()
	d, _ := inProcDevice(t, a)
	res, err := Run(d, a.APK, Options{Seed: 7, Events: 120})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ScreensSeen["item"] {
		t.Fatalf("fuzzer never reached the item screen: %v", res.ScreensSeen)
	}
}

func TestFuzzAllAppsNoErrors(t *testing.T) {
	for _, a := range apps.All() {
		d, _ := inProcDevice(t, a)
		res, err := Run(d, a.APK, Options{Seed: 3, Events: 60})
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if res.Errors > 0 {
			t.Fatalf("%s: %d fuzz errors", a.Name, res.Errors)
		}
	}
}

// deadEndAPK builds an app whose only navigation leads to a screen with no
// widgets, forcing the fuzzer's relaunch path.
func deadEndAPK(t testing.TB) (*apps.App, *device.Device) {
	t.Helper()
	a := apps.PurpleOcean()
	d, _ := inProcDevice(t, a)
	return a, d
}

func TestFuzzIntervalPacing(t *testing.T) {
	a := apps.Postmates()
	d, _ := inProcDevice(t, a)
	start := time.Now()
	res, err := Run(d, a.APK, Options{Seed: 5, Events: 6, Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 5 post-launch events at >= 20ms apart.
	if elapsed < 100*time.Millisecond {
		t.Fatalf("interval not honoured: %d events in %v", res.Events, elapsed)
	}
}

func TestFuzzRelaunchesFromDeadEnd(t *testing.T) {
	// The horoscope screen has only Back; the "reading" leaf also. Fuzzing
	// long enough must bounce through dead ends without error.
	a, d := deadEndAPK(t)
	res, err := Run(d, a.APK, Options{Seed: 9, Events: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if len(res.ScreensSeen) < 3 {
		t.Fatalf("screens = %v", res.ScreensSeen)
	}
}
