// Package fuzz implements the Monkey-style UI exerciser the paper uses in
// two roles: driving the app during the testing-and-verification phase
// (§4.3, "uses UI-fuzzing tools to generate random streams of user events")
// and as the "Auto UI fuzzing" baseline of Table 3 (random events at a fixed
// interval for a fixed duration).
package fuzz

import (
	"fmt"
	"math/rand"
	"time"

	"appx/internal/apk"
	"appx/internal/device"
)

// Driver abstracts the device surface the fuzzer pokes at.
type Driver interface {
	Launch() (device.Measure, error)
	Tap(widgetID string, index int) (device.Measure, error)
	Back() bool
	Screen() string
}

// Options configures a fuzzing session.
type Options struct {
	// Seed makes the event stream reproducible.
	Seed int64
	// Events is the number of UI events to inject (default 50).
	Events int
	// Interval is the pause between events (the paper uses 500 ms); zero
	// for as-fast-as-possible runs.
	Interval time.Duration
}

// Result summarizes a session.
type Result struct {
	// Events is the number of events injected (including the launch).
	Events int
	// Errors counts events whose handler failed; the app is relaunched
	// after an error, like Monkey restarting a crashed activity.
	Errors int
	// ScreensSeen is the set of screens rendered at least once.
	ScreensSeen map[string]bool
}

// Run drives the app with a random event stream.
func Run(d Driver, a *apk.APK, opts Options) (*Result, error) {
	if opts.Events <= 0 {
		opts.Events = 50
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &Result{ScreensSeen: map[string]bool{}}

	if _, err := d.Launch(); err != nil {
		return nil, fmt.Errorf("fuzz: launch: %w", err)
	}
	res.Events++
	res.ScreensSeen[d.Screen()] = true

	for res.Events < opts.Events {
		if opts.Interval > 0 {
			time.Sleep(opts.Interval)
		}
		screen := a.Screen(d.Screen())
		if screen == nil || len(screen.Widgets) == 0 {
			// Dead end (or pre-launch): relaunch, like Monkey returning to
			// the home activity.
			if _, err := d.Launch(); err != nil {
				res.Errors++
			}
			res.Events++
			res.ScreensSeen[d.Screen()] = true
			continue
		}
		w := screen.Widgets[rng.Intn(len(screen.Widgets))]
		res.Events++
		switch w.Kind {
		case apk.Back:
			d.Back()
		case apk.Button:
			if _, err := d.Tap(w.ID, 0); err != nil {
				res.Errors++
			}
		case apk.ListItem:
			if _, err := d.Tap(w.ID, rng.Intn(w.MaxIndex)); err != nil {
				res.Errors++
			}
		}
		res.ScreensSeen[d.Screen()] = true
	}
	return res, nil
}
