// Package apk defines the app container format — this reproduction's stand-in
// for an Android .apk.
//
// A package bundles three things: a manifest (identity and launch entry
// point), the compiled AIR program (what the static analyzer and the device
// runtime consume), and a UI model describing the app's screens and their
// interactive widgets. Each widget is bound to an AIR handler method, which
// is how user events (from the emulated device, the trace replayer, or the
// Monkey-style fuzzer) enter the program — the equivalent of Android's view
// event dispatch.
package apk

import (
	"encoding/json"
	"fmt"
	"sort"

	"appx/internal/air"
)

// WidgetKind tags how a widget is activated.
type WidgetKind string

const (
	// Button is tapped without arguments.
	Button WidgetKind = "button"
	// ListItem is tapped with a position argument (the index string is
	// passed to the handler as its first parameter).
	ListItem WidgetKind = "list-item"
	// Back navigates to the previous screen (no handler).
	Back WidgetKind = "back"
)

// Widget is one interactive element on a screen.
type Widget struct {
	ID   string     `json:"id"`
	Kind WidgetKind `json:"kind"`
	// Handler is the qualified AIR method invoked on activation. Button
	// handlers take zero parameters, ListItem handlers take one (the
	// position). Empty for Back.
	Handler string `json:"handler,omitempty"`
	// MaxIndex bounds the position argument for list items (exclusive).
	MaxIndex int `json:"maxIndex,omitempty"`
	// Target names the screen the widget navigates to, when known; the
	// device uses the app's ui.render calls as ground truth, this is
	// metadata for the fuzzer/trace generator.
	Target string `json:"target,omitempty"`
	// Main marks the widget that triggers the app's main interaction
	// (Table 1 of the paper).
	Main bool `json:"main,omitempty"`
}

// Screen is one UI page.
type Screen struct {
	Name    string   `json:"name"`
	Widgets []Widget `json:"widgets"`
}

// Manifest identifies the app.
type Manifest struct {
	Package string `json:"package"`
	Label   string `json:"label"`
	Version string `json:"version"`
	// Category mirrors the Google Play category (Table 1).
	Category string `json:"category"`
	// LaunchHandler is the AIR method run when the app starts (the "main
	// activity onCreate").
	LaunchHandler string `json:"launchHandler"`
	// LaunchScreen is the screen rendered after launch.
	LaunchScreen string `json:"launchScreen"`
	// MainInteraction describes the representative interaction evaluated in
	// the paper (e.g. "Loads an item detail").
	MainInteraction string `json:"mainInteraction"`
	// ServiceEntries are non-UI entry points: broadcast receivers, push
	// handlers, and background jobs the system invokes without any user
	// event. Static analysis covers them; UI fuzzing cannot trigger them —
	// the paper's §6.1 observation that "some requests are not triggered by
	// user events (e.g., push notification)".
	ServiceEntries []string `json:"serviceEntries,omitempty"`
}

// APK is a packaged application.
type APK struct {
	Manifest Manifest     `json:"manifest"`
	Screens  []Screen     `json:"screens"`
	Program  *air.Program `json:"program"`
}

// Screen returns the named screen, or nil.
func (a *APK) Screen(name string) *Screen {
	for i := range a.Screens {
		if a.Screens[i].Name == name {
			return &a.Screens[i]
		}
	}
	return nil
}

// Entries returns every analysis entry point: the launch handler plus all
// widget handlers, deduplicated, in deterministic order.
func (a *APK) Entries() []string {
	set := map[string]bool{}
	if a.Manifest.LaunchHandler != "" {
		set[a.Manifest.LaunchHandler] = true
	}
	for _, e := range a.Manifest.ServiceEntries {
		set[e] = true
	}
	for _, s := range a.Screens {
		for _, w := range s.Widgets {
			if w.Handler != "" {
				set[w.Handler] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// MainWidget returns the screen and widget of the app's main interaction.
func (a *APK) MainWidget() (string, *Widget) {
	for si := range a.Screens {
		for wi := range a.Screens[si].Widgets {
			if a.Screens[si].Widgets[wi].Main {
				return a.Screens[si].Name, &a.Screens[si].Widgets[wi]
			}
		}
	}
	return "", nil
}

// Validate checks internal consistency: the program verifies, every handler
// exists with the arity its widget kind implies, and the launch handler is
// present.
func (a *APK) Validate() error {
	if a.Program == nil {
		return fmt.Errorf("apk %s: no program", a.Manifest.Package)
	}
	if err := air.Verify(a.Program); err != nil {
		return fmt.Errorf("apk %s: %w", a.Manifest.Package, err)
	}
	check := func(handler string, params int, where string) error {
		m := a.Program.Method(handler)
		if m == nil {
			return fmt.Errorf("apk %s: %s: unknown handler %q", a.Manifest.Package, where, handler)
		}
		if m.NumParams != params {
			return fmt.Errorf("apk %s: %s: handler %q has %d params, want %d",
				a.Manifest.Package, where, handler, m.NumParams, params)
		}
		return nil
	}
	if a.Manifest.LaunchHandler == "" {
		return fmt.Errorf("apk %s: no launch handler", a.Manifest.Package)
	}
	if err := check(a.Manifest.LaunchHandler, 0, "launch"); err != nil {
		return err
	}
	for _, e := range a.Manifest.ServiceEntries {
		if err := check(e, 0, "service entry"); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for _, s := range a.Screens {
		if seen[s.Name] {
			return fmt.Errorf("apk %s: duplicate screen %q", a.Manifest.Package, s.Name)
		}
		seen[s.Name] = true
		for _, w := range s.Widgets {
			switch w.Kind {
			case Button:
				if err := check(w.Handler, 0, s.Name+"/"+w.ID); err != nil {
					return err
				}
			case ListItem:
				if err := check(w.Handler, 1, s.Name+"/"+w.ID); err != nil {
					return err
				}
				if w.MaxIndex <= 0 {
					return fmt.Errorf("apk %s: %s/%s: list item needs MaxIndex > 0", a.Manifest.Package, s.Name, w.ID)
				}
			case Back:
				if w.Handler != "" {
					return fmt.Errorf("apk %s: %s/%s: back widget must not have a handler", a.Manifest.Package, s.Name, w.ID)
				}
			default:
				return fmt.Errorf("apk %s: %s/%s: unknown widget kind %q", a.Manifest.Package, s.Name, w.ID, w.Kind)
			}
		}
	}
	return nil
}

// Marshal serializes the package (our ".apk" file format).
func (a *APK) Marshal() ([]byte, error) {
	return json.MarshalIndent(a, "", " ")
}

// Unmarshal parses a package and validates it.
func Unmarshal(b []byte) (*APK, error) {
	var a APK
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	if a.Program != nil {
		a.Program.ReindexMethods()
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}
