package apk

import (
	"reflect"
	"testing"

	"appx/internal/air"
)

func sampleAPK(t testing.TB) *APK {
	t.Helper()
	pb := air.NewProgramBuilder()
	c := pb.Class("Main", air.KindActivity)
	launch := c.Method("onLaunch", 0)
	launch.CallAPI(air.APIUIRender, launch.ConstStr("feed"))
	launch.Done()
	sel := c.Method("onSelect", 1)
	sel.CallAPI(air.APIUIRender, sel.ConcatStr(sel.Param(0), "-detail"))
	sel.Done()
	refresh := c.Method("onRefresh", 0)
	refresh.CallAPI(air.APIUIRender, refresh.ConstStr("feed"))
	refresh.Done()

	return &APK{
		Manifest: Manifest{
			Package:         "com.example.shop",
			Label:           "Shop",
			Version:         "1.0",
			Category:        "Shopping",
			LaunchHandler:   "Main.onLaunch",
			LaunchScreen:    "feed",
			MainInteraction: "Loads an item detail",
		},
		Screens: []Screen{
			{Name: "feed", Widgets: []Widget{
				{ID: "item", Kind: ListItem, Handler: "Main.onSelect", MaxIndex: 30, Target: "detail", Main: true},
				{ID: "refresh", Kind: Button, Handler: "Main.onRefresh"},
			}},
			{Name: "detail", Widgets: []Widget{
				{ID: "back", Kind: Back},
			}},
		},
		Program: pb.MustBuild(),
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleAPK(t).Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestEntries(t *testing.T) {
	got := sampleAPK(t).Entries()
	want := []string{"Main.onLaunch", "Main.onRefresh", "Main.onSelect"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Entries = %v, want %v", got, want)
	}
}

func TestMainWidget(t *testing.T) {
	a := sampleAPK(t)
	screen, w := a.MainWidget()
	if screen != "feed" || w == nil || w.ID != "item" {
		t.Fatalf("MainWidget = %q, %+v", screen, w)
	}
}

func TestScreenLookup(t *testing.T) {
	a := sampleAPK(t)
	if a.Screen("feed") == nil || a.Screen("nope") != nil {
		t.Fatal("Screen lookup wrong")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a := sampleAPK(t)
	b, err := a.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	a2, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(a2.Manifest, a.Manifest) {
		t.Fatalf("manifest changed: %+v", a2.Manifest)
	}
	if !reflect.DeepEqual(a2.Entries(), a.Entries()) {
		t.Fatal("entries changed")
	}
	// The round-tripped program must still resolve methods.
	if a2.Program.Method("Main.onSelect") == nil {
		t.Fatal("program index lost")
	}
}

func TestValidateRejectsBadHandler(t *testing.T) {
	a := sampleAPK(t)
	a.Screens[0].Widgets[1].Handler = "Main.missing"
	if err := a.Validate(); err == nil {
		t.Fatal("unknown handler accepted")
	}
}

func TestValidateRejectsWrongArity(t *testing.T) {
	a := sampleAPK(t)
	// Button bound to a 1-param handler.
	a.Screens[0].Widgets[1].Handler = "Main.onSelect"
	if err := a.Validate(); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestValidateRejectsListItemWithoutMaxIndex(t *testing.T) {
	a := sampleAPK(t)
	a.Screens[0].Widgets[0].MaxIndex = 0
	if err := a.Validate(); err == nil {
		t.Fatal("MaxIndex=0 accepted")
	}
}

func TestValidateRejectsDuplicateScreens(t *testing.T) {
	a := sampleAPK(t)
	a.Screens = append(a.Screens, Screen{Name: "feed"})
	if err := a.Validate(); err == nil {
		t.Fatal("duplicate screen accepted")
	}
}

func TestValidateRejectsBackWithHandler(t *testing.T) {
	a := sampleAPK(t)
	a.Screens[1].Widgets[0].Handler = "Main.onRefresh"
	if err := a.Validate(); err == nil {
		t.Fatal("back with handler accepted")
	}
}

func TestValidateRejectsMissingLaunch(t *testing.T) {
	a := sampleAPK(t)
	a.Manifest.LaunchHandler = ""
	if err := a.Validate(); err == nil {
		t.Fatal("missing launch handler accepted")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Unmarshal([]byte(`{"manifest":{}}`)); err == nil {
		t.Fatal("empty apk accepted")
	}
}
