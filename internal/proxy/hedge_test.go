package proxy

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"appx/internal/cache"
	"appx/internal/cluster"
	"appx/internal/obs"
	"appx/internal/obs/adminv1"
)

// TestHedgeDelayAdaptive: with enough observed fills, a peer's p90 replaces
// the static delay; a cold peer keeps the static one; the floor holds.
func TestHedgeDelayAdaptive(t *testing.T) {
	reg := obs.NewRegistry()
	h := newHedgeState(Options{}, reg, []string{"warm", "cold"})
	if d := h.delayFor("warm"); d != defaultHedgeDelay {
		t.Fatalf("cold-start delay = %v, want static %v", d, defaultHedgeDelay)
	}
	for i := 0; i < 2*hedgeMinSamples; i++ {
		h.observe("warm", 8*time.Millisecond)
	}
	d := h.delayFor("warm")
	if d >= defaultHedgeDelay {
		t.Fatalf("adaptive delay = %v, want below static %v", d, defaultHedgeDelay)
	}
	if d < hedgeDelayFloor {
		t.Fatalf("adaptive delay = %v broke the %v floor", d, hedgeDelayFloor)
	}
	if got := h.delayFor("cold"); got != defaultHedgeDelay {
		t.Fatalf("unobserved peer delay = %v, want static", got)
	}

	// Microsecond-fast fills must floor, not hedge at loopback speed.
	fast := newHedgeState(Options{}, obs.NewRegistry(), []string{"p"})
	for i := 0; i < 2*hedgeMinSamples; i++ {
		fast.observe("p", 100*time.Microsecond)
	}
	if d := fast.delayFor("p"); d < hedgeDelayFloor {
		t.Fatalf("floored delay = %v, want >= %v", d, hedgeDelayFloor)
	}
}

// TestHedgeRateCap: the token bucket admits burst-many hedges, then refuses
// until real time refills it.
func TestHedgeRateCap(t *testing.T) {
	h := newHedgeState(Options{HedgeRateCap: 1}, obs.NewRegistry(), nil)
	if !h.allow() {
		t.Fatal("first hedge refused with a full bucket")
	}
	if h.allow() {
		t.Fatal("second immediate hedge admitted past cap 1/s")
	}
}

// fakePeer is a minimal cluster sibling: answers health (so probes keep it
// alive) and serves one canned shared-tier entry, optionally after a delay.
func fakePeer(t *testing.T, delay time.Duration, sigID string) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case adminv1.PathHealth:
			w.Write([]byte(`{"status":"ok"}`))
		case adminv1.PathClusterEntry:
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-r.Context().Done():
					return
				}
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"sigId":%q,"status":200,"body":"aGk=","expiresInMs":60000}`, sigID)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// findKeyOrdered searches for a cache key whose fill order visits slow
// before fast on this proxy's ring.
func findKeyOrdered(p *Proxy, slow, fast string) string {
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("GET h.example/item?id=%d", i)
		peers := p.cluster.c.FillPeers(cache.IssueKey(cache.SharedScope, key))
		if len(peers) >= 2 && peers[0] == slow && peers[1] == fast {
			return key
		}
	}
	return ""
}

// TestHedgedPeekBeatsSlowPeer: the primary peek stalls past the hedge
// delay, the hedge to the next successor answers, and the fill returns the
// hedge's entry well before the slow peer would have.
func TestHedgedPeekBeatsSlowPeer(t *testing.T) {
	slow := fakePeer(t, 500*time.Millisecond, "t:item#0")
	fast := fakePeer(t, 0, "t:item#0")
	p := New(Options{
		Graph:      sharedGraph(),
		Upstream:   nil,
		HedgeDelay: 20 * time.Millisecond,
		Cluster: cluster.Config{
			Self:          "127.0.0.1:1", // never dialed: fills only peek peers
			Peers:         []string{slow, fast},
			ProbeInterval: time.Hour, // no background probes; optimistic aliveness
		},
	})
	t.Cleanup(p.Close)
	key := findKeyOrdered(p, slow, fast)
	if key == "" {
		t.Skip("no key ordered slow-first on this ring")
	}
	start := time.Now()
	e := p.clusterPeerFill(context.Background(), key, false, reqBudget{})
	elapsed := time.Since(start)
	if e == nil {
		t.Fatal("hedged fill returned no entry")
	}
	if elapsed > 300*time.Millisecond {
		t.Fatalf("fill took %v; hedge should beat the 500ms slow peer", elapsed)
	}
	st := p.ClusterStats()
	if st.Hedge.Launched == 0 || st.Hedge.Wins == 0 {
		t.Fatalf("hedge counters = %+v, want launched and won", st.Hedge)
	}
}

// TestHedgingDisabledWalksSequentially: with DisableHedging the fill waits
// out the slow primary before trying the next peer.
func TestHedgingDisabledWalksSequentially(t *testing.T) {
	slow := fakePeer(t, 250*time.Millisecond, "t:item#0")
	fast := fakePeer(t, 0, "t:item#0")
	p := New(Options{
		Graph:          sharedGraph(),
		DisableHedging: true,
		Cluster: cluster.Config{
			Self:          "127.0.0.1:1",
			Peers:         []string{slow, fast},
			ProbeInterval: time.Hour,
		},
	})
	t.Cleanup(p.Close)
	key := findKeyOrdered(p, slow, fast)
	if key == "" {
		t.Skip("no key ordered slow-first on this ring")
	}
	start := time.Now()
	e := p.clusterPeerFill(context.Background(), key, false, reqBudget{})
	elapsed := time.Since(start)
	if e == nil {
		t.Fatal("sequential fill returned no entry")
	}
	if elapsed < 200*time.Millisecond {
		t.Fatalf("fill took %v; without hedging it must wait out the slow primary", elapsed)
	}
	if st := p.ClusterStats(); st.Hedge.Launched != 0 {
		t.Fatalf("hedges launched with hedging disabled: %+v", st.Hedge)
	}
}

// TestPeerFillBudgetExhausted: an exhausted budget skips the peer race
// entirely and counts the skip.
func TestPeerFillBudgetExhausted(t *testing.T) {
	fast := fakePeer(t, 0, "t:item#0")
	p := New(Options{
		Graph: sharedGraph(),
		Cluster: cluster.Config{
			Self:          "127.0.0.1:1",
			Peers:         []string{fast},
			ProbeInterval: time.Hour,
		},
	})
	t.Cleanup(p.Close)
	spent := reqBudget{deadline: p.opts.Now().Add(-time.Second)}
	if e := p.clusterPeerFill(context.Background(), "k", false, spent); e != nil {
		t.Fatal("exhausted budget still filled")
	}
	if p.budget.exhausted.Load() == 0 {
		t.Fatal("exhausted skip not counted")
	}
}
