package proxy

// Tests for the pluggable prefetch-policy layer: the static policy must be
// differentially identical to the pre-policy inline chain logic (same
// candidates prefetched, same order), dropped candidates must be counted by
// reason, and the markov model must survive the persistence ladder.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"appx/internal/httpmsg"
	"appx/internal/policy"
	"appx/internal/sig"
)

// starGraph builds home → K branches, inserting the dependency edges in
// the given branch order (the order the pre-policy fan-out walked).
func starGraph(order []int) *sig.Graph {
	g := sig.NewGraph("star")
	home := &sig.Signature{ID: "st:home#0", Method: "GET", URI: sig.Literal("h.example/home")}
	g.Add(home)
	sigs := make([]*sig.Signature, len(order))
	for _, b := range order {
		s := &sig.Signature{ID: fmt.Sprintf("st:b%d#0", b), Method: "GET",
			URI:   sig.Literal(fmt.Sprintf("h.example/b%d", b)),
			Query: []sig.Field{{Key: "tok", Value: sig.DepValue(home.ID, "tok")}}}
		g.Add(s)
		g.AddDep(sig.Dependency{PredID: home.ID, SuccID: s.ID, RespPath: "tok",
			Loc: sig.FieldLoc{Where: "query", Key: "tok"}})
		sigs[b] = s
	}
	return g
}

// starUpstream serves the star app and records the branch paths it is
// asked for, in arrival order.
func starUpstream() (UpstreamFunc, func() []string, func()) {
	var mu sync.Mutex
	var fetched []string
	up := UpstreamFunc(func(_ context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Path == "/home" {
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   []byte(`{"tok":"v1"}`)}, nil
		}
		mu.Lock()
		fetched = append(fetched, r.Path)
		mu.Unlock()
		return &httpmsg.Response{Status: 200, Body: []byte("branch")}, nil
	})
	list := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), fetched...)
	}
	reset := func() {
		mu.Lock()
		defer mu.Unlock()
		fetched = nil
	}
	return up, list, reset
}

// TestStaticChainOrderDifferential pins the refactored fan-out to the
// pre-policy behaviour across randomized star graphs: with the static
// policy, the prefetch fetches that reach the origin are exactly the
// branches with exemplars, in dependency-insertion order — and branches
// without exemplars are counted under the no_exemplar skip reason.
func TestStaticChainOrderDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 25; iter++ {
		k := 1 + rng.Intn(8)
		order := rng.Perm(k)
		g := starGraph(order)
		up, fetched, reset := starUpstream()

		var nowNano atomic.Int64
		base := time.Unix(1_700_000_000, 0)
		nowNano.Store(base.UnixNano())
		p := New(Options{Graph: g, Upstream: up, Workers: 1,
			Now: func() time.Time { return time.Unix(0, nowNano.Load()) }})

		// Teach exemplars for a random subset of branches (always at least
		// one) via live visits.
		scanned := map[int]bool{}
		for b := 0; b < k; b++ {
			if b == order[0] || rng.Intn(4) > 0 {
				scanned[b] = true
			}
		}
		tr := &proxyTransport{p: p, user: "9.9.9.9"}
		for b := 0; b < k; b++ {
			if !scanned[b] {
				continue
			}
			if _, err := tr.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example",
				Path:  fmt.Sprintf("/b%d", b),
				Query: []httpmsg.Field{{Key: "tok", Value: "v1"}}}); err != nil {
				t.Fatal(err)
			}
		}
		p.Drain()

		// Let the scan's cache entries expire so the fan-out below must
		// issue real prefetch fetches, then open home.
		nowNano.Store(base.Add(20 * time.Minute).UnixNano())
		reset()
		if _, err := tr.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example",
			Path: "/home"}); err != nil {
			t.Fatal(err)
		}
		p.Drain()

		// The pre-policy fan-out walked g.Successors(home) in index order;
		// the static policy must reproduce exactly that walk.
		var want []string
		for _, succID := range g.Successors("st:home#0") {
			var b int
			if _, err := fmt.Sscanf(succID, "st:b%d#0", &b); err != nil {
				t.Fatalf("unexpected successor %q", succID)
			}
			if scanned[b] {
				want = append(want, fmt.Sprintf("/b%d", b))
			}
		}
		if got := fetched(); !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d (k=%d, order=%v, scanned=%v): prefetch order %v, want %v",
				iter, k, order, scanned, got, want)
		}
		p.Close()
	}
}

// TestNoExemplarSkipCounted: a candidate whose exemplar cannot resolve
// every run-time value (here: a field depending on a different
// predecessor) used to vanish silently from the fan-out; it must be
// counted under appx_prefetch_skipped_total{reason="no_exemplar"}.
func TestNoExemplarSkipCounted(t *testing.T) {
	g := sig.NewGraph("mix")
	home := &sig.Signature{ID: "mx:home#0", Method: "GET", URI: sig.Literal("h.example/home")}
	other := &sig.Signature{ID: "mx:other#0", Method: "GET", URI: sig.Literal("h.example/other")}
	mix := &sig.Signature{ID: "mx:mix#0", Method: "GET", URI: sig.Literal("h.example/mix"),
		Query: []sig.Field{
			{Key: "a", Value: sig.DepValue(home.ID, "tok")},
			{Key: "b", Value: sig.DepValue(other.ID, "key")},
		}}
	g.Add(home)
	g.Add(other)
	g.Add(mix)
	g.AddDep(sig.Dependency{PredID: home.ID, SuccID: mix.ID, RespPath: "tok",
		Loc: sig.FieldLoc{Where: "query", Key: "a"}})
	g.AddDep(sig.Dependency{PredID: other.ID, SuccID: mix.ID, RespPath: "key",
		Loc: sig.FieldLoc{Where: "query", Key: "b"}})

	up := UpstreamFunc(func(_ context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		body := []byte(`{}`)
		switch r.Path {
		case "/home":
			body = []byte(`{"tok":"v1"}`)
		case "/other":
			body = []byte(`{"key":"k1"}`)
		}
		return &httpmsg.Response{Status: 200,
			Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
			Body:   body}, nil
	})
	p := New(Options{Graph: g, Upstream: up, Workers: 1})
	defer p.Close()

	tr := &proxyTransport{p: p, user: "8.8.8.8"}
	// Teach the mix exemplar from a live request that omits "b": the
	// exemplar then has no captured wild for the mx:other#0 dependency, so
	// when the fan-out from home resolves "a" from the combo but falls back
	// to exemplar wilds for "b", materialize fails and the skip must be
	// attributed instead of vanishing.
	if _, err := tr.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/mix",
		Query: []httpmsg.Field{{Key: "a", Value: "v1"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example",
		Path: "/home"}); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	if got := p.skips.noExemplar.Load(); got == 0 {
		t.Fatal("materialize failure not counted under no_exemplar")
	}
	if got := p.statsV1().Policy.NoExemplarSkips; got == 0 {
		t.Fatalf("stats policy block NoExemplarSkips = %d", got)
	}
}

// TestMarkovPersistRoundTrip: the markov tables ride the snapshot ladder —
// a warm restart restores them byte-identically, and a proxy configured
// with the static policy ignores the snapshot's policy block.
func TestMarkovPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := starGraph([]int{0, 1, 2})
	up, _, _ := starUpstream()
	now := time.Unix(1_700_000_000, 0)
	opts := func() Options {
		return Options{Graph: g, Upstream: up, StateDir: dir,
			PrefetchPolicy: "markov",
			Now:            func() time.Time { return now }}
	}

	p1 := New(opts())
	for i := 0; i < 5; i++ {
		at := now.Add(time.Duration(i) * 10 * time.Second)
		p1.markovPol.Observe("u1", "st:home#0", at)
		p1.markovPol.Observe("u1", "st:b1#0", at.Add(2*time.Second))
	}
	want := p1.markovPol.Export()
	if len(want.Users) == 0 || len(want.Global) == 0 {
		t.Fatalf("model empty before snapshot: %+v", want)
	}
	if err := p1.SnapshotNow(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	p1.Close()

	p2 := New(opts())
	defer p2.Close()
	if got := p2.RestoreOutcome(); got != RestoreWarm {
		t.Fatalf("restore outcome = %q (%s)", got, p2.RestoreDetail())
	}
	// Compare as JSON: the snapshot round trip normalizes time.Time
	// locations, which DeepEqual would flag despite equal instants.
	gotJSON, _ := json.Marshal(p2.markovPol.Export())
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("restored markov state differs:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	// The restored history must rank: the favourite branch stays, the
	// never-taken ones prune.
	ds := p2.markovPol.Rank("u1", "st:home#0", []policy.Candidate{
		{SigID: "st:b0#0", Index: 0, Prior: 1},
		{SigID: "st:b1#0", Index: 1, Prior: 1},
		{SigID: "st:b2#0", Index: 2, Prior: 1},
	})
	if ds[0].SigID != "st:b1#0" || !ds[0].Keep {
		t.Fatalf("restored model lost its favourite: %+v", ds)
	}

	// A static-policy proxy on the same state directory restores warm but
	// has no model to fill — the policy block is simply ignored.
	sOpts := opts()
	sOpts.PrefetchPolicy = "static"
	p3 := New(sOpts)
	defer p3.Close()
	if p3.markovPol != nil {
		t.Fatal("static proxy grew a markov model from the snapshot")
	}
	if got := p3.statsV1().Policy; got.Configured != "static" || got.Active != "static" {
		t.Fatalf("policy stats block = %+v", got)
	}

	// And the markov proxy's stats block reports the restored model.
	pol := p2.statsV1().Policy
	if pol.Configured != "markov" || pol.Active != "markov" || pol.Users != 1 || pol.Transitions == 0 {
		t.Fatalf("markov policy stats block = %+v", pol)
	}
}
