package proxy

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"appx/internal/cache"
	"appx/internal/cluster"
	"appx/internal/httpmsg"
	"appx/internal/obs"
	"appx/internal/obs/adminv1"
)

// Cluster headers. Both are proxy addressing metadata and are stripped
// before canonical keying, like the user header.
const (
	// clusterHopHeader marks a request already relayed once. The receiver
	// serves it locally regardless of ring ownership — a one-hop rule, so
	// two instances with momentarily divergent membership views can never
	// bounce a request A→B→A.
	clusterHopHeader = "X-Appx-Cluster-Hop"
	// clusterForwardedHeader is set on relayed responses with the owner's
	// address, letting load drivers attribute forwarded-request latency.
	clusterForwardedHeader = "X-Appx-Cluster-Forwarded"
)

// clusterFillClaimWindow bounds how long a foreground peer-fill attempt
// holds the shared-tier singleflight claim; the claim is released on the
// fill's Put or CancelIssue long before this, so the window only matters if
// the filling goroutine dies.
const clusterFillClaimWindow = 10 * time.Second

// clusterState is the proxy side of cluster mode: the membership/routing
// engine plus this instance's forwarding and peer-fill counters.
type clusterState struct {
	c *cluster.Cluster

	// hedge is the hedged-peer-read policy (hedge.go).
	hedge *hedgeState

	forwarded        atomic.Int64
	forwardFallbacks atomic.Int64
	receivedForwards atomic.Int64
	fillAttempts     atomic.Int64
	fillHits         atomic.Int64
	fillMisses       atomic.Int64
	fillErrors       atomic.Int64
	rebalances       atomic.Int64
	scopesDropped    atomic.Int64
	// forwardLoops counts owner responses that arrived already marked
	// forwarded: the owner re-relayed a hopped request, which the one-hop
	// rule forbids. The chaos oracle asserts this stays zero fleet-wide.
	forwardLoops atomic.Int64
}

// initCluster wires cluster mode into a new proxy: membership probing,
// rebalance-on-change, and the appx_cluster_* metric bridges.
func (p *Proxy) initCluster(reg *obs.Registry) {
	st := &clusterState{c: cluster.New(p.opts.Cluster)}
	// The hedge state registers one histogram per configured peer; peers are
	// fixed after New, so this is the one place registration is safe.
	st.hedge = newHedgeState(p.opts, reg, st.c.Peers())
	p.cluster = st
	st.c.OnChange(p.rebalanceCluster)
	p.registerClusterBridges(reg)
	st.c.Start()
}

func (p *Proxy) registerClusterBridges(reg *obs.Registry) {
	st := p.cluster
	reg.CounterFunc("appx_cluster_forwarded_total", "Requests relayed to their owner instance.",
		st.forwarded.Load)
	reg.CounterFunc("appx_cluster_forward_fallbacks_total", "Relays that fell back to local serving.",
		st.forwardFallbacks.Load)
	reg.CounterFunc("appx_cluster_received_forwards_total", "Requests received with the cluster hop header.",
		st.receivedForwards.Load)
	reg.CounterFunc(`appx_cluster_peer_fill_total{result="hit"}`, "Peer-fill outcomes.",
		st.fillHits.Load)
	reg.CounterFunc(`appx_cluster_peer_fill_total{result="miss"}`, "Peer-fill outcomes.",
		st.fillMisses.Load)
	reg.CounterFunc(`appx_cluster_peer_fill_total{result="error"}`, "Peer-fill outcomes.",
		st.fillErrors.Load)
	reg.CounterFunc("appx_cluster_rebalances_total", "Membership changes that triggered a rebalance.",
		st.rebalances.Load)
	reg.CounterFunc("appx_cluster_scopes_dropped_total", "User scopes dropped because their hash arc moved.",
		st.scopesDropped.Load)
	reg.GaugeFunc("appx_cluster_members", "Instances currently in the ring (self included).",
		func() float64 { return float64(len(st.c.Members())) })
	reg.CounterFunc("appx_cluster_forward_loops_total", "Relayed responses already marked forwarded (one-hop violations).",
		st.forwardLoops.Load)
	reg.CounterFunc("appx_cluster_hedges_launched_total", "Hedged peer-read attempts launched.",
		st.hedge.launched.Load)
	reg.CounterFunc("appx_cluster_hedges_won_total", "Hedged attempts that won the race.",
		st.hedge.wins.Load)
	reg.CounterFunc("appx_cluster_hedges_lost_total", "Hedged attempts the primary beat.",
		st.hedge.losses.Load)
	reg.CounterFunc("appx_cluster_hedges_suppressed_total", "Hedges withheld by the rate cap or governor.",
		st.hedge.suppressed.Load)
}

// rebalanceCluster runs after every ring rebuild (on the probe goroutine):
// user scopes whose hash arc moved to another instance are dropped — their
// new owner re-learns or warm-starts them — and everything else is left
// untouched. Foreground requests never notice: a request for a dropped
// user simply forwards to the new owner on its next arrival.
func (p *Proxy) rebalanceCluster() {
	st := p.cluster
	var moved []string
	p.mu.Lock()
	for k := range p.users {
		if !st.c.Owns(k) {
			delete(p.users, k)
			moved = append(moved, k)
		}
	}
	p.mu.Unlock()
	// DropScope takes the store's own locks; keep it outside p.mu.
	for _, k := range moved {
		p.store.DropScope(k)
	}
	st.scopesDropped.Add(int64(len(moved)))
	st.rebalances.Add(1)
}

// clusterRelay proxies req to the owner instance at addr and streams the
// answer back. Returns false — and counts a fallback — when the request
// should instead be served locally: peer breaker open, transport failure,
// or the owner itself shedding (503 + Retry-After means "alive but
// refusing"; relaying that would fail a foreground request the local
// instance can still serve). Transport failures feed the peer's breaker;
// shed responses do not.
func (p *Proxy) clusterRelay(ctx context.Context, bgt reqBudget, sp *obs.Span, w http.ResponseWriter, req *httpmsg.Request, userKey, addr string) bool {
	st := p.cluster
	if !st.c.PeerReady(addr) {
		st.forwardFallbacks.Add(1)
		return false
	}
	now := p.opts.Now()
	// An exhausted budget cannot afford a network hop; whatever latency the
	// local path costs is the best remaining option.
	if bgt.exhausted(now) {
		p.budget.exhausted.Add(1)
		st.forwardFallbacks.Add(1)
		return false
	}
	// The clone carries the addressing metadata the owner needs: the user
	// key (the relay's UserKey extraction already consumed it), the hop
	// marker, and the remaining budget — clamped at the receiver, so hops
	// only ever shrink it. The local req stays clean for the fallback path.
	fwd := req.Clone()
	fwd.SetHeader(userHeader, userKey)
	fwd.SetHeader(clusterHopHeader, st.c.Self())
	if bgt.active() {
		fwd.SetHeader(budgetHeader, bgt.headerValue(now))
	}
	rctx, rcancel := bgt.bound(ctx, now, 0)
	defer rcancel()
	start := now
	resp, err := st.c.Forward(rctx, addr, fwd)
	if err != nil {
		st.c.ReportForward(addr, false)
		st.forwardFallbacks.Add(1)
		return false
	}
	if resp.Status == http.StatusServiceUnavailable {
		if _, shedding := resp.GetHeader("Retry-After"); shedding {
			// The owner's body streams now: finish it so the pooled peer
			// connection is reusable before serving locally.
			if derr := resp.DrainAndClose(); derr != nil {
				p.streamStats.drainErrors.Add(1)
			}
			st.forwardFallbacks.Add(1)
			return false
		}
	}
	// An owner answering a hopped request must serve locally; a response
	// already marked forwarded means it relayed again. Count the violation
	// and strip the stale marker so the client sees one coherent hop.
	if _, looped := resp.GetHeader(clusterForwardedHeader); looped {
		st.forwardLoops.Add(1)
		resp.DeleteHeader(clusterForwardedHeader)
	}
	st.c.ReportForward(addr, true)
	st.forwarded.Add(1)
	w.Header().Set(clusterForwardedHeader, addr)
	resp.WriteTo(w)
	sp.EndStage(obs.StageWrite)
	sp.SetOutcome(obs.OutcomeForwarded)
	p.observeClient(p.opts.Now().Sub(start))
	return true
}

// clusterPeerFill tries to satisfy a shared-tier miss from ring siblings
// before the origin. The fleet-wide flight key IssueKey(SharedScope, key)
// rides the cache's inflight-dedup machinery: exactly one local goroutine
// peeks peers for a key at a time, and because every instance walks the
// same owner-first sibling order, concurrent missing instances converge on
// the instance that fetched (or is fetching) the entry.
//
// claimed says the caller already holds the TryIssue claim (the prefetch
// path); otherwise the fill claims it and releases it on a miss. A peer hit
// is Put into the local shared tier — which clears the claim — so the next
// request is a plain local hit.
func (p *Proxy) clusterPeerFill(ctx context.Context, key string, claimed bool, bgt reqBudget) *cache.Entry {
	st := p.cluster
	// Dead-breaker peers drop out before the race starts, so the hedge
	// successor is always a peer worth asking.
	peers := st.c.FillPeers(cache.IssueKey(cache.SharedScope, key))
	ready := peers[:0]
	for _, addr := range peers {
		if st.c.PeerReady(addr) {
			ready = append(ready, addr)
		}
	}
	if len(ready) == 0 {
		return nil
	}
	if bgt.exhausted(p.opts.Now()) {
		// No budget left for a peer round trip; the origin path (which the
		// caller falls through to) at least makes forward progress.
		p.budget.exhausted.Add(1)
		return nil
	}
	if !claimed && !p.store.TryIssue(cache.SharedScope, key, clusterFillClaimWindow) {
		// Another goroutine is already filling or fetching this key; let the
		// caller fall through to its own path rather than wait.
		return nil
	}
	st.fillAttempts.Add(1)
	if e := p.hedgedPeek(ctx, ready, key, bgt); e != nil {
		p.store.Put(cache.SharedScope, key, e)
		st.fillHits.Add(1)
		return e
	}
	st.fillMisses.Add(1)
	if !claimed {
		p.store.CancelIssue(cache.SharedScope, key)
	}
	return nil
}

// entryFromPeer turns a sibling's serialized entry into a local cache
// entry. The TTL travels relative (ExpiresInMs) so instances need no clock
// agreement; an entry at or past expiry is not worth storing. Req stays nil
// — refresh-on-expiry re-learns from live traffic instead of replaying a
// request this instance never saw.
func (p *Proxy) entryFromPeer(pe *adminv1.ClusterEntry) *cache.Entry {
	if pe == nil || pe.Status != http.StatusOK || pe.ExpiresInMs <= 0 {
		return nil
	}
	resp := &httpmsg.Response{Status: pe.Status, Body: pe.Body}
	for _, h := range pe.Header {
		resp.Header = append(resp.Header, httpmsg.Field{Key: h.Key, Value: h.Value})
	}
	return &cache.Entry{
		Resp:      resp,
		SigID:     pe.SigID,
		Expires:   p.opts.Now().Add(time.Duration(pe.ExpiresInMs) * time.Millisecond),
		Refreshed: pe.Refreshed,
	}
}

// serveClusterEntry answers a sibling's peek (GET /appx/v1/cluster/entry
// ?key=...). Peek is deliberately side-effect-free on this instance: no
// hit/miss counters, no LRU touch — a sibling probing must not distort
// local telemetry or eviction order.
func (p *Proxy) serveClusterEntry(w http.ResponseWriter, r *http.Request) {
	if p.cluster == nil {
		http.Error(w, "appx proxy: cluster mode disabled", http.StatusNotFound)
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "appx proxy: missing key parameter", http.StatusBadRequest)
		return
	}
	e, ok := p.store.Peek(cache.SharedScope, key)
	if !ok || e.Resp == nil || !e.Resp.BodyComplete() {
		// Entries are buffered-complete by construction; a streaming or
		// truncated one must never serialize to a sibling as if whole.
		http.Error(w, "miss", http.StatusNotFound)
		return
	}
	out := adminv1.ClusterEntry{
		SigID:       e.SigID,
		Status:      e.Resp.Status,
		Body:        e.Resp.Body,
		ExpiresInMs: e.Expires.Sub(p.opts.Now()).Milliseconds(),
		Refreshed:   e.Refreshed,
	}
	for _, h := range e.Resp.Header {
		out.Header = append(out.Header, adminv1.HeaderField{Key: h.Key, Value: h.Value})
	}
	writeJSON(w, out)
}

// clusterV1 assembles the typed cluster block of /appx/v1/stats. The
// zero value (Enabled=false) reports an unclustered instance.
func (p *Proxy) clusterV1() adminv1.Cluster {
	st := p.cluster
	if st == nil {
		return adminv1.Cluster{}
	}
	out := st.c.Stats()
	out.Forwarded = st.forwarded.Load()
	out.ForwardFallbacks = st.forwardFallbacks.Load()
	out.ReceivedForwards = st.receivedForwards.Load()
	out.PeerFill = adminv1.ClusterPeerFill{
		Attempts: st.fillAttempts.Load(),
		Hits:     st.fillHits.Load(),
		Misses:   st.fillMisses.Load(),
		Errors:   st.fillErrors.Load(),
	}
	out.Rebalances = st.rebalances.Load()
	out.ScopesDropped = st.scopesDropped.Load()
	out.ForwardLoops = st.forwardLoops.Load()
	out.Hedge = adminv1.Hedge{
		Enabled:    !st.hedge.disabled,
		DelayMs:    st.hedge.delay.Milliseconds(),
		RateCap:    st.hedge.rate,
		Launched:   st.hedge.launched.Load(),
		Wins:       st.hedge.wins.Load(),
		Losses:     st.hedge.losses.Load(),
		Suppressed: st.hedge.suppressed.Load(),
	}
	return out
}

// ClusterStats exposes the cluster stats block (operational tooling and
// tests); Enabled is false when cluster mode is off.
func (p *Proxy) ClusterStats() adminv1.Cluster { return p.clusterV1() }
