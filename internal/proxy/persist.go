package proxy

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"appx/internal/httpmsg"
	"appx/internal/obs"
	"appx/internal/obs/adminv1"
	"appx/internal/persist"
	"appx/internal/proxy/resilience"
)

// Crash-safe persistence wiring (ISSUE 6). When Options.StateDir is set the
// proxy gains two durable surfaces:
//
//   - a disk tier under <state-dir>/cache that the prefetch store spills
//     into write-behind and reads through on miss, and
//   - periodic snapshots of the learned soft state (exemplars, samples,
//     breaker and backoff state) under <state-dir>/snapshot.appx, restored
//     at boot when their graph fingerprint matches the running graph.
//
// Every failure mode degrades to a cold start: the proxy without its state
// directory is merely slow, never wrong.

// Restore outcome values reported by RestoreOutcome and the stats API.
const (
	// RestoreDisabled: no state directory configured.
	RestoreDisabled = "disabled"
	// RestoreCold: persistence on, but no snapshot existed (first boot).
	RestoreCold = "cold"
	// RestoreWarm: a snapshot was decoded and applied.
	RestoreWarm = "restored"
	// RestoreFailed: every snapshot rung was corrupt or incompatible; the
	// proxy started cold and said so.
	RestoreFailed = "failed"
)

// persistState bundles the proxy's persistence members.
type persistState struct {
	mgr  *persist.Manager
	tier *persist.Tier

	// restoreOutcome/restoreDetail are written once during New, before any
	// request goroutine exists, and read-only afterwards.
	restoreOutcome string
	restoreDetail  string
	restoreSource  string

	stop chan struct{}
	done chan struct{}
}

// initPersist opens the disk tier ahead of cache construction (the store
// needs the tier at New time). Any environmental failure disables
// persistence for this process rather than failing the proxy.
func (p *Proxy) initPersist() {
	p.persist.restoreOutcome = RestoreDisabled
	if p.opts.StateDir == "" {
		return
	}
	now := func() time.Time { return p.opts.Now() }
	tier, err := persist.NewTier(filepath.Join(p.opts.StateDir, "cache"), persist.TierOptions{
		Now:    now,
		Faults: p.opts.PersistFaults,
	})
	if err != nil {
		p.persist.restoreOutcome = RestoreFailed
		p.persist.restoreDetail = fmt.Sprintf("open disk tier: %v", err)
		p.restoreFailures.Add(1)
		return
	}
	mgr, err := persist.NewManager(p.opts.StateDir, persist.ManagerOptions{
		Now:    now,
		Faults: p.opts.PersistFaults,
	})
	if err != nil {
		tier.Close()
		p.persist.restoreOutcome = RestoreFailed
		p.persist.restoreDetail = fmt.Sprintf("open snapshot dir: %v", err)
		p.restoreFailures.Add(1)
		return
	}
	p.persist.tier = tier
	p.persist.mgr = mgr
}

// restorePersist walks the snapshot ladder and applies what it finds. Runs
// once, at the end of New, before the proxy serves anything.
func (p *Proxy) restorePersist() {
	if p.persist.mgr == nil {
		return
	}
	st, source, err := p.persist.mgr.Load()
	switch {
	case err != nil:
		// Corruption on every rung: cold start, counted and described.
		p.restoreFailures.Add(1)
		p.persist.restoreOutcome = RestoreFailed
		p.persist.restoreDetail = err.Error()
		// Spilled cache entries are from the same era as the unusable
		// snapshot; without a fingerprint to vouch for them, drop them too.
		p.persist.tier.Purge()
	case st == nil:
		p.persist.restoreOutcome = RestoreCold
	case st.GraphFingerprint != p.opts.Graph.Fingerprint():
		p.restoreFailures.Add(1)
		p.persist.restoreOutcome = RestoreFailed
		p.persist.restoreDetail = fmt.Sprintf("snapshot graph %s != running graph %s",
			st.GraphFingerprint, p.opts.Graph.Fingerprint())
		p.persist.tier.Purge()
	default:
		p.applyState(st)
		p.persist.restoreOutcome = RestoreWarm
		p.persist.restoreSource = source
	}
}

// startPersistLoop begins periodic snapshots.
func (p *Proxy) startPersistLoop() {
	if p.persist.mgr == nil || p.opts.SnapshotInterval <= 0 {
		return
	}
	p.persist.stop = make(chan struct{})
	p.persist.done = make(chan struct{})
	go func() {
		t := time.NewTicker(p.opts.SnapshotInterval)
		defer t.Stop()
		defer close(p.persist.done)
		for {
			select {
			case <-t.C:
				p.SnapshotNow()
			case <-p.persist.stop:
				return
			}
		}
	}()
}

// stopPersist ends the snapshot loop and the tier's spill worker (draining
// its backlog). Idempotent.
func (p *Proxy) stopPersist() {
	if p.persist.stop != nil {
		select {
		case <-p.persist.stop:
			// already closed
		default:
			close(p.persist.stop)
			<-p.persist.done
		}
	}
	if p.persist.tier != nil {
		p.persist.tier.Close()
	}
}

// SnapshotNow captures and writes a snapshot immediately. No-op (nil) when
// persistence is disabled.
func (p *Proxy) SnapshotNow() error {
	if p.persist.mgr == nil {
		return nil
	}
	return p.persist.mgr.Save(p.exportState())
}

// RestoreOutcome reports what boot-time restore did: "disabled", "cold",
// "restored", or "failed".
func (p *Proxy) RestoreOutcome() string { return p.persist.restoreOutcome }

// RestoreDetail describes a failed restore (empty otherwise).
func (p *Proxy) RestoreDetail() string { return p.persist.restoreDetail }

// RestoreFailures reports counted failed restores (the acceptance
// criterion's restore_failed metric).
func (p *Proxy) RestoreFailures() int64 { return p.restoreFailures.Load() }

// DiskTier exposes the persistence disk tier (nil when disabled) for
// operational tooling, experiments, and tests.
func (p *Proxy) DiskTier() *persist.Tier { return p.persist.tier }

// exportState captures every piece of learned soft state into the persist
// wire format. Lock order matches the rest of the proxy: p.mu is released
// before any per-user u.mu is taken.
func (p *Proxy) exportState() *persist.State {
	now := p.opts.Now()
	st := &persist.State{
		SavedAt:          now,
		GraphFingerprint: p.opts.Graph.Fingerprint(),
		Samples:          map[string]*httpmsg.Request{},
		Breakers:         map[string]persist.BreakerState{},
		SigBackoff:       map[string]persist.BackoffState{},
	}

	p.mu.Lock()
	users := make(map[string]*user, len(p.users))
	for k, u := range p.users {
		users[k] = u
	}
	for id, r := range p.samples {
		st.Samples[id] = r.Clone()
	}
	p.mu.Unlock()

	for k, u := range users {
		us := persist.UserState{Key: k, Exemplars: map[string]persist.ExemplarState{}}
		u.mu.Lock()
		us.LastSeen = u.lastSeen
		for id, ex := range u.exemplars {
			es := persist.ExemplarState{
				URIWilds: append([]string(nil), ex.uriWilds...),
				Headers:  append([]httpmsg.Field(nil), ex.headers...),
			}
			if len(ex.fieldWilds) > 0 {
				es.FieldWilds = make(map[string][]string, len(ex.fieldWilds))
				for loc, w := range ex.fieldWilds {
					es.FieldWilds[loc] = append([]string(nil), w...)
				}
			}
			if len(ex.present) > 0 {
				es.Present = make(map[string]bool, len(ex.present))
				for loc, v := range ex.present {
					es.Present[loc] = v
				}
			}
			us.Exemplars[id] = es
		}
		u.mu.Unlock()
		st.Users = append(st.Users, us)
	}
	sort.Slice(st.Users, func(i, j int) bool { return st.Users[i].Key < st.Users[j].Key })

	for host, b := range p.breakers.Snapshot() {
		st.Breakers[host] = persist.BreakerState{
			State:               b.State.String(),
			ConsecutiveFailures: b.ConsecutiveFailures,
			OpenForMs:           b.OpenFor.Milliseconds(),
		}
	}

	p.resMu.Lock()
	for id, b := range p.sigFail {
		rem := b.until.Sub(now)
		if rem < 0 {
			rem = 0
		}
		st.SigBackoff[id] = persist.BackoffState{
			Consecutive: b.consecutive,
			RemainingMs: rem.Milliseconds(),
		}
	}
	p.resMu.Unlock()

	// The history policy's transition tables ride the same snapshot (and the
	// same fingerprint gate: transition counts between signatures of a
	// different graph are meaningless).
	if p.markovPol != nil {
		st.Policy = p.markovPol.Export()
	}
	return st
}

// applyState reinstates a decoded snapshot. Only called before the proxy
// serves traffic, so locks are taken purely for form.
func (p *Proxy) applyState(st *persist.State) {
	now := p.opts.Now()

	p.mu.Lock()
	for _, us := range st.Users {
		if len(p.users) >= p.opts.MaxUsers {
			break
		}
		u := &user{
			key:       us.Key,
			exemplars: map[string]*exemplar{},
			pending:   map[string][]pendingInstance{},
			lastSeen:  us.LastSeen,
		}
		for id, es := range us.Exemplars {
			// Drop exemplars for signatures the graph no longer carries;
			// fingerprint equality makes this a no-op today, but applyState
			// must stay safe if the gate ever loosens.
			if p.opts.Graph.Sig(id) == nil {
				continue
			}
			ex := &exemplar{
				uriWilds:   append([]string(nil), es.URIWilds...),
				fieldWilds: map[string][]string{},
				present:    map[string]bool{},
				headers:    append([]httpmsg.Field(nil), es.Headers...),
			}
			for loc, w := range es.FieldWilds {
				ex.fieldWilds[loc] = append([]string(nil), w...)
			}
			for loc, v := range es.Present {
				ex.present[loc] = v
			}
			u.exemplars[id] = ex
		}
		p.users[us.Key] = u
	}
	if p.samples == nil {
		p.samples = map[string]*httpmsg.Request{}
	}
	for id, r := range st.Samples {
		if p.opts.Graph.Sig(id) != nil && r != nil {
			p.samples[id] = r
		}
	}
	p.mu.Unlock()

	if len(st.Breakers) > 0 {
		snap := make(map[string]resilience.BreakerSnapshot, len(st.Breakers))
		for host, b := range st.Breakers {
			s := resilience.BreakerSnapshot{ConsecutiveFailures: b.ConsecutiveFailures}
			switch b.State {
			case resilience.Open.String():
				s.State = resilience.Open
				s.OpenFor = time.Duration(b.OpenForMs) * time.Millisecond
			case resilience.HalfOpen.String():
				s.State = resilience.HalfOpen
			default:
				s.State = resilience.Closed
			}
			snap[host] = s
		}
		p.breakers.Restore(snap)
	}

	p.resMu.Lock()
	for id, b := range st.SigBackoff {
		sb := &sigBackoff{consecutive: b.Consecutive}
		if b.RemainingMs > 0 {
			sb.until = now.Add(time.Duration(b.RemainingMs) * time.Millisecond)
		}
		p.sigFail[id] = sb
	}
	p.resMu.Unlock()

	// A snapshot written by a markov proxy restores into a markov proxy;
	// a static configuration ignores the tables (and vice versa — a
	// snapshot without them simply leaves the model cold).
	if st.Policy != nil && p.markovPol != nil {
		p.markovPol.Restore(st.Policy)
	}
}

// registerPersistBridges exposes the persistence counters on the metrics
// registry. Registered even when persistence is disabled, so dashboards see
// stable zero series instead of absent ones.
func (p *Proxy) registerPersistBridges(reg *obs.Registry) {
	reg.CounterFunc("appx_persist_snapshots_total", "Snapshots written successfully.",
		func() int64 {
			if p.persist.mgr == nil {
				return 0
			}
			return p.persist.mgr.Snapshots()
		})
	reg.CounterFunc("appx_persist_snapshot_failures_total", "Snapshot writes that failed.",
		func() int64 {
			if p.persist.mgr == nil {
				return 0
			}
			return p.persist.mgr.Failures()
		})
	reg.GaugeFunc("appx_persist_snapshot_age_seconds", "Seconds since the last successful snapshot (-1 when none).",
		func() float64 {
			if p.persist.mgr == nil {
				return -1
			}
			age := p.persist.mgr.Age()
			if age < 0 {
				return -1
			}
			return age.Seconds()
		})
	reg.CounterFunc(`appx_persist_restores_total{outcome="restored"}`, "Boot-time restores by outcome.",
		func() int64 { return boolCounter(p.persist.restoreOutcome == RestoreWarm) })
	reg.CounterFunc(`appx_persist_restores_total{outcome="cold"}`, "Boot-time restores by outcome.",
		func() int64 { return boolCounter(p.persist.restoreOutcome == RestoreCold) })
	reg.CounterFunc(`appx_persist_restores_total{outcome="failed"}`, "Boot-time restores by outcome.",
		func() int64 { return boolCounter(p.persist.restoreOutcome == RestoreFailed) })
	reg.CounterFunc("appx_persist_restore_failures_total", "Failed restore attempts (corrupt or incompatible snapshots).",
		p.restoreFailures.Load)
	reg.GaugeFunc("appx_disk_tier_bytes", "Bytes resident in the persistence disk tier.",
		func() float64 {
			if p.persist.tier == nil {
				return 0
			}
			return float64(p.persist.tier.Metrics().Bytes)
		})
	reg.CounterFunc("appx_disk_tier_hits_total", "Misses answered by the disk tier.",
		func() int64 {
			if p.persist.tier == nil {
				return 0
			}
			return p.persist.tier.Metrics().Hits
		})
	reg.CounterFunc("appx_disk_tier_spilled_total", "Entries spilled to the disk tier.",
		func() int64 {
			if p.persist.tier == nil {
				return 0
			}
			return p.persist.tier.Metrics().Spilled
		})
	reg.CounterFunc("appx_disk_tier_load_errors_total", "Disk-tier loads that hit corrupt or mismatched files.",
		func() int64 {
			if p.persist.tier == nil {
				return 0
			}
			return p.persist.tier.Metrics().LoadErrors
		})
}

func boolCounter(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// persistV1 assembles the Persist block of /appx/v1/stats.
func (p *Proxy) persistV1() adminv1.Persist {
	out := adminv1.Persist{
		Enabled:         p.persist.mgr != nil,
		RestoreOutcome:  p.persist.restoreOutcome,
		RestoreSource:   p.persist.restoreSource,
		RestoreDetail:   p.persist.restoreDetail,
		RestoreFailures: p.restoreFailures.Load(),
		SnapshotAgeMs:   -1,
	}
	if p.persist.mgr != nil {
		out.Snapshots = p.persist.mgr.Snapshots()
		out.SnapshotFailures = p.persist.mgr.Failures()
		if age := p.persist.mgr.Age(); age >= 0 {
			out.SnapshotAgeMs = age.Milliseconds()
		}
	}
	if p.persist.tier != nil {
		tm := p.persist.tier.Metrics()
		out.DiskEntries = tm.Entries
		out.DiskBytes = tm.Bytes
		out.DiskHits = tm.Hits
		out.DiskLoads = tm.Loads
		out.DiskLoadErrors = tm.LoadErrors
		out.DiskSpilled = tm.Spilled
		out.DiskSpillDropped = tm.SpillDropped
		out.DiskSpillErrors = tm.SpillErrors
		out.DiskEvictions = tm.Evicted
	}
	return out
}
