package proxy

import (
	"sync"
	"time"
)

// usageWindow accounts prefetch bytes over rolling budget periods: usage
// resets when a window elapses, so a data budget (C4, the paper's cellular
// cost control) throttles *per period* instead of permanently disabling
// prefetching once the lifetime total is hit. Epochs roll lazily on access
// against the injected clock, keeping the accounting deterministic in
// tests.
type usageWindow struct {
	mu     sync.Mutex
	window time.Duration
	epoch  time.Time
	used   int64
}

func newUsageWindow(window time.Duration) *usageWindow {
	return &usageWindow{window: window}
}

// roll starts a new accounting period when the current one has elapsed
// (w.mu held).
func (w *usageWindow) roll(now time.Time) {
	if w.epoch.IsZero() {
		w.epoch = now
		return
	}
	if w.window > 0 && now.Sub(w.epoch) >= w.window {
		w.epoch = now
		w.used = 0
	}
}

// Add charges n bytes against the current window.
func (w *usageWindow) Add(now time.Time, n int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.roll(now)
	w.used += n
}

// Used reports bytes charged in the current window.
func (w *usageWindow) Used(now time.Time) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.roll(now)
	return w.used
}
