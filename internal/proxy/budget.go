package proxy

import (
	"context"
	"strconv"
	"sync"
	"time"

	"appx/internal/httpmsg"
)

// budgetHeader carries a request's remaining latency budget (integer
// milliseconds) across relay hops. A receiving instance takes the minimum of
// the inherited value and its own configured budget — the budget is clamped,
// never grown — so a forwarded request or peer fill can never outlive the
// patience of the client that started the chain.
const budgetHeader = "X-Appx-Budget-Ms"

// reqBudget is one request's latency budget, fixed at acceptance as an
// absolute deadline against the proxy clock. Stages consume it implicitly:
// whatever time parsing or a cache miss burned is gone when the relay or
// peer fill asks what remains. The zero value is "no budget" — every stage
// falls back to its static timeout.
type reqBudget struct {
	deadline time.Time
}

// active reports whether a budget was set for this request.
func (b reqBudget) active() bool { return !b.deadline.IsZero() }

// remaining returns the budget left at now (never negative).
func (b reqBudget) remaining(now time.Time) time.Duration {
	if !b.active() {
		return 0
	}
	if rem := b.deadline.Sub(now); rem > 0 {
		return rem
	}
	return 0
}

// exhausted reports whether an active budget has run out.
func (b reqBudget) exhausted(now time.Time) bool {
	return b.active() && b.remaining(now) <= 0
}

// headerValue renders the remaining budget for propagation (min 1ms: a
// budget worth forwarding is never rendered as zero, which receivers would
// read as "no budget").
func (b reqBudget) headerValue(now time.Time) string {
	ms := b.remaining(now).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return strconv.FormatInt(ms, 10)
}

// bound derives a per-attempt context from ctx limited by the smaller of
// cap and the budget's remaining time. cap <= 0 means "budget only"; with
// neither, the context is merely cancelable. Context expiry runs on real
// time (the runtime's timers), while remaining is computed against the
// injectable proxy clock — tests that freeze the clock get deterministic
// budget arithmetic without wedging live I/O.
func (b reqBudget) bound(ctx context.Context, now time.Time, cap time.Duration) (context.Context, context.CancelFunc) {
	d := cap
	if b.active() {
		rem := b.remaining(now)
		if rem < time.Millisecond {
			// Exhausted: expire almost immediately rather than hang unbounded.
			rem = time.Millisecond
		}
		if d <= 0 || rem < d {
			d = rem
		}
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// acceptBudget reads (and strips) the propagated budget header from req and
// combines it with the locally configured budget: the smaller wins. Called
// once per request, before any routing decision, so the header can never
// leak to the origin or into canonical keys on any path.
func (p *Proxy) acceptBudget(req *httpmsg.Request) reqBudget {
	var inherited time.Duration
	if v, ok := req.GetHeader(budgetHeader); ok {
		req.DeleteHeader(budgetHeader)
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			inherited = time.Duration(ms) * time.Millisecond
			p.budget.inherited.Add(1)
		}
	}
	b := inherited
	if local := p.opts.RequestBudget; local > 0 {
		if b <= 0 || b > local {
			if b > local {
				p.budget.clamped.Add(1)
			}
			b = local
		}
	}
	if b <= 0 {
		return reqBudget{}
	}
	return reqBudget{deadline: p.opts.Now().Add(b)}
}

// usageWindow accounts prefetch bytes over rolling budget periods: usage
// resets when a window elapses, so a data budget (C4, the paper's cellular
// cost control) throttles *per period* instead of permanently disabling
// prefetching once the lifetime total is hit. Epochs roll lazily on access
// against the injected clock, keeping the accounting deterministic in
// tests.
type usageWindow struct {
	mu     sync.Mutex
	window time.Duration
	epoch  time.Time
	used   int64
}

func newUsageWindow(window time.Duration) *usageWindow {
	return &usageWindow{window: window}
}

// roll starts a new accounting period when the current one has elapsed
// (w.mu held).
func (w *usageWindow) roll(now time.Time) {
	if w.epoch.IsZero() {
		w.epoch = now
		return
	}
	if w.window > 0 && now.Sub(w.epoch) >= w.window {
		w.epoch = now
		w.used = 0
	}
}

// Add charges n bytes against the current window.
func (w *usageWindow) Add(now time.Time, n int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.roll(now)
	w.used += n
}

// Used reports bytes charged in the current window.
func (w *usageWindow) Used(now time.Time) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.roll(now)
	return w.used
}
