package proxy

// Integration tests for the sharded prefetch store as wired into the proxy:
// the cross-user shared tier, the cache telemetry surface, the sliding-window
// data budget, the per-prefetch deadline, and user-state LRU eviction.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"appx/internal/cache"
	"appx/internal/config"
	"appx/internal/httpmsg"
	"appx/internal/netem"
	"appx/internal/obs/adminv1"
	"appx/internal/sig"
)

// sharedGraph builds a one-host fan-out: a list endpoint whose ids feed item
// fetches. Both signatures are free of per-user wildcards, so the items are
// shared-tier eligible.
func sharedGraph() *sig.Graph {
	g := sig.NewGraph("t")
	pred := &sig.Signature{ID: "t:list#0", Method: "GET", URI: sig.Literal("h.example/list")}
	succ := &sig.Signature{ID: "t:item#0", Method: "GET", URI: sig.Literal("h.example/item"),
		Query: []sig.Field{{Key: "id", Value: sig.DepValue(pred.ID, "ids[*]")}}}
	g.Add(pred)
	g.Add(succ)
	g.AddDep(sig.Dependency{PredID: pred.ID, SuccID: succ.ID, RespPath: "ids[*]",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})
	return g
}

func TestSharedTierCrossUserHit(t *testing.T) {
	g := sharedGraph()
	var itemCalls atomic.Int64
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Path == "/list" {
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   []byte(`{"ids":["1","2","3","4"]}`)}, nil
		}
		itemCalls.Add(1)
		return &httpmsg.Response{Status: 200, Body: []byte(`{"item":"payload"}`)}, nil
	})
	p := New(Options{Graph: g, Upstream: up})
	defer p.Close()

	// Alice teaches the item exemplar, then her list view fans out into
	// prefetches. The item signature carries no per-user values, so the
	// entries land in the shared tier.
	alice := &proxyTransport{p: p, user: "1.1.1.1"}
	if _, err := alice.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/item",
		Query: []httpmsg.Field{{Key: "id", Value: "0"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/list"}); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	if n, _ := p.Cache().ScopeStats(cache.SharedScope); n == 0 {
		t.Fatal("fan-out produced no shared-tier entries")
	}

	// Bob never visited, but his exact-match request is served from Alice's
	// prefetch without touching the origin.
	before := itemCalls.Load()
	bob := &proxyTransport{p: p, user: "2.2.2.2"}
	resp, err := bob.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/item",
		Query: []httpmsg.Field{{Key: "id", Value: "2"}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != `{"item":"payload"}` {
		t.Fatalf("shared hit served wrong response: %d %q", resp.Status, resp.Body)
	}
	if got := itemCalls.Load(); got != before {
		t.Fatalf("cross-user request reached the origin: %d -> %d item fetches", before, got)
	}
	snap := p.Stats().Snapshot()
	if snap.SharedHits == 0 {
		t.Fatal("no shared-tier hits counted")
	}
	if snap.SharedHitRatio() <= 0 {
		t.Fatalf("shared hit ratio = %v", snap.SharedHitRatio())
	}
}

func TestSharedEligibility(t *testing.T) {
	g := sharedGraph()
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		return &httpmsg.Response{Status: 200}, nil
	})
	p := New(Options{Graph: g, Upstream: up})
	defer p.Close()
	s := g.Sig("t:item#0")
	req := &httpmsg.Request{Method: "GET", Host: "h.example", Path: "/item"}
	if !p.sharedEligible(s, req) {
		t.Fatal("dep-only signature with a clean request should be shared-eligible")
	}
	// A materialized request carrying anything credential-shaped stays per
	// user, whatever the exact header name.
	for _, h := range []string{"Cookie", "Authorization", "X-Session-Id", "X-Account-Ref", "Api-Token"} {
		r2 := req.Clone()
		r2.Header = append(r2.Header, httpmsg.Field{Key: h, Value: "v"})
		if p.sharedEligible(s, r2) {
			t.Fatalf("header %s did not deny sharing", h)
		}
	}
	// But ordinary headers survive the denylist.
	r3 := req.Clone()
	r3.Header = append(r3.Header, httpmsg.Field{Key: "User-Agent", Value: "X/1.0"})
	if !p.sharedEligible(s, r3) {
		t.Fatal("User-Agent header wrongly denied sharing")
	}
	// Signatures with per-user runtime wildcards never share.
	wild := &sig.Signature{ID: "t:wild#0", Method: "GET", URI: sig.Literal("h.example/w"),
		Query: []sig.Field{{Key: "tok", Value: sig.Wildcard("tok")}}}
	if wild.UserAgnostic() {
		t.Fatal("wildcard signature reported user-agnostic")
	}
	if p.sharedEligible(wild, req) {
		t.Fatal("wildcard signature was shared-eligible")
	}
	// The config switch disables the tier outright.
	cfg := config.Default(g)
	cfg.Cache = &config.Cache{DisableSharedTier: true}
	p2 := New(Options{Graph: g, Config: cfg, Upstream: up})
	defer p2.Close()
	if p2.sharedEligible(s, req) {
		t.Fatal("DisableSharedTier did not deny sharing")
	}
}

func TestHealthReportsCacheTelemetry(t *testing.T) {
	g := sharedGraph()
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Path == "/list" {
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   []byte(`{"ids":["1","2","3"]}`)}, nil
		}
		return &httpmsg.Response{Status: 200, Body: []byte(`{}`)}, nil
	})
	p := New(Options{Graph: g, Upstream: up})
	defer p.Close()
	alice := &proxyTransport{p: p, user: "1.1.1.1"}
	if _, err := alice.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/item",
		Query: []httpmsg.Field{{Key: "id", Value: "0"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/list"}); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	bob := &proxyTransport{p: p, user: "2.2.2.2"}
	if _, err := bob.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/item",
		Query: []httpmsg.Field{{Key: "id", Value: "2"}}}); err != nil {
		t.Fatal(err)
	}

	get := func(path string, into any) {
		t.Helper()
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		p.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("%s = %d", path, rec.Code)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
			t.Fatalf("%s not JSON: %v", path, err)
		}
	}

	var health adminv1.HealthResponse
	get(adminv1.PathHealth, &health)
	c := health.Cache
	if c.ResidentBytes <= 0 {
		t.Fatalf("cache residentBytes = %d", c.ResidentBytes)
	}
	if c.SharedEntries <= 0 || c.SharedBytes <= 0 {
		t.Fatalf("shared tier not visible: entries=%d bytes=%d", c.SharedEntries, c.SharedBytes)
	}
	if c.SharedHits < 1 || c.SharedHitRatio <= 0 {
		t.Fatalf("shared hits not reported: hits=%d ratio=%v", c.SharedHits, c.SharedHitRatio)
	}

	var stats adminv1.StatsResponse
	get(adminv1.PathStats, &stats)
	if stats.CacheResidentBytes <= 0 {
		t.Fatalf("stats cacheResidentBytes = %d", stats.CacheResidentBytes)
	}
	if stats.SharedHitRatio <= 0 {
		t.Fatalf("stats sharedHitRatio = %v, want > 0", stats.SharedHitRatio)
	}
}

// roundUpstream serves the sharedGraph origin with fresh ids per list fetch,
// so every round spawns new prefetch work.
type roundUpstream struct {
	mu    sync.Mutex
	round int
}

func (ru *roundUpstream) RoundTrip(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	if r.Path == "/list" {
		ru.round++
		ids := make([]string, 4)
		for i := range ids {
			ids[i] = fmt.Sprintf("r%d-%d", ru.round, i)
		}
		body, _ := json.Marshal(map[string]any{"ids": ids})
		return &httpmsg.Response{Status: 200,
			Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
			Body:   body}, nil
	}
	return &httpmsg.Response{Status: 200, Body: make([]byte, 1000)}, nil
}

func TestDataBudgetWindowResets(t *testing.T) {
	g := sharedGraph()
	cfg := config.Default(g)
	cfg.DataBudgetBytes = 1 // any prefetched byte exhausts the period
	cfg.DataBudgetWindow = config.Duration(time.Minute)
	now := time.Unix(1_700_000_000, 0)
	p := New(Options{Graph: g, Config: cfg, Upstream: &roundUpstream{}, Workers: 1,
		Now: func() time.Time { return now }})
	defer p.Close()
	pt := &proxyTransport{p: p, user: "budget-user"}
	get := func(path, id string) {
		t.Helper()
		req := &httpmsg.Request{Method: "GET", Host: "h.example", Path: path}
		if id != "" {
			req.Query = []httpmsg.Field{{Key: "id", Value: id}}
		}
		if _, err := pt.RoundTrip(req); err != nil {
			t.Fatal(err)
		}
	}
	get("/item", "seed") // teach the exemplar
	get("/list", "")
	p.Drain()
	first := p.Stats().Snapshot().Prefetches
	if first == 0 {
		t.Fatal("no prefetch before the budget was exhausted")
	}
	// Same window, fresh fan-out: the exhausted budget must suppress it.
	get("/list", "")
	p.Drain()
	if mid := p.Stats().Snapshot().Prefetches; mid != first {
		t.Fatalf("budget did not suppress within the window: %d -> %d", first, mid)
	}
	// A new accounting period starts once the window elapses: usage reads
	// zero again and prefetching resumes instead of staying dead forever.
	now = now.Add(2 * time.Minute)
	if used := p.DataUsedBytes(); used != 0 {
		t.Fatalf("window roll did not reset usage: %d", used)
	}
	get("/list", "")
	p.Drain()
	if after := p.Stats().Snapshot().Prefetches; after <= first {
		t.Fatalf("prefetching did not resume in the new window: %d -> %d", first, after)
	}
}

func TestPrefetchTimeoutBoundsStalledOrigin(t *testing.T) {
	// Two hosts sharing one real TCP origin: the list stays healthy while
	// every item connection stalls mid-I/O. Without the per-prefetch
	// deadline each worker would hang for the full stall.
	g := sig.NewGraph("t")
	pred := &sig.Signature{ID: "t:slist#0", Method: "GET", URI: sig.Literal("live.example/list")}
	succ := &sig.Signature{ID: "t:sitem#0", Method: "GET", URI: sig.Literal("stall.example/item"),
		Query: []sig.Field{{Key: "id", Value: sig.DepValue(pred.ID, "ids[*]")}}}
	g.Add(pred)
	g.Add(succ)
	g.AddDep(sig.Dependency{PredID: pred.ID, SuccID: succ.ID, RespPath: "ids[*]",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/list", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ids":["1","2"]}`))
	})
	mux.HandleFunc("/item", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	})
	srv := &http.Server{Handler: mux}
	// Every request must dial a fresh connection so the injector's fault
	// wrapping (applied at dial time) covers the prefetch traffic too.
	srv.SetKeepAlivesEnabled(false)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	addr := ln.Addr().String()
	up := NewNetUpstream(map[string]string{"live.example": addr, "stall.example": addr}, nil)
	cfg := config.Default(g)
	cfg.Resilience = &config.Resilience{
		RetryAttempts:        1,
		AttemptTimeout:       config.Duration(time.Minute), // keep the per-attempt bound out of the way
		PrefetchTimeout:      config.Duration(150 * time.Millisecond),
		BreakerFailures:      1000,
		PrefetchFailureLimit: 1000,
	}
	p := New(Options{Graph: g, Config: cfg, Upstream: up, Workers: 1})
	defer p.Close()
	pt := &proxyTransport{p: p, user: "stall-user"}

	// Teach the item exemplar fault-free, then stall the item host.
	if _, err := pt.RoundTrip(&httpmsg.Request{Method: "GET", Host: "stall.example", Path: "/item",
		Query: []httpmsg.Field{{Key: "id", Value: "seed"}}}); err != nil {
		t.Fatal(err)
	}
	in := netem.NewInjector(1)
	in.SetFault("stall.example", netem.Fault{StallProb: 1, StallDelay: 5 * time.Second})
	up.SetFaults(in)

	start := time.Now()
	if _, err := pt.RoundTrip(&httpmsg.Request{Method: "GET", Host: "live.example", Path: "/list"}); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("prefetch deadline did not bound the stalled origin: drained in %v", elapsed)
	}
	if st := p.Stats().Snapshot().PerSig["t:sitem#0"]; st.PrefetchErrors == 0 {
		t.Fatal("stalled prefetches reported no errors")
	}
}

func TestMaxUsersEvictsLeastRecentlySeen(t *testing.T) {
	g := sig.NewGraph("t")
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		return &httpmsg.Response{Status: 200}, nil
	})
	now := time.Unix(1_700_000_000, 0)
	p := New(Options{Graph: g, Upstream: up, MaxUsers: 2,
		Now: func() time.Time { return now }})
	defer p.Close()

	p.user("old")
	p.Cache().Put("old", "k", &cache.Entry{
		Resp:    &httpmsg.Response{Status: 200, Body: []byte("x")},
		Expires: now.Add(time.Hour),
	})
	now = now.Add(time.Minute)
	p.user("fresh")
	now = now.Add(time.Minute)
	p.user("new") // over MaxUsers: the least recently seen state must go

	p.mu.Lock()
	_, oldAlive := p.users["old"]
	_, freshAlive := p.users["fresh"]
	p.mu.Unlock()
	if oldAlive || !freshAlive {
		t.Fatalf("LRU eviction picked the wrong user: old=%v fresh=%v", oldAlive, freshAlive)
	}
	if n, b := p.Cache().ScopeStats("old"); n != 0 || b != 0 {
		t.Fatalf("evicted user's cache not dropped: %d entries, %d bytes", n, b)
	}
}
