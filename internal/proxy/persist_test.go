package proxy

// Proxy-level persistence tests: the acceptance criteria of the crash-safe
// persistence issue. A kill-and-restart on the same state directory must
// recover the cache hit ratio to at least 80% of the pre-kill steady state,
// and every corruption mode must degrade to a counted, logged cold start —
// never a panic.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"appx/internal/httpmsg"
	"appx/internal/persist"
	"appx/internal/sig"
)

// persistLabUpstream returns an upstream serving the sharedGraph workload and
// a counter of item fetches that reached the origin.
func persistLabUpstream() (UpstreamFunc, *atomic.Int64) {
	var itemCalls atomic.Int64
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Path == "/list" {
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   []byte(`{"ids":["1","2","3","4"]}`)}, nil
		}
		itemCalls.Add(1)
		return &httpmsg.Response{Status: 200, Body: []byte(`{"item":"payload"}`)}, nil
	})
	return up, &itemCalls
}

// trainAndWarm teaches the item exemplar, fans a list view out into shared
// prefetches, and waits until the entries are cached.
func trainAndWarm(t *testing.T, p *Proxy) {
	t.Helper()
	alice := &proxyTransport{p: p, user: "1.1.1.1"}
	if _, err := alice.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/item",
		Query: []httpmsg.Field{{Key: "id", Value: "0"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/list"}); err != nil {
		t.Fatal(err)
	}
	p.Drain()
}

// replayItems requests ids 1..4 and reports how many were served without
// touching the origin.
func replayItems(t *testing.T, p *Proxy, user string, itemCalls *atomic.Int64) (hits, total int) {
	t.Helper()
	tr := &proxyTransport{p: p, user: user}
	for i := 1; i <= 4; i++ {
		before := itemCalls.Load()
		resp, err := tr.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/item",
			Query: []httpmsg.Field{{Key: "id", Value: fmt.Sprint(i)}}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != 200 || string(resp.Body) != `{"item":"payload"}` {
			t.Fatalf("item %d served wrong response: %d %q", i, resp.Status, resp.Body)
		}
		total++
		if itemCalls.Load() == before {
			hits++
		}
	}
	return hits, total
}

// TestKillRestartRecoversHitRatio is the headline acceptance test: train a
// proxy, snapshot, kill it (no graceful close of the first instance's learned
// state — the snapshot and flushed spill queue are all the successor gets),
// boot a second proxy on the same state directory, and require the warm
// restart to recover at least 80% of the pre-kill steady-state hit ratio.
func TestKillRestartRecoversHitRatio(t *testing.T) {
	dir := t.TempDir()
	g := sharedGraph()
	up, itemCalls := persistLabUpstream()

	p1 := New(Options{Graph: g, Upstream: up, StateDir: dir})
	trainAndWarm(t, p1)

	// Pre-kill steady state.
	preHits, preTotal := replayItems(t, p1, "2.2.2.2", itemCalls)
	if preHits == 0 {
		t.Fatalf("no steady-state hits before kill (%d/%d)", preHits, preTotal)
	}

	// SIGKILL semantics: persist what a crash-safe deployment would have on
	// disk — the periodic snapshot and the write-behind spill backlog — then
	// abandon the instance. Close only reclaims goroutines for the test.
	if err := p1.SnapshotNow(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	p1.DiskTier().Flush()
	p1.Close()

	p2 := New(Options{Graph: g, Upstream: up, StateDir: dir})
	defer p2.Close()
	if got := p2.RestoreOutcome(); got != RestoreWarm {
		t.Fatalf("restore outcome = %q (%s), want %q", got, p2.RestoreDetail(), RestoreWarm)
	}

	postHits, postTotal := replayItems(t, p2, "3.3.3.3", itemCalls)
	preRatio := float64(preHits) / float64(preTotal)
	postRatio := float64(postHits) / float64(postTotal)
	if postRatio < 0.8*preRatio {
		t.Fatalf("warm restart hit ratio %.2f < 80%% of pre-kill %.2f", postRatio, preRatio)
	}
	if hits := p2.DiskTier().Metrics().Hits; hits == 0 {
		t.Fatal("warm hits never touched the disk tier")
	}

	// The stats API reports the warm restore.
	ps := p2.statsV1().Persist
	if !ps.Enabled || ps.RestoreOutcome != RestoreWarm || ps.RestoreSource == "" {
		t.Fatalf("stats persist block = %+v, want enabled warm restore with a source", ps)
	}
}

// TestRestoredExemplarsPrefetchWithoutRetraining: the snapshot carries the
// learned exemplars, so a restarted proxy fans out prefetches for a user it
// has never re-observed — warmth beyond the disk tier.
func TestRestoredExemplarsPrefetchWithoutRetraining(t *testing.T) {
	dir := t.TempDir()
	g := sharedGraph()
	up, itemCalls := persistLabUpstream()

	p1 := New(Options{Graph: g, Upstream: up, StateDir: dir})
	trainAndWarm(t, p1)
	if err := p1.SnapshotNow(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	p1.Close()

	// Drop the disk tier so only the snapshot's exemplars can produce hits.
	if err := os.RemoveAll(filepath.Join(dir, "cache")); err != nil {
		t.Fatal(err)
	}

	p2 := New(Options{Graph: g, Upstream: up, StateDir: dir})
	defer p2.Close()
	if got := p2.RestoreOutcome(); got != RestoreWarm {
		t.Fatalf("restore outcome = %q (%s), want %q", got, p2.RestoreDetail(), RestoreWarm)
	}

	// Alice's list view on the restarted proxy must fan out prefetches using
	// her restored exemplar — no fresh /item teaching request happened here.
	alice := &proxyTransport{p: p2, user: "1.1.1.1"}
	if _, err := alice.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/list"}); err != nil {
		t.Fatal(err)
	}
	p2.Drain()

	hits, total := replayItems(t, p2, "4.4.4.4", itemCalls)
	if hits != total {
		t.Fatalf("restored exemplar produced %d/%d hits, want all", hits, total)
	}
}

// TestCorruptSnapshotColdStart: with every snapshot rung corrupt, the proxy
// boots cold, counts the failure, purges the unvouched disk tier, and still
// serves traffic. No panic, no partial state.
func TestCorruptSnapshotColdStart(t *testing.T) {
	dir := t.TempDir()
	g := sharedGraph()
	up, _ := persistLabUpstream()

	p1 := New(Options{Graph: g, Upstream: up, StateDir: dir})
	trainAndWarm(t, p1)
	if err := p1.SnapshotNow(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := p1.SnapshotNow(); err != nil { // rotates a .prev rung too
		t.Fatalf("snapshot: %v", err)
	}
	p1.DiskTier().Flush()
	p1.Close()

	for _, name := range []string{persist.SnapshotFile, persist.SnapshotPrevFile} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("not a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	p2 := New(Options{Graph: g, Upstream: up, StateDir: dir})
	defer p2.Close()
	if got := p2.RestoreOutcome(); got != RestoreFailed {
		t.Fatalf("restore outcome = %q, want %q", got, RestoreFailed)
	}
	if p2.RestoreFailures() == 0 {
		t.Fatal("failed restore was not counted")
	}
	if p2.RestoreDetail() == "" {
		t.Fatal("failed restore carries no detail")
	}
	// The spilled cache entries have no fingerprint to vouch for them once
	// the snapshot is gone; a cold start must not serve them.
	if n := p2.DiskTier().Metrics().Entries; n != 0 {
		t.Fatalf("disk tier kept %d entries after failed restore, want 0", n)
	}

	// Cold but alive: the proxy serves from origin.
	tr := &proxyTransport{p: p2, user: "5.5.5.5"}
	resp, err := tr.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/item",
		Query: []httpmsg.Field{{Key: "id", Value: "1"}}})
	if err != nil || resp.Status != 200 {
		t.Fatalf("cold proxy failed to serve: %v %+v", err, resp)
	}
}

// TestFingerprintMismatchColdStart: a snapshot taken under a different
// signature graph must not be applied — learned wildcards and dependencies
// are only meaningful against the graph that produced them.
func TestFingerprintMismatchColdStart(t *testing.T) {
	dir := t.TempDir()
	up, _ := persistLabUpstream()

	p1 := New(Options{Graph: sharedGraph(), Upstream: up, StateDir: dir})
	trainAndWarm(t, p1)
	if err := p1.SnapshotNow(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	p1.DiskTier().Flush()
	p1.Close()

	// Same app, different build: one extra signature changes the fingerprint.
	g2 := sharedGraph()
	g2.Add(&sig.Signature{ID: "t:extra#0", Method: "GET", URI: sig.Literal("h.example/extra")})

	p2 := New(Options{Graph: g2, Upstream: up, StateDir: dir})
	defer p2.Close()
	if got := p2.RestoreOutcome(); got != RestoreFailed {
		t.Fatalf("restore outcome = %q, want %q", got, RestoreFailed)
	}
	if p2.RestoreFailures() == 0 {
		t.Fatal("fingerprint mismatch was not counted as a failed restore")
	}
	if n := p2.DiskTier().Metrics().Entries; n != 0 {
		t.Fatalf("disk tier kept %d entries across a graph change, want 0", n)
	}
}

// TestPersistDisabledStats: without a state directory the persist block
// reports disabled/zero series, and persistence accessors stay nil-safe.
func TestPersistDisabledStats(t *testing.T) {
	g := sharedGraph()
	up, _ := persistLabUpstream()
	p := New(Options{Graph: g, Upstream: up})
	defer p.Close()

	if got := p.RestoreOutcome(); got != RestoreDisabled {
		t.Fatalf("restore outcome = %q, want %q", got, RestoreDisabled)
	}
	if p.DiskTier() != nil {
		t.Fatal("disk tier present without a state dir")
	}
	if err := p.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow without persistence = %v, want nil", err)
	}
	ps := p.statsV1().Persist
	if ps.Enabled || ps.RestoreOutcome != RestoreDisabled || ps.SnapshotAgeMs != -1 {
		t.Fatalf("disabled persist block = %+v", ps)
	}
}
