// Package sched implements the proxy's prefetch priority scheduling (§5 of
// the paper): multiple prefetch requests can be outstanding at any moment,
// and to minimize overall response time the proxy prioritizes signatures
// whose requests take longer to complete and whose prefetched responses are
// hit more often, using a linear combination of the two as the priority.
package sched

import (
	"sync"
)

// Task is one queued prefetch.
type Task struct {
	// SigID identifies the signature the prefetch belongs to; priorities
	// are computed per signature.
	SigID string
	// Run performs the prefetch.
	Run func()
}

// PriorityFunc maps a signature to its current priority (higher runs first).
// It is consulted at dispatch time, so priorities reflect the latest
// response-time and hit-rate statistics.
type PriorityFunc func(sigID string) float64

// Scheduler runs prefetch tasks on a bounded worker pool, highest priority
// first.
type Scheduler struct {
	priority PriorityFunc

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Task
	closed  bool
	wg      sync.WaitGroup
	pending sync.WaitGroup
	// maxQueue bounds queued tasks; excess submissions are dropped (the
	// next predecessor observation will regenerate them).
	maxQueue int
}

// New starts a scheduler with the given worker count (minimum 1) and
// priority function.
func New(workers int, priority PriorityFunc) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{priority: priority, maxQueue: 4096}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Submit enqueues a task. It reports false when the scheduler is closed or
// the queue is full.
func (s *Scheduler) Submit(t *Task) bool {
	s.mu.Lock()
	if s.closed || len(s.queue) >= s.maxQueue {
		s.mu.Unlock()
		return false
	}
	s.queue = append(s.queue, t)
	s.pending.Add(1)
	s.mu.Unlock()
	s.cond.Signal()
	return true
}

// QueueLen reports the number of queued (not yet running) tasks.
func (s *Scheduler) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Drain blocks until every submitted task has finished running. Useful in
// tests and the verification phase; live proxies never call it.
func (s *Scheduler) Drain() {
	s.pending.Wait()
}

// Close stops the workers after the current tasks finish; queued tasks are
// discarded.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for range s.queue {
		s.pending.Done()
	}
	s.queue = nil
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		// Pick the highest-priority task. Queues are short (bounded) and
		// priorities change between polls, so a scan beats a stale heap.
		best := 0
		bestP := s.priority(s.queue[0].SigID)
		for i := 1; i < len(s.queue); i++ {
			if p := s.priority(s.queue[i].SigID); p > bestP {
				best, bestP = i, p
			}
		}
		t := s.queue[best]
		s.queue[best] = s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.mu.Unlock()

		t.Run()
		s.pending.Done()
	}
}
