// Package sched implements the proxy's prefetch priority scheduling (§5 of
// the paper): multiple prefetch requests can be outstanding at any moment,
// and to minimize overall response time the proxy prioritizes signatures
// whose requests take longer to complete and whose prefetched responses are
// hit more often, using a linear combination of the two as the priority.
//
// Beyond the paper, the scheduler is overload-safe: tasks carry a priority
// class (foreground refresh > shallow prefetch > deep prefetch) so that when
// the queue fills, speculative work is shed first; tasks carry an enqueue
// deadline so stale work is dropped at dispatch instead of run; every shed is
// counted per class and reason; and a panicking task is recovered without
// taking down the worker pool or deadlocking Drain.
package sched

import (
	"container/heap"
	"sync"
	"time"
)

// Class ranks queued work by how close it is to a waiting client. Lower
// values dispatch first and are admitted deeper into a filling queue.
type Class int

const (
	// ClassForeground is client-adjacent work: refreshing an entry a client
	// just found expired. It may use the whole queue.
	ClassForeground Class = iota
	// ClassShallow is a first-hop prefetch spawned by live client traffic.
	// It is admitted into at most 3/4 of the queue.
	ClassShallow
	// ClassDeep is speculative chained prefetching (depth ≥ the configured
	// deep threshold). It is admitted into at most 1/2 of the queue, so it
	// is the first work shed under pressure.
	ClassDeep

	numClasses
)

// String names the class for telemetry.
func (c Class) String() string {
	switch c {
	case ClassForeground:
		return "foreground"
	case ClassShallow:
		return "shallow"
	case ClassDeep:
		return "deep"
	}
	return "unknown"
}

// Task is one queued prefetch.
type Task struct {
	// SigID identifies the signature the prefetch belongs to; priorities
	// are computed per signature.
	SigID string
	// Class is the task's shed-ordering class; the zero value is
	// ClassForeground.
	Class Class
	// Deadline, when non-zero, sheds the task if it has not started running
	// by then: it is rejected at Submit when already past, and dropped at
	// dispatch when it expired while queued.
	Deadline time.Time
	// Run performs the prefetch.
	Run func()
	// Abandon, when non-nil, is called once if the scheduler sheds the task
	// after accepting it (deadline expiry at dispatch, or discard at Close)
	// so the submitter can release claims tied to the task.
	Abandon func()
	// OnPanic, when non-nil, receives the recovered value if Run panics.
	// The panic never escapes the worker pool.
	OnPanic func(v any)
}

// PriorityFunc maps a signature to its current priority (higher runs first
// within a class). It is consulted when a task moves from the submission
// inbox into the dispatch heap, so each task's priority is computed exactly
// once per dispatch batch rather than once per queued task per dispatch.
type PriorityFunc func(sigID string) float64

// Config configures a Scheduler.
type Config struct {
	// Workers is the pool size (minimum 1).
	Workers int
	// Priority ranks signatures within a class; nil means FIFO.
	Priority PriorityFunc
	// MaxQueue bounds queued tasks (default 4096). Per-class admission caps
	// derive from it: foreground may fill the whole queue, shallow 3/4 of
	// it, deep 1/2.
	MaxQueue int
	// Now supplies time for deadline checks; defaults to time.Now.
	// Injected so frozen-clock tests drive expiry deterministically.
	Now func() time.Time
}

// ClassMetrics are one class's lifetime counters.
type ClassMetrics struct {
	// Submitted counts tasks accepted into the queue.
	Submitted int64
	// Ran counts tasks dispatched to a worker.
	Ran int64
	// DroppedFull / DroppedClosed / DroppedExpired count sheds by cause:
	// the class's queue share was full at Submit, the scheduler was closed
	// (at Submit or with the task still queued), or the task's deadline
	// passed (at Submit or at dispatch).
	DroppedFull    int64
	DroppedClosed  int64
	DroppedExpired int64
}

// Dropped is the class's total shed count.
func (c ClassMetrics) Dropped() int64 {
	return c.DroppedFull + c.DroppedClosed + c.DroppedExpired
}

// Metrics is a point-in-time snapshot of the scheduler's counters.
type Metrics struct {
	Foreground ClassMetrics
	Shallow    ClassMetrics
	Deep       ClassMetrics
	// Panics counts recovered task panics.
	Panics int64
}

// ByClass returns the snapshot for one class.
func (m Metrics) ByClass(c Class) ClassMetrics {
	switch c {
	case ClassShallow:
		return m.Shallow
	case ClassDeep:
		return m.Deep
	default:
		return m.Foreground
	}
}

// item is one heap entry: the task plus its priority snapshot.
type item struct {
	t    *Task
	prio float64
	seq  int64
}

// taskHeap orders by class first (foreground before speculative), snapshot
// priority second, submission order third.
type taskHeap []item

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].t.Class != h[j].t.Class {
		return h[i].t.Class < h[j].t.Class
	}
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = item{}
	*h = old[:n-1]
	return it
}

// Scheduler runs prefetch tasks on a bounded worker pool, foreground class
// and highest priority first.
type Scheduler struct {
	priority PriorityFunc
	now      func() time.Time

	mu   sync.Mutex
	cond *sync.Cond
	// inbox collects submissions; workers batch-move it into ready,
	// computing each task's priority once at that point.
	inbox      []*Task
	ready      taskHeap
	seq        int64
	closed     bool
	wg         sync.WaitGroup
	pending    sync.WaitGroup
	maxQueue   int
	classLimit [numClasses]int
	classes    [numClasses]ClassMetrics
	panics     int64
}

// New starts a scheduler with the given worker count (minimum 1) and
// priority function, all other knobs defaulted.
func New(workers int, priority PriorityFunc) *Scheduler {
	return NewWith(Config{Workers: workers, Priority: priority})
}

// NewWith starts a scheduler from a full Config.
func NewWith(cfg Config) *Scheduler {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4096
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Priority == nil {
		cfg.Priority = func(string) float64 { return 0 }
	}
	s := &Scheduler{priority: cfg.Priority, now: cfg.Now, maxQueue: cfg.MaxQueue}
	s.classLimit[ClassForeground] = cfg.MaxQueue
	s.classLimit[ClassShallow] = atLeast1(cfg.MaxQueue * 3 / 4)
	s.classLimit[ClassDeep] = atLeast1(cfg.MaxQueue / 2)
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

func atLeast1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

func classIdx(c Class) Class {
	if c < 0 || c >= numClasses {
		return ClassDeep
	}
	return c
}

// Submit enqueues a task. It reports false when the scheduler is closed,
// the task's class has exhausted its queue share, or the task's deadline is
// already past; each rejection is counted per class and cause. Abandon is
// NOT called on a rejected Submit — the caller still owns the task.
func (s *Scheduler) Submit(t *Task) bool {
	c := classIdx(t.Class)
	s.mu.Lock()
	if s.closed {
		s.classes[c].DroppedClosed++
		s.mu.Unlock()
		return false
	}
	if !t.Deadline.IsZero() && s.now().After(t.Deadline) {
		s.classes[c].DroppedExpired++
		s.mu.Unlock()
		return false
	}
	if len(s.inbox)+len(s.ready) >= s.classLimit[c] {
		s.classes[c].DroppedFull++
		s.mu.Unlock()
		return false
	}
	s.classes[c].Submitted++
	s.inbox = append(s.inbox, t)
	s.pending.Add(1)
	s.mu.Unlock()
	s.cond.Signal()
	return true
}

// QueueLen reports the number of queued (not yet running) tasks.
func (s *Scheduler) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inbox) + len(s.ready)
}

// Cap reports the queue bound.
func (s *Scheduler) Cap() int { return s.maxQueue }

// Metrics snapshots the shed/run counters.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{
		Foreground: s.classes[ClassForeground],
		Shallow:    s.classes[ClassShallow],
		Deep:       s.classes[ClassDeep],
		Panics:     s.panics,
	}
}

// Drain blocks until every accepted task has finished running or been shed.
// Useful in tests and the verification phase; live proxies never call it.
func (s *Scheduler) Drain() {
	s.pending.Wait()
}

// Close stops the workers after the current tasks finish; queued tasks are
// discarded (counted as closed drops, with Abandon called on each).
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	orphans := make([]*Task, 0, len(s.inbox)+len(s.ready))
	orphans = append(orphans, s.inbox...)
	for _, it := range s.ready {
		orphans = append(orphans, it.t)
	}
	s.inbox, s.ready = nil, nil
	for _, t := range orphans {
		s.classes[classIdx(t.Class)].DroppedClosed++
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	for _, t := range orphans {
		s.abandon(t)
	}
	s.wg.Wait()
}

// mergeInboxLocked moves submissions into the dispatch heap, computing each
// distinct signature's priority exactly once for the batch.
func (s *Scheduler) mergeInboxLocked() {
	if len(s.inbox) == 0 {
		return
	}
	prios := make(map[string]float64, len(s.inbox))
	for _, t := range s.inbox {
		p, ok := prios[t.SigID]
		if !ok {
			p = s.priority(t.SigID)
			prios[t.SigID] = p
		}
		s.seq++
		heap.Push(&s.ready, item{t: t, prio: p, seq: s.seq})
	}
	s.inbox = s.inbox[:0]
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.inbox) == 0 && len(s.ready) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		s.mergeInboxLocked()
		var expired []*Task
		var t *Task
		now := s.now()
		for len(s.ready) > 0 {
			it := heap.Pop(&s.ready).(item)
			if !it.t.Deadline.IsZero() && now.After(it.t.Deadline) {
				s.classes[classIdx(it.t.Class)].DroppedExpired++
				expired = append(expired, it.t)
				continue
			}
			t = it.t
			s.classes[classIdx(t.Class)].Ran++
			break
		}
		s.mu.Unlock()
		for _, e := range expired {
			s.abandon(e)
		}
		if t == nil {
			continue
		}
		s.runTask(t)
	}
}

// abandon settles one accepted-but-shed task: its Abandon hook runs (panics
// contained) and its pending count is released so Drain cannot deadlock.
func (s *Scheduler) abandon(t *Task) {
	defer s.pending.Done()
	if t.Abandon != nil {
		safeCall(func() { t.Abandon() })
	}
}

// runTask executes one task with panic containment: Done is deferred so a
// panic can neither kill the process nor strand Drain, and the recovered
// value is handed to the task's OnPanic hook.
func (s *Scheduler) runTask(t *Task) {
	defer s.pending.Done()
	defer func() {
		if v := recover(); v != nil {
			s.mu.Lock()
			s.panics++
			s.mu.Unlock()
			if t.OnPanic != nil {
				safeCall(func() { t.OnPanic(v) })
			}
		}
	}()
	t.Run()
}

// safeCall runs a hook, swallowing any panic it raises.
func safeCall(f func()) {
	defer func() { _ = recover() }()
	f()
}
