package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunsAllTasks(t *testing.T) {
	s := New(4, func(string) float64 { return 1 })
	defer s.Close()
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		ok := s.Submit(&Task{SigID: "a", Run: func() { n.Add(1) }})
		if !ok {
			t.Fatal("Submit refused")
		}
	}
	s.Drain()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestPriorityOrdering(t *testing.T) {
	// Single worker; stall it, queue low/high tasks, verify high runs first.
	prio := map[string]float64{"low": 1, "high": 10, "block": 0}
	s := New(1, func(id string) float64 { return prio[id] })
	defer s.Close()

	release := make(chan struct{})
	s.Submit(&Task{SigID: "block", Run: func() { <-release }})
	time.Sleep(20 * time.Millisecond) // let the worker pick up the blocker

	var mu sync.Mutex
	var order []string
	for i := 0; i < 3; i++ {
		s.Submit(&Task{SigID: "low", Run: func() { mu.Lock(); order = append(order, "low"); mu.Unlock() }})
	}
	for i := 0; i < 3; i++ {
		s.Submit(&Task{SigID: "high", Run: func() { mu.Lock(); order = append(order, "high"); mu.Unlock() }})
	}
	close(release)
	s.Drain()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 6 {
		t.Fatalf("ran %d tasks", len(order))
	}
	for i := 0; i < 3; i++ {
		if order[i] != "high" {
			t.Fatalf("order = %v, want high first", order)
		}
	}
}

func TestCloseRejectsSubmit(t *testing.T) {
	s := New(2, func(string) float64 { return 0 })
	s.Close()
	if s.Submit(&Task{SigID: "x", Run: func() {}}) {
		t.Fatal("Submit accepted after Close")
	}
}

func TestCloseDiscardQueuedAndDrainReturns(t *testing.T) {
	s := New(1, func(string) float64 { return 0 })
	release := make(chan struct{})
	s.Submit(&Task{SigID: "block", Run: func() { <-release }})
	time.Sleep(10 * time.Millisecond)
	var ran atomic.Bool
	s.Submit(&Task{SigID: "q", Run: func() { ran.Store(true) }})
	close(release)
	s.Close()
	done := make(chan struct{})
	go func() { s.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Drain hung after Close")
	}
	// The queued task may or may not have started before Close; what must
	// hold is that Close+Drain terminate.
	_ = ran.Load()
}

func TestQueueBound(t *testing.T) {
	s := New(1, func(string) float64 { return 0 })
	defer s.Close()
	release := make(chan struct{})
	s.Submit(&Task{SigID: "block", Run: func() { <-release }})
	time.Sleep(10 * time.Millisecond)
	accepted := 0
	for i := 0; i < 5000; i++ {
		if s.Submit(&Task{SigID: "x", Run: func() {}}) {
			accepted++
		}
	}
	if accepted > 4096 {
		t.Fatalf("queue accepted %d tasks, bound is 4096", accepted)
	}
	close(release)
	s.Drain()
}

func TestQueueLen(t *testing.T) {
	s := New(1, func(string) float64 { return 0 })
	defer s.Close()
	release := make(chan struct{})
	s.Submit(&Task{SigID: "block", Run: func() { <-release }})
	time.Sleep(10 * time.Millisecond)
	s.Submit(&Task{SigID: "x", Run: func() {}})
	s.Submit(&Task{SigID: "y", Run: func() {}})
	if n := s.QueueLen(); n != 2 {
		t.Fatalf("QueueLen = %d, want 2", n)
	}
	close(release)
	s.Drain()
}

func TestDoubleCloseSafe(t *testing.T) {
	s := New(2, func(string) float64 { return 0 })
	s.Close()
	s.Close()
}
