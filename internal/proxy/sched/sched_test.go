package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunsAllTasks(t *testing.T) {
	s := New(4, func(string) float64 { return 1 })
	defer s.Close()
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		ok := s.Submit(&Task{SigID: "a", Run: func() { n.Add(1) }})
		if !ok {
			t.Fatal("Submit refused")
		}
	}
	s.Drain()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestPriorityOrdering(t *testing.T) {
	// Single worker; stall it, queue low/high tasks, verify high runs first.
	prio := map[string]float64{"low": 1, "high": 10, "block": 0}
	s := New(1, func(id string) float64 { return prio[id] })
	defer s.Close()

	release := make(chan struct{})
	s.Submit(&Task{SigID: "block", Run: func() { <-release }})
	time.Sleep(20 * time.Millisecond) // let the worker pick up the blocker

	var mu sync.Mutex
	var order []string
	for i := 0; i < 3; i++ {
		s.Submit(&Task{SigID: "low", Run: func() { mu.Lock(); order = append(order, "low"); mu.Unlock() }})
	}
	for i := 0; i < 3; i++ {
		s.Submit(&Task{SigID: "high", Run: func() { mu.Lock(); order = append(order, "high"); mu.Unlock() }})
	}
	close(release)
	s.Drain()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 6 {
		t.Fatalf("ran %d tasks", len(order))
	}
	for i := 0; i < 3; i++ {
		if order[i] != "high" {
			t.Fatalf("order = %v, want high first", order)
		}
	}
}

func TestClassOrdering(t *testing.T) {
	// Equal priorities: dispatch must go foreground, shallow, deep.
	s := New(1, func(string) float64 { return 1 })
	defer s.Close()

	release := make(chan struct{})
	s.Submit(&Task{SigID: "block", Run: func() { <-release }})
	time.Sleep(20 * time.Millisecond)

	var mu sync.Mutex
	var order []Class
	mk := func(c Class) *Task {
		return &Task{SigID: "x", Class: c, Run: func() { mu.Lock(); order = append(order, c); mu.Unlock() }}
	}
	s.Submit(mk(ClassDeep))
	s.Submit(mk(ClassShallow))
	s.Submit(mk(ClassForeground))
	s.Submit(mk(ClassDeep))
	close(release)
	s.Drain()

	mu.Lock()
	defer mu.Unlock()
	want := []Class{ClassForeground, ClassShallow, ClassDeep, ClassDeep}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCloseRejectsSubmit(t *testing.T) {
	s := New(2, func(string) float64 { return 0 })
	s.Close()
	if s.Submit(&Task{SigID: "x", Run: func() {}}) {
		t.Fatal("Submit accepted after Close")
	}
	if m := s.Metrics(); m.Foreground.DroppedClosed != 1 {
		t.Fatalf("DroppedClosed = %d, want 1", m.Foreground.DroppedClosed)
	}
}

func TestCloseDiscardQueuedAndDrainReturns(t *testing.T) {
	s := New(1, func(string) float64 { return 0 })
	release := make(chan struct{})
	s.Submit(&Task{SigID: "block", Run: func() { <-release }})
	time.Sleep(10 * time.Millisecond)
	var ran atomic.Bool
	var abandoned atomic.Bool
	s.Submit(&Task{SigID: "q", Run: func() { ran.Store(true) }, Abandon: func() { abandoned.Store(true) }})
	close(release)
	s.Close()
	done := make(chan struct{})
	go func() { s.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Drain hung after Close")
	}
	// The queued task either started before Close (ran) or was discarded
	// (abandoned) — never both, never neither.
	if ran.Load() == abandoned.Load() {
		t.Fatalf("ran=%v abandoned=%v, want exactly one", ran.Load(), abandoned.Load())
	}
}

func TestQueueBound(t *testing.T) {
	s := New(1, func(string) float64 { return 0 })
	defer s.Close()
	release := make(chan struct{})
	s.Submit(&Task{SigID: "block", Run: func() { <-release }})
	time.Sleep(10 * time.Millisecond)
	accepted := 0
	for i := 0; i < 5000; i++ {
		if s.Submit(&Task{SigID: "x", Run: func() {}}) {
			accepted++
		}
	}
	if accepted > 4096 {
		t.Fatalf("queue accepted %d tasks, bound is 4096", accepted)
	}
	if m := s.Metrics(); m.Foreground.DroppedFull == 0 {
		t.Fatal("no queue-full drops counted")
	}
	close(release)
	s.Drain()
}

func TestClassQueueShares(t *testing.T) {
	// MaxQueue 8 → deep admits 4, shallow 6, foreground 8. Stall the worker
	// so submissions only queue.
	s := NewWith(Config{Workers: 1, MaxQueue: 8})
	defer s.Close()
	release := make(chan struct{})
	s.Submit(&Task{SigID: "block", Run: func() { <-release }})
	time.Sleep(10 * time.Millisecond)

	accept := func(c Class, n int) int {
		got := 0
		for i := 0; i < n; i++ {
			if s.Submit(&Task{SigID: "x", Class: c, Run: func() {}}) {
				got++
			}
		}
		return got
	}
	if got := accept(ClassDeep, 10); got != 4 {
		t.Fatalf("deep accepted %d, want 4 (half of 8)", got)
	}
	if got := accept(ClassShallow, 10); got != 2 {
		t.Fatalf("shallow accepted %d, want 2 (6-slot share, 4 used)", got)
	}
	if got := accept(ClassForeground, 10); got != 2 {
		t.Fatalf("foreground accepted %d, want 2 (8-slot share, 6 used)", got)
	}
	m := s.Metrics()
	if m.Deep.DroppedFull != 6 || m.Shallow.DroppedFull != 8 || m.Foreground.DroppedFull != 8 {
		t.Fatalf("drop counters = %+v", m)
	}
	close(release)
	s.Drain()
}

func TestQueueLen(t *testing.T) {
	s := New(1, func(string) float64 { return 0 })
	defer s.Close()
	release := make(chan struct{})
	s.Submit(&Task{SigID: "block", Run: func() { <-release }})
	time.Sleep(10 * time.Millisecond)
	s.Submit(&Task{SigID: "x", Run: func() {}})
	s.Submit(&Task{SigID: "y", Run: func() {}})
	if n := s.QueueLen(); n != 2 {
		t.Fatalf("QueueLen = %d, want 2", n)
	}
	close(release)
	s.Drain()
}

func TestDoubleCloseSafe(t *testing.T) {
	s := New(2, func(string) float64 { return 0 })
	s.Close()
	s.Close()
}

// TestPanicRecovered is the regression test for the seed's panic-unsafety:
// t.Run() without recover and a non-deferred pending.Done meant one
// panicking task crashed the process and would have deadlocked Drain.
func TestPanicRecovered(t *testing.T) {
	s := New(2, func(string) float64 { return 0 })
	defer s.Close()
	var got atomic.Value
	s.Submit(&Task{SigID: "boom", Run: func() { panic("kaboom") }, OnPanic: func(v any) { got.Store(v) }})

	done := make(chan struct{})
	go func() { s.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Drain hung after a panicking task")
	}
	if v := got.Load(); v != "kaboom" {
		t.Fatalf("OnPanic got %v, want kaboom", v)
	}
	if m := s.Metrics(); m.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", m.Panics)
	}
	// The pool must keep serving.
	var ran atomic.Bool
	s.Submit(&Task{SigID: "after", Run: func() { ran.Store(true) }})
	s.Drain()
	if !ran.Load() {
		t.Fatal("pool dead after recovered panic")
	}
}

func TestSubmitRejectsExpiredDeadline(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewWith(Config{Workers: 1, Now: func() time.Time { return now }})
	defer s.Close()
	if s.Submit(&Task{SigID: "x", Class: ClassDeep, Deadline: now.Add(-time.Second), Run: func() {}}) {
		t.Fatal("Submit accepted an already-expired task")
	}
	if m := s.Metrics(); m.Deep.DroppedExpired != 1 {
		t.Fatalf("DroppedExpired = %d, want 1", m.Deep.DroppedExpired)
	}
}

func TestDeadlineExpiredAtDispatch(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	s := NewWith(Config{Workers: 1, Now: clock})
	defer s.Close()

	release := make(chan struct{})
	s.Submit(&Task{SigID: "block", Run: func() { <-release }})
	time.Sleep(10 * time.Millisecond)

	var ran, abandoned atomic.Bool
	s.Submit(&Task{
		SigID: "stale", Class: ClassDeep, Deadline: now.Add(time.Second),
		Run:     func() { ran.Store(true) },
		Abandon: func() { abandoned.Store(true) },
	})
	mu.Lock()
	now = now.Add(time.Minute) // task expires while queued
	mu.Unlock()
	close(release)
	s.Drain()

	if ran.Load() {
		t.Fatal("expired task ran")
	}
	if !abandoned.Load() {
		t.Fatal("expired task not abandoned")
	}
	if m := s.Metrics(); m.Deep.DroppedExpired != 1 || m.Deep.Ran != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestStressSubmitCloseDrain hammers Submit/QueueLen/Metrics concurrently
// with Close and Drain; run under -race it is the scheduler's concurrency
// regression test.
func TestStressSubmitCloseDrain(t *testing.T) {
	s := NewWith(Config{Workers: 4, MaxQueue: 64})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				cls := Class(i % 3)
				task := &Task{SigID: "s", Class: cls, Run: func() {}, Abandon: func() {}}
				if i%97 == 0 {
					task.Run = func() { panic("stress") }
				}
				s.Submit(task)
				if i%25 == 0 {
					_ = s.QueueLen()
					_ = s.Metrics()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		s.Close()
	}()
	wg.Wait()
	done := make(chan struct{})
	go func() { s.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain hung under concurrent Submit/Close")
	}
	// Accounting must balance: everything accepted either ran or was shed.
	m := s.Metrics()
	for _, c := range []ClassMetrics{m.Foreground, m.Shallow, m.Deep} {
		if c.Submitted != c.Ran+c.DroppedClosed+c.DroppedExpired {
			t.Fatalf("unbalanced class accounting: %+v", c)
		}
	}
}
