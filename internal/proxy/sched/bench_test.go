package sched

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// benchPriority mimics the proxy's Stats.Priority: a map lookup plus
// arithmetic behind a mutex. The seed scheduler called it O(queue) times per
// dispatch under the scheduler lock; the snapshot heap calls it once per
// submitted task.
type benchPriority struct {
	mu    sync.Mutex
	prios map[string]float64
}

func (b *benchPriority) get(id string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.prios[id] + 0.5
}

func newBenchPriority(sigs int) *benchPriority {
	p := &benchPriority{prios: make(map[string]float64, sigs)}
	for i := 0; i < sigs; i++ {
		p.prios[fmt.Sprintf("sig#%d", i)] = float64(i % 17)
	}
	return p
}

// BenchmarkDispatchDepth4096 measures dispatch throughput at the full queue
// bound: 4096 queued tasks across 64 signatures drained by the pool. The
// seed's per-dispatch scan was O(n·PriorityFunc) under the lock (~16.7M
// priority calls to drain this queue); the snapshot heap computes 4096.
func BenchmarkDispatchDepth4096(b *testing.B) {
	const depth = 4096
	const sigs = 64
	pr := newBenchPriority(sigs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewWith(Config{Workers: 4, Priority: pr.get, MaxQueue: depth})
		// Stall the pool so the whole batch queues before dispatch starts.
		release := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(4)
		for w := 0; w < 4; w++ {
			s.Submit(&Task{SigID: "block", Run: func() { wg.Done(); <-release }})
		}
		wg.Wait()
		for j := 0; j < depth-4; j++ {
			s.Submit(&Task{
				SigID: fmt.Sprintf("sig#%d", j%sigs),
				Class: Class(j % 3),
				Run:   func() {},
			})
		}
		b.StartTimer()
		close(release)
		s.Drain()
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkSubmit measures the enqueue path alone (bound checks, class
// accounting) with the pool stalled.
func BenchmarkSubmit(b *testing.B) {
	pr := newBenchPriority(64)
	s := NewWith(Config{Workers: 1, Priority: pr.get, MaxQueue: b.N + 2})
	defer s.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	s.Submit(&Task{SigID: "block", Run: func() { close(started); <-release }})
	<-started
	deadline := time.Now().Add(time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(&Task{SigID: "sig#1", Class: ClassShallow, Deadline: deadline, Run: func() {}})
	}
	b.StopTimer()
	close(release)
	s.Drain()
}
