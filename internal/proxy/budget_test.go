package proxy

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"appx/internal/httpmsg"
)

func testBudgetProxy(t *testing.T, budget time.Duration) *Proxy {
	t.Helper()
	p := New(Options{
		Graph: sharedGraph(),
		Upstream: UpstreamFunc(func(context.Context, *httpmsg.Request) (*httpmsg.Response, error) {
			return &httpmsg.Response{Status: 200, Body: []byte("ok")}, nil
		}),
		Workers:       1,
		RequestBudget: budget,
	})
	t.Cleanup(p.Close)
	return p
}

// TestBudgetAccept pins the clamping matrix: local-only, inherited-only,
// and the min of both — a budget never grows across hops — plus counter and
// header-stripping behaviour.
func TestBudgetAccept(t *testing.T) {
	req := func(headerMs string) *httpmsg.Request {
		r := &httpmsg.Request{Method: "GET", Host: "h.example", Path: "/x"}
		if headerMs != "" {
			r.SetHeader(budgetHeader, headerMs)
		}
		return r
	}

	t.Run("local only", func(t *testing.T) {
		p := testBudgetProxy(t, 500*time.Millisecond)
		b := p.acceptBudget(req(""))
		if !b.active() {
			t.Fatal("local budget not applied")
		}
		if rem := b.remaining(p.opts.Now()); rem <= 0 || rem > 500*time.Millisecond {
			t.Fatalf("remaining = %v, want (0, 500ms]", rem)
		}
	})

	t.Run("inherited smaller wins", func(t *testing.T) {
		p := testBudgetProxy(t, 500*time.Millisecond)
		r := req("100")
		b := p.acceptBudget(r)
		if rem := b.remaining(p.opts.Now()); rem > 100*time.Millisecond {
			t.Fatalf("remaining = %v, want <= 100ms", rem)
		}
		if _, still := r.GetHeader(budgetHeader); still {
			t.Fatal("budget header not stripped")
		}
		if p.budget.inherited.Load() != 1 {
			t.Fatalf("inherited = %d, want 1", p.budget.inherited.Load())
		}
		if p.budget.clamped.Load() != 0 {
			t.Fatalf("clamped = %d, want 0", p.budget.clamped.Load())
		}
	})

	t.Run("inherited larger clamps to local", func(t *testing.T) {
		p := testBudgetProxy(t, 200*time.Millisecond)
		b := p.acceptBudget(req("5000"))
		if rem := b.remaining(p.opts.Now()); rem > 200*time.Millisecond {
			t.Fatalf("remaining = %v, want <= 200ms (clamped)", rem)
		}
		if p.budget.clamped.Load() != 1 {
			t.Fatalf("clamped = %d, want 1", p.budget.clamped.Load())
		}
	})

	t.Run("no budget anywhere", func(t *testing.T) {
		p := testBudgetProxy(t, 0)
		if b := p.acceptBudget(req("")); b.active() {
			t.Fatal("budget active with neither header nor local limit")
		}
	})

	t.Run("inherited without local limit", func(t *testing.T) {
		p := testBudgetProxy(t, 0)
		b := p.acceptBudget(req("250"))
		if !b.active() {
			t.Fatal("inherited budget ignored without a local limit")
		}
		if rem := b.remaining(p.opts.Now()); rem > 250*time.Millisecond {
			t.Fatalf("remaining = %v, want <= 250ms", rem)
		}
	})

	t.Run("malformed header ignored", func(t *testing.T) {
		p := testBudgetProxy(t, 0)
		for _, v := range []string{"bogus", "-5", "0"} {
			r := req(v)
			if b := p.acceptBudget(r); b.active() {
				t.Fatalf("header %q produced an active budget", v)
			}
			if _, still := r.GetHeader(budgetHeader); still {
				t.Fatalf("header %q not stripped", v)
			}
		}
	})
}

// TestBudgetBound: the per-attempt context takes the smaller of the static
// cap and the remaining budget, and an exhausted budget expires almost
// immediately instead of hanging.
func TestBudgetBound(t *testing.T) {
	now := time.Now()

	b := reqBudget{deadline: now.Add(50 * time.Millisecond)}
	ctx, cancel := b.bound(context.Background(), now, time.Second)
	dl, ok := ctx.Deadline()
	cancel()
	if !ok || time.Until(dl) > 60*time.Millisecond {
		t.Fatalf("bound deadline = %v, want ~50ms out", time.Until(dl))
	}

	ctx, cancel = b.bound(context.Background(), now, 10*time.Millisecond)
	dl, _ = ctx.Deadline()
	cancel()
	if time.Until(dl) > 15*time.Millisecond {
		t.Fatalf("static cap should win when smaller; deadline %v out", time.Until(dl))
	}

	exhausted := reqBudget{deadline: now.Add(-time.Second)}
	ctx, cancel = b.bound(context.Background(), now, 0)
	dl, ok = ctx.Deadline()
	cancel()
	if !ok {
		t.Fatal("budget-only bound produced no deadline")
	}
	ctx, cancel = exhausted.bound(context.Background(), now, 0)
	dl, ok = ctx.Deadline()
	cancel()
	if !ok || time.Until(dl) > 5*time.Millisecond {
		t.Fatal("exhausted budget must expire nearly immediately")
	}

	none := reqBudget{}
	ctx, cancel = none.bound(context.Background(), now, 0)
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("inactive budget with no cap must not add a deadline")
	}
	cancel()

	if !exhausted.exhausted(now) || b.exhausted(now) || none.exhausted(now) {
		t.Fatal("exhausted() wrong on one of the fixtures")
	}
}

// TestBudgetHeaderValue: the propagated value is the remaining budget,
// floored at 1ms so a forwarded budget never reads as "none".
func TestBudgetHeaderValue(t *testing.T) {
	now := time.Now()
	b := reqBudget{deadline: now.Add(80 * time.Millisecond)}
	if v := b.headerValue(now); v != "80" {
		t.Fatalf("headerValue = %q, want 80", v)
	}
	spent := reqBudget{deadline: now.Add(-time.Second)}
	if v := spent.headerValue(now); v != "1" {
		t.Fatalf("headerValue exhausted = %q, want 1", v)
	}
}

// TestShedRetryAfterMode: a draining proxy's 503 carries the drain-mode
// Retry-After hint, not the generic one.
func TestShedRetryAfterMode(t *testing.T) {
	p := testBudgetProxy(t, 0)
	p.BeginDrain()
	r := httptest.NewRequest(http.MethodGet, "http://h.example/x", nil)
	w := httptest.NewRecorder()
	p.ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "5" {
		t.Fatalf("Retry-After = %q, want 5 while draining", ra)
	}
}

// TestBudgetPropagatedOverRelay boots a two-instance cluster where only the
// relaying instance has a local budget; the owner must receive and count the
// inherited budget from the hop header.
func TestBudgetPropagatedOverRelay(t *testing.T) {
	up, _ := countingUpstream()
	nodes := startClusterNodes(t, 2, sharedGraph, up, nil, func(o *Options) {
		o.RequestBudget = 2 * time.Second
	})
	addrs := []string{nodes[0].addr, nodes[1].addr}
	user := userOwnedBy(128, addrs, 1) // owned by node 1; drive via node 0
	if user == "" {
		t.Fatal("no user key found for node 1")
	}
	c := viaCluster(nodes[0].addr)
	status, _, err := clusterGet(c, user, "http://h.example/list")
	if err != nil || status != http.StatusOK {
		t.Fatalf("relayed request = %d, %v", status, err)
	}
	if nodes[0].px.ClusterStats().Forwarded == 0 {
		t.Fatal("request was not relayed")
	}
	if got := nodes[1].px.budget.inherited.Load(); got == 0 {
		t.Fatal("owner did not inherit the relayed budget")
	}
	if got := nodes[1].px.budgetV1(); got.Enabled && got.LimitMs == 0 {
		t.Fatalf("budget stats inconsistent: %+v", got)
	}
}
