package proxy

// Tests for the streaming data plane: Range/206 conformance from cached
// entries, flight attach (one origin fetch, many clients), TTFB decoupled
// from body completion, over-cap overflow behaviour, the request-body
// guard, chunk-pool leak checks, and the whole-path alloc budget.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"appx/internal/cache"
	"appx/internal/httpmsg"
	"appx/internal/sig"
)

// streamGraph is a one-signature graph: a literal GET with no dependency
// edges, so every request is a miss-path flight and nothing prefetches.
func streamGraph() *sig.Graph {
	g := sig.NewGraph("t")
	g.Add(&sig.Signature{ID: "t:big#0", Method: "GET", URI: sig.Literal("h.example/big")})
	return g
}

// notifyWriter is a ResponseWriter that signals the instant headers are
// written — the client-side first-byte observation point.
type notifyWriter struct {
	rec      *httptest.ResponseRecorder
	once     sync.Once
	headerAt chan time.Time
}

func newNotifyWriter() *notifyWriter {
	return &notifyWriter{rec: httptest.NewRecorder(), headerAt: make(chan time.Time, 1)}
}

func (w *notifyWriter) Header() http.Header { return w.rec.Header() }
func (w *notifyWriter) Flush()              {}
func (w *notifyWriter) WriteHeader(code int) {
	w.once.Do(func() { w.headerAt <- time.Now() })
	w.rec.WriteHeader(code)
}
func (w *notifyWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { w.headerAt <- time.Now() })
	return w.rec.Write(p)
}

// waitChunksReleased polls the proxy's chunk pool until every pooled chunk
// has been returned (attachers may close their readers a beat after the
// owner finishes).
func waitChunksReleased(t *testing.T, p *Proxy) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.ChunkPool().Outstanding() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("chunk pool leak: %d chunks still outstanding", p.ChunkPool().Outstanding())
}

func TestRangeConformanceCached(t *testing.T) {
	g := streamGraph()
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		t.Fatal("cached range requests must not reach the origin")
		return nil, nil
	})
	p := New(Options{Graph: g, Upstream: up})
	defer p.Close()

	body := make([]byte, 1000)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	req := &httpmsg.Request{Method: "GET", Host: "h.example", Path: "/big"}
	p.Cache().Put("9.9.9.9", req.CanonicalKey(), &cache.Entry{
		Resp: &httpmsg.Response{Status: 200, Header: []httpmsg.Field{
			{Key: "Content-Type", Value: "application/octet-stream"},
			{Key: "Etag", Value: `"v1"`},
			{Key: "Last-Modified", Value: "Wed, 21 Oct 2015 07:28:00 GMT"},
		}, Body: body},
		SigID:   "t:big#0",
		Expires: time.Now().Add(time.Hour),
	})

	serve := func(hdr map[string]string) *httptest.ResponseRecorder {
		hreq := httptest.NewRequest("GET", "http://h.example/big", nil)
		hreq.RemoteAddr = "9.9.9.9:1"
		for k, v := range hdr {
			hreq.Header.Set(k, v)
		}
		rec := httptest.NewRecorder()
		p.ServeHTTP(rec, hreq)
		return rec
	}

	cases := []struct {
		name      string
		hdr       map[string]string
		status    int
		wantBody  []byte
		wantRange string
	}{
		{"single", map[string]string{"Range": "bytes=100-199"}, 206, body[100:200], "bytes 100-199/1000"},
		{"open-ended", map[string]string{"Range": "bytes=900-"}, 206, body[900:], "bytes 900-999/1000"},
		{"suffix", map[string]string{"Range": "bytes=-100"}, 206, body[900:], "bytes 900-999/1000"},
		{"past-end-clamped", map[string]string{"Range": "bytes=990-2000"}, 206, body[990:], "bytes 990-999/1000"},
		{"unsatisfiable", map[string]string{"Range": "bytes=1000-"}, 416, nil, "bytes */1000"},
		{"suffix-zero", map[string]string{"Range": "bytes=-0"}, 416, nil, "bytes */1000"},
		{"if-range-match", map[string]string{"Range": "bytes=0-9", "If-Range": `"v1"`}, 206, body[:10], "bytes 0-9/1000"},
		{"if-range-mismatch", map[string]string{"Range": "bytes=0-9", "If-Range": `"v2"`}, 200, body, ""},
		{"if-range-lastmod-match", map[string]string{"Range": "bytes=0-9", "If-Range": "Wed, 21 Oct 2015 07:28:00 GMT"}, 206, body[:10], "bytes 0-9/1000"},
		{"if-range-lastmod-mismatch", map[string]string{"Range": "bytes=0-9", "If-Range": "Thu, 22 Oct 2015 07:28:00 GMT"}, 200, body, ""},
		{"multi-range-full", map[string]string{"Range": "bytes=0-1,5-6"}, 200, body, ""},
		{"malformed-full", map[string]string{"Range": "bytes=abc"}, 200, body, ""},
		{"non-bytes-full", map[string]string{"Range": "items=0-1"}, 200, body, ""},
		{"no-range", nil, 200, body, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := serve(tc.hdr)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d", rec.Code, tc.status)
			}
			if got := rec.Header().Get("Content-Range"); got != tc.wantRange {
				t.Fatalf("Content-Range = %q, want %q", got, tc.wantRange)
			}
			if tc.status == 416 {
				return
			}
			if !bytes.Equal(rec.Body.Bytes(), tc.wantBody) {
				t.Fatalf("body: got %d bytes, want %d (first 20: %q vs %q)",
					rec.Body.Len(), len(tc.wantBody), trunc20(rec.Body.Bytes()), trunc20(tc.wantBody))
			}
			if tc.status == 206 {
				if cl := rec.Header().Get("Content-Length"); cl != fmt.Sprint(len(tc.wantBody)) {
					t.Fatalf("Content-Length = %q, want %d", cl, len(tc.wantBody))
				}
				if ar := rec.Header().Get("Accept-Ranges"); ar != "bytes" {
					t.Fatalf("Accept-Ranges = %q", ar)
				}
			}
		})
	}
}

func trunc20(b []byte) []byte {
	if len(b) > 20 {
		return b[:20]
	}
	return b
}

// gatedUpstream streams a two-part body: part one immediately, part two only
// after release. It counts RoundTrips, making duplicate origin fetches
// visible.
type gatedUpstream struct {
	calls   atomic.Int64
	started chan struct{} // closed on first RoundTrip
	release chan struct{} // closing lets part two flow
	part1   []byte
	part2   []byte
}

func (g *gatedUpstream) RoundTrip(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
	if g.calls.Add(1) == 1 {
		close(g.started)
	}
	pr, pw := io.Pipe()
	go func() {
		pw.Write(g.part1)
		<-g.release
		pw.Write(g.part2)
		pw.Close()
	}()
	resp := &httpmsg.Response{Status: 200, Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/octet-stream"}}}
	resp.SetStream(pr)
	return resp, nil
}

// TestAttachToInFlightFetch drives three concurrent clients — the owner, a
// full-body attacher, and a mid-flight Range attacher — through one origin
// fetch. Run under -race this also exercises the spool's concurrent
// reader/writer paths.
func TestAttachToInFlightFetch(t *testing.T) {
	g := streamGraph()
	up := &gatedUpstream{
		started: make(chan struct{}),
		release: make(chan struct{}),
		part1:   bytes.Repeat([]byte("A"), 300),
		part2:   bytes.Repeat([]byte("B"), 300),
	}
	p := New(Options{Graph: g, Upstream: up, StreamChunkBytes: 128})
	defer p.Close()
	full := append(append([]byte{}, up.part1...), up.part2...)

	send := func(w http.ResponseWriter, rangeHdr string) {
		hreq := httptest.NewRequest("GET", "http://h.example/big", nil)
		hreq.RemoteAddr = "9.9.9.9:1"
		if rangeHdr != "" {
			hreq.Header.Set("Range", rangeHdr)
		}
		p.ServeHTTP(w, hreq)
	}

	var wg sync.WaitGroup
	owner := newNotifyWriter()
	wg.Add(1)
	go func() { defer wg.Done(); send(owner, "") }()
	<-up.started // the flight is registered before the origin is asked

	attacher := newNotifyWriter()
	wg.Add(1)
	go func() { defer wg.Done(); send(attacher, "") }()
	<-attacher.headerAt // headers flowed: the attacher is on the flight

	ranged := newNotifyWriter()
	wg.Add(1)
	go func() { defer wg.Done(); send(ranged, "bytes=100-149") }()
	<-ranged.headerAt

	close(up.release)
	wg.Wait()

	if got := up.calls.Load(); got != 1 {
		t.Fatalf("origin fetched %d times for three concurrent clients, want 1", got)
	}
	for name, rec := range map[string]*httptest.ResponseRecorder{"owner": owner.rec, "attacher": attacher.rec} {
		if rec.Code != 200 || !bytes.Equal(rec.Body.Bytes(), full) {
			t.Fatalf("%s: status %d, %d body bytes, want 200 with %d", name, rec.Code, rec.Body.Len(), len(full))
		}
	}
	if ranged.rec.Code != 206 {
		t.Fatalf("mid-flight range: status %d, want 206", ranged.rec.Code)
	}
	if cr := ranged.rec.Header().Get("Content-Range"); cr != "bytes 100-149/*" {
		t.Fatalf("mid-flight Content-Range = %q, want total-unknown form", cr)
	}
	if !bytes.Equal(ranged.rec.Body.Bytes(), full[100:150]) {
		t.Fatalf("mid-flight range body wrong: %q", trunc20(ranged.rec.Body.Bytes()))
	}
	if p.streamStats.attachHits.Load() != 2 {
		t.Fatalf("attach hits = %d, want 2", p.streamStats.attachHits.Load())
	}
	waitChunksReleased(t, p)
}

// TestTTFBPrecedesSlowBody proves the data plane streams: with an origin
// that sends its first bytes immediately but takes ~200ms to finish, the
// client sees headers and first bytes long before the body completes.
func TestTTFBPrecedesSlowBody(t *testing.T) {
	g := streamGraph()
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		pr, pw := io.Pipe()
		go func() {
			pw.Write(bytes.Repeat([]byte("x"), 1024)) // first bytes: immediate
			time.Sleep(200 * time.Millisecond)        // slow origin tail
			pw.Write(bytes.Repeat([]byte("y"), 1024))
			pw.Close()
		}()
		resp := &httpmsg.Response{Status: 200}
		resp.SetStream(pr)
		return resp, nil
	})
	p := New(Options{Graph: g, Upstream: up, StreamChunkBytes: 256})
	defer p.Close()

	start := time.Now()
	w := newNotifyWriter()
	hreq := httptest.NewRequest("GET", "http://h.example/big", nil)
	hreq.RemoteAddr = "9.9.9.9:1"
	p.ServeHTTP(w, hreq)
	total := time.Since(start)
	ttfb := (<-w.headerAt).Sub(start)

	if w.rec.Body.Len() != 2048 {
		t.Fatalf("body = %d bytes, want 2048", w.rec.Body.Len())
	}
	if total < 200*time.Millisecond {
		t.Fatalf("origin finished too fast for the test to mean anything: %v", total)
	}
	if ttfb > total/2 {
		t.Fatalf("TTFB %v not ≪ total %v: body was buffered, not streamed", ttfb, total)
	}
	if q := p.TTFBQuantile(0.5); q <= 0 || q > total {
		t.Fatalf("TTFB histogram quantile out of range: %v (total %v)", q, total)
	}
	waitChunksReleased(t, p)
}

// TestOverCapBodyStreamsUncached: a body over CaptureMaxBytes reaches the
// client whole but never enters the cache, and counts one overflow.
func TestOverCapBodyStreamsUncached(t *testing.T) {
	g := streamGraph()
	var calls atomic.Int64
	big := bytes.Repeat([]byte("z"), 8<<10)
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		calls.Add(1)
		resp := &httpmsg.Response{Status: 200}
		resp.SetStream(io.NopCloser(bytes.NewReader(big)))
		return resp, nil
	})
	p := New(Options{Graph: g, Upstream: up, StreamChunkBytes: 256, CaptureMaxBytes: 1024})
	defer p.Close()

	for i := 0; i < 2; i++ {
		hreq := httptest.NewRequest("GET", "http://h.example/big", nil)
		hreq.RemoteAddr = "9.9.9.9:1"
		rec := httptest.NewRecorder()
		p.ServeHTTP(rec, hreq)
		if rec.Code != 200 || rec.Body.Len() != len(big) {
			t.Fatalf("request %d: status %d, %d bytes, want full 200", i, rec.Code, rec.Body.Len())
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("origin calls = %d, want 2 (over-cap bodies must not cache)", got)
	}
	if p.streamStats.bodyOverflows.Load() < 2 {
		t.Fatalf("body overflows = %d, want ≥ 2", p.streamStats.bodyOverflows.Load())
	}
	waitChunksReleased(t, p)
}

// TestMaxBodyBytesRequestGuard: request bodies over the limit answer 413
// before any origin work.
func TestMaxBodyBytesRequestGuard(t *testing.T) {
	g := streamGraph()
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		return &httpmsg.Response{Status: 200}, nil
	})
	p := New(Options{Graph: g, Upstream: up, MaxBodyBytes: 64})
	defer p.Close()

	hreq := httptest.NewRequest("POST", "http://h.example/big", strings.NewReader(strings.Repeat("p", 100)))
	hreq.RemoteAddr = "9.9.9.9:1"
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, hreq)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized request body: status %d, want 413", rec.Code)
	}

	hreq = httptest.NewRequest("POST", "http://h.example/big", strings.NewReader(strings.Repeat("p", 64)))
	hreq.RemoteAddr = "9.9.9.9:1"
	rec = httptest.NewRecorder()
	p.ServeHTTP(rec, hreq)
	if rec.Code != 200 {
		t.Fatalf("at-limit request body: status %d, want 200", rec.Code)
	}
}

// TestPrefetchOverflowAbortsAndReleases: a prefetched body that overflows
// the capture cap is abandoned mid-stream (the origin stream is closed, not
// read to EOF), counted as an overflow, never cached, and every pooled
// chunk comes back.
func TestPrefetchOverflowAbortsAndReleases(t *testing.T) {
	g := sharedGraph()
	var prefetchStarted, feederDone atomic.Int64
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Path == "/list" {
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   []byte(`{"ids":["1"]}`)}, nil
		}
		if id, _ := r.GetQuery("id"); id == "0" {
			// The foreground exemplar teach: small enough to capture, so the
			// signature learns an exemplar and the prefetch fires.
			return &httpmsg.Response{Status: 200, Body: bytes.Repeat([]byte("t"), 512)}, nil
		}
		prefetchStarted.Add(1)
		// The prefetched item streams without end: only consume-or-cancel
		// terminates it, by closing the body and unblocking the feeder.
		pr, pw := io.Pipe()
		go func() {
			defer feederDone.Add(1)
			buf := bytes.Repeat([]byte("q"), 1024)
			for {
				if _, err := pw.Write(buf); err != nil {
					return
				}
			}
		}()
		resp := &httpmsg.Response{Status: 200}
		resp.SetStream(pr)
		return resp, nil
	})
	p := New(Options{Graph: g, Upstream: up, StreamChunkBytes: 256, CaptureMaxBytes: 1024})
	defer p.Close()

	alice := &proxyTransport{p: p, user: "1.1.1.1"}
	// Teach the item exemplar (this one also overflows — streamed through),
	// then fan out from the list.
	if _, err := alice.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/item",
		Query: []httpmsg.Field{{Key: "id", Value: "0"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/list"}); err != nil {
		t.Fatal(err)
	}
	p.Drain()

	if prefetchStarted.Load() == 0 {
		t.Fatal("prefetch never reached the origin")
	}
	deadline := time.Now().Add(2 * time.Second)
	for feederDone.Load() < prefetchStarted.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if feederDone.Load() < prefetchStarted.Load() {
		t.Fatal("aborted prefetch never closed the origin stream")
	}
	if n, _ := p.Cache().ScopeStats(cache.SharedScope); n != 0 {
		t.Fatalf("over-cap prefetch cached %d entries, want 0", n)
	}
	if p.streamStats.bodyOverflows.Load() == 0 {
		t.Fatal("overflow never counted")
	}
	waitChunksReleased(t, p)
}

// TestWholePathAllocBudget gates the miss-path allocation count: allocations
// per request must not scale with the number of body chunks. A 1 MiB body
// through 4 KiB chunks is 256 chunk-transits; if any layer allocated per
// chunk, the two measurements below would differ by hundreds.
func TestWholePathAllocBudget(t *testing.T) {
	serveOnce := func(body []byte) float64 {
		g := streamGraph()
		up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
			resp := &httpmsg.Response{Status: 200}
			resp.SetStream(io.NopCloser(bytes.NewReader(body)))
			return resp, nil
		})
		p := New(Options{Graph: g, Upstream: up, StreamChunkBytes: 4096, CaptureMaxBytes: 4 << 20})
		defer p.Close()
		// Warm the pool and the per-signature state.
		for i := 0; i < 3; i++ {
			hreq := httptest.NewRequest("GET", "http://h.example/big", nil)
			hreq.RemoteAddr = "9.9.9.9:1"
			p.ServeHTTP(httptest.NewRecorder(), hreq)
		}
		return testing.AllocsPerRun(30, func() {
			hreq := httptest.NewRequest("GET", "http://h.example/big", nil)
			hreq.RemoteAddr = "9.9.9.9:1"
			p.ServeHTTP(httptest.NewRecorder(), hreq)
		})
	}
	small := serveOnce(bytes.Repeat([]byte("s"), 64<<10)) // 16 chunk-transits
	large := serveOnce(bytes.Repeat([]byte("l"), 1<<20))  // 256 chunk-transits
	if d := large - small; d > 64 {
		t.Fatalf("allocs grow with body chunks: %0.1f (64KiB) vs %0.1f (1MiB), Δ=%0.1f > 64",
			small, large, d)
	}
	if large > 400 {
		t.Fatalf("miss path costs %0.1f allocs/request, want O(1) ≤ 400", large)
	}
}
