package proxy

import (
	"sync"
	"time"

	"appx/internal/obs"
)

// sigStats aggregates per-signature measurements used for prefetch
// prioritization (§5) and reporting (§6).
type sigStats struct {
	// ewmaRespTime is the running average origin response time.
	ewmaRespTime time.Duration
	samples      int
	// prefetches / hits / misses count issued prefetch requests, cache hits
	// served to clients, and forwarded client requests for this signature.
	// sharedHits is the subset of hits served from the cross-user shared
	// cache tier.
	prefetches int
	hits       int
	sharedHits int
	misses     int
	// prefetchedBytes counts response bytes fetched ahead of time;
	// servedBytes counts prefetched bytes actually delivered to clients.
	prefetchedBytes int64
	servedBytes     int64
	// prefetchErrors counts transport failures; prefetchRejects counts
	// non-200 origin answers to reconstructed requests — the §4.3
	// verification phase disables signatures showing either.
	prefetchErrors  int
	prefetchRejects int
	// prefetchSuppressed counts prefetches the resilience layer declined to
	// issue (open circuit breaker or suspended signature backoff).
	prefetchSuppressed int
	// usedEntries counts distinct prefetched responses served at least
	// once (the numerator of the paper's "ratio of data actually used").
	usedEntries int
}

// Stats tracks proxy-wide counters, safe for concurrent use. The proxy-wide
// tallies live as obs.Counter registry series; the per-signature map (EWMA
// response times, priority inputs) keeps its mutex — it is read rarely and
// keyed dynamically.
type Stats struct {
	mu   sync.Mutex
	sigs map[string]*sigStats

	// forwardedBytes counts origin response bytes fetched on behalf of live
	// client requests (the baseline data usage).
	forwardedBytes *obs.Counter
	// savedLatencyNs accumulates the estimated latency hidden from clients
	// by cache hits (the hit signature's average origin response time).
	savedLatencyNs *obs.Counter
	// retries counts origin attempts beyond the first, proxy-wide.
	retries *obs.Counter
}

// NewStatsOn returns empty statistics registering their proxy-wide tallies
// (and scrape-time aggregate views of the per-signature map) on reg.
func NewStatsOn(reg *obs.Registry) *Stats {
	s := &Stats{
		sigs:           make(map[string]*sigStats),
		forwardedBytes: reg.Counter("appx_forwarded_bytes_total", "Origin response bytes forwarded to clients."),
		savedLatencyNs: reg.Counter("appx_saved_latency_nanoseconds_total", "Estimated client latency hidden by cache hits."),
		retries:        reg.Counter("appx_origin_retries_total", "Origin attempts beyond the first."),
	}
	agg := func(read func(Snapshot) int64) func() int64 {
		return func() int64 { return read(s.Snapshot()) }
	}
	reg.CounterFunc("appx_cache_hits_total", "Client requests served from the prefetch store.",
		agg(func(sn Snapshot) int64 { return int64(sn.Hits) }))
	reg.CounterFunc("appx_cache_misses_total", "Client requests forwarded to the origin.",
		agg(func(sn Snapshot) int64 { return int64(sn.Misses) }))
	reg.CounterFunc("appx_prefetches_total", "Prefetch requests completed.",
		agg(func(sn Snapshot) int64 { return int64(sn.Prefetches) }))
	reg.CounterFunc("appx_prefetch_errors_total", "Prefetch transport failures.",
		agg(func(sn Snapshot) int64 { return int64(sn.PrefetchErrors) }))
	reg.CounterFunc("appx_prefetch_suppressed_total", "Prefetches declined by resilience or overload gates.",
		agg(func(sn Snapshot) int64 { return int64(sn.PrefetchSuppressed) }))
	return s
}

// NewStats returns empty statistics on a private registry (tests and
// standalone use; the proxy shares one registry across subsystems).
func NewStats() *Stats { return NewStatsOn(obs.NewRegistry()) }

func (s *Stats) sig(id string) *sigStats {
	st, ok := s.sigs[id]
	if !ok {
		st = &sigStats{}
		s.sigs[id] = st
	}
	return st
}

// ObserveRespTime folds one origin response time into the signature's
// running average (EWMA, α = 1/4 after warm-up).
func (s *Stats) ObserveRespTime(sigID string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.sig(sigID)
	if st.samples == 0 {
		st.ewmaRespTime = d
	} else {
		st.ewmaRespTime = (st.ewmaRespTime*3 + d) / 4
	}
	st.samples++
}

// RespTime returns the signature's average origin response time.
func (s *Stats) RespTime(sigID string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sig(sigID).ewmaRespTime
}

// CountPrefetch records an issued prefetch and its response size.
func (s *Stats) CountPrefetch(sigID string, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.sig(sigID)
	st.prefetches++
	st.prefetchedBytes += bytes
}

// CountPrefetchError records a prefetch transport failure.
func (s *Stats) CountPrefetchError(sigID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sig(sigID).prefetchErrors++
}

// CountPrefetchReject records a non-200 origin answer to a prefetch.
func (s *Stats) CountPrefetchReject(sigID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sig(sigID).prefetchRejects++
}

// CountPrefetchSuppressed records a prefetch the resilience layer skipped.
func (s *Stats) CountPrefetchSuppressed(sigID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sig(sigID).prefetchSuppressed++
}

// CountRetry records one origin retry attempt.
func (s *Stats) CountRetry() { s.retries.Inc() }

// Retries reports the proxy-wide origin retry count.
func (s *Stats) Retries() int { return int(s.retries.Value()) }

// CountHit records a client request served from the prefetch cache.
// firstUse marks the first time this particular cached entry is served;
// shared marks hits served from the cross-user tier.
func (s *Stats) CountHit(sigID string, bytes int64, saved time.Duration, firstUse, shared bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.sig(sigID)
	st.hits++
	if shared {
		st.sharedHits++
	}
	st.servedBytes += bytes
	if firstUse {
		st.usedEntries++
	}
	s.savedLatencyNs.Add(int64(saved))
}

// CountMiss records a client request forwarded to the origin.
func (s *Stats) CountMiss(sigID string, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.sig(sigID)
	st.misses++
	s.forwardedBytes.Add(bytes)
}

// Priority computes the §5 scheduling priority: a linear combination of the
// signature's average response time (normalized to seconds) and its hit
// rate. Signatures never prefetched before get a neutral hit rate of 0.5 so
// new opportunities are explored.
func (s *Stats) Priority(sigID string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.sig(sigID)
	respSec := st.ewmaRespTime.Seconds()
	hitRate := 0.5
	if st.prefetches > 0 {
		hitRate = float64(st.hits) / float64(st.prefetches)
	}
	return respSec + hitRate
}

// Snapshot is an immutable view of the aggregate counters.
type Snapshot struct {
	PerSig map[string]SigSnapshot

	ForwardedBytes     int64
	PrefetchedBytes    int64
	ServedBytes        int64
	Hits               int
	SharedHits         int
	Misses             int
	Prefetches         int
	UsedEntries        int
	SavedLatency       time.Duration
	Retries            int
	PrefetchErrors     int
	PrefetchSuppressed int
}

// SigSnapshot is one signature's counters.
type SigSnapshot struct {
	RespTime           time.Duration
	Prefetches         int
	Hits               int
	SharedHits         int
	Misses             int
	PrefetchedBytes    int64
	ServedBytes        int64
	PrefetchErrors     int
	PrefetchRejects    int
	PrefetchSuppressed int
}

// Snapshot captures current counters.
func (s *Stats) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Snapshot{
		PerSig:         make(map[string]SigSnapshot, len(s.sigs)),
		ForwardedBytes: s.forwardedBytes.Value(),
		SavedLatency:   time.Duration(s.savedLatencyNs.Value()),
		Retries:        int(s.retries.Value()),
	}
	for id, st := range s.sigs {
		out.PerSig[id] = SigSnapshot{
			RespTime:           st.ewmaRespTime,
			Prefetches:         st.prefetches,
			Hits:               st.hits,
			SharedHits:         st.sharedHits,
			Misses:             st.misses,
			PrefetchedBytes:    st.prefetchedBytes,
			ServedBytes:        st.servedBytes,
			PrefetchErrors:     st.prefetchErrors,
			PrefetchRejects:    st.prefetchRejects,
			PrefetchSuppressed: st.prefetchSuppressed,
		}
		out.UsedEntries += st.usedEntries
		out.PrefetchedBytes += st.prefetchedBytes
		out.ServedBytes += st.servedBytes
		out.Hits += st.hits
		out.SharedHits += st.sharedHits
		out.Misses += st.misses
		out.Prefetches += st.prefetches
		out.PrefetchErrors += st.prefetchErrors
		out.PrefetchSuppressed += st.prefetchSuppressed
	}
	return out
}

// NormalizedDataUsage returns (forwarded+prefetched)/forwarded — the
// paper's Figure-16 data-usage metric. 1.0 when nothing was forwarded.
func (s Snapshot) NormalizedDataUsage() float64 {
	if s.ForwardedBytes+s.ServedBytes == 0 {
		return 1
	}
	// Baseline: every byte the client consumed would have been fetched from
	// the origin anyway (forwarded misses + served hits). Overhead: bytes
	// prefetched but never consumed.
	baseline := float64(s.ForwardedBytes + s.ServedBytes)
	total := float64(s.ForwardedBytes + s.PrefetchedBytes)
	return total / baseline
}

// HitRatio returns hits/(hits+misses), 0 when idle.
func (s Snapshot) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// SharedHitRatio returns the fraction of cache hits served from the
// cross-user shared tier, 0 when idle.
func (s Snapshot) SharedHitRatio() float64 {
	if s.Hits == 0 {
		return 0
	}
	return float64(s.SharedHits) / float64(s.Hits)
}

// UsedPrefetchRatio returns the fraction of prefetched transactions the app
// actually consumed — distinct cached responses served at least once over
// prefetches issued (the paper reports 1–5 %).
func (s Snapshot) UsedPrefetchRatio() float64 {
	if s.Prefetches == 0 {
		return 0
	}
	return float64(s.UsedEntries) / float64(s.Prefetches)
}
