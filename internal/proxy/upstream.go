package proxy

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"appx/internal/httpmsg"
	"appx/internal/netem"
)

// Upstream performs origin-side HTTP transactions on behalf of the proxy —
// both forwarded client requests and prefetches. The context carries the
// caller's cancellation (a disconnected client, a per-attempt deadline from
// the retry middleware) all the way to the origin connection.
type Upstream interface {
	RoundTrip(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error)
}

// UpstreamFunc adapts a function to Upstream.
type UpstreamFunc func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error)

// RoundTrip implements Upstream.
func (f UpstreamFunc) RoundTrip(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
	return f(ctx, r)
}

// NetUpstream dials origin servers over emulated WAN links: each logical
// hostname resolves to a real listener address and is shaped by its
// configured netem link (Table 2's per-host proxy↔origin RTTs).
type NetUpstream struct {
	client *http.Client

	mu      sync.RWMutex
	resolve map[string]string
	links   map[string]netem.Link
	faults  *netem.Injector
}

// NewNetUpstream builds an upstream with the given host→address resolution
// table and per-host link shaping. Hosts without a link entry are unshaped.
func NewNetUpstream(resolve map[string]string, links map[string]netem.Link) *NetUpstream {
	u := &NetUpstream{
		resolve: make(map[string]string, len(resolve)),
		links:   make(map[string]netem.Link, len(links)),
	}
	for k, v := range resolve {
		u.resolve[k] = v
	}
	for k, v := range links {
		u.links[k] = v
	}
	tr := &http.Transport{
		DialContext:         u.dial,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     30 * time.Second,
		DisableCompression:  true,
		// Handshake-phase bounds: the caller's context caps the whole
		// attempt, but these keep a single wedged handshake from holding a
		// pool slot for the full attempt budget.
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
	// No whole-client timeout: per-request bounds come from the caller's
	// context (the resilience middleware sets per-attempt deadlines).
	u.client = &http.Client{Transport: tr}
	return u
}

// SetHost adds or updates one host's resolution and link.
func (u *NetUpstream) SetHost(host, addr string, link netem.Link) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.resolve[host] = addr
	u.links[host] = link
}

// SetFaults installs (or clears, with nil) a fault injector: every dial
// first consults the injector's connect-refusal draw for the logical host,
// and established connections run through its per-I/O fault model.
func (u *NetUpstream) SetFaults(in *netem.Injector) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.faults = in
}

func (u *NetUpstream) dial(ctx context.Context, network, addr string) (net.Conn, error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		// No port (or not host:port shaped): treat the whole string as the
		// logical host.
		host = addr
	}
	u.mu.RLock()
	real, ok := u.resolve[host]
	link := u.links[host]
	faults := u.faults
	u.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("proxy: no origin registered for host %q", host)
	}
	if faults != nil && faults.ConnectRefused(host) {
		return nil, fmt.Errorf("proxy: dial %s: %w", host, netem.ErrInjectedRefusal)
	}
	d := netem.Dialer{Link: link, Timeout: 10 * time.Second}
	c, err := d.DialContext(ctx, network, real)
	if err != nil {
		return nil, err
	}
	if faults != nil {
		c = faults.WrapConn(c, host)
	}
	return c, nil
}

// RoundTrip implements Upstream. The response is returned streaming — the
// body has not been read — so the first byte reaches the caller as soon as
// the origin sends headers, and the transport's pooled connection is held
// until the caller finishes the body (WriteTo / Buffer / DrainAndClose).
func (u *NetUpstream) RoundTrip(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
	hreq, err := r.ToHTTP()
	if err != nil {
		return nil, err
	}
	hreq = hreq.WithContext(ctx)
	hreq.Host = r.Host
	hresp, err := u.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	return httpmsg.FromHTTPResponseStreaming(hresp), nil
}
