package proxy

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"appx/internal/httpmsg"
	"appx/internal/netem"
)

// Upstream performs origin-side HTTP transactions on behalf of the proxy —
// both forwarded client requests and prefetches.
type Upstream interface {
	RoundTrip(*httpmsg.Request) (*httpmsg.Response, error)
}

// UpstreamFunc adapts a function to Upstream.
type UpstreamFunc func(*httpmsg.Request) (*httpmsg.Response, error)

// RoundTrip implements Upstream.
func (f UpstreamFunc) RoundTrip(r *httpmsg.Request) (*httpmsg.Response, error) { return f(r) }

// NetUpstream dials origin servers over emulated WAN links: each logical
// hostname resolves to a real listener address and is shaped by its
// configured netem link (Table 2's per-host proxy↔origin RTTs).
type NetUpstream struct {
	client *http.Client

	mu      sync.RWMutex
	resolve map[string]string
	links   map[string]netem.Link
}

// NewNetUpstream builds an upstream with the given host→address resolution
// table and per-host link shaping. Hosts without a link entry are unshaped.
func NewNetUpstream(resolve map[string]string, links map[string]netem.Link) *NetUpstream {
	u := &NetUpstream{
		resolve: make(map[string]string, len(resolve)),
		links:   make(map[string]netem.Link, len(links)),
	}
	for k, v := range resolve {
		u.resolve[k] = v
	}
	for k, v := range links {
		u.links[k] = v
	}
	tr := &http.Transport{
		DialContext:         u.dial,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     30 * time.Second,
		DisableCompression:  true,
	}
	u.client = &http.Client{Transport: tr, Timeout: 60 * time.Second}
	return u
}

// SetHost adds or updates one host's resolution and link.
func (u *NetUpstream) SetHost(host, addr string, link netem.Link) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.resolve[host] = addr
	u.links[host] = link
}

func (u *NetUpstream) dial(ctx context.Context, network, addr string) (net.Conn, error) {
	host := addr
	if i := strings.LastIndexByte(addr, ':'); i >= 0 {
		host = addr[:i]
	}
	u.mu.RLock()
	real, ok := u.resolve[host]
	link := u.links[host]
	u.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("proxy: no origin registered for host %q", host)
	}
	d := netem.Dialer{Link: link, Timeout: 10 * time.Second}
	return d.DialContext(ctx, network, real)
}

// RoundTrip implements Upstream.
func (u *NetUpstream) RoundTrip(r *httpmsg.Request) (*httpmsg.Response, error) {
	hreq, err := r.ToHTTP()
	if err != nil {
		return nil, err
	}
	hreq.Host = r.Host
	hresp, err := u.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	return httpmsg.FromHTTPResponse(hresp)
}
