package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"appx/internal/config"
	"appx/internal/httpmsg"
	"appx/internal/obs/adminv1"
	"appx/internal/sig"
)

// overloadGraph builds a one-host list→item dependency graph: each /list
// response fans out into item prefetches.
func overloadGraph() *sig.Graph {
	g := sig.NewGraph("t")
	pred := &sig.Signature{ID: "t:list#0", Method: "GET", URI: sig.Literal("app.example/list")}
	succ := &sig.Signature{ID: "t:item#0", Method: "GET", URI: sig.Literal("app.example/item"),
		Query: []sig.Field{{Key: "id", Value: sig.DepValue(pred.ID, "ids[*]")}}}
	g.Add(pred)
	g.Add(succ)
	g.AddDep(sig.Dependency{PredID: pred.ID, SuccID: succ.ID, RespPath: "ids[*]",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})
	return g
}

// TestAdmissionGateSheds: with one admission slot occupied by a stalled
// request, the next arrival is shed with a 503 after the bounded wait, the
// shed is counted, and the stalled request still completes once released.
func TestAdmissionGateSheds(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Path == "/slow" {
			close(entered)
			<-release
		}
		return &httpmsg.Response{Status: 200, Body: []byte("ok")}, nil
	})
	g := sig.NewGraph("t")
	cfg := config.Default(g)
	cfg.Overload = &config.Overload{
		MaxConcurrentRequests: 1,
		AdmissionWait:         config.Duration(5 * time.Millisecond),
	}
	p := New(Options{Graph: g, Config: cfg, Upstream: up, DisablePrefetch: true})
	t.Cleanup(p.Close)

	done := make(chan int)
	go func() {
		rec := httptest.NewRecorder()
		p.ServeHTTP(rec, httptest.NewRequest("GET", "http://app.example/slow", nil))
		done <- rec.Code
	}()
	<-entered

	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest("GET", "http://app.example/fast", nil))
	if rec.Code != 503 {
		t.Fatalf("second request while gate full = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "overloaded") {
		t.Fatalf("shed body = %q, want overload notice", rec.Body.String())
	}
	if _, shed := p.AdmissionCounts(); shed != 1 {
		t.Fatalf("admission shed count = %d, want 1", shed)
	}
	if mode := p.OverloadMode(); mode != "shedding" {
		t.Fatalf("mode after admission shed = %q, want shedding", mode)
	}

	close(release)
	if code := <-done; code != 200 {
		t.Fatalf("stalled request completed with %d, want 200", code)
	}
	if admitted, _ := p.AdmissionCounts(); admitted != 1 {
		t.Fatalf("admitted count = %d, want 1", admitted)
	}
}

// TestDrainingRefusesNewWork: after BeginDrain, proxied requests are refused
// with 503 while the status surface keeps answering and reports the
// draining mode as degraded health.
func TestDrainingRefusesNewWork(t *testing.T) {
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		return &httpmsg.Response{Status: 200, Body: []byte("ok")}, nil
	})
	g := sig.NewGraph("t")
	p := New(Options{Graph: g, Config: config.Default(g), Upstream: up, DisablePrefetch: true})
	t.Cleanup(p.Close)

	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest("GET", "http://app.example/x", nil))
	if rec.Code != 200 {
		t.Fatalf("pre-drain request = %d, want 200", rec.Code)
	}

	p.BeginDrain()
	if !p.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	rec = httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest("GET", "http://app.example/x", nil))
	if rec.Code != 503 {
		t.Fatalf("post-drain request = %d, want 503", rec.Code)
	}

	rec = httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest("GET", adminv1.PathHealth, nil))
	if rec.Code != 200 {
		t.Fatalf("%s during drain = %d, want 200", adminv1.PathHealth, rec.Code)
	}
	var health adminv1.HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("health not JSON: %v", err)
	}
	if health.Status != "degraded" {
		t.Fatalf("health status during drain = %v, want degraded", health.Status)
	}
	if health.Overload.Mode != "draining" {
		t.Fatalf("overload mode during drain = %v, want draining", health.Overload.Mode)
	}
}

// TestGovernorAIMD drives the controller with a fake clock through its whole
// range: multiplicative decrease on each overloaded interval down to the
// shedding floor, then additive recovery back to full prefetching.
func TestGovernorAIMD(t *testing.T) {
	cfg := config.Overload{
		GovernorInterval: config.Duration(100 * time.Millisecond),
		TargetP95:        config.Duration(50 * time.Millisecond),
	}.Filled()
	now := time.Unix(1_700_000_000, 0)
	g := newGovernor(cfg, func() time.Time { return now })

	if g.Level() != 1 || g.Mode() != "normal" {
		t.Fatalf("fresh governor: level=%v mode=%q, want 1/normal", g.Level(), g.Mode())
	}
	g.Observe(0, 0, false) // anchor lastAdjust

	// One interval with p95 past target halves the level.
	now = now.Add(101 * time.Millisecond)
	g.Observe(0, 60*time.Millisecond, false)
	if g.Level() != 0.5 {
		t.Fatalf("level after slow interval = %v, want 0.5", g.Level())
	}
	if g.Mode() != "degraded" {
		t.Fatalf("mode at level 0.5 = %q, want degraded", g.Mode())
	}

	// Queue pressure and admission sheds are equally valid overload signals;
	// repeated overloaded intervals converge on the floor.
	now = now.Add(101 * time.Millisecond)
	g.Observe(0.9, 0, false)
	if g.Level() != 0.25 {
		t.Fatalf("level after queue-pressure interval = %v, want 0.25", g.Level())
	}
	for i := 0; i < 4; i++ {
		now = now.Add(101 * time.Millisecond)
		g.Observe(0, 0, true)
	}
	if g.Level() != cfg.GovernorMinLevel {
		t.Fatalf("level after sustained sheds = %v, want floor %v", g.Level(), cfg.GovernorMinLevel)
	}
	if !g.Shedding() || g.Mode() != "shedding" {
		t.Fatalf("at floor: shedding=%v mode=%q, want true/shedding", g.Shedding(), g.Mode())
	}

	// Clean intervals recover additively to full prefetching.
	for i := 0; i < 12 && g.Level() < 1; i++ {
		now = now.Add(101 * time.Millisecond)
		g.Observe(0, 0, false)
	}
	if g.Level() != 1 || g.Mode() != "normal" {
		t.Fatalf("after recovery: level=%v mode=%q, want 1/normal", g.Level(), g.Mode())
	}
	dec, inc := g.Adjustments()
	if dec == 0 || inc == 0 {
		t.Fatalf("adjustment counters = %d/%d, want both nonzero", dec, inc)
	}
}

// TestPrefetchPanicRecovered: a reconstruction whose origin call panics is
// recovered by the worker, counted as a prefetch failure, feeds the
// signature's backoff into suspension, and leaves the pool alive for both
// later prefetches and live traffic. Regression for the seed scheduler,
// where one panicking task killed a worker goroutine for good.
func TestPrefetchPanicRecovered(t *testing.T) {
	var mu sync.Mutex
	round := 0
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		mu.Lock()
		defer mu.Unlock()
		if r.Path == "/list" {
			round++
			ids := make([]string, 4)
			for i := range ids {
				ids[i] = fmt.Sprintf("p%d-%d", round, i)
			}
			body, _ := json.Marshal(map[string]any{"ids": ids})
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   body}, nil
		}
		for _, q := range r.Query {
			if q.Key == "id" && strings.HasPrefix(q.Value, "p") {
				panic("origin client bug: prefetch-only id " + q.Value)
			}
		}
		return &httpmsg.Response{Status: 200, Body: []byte(`{}`)}, nil
	})
	g := overloadGraph()
	cfg := config.Default(g)
	cfg.Resilience = &config.Resilience{
		RetryAttempts:        1,
		PrefetchFailureLimit: 2,
		BreakerFailures:      1000, // keep the host breaker out of the way
	}
	now := time.Unix(1_700_000_000, 0)
	p := New(Options{Graph: g, Config: cfg, Upstream: up, Workers: 2,
		Now:  func() time.Time { return now },
		Rand: func() float64 { return 0 },
	})
	t.Cleanup(p.Close)
	pt := &proxyTransport{p: p, user: "panic-user"}

	// Teach the item exemplar with a live, non-panicking id.
	if resp, err := pt.RoundTrip(&httpmsg.Request{Method: "GET", Host: "app.example", Path: "/item",
		Query: []httpmsg.Field{{Key: "id", Value: "seed"}}}); err != nil || resp.Status != 200 {
		t.Fatalf("exemplar request: %v %v", resp, err)
	}
	// The list fan-out spawns prefetches for ids the client never asked
	// for; every one of them panics inside the origin call.
	if resp, err := pt.RoundTrip(&httpmsg.Request{Method: "GET", Host: "app.example", Path: "/list"}); err != nil || resp.Status != 200 {
		t.Fatalf("list request: %v %v", resp, err)
	}
	p.Drain()

	m := p.SchedMetrics()
	if m.Panics == 0 {
		t.Fatal("no recovered panics counted")
	}
	snap := p.Stats().Snapshot()
	if snap.PerSig["t:item#0"].PrefetchErrors == 0 {
		t.Fatal("recovered panic not counted as prefetch error")
	}
	if !p.sigSuspended("t:item#0") {
		t.Fatal("panicking signature not suspended by failure backoff")
	}
	// The pool survived: live traffic still flows through the proxy.
	resp, err := pt.RoundTrip(&httpmsg.Request{Method: "GET", Host: "app.example", Path: "/item",
		Query: []httpmsg.Field{{Key: "id", Value: "seed2"}}})
	if err != nil || resp.Status != 200 {
		t.Fatalf("live request after panics: %v %v", resp, err)
	}
}

// TestStatsExposeOverloadAndSched: both operational endpoints carry the
// overload and per-class scheduler blocks.
func TestStatsExposeOverloadAndSched(t *testing.T) {
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		return &httpmsg.Response{Status: 200, Body: []byte("ok")}, nil
	})
	g := sig.NewGraph("t")
	p := New(Options{Graph: g, Config: config.Default(g), Upstream: up})
	t.Cleanup(p.Close)

	fetch := func(path string, into any) {
		t.Helper()
		rec := httptest.NewRecorder()
		p.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s = %d, want 200", path, rec.Code)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
			t.Fatalf("%s not JSON: %v", path, err)
		}
	}
	check := func(path string, ovl adminv1.Overload, sch adminv1.Sched) {
		t.Helper()
		if ovl.Mode != "normal" || ovl.Level != 1.0 {
			t.Fatalf("%s overload block = %+v, want normal/1", path, ovl)
		}
		if sch.Capacity != 4096 {
			t.Fatalf("%s sched capacity = %d, want 4096", path, sch.Capacity)
		}
	}
	var stats adminv1.StatsResponse
	fetch(adminv1.PathStats, &stats)
	check(adminv1.PathStats, stats.Overload, stats.Sched)
	var health adminv1.HealthResponse
	fetch(adminv1.PathHealth, &health)
	check(adminv1.PathHealth, health.Overload, health.Sched)
}
