package proxy

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"appx/internal/httpmsg"
	"appx/internal/obs"
	"appx/internal/stream"
)

// Streaming data plane (DESIGN.md §12). Bodies move client↔cache↔origin
// through pooled fixed-size chunks instead of whole-[]byte buffers. Each
// matched-and-cacheable origin fetch becomes a "flight": one owner pumps the
// origin stream into a spool, any number of attached clients read from it
// concurrently, and a bounded prefix is captured for cache insertion and
// learning. Ownership rules:
//
//   - The goroutine that opened the flight (owner) is the only writer: it
//     pumps, closes the spool's writer, extracts the capture, removes the
//     flight from the registry, and Discards the spool — in that order.
//   - Attachers only ever read (ReaderAt) and must close their reader on
//     every path; a dangling reader would hold the overflow window open.
//   - The registry lock (flightMu) guards only the map; all body state is
//     behind the spool's own lock.

// errPumpAbandoned marks a pump abort: the body overflowed the capture cap
// with no attached readers, so continuing to consume would buy nothing.
var errPumpAbandoned = errors.New("proxy: streamed body abandoned (over cap, no readers)")

// flight is one in-progress origin fetch with a spooled body.
type flight struct {
	sp    *stream.Spool
	ready chan struct{} // closed once status/header/err are final

	// Written by the owner before close(ready), read-only afterwards.
	status int
	header []httpmsg.Field
	err    error
	sigID  string
}

// openFlight returns the flight for fkey, creating it when absent. owner
// reports whether this caller created it (and therefore must run the fetch,
// pump, and teardown).
func (p *Proxy) openFlight(fkey string) (f *flight, owner bool) {
	p.flightMu.Lock()
	defer p.flightMu.Unlock()
	if f, ok := p.flights[fkey]; ok {
		return f, false
	}
	f = &flight{
		sp:    stream.NewSpool(p.chunks, p.captureCap, func() time.Time { return p.opts.Now() }),
		ready: make(chan struct{}),
	}
	p.flights[fkey] = f
	return f, true
}

// closeFlight removes f from the registry (no-op if already replaced).
func (p *Proxy) closeFlight(fkey string, f *flight) {
	p.flightMu.Lock()
	if p.flights[fkey] == f {
		delete(p.flights, fkey)
	}
	p.flightMu.Unlock()
}

// failFlight seals a flight whose origin fetch never produced a body and
// releases everything: attachers see err, the registry forgets the flight.
func (p *Proxy) failFlight(fkey string, f *flight, err error) {
	f.err = err
	close(f.ready)
	f.sp.CloseWriter(err)
	p.closeFlight(fkey, f)
	f.sp.Discard()
}

// pump drives the origin body into the flight's spool. It is the
// consume-or-cancel point for streamed bodies: on a clean end the spool
// holds the capture; when the body overflows the cap with no readers left,
// the pump severs the origin connection instead of buying bytes nobody
// wants. Always closes the response body (returning the pooled connection
// or tearing it down) and the spool writer.
func (p *Proxy) pump(f *flight, resp *httpmsg.Response) {
	if !resp.Streaming() {
		// Buffered upstreams (in-process handlers, tests) arrive whole.
		_, err := f.sp.Append(resp.Body)
		f.sp.CloseWriter(err)
		return
	}
	src := resp.Stream()
	buf := p.chunks.Get()
	var err error
	for {
		if f.sp.Overflowed() && f.sp.Readers() == 0 {
			err = errPumpAbandoned
			break
		}
		n, rerr := src.Read(buf)
		if n > 0 {
			if _, werr := f.sp.Append(buf[:n]); werr != nil {
				err = werr
				break
			}
		}
		if rerr != nil {
			if rerr != io.EOF {
				err = rerr
			}
			break
		}
	}
	p.chunks.Put(buf)
	if err == nil {
		if derr := resp.DrainAndClose(); derr != nil {
			p.streamStats.drainErrors.Add(1)
		}
	} else {
		resp.CloseBody()
	}
	f.sp.CloseWriter(err)
}

// byteRange is one parsed Range specifier; start < 0 means a suffix range
// ("-n", length in length), end < 0 means open-ended ("a-").
type byteRange struct {
	start, end int64
}

// parseRangeHeader parses a Range header value. ok is false for anything
// malformed or non-bytes — callers then ignore the header (serve 200 full),
// which RFC 7233 permits.
func parseRangeHeader(v string) (ranges []byteRange, ok bool) {
	const prefix = "bytes="
	if !strings.HasPrefix(v, prefix) {
		return nil, false
	}
	for _, part := range strings.Split(v[len(prefix):], ",") {
		part = strings.TrimSpace(part)
		dash := strings.IndexByte(part, '-')
		if dash < 0 {
			return nil, false
		}
		first, last := part[:dash], part[dash+1:]
		var br byteRange
		if first == "" {
			// Suffix form "-n".
			if last == "" {
				return nil, false
			}
			n, err := strconv.ParseInt(last, 10, 64)
			if err != nil || n < 0 {
				return nil, false
			}
			br = byteRange{start: -1, end: n}
		} else {
			s, err := strconv.ParseInt(first, 10, 64)
			if err != nil || s < 0 {
				return nil, false
			}
			br = byteRange{start: s, end: -1}
			if last != "" {
				e, err := strconv.ParseInt(last, 10, 64)
				if err != nil || e < s {
					return nil, false
				}
				br.end = e
			}
		}
		ranges = append(ranges, br)
	}
	if len(ranges) == 0 {
		return nil, false
	}
	return ranges, true
}

// resolve maps the range onto a body of the given size, returning the
// absolute offset and length. ok is false when the range is unsatisfiable
// (start at or past the end, or a zero-length suffix).
func (br byteRange) resolve(size int64) (start, length int64, ok bool) {
	switch {
	case br.start < 0: // suffix "-n"
		if br.end == 0 {
			return 0, 0, false
		}
		start = size - br.end
		if start < 0 {
			start = 0
		}
		return start, size - start, size > 0
	case br.start >= size:
		return 0, 0, false
	case br.end < 0 || br.end >= size: // "a-" or "a-b" past the end
		return br.start, size - br.start, true
	default:
		return br.start, br.end - br.start + 1, true
	}
}

// ifRangeApplies evaluates an If-Range precondition against the response's
// validators: a mismatch downgrades the range request to a full 200 (RFC
// 7233 §3.2). Absent If-Range always applies. Only strong comparison: a
// weak ETag ("W/...") never matches.
func ifRangeApplies(req *httpmsg.Request, respHeader []httpmsg.Field) bool {
	v, ok := req.GetHeader("If-Range")
	if !ok {
		return true
	}
	get := func(key string) string {
		for _, f := range respHeader {
			if strings.EqualFold(f.Key, key) {
				return f.Value
			}
		}
		return ""
	}
	if strings.HasPrefix(v, `"`) || strings.HasPrefix(v, "W/") {
		etag := get("Etag")
		return etag != "" && !strings.HasPrefix(etag, "W/") && !strings.HasPrefix(v, "W/") && v == etag
	}
	lm := get("Last-Modified")
	return lm != "" && v == lm
}

// rangeHeaderOf extracts the request's Range header (empty when absent).
func rangeHeaderOf(req *httpmsg.Request) string {
	v, _ := req.GetHeader("Range")
	return v
}

// writeRangeHeaders copies the response headers onto w, dropping
// Content-Length (the caller sets the sliced one) and advertising range
// support.
func writeRangeHeaders(w http.ResponseWriter, header []httpmsg.Field) {
	for _, f := range header {
		if strings.EqualFold(f.Key, "Content-Length") {
			continue
		}
		w.Header().Add(f.Key, f.Value)
	}
	w.Header().Set("Accept-Ranges", "bytes")
}

// writeBuffered serves a complete buffered response (cache hit, peer fill)
// honouring any Range header: single satisfiable ranges get a 206 slice,
// unsatisfiable ones a 416 with the total, everything else (multi-range,
// malformed, If-Range mismatch, non-200 source) the full 200.
func (p *Proxy) writeBuffered(w http.ResponseWriter, req *httpmsg.Request, resp *httpmsg.Response) {
	spec := rangeHeaderOf(req)
	if spec == "" || resp.Status != http.StatusOK || !resp.BodyComplete() || !ifRangeApplies(req, resp.Header) {
		resp.WriteTo(w)
		return
	}
	ranges, ok := parseRangeHeader(spec)
	if !ok || len(ranges) != 1 {
		resp.WriteTo(w)
		return
	}
	size := int64(len(resp.Body))
	start, length, sat := ranges[0].resolve(size)
	if !sat {
		writeRangeHeaders(w, resp.Header)
		w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
		w.Header().Set("Content-Length", "0")
		w.WriteHeader(http.StatusRequestedRangeNotSatisfiable)
		return
	}
	writeRangeHeaders(w, resp.Header)
	w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, start+length-1, size))
	w.Header().Set("Content-Length", strconv.FormatInt(length, 10))
	w.WriteHeader(http.StatusPartialContent)
	w.Write(resp.Body[start : start+length])
}

// flightRange resolves the request's Range header against an in-flight
// spool. With the body complete (and captured), totals are known and full
// semantics apply; mid-flight, only fully-specified "a-b" ranges are served
// (Content-Range total "*"), everything else falls back to the full body.
// status416 reports a known-total unsatisfiable range.
func flightRange(req *httpmsg.Request, f *flight) (start, length int64, contentRange string, ranged, status416 bool) {
	spec := rangeHeaderOf(req)
	if spec == "" || f.status != http.StatusOK || !ifRangeApplies(req, f.header) {
		return 0, -1, "", false, false
	}
	ranges, ok := parseRangeHeader(spec)
	if !ok || len(ranges) != 1 {
		return 0, -1, "", false, false
	}
	br := ranges[0]
	if f.sp.Done() && !f.sp.Overflowed() && f.sp.Err() == nil {
		size := f.sp.Size()
		s, l, sat := br.resolve(size)
		if !sat {
			return 0, 0, fmt.Sprintf("bytes */%d", size), false, true
		}
		return s, l, fmt.Sprintf("bytes %d-%d/%d", s, s+l-1, size), true, false
	}
	if br.start >= 0 && br.end >= 0 {
		return br.start, br.end - br.start + 1, fmt.Sprintf("bytes %d-%d/*", br.start, br.end), true, false
	}
	return 0, -1, "", false, false
}

// flushWriter flushes after every write so streamed bytes reach the client
// as they arrive instead of pooling in net/http's buffer — the difference
// between TTFB tracking the origin's first byte and tracking its last.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func newFlushWriter(w http.ResponseWriter) io.Writer {
	if f, ok := w.(http.Flusher); ok {
		return flushWriter{w: w, f: f}
	}
	return w
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if n > 0 {
		fw.f.Flush()
	}
	return n, err
}

// attachFlight serves one attaching client from another request's in-flight
// fetch: waits for headers, resolves any Range, opens a spool reader, and
// streams. Returns false — without having written anything — when the
// attacher must fetch on its own: flight error, non-200 answer, or the
// retained window already slid past the requested offset.
func (p *Proxy) attachFlight(w http.ResponseWriter, done <-chan struct{}, sp *obs.Span, f *flight, req *httpmsg.Request, start time.Time) bool {
	select {
	case <-f.ready:
	case <-done:
		return false
	}
	if f.err != nil {
		return false
	}
	if f.status != http.StatusOK {
		// A non-200 flight is the owner's conversation with the origin
		// (reconstruction reject, redirect, error); attaching would replay a
		// response this client never provoked. Fetch independently instead.
		return false
	}
	off, length, contentRange, ranged, status416 := flightRange(req, f)
	if status416 {
		write416(w, f.header, contentRange)
		sp.EndStage(obs.StageWrite)
		p.observeTTFB(start)
		return true
	}
	rd, err := f.sp.ReaderAt(off)
	if err != nil {
		// The window slid past this offset (over-cap body): this client can
		// no longer be served from the flight.
		return false
	}
	defer rd.Close()
	p.serveSpool(w, sp, f, rd, length, contentRange, ranged, start)
	return true
}

// write416 answers an unsatisfiable range with the total size.
func write416(w http.ResponseWriter, header []httpmsg.Field, contentRange string) {
	writeRangeHeaders(w, header)
	w.Header().Set("Content-Range", contentRange)
	w.Header().Set("Content-Length", "0")
	w.WriteHeader(http.StatusRequestedRangeNotSatisfiable)
}

// serveSpool writes the status line and headers for one flight-served
// response and streams the (already offset-positioned) spool reader to the
// client with per-chunk flushing. The caller owns rd.
func (p *Proxy) serveSpool(w http.ResponseWriter, sp *obs.Span, f *flight, rd *stream.Reader, length int64, contentRange string, ranged bool, start time.Time) {
	if length >= 0 {
		rd.Limit(length)
	}
	if ranged {
		writeRangeHeaders(w, f.header)
		w.Header().Set("Content-Range", contentRange)
		if length >= 0 {
			w.Header().Set("Content-Length", strconv.FormatInt(length, 10))
		}
		w.WriteHeader(http.StatusPartialContent)
	} else {
		for _, h := range f.header {
			w.Header().Add(h.Key, h.Value)
		}
		w.WriteHeader(f.status)
	}
	// Headers are on the wire: this is the user-perceived first-byte point.
	sp.EndStage(obs.StageWrite)
	p.observeTTFB(start)
	rd.WriteTo(newFlushWriter(w))
	sp.EndStage(obs.StageStream)
}

// observeTTFB folds one time-to-first-byte sample into the histogram.
func (p *Proxy) observeTTFB(start time.Time) {
	p.ttfb.Observe(p.opts.Now().Sub(start))
}

// TTFBQuantile reports the q-quantile of observed time-to-first-byte.
func (p *Proxy) TTFBQuantile(q float64) time.Duration { return p.ttfb.Quantile(q) }

// streamStatCounters groups the data-plane counters (registered in
// registerStreamBridges).
type streamStatCounters struct {
	attachHits    atomic.Int64
	bodyOverflows atomic.Int64
	drainErrors   atomic.Int64
}

// registerStreamBridges exposes the streaming data plane on the registry.
func (p *Proxy) registerStreamBridges(reg *obs.Registry) {
	reg.CounterFunc("appx_flight_attach_total", "Clients served by attaching to an in-flight origin fetch.",
		p.streamStats.attachHits.Load)
	reg.CounterFunc("appx_body_overflow_total", "Bodies that exceeded the capture cap (streamed through uncached; prefetches aborted).",
		p.streamStats.bodyOverflows.Load)
	reg.CounterFunc("appx_drain_errors_total", "Response-body drains that failed mid-read (proxy and cluster).",
		func() int64 {
			n := p.streamStats.drainErrors.Load()
			if p.cluster != nil {
				n += p.cluster.c.DrainErrors()
			}
			return n
		})
	reg.GaugeFunc("appx_stream_chunks_outstanding", "Pooled body chunks currently checked out.",
		func() float64 { return float64(p.chunks.Outstanding()) })
}

// ChunkPool exposes the body-chunk pool (leak tests assert
// Outstanding()==0 once the proxy is quiescent).
func (p *Proxy) ChunkPool() *stream.Pool { return p.chunks }
