package proxy

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"appx/internal/config"
)

// This file is the proxy's self-protection layer (the overload-control
// counterpart to the resilience layer's sick-origin handling): a bounded
// admission gate in front of client requests, a client-latency window, and
// an AIMD governor that scales speculative prefetching down under pressure
// and back up when the proxy is healthy. The paper's premise (§5) is that
// prefetching must never compete with foreground traffic; these mechanisms
// enforce it when the proxy itself is the bottleneck.

// admitGate bounds concurrently served client requests. Arrivals beyond the
// limit wait at most the configured admission wait for a slot and are shed
// with a 503 otherwise — bounded queueing instead of unbounded goroutine
// pileup.
type admitGate struct {
	slots    chan struct{}
	wait     time.Duration
	admitted atomic.Int64
	shed     atomic.Int64
}

// newAdmitGate builds a gate, or returns nil (no gating) when max < 0.
func newAdmitGate(max int, wait time.Duration) *admitGate {
	if max < 0 {
		return nil
	}
	if max == 0 {
		max = 256
	}
	if wait <= 0 {
		wait = 100 * time.Millisecond
	}
	return &admitGate{slots: make(chan struct{}, max), wait: wait}
}

// acquire reserves a slot, waiting at most the bounded admission wait (or
// until the client gives up). It reports whether the request was admitted.
func (g *admitGate) acquire(ctx context.Context) bool {
	if g == nil {
		return true
	}
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return true
	default:
	}
	timer := time.NewTimer(g.wait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return true
	case <-timer.C:
	case <-ctx.Done():
	}
	g.shed.Add(1)
	return false
}

// release returns a slot taken by acquire.
func (g *admitGate) release() {
	if g != nil {
		<-g.slots
	}
}

// counts reports lifetime admissions and sheds.
func (g *admitGate) counts() (admitted, shed int64) {
	if g == nil {
		return 0, 0
	}
	return g.admitted.Load(), g.shed.Load()
}

// latencyRing is a fixed-size window of recent client latencies; quantiles
// are computed over the window on demand (the window is small, so a copy
// and sort beats maintaining a digest).
type latencyRing struct {
	mu   sync.Mutex
	buf  []time.Duration
	n    int
	next int
}

func newLatencyRing(size int) *latencyRing {
	if size < 16 {
		size = 16
	}
	return &latencyRing{buf: make([]time.Duration, size)}
}

// Observe folds one latency sample into the window.
func (r *latencyRing) Observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Quantile reports the q-quantile (0..1) of the window, 0 when empty.
func (r *latencyRing) Quantile(q float64) time.Duration {
	r.mu.Lock()
	if r.n == 0 {
		r.mu.Unlock()
		return 0
	}
	tmp := make([]time.Duration, r.n)
	copy(tmp, r.buf[:r.n])
	r.mu.Unlock()
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := int(q * float64(len(tmp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// governor is the AIMD prefetch controller. Its level (GovernorMinLevel..1)
// scales speculative prefetching: probability multiplies by the level and
// the effective chain depth shrinks with it. An interval containing any
// overload signal — prefetch queue past its high-water mark, client p95
// past the target, or an admission shed — halves the level; a clean
// interval steps it back up additively. At the floor the proxy stops
// speculative prefetching entirely (shedding mode).
type governor struct {
	cfg config.Overload
	now func() time.Time

	mu         sync.Mutex
	level      float64
	lastAdjust time.Time
	lastShed   time.Time
	overloaded bool
	decreases  int64
	increases  int64
}

func newGovernor(cfg config.Overload, now func() time.Time) *governor {
	return &governor{cfg: cfg, now: now, level: 1}
}

// Observe folds one load sample and adjusts at most once per interval.
func (g *governor) Observe(queueFrac float64, p95 time.Duration, shed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.now()
	if g.lastAdjust.IsZero() {
		g.lastAdjust = now
	}
	if shed {
		g.lastShed = now
	}
	target := time.Duration(g.cfg.TargetP95)
	if shed || queueFrac >= g.cfg.QueueHighWater || (target > 0 && p95 > target) {
		g.overloaded = true
	}
	if now.Sub(g.lastAdjust) < time.Duration(g.cfg.GovernorInterval) {
		return
	}
	if g.overloaded {
		g.level *= g.cfg.GovernorDecrease
		if g.level < g.cfg.GovernorMinLevel {
			g.level = g.cfg.GovernorMinLevel
		}
		g.decreases++
	} else {
		g.level += g.cfg.GovernorIncrease
		if g.level > 1 {
			g.level = 1
		}
		g.increases++
	}
	g.overloaded = false
	g.lastAdjust = now
}

// Level reports the current prefetch level.
func (g *governor) Level() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.level
}

// Shedding reports whether speculative prefetching is fully shed: the level
// sits at its floor, or an admission shed happened within the last interval.
func (g *governor) Shedding() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sheddingLocked()
}

func (g *governor) sheddingLocked() bool {
	if g.level <= g.cfg.GovernorMinLevel {
		return true
	}
	return !g.lastShed.IsZero() && g.now().Sub(g.lastShed) < time.Duration(g.cfg.GovernorInterval)
}

// Mode names the governor's state for telemetry: "normal" (full
// prefetching), "degraded" (reduced level), or "shedding" (speculative work
// fully shed).
func (g *governor) Mode() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case g.sheddingLocked():
		return "shedding"
	case g.level < 1:
		return "degraded"
	default:
		return "normal"
	}
}

// Adjustments reports lifetime decrease/increase counts.
func (g *governor) Adjustments() (decreases, increases int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.decreases, g.increases
}
