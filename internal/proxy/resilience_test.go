package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"appx/internal/config"
	"appx/internal/httpmsg"
	"appx/internal/netem"
	"appx/internal/obs/adminv1"
	"appx/internal/proxy/resilience"
	"appx/internal/sig"
)

// resilienceGraph builds a two-host dependency graph: a healthy list
// endpoint whose response fans out into detail fetches on the same healthy
// host and on a separately faultable host.
func resilienceGraph() *sig.Graph {
	g := sig.NewGraph("t")
	pred := &sig.Signature{ID: "t:list#0", Method: "GET", URI: sig.Literal("ok.example/list")}
	okSucc := &sig.Signature{ID: "t:okitem#0", Method: "GET", URI: sig.Literal("ok.example/detail"),
		Query: []sig.Field{{Key: "id", Value: sig.DepValue(pred.ID, "ok[*]")}}}
	sickSucc := &sig.Signature{ID: "t:sickitem#0", Method: "GET", URI: sig.Literal("sick.example/item"),
		Query: []sig.Field{{Key: "id", Value: sig.DepValue(pred.ID, "sick[*]")}}}
	g.Add(pred)
	g.Add(okSucc)
	g.Add(sickSucc)
	g.AddDep(sig.Dependency{PredID: pred.ID, SuccID: okSucc.ID, RespPath: "ok[*]",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})
	g.AddDep(sig.Dependency{PredID: pred.ID, SuccID: sickSucc.ID, RespPath: "sick[*]",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})
	return g
}

// faultableUpstream serves the two-host origin in process. Requests for
// sick.example consult a seeded netem fault injector once one is installed
// (the injector's connect-refusal draw stands in for a refused dial), and
// every /list response carries fresh ids so each round spawns new prefetch
// work instead of deduplicating against the previous round's.
type faultableUpstream struct {
	mu         sync.Mutex
	round      int
	perRound   int
	faults     *netem.Injector
	rejectSick bool
	calls      map[string]int // host → requests that reached the origin
}

func newFaultableUpstream(perRound int) *faultableUpstream {
	return &faultableUpstream{perRound: perRound, calls: map[string]int{}}
}

func (f *faultableUpstream) setFaults(in *netem.Injector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = in
}

func (f *faultableUpstream) reached(host string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[host]
}

func (f *faultableUpstream) RoundTrip(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if r.Host == "sick.example" && f.faults != nil && f.faults.ConnectRefused(r.Host) {
		return nil, fmt.Errorf("dial %s: %w", r.Host, netem.ErrInjectedRefusal)
	}
	f.calls[r.Host]++
	if r.Host == "sick.example" && f.rejectSick {
		return &httpmsg.Response{Status: 404, Body: []byte("no such item")}, nil
	}
	if r.Path == "/list" {
		f.round++
		ok := make([]string, f.perRound)
		sick := make([]string, f.perRound)
		for i := range ok {
			ok[i] = fmt.Sprintf("r%d-%d", f.round, i)
			sick[i] = fmt.Sprintf("s%d-%d", f.round, i)
		}
		body, _ := json.Marshal(map[string]any{"ok": ok, "sick": sick})
		return &httpmsg.Response{Status: 200,
			Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
			Body:   body}, nil
	}
	return &httpmsg.Response{Status: 200, Body: []byte(`{}`)}, nil
}

// resLab wires the two-host graph, a faultable origin, and a proxy with
// deterministic time and randomness into one driveable fixture.
type resLab struct {
	t  *testing.T
	p  *Proxy
	up *faultableUpstream
	pt *proxyTransport
}

func newResLab(t *testing.T, seed int64, res *config.Resilience) *resLab {
	t.Helper()
	g := resilienceGraph()
	cfg := config.Default(g)
	cfg.Resilience = res
	up := newFaultableUpstream(6)
	now := time.Unix(1_700_000_000, 0)
	rnd := rand.New(rand.NewSource(seed))
	// Workers: 1 keeps prefetch execution single-threaded so the injector's
	// seeded draw sequence — and therefore every breaker transition — is
	// identical run to run.
	p := New(Options{Graph: g, Config: cfg, Upstream: up, Workers: 1,
		Now:  func() time.Time { return now },
		Rand: rnd.Float64,
	})
	t.Cleanup(p.Close)
	l := &resLab{t: t, p: p, up: up, pt: &proxyTransport{p: p, user: "res-user"}}
	// Teach both successor exemplars before any fault exists.
	l.get("ok.example", "/detail", "seed")
	l.get("sick.example", "/item", "seed")
	return l
}

func (l *resLab) get(host, path, id string) *httpmsg.Response {
	l.t.Helper()
	req := &httpmsg.Request{Method: "GET", Host: host, Path: path}
	if id != "" {
		req.Query = []httpmsg.Field{{Key: "id", Value: id}}
	}
	resp, err := l.pt.RoundTrip(req)
	if err != nil {
		l.t.Fatalf("GET %s%s: %v", host, path, err)
	}
	return resp
}

// drive runs n list rounds: each teaches the proxy a fresh id fan-out,
// drains the prefetch queue, then consumes two of the round's healthy
// details (which must hit if prefetching stayed healthy).
func (l *resLab) drive(n int) {
	l.t.Helper()
	for i := 0; i < n; i++ {
		l.get("ok.example", "/list", "")
		l.p.Drain()
		round := l.up.round
		l.get("ok.example", "/detail", fmt.Sprintf("r%d-0", round))
		l.get("ok.example", "/detail", fmt.Sprintf("r%d-1", round))
	}
}

func (l *resLab) health() adminv1.HealthResponse {
	l.t.Helper()
	req := httptest.NewRequest("GET", adminv1.PathHealth, nil)
	rec := httptest.NewRecorder()
	l.p.ServeHTTP(rec, req)
	if rec.Code != 200 {
		l.t.Fatalf("%s = %d", adminv1.PathHealth, rec.Code)
	}
	var out adminv1.HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		l.t.Fatalf("%s not JSON: %v", adminv1.PathHealth, err)
	}
	return out
}

// TestBreakerStopsPrefetchingDeadHost: a host refusing every connection
// stops receiving prefetch traffic after the breaker opens — the origin
// sees zero prefetch requests, failures stop at the breaker threshold, and
// later rounds are suppressed at planning time.
func TestBreakerStopsPrefetchingDeadHost(t *testing.T) {
	l := newResLab(t, 7, &config.Resilience{
		RetryAttempts:        1, // isolate the breaker from retry behaviour
		BreakerFailures:      3,
		PrefetchFailureLimit: 1000, // keep signature backoff out of the way
	})
	in := netem.NewInjector(7)
	in.SetFault("sick.example", netem.Fault{ConnectRefuseProb: 1})
	l.up.setFaults(in)

	taught := l.up.reached("sick.example") // the exemplar-teaching request
	l.drive(6)

	snap := l.p.Stats().Snapshot()
	sick := snap.PerSig["t:sickitem#0"]
	if sick.PrefetchErrors != 3 {
		t.Fatalf("prefetch errors = %d, want exactly the breaker threshold 3", sick.PrefetchErrors)
	}
	if sick.PrefetchSuppressed == 0 {
		t.Fatal("no prefetches suppressed after breaker opened")
	}
	if got := l.up.reached("sick.example"); got != taught {
		t.Fatalf("dead host still received %d prefetch requests", got-taught)
	}
	if st := l.p.Breakers().State("sick.example"); st != resilience.Open {
		t.Fatalf("sick.example breaker = %v, want open", st)
	}
	// The healthy host is unaffected: every round's fan-out prefetched, and
	// the consumed details all hit.
	ok := snap.PerSig["t:okitem#0"]
	if ok.Prefetches != 6*6 {
		t.Fatalf("healthy prefetches = %d, want 36", ok.Prefetches)
	}
	if ok.Hits != 2*6 {
		t.Fatalf("healthy hits = %d, want 12", ok.Hits)
	}
	if st := l.p.Breakers().State("ok.example"); st != resilience.Closed {
		t.Fatalf("ok.example breaker = %v, want closed", st)
	}
}

// TestFaultSweepDegradesGracefully is the acceptance scenario: 30 %
// injected connect-failure on one host. The sick host's error count
// plateaus once its breaker opens, the healthy host's hit behaviour is
// byte-for-byte identical to a fault-free run, and /appx/health reports the
// open breaker.
func TestFaultSweepDegradesGracefully(t *testing.T) {
	res := func() *config.Resilience {
		return &config.Resilience{
			RetryAttempts:        1,
			BreakerFailures:      3,
			PrefetchFailureLimit: 1000,
		}
	}
	const seed, rounds = 42, 20

	// Fault-free reference run.
	clean := newResLab(t, seed, res())
	clean.drive(rounds)
	cleanOK := clean.p.Stats().Snapshot().PerSig["t:okitem#0"]

	// Faulted run: 30 % of sick.example connection attempts refused.
	l := newResLab(t, seed, res())
	in := netem.NewInjector(seed)
	in.SetFault("sick.example", netem.Fault{ConnectRefuseProb: 0.3})
	l.up.setFaults(in)
	l.drive(rounds)

	snap := l.p.Stats().Snapshot()
	sick := snap.PerSig["t:sickitem#0"]
	if sick.PrefetchErrors == 0 {
		t.Fatal("no injected failures observed")
	}
	if st := l.p.Breakers().State("sick.example"); st != resilience.Open {
		t.Fatalf("sick.example breaker = %v, want open after sustained faults", st)
	}
	// Plateau: with the breaker open (and a frozen clock, so it never times
	// out into half-open), further rounds add suppressions but no errors.
	l.drive(3)
	after := l.p.Stats().Snapshot().PerSig["t:sickitem#0"]
	if after.PrefetchErrors != sick.PrefetchErrors {
		t.Fatalf("errors kept growing after breaker opened: %d -> %d",
			sick.PrefetchErrors, after.PrefetchErrors)
	}
	if after.PrefetchSuppressed <= sick.PrefetchSuppressed {
		t.Fatalf("suppression count did not grow: %d -> %d",
			sick.PrefetchSuppressed, after.PrefetchSuppressed)
	}
	// Healthy host unaffected: same hits and prefetches as the clean run.
	ok := snap.PerSig["t:okitem#0"]
	if ok.Hits != cleanOK.Hits || ok.Hits == 0 {
		t.Fatalf("healthy host hits changed under fault: clean=%d faulted=%d", cleanOK.Hits, ok.Hits)
	}
	if ok.Prefetches != cleanOK.Prefetches {
		t.Fatalf("healthy host prefetches changed under fault: clean=%d faulted=%d",
			cleanOK.Prefetches, ok.Prefetches)
	}
	// /appx/v1/health reports the open breaker.
	h := l.health()
	if h.Status != "degraded" {
		t.Fatalf("health status = %v, want degraded", h.Status)
	}
	if sickBr, ok := h.Breakers["sick.example"]; !ok || sickBr.State != "open" {
		t.Fatalf("health breakers = %v, want sick.example open", h.Breakers)
	}
}

// TestSigBackoffSuspendsRejectedSignature: an origin that answers
// reconstructions with 404 does not trip the breaker (the host is healthy),
// but the signature's consecutive-failure backoff suspends it.
func TestSigBackoffSuspendsRejectedSignature(t *testing.T) {
	l := newResLab(t, 3, &config.Resilience{
		RetryAttempts:   1,
		BreakerFailures: 3,
		// PrefetchFailureLimit left at its default of 3.
	})
	l.up.mu.Lock()
	l.up.rejectSick = true
	l.up.mu.Unlock()

	l.drive(5)
	snap := l.p.Stats().Snapshot()
	sick := snap.PerSig["t:sickitem#0"]
	// Round 1 queues a full fan-out before the limit is reached, so every
	// instance of that round executes; later rounds are suppressed at
	// planning time and the reject count stays put.
	if sick.PrefetchRejects != 6 {
		t.Fatalf("prefetch rejects = %d, want one round's fan-out of 6", sick.PrefetchRejects)
	}
	if sick.PrefetchSuppressed == 0 {
		t.Fatal("suspended signature still planning prefetches")
	}
	if st := l.p.Breakers().State("sick.example"); st != resilience.Closed {
		t.Fatalf("breaker = %v for a host that answers; rejects must not trip it", st)
	}
	h := l.health()
	if h.Status != "degraded" {
		t.Fatalf("health status = %v, want degraded while a signature is suspended", h.Status)
	}
	if _, ok := h.SuspendedSignatures["t:sickitem#0"]; !ok {
		t.Fatalf("suspendedSignatures = %v, want t:sickitem#0", h.SuspendedSignatures)
	}
}

// TestForwardRetryMasksTransientFailure: a live client GET gets one fast
// retry before the proxy reports 502, and non-idempotent methods do not.
func TestForwardRetryMasksTransientFailure(t *testing.T) {
	g := sig.NewGraph("t")
	g.Add(&sig.Signature{ID: "t:a#0", Method: "GET", URI: sig.Literal("h.example/x")})
	cfg := config.Default(g)
	cfg.Resilience = &config.Resilience{RetryBaseDelay: config.Duration(time.Microsecond)}
	var calls, fails int
	var mu sync.Mutex
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if fails > 0 {
			fails--
			return nil, fmt.Errorf("transient origin failure")
		}
		return &httpmsg.Response{Status: 200, Body: []byte("ok")}, nil
	})
	p := New(Options{Graph: g, Config: cfg, Upstream: up})
	defer p.Close()
	pt := &proxyTransport{p: p, user: "retry-user"}

	fails = 1
	resp, err := pt.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/x"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("GET after transient failure: %v status=%d", err, resp.Status)
	}
	if calls != 2 || p.Stats().Retries() != 1 {
		t.Fatalf("calls = %d retries = %d, want 2 and 1", calls, p.Stats().Retries())
	}

	// Non-idempotent requests must not be replayed: one failed attempt → 502.
	mu.Lock()
	calls, fails = 0, 1
	mu.Unlock()
	resp, err = pt.RoundTrip(&httpmsg.Request{Method: "POST", Host: "h.example", Path: "/x"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 502 {
		t.Fatalf("POST status = %d, want 502 without retry", resp.Status)
	}
	if calls != 1 || p.Stats().Retries() != 1 {
		t.Fatalf("POST calls = %d retries = %d, want 1 attempt and no new retry", calls, p.Stats().Retries())
	}
}
