package proxy

import (
	"testing"
	"time"
)

func TestObserveRespTimeEWMA(t *testing.T) {
	s := NewStats()
	s.ObserveRespTime("a", 100*time.Millisecond)
	if got := s.RespTime("a"); got != 100*time.Millisecond {
		t.Fatalf("first sample = %v", got)
	}
	// EWMA with α=1/4: (3*100 + 200)/4 = 125.
	s.ObserveRespTime("a", 200*time.Millisecond)
	if got := s.RespTime("a"); got != 125*time.Millisecond {
		t.Fatalf("ewma = %v, want 125ms", got)
	}
}

func TestPriorityOrdering(t *testing.T) {
	s := NewStats()
	// Slow signature with good hit rate beats fast one with poor hit rate
	// (§5: linear combination of response time and hit rate).
	s.ObserveRespTime("slow-good", 900*time.Millisecond)
	s.CountPrefetch("slow-good", 10)
	s.CountHit("slow-good", 10, 0, true, false)

	s.ObserveRespTime("fast-bad", 50*time.Millisecond)
	for i := 0; i < 10; i++ {
		s.CountPrefetch("fast-bad", 10)
	}

	if s.Priority("slow-good") <= s.Priority("fast-bad") {
		t.Fatalf("priority(slow-good)=%v <= priority(fast-bad)=%v",
			s.Priority("slow-good"), s.Priority("fast-bad"))
	}
	// Unknown signatures get the neutral exploration prior.
	if got := s.Priority("never-seen"); got != 0.5 {
		t.Fatalf("fresh priority = %v, want 0.5", got)
	}
}

func TestSnapshotAggregation(t *testing.T) {
	s := NewStats()
	s.CountPrefetch("a", 100)
	s.CountPrefetch("a", 100)
	s.CountHit("a", 100, 10*time.Millisecond, true, false)
	s.CountHit("a", 100, 10*time.Millisecond, false, true) // repeat serve, from the shared tier
	s.CountMiss("a", 300)
	s.CountPrefetchError("b")
	s.CountPrefetchReject("b")

	snap := s.Snapshot()
	if snap.Prefetches != 2 || snap.Hits != 2 || snap.Misses != 1 {
		t.Fatalf("counts: %+v", snap)
	}
	if snap.UsedEntries != 1 {
		t.Fatalf("used entries = %d, want 1 (distinct)", snap.UsedEntries)
	}
	if snap.SharedHits != 1 || snap.PerSig["a"].SharedHits != 1 {
		t.Fatalf("shared hits = %d (per-sig %d), want 1", snap.SharedHits, snap.PerSig["a"].SharedHits)
	}
	if got := snap.SharedHitRatio(); got != 0.5 {
		t.Fatalf("shared hit ratio = %v, want 0.5", got)
	}
	if snap.PrefetchedBytes != 200 || snap.ServedBytes != 200 || snap.ForwardedBytes != 300 {
		t.Fatalf("bytes: %+v", snap)
	}
	if snap.SavedLatency != 20*time.Millisecond {
		t.Fatalf("saved = %v", snap.SavedLatency)
	}
	if b := snap.PerSig["b"]; b.PrefetchErrors != 1 || b.PrefetchRejects != 1 {
		t.Fatalf("b = %+v", b)
	}
}

func TestSnapshotDerivedMetrics(t *testing.T) {
	s := NewStats()
	s.CountMiss("a", 1000)               // forwarded
	s.CountPrefetch("a", 500)            // prefetched, unused
	s.CountPrefetch("a", 500)            // prefetched...
	s.CountHit("a", 500, 0, true, false) // ...and consumed
	snap := s.Snapshot()
	// baseline = forwarded + served = 1500; total = forwarded + prefetched = 2000.
	if got := snap.NormalizedDataUsage(); got < 1.33 || got > 1.34 {
		t.Fatalf("data usage = %v", got)
	}
	if got := snap.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio = %v", got)
	}
	if got := snap.UsedPrefetchRatio(); got != 0.5 {
		t.Fatalf("used ratio = %v", got)
	}
	empty := NewStats().Snapshot()
	if empty.NormalizedDataUsage() != 1 || empty.HitRatio() != 0 || empty.UsedPrefetchRatio() != 0 {
		t.Fatal("empty snapshot derived metrics wrong")
	}
}
