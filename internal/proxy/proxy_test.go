package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"appx/internal/apps"
	"appx/internal/config"
	"appx/internal/httpmsg"
	"appx/internal/interp"
	"appx/internal/obs/adminv1"
	"appx/internal/sig"
	"appx/internal/static"
)

// originUpstream routes requests to in-process app origin handlers.
type originUpstream struct {
	handler http.Handler
	mu      sync.Mutex
	calls   []*httpmsg.Request
}

func (o *originUpstream) recorded() []*httpmsg.Request {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*httpmsg.Request(nil), o.calls...)
}

func (o *originUpstream) RoundTrip(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
	o.mu.Lock()
	o.calls = append(o.calls, r.Clone())
	o.mu.Unlock()
	hreq, err := r.ToHTTP()
	if err != nil {
		return nil, err
	}
	hreq.Host = r.Host
	rec := httptest.NewRecorder()
	o.handler.ServeHTTP(rec, hreq)
	return httpmsg.FromHTTPResponse(rec.Result())
}

// lab wires an app, its analyzed graph, a proxy, and an interpreter-backed
// client together, all in process.
type lab struct {
	t     *testing.T
	app   *apps.App
	graph *sig.Graph
	cfg   *config.Config
	proxy *Proxy
	env   *interp.Env
	up    *originUpstream
}

// proxyTransport sends the client's requests through proxy.ServeHTTP.
type proxyTransport struct {
	p    *Proxy
	user string
}

func (pt *proxyTransport) RoundTrip(r *httpmsg.Request) (*httpmsg.Response, error) {
	hreq, err := r.ToHTTP()
	if err != nil {
		return nil, err
	}
	hreq.Host = r.Host
	hreq.RemoteAddr = pt.user + ":12345"
	rec := httptest.NewRecorder()
	pt.p.ServeHTTP(rec, hreq)
	return httpmsg.FromHTTPResponse(rec.Result())
}

func newLab(t *testing.T, app *apps.App, mutate func(*config.Config)) *lab {
	t.Helper()
	g, err := static.Analyze(app.APK.Program, app.Name, app.APK.Entries(), static.Options{Features: static.AllFeatures()})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	cfg := config.Default(g)
	if mutate != nil {
		mutate(cfg)
	}
	up := &originUpstream{handler: app.Handler(0)}
	p := New(Options{Graph: g, Config: cfg, Upstream: up})
	t.Cleanup(p.Close)
	env := interp.NewEnv(app.APK.Program, &proxyTransport{p: p, user: "10.0.0.1"}, interp.DeviceProps{
		UserAgent: "AppxTest/1.0", Locale: "en-US", AppVersion: app.APK.Manifest.Version,
	})
	return &lab{t: t, app: app, graph: g, cfg: cfg, proxy: p, env: env, up: up}
}

func (l *lab) call(method string, args ...interp.Value) {
	l.t.Helper()
	if _, err := l.env.Call(method, args...); err != nil {
		l.t.Fatalf("%s: %v", method, err)
	}
}

func TestWishDetailPrefetchHit(t *testing.T) {
	l := newLab(t, apps.Wish(), nil)
	l.call("WishMain.launch")
	l.proxy.Drain()
	// First detail view teaches the proxy the run-time values (miss).
	l.call("WishMain.onSelectItem", "0")
	l.proxy.Drain()
	before := l.proxy.Stats().Snapshot()
	// Second detail view: the proxy prefetched all 30 details after
	// learning, so this must hit.
	l.call("WishMain.onSelectItem", "7")
	after := l.proxy.Stats().Snapshot()
	if after.Hits <= before.Hits {
		t.Fatalf("no cache hits on second detail view: before=%d after=%d", before.Hits, after.Hits)
	}
}

func TestThumbnailPrefetchDuringLaunch(t *testing.T) {
	// Figure 3(a): the feed response spawns one thumbnail instance per item;
	// the first live thumbnail supplies the exemplar, after which the
	// remaining instances are prefetched while the client is still loading.
	l := newLab(t, apps.Wish(), nil)
	l.call("WishMain.launch")
	l.proxy.Drain()
	snap := l.proxy.Stats().Snapshot()
	if snap.Prefetches == 0 {
		t.Fatal("no prefetches after launch")
	}
	var thumbPrefetches int
	for id, st := range snap.PerSig {
		if st.Prefetches > 0 && id == "wish:WishMain.loadThumb#0" {
			thumbPrefetches = st.Prefetches
		}
	}
	if thumbPrefetches < 25 {
		t.Fatalf("thumbnail prefetches = %d, want ~30", thumbPrefetches)
	}
}

func TestHitResponseIdenticalToOrigin(t *testing.T) {
	// R3: a prefetched response served to the client is byte-identical to
	// what the origin would have returned.
	l := newLab(t, apps.Wish(), nil)
	l.call("WishMain.launch")
	l.call("WishMain.onSelectItem", "0")
	l.proxy.Drain()

	// Ask the origin directly for item 2's detail, mirroring the app's
	// exact request, then compare with what the proxy serves.
	direct := &originUpstream{handler: l.app.Handler(0)}
	var clientResp, originResp *httpmsg.Response
	pt := &proxyTransport{p: l.proxy, user: "10.0.0.1"}

	// Build the app's request for item 2 by replaying through a fresh env
	// that records the transaction (same cookie jar state via launch+select).
	env2 := interp.NewEnv(l.app.APK.Program, interp.TransportFunc(func(r *httpmsg.Request) (*httpmsg.Response, error) {
		resp, err := pt.RoundTrip(r)
		if err == nil && r.Path == "/product/get" {
			clientResp = resp
			originResp, _ = direct.RoundTrip(context.Background(), r)
		}
		return resp, err
	}), interp.DeviceProps{UserAgent: "AppxTest/1.0", Locale: "en-US", AppVersion: l.app.APK.Manifest.Version})
	if _, err := env2.Call("WishMain.launch"); err != nil {
		t.Fatal(err)
	}
	if _, err := env2.Call("WishMain.onSelectItem", "2"); err != nil {
		t.Fatal(err)
	}
	if clientResp == nil || originResp == nil {
		t.Fatal("detail transaction not captured")
	}
	if !bytes.Equal(clientResp.Body, originResp.Body) {
		t.Fatal("served body differs from origin body")
	}
}

func TestChainedPrefetchDoorDash(t *testing.T) {
	// Figure 3(c)/11: after the store list arrives, the proxy prefetches
	// store → menu → items → suggestions recursively.
	l := newLab(t, apps.DoorDash(), nil)
	l.call("DDMain.launch")
	l.call("DDMain.onSelectStore", "0") // teaches exemplars for the chain
	l.call("DDStore.onSelectItem", "0")
	l.proxy.Drain()
	snap := l.proxy.Stats().Snapshot()
	// The chain must have prefetched menus (store fan-out) and suggestions
	// (depth >= 2 from the store response).
	sawMenu, sawSuggest := false, false
	for id, st := range snap.PerSig {
		if st.Prefetches > 0 {
			switch {
			case contains(id, "DDStore.open#2"):
				sawMenu = true
			case contains(id, "DDItem.open#1"):
				sawSuggest = true
			}
		}
	}
	if !sawMenu {
		t.Errorf("menu not prefetched; snapshot: %+v", snap.PerSig)
	}
	if !sawSuggest {
		t.Errorf("suggestion not prefetched (chain depth); snapshot: %+v", snap.PerSig)
	}
	// And a second store view must now hit.
	before := snap.Hits
	l.call("DDMain.onSelectStore", "3")
	if after := l.proxy.Stats().Snapshot().Hits; after <= before {
		t.Fatalf("second store view did not hit: %d -> %d", before, after)
	}
}

func contains(s, sub string) bool {
	return bytes.Contains([]byte(s), []byte(sub))
}

func TestDisablePrefetchBaseline(t *testing.T) {
	g, _ := static.Analyze(apps.Wish().APK.Program, "wish", apps.Wish().APK.Entries(), static.Options{Features: static.AllFeatures()})
	up := &originUpstream{handler: apps.Wish().Handler(0)}
	p := New(Options{Graph: g, Upstream: up, DisablePrefetch: true})
	defer p.Close()
	env := interp.NewEnv(apps.Wish().APK.Program, &proxyTransport{p: p, user: "1.1.1.1"}, interp.DeviceProps{UserAgent: "x", AppVersion: "4.13.0"})
	if _, err := env.Call("WishMain.launch"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Call("WishMain.onSelectItem", "1"); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	snap := p.Stats().Snapshot()
	if snap.Prefetches != 0 || snap.Hits != 0 {
		t.Fatalf("baseline proxy prefetched: %+v", snap)
	}
}

func TestPolicyDisablesSignature(t *testing.T) {
	app := apps.Wish()
	l := newLab(t, app, func(c *config.Config) {
		for _, pol := range c.Policies {
			pol.Prefetch = false
		}
	})
	l.call("WishMain.launch")
	l.call("WishMain.onSelectItem", "0")
	l.proxy.Drain()
	if snap := l.proxy.Stats().Snapshot(); snap.Prefetches != 0 {
		t.Fatalf("prefetches = %d despite prefetch:false", snap.Prefetches)
	}
}

func TestGlobalProbabilityZero(t *testing.T) {
	l := newLab(t, apps.Wish(), func(c *config.Config) { c.GlobalProbability = -1 })
	// -1 clamps to 0 via EffectiveProbability.
	l.call("WishMain.launch")
	l.proxy.Drain()
	if snap := l.proxy.Stats().Snapshot(); snap.Prefetches != 0 {
		t.Fatalf("prefetches = %d with probability 0", snap.Prefetches)
	}
}

func TestDataBudgetStopsPrefetching(t *testing.T) {
	l := newLab(t, apps.Wish(), func(c *config.Config) { c.DataBudgetBytes = 100_000 })
	l.call("WishMain.launch")
	l.proxy.Drain()
	used := l.proxy.DataUsedBytes()
	// The budget is checked before issue, so usage may overshoot by at most
	// the in-flight prefetches (workers), each <= ~315KB.
	if used > 100_000+8*320_000 {
		t.Fatalf("data budget wildly exceeded: %d", used)
	}
	snap := l.proxy.Stats().Snapshot()
	if snap.Prefetches >= 30 {
		t.Fatalf("budget did not curb prefetching: %d prefetches", snap.Prefetches)
	}
}

func TestAddHeaderReachesOriginButNotCacheKey(t *testing.T) {
	l := newLab(t, apps.Wish(), func(c *config.Config) {
		for _, pol := range c.Policies {
			pol.AddHeader = []config.Header{{Key: "X-Proxy", Value: "prefetch"}}
		}
	})
	l.call("WishMain.launch")
	l.call("WishMain.onSelectItem", "0")
	l.proxy.Drain()
	// Origin must have seen tagged prefetch requests.
	sawTag := false
	for _, r := range l.up.recorded() {
		if v, ok := r.GetHeader("X-Proxy"); ok && v == "prefetch" {
			sawTag = true
		}
	}
	if !sawTag {
		t.Fatal("origin never saw the prefetch indicator header")
	}
	// Despite the tag, a clean client request still hits.
	before := l.proxy.Stats().Snapshot().Hits
	l.call("WishMain.onSelectItem", "9")
	if after := l.proxy.Stats().Snapshot().Hits; after <= before {
		t.Fatal("tagged prefetch did not produce a clean-key cache hit")
	}
}

func TestConditionGatesPrefetch(t *testing.T) {
	// Condition on a field the feed response does not satisfy: no detail
	// prefetching.
	l := newLab(t, apps.Wish(), func(c *config.Config) {
		for _, pol := range c.Policies {
			pol.Condition = &config.Condition{Field: "data.products[*].aspect_rat", Op: "gt", Value: "100"}
		}
	})
	l.call("WishMain.launch")
	l.call("WishMain.onSelectItem", "0")
	l.proxy.Drain()
	if snap := l.proxy.Stats().Snapshot(); snap.Prefetches != 0 {
		t.Fatalf("prefetches = %d despite failing condition", snap.Prefetches)
	}
}

func TestExpiryPreventsStaleServing(t *testing.T) {
	now := time.Now()
	clock := &now
	l := newLab(t, apps.Wish(), func(c *config.Config) {
		c.DefaultExpiration = config.Duration(time.Second)
	})
	l.proxy.opts.Now = func() time.Time { return *clock }
	l.call("WishMain.launch")
	l.call("WishMain.onSelectItem", "0")
	l.proxy.Drain()

	// Within expiry: hit.
	before := l.proxy.Stats().Snapshot()
	l.call("WishMain.onSelectItem", "5")
	mid := l.proxy.Stats().Snapshot()
	if mid.Hits <= before.Hits {
		t.Fatal("expected hit within expiry window")
	}
	// Advance the clock past expiry: the detail request must miss its
	// (now stale) prefetched entry. Assert on the detail signature, not the
	// proxy-wide hit counter — the live detail response legitimately fires
	// fresh image prefetches that can race the interaction's own image
	// requests and produce non-stale hits.
	now = now.Add(time.Hour)
	detailSig := "wish:WishDetail.open#0"
	l.call("WishMain.onSelectItem", "6")
	after := l.proxy.Stats().Snapshot()
	if after.PerSig[detailSig].Hits != mid.PerSig[detailSig].Hits {
		t.Fatalf("stale detail entry served after expiry: hits %d -> %d",
			mid.PerSig[detailSig].Hits, after.PerSig[detailSig].Hits)
	}
	if after.PerSig[detailSig].Misses <= mid.PerSig[detailSig].Misses {
		t.Fatal("expired detail request did not miss")
	}
}

func TestUsersIsolated(t *testing.T) {
	l := newLab(t, apps.Wish(), nil)
	l.call("WishMain.launch")
	l.call("WishMain.onSelectItem", "0")
	l.proxy.Drain()
	// User 1 has every item detail cached. A different user's *first*
	// detail view must still miss (per-user caches) — though their own
	// launch legitimately produces thumbnail hits from their own prefetches.
	env2 := interp.NewEnv(l.app.APK.Program, &proxyTransport{p: l.proxy, user: "10.0.0.99"}, interp.DeviceProps{
		UserAgent: "OtherUA/2.0", Locale: "fr-FR", AppVersion: l.app.APK.Manifest.Version,
	})
	detailSig := "wish:WishDetail.open#0"
	before := l.proxy.Stats().Snapshot().PerSig[detailSig]
	if _, err := env2.Call("WishMain.launch"); err != nil {
		t.Fatal(err)
	}
	if _, err := env2.Call("WishMain.onSelectItem", "3"); err != nil {
		t.Fatal(err)
	}
	after := l.proxy.Stats().Snapshot().PerSig[detailSig]
	if after.Hits != before.Hits {
		t.Fatalf("cross-user detail cache hit: %d -> %d", before.Hits, after.Hits)
	}
	if after.Misses <= before.Misses {
		t.Fatalf("user 2's detail view did not reach the origin: misses %d -> %d", before.Misses, after.Misses)
	}
}

// --- unit tests for learning primitives ---

func mkSig() *sig.Signature {
	return &sig.Signature{
		ID:     "t:succ#0",
		Method: "POST",
		URI:    sig.Concat(sig.Wildcard("host"), sig.Literal("/product/get")),
		Header: []sig.Field{
			{Key: "Cookie", Value: sig.Wildcard("cookie")},
		},
		BodyKind: httpmsg.BodyForm,
		BodyForm: []sig.Field{
			{Key: "cid", Value: sig.DepValue("t:pred#0", "items[*].id")},
			{Key: "_client", Value: sig.Literal("android")},
			{Key: "credit_id", Value: sig.Wildcard("branch"), Optional: true},
		},
	}
}

func TestMaterializeWithoutExemplarBlocksOnWilds(t *testing.T) {
	s := mkSig()
	_, ok := materialize(s, "t:pred#0", map[string]string{"items[*].id": "x1"}, nil)
	if ok {
		t.Fatal("materialized despite unresolved wildcards")
	}
	if !needsExemplar(s, "t:pred#0") {
		t.Fatal("needsExemplar = false")
	}
}

func TestMaterializeWithExemplar(t *testing.T) {
	s := mkSig()
	live := &httpmsg.Request{
		Method: "POST", Host: "api.wish.example", Path: "/product/get",
		Header:   []httpmsg.Field{{Key: "Cookie", Value: "bsid=42"}},
		BodyKind: httpmsg.BodyForm,
		BodyForm: []httpmsg.Field{
			{Key: "cid", Value: "zzz"},
			{Key: "_client", Value: "android"},
			// credit_id absent: instance class without it.
		},
	}
	ex := learnExemplar(s, live)
	if ex == nil {
		t.Fatal("learnExemplar returned nil")
	}
	req, ok := materialize(s, "t:pred#0", map[string]string{"items[*].id": "x1"}, ex)
	if !ok {
		t.Fatal("materialize failed with exemplar")
	}
	if req.Host != "api.wish.example" || req.Path != "/product/get" {
		t.Fatalf("URI = %s%s", req.Host, req.Path)
	}
	if v, _ := req.GetForm("cid"); v != "x1" {
		t.Fatalf("cid = %q", v)
	}
	if v, _ := req.GetHeader("Cookie"); v != "bsid=42" {
		t.Fatalf("cookie = %q", v)
	}
	if _, present := req.GetForm("credit_id"); present {
		t.Fatal("optional field included despite absent in exemplar")
	}

	// Now an exemplar in the other instance class (credit_id present).
	live2 := live.Clone()
	live2.SetForm("credit_id", "cc-99")
	ex2 := learnExemplar(s, live2)
	req2, ok := materialize(s, "t:pred#0", map[string]string{"items[*].id": "x2"}, ex2)
	if !ok {
		t.Fatal("materialize failed with exemplar 2")
	}
	if v, present := req2.GetForm("credit_id"); !present || v != "cc-99" {
		t.Fatalf("credit_id = %q %v, want learned value", v, present)
	}
}

func TestLearnExemplarRejectsMismatch(t *testing.T) {
	s := mkSig()
	wrong := &httpmsg.Request{Method: "POST", Host: "api.wish.example", Path: "/other"}
	if ex := learnExemplar(s, wrong); ex != nil {
		t.Fatal("exemplar learned from non-matching request")
	}
}

func TestDepCombosFanOut(t *testing.T) {
	doc := map[string]any{"items": []any{
		map[string]any{"id": "a"}, map[string]any{"id": "b"}, map[string]any{"id": "c"},
	}}
	combos := depCombos(doc, []string{"items[*].id"})
	if len(combos) != 3 {
		t.Fatalf("combos = %d, want 3", len(combos))
	}
	if combos[1]["items[*].id"] != "b" {
		t.Fatalf("combo order wrong: %v", combos)
	}
}

func TestDepCombosCartesianCapped(t *testing.T) {
	big := make([]any, 100)
	for i := range big {
		big[i] = map[string]any{"id": "x"}
	}
	doc := map[string]any{"items": big}
	combos := depCombos(doc, []string{"items[*].id"})
	if len(combos) > maxFanOut {
		t.Fatalf("fan-out not capped: %d", len(combos))
	}
}

func TestDepCombosMissingPath(t *testing.T) {
	if combos := depCombos(map[string]any{}, []string{"nope.id"}); combos != nil {
		t.Fatalf("combos = %v, want nil", combos)
	}
}

func TestResolvePatternOtherPredUsesExemplarSlot(t *testing.T) {
	p := sig.Concat(sig.Literal("k="), sig.DepValue("other:pred#0", "x.y"))
	got, ok := resolvePattern(p, "this:pred#0", nil, []string{"learned"})
	if !ok || got != "k=learned" {
		t.Fatalf("resolvePattern = %q, %v", got, ok)
	}
}

// TestMultiAppProxy: one proxy instance accelerating two apps at once (§2:
// "the proxy can accelerate multiple target apps").
func TestMultiAppProxy(t *testing.T) {
	wish, geek := apps.Wish(), apps.Geek()
	gw, err := static.Analyze(wish.APK.Program, wish.Name, wish.APK.Entries(), static.Options{Features: static.AllFeatures()})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := static.Analyze(geek.APK.Program, geek.Name, geek.APK.Entries(), static.Options{Features: static.AllFeatures()})
	if err != nil {
		t.Fatal(err)
	}
	merged := sig.Merge(gw, gg)

	// Route upstream by host across both apps' origins.
	wh, gh := wish.Handler(0), geek.Handler(0)
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		h := wh
		if strings.Contains(r.Host, "geek") {
			h = gh
		}
		return httpmsg.ServeViaHandler(h, r)
	})
	p := New(Options{Graph: merged, Upstream: up})
	defer p.Close()

	drive := func(a *apps.App, user, selector string) {
		env := interp.NewEnv(a.APK.Program, &proxyTransport{p: p, user: user}, interp.DeviceProps{
			UserAgent: "Multi/1.0", AppVersion: a.APK.Manifest.Version,
		})
		if _, err := env.Call(a.APK.Manifest.LaunchHandler); err != nil {
			t.Fatal(err)
		}
		if _, err := env.Call(selector, "0"); err != nil {
			t.Fatal(err)
		}
		p.Drain()
		if _, err := env.Call(selector, "2"); err != nil {
			t.Fatal(err)
		}
	}
	drive(wish, "10.1.0.1", "WishMain.onSelectItem")
	drive(geek, "10.1.0.2", "GeekMain.onSelectItem")

	snap := p.Stats().Snapshot()
	wishHits, geekHits := 0, 0
	for id, st := range snap.PerSig {
		if strings.HasPrefix(id, "wish:") {
			wishHits += st.Hits
		}
		if strings.HasPrefix(id, "geek:") {
			geekHits += st.Hits
		}
	}
	if wishHits == 0 || geekHits == 0 {
		t.Fatalf("multi-app hits: wish=%d geek=%d", wishHits, geekHits)
	}
}

func TestCacheBoundEviction(t *testing.T) {
	g := sig.NewGraph("t")
	pred := &sig.Signature{ID: "t:pred#0", Method: "GET", URI: sig.Literal("h.example/list")}
	succ := &sig.Signature{ID: "t:succ#0", Method: "GET", URI: sig.Literal("h.example/item"),
		Query: []sig.Field{{Key: "id", Value: sig.DepValue("t:pred#0", "ids[*]")}}}
	g.Add(pred)
	g.Add(succ)
	g.AddDep(sig.Dependency{PredID: pred.ID, SuccID: succ.ID, RespPath: "ids[*]",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})

	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Path == "/list" {
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   []byte(`{"ids":["1","2","3","4","5","6","7","8"]}`)}, nil
		}
		return &httpmsg.Response{Status: 200, Body: []byte(`{}`)}, nil
	})
	// The fan-out signature has no per-user values, so it would normally be
	// shared-eligible; disable the shared tier so entries land in the user
	// scope and the per-user cap is what's exercised.
	cfg := config.Default(g)
	cfg.Cache = &config.Cache{DisableSharedTier: true}
	p := New(Options{Graph: g, Config: cfg, Upstream: up, MaxCacheEntriesPerUser: 4})
	defer p.Close()
	pt := &proxyTransport{p: p, user: "9.9.9.9"}
	// Teach the successor exemplar, then trigger the 8-way fan-out.
	if _, err := pt.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/item",
		Query: []httpmsg.Field{{Key: "id", Value: "0"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.RoundTrip(&httpmsg.Request{Method: "GET", Host: "h.example", Path: "/list"}); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	n, _ := p.Cache().ScopeStats("9.9.9.9")
	if n > 4 {
		t.Fatalf("cache grew to %d entries, bound is 4", n)
	}
	if ev := p.Cache().Metrics().Evictions.ScopeEntries; ev == 0 {
		t.Fatal("no entry-cap evictions counted")
	}
	if snap := p.Stats().Snapshot(); snap.Prefetches < 8 {
		t.Fatalf("prefetches = %d, want 8 (eviction, not suppression)", snap.Prefetches)
	}
}

func TestUserPruning(t *testing.T) {
	g := sig.NewGraph("t")
	g.Add(&sig.Signature{ID: "a", Method: "GET", URI: sig.Literal("h/x")})
	now := time.Now()
	clock := &now
	p := New(Options{Graph: g,
		Upstream: UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
			return &httpmsg.Response{Status: 200}, nil
		}),
		Now: func() time.Time { return *clock },
	})
	defer p.Close()
	p.user("u1")
	p.user("u2")
	now = now.Add(10 * time.Minute)
	p.user("u3")
	if got := p.PruneUsers(5 * time.Minute); got != 2 {
		t.Fatalf("pruned %d users, want 2", got)
	}
	if p.UserCount() != 1 {
		t.Fatalf("users = %d, want 1", p.UserCount())
	}
}

func TestMaxUsersEviction(t *testing.T) {
	g := sig.NewGraph("t")
	p := New(Options{Graph: g,
		Upstream: UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
			return &httpmsg.Response{Status: 200}, nil
		}),
		MaxUsers: 3,
	})
	defer p.Close()
	for i := 0; i < 10; i++ {
		p.user(string(rune('a' + i)))
	}
	if got := p.UserCount(); got > 3 {
		t.Fatalf("users = %d, bound 3", got)
	}
}

func TestPerUserProbabilityTiering(t *testing.T) {
	// §4.4 service differentiation: the premium user gets prefetching, the
	// free tier (probability 0) does not.
	l := newLab(t, apps.Wish(), func(c *config.Config) {
		c.UserProbability = map[string]float64{"free-user": 0}
	})
	// Premium flow (default probability 1).
	l.call("WishMain.launch")
	l.call("WishMain.onSelectItem", "0")
	l.proxy.Drain()
	premiumPre := l.proxy.Stats().Snapshot().Prefetches
	if premiumPre == 0 {
		t.Fatal("premium user got no prefetching")
	}
	// Free-tier flow.
	env := interp.NewEnv(l.app.APK.Program, &proxyTransport{p: l.proxy, user: "free-user"}, interp.DeviceProps{
		UserAgent: "Free/1.0", AppVersion: l.app.APK.Manifest.Version,
	})
	if _, err := env.Call("WishMain.launch"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Call("WishMain.onSelectItem", "0"); err != nil {
		t.Fatal(err)
	}
	l.proxy.Drain()
	if after := l.proxy.Stats().Snapshot().Prefetches; after != premiumPre {
		t.Fatalf("free-tier user triggered prefetches: %d -> %d", premiumPre, after)
	}
}

func TestRefreshExpiredRePrefetches(t *testing.T) {
	now := time.Now()
	clock := &now
	app := apps.Wish()
	g, err := static.Analyze(app.APK.Program, app.Name, app.APK.Entries(), static.Options{Features: static.AllFeatures()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(g)
	cfg.DefaultExpiration = config.Duration(time.Second)
	up := &originUpstream{handler: app.Handler(0)}
	p := New(Options{Graph: g, Config: cfg, Upstream: up, RefreshExpired: true,
		Now: func() time.Time { return *clock }})
	defer p.Close()
	env := interp.NewEnv(app.APK.Program, &proxyTransport{p: p, user: "refresh-user"}, interp.DeviceProps{
		UserAgent: "R/1.0", AppVersion: app.APK.Manifest.Version,
	})
	if _, err := env.Call("WishMain.launch"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Call("WishMain.onSelectItem", "0"); err != nil {
		t.Fatal(err)
	}
	p.Drain()

	// Expire everything, then touch an item: it misses but triggers a
	// refresh prefetch; after draining, the same item hits again.
	now = now.Add(time.Hour)
	detailSig := "wish:WishDetail.open#0"
	if _, err := env.Call("WishMain.onSelectItem", "5"); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	before := p.Stats().Snapshot().PerSig[detailSig].Hits
	if _, err := env.Call("WishMain.onSelectItem", "5"); err != nil {
		t.Fatal(err)
	}
	after := p.Stats().Snapshot().PerSig[detailSig].Hits
	if after <= before {
		t.Fatalf("refresh-on-expire did not repopulate the cache: hits %d -> %d", before, after)
	}
}

func TestDisableChainingStopsRecursivePrefetch(t *testing.T) {
	app := apps.DoorDash()
	g, err := static.Analyze(app.APK.Program, app.Name, app.APK.Entries(), static.Options{Features: static.AllFeatures()})
	if err != nil {
		t.Fatal(err)
	}
	up := &originUpstream{handler: app.Handler(0)}
	p := New(Options{Graph: g, Upstream: up, DisableChaining: true})
	defer p.Close()
	env := interp.NewEnv(app.APK.Program, &proxyTransport{p: p, user: "nochain"}, interp.DeviceProps{
		UserAgent: "NC/1.0", AppVersion: app.APK.Manifest.Version,
	})
	if _, err := env.Call("DDMain.launch"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Call("DDMain.onSelectStore", "0"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Call("DDStore.onSelectItem", "0"); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	snap := p.Stats().Snapshot()
	// Store info is prefetched (direct successor of the live store list),
	// but the menu — whose dependency values live in *prefetched* store
	// responses — must not be.
	if st := snap.PerSig["doordash:DDStore.open#0"]; st.Prefetches == 0 {
		t.Fatal("direct successor not prefetched")
	}
	menu := snap.PerSig["doordash:DDStore.open#2"]
	// One menu prefetch is legitimate (from the LIVE store response of the
	// user's own visit); the chain would have produced ~16.
	if menu.Prefetches > 3 {
		t.Fatalf("menu prefetches = %d despite chaining disabled", menu.Prefetches)
	}
}

func TestStatusSurface(t *testing.T) {
	l := newLab(t, apps.Wish(), nil)
	l.call("WishMain.launch")
	l.proxy.Drain()

	get := func(path string) (*httptest.ResponseRecorder, *http.Request) {
		req := httptest.NewRequest("GET", path, nil) // origin-form: URL.Host empty
		rec := httptest.NewRecorder()
		l.proxy.ServeHTTP(rec, req)
		return rec, req
	}
	rec, _ := get("/healthz")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "signatures") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	rec, _ = get(adminv1.PathStats)
	if rec.Code != 200 {
		t.Fatalf("stats = %d", rec.Code)
	}
	var stats adminv1.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if stats.Prefetches <= 0 {
		t.Fatalf("stats prefetches = %d", stats.Prefetches)
	}
	// The span-derived request block covers the proxied traffic: every
	// request that flowed through ServeHTTP finished exactly one span.
	if stats.Requests.Total == 0 || len(stats.Requests.Outcomes) == 0 {
		t.Fatalf("stats requests block empty: %+v", stats.Requests)
	}
	// The pre-versioning paths survive as deprecated redirects to /appx/v1.
	for legacy, successor := range map[string]string{
		"/appx/stats":  adminv1.PathStats,
		"/appx/health": adminv1.PathHealth,
	} {
		rec, _ = get(legacy)
		if rec.Code != http.StatusTemporaryRedirect {
			t.Fatalf("%s = %d, want 307", legacy, rec.Code)
		}
		if got := rec.Header().Get("Location"); got != successor {
			t.Fatalf("%s Location = %q, want %q", legacy, got, successor)
		}
		if rec.Header().Get("Deprecation") != "true" {
			t.Fatalf("%s missing Deprecation header", legacy)
		}
		if link := rec.Header().Get("Link"); !strings.Contains(link, `rel="successor-version"`) {
			t.Fatalf("%s Link = %q, want successor-version relation", legacy, link)
		}
	}
	// /appx/v1/metrics serves the Prometheus text exposition.
	rec, _ = get(adminv1.PathMetrics)
	if rec.Code != 200 || !strings.Contains(rec.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("metrics = %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE appx_requests_total counter",
		"# TYPE appx_request_duration_seconds histogram",
		`appx_sched_submitted_total{class="foreground"}`,
		"appx_cache_hits_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics exposition missing %q", want)
		}
	}
	// /appx/v1/spans returns the recent span ring, newest first.
	rec, _ = get(adminv1.PathSpans + "?n=8")
	if rec.Code != 200 {
		t.Fatalf("spans = %d", rec.Code)
	}
	var spans adminv1.SpansResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatalf("spans not JSON: %v", err)
	}
	if spans.Total == 0 || len(spans.Spans) == 0 {
		t.Fatalf("spans empty: total=%d n=%d", spans.Total, len(spans.Spans))
	}
	if spans.Spans[0].Outcome == "" || spans.Spans[0].WallMs < 0 {
		t.Fatalf("span malformed: %+v", spans.Spans[0])
	}
	rec, _ = get("/nope")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown endpoint = %d", rec.Code)
	}
}

// Steady state: a literal-URI client request repeated after warm-up must be
// answered entirely by the exact match level — zero regex evaluations.
func TestSteadyStateLiteralZeroRegex(t *testing.T) {
	l := newLab(t, apps.Wish(), nil)
	l.call("WishMain.launch")
	l.proxy.Drain()
	before := l.graph.MatchTelemetry()
	l.call("WishMain.launch")
	l.proxy.Drain()
	after := l.graph.MatchTelemetry()
	if after.Lookups <= before.Lookups {
		t.Fatal("second launch performed no signature lookups")
	}
	if d := after.RegexEvals - before.RegexEvals; d != 0 {
		t.Fatalf("steady-state literal requests cost %d regex evaluations, want 0", d)
	}
	if after.ExactHits <= before.ExactHits {
		t.Fatal("literal feed request did not hit the exact match level")
	}
}

// /appx/stats exposes the match-index telemetry counters.
func TestStatsMatchIndexTelemetry(t *testing.T) {
	l := newLab(t, apps.Wish(), nil)
	l.call("WishMain.launch")
	l.proxy.Drain()
	req := httptest.NewRequest("GET", adminv1.PathStats, nil)
	rec := httptest.NewRecorder()
	l.proxy.ServeHTTP(rec, req)
	var stats adminv1.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if stats.MatchIndex.Lookups <= 0 {
		t.Fatalf("matchIndex lookups = %d, want > 0", stats.MatchIndex.Lookups)
	}
}
