// Package resilience hardens the proxy's origin path against flaky or dead
// origin servers: a per-host three-state circuit breaker and a retrying
// Upstream middleware with capped, jittered exponential backoff. The proxy
// sits between millions of handsets and third-party origins it does not
// control (§4.5, §5 of the paper), so a sick origin must be contained —
// failed fast, probed gently, and never allowed to drain the prefetch
// workers or the data budget.
package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int

const (
	// Closed passes traffic and counts consecutive failures.
	Closed State = iota
	// Open rejects traffic until OpenTimeout has elapsed.
	Open
	// HalfOpen admits one probe at a time; success closes the circuit,
	// failure reopens it.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerOptions configures a per-host breaker set.
type BreakerOptions struct {
	// FailureThreshold is the consecutive-failure count that trips a closed
	// breaker (default 5).
	FailureThreshold int
	// OpenTimeout is how long an open breaker rejects before admitting a
	// half-open probe (default 10s).
	OpenTimeout time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes close a
	// half-open breaker (default 1).
	HalfOpenSuccesses int
	// Now supplies time; defaults to time.Now. Injected for deterministic
	// tests.
	Now func() time.Time
}

func (o *BreakerOptions) fill() {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 5
	}
	if o.OpenTimeout <= 0 {
		o.OpenTimeout = 10 * time.Second
	}
	if o.HalfOpenSuccesses <= 0 {
		o.HalfOpenSuccesses = 1
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// breaker is one host's circuit state.
type breaker struct {
	state     State
	failures  int // consecutive failures while closed
	successes int // consecutive successes while half-open
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
}

// Breakers is a set of circuit breakers keyed by origin host. The zero
// value is not usable; call NewBreakers.
type Breakers struct {
	opts BreakerOptions

	mu    sync.Mutex
	hosts map[string]*breaker
}

// NewBreakers builds a breaker set.
func NewBreakers(opts BreakerOptions) *Breakers {
	opts.fill()
	return &Breakers{opts: opts, hosts: map[string]*breaker{}}
}

func (bs *Breakers) host(host string) *breaker {
	b, ok := bs.hosts[host]
	if !ok {
		b = &breaker{}
		bs.hosts[host] = b
	}
	return b
}

// tick advances an open breaker to half-open once its timeout has elapsed
// (bs.mu held).
func (bs *Breakers) tick(b *breaker) {
	if b.state == Open && bs.opts.Now().Sub(b.openedAt) >= bs.opts.OpenTimeout {
		b.state = HalfOpen
		b.successes = 0
		b.probing = false
	}
}

// Allow reports whether a request to host may proceed, and reserves the
// half-open probe slot when it does. Callers that receive true MUST report
// the outcome via ReportSuccess or ReportFailure.
func (bs *Breakers) Allow(host string) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.host(host)
	bs.tick(b)
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default: // Open
		return false
	}
}

// Ready is a side-effect-free preview of Allow: would a request to host be
// admitted right now? The prefetch planner uses it to skip queueing work
// for a host whose breaker would reject it anyway.
func (bs *Breakers) Ready(host string) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.host(host)
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		return !b.probing
	default:
		return bs.opts.Now().Sub(b.openedAt) >= bs.opts.OpenTimeout
	}
}

// ReportSuccess records a successful transaction with host.
func (bs *Breakers) ReportSuccess(host string) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.host(host)
	bs.tick(b)
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		b.probing = false
		b.successes++
		if b.successes >= bs.opts.HalfOpenSuccesses {
			*b = breaker{} // back to a clean closed state
		}
	case Open:
		// A success while open (an in-flight request that started before the
		// trip) is good news but not a probe; leave the timer running.
	}
}

// ReportFailure records a failed transaction with host.
func (bs *Breakers) ReportFailure(host string) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.host(host)
	bs.tick(b)
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= bs.opts.FailureThreshold {
			b.state = Open
			b.openedAt = bs.opts.Now()
		}
	case HalfOpen:
		b.state = Open
		b.openedAt = bs.opts.Now()
		b.probing = false
		b.successes = 0
	case Open:
		// Already open; nothing to count.
	}
}

// State returns host's current breaker state (advancing open → half-open
// when the timeout has elapsed).
func (bs *Breakers) State(host string) State {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.host(host)
	bs.tick(b)
	return b.state
}

// BreakerSnapshot is one host's observable breaker state.
type BreakerSnapshot struct {
	State State
	// ConsecutiveFailures is the closed-state failure streak.
	ConsecutiveFailures int
	// OpenFor is how long the breaker has been open (zero unless open).
	OpenFor time.Duration
}

// Restore seeds the breaker set from a persisted snapshot (warm restart):
// each host's state and failure streak are reinstated, and an open breaker
// resumes its timeout mid-count — openedAt is back-dated by OpenFor so a
// breaker that had 3s of its open window left before the restart has 3s
// left after it. Probe bookkeeping (probing, half-open successes) is
// transient and starts clean. Existing in-memory state for a host is
// overwritten; hosts not in the snapshot are untouched.
func (bs *Breakers) Restore(snap map[string]BreakerSnapshot) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	now := bs.opts.Now()
	for host, s := range snap {
		b := &breaker{state: s.State, failures: s.ConsecutiveFailures}
		if s.State == Open {
			b.openedAt = now.Add(-s.OpenFor)
		}
		bs.hosts[host] = b
	}
}

// Snapshot captures every tracked host's breaker state.
func (bs *Breakers) Snapshot() map[string]BreakerSnapshot {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	out := make(map[string]BreakerSnapshot, len(bs.hosts))
	now := bs.opts.Now()
	for host, b := range bs.hosts {
		bs.tick(b)
		snap := BreakerSnapshot{State: b.state, ConsecutiveFailures: b.failures}
		if b.state == Open {
			snap.OpenFor = now.Sub(b.openedAt)
		}
		out[host] = snap
	}
	return out
}
