package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced time source.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreakers(clock *fakeClock) *Breakers {
	return NewBreakers(BreakerOptions{
		FailureThreshold:  3,
		OpenTimeout:       10 * time.Second,
		HalfOpenSuccesses: 2,
		Now:               clock.Now,
	})
}

func TestBreakerClosedUntilThreshold(t *testing.T) {
	clock := newFakeClock()
	bs := newTestBreakers(clock)
	for i := 0; i < 2; i++ {
		bs.ReportFailure("h")
	}
	if got := bs.State("h"); got != Closed {
		t.Fatalf("state after 2/3 failures = %v, want closed", got)
	}
	// A success resets the streak.
	bs.ReportSuccess("h")
	bs.ReportFailure("h")
	bs.ReportFailure("h")
	if got := bs.State("h"); got != Closed {
		t.Fatalf("state after reset + 2 failures = %v, want closed", got)
	}
	bs.ReportFailure("h")
	if got := bs.State("h"); got != Open {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if bs.Allow("h") {
		t.Fatal("open breaker allowed a request")
	}
	if bs.Ready("h") {
		t.Fatal("open breaker reported ready")
	}
}

func TestBreakerOpenToHalfOpenAfterTimeout(t *testing.T) {
	clock := newFakeClock()
	bs := newTestBreakers(clock)
	for i := 0; i < 3; i++ {
		bs.ReportFailure("h")
	}
	clock.Advance(9 * time.Second)
	if bs.Allow("h") {
		t.Fatal("allowed before OpenTimeout elapsed")
	}
	clock.Advance(time.Second)
	if !bs.Ready("h") {
		t.Fatal("not ready after OpenTimeout")
	}
	if !bs.Allow("h") {
		t.Fatal("half-open breaker rejected the first probe")
	}
	if got := bs.State("h"); got != HalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	// Only one probe may be in flight.
	if bs.Allow("h") {
		t.Fatal("second concurrent probe admitted")
	}
}

func TestBreakerHalfOpenSuccessCloses(t *testing.T) {
	clock := newFakeClock()
	bs := newTestBreakers(clock)
	for i := 0; i < 3; i++ {
		bs.ReportFailure("h")
	}
	clock.Advance(10 * time.Second)
	// Two successful probes (HalfOpenSuccesses = 2) close the circuit.
	for i := 0; i < 2; i++ {
		if !bs.Allow("h") {
			t.Fatalf("probe %d rejected", i)
		}
		bs.ReportSuccess("h")
	}
	if got := bs.State("h"); got != Closed {
		t.Fatalf("state after probe successes = %v, want closed", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clock := newFakeClock()
	bs := newTestBreakers(clock)
	for i := 0; i < 3; i++ {
		bs.ReportFailure("h")
	}
	clock.Advance(10 * time.Second)
	if !bs.Allow("h") {
		t.Fatal("probe rejected")
	}
	bs.ReportFailure("h")
	if got := bs.State("h"); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The open timer restarted: still open 9s later, half-open at 10s.
	clock.Advance(9 * time.Second)
	if bs.Allow("h") {
		t.Fatal("reopened breaker admitted traffic early")
	}
	clock.Advance(time.Second)
	if !bs.Allow("h") {
		t.Fatal("reopened breaker never re-probed")
	}
}

func TestBreakerHostsIndependent(t *testing.T) {
	clock := newFakeClock()
	bs := newTestBreakers(clock)
	for i := 0; i < 3; i++ {
		bs.ReportFailure("sick")
	}
	if !bs.Allow("healthy") {
		t.Fatal("healthy host affected by sick host's breaker")
	}
	snap := bs.Snapshot()
	if snap["sick"].State != Open {
		t.Fatalf("snapshot sick = %+v, want open", snap["sick"])
	}
	if snap["healthy"].State != Closed {
		t.Fatalf("snapshot healthy = %+v, want closed", snap["healthy"])
	}
}

func TestBreakerSnapshotOpenFor(t *testing.T) {
	clock := newFakeClock()
	bs := newTestBreakers(clock)
	for i := 0; i < 3; i++ {
		bs.ReportFailure("h")
	}
	clock.Advance(4 * time.Second)
	if got := bs.Snapshot()["h"].OpenFor; got != 4*time.Second {
		t.Fatalf("OpenFor = %v, want 4s", got)
	}
}

// TestBreakerHalfOpenProbeRace: when an open breaker's timeout elapses,
// many concurrent callers race Allow — exactly one may win the half-open
// probe slot per window, no matter the interleaving. Run under -race this
// also checks the slot reservation itself is properly synchronized.
func TestBreakerHalfOpenProbeRace(t *testing.T) {
	clock := newFakeClock()
	bs := newTestBreakers(clock)
	trip := func() {
		for i := 0; i < 3; i++ {
			bs.ReportFailure("h")
		}
	}
	race := func() (admitted int32) {
		const racers = 32
		var wg sync.WaitGroup
		var n int32
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if bs.Allow("h") {
					atomic.AddInt32(&n, 1)
				}
			}()
		}
		wg.Wait()
		return n
	}

	trip()
	clock.Advance(11 * time.Second)
	if got := race(); got != 1 {
		t.Fatalf("half-open window admitted %d probes, want exactly 1", got)
	}
	// The losing racers must not have consumed anything: a failed probe
	// reopens, and the next window again admits exactly one.
	bs.ReportFailure("h")
	if got := bs.State("h"); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	clock.Advance(11 * time.Second)
	if got := race(); got != 1 {
		t.Fatalf("second half-open window admitted %d probes, want exactly 1", got)
	}
	// Successful probes (HalfOpenSuccesses: 2) close the circuit; after the
	// first success the slot frees for the second probe.
	bs.ReportSuccess("h")
	if got := race(); got != 1 {
		t.Fatalf("post-success half-open admitted %d probes, want exactly 1", got)
	}
	bs.ReportSuccess("h")
	if got := bs.State("h"); got != Closed {
		t.Fatalf("state after 2 probe successes = %v, want closed", got)
	}

	// A closed breaker under concurrent traffic: all callers admitted, all
	// report, state stays consistent. Material for the race detector more
	// than for the assertions.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if bs.Allow("h") {
					if k%8 == 0 && j%50 == 49 {
						bs.ReportFailure("h")
					} else {
						bs.ReportSuccess("h")
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if got := bs.State("h"); got != Closed && got != Open && got != HalfOpen {
		t.Fatalf("breaker in impossible state %v", got)
	}
}
