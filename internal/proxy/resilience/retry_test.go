package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"appx/internal/httpmsg"
)

// flakyUpstream fails the first n calls, then succeeds.
type flakyUpstream struct {
	failFirst int
	calls     int
}

func (f *flakyUpstream) RoundTrip(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
	f.calls++
	if f.calls <= f.failFirst {
		return nil, fmt.Errorf("transient failure %d", f.calls)
	}
	return &httpmsg.Response{Status: 200, Body: []byte("ok")}, nil
}

func instantSleep(ctx context.Context, d time.Duration) error { return nil }

func TestRetrySucceedsAfterTransientFailure(t *testing.T) {
	up := &flakyUpstream{failFirst: 1}
	rt := NewRetrier(up, RetryOptions{MaxAttempts: 2, Sleep: instantSleep}, nil, false)
	resp, err := rt.RoundTrip(context.Background(), &httpmsg.Request{Method: "GET", Host: "h", Path: "/"})
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	if resp.Status != 200 || up.calls != 2 {
		t.Fatalf("status=%d calls=%d, want 200 after 2 calls", resp.Status, up.calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	up := &flakyUpstream{failFirst: 10}
	rt := NewRetrier(up, RetryOptions{MaxAttempts: 3, Sleep: instantSleep}, nil, false)
	_, err := rt.RoundTrip(context.Background(), &httpmsg.Request{Method: "GET", Host: "h", Path: "/"})
	if err == nil {
		t.Fatal("expected error after exhausting attempts")
	}
	if up.calls != 3 {
		t.Fatalf("calls = %d, want 3", up.calls)
	}
}

func TestRetryOnlyIdempotentMethods(t *testing.T) {
	for _, method := range []string{"POST", "PUT", "DELETE", "PATCH"} {
		up := &flakyUpstream{failFirst: 10}
		rt := NewRetrier(up, RetryOptions{MaxAttempts: 3, Sleep: instantSleep}, nil, false)
		if _, err := rt.RoundTrip(context.Background(), &httpmsg.Request{Method: method, Host: "h", Path: "/"}); err == nil {
			t.Fatalf("%s: expected error", method)
		}
		if up.calls != 1 {
			t.Fatalf("%s retried: %d calls, want 1", method, up.calls)
		}
	}
}

func TestRetryCountsCallback(t *testing.T) {
	up := &flakyUpstream{failFirst: 2}
	var retries int
	rt := NewRetrier(up, RetryOptions{MaxAttempts: 3, Sleep: instantSleep,
		OnRetry: func(host string, attempt int) { retries++ }}, nil, false)
	if _, err := rt.RoundTrip(context.Background(), &httpmsg.Request{Method: "GET", Host: "h", Path: "/"}); err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	if retries != 2 {
		t.Fatalf("OnRetry fired %d times, want 2", retries)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base, max := 100*time.Millisecond, time.Second
	// The full-jitter envelope: attempt k draws uniformly from
	// [0, min(max, base<<k)).
	for attempt := 0; attempt < 8; attempt++ {
		ceil := base << attempt
		if ceil > max {
			ceil = max
		}
		for i := 0; i < 200; i++ {
			d := Backoff(attempt, base, max, rng.Float64)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d: backoff %v outside [0, %v)", attempt, d, ceil)
			}
		}
	}
}

func TestBackoffDeterministicWithSeededRand(t *testing.T) {
	seq := func() []time.Duration {
		rng := rand.New(rand.NewSource(5))
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = Backoff(i, 50*time.Millisecond, 2*time.Second, rng.Float64)
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestRetryPerAttemptDeadline(t *testing.T) {
	// Each attempt gets its own deadline: an upstream that blocks until its
	// context expires fails per attempt rather than hanging forever.
	attempts := 0
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		attempts++
		<-ctx.Done()
		return nil, ctx.Err()
	})
	rt := NewRetrier(up, RetryOptions{
		MaxAttempts: 2, PerAttemptTimeout: 20 * time.Millisecond, Sleep: instantSleep,
	}, nil, false)
	start := time.Now()
	_, err := rt.RoundTrip(context.Background(), &httpmsg.Request{Method: "GET", Host: "h", Path: "/"})
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("per-attempt deadlines did not bound the call: %v", elapsed)
	}
}

func TestRetryHonoursCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	up := &flakyUpstream{}
	rt := NewRetrier(up, RetryOptions{Sleep: instantSleep}, nil, false)
	if _, err := rt.RoundTrip(ctx, &httpmsg.Request{Method: "GET", Host: "h", Path: "/"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if up.calls != 0 {
		t.Fatal("attempted a round trip under a cancelled context")
	}
}

func TestRetryGatedByOpenBreaker(t *testing.T) {
	clock := newFakeClock()
	bs := NewBreakers(BreakerOptions{FailureThreshold: 2, OpenTimeout: 10 * time.Second, Now: clock.Now})
	up := &flakyUpstream{failFirst: 100}
	rt := NewRetrier(up, RetryOptions{MaxAttempts: 1, Sleep: instantSleep}, bs, true)
	req := &httpmsg.Request{Method: "GET", Host: "sick", Path: "/"}
	// Two failures trip the breaker; the third call fails fast with ErrOpen
	// without reaching the upstream.
	for i := 0; i < 2; i++ {
		rt.RoundTrip(context.Background(), req)
	}
	calls := up.calls
	_, err := rt.RoundTrip(context.Background(), req)
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if up.calls != calls {
		t.Fatal("gated request still reached the upstream")
	}
	// After the timeout, the probe goes through and heals the circuit.
	clock.Advance(10 * time.Second)
	up.failFirst = 0
	up.calls = 0
	if _, err := rt.RoundTrip(context.Background(), req); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if got := bs.State("sick"); got != Closed {
		t.Fatalf("state after healed probe = %v, want closed", got)
	}
}

func TestRetryUngatedStillReportsToBreaker(t *testing.T) {
	clock := newFakeClock()
	bs := NewBreakers(BreakerOptions{FailureThreshold: 2, OpenTimeout: 10 * time.Second, Now: clock.Now})
	up := &flakyUpstream{failFirst: 100}
	rt := NewRetrier(up, RetryOptions{MaxAttempts: 1, Sleep: instantSleep}, bs, false)
	req := &httpmsg.Request{Method: "GET", Host: "sick", Path: "/"}
	for i := 0; i < 3; i++ {
		rt.RoundTrip(context.Background(), req)
	}
	// Ungated: every call still reaches the upstream even once open...
	if up.calls != 3 {
		t.Fatalf("upstream calls = %d, want 3", up.calls)
	}
	// ...but the breaker has observed the failures.
	if got := bs.State("sick"); got != Open {
		t.Fatalf("state = %v, want open", got)
	}
}

func TestRetryFiveHundredCountsAsBreakerFailure(t *testing.T) {
	clock := newFakeClock()
	bs := NewBreakers(BreakerOptions{FailureThreshold: 2, OpenTimeout: time.Second, Now: clock.Now})
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		return &httpmsg.Response{Status: 503}, nil
	})
	rt := NewRetrier(up, RetryOptions{MaxAttempts: 1, Sleep: instantSleep}, bs, false)
	req := &httpmsg.Request{Method: "GET", Host: "h", Path: "/"}
	for i := 0; i < 2; i++ {
		if _, err := rt.RoundTrip(context.Background(), req); err != nil {
			t.Fatalf("RoundTrip: %v", err) // 5xx is returned, not retried
		}
	}
	if got := bs.State("h"); got != Open {
		t.Fatalf("state after 5xx streak = %v, want open", got)
	}
}
