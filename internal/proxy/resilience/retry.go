package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"appx/internal/httpmsg"
)

// Upstream mirrors the proxy's origin-side transaction interface. It is
// declared here (structurally identical to proxy.Upstream) so the middleware
// can wrap any upstream without an import cycle.
type Upstream interface {
	RoundTrip(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error)
}

// UpstreamFunc adapts a function to Upstream.
type UpstreamFunc func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error)

// RoundTrip implements Upstream.
func (f UpstreamFunc) RoundTrip(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
	return f(ctx, r)
}

// ErrOpen is returned (wrapped) when a request is rejected because the
// host's circuit breaker is open.
var ErrOpen = errors.New("resilience: circuit open")

// RetryOptions configures the retrying middleware.
type RetryOptions struct {
	// MaxAttempts bounds total tries per idempotent request, including the
	// first (default 2: one fast retry). Non-idempotent requests always get
	// exactly one attempt.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff between attempts (default
	// 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// PerAttemptTimeout bounds each individual attempt (default 15s). The
	// caller's context still bounds the whole request.
	PerAttemptTimeout time.Duration
	// Rand supplies the jitter draws in [0,1); defaults to math/rand.
	// Injected for deterministic tests.
	Rand func() float64
	// Sleep waits between attempts; defaults to a context-aware timer.
	// Injected so tests run instantly.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when set, is called before each retry attempt (attempt is
	// 1-based: 1 = first retry).
	OnRetry func(host string, attempt int)
}

func (o *RetryOptions) fill() {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 50 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Second
	}
	if o.PerAttemptTimeout <= 0 {
		o.PerAttemptTimeout = 15 * time.Second
	}
	if o.Rand == nil {
		o.Rand = rand.Float64
	}
	if o.Sleep == nil {
		o.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

// Backoff computes the delay before retry `attempt` (0-based) using capped
// exponential backoff with full jitter: uniform in [0, min(max, base<<attempt)).
// Full jitter decorrelates the retry storms of many callers hitting the same
// sick origin.
func Backoff(attempt int, base, max time.Duration, rnd func() float64) time.Duration {
	if base <= 0 {
		return 0
	}
	ceil := base
	for i := 0; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if max > 0 && ceil > max {
		ceil = max
	}
	return time.Duration(rnd() * float64(ceil))
}

// idempotent reports whether a request is safe to replay against the origin.
// Retrying is restricted to side-effect-free methods: replaying a POST could
// alter app state (violating the proxy's R3 transparency guarantee).
func idempotent(method string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, "get", "head":
		return true
	}
	return false
}

// Retrier is an Upstream middleware: per-attempt deadlines, breaker
// accounting, and capped-backoff retries for idempotent requests.
type Retrier struct {
	next Upstream
	opts RetryOptions

	// breakers, when set, receives success/failure reports for every
	// attempt. When gate is also true, requests to a host whose breaker is
	// not admitting traffic fail fast with ErrOpen.
	breakers *Breakers
	gate     bool
}

// NewRetrier wraps next. breakers may be nil (no circuit accounting); gate
// selects whether an open breaker rejects requests outright (the prefetch
// path) or merely records outcomes (the live-forwarding path, which must
// still try on the client's behalf).
func NewRetrier(next Upstream, opts RetryOptions, breakers *Breakers, gate bool) *Retrier {
	opts.fill()
	return &Retrier{next: next, opts: opts, breakers: breakers, gate: gate}
}

// RoundTrip implements Upstream.
func (rt *Retrier) RoundTrip(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
	attempts := 1
	if idempotent(r.Method) {
		attempts = rt.opts.MaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if rt.breakers != nil && rt.gate {
			if !rt.breakers.Allow(r.Host) {
				return nil, fmt.Errorf("%s: %w", r.Host, ErrOpen)
			}
		}
		actx, cancel := context.WithTimeout(ctx, rt.opts.PerAttemptTimeout)
		resp, err := rt.next.RoundTrip(actx, r)
		if err == nil && resp != nil && resp.Streaming() {
			// A streaming body outlives this attempt: cancelling now would
			// sever it mid-transfer. The attempt context lives until the
			// caller closes the body; the timeout still bounds a wedged
			// stream because cancel fires when the deadline expires.
			resp.OnBodyClose(cancel)
		} else {
			cancel()
		}
		if rt.breakers != nil {
			if err != nil || (resp != nil && resp.Status >= http.StatusInternalServerError) {
				rt.breakers.ReportFailure(r.Host)
			} else {
				rt.breakers.ReportSuccess(r.Host)
			}
		}
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt+1 >= attempts {
			break
		}
		if rt.opts.OnRetry != nil {
			rt.opts.OnRetry(r.Host, attempt+1)
		}
		if err := rt.opts.Sleep(ctx, Backoff(attempt, rt.opts.BaseDelay, rt.opts.MaxDelay, rt.opts.Rand)); err != nil {
			return nil, fmt.Errorf("resilience: retry wait: %w", lastErr)
		}
	}
	return nil, lastErr
}
