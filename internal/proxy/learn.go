package proxy

import (
	"net/url"
	"sort"
	"strings"

	"appx/internal/httpmsg"
	"appx/internal/jsonpath"
	"appx/internal/sig"
)

// Dynamic learning (§4.2 of the paper).
//
// Static analysis yields signatures whose patterns still contain two kinds of
// unknowns: wildcards (device- or session-specific values such as User-Agent
// and Cookie headers, dynamic hosts) and dependency references (values drawn
// from predecessor responses). The proxy resolves the first kind from live
// *successor* transactions — the most recent concrete example of the request
// (Figure 7 case 2) — and the second kind from live *predecessor* responses
// (Figure 7 case 1), replicating the request instance once per extracted
// array element.

// exemplar is the most recent live instance of a successor signature: the
// source of run-time values and of the currently active instance class
// (which optional fields are present, Figure 8).
type exemplar struct {
	// uriWilds holds captured values for the URI pattern's non-literal
	// parts, in order.
	uriWilds []string
	// fieldWilds maps a field location ("query:k", "header:k", "form:k") to
	// the captured values of that field pattern's non-literal parts.
	fieldWilds map[string][]string
	// present records which optional field locations appeared in the live
	// request.
	present map[string]bool
	// headers is the live request's full header set. Real HTTP stacks add
	// headers the app code never mentions (a default User-Agent, accept
	// headers); for the prefetched request to be identical to the client's,
	// those must be mimicked too — the paper's "learns missing values, such
	// as HTTP header fields ... from the instances derived from the same
	// signature".
	headers []httpmsg.Field
}

// learnExemplar extracts an exemplar from a live request matching s.
// It returns nil when the request does not actually instantiate the
// signature's URI pattern.
func learnExemplar(s *sig.Signature, req *httpmsg.Request) *exemplar {
	uriWilds, ok := captureURIWilds(s, req.Host+req.Path)
	if !ok {
		return nil
	}
	ex := &exemplar{
		uriWilds:   uriWilds,
		fieldWilds: map[string][]string{},
		present:    map[string]bool{},
		headers:    append([]httpmsg.Field(nil), req.Header...),
	}
	learnFields := func(where string, fields []sig.Field, get func(string) (string, bool)) {
		for _, f := range fields {
			loc := where + ":" + f.Key
			v, found := get(f.Key)
			if !found {
				continue
			}
			ex.present[loc] = true
			if wilds, ok := captureWilds(f.Value, v); ok {
				ex.fieldWilds[loc] = wilds
			}
		}
	}
	learnFields("query", s.Query, req.GetQuery)
	learnFields("header", s.Header, req.GetHeader)
	learnFields("form", s.BodyForm, req.GetForm)
	return ex
}

// captureURIWilds is captureWilds for the signature's URI pattern, going
// through the signature's precompiled matcher instead of recompiling the
// regex on every live transaction.
func captureURIWilds(s *sig.Signature, value string) ([]string, bool) {
	if !s.URI.HasUnknown() {
		// Fully literal: the match is string equality, no regex at all.
		if s.URI.String() == value {
			return nil, true
		}
		return nil, false
	}
	m := s.URIRegexp().FindStringSubmatch(value)
	if m == nil {
		return nil, false
	}
	return m[1:], true
}

// captureWilds matches value against the pattern and returns the text
// captured by each non-literal part, in order. Fully-literal patterns are
// compared as strings — the regex path is reserved for patterns that
// actually capture something.
func captureWilds(p sig.Pattern, value string) ([]string, bool) {
	if !p.HasUnknown() {
		if p.String() == value {
			return nil, true
		}
		return nil, false
	}
	re, err := p.Regexp()
	if err != nil {
		return nil, false
	}
	m := re.FindStringSubmatch(value)
	if m == nil {
		return nil, false
	}
	return m[1:], true
}

// depPaths lists the distinct (PredID, RespPath) pairs appearing in the
// signature's patterns for the given predecessor, in first-use order.
func depPaths(s *sig.Signature, pred string) []string {
	var out []string
	seen := map[string]bool{}
	add := func(p sig.Pattern) {
		for _, part := range p.Parts {
			if part.Kind == sig.Dep && part.PredID == pred && !seen[part.RespPath] {
				seen[part.RespPath] = true
				out = append(out, part.RespPath)
			}
		}
	}
	add(s.URI)
	for _, f := range s.Query {
		add(f.Value)
	}
	for _, f := range s.Header {
		add(f.Value)
	}
	for _, f := range s.BodyForm {
		add(f.Value)
	}
	for _, f := range s.BodyJSON {
		add(f.Value)
	}
	return out
}

// maxFanOut bounds instances created from one predecessor response; a
// 30-item feed stays under it, and anything larger is a server-driven
// explosion the proxy should not amplify.
const maxFanOut = 64

// depCombos expands the predecessor response into per-instance value
// assignments: one combination per element of the fanned-out paths
// (cartesian across paths, capped).
func depCombos(doc any, paths []string) []map[string]string {
	combos := []map[string]string{{}}
	for _, path := range paths {
		p, err := jsonpath.Parse(path)
		if err != nil {
			return nil
		}
		vals := jsonpath.ExtractStrings(doc, p)
		if len(vals) == 0 {
			return nil
		}
		var next []map[string]string
		for _, c := range combos {
			for _, v := range vals {
				nc := make(map[string]string, len(c)+1)
				for k, vv := range c {
					nc[k] = vv
				}
				nc[path] = v
				next = append(next, nc)
				if len(next) >= maxFanOut {
					break
				}
			}
			if len(next) >= maxFanOut {
				break
			}
		}
		combos = next
	}
	return combos
}

// resolvePattern renders a pattern using dependency values for pred and
// exemplar-captured wildcard values (positional). ok is false while any part
// remains unresolved.
func resolvePattern(p sig.Pattern, pred string, combo map[string]string, wilds []string) (string, bool) {
	var b strings.Builder
	wi := 0
	for _, part := range p.Parts {
		switch part.Kind {
		case sig.Lit:
			b.WriteString(part.Lit)
			continue
		case sig.Dep:
			if part.PredID == pred {
				v, ok := combo[part.RespPath]
				if !ok {
					return "", false
				}
				b.WriteString(v)
				wi++ // deps occupy a capture slot too
				continue
			}
			// Dependency on a different predecessor: fall through to the
			// exemplar value, which holds the most recently observed value
			// for this slot.
			fallthrough
		case sig.Wild:
			if wi >= len(wilds) {
				return "", false
			}
			b.WriteString(wilds[wi])
			wi++
		}
	}
	return b.String(), true
}

// materialize builds one complete prefetch request for signature s from a
// dependency combination and (optionally) an exemplar. ok is false when
// run-time values are still missing — the instance must wait for a live
// example (§4.2: "a prefetch request becomes ready ... when all dynamic
// values have been resolved").
func materialize(s *sig.Signature, pred string, combo map[string]string, ex *exemplar) (*httpmsg.Request, bool) {
	var uriWilds []string
	if ex != nil {
		uriWilds = ex.uriWilds
	}
	uri, ok := resolvePattern(s.URI, pred, combo, uriWilds)
	if !ok {
		return nil, false
	}
	host, path, uriQuery, ok := splitURI(uri)
	if !ok {
		return nil, false
	}
	req := &httpmsg.Request{
		Method: s.Method,
		Scheme: "http",
		Host:   host,
		Path:   path,
		Query:  uriQuery,
	}

	addFields := func(where string, fields []sig.Field, add func(k, v string)) bool {
		for _, f := range fields {
			loc := where + ":" + f.Key
			if f.Optional {
				// Optional fields follow the most recent instance class; with
				// no exemplar they are omitted (the conservative class).
				if ex == nil || !ex.present[loc] {
					continue
				}
			}
			var wilds []string
			if ex != nil {
				wilds = ex.fieldWilds[loc]
			}
			v, ok := resolvePattern(f.Value, pred, combo, wilds)
			if !ok {
				return false
			}
			add(f.Key, v)
		}
		return true
	}
	if !addFields("query", s.Query, func(k, v string) {
		req.Query = append(req.Query, httpmsg.Field{Key: k, Value: v})
	}) {
		return nil, false
	}
	// Headers the app never sets but the client's HTTP stack adds (default
	// User-Agent etc.) are mimicked from the exemplar; signature-described
	// headers are then resolved from their patterns.
	if ex != nil {
		named := map[string]bool{}
		for _, f := range s.Header {
			named[strings.ToLower(f.Key)] = true
		}
		for _, h := range ex.headers {
			if !named[strings.ToLower(h.Key)] {
				req.Header = append(req.Header, h)
			}
		}
	}
	if !addFields("header", s.Header, func(k, v string) {
		req.Header = append(req.Header, httpmsg.Field{Key: k, Value: v})
	}) {
		return nil, false
	}
	if s.BodyKind == httpmsg.BodyForm || len(s.BodyForm) > 0 {
		if !addFields("form", s.BodyForm, func(k, v string) {
			req.BodyKind = httpmsg.BodyForm
			req.BodyForm = append(req.BodyForm, httpmsg.Field{Key: k, Value: v})
		}) {
			return nil, false
		}
	}
	if len(s.BodyJSON) > 0 {
		var doc any
		for _, f := range s.BodyJSON {
			if f.Optional && (ex == nil || !ex.present["json:"+f.Path]) {
				continue
			}
			v, ok := resolvePattern(f.Value, pred, combo, nil)
			if !ok {
				return nil, false
			}
			path, err := jsonpath.Parse(f.Path)
			if err != nil {
				return nil, false
			}
			doc, err = jsonpath.Inject(doc, path, v)
			if err != nil {
				return nil, false
			}
		}
		req.BodyKind = httpmsg.BodyJSON
		req.BodyJSON = doc
	}
	return req, true
}

// splitURI decomposes a resolved URI value into host, path, and query
// fields. Dependency values may carry complete URLs ("http://a.com/d.png",
// Figure 3(c)'s prefetched image), so a scheme prefix and an embedded query
// string are handled like the app's own URL parsing would.
func splitURI(uri string) (host, path string, query []httpmsg.Field, ok bool) {
	for _, scheme := range []string{"http://", "https://"} {
		if strings.HasPrefix(uri, scheme) {
			uri = uri[len(scheme):]
			break
		}
	}
	var rawQuery string
	if qi := strings.IndexByte(uri, '?'); qi >= 0 {
		uri, rawQuery = uri[:qi], uri[qi+1:]
	}
	slash := strings.IndexByte(uri, '/')
	if slash <= 0 {
		return "", "", nil, false
	}
	host, path = uri[:slash], uri[slash:]
	if rawQuery != "" {
		vals, err := url.ParseQuery(rawQuery)
		if err != nil {
			return "", "", nil, false
		}
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, v := range vals[k] {
				query = append(query, httpmsg.Field{Key: k, Value: v})
			}
		}
	}
	return host, path, query, true
}

// needsExemplar reports whether the signature contains run-time unknowns
// that only a live example can resolve (wild parts, or deps on other
// predecessors).
func needsExemplar(s *sig.Signature, pred string) bool {
	hasWild := func(p sig.Pattern) bool {
		for _, part := range p.Parts {
			if part.Kind == sig.Wild {
				return true
			}
			if part.Kind == sig.Dep && part.PredID != pred {
				return true
			}
		}
		return false
	}
	if hasWild(s.URI) {
		return true
	}
	for _, f := range s.Query {
		if hasWild(f.Value) {
			return true
		}
	}
	for _, f := range s.Header {
		if hasWild(f.Value) {
			return true
		}
	}
	for _, f := range s.BodyForm {
		if hasWild(f.Value) {
			return true
		}
	}
	for _, f := range s.BodyJSON {
		if hasWild(f.Value) {
			return true
		}
	}
	return false
}
