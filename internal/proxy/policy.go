package proxy

import (
	"sync/atomic"
	"time"

	"appx/internal/obs"
	"appx/internal/obs/adminv1"
	"appx/internal/policy"
)

// Prefetch-policy wiring (ISSUE 10). The decision logic that used to be
// inlined across learn/maybePrefetch — governor probability and chain-depth
// gating, failure backoff, breaker readiness — lives in internal/policy
// behind the Policy interface now, with two implementations:
//
//   - static: the historical behaviour, candidates in dependency-graph
//     order. The differential tests pin it byte-identical to the pre-policy
//     proxy.
//   - markov: a per-user first-order transition model that reorders and
//     prunes chains by observed behaviour, fed by observePolicy on every
//     attributed live hit and carried across restarts by the snapshot
//     ladder.
//
// Selection is -prefetch-policy; the active policy hot-swaps back to static
// while the governor is shedding (ranking history is pure overhead when
// every speculative candidate is being refused anyway).

// Skip reasons for candidates dropped before reaching the scheduler, beyond
// the policy package's own (ReasonDepth, ReasonUnlikely).
const (
	skipNoExemplar  = "no_exemplar"   // materialize failed: run-time values missing
	skipNoDepValues = "no_dep_values" // predecessor response yielded no dependency values
	skipPendingFull = "pending_full"  // per-signature parked-instance cap hit
)

// prefetchSkips counts dropped candidates by reason
// (appx_prefetch_skipped_total).
type prefetchSkips struct {
	noExemplar  atomic.Int64
	noDepValues atomic.Int64
	pendingFull atomic.Int64
	depth       atomic.Int64
	unlikely    atomic.Int64
}

// countSkip attributes one dropped candidate to its reason.
func (p *Proxy) countSkip(reason string) {
	switch reason {
	case skipNoExemplar:
		p.skips.noExemplar.Add(1)
	case skipNoDepValues:
		p.skips.noDepValues.Add(1)
	case skipPendingFull:
		p.skips.pendingFull.Add(1)
	case policy.ReasonDepth:
		p.skips.depth.Add(1)
	case policy.ReasonUnlikely:
		p.skips.unlikely.Add(1)
	}
}

// rankBounds buckets the Rank-latency histogram on a microsecond scale: a
// rank call is a handful of map reads and must never show up in request
// latency.
var rankBounds = []time.Duration{
	time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 250 * time.Microsecond,
	time.Millisecond, 5 * time.Millisecond,
}

// initPolicy builds the policy layer. Both implementations share one Hooks
// set; the hooks are all side-effect-free reads, so policies may evaluate
// them at any point relative to the probability draw.
func (p *Proxy) initPolicy() {
	hooks := policy.Hooks{
		Level:     p.gov.Level,
		Shedding:  p.gov.Shedding,
		Suspended: p.sigSuspended,
		HostReady: p.breakers.Ready,
		MaxDepth:  p.effectiveChainDepth,
	}
	p.staticPol = policy.NewStatic(hooks)
	if p.opts.PrefetchPolicy == "markov" {
		p.markovPol = policy.NewMarkov(hooks, policy.MarkovConfig{
			HalfLife: p.opts.PolicyDecay,
			MaxUsers: p.opts.PolicyMaxUsers,
			Now:      func() time.Time { return p.opts.Now() },
		})
	}
	p.rankHist = p.reg.Histogram("appx_policy_rank_seconds",
		"Latency of one prefetch-policy Rank call.", rankBounds)
}

// configuredPolicy names the policy selected at construction.
func (p *Proxy) configuredPolicy() string {
	if p.markovPol != nil {
		return p.markovPol.Name()
	}
	return p.staticPol.Name()
}

// activePolicy resolves the policy answering the next Rank call: markov
// when configured, hot-swapped back to static while the governor sheds.
func (p *Proxy) activePolicy() policy.Policy {
	if p.markovPol != nil && p.gov.Mode() != "shedding" {
		return p.markovPol
	}
	return p.staticPol
}

// modelPolicy is the policy whose Stats describe the history model: the
// configured markov instance even while static is hot-swapped in (the model
// keeps learning and its size is what operators watch).
func (p *Proxy) modelPolicy() policy.Policy {
	if p.markovPol != nil {
		return p.markovPol
	}
	return p.staticPol
}

// rankCandidates runs one policy ranking, timed.
func (p *Proxy) rankCandidates(userKey, from string, cands []policy.Candidate) []policy.Decision {
	pol := p.activePolicy()
	start := p.opts.Now()
	ds := pol.Rank(userKey, from, cands)
	p.rankHist.Observe(p.opts.Now().Sub(start))
	return ds
}

// rankOne is the issue-time single-candidate ranking (maybePrefetch). No
// transition context: the candidate's fate was ordered at fan-out time;
// only the execution gates and probability matter here.
func (p *Proxy) rankOne(userKey string, c policy.Candidate) policy.Decision {
	return p.rankCandidates(userKey, "", []policy.Candidate{c})[0]
}

// observePolicy feeds one attributed live hit into the history model.
// Static configurations skip the call entirely — zero added cost.
func (p *Proxy) observePolicy(userKey, sigID string) {
	if p.markovPol != nil {
		p.markovPol.Observe(userKey, sigID, p.opts.Now())
	}
}

// registerPolicyBridges exposes the policy layer on the metrics registry.
func (p *Proxy) registerPolicyBridges(reg *obs.Registry) {
	reg.GaugeFunc("appx_policy_users", "Per-user history models held.",
		func() float64 { return float64(p.modelPolicy().Stats().Users) })
	reg.GaugeFunc("appx_policy_rows", "Transition rows across users and the global table.",
		func() float64 { return float64(p.modelPolicy().Stats().Rows) })
	reg.GaugeFunc("appx_policy_transitions", "Tracked (from, to) transition pairs.",
		func() float64 { return float64(p.modelPolicy().Stats().Transitions) })
	reg.GaugeFunc("appx_policy_table_bytes", "Estimated transition-table memory footprint.",
		func() float64 { return float64(p.modelPolicy().Stats().TableBytes) })
	reg.CounterFunc("appx_policy_observations_total", "Live hits folded into the history model.",
		func() int64 { return p.modelPolicy().Stats().Observations })
	reg.CounterFunc("appx_policy_rank_total", "Policy Rank calls.",
		func() int64 { return p.modelPolicy().Stats().RankCalls })
	reg.CounterFunc("appx_policy_pruned_total", "Candidates pruned as history-unlikely.",
		func() int64 { return p.modelPolicy().Stats().Pruned })
	reg.CounterFunc("appx_policy_reordered_total", "Rank calls that changed candidate order.",
		func() int64 { return p.modelPolicy().Stats().Reordered })
	for _, s := range []struct {
		reason string
		c      *atomic.Int64
	}{
		{skipNoExemplar, &p.skips.noExemplar},
		{skipNoDepValues, &p.skips.noDepValues},
		{skipPendingFull, &p.skips.pendingFull},
		{policy.ReasonDepth, &p.skips.depth},
		{policy.ReasonUnlikely, &p.skips.unlikely},
	} {
		c := s.c
		reg.CounterFunc(`appx_prefetch_skipped_total{reason="`+s.reason+`"}`,
			"Prefetch candidates dropped before scheduling, by reason.", c.Load)
	}
}

// policyV1 assembles the typed policy block of /appx/v1/stats.
func (p *Proxy) policyV1() adminv1.PolicyEntry {
	st := p.modelPolicy().Stats()
	return adminv1.PolicyEntry{
		Configured:       p.configuredPolicy(),
		Active:           p.activePolicy().Name(),
		Users:            st.Users,
		Rows:             st.Rows,
		Transitions:      st.Transitions,
		TableBytes:       st.TableBytes,
		Observations:     st.Observations,
		RankCalls:        st.RankCalls,
		Pruned:           st.Pruned,
		Reordered:        st.Reordered,
		RankP95Micros:    float64(p.rankHist.Quantile(0.95)) / float64(time.Microsecond),
		NoExemplarSkips:  p.skips.noExemplar.Load(),
		NoDepValueSkips:  p.skips.noDepValues.Load(),
		PendingFullSkips: p.skips.pendingFull.Load(),
		DepthSkips:       p.skips.depth.Load(),
		UnlikelySkips:    p.skips.unlikely.Load(),
	}
}
