package proxy

import (
	"testing"

	"appx/internal/httpmsg"
	"appx/internal/sig"
)

func TestSplitURI(t *testing.T) {
	cases := []struct {
		in          string
		host, path  string
		queryLen    int
		firstKey    string
		firstVal    string
		ok          bool
		description string
	}{
		{"http://a.com/d.png", "a.com", "/d.png", 0, "", "", true, "scheme stripped"},
		{"https://a.com/d.png", "a.com", "/d.png", 0, "", "", true, "https stripped"},
		{"img.wish.example/img", "img.wish.example", "/img", 0, "", "", true, "schemeless"},
		{"http://h.example/p?cid=55&z=9", "h.example", "/p", 2, "cid", "55", true, "query split"},
		{"http://h.example/p?sp%20ace=a%26b", "h.example", "/p", 1, "sp ace", "a&b", true, "query decoding"},
		{"no-slash-at-all", "", "", 0, "", "", false, "no path"},
		{"/leading-slash", "", "", 0, "", "", false, "empty host"},
		{"http://h/p?bad=%zz", "", "", 0, "", "", false, "bad escape"},
	}
	for _, c := range cases {
		host, path, query, ok := splitURI(c.in)
		if ok != c.ok {
			t.Errorf("%s: ok = %v, want %v", c.description, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if host != c.host || path != c.path || len(query) != c.queryLen {
			t.Errorf("%s: got %q %q %v", c.description, host, path, query)
		}
		if c.queryLen > 0 && (query[0].Key != c.firstKey || query[0].Value != c.firstVal) {
			t.Errorf("%s: first query = %+v", c.description, query[0])
		}
	}
}

func TestResolvePatternMissingDep(t *testing.T) {
	p := sig.DepValue("pred", "items[*].id")
	if _, ok := resolvePattern(p, "pred", map[string]string{}, nil); ok {
		t.Fatal("resolved without the dependency value")
	}
	if got, ok := resolvePattern(p, "pred", map[string]string{"items[*].id": "x"}, nil); !ok || got != "x" {
		t.Fatalf("resolvePattern = %q, %v", got, ok)
	}
}

func TestMaterializeJSONBody(t *testing.T) {
	s := &sig.Signature{
		ID:     "t:json#0",
		Method: "POST",
		URI:    sig.Literal("api.example/graph"),
		BodyJSON: []sig.JSONField{
			{Path: "query.id", Value: sig.DepValue("t:pred#0", "top.id")},
			{Path: "query.lang", Value: sig.Literal("en")},
			{Path: "opts.debug", Value: sig.Literal("1"), Optional: true},
		},
	}
	ex := &exemplar{fieldWilds: map[string][]string{}, present: map[string]bool{}}
	req, ok := materialize(s, "t:pred#0", map[string]string{"top.id": "z9"}, ex)
	if !ok {
		t.Fatal("materialize failed")
	}
	if req.BodyKind != httpmsg.BodyJSON {
		t.Fatalf("BodyKind = %v", req.BodyKind)
	}
	doc := req.BodyJSON.(map[string]any)
	q := doc["query"].(map[string]any)
	if q["id"] != "z9" || q["lang"] != "en" {
		t.Fatalf("json body = %v", doc)
	}
	if _, present := doc["opts"]; present {
		t.Fatal("optional json field included without exemplar presence")
	}
}

func TestDepPathsOrderAndDedup(t *testing.T) {
	s := &sig.Signature{
		ID:     "t:s#0",
		Method: "GET",
		URI:    sig.Concat(sig.Literal("h/x/"), sig.DepValue("p", "b.path")),
		Query: []sig.Field{
			{Key: "a", Value: sig.DepValue("p", "a.path")},
			{Key: "b", Value: sig.DepValue("p", "b.path")}, // duplicate path
			{Key: "c", Value: sig.DepValue("other", "c.path")},
		},
	}
	got := depPaths(s, "p")
	if len(got) != 2 || got[0] != "b.path" || got[1] != "a.path" {
		t.Fatalf("depPaths = %v", got)
	}
	if other := depPaths(s, "other"); len(other) != 1 || other[0] != "c.path" {
		t.Fatalf("depPaths(other) = %v", other)
	}
}

func TestCaptureWildsPositional(t *testing.T) {
	p := sig.Concat(sig.Literal("k="), sig.Wildcard("w1"), sig.Literal(";v="), sig.Wildcard("w2"))
	wilds, ok := captureWilds(p, "k=abc;v=def")
	if !ok || len(wilds) != 2 || wilds[0] != "abc" || wilds[1] != "def" {
		t.Fatalf("captureWilds = %v, %v", wilds, ok)
	}
	if _, ok := captureWilds(p, "nope"); ok {
		t.Fatal("mismatched value captured")
	}
}

func TestExemplarOptionalFieldClassSwitch(t *testing.T) {
	// The proxy follows the most recent instance class (Figure 8): the
	// exemplar flips between including and omitting the optional field.
	s := mkSig()
	with := &httpmsg.Request{
		Method: "POST", Host: "h.example", Path: "/product/get",
		Header:   []httpmsg.Field{{Key: "Cookie", Value: "c=1"}},
		BodyKind: httpmsg.BodyForm,
		BodyForm: []httpmsg.Field{{Key: "cid", Value: "a"}, {Key: "_client", Value: "android"}, {Key: "credit_id", Value: "cc"}},
	}
	without := with.Clone()
	without.DeleteForm("credit_id")

	exWith := learnExemplar(s, with)
	exWithout := learnExemplar(s, without)
	r1, _ := materialize(s, "t:pred#0", map[string]string{"items[*].id": "x"}, exWith)
	r2, _ := materialize(s, "t:pred#0", map[string]string{"items[*].id": "x"}, exWithout)
	if _, p := r1.GetForm("credit_id"); !p {
		t.Fatal("class with credit_id lost the field")
	}
	if _, p := r2.GetForm("credit_id"); p {
		t.Fatal("class without credit_id kept the field")
	}
}
