package proxy

// End-to-end span coverage: a generated interaction trace replayed through
// an emulated device whose transport is the in-process proxy. Every client
// request that enters ServeHTTP must finish exactly one lifecycle span, and
// each span's attributed stage time must fit inside its wall time. Shed and
// error outcomes are driven explicitly (drain, faulted host).

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"appx/internal/apps"
	"appx/internal/config"
	"appx/internal/device"
	"appx/internal/httpmsg"
	"appx/internal/interp"
	"appx/internal/obs"
	"appx/internal/obs/adminv1"
	"appx/internal/static"
	"appx/internal/trace"
)

// countingTransport counts client round trips entering the proxy.
type countingTransport struct {
	inner interp.Transport
	n     atomic.Int64
}

func (c *countingTransport) RoundTrip(r *httpmsg.Request) (*httpmsg.Response, error) {
	c.n.Add(1)
	return c.inner.RoundTrip(r)
}

func TestSpansCoverTraceReplayEndToEnd(t *testing.T) {
	app := apps.Wish()
	g, err := static.Analyze(app.APK.Program, app.Name, app.APK.Entries(), static.Options{Features: static.AllFeatures()})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	cfg := config.Default(g)
	// One fast attempt so the faulted host below fails quickly.
	cfg.Resilience = &config.Resilience{RetryAttempts: 1, RetryBaseDelay: config.Duration(time.Microsecond)}
	origin := &originUpstream{handler: app.Handler(0)}
	up := UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Host == "dead.example" {
			return nil, errors.New("connect: connection refused")
		}
		return origin.RoundTrip(ctx, r)
	})
	p := New(Options{Graph: g, Config: cfg, Upstream: up})
	t.Cleanup(p.Close)

	const userKey = "10.9.9.9"
	ct := &countingTransport{inner: &proxyTransport{p: p, user: userKey}}
	d, err := device.New(device.Config{
		APK:       app.APK,
		Transport: ct,
		User:      userKey,
		Props:     interp.DeviceProps{UserAgent: "AppxTest/1.0", Locale: "en-US", AppVersion: app.APK.Manifest.Version},
	})
	if err != nil {
		t.Fatalf("device.New: %v", err)
	}
	tr := trace.Generate(app.APK, userKey, 7, 20*time.Second)
	for _, m := range trace.Replay(d, tr, 1000) {
		if m.Err != nil {
			t.Fatalf("replay %s: %v", m.Event.Widget, m.Err)
		}
	}
	p.Drain()

	// An error outcome: the faulted host answers 502 after its one attempt.
	if resp, err := ct.RoundTrip(&httpmsg.Request{Method: "GET", Host: "dead.example", Path: "/x"}); err != nil || resp.Status != 502 {
		t.Fatalf("faulted host: resp=%+v err=%v", resp, err)
	}
	// A shed outcome: draining refuses new proxied work with a 503.
	p.BeginDrain()
	if resp, err := ct.RoundTrip(&httpmsg.Request{Method: "GET", Host: "app.example", Path: "/y"}); err != nil || resp.Status != 503 {
		t.Fatalf("drained request: resp=%+v err=%v", resp, err)
	}

	// Exactly one span per client request — replayed trace plus the two
	// explicit requests, nothing more (prefetches do not produce spans).
	total := uint64(ct.n.Load())
	if got := p.SpanTotal(); got != total {
		t.Fatalf("span total = %d, want one per request = %d", got, total)
	}

	spans := p.RecentSpans(int(total))
	if len(spans) != int(total) {
		t.Fatalf("recent spans = %d, want %d (ring must hold the whole run)", len(spans), total)
	}
	for _, s := range spans {
		if s.Outcome == obs.OutcomeUnknown {
			t.Fatalf("span %d finished without an outcome", s.ID)
		}
		// Stages are disjoint timeline slices; their sum must fit inside the
		// measured wall time (1ms slack for clock granularity).
		if sum := s.StageSum(); sum > s.Wall+time.Millisecond {
			t.Fatalf("span %d stage sum %v exceeds wall %v", s.ID, sum, s.Wall)
		}
	}

	// The typed stats block agrees: hits, origins, one error, one shed.
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest("GET", adminv1.PathStats, nil))
	var stats adminv1.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if stats.Requests.Total != total {
		t.Fatalf("stats requests total = %d, want %d", stats.Requests.Total, total)
	}
	if stats.Requests.Outcomes["error"].Count != 1 {
		t.Fatalf("error outcome count = %d, want 1", stats.Requests.Outcomes["error"].Count)
	}
	if stats.Requests.Outcomes["shed"].Count != 1 {
		t.Fatalf("shed outcome count = %d, want 1", stats.Requests.Outcomes["shed"].Count)
	}
	if stats.Requests.Outcomes["origin"].Count == 0 {
		t.Fatal("no origin outcomes from a live replay")
	}
	var sum int64
	for _, o := range stats.Requests.Outcomes {
		sum += o.Count
	}
	if uint64(sum) != total {
		t.Fatalf("outcome counts sum to %d, want %d", sum, total)
	}
}
