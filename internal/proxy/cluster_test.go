package proxy

// Cluster-mode integration tests: real listeners on loopback, real
// forwarding between instances, membership churn by killing a live server.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"appx/internal/cache"
	"appx/internal/cluster"
	"appx/internal/httpmsg"
	"appx/internal/sig"
)

// clusterNode is one live proxy instance serving on a loopback listener.
type clusterNode struct {
	addr string
	px   *Proxy
	srv  *http.Server
}

func (n *clusterNode) kill() {
	n.srv.Close()
	n.px.Close()
}

// startClusterNodes boots n proxies on loopback, all clustered over the
// same seed list. vnodes[i] overrides instance i's vnode count (divergent
// counts force divergent ownership views — the loop-prevention test wants
// exactly that pathology).
func startClusterNodes(t *testing.T, n int, graph func() *sig.Graph, up Upstream, vnodes []int, mut ...func(*Options)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		vn := cluster.DefaultVNodes
		if vnodes != nil {
			vn = vnodes[i]
		}
		opts := Options{Graph: graph(), Upstream: up, Workers: 1,
			Cluster: cluster.Config{
				Self:          addrs[i],
				Peers:         addrs,
				VNodes:        vn,
				Replicas:      2,
				ProbeInterval: 20 * time.Millisecond,
				ProbeTimeout:  200 * time.Millisecond,
			}}
		for _, m := range mut {
			m(&opts)
		}
		px := New(opts)
		srv := &http.Server{Handler: px}
		go srv.Serve(lns[i])
		nodes[i] = &clusterNode{addr: addrs[i], px: px, srv: srv}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.srv.Close()
			nd.px.Close()
		}
	})
	return nodes
}

// viaCluster builds a driver client that routes through the instance at
// addr as its forward proxy.
func viaCluster(addr string) *http.Client {
	return &http.Client{
		Timeout: 5 * time.Second,
		Transport: &http.Transport{
			Proxy:              http.ProxyURL(&url.URL{Scheme: "http", Host: addr}),
			DisableCompression: true,
		},
	}
}

// clusterGet issues one proxied request tagged with user, returning status
// and body.
func clusterGet(c *http.Client, user, rawurl string) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodGet, rawurl, nil)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set(userHeader, user)
	req.Header.Set("User-Agent", "") // keep canonical keys header-free
	resp, err := c.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// userOwnedBy searches for a user key that addrs[want] owns under a ring
// with the given vnode count and membership.
func userOwnedBy(vnodes int, addrs []string, want int) string {
	r := cluster.NewRing(vnodes)
	for _, a := range addrs {
		r.Add(a)
	}
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("user-%d", i)
		if r.Owner(k) == addrs[want] {
			return k
		}
	}
	return ""
}

func countingUpstream() (Upstream, *atomic.Int64) {
	var calls atomic.Int64
	up := UpstreamFunc(func(_ context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		calls.Add(1)
		if r.Path == "/list" {
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   []byte(`{"ids":["1","2","3","4"]}`)}, nil
		}
		return &httpmsg.Response{Status: 200, Body: []byte(`{"item":"payload"}`)}, nil
	})
	return up, &calls
}

// TestClusterForwardLoopPrevented gives the two instances deliberately
// divergent ring views (different vnode counts) and picks a user each
// instance believes the *other* owns. Without the hop header the request
// would bounce A→B→A forever; with it, B must serve the relayed request
// locally.
func TestClusterForwardLoopPrevented(t *testing.T) {
	up, calls := countingUpstream()
	vnodes := []int{16, 96}
	nodes := startClusterNodes(t, 2, sharedGraph, up, vnodes)
	addrs := []string{nodes[0].addr, nodes[1].addr}

	// A user where ring(16) says B owns it and ring(96) says A owns it.
	var userKey string
	ringA, ringB := cluster.NewRing(vnodes[0]), cluster.NewRing(vnodes[1])
	for _, a := range addrs {
		ringA.Add(a)
		ringB.Add(a)
	}
	for i := 0; i < 200000; i++ {
		k := fmt.Sprintf("user-%d", i)
		if ringA.Owner(k) == addrs[1] && ringB.Owner(k) == addrs[0] {
			userKey = k
			break
		}
	}
	if userKey == "" {
		t.Fatal("no divergently-owned user key found")
	}

	status, body, err := clusterGet(viaCluster(addrs[0]), userKey, "http://h.example/item?id=9")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || string(body) != `{"item":"payload"}` {
		t.Fatalf("relayed request: status=%d body=%q", status, body)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("origin fetched %d times, want exactly 1 (no bounce)", n)
	}
	a, b := nodes[0].px.ClusterStats(), nodes[1].px.ClusterStats()
	if a.Forwarded != 1 {
		t.Fatalf("A forwarded %d, want 1", a.Forwarded)
	}
	if b.ReceivedForwards != 1 {
		t.Fatalf("B received %d forwards, want 1", b.ReceivedForwards)
	}
	if b.Forwarded != 0 {
		t.Fatalf("B re-forwarded a hopped request %d times — loop prevention failed", b.Forwarded)
	}
}

// TestClusterKillNoForegroundFailures kills an instance mid-load and
// requires that no foreground request through the survivor ever fails:
// forwards to the dead owner fall back to local serving, and the ring
// rebalances the dead instance away.
func TestClusterKillNoForegroundFailures(t *testing.T) {
	up, _ := countingUpstream()
	nodes := startClusterNodes(t, 2, sharedGraph, up, nil)
	addrs := []string{nodes[0].addr, nodes[1].addr}
	victimUser := userOwnedBy(cluster.DefaultVNodes, addrs, 1)
	if victimUser == "" {
		t.Fatal("no user owned by instance B")
	}
	drive := viaCluster(addrs[0])
	get := func(phase string) {
		t.Helper()
		status, _, err := clusterGet(drive, victimUser, "http://h.example/item?id=1")
		if err != nil {
			t.Fatalf("%s: foreground request error: %v", phase, err)
		}
		if status >= 500 {
			t.Fatalf("%s: foreground request failed with %d", phase, status)
		}
	}

	for i := 0; i < 5; i++ {
		get("before kill")
	}
	if fwd := nodes[0].px.ClusterStats().Forwarded; fwd == 0 {
		t.Fatal("sanity: no requests were forwarded to the victim before the kill")
	}

	nodes[1].kill()
	// Immediately after the kill — before any probe notices — forwards fail
	// at the transport and must fall back to local serving.
	for i := 0; i < 10; i++ {
		get("after kill")
		time.Sleep(10 * time.Millisecond)
	}
	deadline := time.Now().Add(3 * time.Second)
	for nodes[0].px.ClusterStats().Rebalances == 0 {
		if time.Now().After(deadline) {
			t.Fatal("survivor never rebalanced the dead instance away")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Post-rebalance the survivor owns everything; requests stay local.
	for i := 0; i < 5; i++ {
		get("after rebalance")
	}
	st := nodes[0].px.ClusterStats()
	if st.ForwardFallbacks == 0 {
		t.Fatal("kill produced no forward fallbacks — the test never exercised the failure path")
	}
	if len(st.Members) != 1 {
		t.Fatalf("ring still has %d members after the kill, want 1", len(st.Members))
	}
}

// TestClusterPeerFill seeds one instance's shared tier and requires a
// sibling to answer its own miss from that entry — peer fill before origin
// — and to keep the entry locally so the next request is a plain hit.
func TestClusterPeerFill(t *testing.T) {
	up, calls := countingUpstream()
	nodes := startClusterNodes(t, 2, sharedGraph, up, nil)
	addrs := []string{nodes[0].addr, nodes[1].addr}

	// The canonical key of the driver's request as every instance computes
	// it (user and transport headers never reach the key).
	keyReq := &httpmsg.Request{Method: "GET", Host: "h.example", Path: "/item",
		Query: []httpmsg.Field{{Key: "id", Value: "2"}}}
	key := keyReq.CanonicalKey()
	nodes[1].px.Cache().Put(cache.SharedScope, key, &cache.Entry{
		Resp:    &httpmsg.Response{Status: 200, Body: []byte(`{"item":"from-peer"}`)},
		SigID:   "t:item#0",
		Expires: time.Now().Add(time.Minute),
	})

	// Drive through A with a user A owns, so the request is served (not
	// relayed) and the shared-tier miss goes through peer fill.
	localUser := userOwnedBy(cluster.DefaultVNodes, addrs, 0)
	status, body, err := clusterGet(viaCluster(addrs[0]), localUser, "http://h.example/item?id=2")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || string(body) != `{"item":"from-peer"}` {
		t.Fatalf("peer-fill response: status=%d body=%q", status, body)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("peer fill hit the origin %d times, want 0", n)
	}
	st := nodes[0].px.ClusterStats()
	if st.PeerFill.Hits != 1 {
		t.Fatalf("peer-fill hits = %d, want 1", st.PeerFill.Hits)
	}

	// The fill warmed A's own shared tier: the same request again is a
	// local hit, no second peek.
	status, body, err = clusterGet(viaCluster(addrs[0]), localUser, "http://h.example/item?id=2")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || string(body) != `{"item":"from-peer"}` {
		t.Fatalf("post-fill local hit: status=%d body=%q", status, body)
	}
	if got := nodes[0].px.ClusterStats().PeerFill.Attempts; got != st.PeerFill.Attempts {
		t.Fatalf("second request peeked peers again (attempts %d -> %d)", st.PeerFill.Attempts, got)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("local hit touched the origin (%d calls)", n)
	}
}
