// Package proxy implements the APPx acceleration proxy (§4.2, §4.5, §5 of
// the paper): a forward HTTP proxy that learns run-time values from live
// traffic, reconstructs dependent requests ahead of time, prefetches their
// responses with priority scheduling, and serves a prefetched response only
// when the client's request is byte-equivalent to the prefetched one.
package proxy

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"appx/internal/cache"
	"appx/internal/cluster"
	"appx/internal/config"
	"appx/internal/httpmsg"
	"appx/internal/obs"
	"appx/internal/obs/adminv1"
	"appx/internal/persist"
	"appx/internal/policy"
	"appx/internal/proxy/resilience"
	"appx/internal/proxy/sched"
	"appx/internal/sig"
	"appx/internal/stream"
)

// Options configures a Proxy.
type Options struct {
	Graph    *sig.Graph
	Config   *config.Config
	Upstream Upstream

	// Workers sizes the prefetch pool (default 8).
	Workers int
	// MaxChainDepth bounds recursive prefetching along dependency chains
	// (default 8; Figure 3(c) prefetches chains).
	MaxChainDepth int
	// MaxPendingPerSig bounds instances waiting for an exemplar (default 256).
	MaxPendingPerSig int
	// MaxCacheEntriesPerUser overrides the cache config's per-user entry
	// cap when > 0 (default: config.Cache.MaxEntriesPerUser, 4096).
	MaxCacheEntriesPerUser int
	// MaxUsers bounds tracked user states (default 10000); the least
	// recently seen user is evicted when exceeded.
	MaxUsers int
	// DisablePrefetch turns the proxy into a plain forwarder (the "Orig"
	// baseline of §6.2).
	DisablePrefetch bool
	// DisableChaining stops prefetched responses from seeding further
	// prefetches (ablates the Figure 3(c) chain behaviour).
	DisableChaining bool
	// RefreshExpired re-issues the prefetch when a cached entry is found
	// expired at lookup time, keeping hot entries warm. An extension beyond
	// the paper, whose proxy re-learns only from the next live predecessor.
	RefreshExpired bool
	// Rand supplies probability draws; defaults to math/rand. Injected for
	// deterministic tests.
	Rand func() float64
	// Now supplies time; defaults to time.Now. Injected for expiry tests.
	Now func() time.Time
	// UserKey extracts the per-user state key from a request; defaults to
	// the client IP (§5: "the prototype distinguishes users by IP address").
	UserKey func(*http.Request) string
	// SpanBuffer sizes the recent-spans ring served by /appx/v1/spans
	// (default 1024, minimum 16).
	SpanBuffer int

	// StreamChunkBytes sizes the pooled chunks the streaming data plane
	// moves bodies through (default stream.DefaultChunkBytes, 64 KiB).
	StreamChunkBytes int
	// CaptureMaxBytes caps how much of a streamed origin body is retained
	// for cache insertion and learning (default 4 MiB). Larger bodies
	// stream through to the client uncached; over-cap prefetches abort.
	CaptureMaxBytes int64
	// MaxBodyBytes bounds client request bodies (413 beyond it) and clamps
	// CaptureMaxBytes (default 64 MiB; negative disables both guards).
	MaxBodyBytes int64

	// PrefetchPolicy selects the prefetch decision policy: "static" (the
	// default — candidates in dependency-graph order, the historical
	// behaviour) or "markov" (per-user history reorders and prunes chains
	// by observed transition probability). Unknown values fall back to
	// static.
	PrefetchPolicy string
	// PolicyDecay is the markov model's transition-count half-life
	// (default policy.DefaultHalfLife, 10m).
	PolicyDecay time.Duration
	// PolicyMaxUsers bounds tracked per-user markov models (default
	// policy.DefaultMaxUsers, 10000).
	PolicyMaxUsers int

	// StateDir enables crash-safe persistence: a disk cache tier under
	// <StateDir>/cache plus snapshot/restore of learned soft state in
	// <StateDir>/snapshot.appx. Empty disables persistence.
	StateDir string
	// SnapshotInterval is the periodic-snapshot cadence (0 disables the
	// loop; BeginDrain still writes a final snapshot).
	SnapshotInterval time.Duration
	// PersistFaults optionally injects disk faults into persistence writes
	// (hostile-recovery tests and drills).
	PersistFaults *persist.Faults

	// Cluster configures fleet membership (cluster.Config.Self non-empty
	// turns it on): this instance joins a consistent-hash ring that pins
	// each user's learned state to one owner, relays non-owned requests
	// there, and fills shared-tier misses from ring siblings before origin.
	Cluster cluster.Config

	// RequestBudget is the per-request latency budget: every cross-instance
	// stage (relay, peer fill) gets a timeout derived from what remains, and
	// the remainder propagates to relay targets via X-Appx-Budget-Ms —
	// clamped at each hop, never grown. 0 disables local budgets (inherited
	// ones are still honoured).
	RequestBudget time.Duration
	// HedgeDelay is the static fallback delay before a slow peer-fill peek
	// earns a hedge to the next ring successor (default 30ms); once a peer
	// has enough observed fills its p90 takes over.
	HedgeDelay time.Duration
	// HedgeRateCap bounds hedge launches per second cluster-wide (default
	// 64): under overload, hedges are the first traffic to shed.
	HedgeRateCap float64
	// DisableHedging turns hedged peer reads off (fills walk peers
	// sequentially, as before).
	DisableHedging bool
}

// userHeader carries an explicit per-user tag from emulated devices; the
// default UserKey prefers it over the client IP (all emulated devices on one
// machine share 127.0.0.1).
const userHeader = "X-Appx-User"

// Proxy is the acceleration proxy. It implements http.Handler; point mobile
// clients at it as their HTTP proxy.
type Proxy struct {
	opts  Options
	stats *Stats
	sched *sched.Scheduler

	// Observability: one registry is the single exposition point
	// (/appx/v1/metrics); the span recorder attributes each request's wall
	// time to lifecycle stages and a terminal outcome.
	reg   *obs.Registry
	spans *obs.SpanRecorder

	// Origin-path resilience: per-host circuit breakers shared by both
	// retrying upstreams. fwdUp serves live client requests (retries, but
	// never refuses — the client asked); preUp serves prefetches (gated by
	// the breaker, so a sick host stops consuming workers).
	res      config.Resilience
	breakers *resilience.Breakers
	fwdUp    resilience.Upstream
	preUp    resilience.Upstream

	// sigFail tracks per-signature consecutive prefetch failures and the
	// exponential-backoff suspension window they earn.
	resMu   sync.Mutex
	sigFail map[string]*sigBackoff

	mu      sync.Mutex
	users   map[string]*user
	samples map[string]*httpmsg.Request

	// store holds prefetched responses: per-user scopes plus the cross-user
	// shared tier; inflight prefetch dedup rides on the same scopes.
	store    *cache.Store
	cacheCfg config.Cache

	// dataUsed accounts prefetch bytes per budget window (C4).
	dataUsed *usageWindow

	// Overload-control layer: the admission gate bounds concurrent client
	// requests, the governor scales speculative prefetching with load, and
	// clientLat windows recent client latencies for the governor's p95
	// signal and telemetry.
	ovl           config.Overload
	gate          *admitGate
	gov           *governor
	clientLat     *latencyRing
	govSuppressed atomic.Int64
	draining      atomic.Bool

	// Crash-safe persistence (persist.go): disk cache tier + state
	// snapshots, active when Options.StateDir is set.
	persist         persistState
	restoreFailures atomic.Int64

	// Cluster mode (cluster.go): membership ring, owner forwarding, and
	// sibling peer fill. Nil when Options.Cluster is not enabled.
	cluster *clusterState

	// Prefetch decision policy (policy.go in this package): the static
	// baseline always exists; markovPol is additionally non-nil when
	// Options.PrefetchPolicy selects history-aware ranking. skips counts
	// candidates dropped before reaching the scheduler, by reason.
	staticPol *policy.Static
	markovPol *policy.Markov
	rankHist  *obs.Histogram
	skips     prefetchSkips

	// budget counts request-latency-budget events (budget.go).
	budget struct {
		inherited atomic.Int64
		clamped   atomic.Int64
		exhausted atomic.Int64
	}

	// Streaming data plane (stream.go): pooled body chunks, the in-flight
	// fetch registry clients attach to, resolved caps, and data-plane
	// telemetry.
	chunks      *stream.Pool
	captureCap  int64
	maxBody     int64
	flightMu    sync.Mutex
	flights     map[string]*flight
	streamStats streamStatCounters
	ttfb        *obs.Histogram
}

// sigBackoff is one signature's failure streak and suspension deadline.
type sigBackoff struct {
	consecutive int
	until       time.Time
}

// SampleRequest returns a successfully prefetched concrete request for the
// signature, or nil. The verification phase uses it to probe expiration
// times (§4.3).
func (p *Proxy) SampleRequest(sigID string) *httpmsg.Request {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.samples[sigID]; ok {
		return r.Clone()
	}
	return nil
}

// pendingInstance is a successor instance waiting for an exemplar.
type pendingInstance struct {
	s     *sig.Signature
	pred  string
	combo map[string]string
	doc   any
	depth int
}

// user holds per-user learning state (§2: "The proxy keeps track of user
// contexts"). The prefetched responses themselves live in the shared
// cache.Store, under this user's scope or the cross-user shared tier.
type user struct {
	key string

	mu        sync.Mutex
	exemplars map[string]*exemplar         // sigID → latest live example
	pending   map[string][]pendingInstance // sigID → instances awaiting exemplar
	lastSeen  time.Time
}

// New builds a proxy.
func New(opts Options) *Proxy {
	if opts.Workers == 0 {
		opts.Workers = 8
	}
	if opts.MaxChainDepth == 0 {
		opts.MaxChainDepth = 8
	}
	if opts.MaxPendingPerSig == 0 {
		opts.MaxPendingPerSig = 256
	}
	if opts.MaxUsers == 0 {
		opts.MaxUsers = 10000
	}
	if opts.Rand == nil {
		opts.Rand = rand.Float64
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.UserKey == nil {
		opts.UserKey = func(r *http.Request) string {
			if u := r.Header.Get(userHeader); u != "" {
				// NUL bytes are stripped so a header-supplied key can never
				// forge the NUL-prefixed reserved shared scope (or smuggle
				// separator bytes into scope-prefixed internal keys).
				return strings.ReplaceAll(u, "\x00", "")
			}
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil {
				return r.RemoteAddr
			}
			return host
		}
	}
	if opts.Config == nil {
		opts.Config = config.Default(opts.Graph)
	}
	if opts.StreamChunkBytes == 0 {
		opts.StreamChunkBytes = stream.DefaultChunkBytes
	}
	if opts.CaptureMaxBytes == 0 {
		opts.CaptureMaxBytes = 4 << 20
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	reg := obs.NewRegistry()
	p := &Proxy{
		opts:    opts,
		reg:     reg,
		stats:   NewStatsOn(reg),
		users:   map[string]*user{},
		sigFail: map[string]*sigBackoff{},
		flights: map[string]*flight{},
	}
	p.spans = obs.NewSpanRecorder(reg, opts.SpanBuffer, func() time.Time { return p.opts.Now() })
	p.chunks = stream.NewPool(opts.StreamChunkBytes)
	p.captureCap = opts.CaptureMaxBytes
	p.maxBody = opts.MaxBodyBytes
	if p.maxBody < 0 {
		p.maxBody = 0 // explicit opt-out: unlimited request bodies
	}
	p.ttfb = reg.Histogram("appx_ttfb_seconds",
		"Time from request admission to the first response byte on the wire.", nil)
	p.res = opts.Config.EffectiveResilience()
	// Now/Rand are read through p.opts so tests that rebind them after New
	// (the established idiom here) also steer the resilience layer.
	p.breakers = resilience.NewBreakers(resilience.BreakerOptions{
		FailureThreshold: p.res.BreakerFailures,
		OpenTimeout:      time.Duration(p.res.BreakerOpenTimeout),
		Now:              func() time.Time { return p.opts.Now() },
	})
	retry := resilience.RetryOptions{
		MaxAttempts:       p.res.RetryAttempts,
		BaseDelay:         time.Duration(p.res.RetryBaseDelay),
		MaxDelay:          time.Duration(p.res.RetryMaxDelay),
		PerAttemptTimeout: time.Duration(p.res.AttemptTimeout),
		Rand:              func() float64 { return p.opts.Rand() },
		OnRetry:           func(host string, attempt int) { p.stats.CountRetry() },
	}
	p.fwdUp = resilience.NewRetrier(opts.Upstream, retry, p.breakers, false)
	p.preUp = resilience.NewRetrier(opts.Upstream, retry, p.breakers, true)
	p.cacheCfg = opts.Config.EffectiveCache()
	if opts.MaxCacheEntriesPerUser > 0 {
		p.cacheCfg.MaxEntriesPerUser = opts.MaxCacheEntriesPerUser
	}
	// The disk tier must exist before the store so spills and read-through
	// promotion work from the first request.
	p.initPersist()
	var tier cache.Tier
	if p.persist.tier != nil {
		tier = p.persist.tier
	}
	p.store = cache.New(cache.Options{
		Shards:             p.cacheCfg.Shards,
		MaxBytes:           p.cacheCfg.MaxBytes,
		PerScopeBytes:      p.cacheCfg.PerUserBytes,
		MaxEntriesPerScope: p.cacheCfg.MaxEntriesPerUser,
		Now:                func() time.Time { return p.opts.Now() },
		Tier:               tier,
	})
	p.store.StartSweeper(time.Duration(p.cacheCfg.SweepInterval))
	p.dataUsed = newUsageWindow(opts.Config.BudgetWindow())
	p.ovl = opts.Config.EffectiveOverload()
	p.gate = newAdmitGate(p.ovl.MaxConcurrentRequests, time.Duration(p.ovl.AdmissionWait))
	p.gov = newGovernor(p.ovl, func() time.Time { return p.opts.Now() })
	p.clientLat = newLatencyRing(512)
	p.sched = sched.NewWith(sched.Config{
		Workers:  opts.Workers,
		Priority: p.stats.Priority,
		MaxQueue: p.ovl.MaxQueue,
		Now:      func() time.Time { return p.opts.Now() },
	})
	// The policy layer hooks into the governor, breakers, and backoff state
	// built above; it must exist before any request can fan out prefetches.
	p.initPolicy()
	p.registerBridges(reg)
	p.registerStreamBridges(reg)
	p.registerPersistBridges(reg)
	p.registerPolicyBridges(reg)
	// Restore before any request is served; the snapshot loop starts only
	// after the restored state is in place.
	p.restorePersist()
	p.startPersistLoop()
	// Cluster mode comes up last, once the instance can already serve: the
	// first health probes from peers must find a working proxy.
	if opts.Cluster.Enabled() {
		p.initCluster(reg)
	}
	return p
}

// registerBridges pulls subsystem-owned counters and gauges — admission
// gate, governor, scheduler classes, cache tier, breakers — onto the
// registry at scrape time, so /appx/v1/metrics exposes one coherent surface
// without those subsystems importing obs or paying write-path costs.
func (p *Proxy) registerBridges(reg *obs.Registry) {
	reg.CounterFunc("appx_admission_admitted_total", "Client requests admitted past the gate.",
		func() int64 { a, _ := p.gate.counts(); return a })
	reg.CounterFunc("appx_admission_shed_total", "Client requests shed by the admission gate.",
		func() int64 { _, s := p.gate.counts(); return s })
	reg.CounterFunc("appx_governor_suppressed_total", "Prefetches the governor declined to issue.",
		p.govSuppressed.Load)
	reg.GaugeFunc("appx_governor_level", "AIMD prefetch level (0..1).", p.gov.Level)
	reg.GaugeFunc("appx_prefetch_queue_depth", "Queued prefetch tasks.",
		func() float64 { return float64(p.sched.QueueLen()) })
	reg.GaugeFunc("appx_users", "Tracked per-user learning states.",
		func() float64 { return float64(p.UserCount()) })
	reg.GaugeFunc("appx_cache_resident_bytes", "Bytes resident in the prefetch store.",
		func() float64 { return float64(p.store.ResidentBytes()) })
	reg.GaugeFunc("appx_breakers_open", "Origin hosts whose circuit breaker is not closed.",
		func() float64 {
			n := 0
			for _, b := range p.breakers.Snapshot() {
				if b.State != resilience.Closed {
					n++
				}
			}
			return float64(n)
		})
	for _, c := range []sched.Class{sched.ClassForeground, sched.ClassShallow, sched.ClassDeep} {
		c := c
		reg.CounterFunc(`appx_sched_submitted_total{class="`+c.String()+`"}`,
			"Prefetch tasks accepted into the queue by class.",
			func() int64 { return p.sched.Metrics().ByClass(c).Submitted })
		reg.CounterFunc(`appx_sched_ran_total{class="`+c.String()+`"}`,
			"Prefetch tasks dispatched to a worker by class.",
			func() int64 { return p.sched.Metrics().ByClass(c).Ran })
	}
	reg.CounterFunc(`appx_cache_evictions_total{cause="expired"}`, "Cache evictions by cause.",
		func() int64 { return p.store.Metrics().Evictions.Expired })
	reg.CounterFunc(`appx_cache_evictions_total{cause="budget"}`, "Cache evictions by cause.",
		func() int64 { return p.store.Metrics().Evictions.Budget })
	reg.CounterFunc("appx_budget_inherited_total", "Requests arriving with a propagated latency budget.",
		p.budget.inherited.Load)
	reg.CounterFunc("appx_budget_clamped_total", "Inherited budgets clamped to the local limit.",
		p.budget.clamped.Load)
	reg.CounterFunc("appx_budget_exhausted_total", "Stage attempts skipped on an exhausted budget.",
		p.budget.exhausted.Load)
}

// Breakers exposes the per-host circuit breaker set (operational tooling
// and tests).
func (p *Proxy) Breakers() *resilience.Breakers { return p.breakers }

// Stats exposes the proxy's counters.
func (p *Proxy) Stats() *Stats { return p.stats }

// Registry exposes the proxy's metrics registry (the /appx/v1/metrics
// source; tests and embedders may register extra series).
func (p *Proxy) Registry() *obs.Registry { return p.reg }

// RecentSpans returns up to n of the most recently finished request spans,
// newest first.
func (p *Proxy) RecentSpans(n int) []obs.SpanSnapshot { return p.spans.Recent(n) }

// SpanTotal reports the lifetime count of finished request spans.
func (p *Proxy) SpanTotal() uint64 { return p.spans.Total() }

// Cache exposes the prefetch store (operational tooling and tests).
func (p *Proxy) Cache() *cache.Store { return p.store }

// DataUsedBytes reports prefetch response bytes fetched in the current
// budget window.
func (p *Proxy) DataUsedBytes() int64 { return p.dataUsed.Used(p.opts.Now()) }

// Drain waits for all queued prefetches to finish (testing/verification).
func (p *Proxy) Drain() { p.sched.Drain() }

// BeginDrain flips the proxy into lifecycle draining: new proxied requests
// are refused with 503 while in-flight ones finish; the status endpoints
// keep serving so orchestrators can watch the drain. Part of graceful
// shutdown — the server stops admitting before it waits for in-flight work.
// With persistence enabled the drain also writes a final snapshot, so a
// graceful restart resumes from the very last learned state rather than
// the last periodic tick.
func (p *Proxy) BeginDrain() {
	if p.draining.CompareAndSwap(false, true) {
		// Cluster I/O dies first: Close cancels the cluster context, which
		// aborts in-flight probes and background peer fills immediately — a
		// drain must not spend its deadline waiting out network timeouts on
		// peers that may themselves be going down.
		if p.cluster != nil {
			p.cluster.c.Close()
		}
		p.SnapshotNow()
	}
}

// Draining reports whether BeginDrain was called.
func (p *Proxy) Draining() bool { return p.draining.Load() }

// OverloadMode names the proxy's current overload state: "normal",
// "degraded", "shedding", or "draining" during graceful shutdown.
func (p *Proxy) OverloadMode() string {
	if p.draining.Load() {
		return "draining"
	}
	return p.gov.Mode()
}

// OverloadLevel reports the governor's current prefetch level (0..1).
func (p *Proxy) OverloadLevel() float64 { return p.gov.Level() }

// retryAfter derives the Retry-After hint stamped on every shed (503) from
// the current overload mode: a draining instance is leaving and clients
// should stay away longest; a shedding one needs breathing room; a gate shed
// under otherwise-normal load clears fastest.
func (p *Proxy) retryAfter() string {
	switch p.OverloadMode() {
	case "draining":
		return "5"
	case "shedding":
		return "2"
	default:
		return "1"
	}
}

// AdmissionCounts reports lifetime admitted and shed client requests.
func (p *Proxy) AdmissionCounts() (admitted, shed int64) { return p.gate.counts() }

// GovernorSuppressed reports prefetches the governor declined to issue.
func (p *Proxy) GovernorSuppressed() int64 { return p.govSuppressed.Load() }

// SchedMetrics exposes the prefetch scheduler's per-class counters.
func (p *Proxy) SchedMetrics() sched.Metrics { return p.sched.Metrics() }

// ClientLatencyQuantile reports the q-quantile of recent client latencies.
func (p *Proxy) ClientLatencyQuantile(q float64) time.Duration {
	return p.clientLat.Quantile(q)
}

// queueFrac reports the prefetch queue's fill fraction (0..1).
func (p *Proxy) queueFrac() float64 {
	if c := p.sched.Cap(); c > 0 {
		return float64(p.sched.QueueLen()) / float64(c)
	}
	return 0
}

// observeClient folds one client-visible latency into the window and gives
// the governor a load sample: every served request is a sensor reading.
func (p *Proxy) observeClient(d time.Duration) {
	p.clientLat.Observe(d)
	p.gov.Observe(p.queueFrac(), p.clientLat.Quantile(0.95), false)
}

// effectiveChainDepth scales the configured chain depth by the governor
// level, so under pressure the proxy sheds the deep, most speculative end of
// each dependency chain first.
func (p *Proxy) effectiveChainDepth() int {
	level := p.gov.Level()
	if level >= 1 {
		return p.opts.MaxChainDepth
	}
	return int(math.Round(level * float64(p.opts.MaxChainDepth)))
}

// Close stops the prefetch workers, the cache sweeper, and (when
// persistence is enabled) the snapshot loop and disk-tier spill worker —
// the tier drains its write-behind backlog before Close returns. Ordering:
// producers of cache writes (the scheduler) stop before the store, and the
// store before the tier it spills into.
func (p *Proxy) Close() {
	// Cluster probing/rebalancing stops first: a rebalance firing into a
	// closing scheduler or store would race the teardown below.
	if p.cluster != nil {
		p.cluster.c.Close()
	}
	p.sched.Close()
	p.store.Close()
	p.stopPersist()
}

func (p *Proxy) user(key string) *user {
	p.mu.Lock()
	defer p.mu.Unlock()
	u, ok := p.users[key]
	if !ok {
		if len(p.users) >= p.opts.MaxUsers {
			p.evictIdleUserLocked()
		}
		u = &user{
			key:       key,
			exemplars: map[string]*exemplar{},
			pending:   map[string][]pendingInstance{},
		}
		p.users[key] = u
	}
	u.lastSeen = p.opts.Now()
	return u
}

// evictIdleUserLocked drops the least recently seen user and their cached
// responses (p.mu held; the store has its own locks).
func (p *Proxy) evictIdleUserLocked() {
	var oldestKey string
	var oldest time.Time
	for k, u := range p.users {
		if oldestKey == "" || u.lastSeen.Before(oldest) {
			oldestKey, oldest = k, u.lastSeen
		}
	}
	if oldestKey != "" {
		delete(p.users, oldestKey)
		p.store.DropScope(oldestKey)
	}
}

// PruneUsers drops user states idle for longer than maxIdle, with their
// cached responses, and returns how many were removed. Long-running
// deployments call this periodically.
func (p *Proxy) PruneUsers(maxIdle time.Duration) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	cutoff := p.opts.Now().Add(-maxIdle)
	n := 0
	for k, u := range p.users {
		if u.lastSeen.Before(cutoff) {
			delete(p.users, k)
			p.store.DropScope(k)
			n++
		}
	}
	return n
}

// UserCount reports the number of tracked user states.
func (p *Proxy) UserCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.users)
}

// ServeHTTP handles one proxied client request (Figure 10's flow: serve
// fresh prefetched responses directly, otherwise forward, then feed the
// transaction into dynamic learning).
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Origin-form requests (no absolute URI) address the proxy itself
	// rather than an upstream: serve the small operational surface. No span:
	// admin traffic is not part of the accelerated request population.
	if r.URL.Host == "" {
		p.serveStatus(w, r)
		return
	}
	// Every proxied request gets exactly one span; the deferred Finish seals
	// it on every return path below (pooled — drop all references after).
	sp := p.spans.Start()
	defer sp.Finish()
	// Lifecycle draining: refuse new proxied work so a graceful shutdown can
	// wait out only the requests already in flight. Status endpoints above
	// stay available for orchestrators watching the drain.
	if p.draining.Load() {
		sp.EndStage(obs.StageAdmission)
		sp.SetOutcome(obs.OutcomeShed)
		w.Header().Set("Retry-After", p.retryAfter())
		http.Error(w, "proxy: draining", http.StatusServiceUnavailable)
		return
	}
	// Admission control: bound concurrent client work. Arrivals past the
	// limit wait briefly for a slot and are shed with a 503 otherwise; a shed
	// is also the strongest overload signal the prefetch governor gets.
	if !p.gate.acquire(r.Context()) {
		sp.EndStage(obs.StageAdmission)
		sp.SetOutcome(obs.OutcomeShed)
		p.gov.Observe(p.queueFrac(), p.clientLat.Quantile(0.95), true)
		w.Header().Set("Retry-After", p.retryAfter())
		http.Error(w, "proxy: overloaded", http.StatusServiceUnavailable)
		return
	}
	defer p.gate.release()
	sp.EndStage(obs.StageAdmission)
	userKey := p.opts.UserKey(r)
	sp.SetUser(userKey)
	req, err := httpmsg.FromHTTPLimited(r, p.maxBody)
	if err != nil {
		sp.EndStage(obs.StageParse)
		sp.SetOutcome(obs.OutcomeError)
		if errors.Is(err, httpmsg.ErrBodyTooLarge) {
			http.Error(w, "proxy: request body too large", http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, "proxy: malformed request: "+err.Error(), http.StatusBadRequest)
		}
		return
	}
	// The user, cluster, and budget tags are proxy addressing metadata, not
	// application payload: record what they say, then strip them here —
	// before any routing decision — so no path (relay, fallback, origin,
	// error) can leak them onward or let them perturb exact-match keys.
	_, hopped := req.GetHeader(clusterHopHeader)
	bgt := p.acceptBudget(req)
	req.DeleteHeader(userHeader)
	req.DeleteHeader(clusterHopHeader)
	// Cluster routing: a request for a user this instance does not own is
	// relayed to the owner, so the user's learned state accretes in exactly
	// one place. The hop header caps relaying at one hop — a forwarded
	// request is always served where it lands, even if membership views
	// momentarily disagree about ownership. Relay failure of any kind falls
	// through to local serving: topology trouble must never fail a
	// foreground request.
	if p.cluster != nil {
		if hopped {
			p.cluster.receivedForwards.Add(1)
		} else if addr, self := p.cluster.c.Owner(userKey); !self {
			if p.clusterRelay(r.Context(), bgt, sp, w, req, userKey, addr) {
				return
			}
		}
	}
	u := p.user(userKey)
	key := req.CanonicalKey()
	sp.EndStage(obs.StageParse)
	start := p.opts.Now()

	if entry, shared := p.lookup(u, key); entry != nil {
		sp.EndStage(obs.StageCache)
		sp.SetSig(entry.SigID)
		// R3: the prefetched request was byte-identical (canonical key
		// equality), so the client receives exactly the origin's bytes —
		// true even across users for shared-tier hits. writeBuffered slices
		// 206s locally when the client asked for a Range of the entity.
		p.stats.CountHit(entry.SigID, int64(len(entry.Resp.Body)), p.stats.RespTime(entry.SigID), entry.FirstUse(), shared)
		p.observePolicy(u.key, entry.SigID)
		p.writeBuffered(w, req, entry.Resp)
		sp.EndStage(obs.StageWrite)
		p.observeTTFB(start)
		if entry.Refreshed {
			sp.SetOutcome(obs.OutcomeRefreshHit)
		} else {
			sp.SetOutcome(obs.OutcomePrefetchHit)
		}
		p.observeClient(p.opts.Now().Sub(start))
		return
	}
	sp.EndStage(obs.StageCache)

	// The match runs before the origin round trip now: it decides whether
	// this miss becomes a flight (spooled, capturable, attachable) or a plain
	// passthrough.
	var matched []*sig.Signature
	if !p.opts.DisablePrefetch {
		matched = p.opts.Graph.MatchRequest(req)
	}

	// Cluster peer fill: a shared-eligible miss asks ring siblings for the
	// entry before paying an origin round trip. Only cacheable targets
	// qualify — signatures someone prefetches (they have dependency edges
	// in) and whose responses are user-agnostic. The fill Puts into the
	// local shared tier, so it both answers this request and warms the
	// instance.
	if p.cluster != nil && len(matched) > 0 &&
		len(p.opts.Graph.DepsInto(matched[0].ID)) > 0 && p.sharedEligible(matched[0], req) {
		if entry := p.clusterPeerFill(r.Context(), key, false, bgt); entry != nil {
			sp.SetSig(entry.SigID)
			p.stats.CountHit(entry.SigID, int64(len(entry.Resp.Body)), p.stats.RespTime(entry.SigID), entry.FirstUse(), true)
			p.observePolicy(u.key, entry.SigID)
			p.writeBuffered(w, req, entry.Resp)
			sp.EndStage(obs.StageWrite)
			p.observeTTFB(start)
			sp.SetOutcome(obs.OutcomePeerHit)
			p.observeClient(p.opts.Now().Sub(start))
			return
		}
	}

	if len(matched) == 0 {
		// Unmatched (or prefetch-disabled): forward verbatim — Range header
		// and all — streaming the body straight through, never spooled.
		p.forwardPassthrough(r.Context(), bgt, sp, w, req, start)
		return
	}

	// Matched: this fetch is a flight. The flight key lives on the same
	// scope the prefetch path uses, so a foreground miss, a prefetch worker,
	// and any number of concurrent clients converge on one origin fetch.
	scope := u.key
	if p.sharedEligible(matched[0], req) {
		scope = cache.SharedScope
	}
	fl, owner := p.openFlight(cache.IssueKey(scope, key))
	if !owner {
		if p.attachFlight(w, r.Context().Done(), sp, fl, req, start) {
			p.streamStats.attachHits.Add(1)
			p.observePolicy(u.key, matched[0].ID)
			sp.SetSig(matched[0].ID)
			sp.SetOutcome(obs.OutcomeAttachHit)
			p.observeClient(p.opts.Now().Sub(start))
			return
		}
		// The flight failed, answered non-200, or slid past this client's
		// range: fetch independently, without opening a second flight (a
		// failing key must not stack spools).
		p.forwardPassthrough(r.Context(), bgt, sp, w, req, start)
		return
	}
	p.runFlight(r.Context(), bgt, sp, w, u, req, matched, cache.IssueKey(scope, key), fl, start)
}

// forwardPassthrough forwards one request on the client's behalf and streams
// the answer through untouched: no spool, no capture, no learning. The
// request context propagates client disconnects, the remaining latency
// budget (when set) bounds the whole origin exchange, and the retry
// middleware gives idempotent requests one fast retry before the client
// sees a 502.
func (p *Proxy) forwardPassthrough(ctx context.Context, bgt reqBudget, sp *obs.Span, w http.ResponseWriter, req *httpmsg.Request, start time.Time) {
	octx, ocancel := bgt.bound(ctx, p.opts.Now(), 0)
	resp, err := p.fwdUp.RoundTrip(octx, req)
	if err != nil {
		ocancel()
		sp.EndStage(obs.StageOrigin)
		sp.SetOutcome(obs.OutcomeError)
		http.Error(w, "proxy: upstream: "+err.Error(), http.StatusBadGateway)
		p.observeClient(p.opts.Now().Sub(start))
		return
	}
	// A streaming body keeps the origin exchange open past this function:
	// the bound context must live until the body is finished.
	if resp.Streaming() {
		resp.OnBodyClose(ocancel)
	} else {
		ocancel()
	}
	sp.EndStage(obs.StageOrigin)
	elapsed := p.opts.Now().Sub(start)
	p.observeTTFB(start)
	resp.WriteTo(w)
	sp.EndStage(obs.StageWrite)
	sp.SetOutcome(obs.OutcomeOrigin)
	p.observeClient(elapsed)
}

// runFlight executes the owner side of a foreground flight: fetch the whole
// entity, publish headers to any attachers, pump the body through the spool
// while serving this client from it, then feed the capture into stats and
// learning. fkey names the flight in the registry.
func (p *Proxy) runFlight(ctx context.Context, bgt reqBudget, sp *obs.Span, w http.ResponseWriter, u *user, req *httpmsg.Request, matched []*sig.Signature, fkey string, fl *flight, start time.Time) {
	// A matched live request is history evidence whether it hits or misses;
	// the hit paths observe in ServeHTTP, the miss path observes here.
	p.observePolicy(u.key, matched[0].ID)
	// The origin always sees the whole-entity request: Range is stripped and
	// the 206 (if asked for) is sliced locally from the spool, so the capture
	// stays a complete entity every attacher and the cache can share.
	sent := req
	if rangeHeaderOf(req) != "" {
		sent = req.Clone()
		sent.DeleteHeader("Range")
		sent.DeleteHeader("If-Range")
	}
	octx, ocancel := bgt.bound(ctx, p.opts.Now(), 0)
	resp, err := p.fwdUp.RoundTrip(octx, sent)
	if err != nil {
		ocancel()
		sp.EndStage(obs.StageOrigin)
		sp.SetOutcome(obs.OutcomeError)
		p.failFlight(fkey, fl, err)
		http.Error(w, "proxy: upstream: "+err.Error(), http.StatusBadGateway)
		p.observeClient(p.opts.Now().Sub(start))
		return
	}
	if resp.Streaming() {
		resp.OnBodyClose(ocancel)
	} else {
		ocancel()
	}
	sp.EndStage(obs.StageOrigin)
	elapsed := p.opts.Now().Sub(start)
	fl.status = resp.Status
	fl.header = resp.Header
	fl.sigID = matched[0].ID
	close(fl.ready)
	// Resolve this client's own view (Range against a not-yet-known total)
	// and pin a reader BEFORE the pump starts: pre-pump, no offset can have
	// been trimmed away, so the owner is always servable from its own flight.
	off, length, contentRange, ranged, _ := flightRange(req, fl)
	rd, rerr := fl.sp.ReaderAt(off)
	go p.pump(fl, resp)
	if rerr == nil {
		p.serveSpool(w, sp, fl, rd, length, contentRange, ranged, start)
		rd.Close()
	}
	sp.SetSig(matched[0].ID)
	sp.SetOutcome(obs.OutcomeOrigin)
	p.observeClient(elapsed)

	// Body accounting and learning happen once the pump finishes. Under-cap
	// bodies always complete into a capture (no backpressure below the cap),
	// even when this client disconnected mid-stream; over-cap bodies are
	// abandoned by the pump as soon as the last reader detaches.
	fl.sp.Wait()
	p.closeFlight(fkey, fl)
	body, ok := fl.sp.Bytes()
	if !ok && fl.sp.Overflowed() {
		p.streamStats.bodyOverflows.Add(1)
	}
	p.stats.ObserveRespTime(matched[0].ID, elapsed)
	p.stats.CountMiss(matched[0].ID, fl.sp.Size())
	if ok {
		lresp := &httpmsg.Response{Status: fl.status, Header: fl.header, Body: body}
		// Ambiguous URI patterns (fully dynamic URLs look identical) mean one
		// live transaction can instantiate several signatures; learn through
		// every match so each keeps a usable exemplar.
		for _, s := range matched {
			p.learn(u, s, req, lresp, 0, true)
		}
		sp.EndStage(obs.StageLearn)
	}
	fl.sp.Discard()
}

// serveStatus answers direct (non-proxied) requests with the versioned
// admin API (/appx/v1/*) — the operational surface of the proxy process.
// The pre-versioning paths survive as deprecated redirecting aliases.
func (p *Proxy) serveStatus(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/", "/healthz":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Prefetchable serves from the graph's cached adjacency index — a
		// map read, not a Deps rescan, so health probes stay O(1).
		fmt.Fprintf(w, "appx proxy: %d signatures, %d prefetchable\n",
			len(p.opts.Graph.Sigs), len(p.opts.Graph.Prefetchable()))
	case adminv1.PathStats:
		writeJSON(w, p.statsV1())
	case adminv1.PathHealth:
		writeJSON(w, p.healthV1())
	case adminv1.PathSpans:
		n := 64
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		writeJSON(w, p.spansV1(n))
	case adminv1.PathMetrics:
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		p.reg.WritePrometheus(w)
	case adminv1.PathClusterEntry:
		p.serveClusterEntry(w, r)
	case adminv1.LegacyPathStats:
		redirectDeprecated(w, r, adminv1.PathStats)
	case adminv1.LegacyPathHealth:
		redirectDeprecated(w, r, adminv1.PathHealth)
	default:
		http.Error(w, "appx proxy: unknown endpoint (this is a forward proxy; configure it as such)", http.StatusNotFound)
	}
}

// redirectDeprecated 307-redirects a pre-versioning admin path to its
// /appx/v1 successor. 307 keeps the method; the Deprecation header (RFC
// 9745) and successor-version Link tell clients what to migrate to.
func redirectDeprecated(w http.ResponseWriter, r *http.Request, successor string) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
	http.Redirect(w, r, successor, http.StatusTemporaryRedirect)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// statsV1 assembles the typed /appx/v1/stats body.
func (p *Proxy) statsV1() adminv1.StatsResponse {
	snap := p.stats.Snapshot()
	mt := p.opts.Graph.MatchTelemetry()
	return adminv1.StatsResponse{
		MatchIndex: adminv1.MatchIndex{
			Lookups:        mt.Lookups,
			ExactHits:      mt.ExactHits,
			TrieCandidates: mt.TrieCandidates,
			RegexEvals:     mt.RegexEvals,
			RegexMatches:   mt.RegexMatches,
		},
		Hits:                 snap.Hits,
		SharedHits:           snap.SharedHits,
		Misses:               snap.Misses,
		Prefetches:           snap.Prefetches,
		HitRatio:             snap.HitRatio(),
		SharedHitRatio:       snap.SharedHitRatio(),
		DataUsage:            snap.NormalizedDataUsage(),
		UsedPrefetchRatio:    snap.UsedPrefetchRatio(),
		SavedLatencyMs:       snap.SavedLatency.Milliseconds(),
		Users:                p.UserCount(),
		PrefetchQueue:        p.sched.QueueLen(),
		DataUsedBytes:        p.DataUsedBytes(),
		CacheResidentBytes:   p.store.ResidentBytes(),
		Retries:              snap.Retries,
		PrefetchErrors:       snap.PrefetchErrors,
		SuppressedPrefetches: snap.PrefetchSuppressed,
		Overload:             p.overloadV1(),
		Sched:                p.schedV1(),
		Requests:             p.requestsV1(),
		Persist:              p.persistV1(),
		Cluster:              p.clusterV1(),
		Budget:               p.budgetV1(),
		Policy:               p.policyV1(),
	}
}

// budgetV1 assembles the typed budget block of /appx/v1/stats.
func (p *Proxy) budgetV1() adminv1.Budget {
	return adminv1.Budget{
		Enabled:   p.opts.RequestBudget > 0,
		LimitMs:   p.opts.RequestBudget.Milliseconds(),
		Inherited: p.budget.inherited.Load(),
		Clamped:   p.budget.clamped.Load(),
		Exhausted: p.budget.exhausted.Load(),
	}
}

// healthV1 assembles the typed /appx/v1/health body: the resilience layer's
// view of the origin fleet — per-host breaker states, suspended prefetch
// signatures, retry and suppression counters. "degraded" means some work is
// currently being shed.
func (p *Proxy) healthV1() adminv1.HealthResponse {
	now := p.opts.Now()
	degraded := false

	breakers := map[string]adminv1.Breaker{}
	for host, b := range p.breakers.Snapshot() {
		breakers[host] = adminv1.Breaker{
			State:               b.State.String(),
			ConsecutiveFailures: b.ConsecutiveFailures,
			OpenForMs:           b.OpenFor.Milliseconds(),
		}
		if b.State != resilience.Closed {
			degraded = true
		}
	}

	suspended := map[string]adminv1.SuspendedSignature{}
	p.resMu.Lock()
	for id, b := range p.sigFail {
		if now.Before(b.until) {
			suspended[id] = adminv1.SuspendedSignature{
				ConsecutiveFailures: b.consecutive,
				ResumeInMs:          b.until.Sub(now).Milliseconds(),
			}
			degraded = true
		}
	}
	p.resMu.Unlock()

	// Overload mode folds into health: a draining or shedding proxy is not
	// "ok" even when every origin is.
	if mode := p.OverloadMode(); mode != "normal" {
		degraded = true
	}
	status := "ok"
	if degraded {
		status = "degraded"
	}
	snap := p.stats.Snapshot()
	cm := p.store.Metrics()
	return adminv1.HealthResponse{
		Status:               status,
		Breakers:             breakers,
		SuspendedSignatures:  suspended,
		Retries:              snap.Retries,
		PrefetchErrors:       snap.PrefetchErrors,
		SuppressedPrefetches: snap.PrefetchSuppressed,
		PrefetchQueue:        p.sched.QueueLen(),
		DataUsedBytes:        p.DataUsedBytes(),
		Overload:             p.overloadV1(),
		Sched:                p.schedV1(),
		Cache: adminv1.Cache{
			ResidentBytes:  cm.ResidentBytes,
			Entries:        cm.Entries,
			Hits:           cm.Hits,
			Misses:         cm.Misses,
			SharedHits:     cm.SharedHits,
			SharedHitRatio: cm.SharedHitRatio(),
			SharedEntries:  cm.SharedEntries,
			SharedBytes:    cm.SharedBytes,
			Evictions: adminv1.CacheEvictions{
				Expired:     cm.Evictions.Expired,
				Budget:      cm.Evictions.Budget,
				UserBytes:   cm.Evictions.ScopeBytes,
				UserEntries: cm.Evictions.ScopeEntries,
				Replaced:    cm.Evictions.Replaced,
				UserDropped: cm.Evictions.Dropped,
			},
		},
	}
}

// spansV1 assembles the typed /appx/v1/spans body from the recorder's ring.
func (p *Proxy) spansV1(n int) adminv1.SpansResponse {
	recent := p.spans.Recent(n)
	out := adminv1.SpansResponse{Total: p.spans.Total(), Spans: make([]adminv1.Span, 0, len(recent))}
	for _, s := range recent {
		sp := adminv1.Span{
			ID:      s.ID,
			Start:   s.Start,
			WallMs:  float64(s.Wall) / float64(time.Millisecond),
			Outcome: s.Outcome.String(),
			SigID:   s.SigID,
			User:    s.User,
		}
		for st, d := range s.Stages {
			if d > 0 {
				if sp.StageMs == nil {
					sp.StageMs = map[string]float64{}
				}
				sp.StageMs[obs.Stage(st).String()] = float64(d) / float64(time.Millisecond)
			}
		}
		out.Spans = append(out.Spans, sp)
	}
	return out
}

// overloadV1 is the admission/governor block shared by stats and health.
func (p *Proxy) overloadV1() adminv1.Overload {
	admitted, shedded := p.gate.counts()
	return adminv1.Overload{
		Mode:               p.OverloadMode(),
		Level:              p.gov.Level(),
		Admitted:           admitted,
		AdmissionShed:      shedded,
		GovernorSuppressed: p.govSuppressed.Load(),
		ClientP50Ms:        p.clientLat.Quantile(0.50).Milliseconds(),
		ClientP95Ms:        p.clientLat.Quantile(0.95).Milliseconds(),
		ClientP99Ms:        p.clientLat.Quantile(0.99).Milliseconds(),
	}
}

// schedV1 is the per-class scheduler block shared by stats and health.
func (p *Proxy) schedV1() adminv1.Sched {
	m := p.sched.Metrics()
	classBlock := func(c sched.ClassMetrics) adminv1.SchedClass {
		return adminv1.SchedClass{
			Submitted:      c.Submitted,
			Ran:            c.Ran,
			DroppedFull:    c.DroppedFull,
			DroppedClosed:  c.DroppedClosed,
			DroppedExpired: c.DroppedExpired,
		}
	}
	return adminv1.Sched{
		Queue:      p.sched.QueueLen(),
		Capacity:   p.sched.Cap(),
		Panics:     m.Panics,
		Foreground: classBlock(m.Foreground),
		Shallow:    classBlock(m.Shallow),
		Deep:       classBlock(m.Deep),
	}
}

// requestsV1 is the span-derived request-lifecycle block of /appx/v1/stats.
func (p *Proxy) requestsV1() adminv1.Requests {
	toMs := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	out := adminv1.Requests{
		Total:      p.spans.Total(),
		Outcomes:   map[string]adminv1.OutcomeStats{},
		StageP95Ms: map[string]float64{},
	}
	for o := obs.Outcome(0); o < obs.NumOutcomes; o++ {
		n := p.spans.OutcomeCount(o)
		if n == 0 {
			continue
		}
		out.Outcomes[o.String()] = adminv1.OutcomeStats{
			Count: n,
			P50Ms: toMs(p.spans.WallQuantile(o, 0.50)),
			P90Ms: toMs(p.spans.WallQuantile(o, 0.90)),
			P95Ms: toMs(p.spans.WallQuantile(o, 0.95)),
			P99Ms: toMs(p.spans.WallQuantile(o, 0.99)),
		}
	}
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		if h := p.spans.StageHistogram(st); h != nil && h.Count() > 0 {
			out.StageP95Ms[st.String()] = toMs(h.Quantile(0.95))
		}
	}
	return out
}

// sigSuspended reports whether a signature is inside its failure-backoff
// suspension window.
func (p *Proxy) sigSuspended(sigID string) bool {
	p.resMu.Lock()
	defer p.resMu.Unlock()
	b := p.sigFail[sigID]
	return b != nil && p.opts.Now().Before(b.until)
}

// recordSigFailure notes one consecutive prefetch failure for a signature;
// at PrefetchFailureLimit the signature is suspended, with the window
// doubling per further failure up to PrefetchBackoffMax.
func (p *Proxy) recordSigFailure(sigID string) {
	p.resMu.Lock()
	defer p.resMu.Unlock()
	b := p.sigFail[sigID]
	if b == nil {
		b = &sigBackoff{}
		p.sigFail[sigID] = b
	}
	b.consecutive++
	if b.consecutive < p.res.PrefetchFailureLimit {
		return
	}
	d := time.Duration(p.res.PrefetchBackoffBase)
	max := time.Duration(p.res.PrefetchBackoffMax)
	for i := p.res.PrefetchFailureLimit; i < b.consecutive && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	b.until = p.opts.Now().Add(d)
}

// recordSigSuccess clears a signature's failure streak.
func (p *Proxy) recordSigSuccess(sigID string) {
	p.resMu.Lock()
	defer p.resMu.Unlock()
	delete(p.sigFail, sigID)
}

// lookup probes the user's cache scope, then the cross-user shared tier,
// for a fresh entry; shared reports which tier answered. Expired entries
// are dropped by the store at lookup (invariant: no response older than its
// expiration time is ever served) and optionally re-prefetched.
func (p *Proxy) lookup(u *user, key string) (entry *cache.Entry, shared bool) {
	if p.opts.DisablePrefetch {
		return nil, false
	}
	if e, fresh := p.store.Get(u.key, key); fresh {
		return e, false
	} else if e != nil {
		p.refreshExpired(u, e)
	}
	if !p.cacheCfg.DisableSharedTier {
		if e, fresh := p.store.Get(cache.SharedScope, key); fresh {
			return e, true
		} else if e != nil {
			p.refreshExpired(u, e)
		}
	}
	return nil, false
}

// refreshExpired re-issues the prefetch behind an entry found expired at
// lookup, keeping hot entries warm (Options.RefreshExpired).
func (p *Proxy) refreshExpired(u *user, e *cache.Entry) {
	if !p.opts.RefreshExpired || e.Req == nil {
		return
	}
	// A refresh renews an entry a client is demonstrably using right now, so
	// it rides in the foreground class and survives overload shedding. The
	// entry (and its request) may be shared across users hitting the same
	// key; Clone so the canonical-key memoization stays goroutine-local.
	if s := p.opts.Graph.Sig(e.SigID); s != nil {
		p.maybePrefetch(u, s, e.Req.Clone(), 0, sched.ClassForeground)
	}
}

// sharedEligible decides whether a reconstructed request may cache once
// for all users: the signature's patterns must be free of per-user runtime
// wildcards, and the materialized request (which carries the exemplar's
// extra live headers) must not smell of per-user state. The header half of
// the rule lives in the policy package (policy.SharedEligible) with the
// rest of the prefetch decision logic.
func (p *Proxy) sharedEligible(s *sig.Signature, req *httpmsg.Request) bool {
	if p.cacheCfg.DisableSharedTier || !s.UserAgnostic() {
		return false
	}
	return policy.SharedEligible(req.Header)
}

// learn runs the Figure-6 flowchart for one completed transaction:
// successor targets update the exemplar and release pending instances;
// predecessor targets spawn successor instances.
func (p *Proxy) learn(u *user, s *sig.Signature, req *httpmsg.Request, resp *httpmsg.Response, depth int, live bool) {
	// Successor routine (learning target is a successor): adapt to the most
	// recent condition — only from live client traffic, never from our own
	// synthetic prefetch requests.
	if live && len(p.opts.Graph.DepsInto(s.ID)) > 0 {
		if ex := learnExemplar(s, req); ex != nil {
			u.mu.Lock()
			u.exemplars[s.ID] = ex
			released := u.pending[s.ID]
			delete(u.pending, s.ID)
			u.mu.Unlock()
			for _, pi := range released {
				p.instantiate(u, pi.s, pi.pred, pi.combo, pi.doc, pi.depth)
			}
		}
	}

	// Predecessor routine: extract dependency values and build successor
	// instances.
	if resp.Status != http.StatusOK {
		return
	}
	succIDs := p.opts.Graph.Successors(s.ID)
	if len(succIDs) == 0 {
		return
	}
	doc, err := resp.JSON()
	if err != nil {
		return
	}
	// Build the candidate batch in dependency-graph order, then let the
	// policy decide which survive (Keep) and in what order they are
	// attempted. Only Keep and the output order are honoured here: the
	// execution gates re-run at issue time inside maybePrefetch, because an
	// instance can park awaiting an exemplar for arbitrarily long between
	// fan-out and issue.
	type fanout struct {
		succ  *sig.Signature
		paths []string
	}
	var cands []policy.Candidate
	var aux []fanout
	for _, succID := range succIDs {
		succ := p.opts.Graph.Sig(succID)
		if succ == nil {
			continue
		}
		cpol := p.opts.Config.Policy(succ.Hash())
		if cpol != nil && !cpol.Prefetch {
			continue
		}
		if cpol != nil && !cpol.Condition.Eval(doc) {
			continue
		}
		paths := depPaths(succ, s.ID)
		if len(paths) == 0 {
			continue
		}
		cands = append(cands, policy.Candidate{
			SigID: succID,
			Depth: depth,
			Index: len(aux),
			Prior: p.opts.Config.EffectiveProbability(cpol) * p.opts.Config.UserScale(u.key),
		})
		aux = append(aux, fanout{succ: succ, paths: paths})
	}
	if len(cands) == 0 {
		return
	}
	for _, d := range p.rankCandidates(u.key, s.ID, cands) {
		if !d.Keep {
			p.countSkip(d.KeepReason)
			continue
		}
		fo := aux[d.Index]
		combos := depCombos(doc, fo.paths)
		if len(combos) == 0 {
			p.countSkip(skipNoDepValues)
			continue
		}
		for _, combo := range combos {
			p.instantiate(u, fo.succ, s.ID, combo, doc, depth)
		}
	}
}

// instantiate materializes one successor instance, parking it when run-time
// values are still missing, and schedules the prefetch when ready.
func (p *Proxy) instantiate(u *user, s *sig.Signature, pred string, combo map[string]string, doc any, depth int) {
	u.mu.Lock()
	ex := u.exemplars[s.ID]
	u.mu.Unlock()

	// Every signature waits for at least one live example before its
	// instances are issued: the client's HTTP stack contributes run-time
	// headers no static pattern can predict, and the exact-match guarantee
	// (R2) requires reproducing them.
	if ex == nil {
		u.mu.Lock()
		if len(u.pending[s.ID]) < p.opts.MaxPendingPerSig {
			u.pending[s.ID] = append(u.pending[s.ID], pendingInstance{s: s, pred: pred, combo: combo, doc: doc, depth: depth})
			u.mu.Unlock()
			return
		}
		u.mu.Unlock()
		p.countSkip(skipPendingFull)
		return
	}
	req, ok := materialize(s, pred, combo, ex)
	if !ok {
		// The exemplar could not resolve every run-time value (stale wilds,
		// deps on other predecessors): the candidate silently vanishing here
		// would pollute policy precision numbers, so count it.
		p.countSkip(skipNoExemplar)
		return
	}
	// Depth maps to shed priority: chain tails are the most speculative work
	// the proxy does, so they go in the class that sheds first.
	class := sched.ClassShallow
	if depth >= p.ovl.DeepDepth {
		class = sched.ClassDeep
	}
	p.maybePrefetch(u, s, req, depth, class)
}

// maybePrefetch applies policy (probability, data budget, dedup) and
// overload control (governor level, class queue shares, enqueue deadline),
// then schedules the prefetch.
func (p *Proxy) maybePrefetch(u *user, s *sig.Signature, req *httpmsg.Request, depth int, class sched.Class) {
	cpol := p.opts.Config.Policy(s.Hash())
	// The policy evaluates the execution gates — governor shedding/level,
	// signature failure backoff, breaker readiness — over the concrete
	// candidate. All hooks are side-effect-free reads, so evaluating them
	// before the probability draw below leaves the draw stream unchanged.
	d := p.rankOne(u.key, policy.Candidate{
		SigID:      s.ID,
		Host:       req.Host,
		Depth:      depth,
		Foreground: class == sched.ClassForeground,
		Prior:      p.opts.Config.EffectiveProbability(cpol) * p.opts.Config.UserScale(u.key),
	})
	if !d.Allow && d.AllowReason == policy.ReasonShedding {
		p.govSuppressed.Add(1)
		p.stats.CountPrefetchSuppressed(s.ID)
		return
	}
	if d.Prob <= 0 || (d.Prob < 1 && p.opts.Rand() >= d.Prob) {
		return
	}
	if budget := p.opts.Config.DataBudgetBytes; budget > 0 && p.dataUsed.Used(p.opts.Now()) >= budget {
		return
	}
	// Resilience gates: a suspended signature (consecutive failures) or a
	// host whose breaker is not admitting traffic stops producing prefetch
	// work here, before it occupies queue slots, workers, or data budget.
	if !d.Allow {
		p.stats.CountPrefetchSuppressed(s.ID)
		return
	}
	expiry := p.opts.Config.Expiration(cpol)
	key := req.CanonicalKey()
	// Shared-eligible requests prefetch into the cross-user tier; TryIssue
	// then singleflights the fetch across every user wanting this key.
	scope := u.key
	if p.sharedEligible(s, req) {
		scope = cache.SharedScope
	}
	if !p.store.TryIssue(scope, key, expiry) {
		return
	}
	task := &sched.Task{
		SigID: s.ID,
		Class: class,
		Run: func() {
			p.runPrefetch(u, s, req, key, scope, expiry, depth, class)
		},
		// Accepted-then-shed (deadline expiry at dispatch, or Close): release
		// the dedup claim so a later, fresher instance can re-issue the fetch.
		Abandon: func() {
			p.store.CancelIssue(scope, key)
		},
		// A panicking prefetch counts as a prefetch failure: it releases its
		// claim and feeds the signature's backoff, so a reconstruction that
		// reliably panics suspends itself like one that reliably errors.
		OnPanic: func(any) {
			p.store.CancelIssue(scope, key)
			p.stats.CountPrefetchError(s.ID)
			p.recordSigFailure(s.ID)
		},
	}
	if qd := time.Duration(p.ovl.QueueDeadline); qd > 0 {
		task.Deadline = p.opts.Now().Add(qd)
	}
	if !p.sched.Submit(task) {
		p.store.CancelIssue(scope, key)
	}
}

// runPrefetch executes one prefetch: sends the (optionally header-tagged)
// request upstream, caches the response under the clean request's key, and
// feeds the transaction back into learning so dependency chains prefetch
// end-to-end (Figure 3(c)).
func (p *Proxy) runPrefetch(u *user, s *sig.Signature, req *httpmsg.Request, key, scope string, expiry time.Duration, depth int, class sched.Class) {
	if budget := p.opts.Config.DataBudgetBytes; budget > 0 && p.dataUsed.Used(p.opts.Now()) >= budget {
		// Budget re-checked at execution time: instances queued before the
		// budget ran out must not blow past it (C4).
		p.store.CancelIssue(scope, key)
		return
	}
	// Shared-tier prefetches try ring siblings before the origin: the claim
	// this task already holds is the cluster flight, so the fill neither
	// re-claims nor releases on miss (the origin fetch below still owns it).
	// A peer hit counts as a zero-byte prefetch — the entry is as warm as a
	// fetched one but cost no origin traffic.
	if p.cluster != nil && scope == cache.SharedScope {
		// Parent on the cluster context, not Background: BeginDrain cancels
		// it, so background fills die with the drain instead of waiting out
		// PrefetchTimeout.
		ctx, cancel := context.WithTimeout(p.cluster.c.Context(), time.Duration(p.res.PrefetchTimeout))
		e := p.clusterPeerFill(ctx, key, true, reqBudget{})
		cancel()
		if e != nil {
			p.stats.CountPrefetch(s.ID, 0)
			return
		}
	}
	sent := req
	cpol := p.opts.Config.Policy(s.Hash())
	if cpol != nil && len(cpol.AddHeader) > 0 {
		sent = req.Clone()
		for _, h := range cpol.AddHeader {
			sent.Header = append(sent.Header, httpmsg.Field{Key: h.Key, Value: h.Value})
		}
	}
	// The prefetch is a flight too: foreground misses for the same key
	// attach to it instead of paying their own origin round trip. And when a
	// foreground fetch already owns the flight, this worker rides it the
	// other way: wait for the shared fetch and cache its capture under the
	// claim this task holds.
	fkey := cache.IssueKey(scope, key)
	fl, owner := p.openFlight(fkey)
	if !owner {
		p.adoptFlight(fl, s, req, key, scope, expiry, class)
		return
	}
	// Bound the whole round trip — every retry attempt included — so a
	// stalled origin (netem-style) cannot pin this worker past the
	// deadline; the retry layer derives its per-attempt contexts from ours.
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(p.res.PrefetchTimeout))
	start := p.opts.Now()
	resp, err := p.preUp.RoundTrip(ctx, sent)
	if err != nil {
		cancel()
		p.failFlight(fkey, fl, err)
		p.store.CancelIssue(scope, key)
		if errors.Is(err, resilience.ErrOpen) {
			// The breaker tripped between queueing and execution; this is
			// suppression, not a fresh origin failure.
			p.stats.CountPrefetchSuppressed(s.ID)
			return
		}
		p.stats.CountPrefetchError(s.ID)
		p.recordSigFailure(s.ID)
		return
	}
	fl.status = resp.Status
	fl.header = resp.Header
	fl.sigID = s.ID
	close(fl.ready)
	// The worker streams the body through the spool inline: attachers read
	// as bytes arrive, and an over-cap body with nobody attached is
	// abandoned mid-stream (consume-or-cancel) instead of read to EOF.
	p.pump(fl, resp)
	cancel()
	p.closeFlight(fkey, fl)
	body, captured := fl.sp.Bytes()
	sz := fl.sp.Size()
	p.stats.ObserveRespTime(s.ID, p.opts.Now().Sub(start))
	p.stats.CountPrefetch(s.ID, sz)
	p.dataUsed.Add(p.opts.Now(), sz)
	if resp.Status != http.StatusOK {
		// The origin rejected our reconstruction; do not cache errors
		// (R3: never alter app behaviour with synthetic failures). Clear the
		// dedup claim so the signature's failure backoff — not a stale
		// issued entry — governs when reconstruction is retried.
		p.stats.CountPrefetchReject(s.ID)
		p.recordSigFailure(s.ID)
		p.store.CancelIssue(scope, key)
		fl.sp.Discard()
		return
	}
	if !captured {
		// Over the capture cap (or a mid-body stream error): there is no
		// complete entity to cache. Not a signature failure — the origin
		// answered fine; the response is just bigger than the proxy caches.
		if fl.sp.Overflowed() {
			p.streamStats.bodyOverflows.Add(1)
		}
		p.store.CancelIssue(scope, key)
		fl.sp.Discard()
		return
	}
	fl.sp.Discard()
	p.recordSigSuccess(s.ID)
	p.mu.Lock()
	if p.samples == nil {
		p.samples = map[string]*httpmsg.Request{}
	}
	p.samples[s.ID] = req.Clone()
	p.mu.Unlock()
	bresp := &httpmsg.Response{Status: fl.status, Header: fl.header, Body: body}
	p.store.Put(scope, key, &cache.Entry{
		Resp:    bresp,
		Req:     req.Clone(),
		SigID:   s.ID,
		Expires: p.opts.Now().Add(expiry),
		// Foreground-class prefetches are refreshes of entries clients are
		// demonstrably using; hits on them report as refresh-hit.
		Refreshed: class == sched.ClassForeground,
	})

	// Chain continuation: the depth ceiling moved into the policy layer —
	// fan-out candidates at depth+1 are Keep=false (ReasonDepth) beyond the
	// governor-scaled effective chain depth, replacing the old
	// `depth < effectiveChainDepth()` gate here, and each pruned tail is
	// counted instead of silently skipped.
	if !p.opts.DisableChaining {
		p.learn(u, s, req, bresp, depth+1, false)
	}
}

// adoptFlight is the prefetch worker's path when a foreground fetch already
// owns the key's flight: instead of a second origin round trip, the worker
// attaches a reader (pinning the capture against release), drains alongside
// the clients, and Puts the finished capture under the claim this task
// holds. On any shortfall — flight error, non-200, over-cap body — the claim
// is released and the cache stays untouched.
func (p *Proxy) adoptFlight(fl *flight, s *sig.Signature, req *httpmsg.Request, key, scope string, expiry time.Duration, class sched.Class) {
	rd, rerr := fl.sp.ReaderAt(0)
	if rerr != nil {
		// The flight already finished and released its spool; the next
		// request for the key will simply re-issue the prefetch.
		p.store.CancelIssue(scope, key)
		return
	}
	select {
	case <-fl.ready:
	case <-time.After(time.Duration(p.res.PrefetchTimeout)):
		// The owner never published headers (wedged origin); give up the
		// claim rather than pin a worker on someone else's fetch.
		rd.Close()
		p.store.CancelIssue(scope, key)
		return
	}
	// Drain our reader as the body streams: it keeps the pump unblocked (a
	// parked reader at offset 0 would wedge over-cap backpressure) and
	// returns exactly when the writer closes.
	io.Copy(io.Discard, rd)
	body, captured := fl.sp.Bytes()
	rd.Close()
	if fl.err != nil || fl.status != http.StatusOK || !captured {
		p.store.CancelIssue(scope, key)
		return
	}
	p.stats.CountPrefetch(s.ID, 0) // zero-byte: the foreground fetch paid for it
	p.recordSigSuccess(s.ID)
	p.mu.Lock()
	if p.samples == nil {
		p.samples = map[string]*httpmsg.Request{}
	}
	p.samples[s.ID] = req.Clone()
	p.mu.Unlock()
	p.store.Put(scope, key, &cache.Entry{
		Resp:      &httpmsg.Response{Status: fl.status, Header: fl.header, Body: body},
		Req:       req.Clone(),
		SigID:     s.ID,
		Expires:   p.opts.Now().Add(expiry),
		Refreshed: class == sched.ClassForeground,
	})
}
