package proxy

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"appx/internal/cache"
	"appx/internal/obs"
)

// Hedged peer reads: when the first peek of a shared-tier peer fill runs
// slower than an adaptive delay — the primary peer's observed p90 fill
// latency once enough samples exist — one hedge launches to the next ring
// successor and the first entry wins, the shared cancel reaping the loser.
// Hedging is the cheapest tail-latency tool the cluster has and also the
// easiest way to melt an overloaded fleet, so every hedge is triple-gated:
// by the request's remaining budget (a hedge that cannot finish in time is
// pure waste), by a cluster-wide launch-rate cap, and by the governor (a
// shedding proxy stops hedging before it stops serving).

const (
	// defaultHedgeDelay is the static hedging delay used until a peer has
	// hedgeMinSamples observed fills.
	defaultHedgeDelay = 30 * time.Millisecond
	// defaultHedgeRate is the default cluster-wide hedge launches/second cap.
	defaultHedgeRate = 64.0
	// hedgeMinSamples is how many observed fills a peer needs before its p90
	// replaces the static delay.
	hedgeMinSamples = 16
	// hedgeDelayFloor bounds adaptive delays from below: loopback p90s are
	// microseconds, and hedging that hot would double every fill's traffic.
	hedgeDelayFloor = 5 * time.Millisecond
	// fillAttemptTimeout bounds one peek attempt when no budget does.
	fillAttemptTimeout = 2 * time.Second
)

// hedgeState is the cluster-wide hedging policy: the delay model (static +
// per-peer adaptive), the launch-rate token bucket, and the counters.
type hedgeState struct {
	delay    time.Duration // static fallback delay
	disabled bool

	// Launch-rate token bucket. Refill runs on the wall clock, not the
	// proxy's injectable one: hedge pacing is a real-time resource control
	// and must not freeze with a frozen test clock.
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time

	// perPeer histograms drive the adaptive delay; all aggregates every
	// peek for the fleet-wide fill p99 the chaos harness compares.
	perPeer map[string]*obs.Histogram
	all     *obs.Histogram

	launched   atomic.Int64
	wins       atomic.Int64
	losses     atomic.Int64
	suppressed atomic.Int64
}

// newHedgeState builds the hedging policy and registers its fill-latency
// histograms. Called exactly once per proxy (from initCluster): the registry
// panics on duplicate series names.
func newHedgeState(opts Options, reg *obs.Registry, peers []string) *hedgeState {
	h := &hedgeState{
		delay:    opts.HedgeDelay,
		disabled: opts.DisableHedging,
		rate:     opts.HedgeRateCap,
	}
	if h.delay <= 0 {
		h.delay = defaultHedgeDelay
	}
	if h.rate <= 0 {
		h.rate = defaultHedgeRate
	}
	h.burst = h.rate
	if h.burst < 1 {
		h.burst = 1
	}
	h.tokens = h.burst
	h.last = time.Now()
	h.all = reg.Histogram("appx_cluster_fill_latency", "Peer-fill peek latency.", nil)
	h.perPeer = make(map[string]*obs.Histogram, len(peers))
	for _, peer := range peers {
		h.perPeer[peer] = reg.Histogram(`appx_cluster_fill_latency_peer{peer="`+peer+`"}`,
			"Per-peer peer-fill peek latency.", nil)
	}
	return h
}

// delayFor returns the hedging delay against primary peer addr: its observed
// p90 (floored) once enough samples exist, the static delay until then.
func (h *hedgeState) delayFor(addr string) time.Duration {
	if hist := h.perPeer[addr]; hist != nil && hist.Count() >= hedgeMinSamples {
		if d := hist.Quantile(0.90); d > 0 {
			if d < hedgeDelayFloor {
				return hedgeDelayFloor
			}
			return d
		}
	}
	return h.delay
}

// allow spends one hedge token; refill is continuous at rate/second.
func (h *hedgeState) allow() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	h.tokens += now.Sub(h.last).Seconds() * h.rate
	if h.tokens > h.burst {
		h.tokens = h.burst
	}
	h.last = now
	if h.tokens < 1 {
		return false
	}
	h.tokens--
	return true
}

// observe folds one completed peek's latency into the delay model.
func (h *hedgeState) observe(addr string, d time.Duration) {
	h.all.Observe(d)
	if hist := h.perPeer[addr]; hist != nil {
		hist.Observe(d)
	}
}

// peekResult is one peek attempt's outcome; entry is nil on miss or error.
type peekResult struct {
	addr  string
	entry *cache.Entry
	hedge bool
}

// peekAttempt runs one peek against addr with a budget-bounded per-attempt
// timeout, feeding the peer's breaker and the fill-latency histograms.
func (p *Proxy) peekAttempt(ctx context.Context, addr, key string, bgt reqBudget, hedge bool, out chan<- peekResult) {
	st := p.cluster
	actx, cancel := bgt.bound(ctx, p.opts.Now(), fillAttemptTimeout)
	defer cancel()
	start := time.Now() // real time: these latencies drive real hedge timers
	pe, ok, err := st.c.PeekEntry(actx, addr, key)
	if err != nil {
		// A loser canceled by the race's shared context is not a peer
		// failure; only genuine errors feed the breaker and error counter.
		if ctx.Err() == nil {
			st.fillErrors.Add(1)
			st.c.ReportForward(addr, false)
		}
		out <- peekResult{addr: addr, hedge: hedge}
		return
	}
	st.hedge.observe(addr, time.Since(start))
	st.c.ReportForward(addr, true)
	var e *cache.Entry
	if ok {
		e = p.entryFromPeer(pe)
	}
	out <- peekResult{addr: addr, entry: e, hedge: hedge}
}

// hedgedPeek races peeks across ready peers for key. Launch policy: peers[0]
// immediately; if it is still outstanding past the adaptive delay, one hedge
// to the next peer (budget-, rate-, and governor-gated); remaining peers
// launch sequentially only once every outstanding attempt has come back
// empty. Returns the first entry found, or nil.
func (p *Proxy) hedgedPeek(ctx context.Context, peers []string, key string, bgt reqBudget) *cache.Entry {
	h := p.cluster.hedge
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // reaps any attempt still in flight when a winner returns
	results := make(chan peekResult, len(peers))
	next, outstanding := 0, 0
	launch := func(hedge bool) {
		go p.peekAttempt(ctx, peers[next], key, bgt, hedge, results)
		next++
		outstanding++
	}
	launch(false)

	var hedgeC <-chan time.Time
	if !h.disabled && next < len(peers) {
		d := h.delayFor(peers[0])
		// A hedge that cannot finish inside the budget is wasted traffic.
		if !bgt.active() || bgt.remaining(p.opts.Now()) > d {
			t := time.NewTimer(d)
			defer t.Stop()
			hedgeC = t.C
		}
	}

	hedged := false
	for outstanding > 0 {
		select {
		case r := <-results:
			outstanding--
			if r.entry != nil {
				if hedged {
					if r.hedge {
						h.wins.Add(1)
					} else {
						h.losses.Add(1)
					}
				}
				return r.entry
			}
			// Sequential walk resumes only when the race is empty; the hedge
			// already covers the "one extra attempt in flight" case.
			if outstanding == 0 && next < len(peers) {
				launch(false)
			}
		case <-hedgeC:
			hedgeC = nil
			if next >= len(peers) {
				continue
			}
			if p.gov.Shedding() || !h.allow() {
				h.suppressed.Add(1)
				continue
			}
			h.launched.Add(1)
			hedged = true
			launch(true)
		case <-ctx.Done():
			return nil
		}
	}
	return nil
}

// FillLatencyQuantile reports the q-quantile of observed peer-fill peek
// latencies (0 when cluster mode is off or nothing was observed). The chaos
// harness uses it to compare hedged vs unhedged fill tails.
func (p *Proxy) FillLatencyQuantile(q float64) time.Duration {
	if p.cluster == nil || p.cluster.hedge == nil {
		return 0
	}
	return p.cluster.hedge.all.Quantile(q)
}
