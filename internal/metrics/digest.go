package metrics

import (
	"math"
	"sort"
	"time"
)

// Digest is a sorted summary of a latency sample. Building one sorts a copy
// of the input exactly once; every quantile, CDF, or mean read after that is
// O(1) or O(n) without re-sorting — unlike the free functions in this
// package, which re-sort per call and survive only as deprecated wrappers.
//
// The quantile definition is pinned: Quantile(p) is the nearest-rank value
// at index ceil(p·n)-1 of the ascending sample, with p <= 0 mapping to the
// minimum and p >= 1 to the maximum. (The free functions historically used
// int(p·n+0.5)-1, which at small n disagrees with nearest-rank — e.g. the
// median of two samples picked the first rather than the conventional
// lower-median consistently across p; the Digest definition is the one the
// evaluation figures now report.)
type Digest struct {
	sorted []time.Duration
	sum    time.Duration
}

// NewDigest copies and sorts the sample. The input slice is not retained.
func NewDigest(ds []time.Duration) *Digest {
	d := &Digest{sorted: append([]time.Duration(nil), ds...)}
	sort.Slice(d.sorted, func(i, j int) bool { return d.sorted[i] < d.sorted[j] })
	for _, v := range d.sorted {
		d.sum += v
	}
	return d
}

// Count reports the sample size.
func (d *Digest) Count() int { return len(d.sorted) }

// Min returns the smallest sample, 0 when empty.
func (d *Digest) Min() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[0]
}

// Max returns the largest sample, 0 when empty.
func (d *Digest) Max() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[len(d.sorted)-1]
}

// Mean returns the arithmetic mean, 0 when empty.
func (d *Digest) Mean() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sum / time.Duration(len(d.sorted))
}

// rankIndex maps a probability to the pinned nearest-rank index ceil(p·n)-1.
func (d *Digest) rankIndex(p float64) int {
	n := len(d.sorted)
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Quantile returns the p-quantile by the pinned nearest-rank definition;
// 0 when the digest is empty.
func (d *Digest) Quantile(p float64) time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return d.sorted[0]
	}
	if p >= 1 {
		return d.sorted[len(d.sorted)-1]
	}
	return d.sorted[d.rankIndex(p)]
}

// Median is Quantile(0.5).
func (d *Digest) Median() time.Duration { return d.Quantile(0.5) }

// CDF summarizes the distribution at n evenly spaced probabilities ending at
// 1.0, sorted by latency. Nil when the digest is empty or n <= 0.
func (d *Digest) CDF(n int) []CDFPoint {
	if len(d.sorted) == 0 || n <= 0 {
		return nil
	}
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		p := float64(i) / float64(n)
		out = append(out, CDFPoint{Latency: d.Quantile(p), Prob: p})
	}
	return out
}
