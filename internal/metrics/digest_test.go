package metrics

import (
	"testing"
	"time"
)

// The pinned nearest-rank definition at small n — the cases where the old
// int(p·n+0.5)-1 rounding was inconsistent.
func TestDigestQuantileSmallN(t *testing.T) {
	cases := []struct {
		name   string
		sample []time.Duration
		p      float64
		want   time.Duration
	}{
		// n=1: every quantile is the single sample.
		{"n1 p0", []time.Duration{ms(7)}, 0, ms(7)},
		{"n1 p50", []time.Duration{ms(7)}, 0.5, ms(7)},
		{"n1 p90", []time.Duration{ms(7)}, 0.9, ms(7)},
		{"n1 p100", []time.Duration{ms(7)}, 1, ms(7)},

		// n=2: ceil(p·2)-1 → p<=0.5 picks the lower, p>0.5 the upper.
		{"n2 p25", []time.Duration{ms(10), ms(20)}, 0.25, ms(10)},
		{"n2 p50", []time.Duration{ms(10), ms(20)}, 0.5, ms(10)},
		{"n2 p51", []time.Duration{ms(10), ms(20)}, 0.51, ms(20)},
		{"n2 p90", []time.Duration{ms(10), ms(20)}, 0.9, ms(20)},
		{"n2 p100", []time.Duration{ms(10), ms(20)}, 1, ms(20)},

		// n=3: thirds are the rank boundaries.
		{"n3 p33", []time.Duration{ms(1), ms(2), ms(100)}, 1.0 / 3, ms(1)},
		{"n3 p34", []time.Duration{ms(1), ms(2), ms(100)}, 0.34, ms(2)},
		{"n3 p50", []time.Duration{ms(1), ms(2), ms(100)}, 0.5, ms(2)},
		{"n3 p66", []time.Duration{ms(1), ms(2), ms(100)}, 2.0 / 3, ms(2)},
		{"n3 p67", []time.Duration{ms(1), ms(2), ms(100)}, 0.67, ms(100)},
		{"n3 p90", []time.Duration{ms(1), ms(2), ms(100)}, 0.9, ms(100)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDigest(tc.sample)
			if got := d.Quantile(tc.p); got != tc.want {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
			}
			// The deprecated wrapper must agree with the pinned definition.
			if got := Percentile(tc.sample, tc.p); got != tc.want {
				t.Fatalf("Percentile(%v) = %v, want %v (wrapper diverged)", tc.p, got, tc.want)
			}
		})
	}
}

func TestDigestEmpty(t *testing.T) {
	d := NewDigest(nil)
	if d.Count() != 0 || d.Mean() != 0 || d.Median() != 0 ||
		d.Quantile(0.9) != 0 || d.Min() != 0 || d.Max() != 0 || d.CDF(4) != nil {
		t.Fatal("empty digest not all-zero")
	}
}

func TestDigestStats(t *testing.T) {
	// Unsorted input; the digest sorts once.
	d := NewDigest([]time.Duration{ms(30), ms(10), ms(20), ms(40)})
	if d.Count() != 4 {
		t.Fatalf("count = %d", d.Count())
	}
	if d.Min() != ms(10) || d.Max() != ms(40) {
		t.Fatalf("min/max = %v/%v", d.Min(), d.Max())
	}
	if d.Mean() != ms(25) {
		t.Fatalf("mean = %v", d.Mean())
	}
	if d.Median() != ms(20) { // lower median at even n
		t.Fatalf("median = %v", d.Median())
	}
}

func TestDigestQuantileMonotone(t *testing.T) {
	d := NewDigest([]time.Duration{ms(5), ms(1), ms(9), ms(3), ms(7), ms(2)})
	prev := time.Duration(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		v := d.Quantile(p)
		if v < prev {
			t.Fatalf("quantile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestDigestCDF(t *testing.T) {
	d := NewDigest([]time.Duration{ms(10), ms(20), ms(30), ms(40)})
	pts := d.CDF(4)
	if len(pts) != 4 {
		t.Fatalf("cdf len = %d", len(pts))
	}
	if pts[3].Latency != ms(40) || pts[3].Prob != 1.0 {
		t.Fatalf("cdf end = %+v", pts[3])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency < pts[i-1].Latency || pts[i].Prob <= pts[i-1].Prob {
			t.Fatalf("cdf not monotone at %d: %+v", i, pts)
		}
	}
}

// NewDigest must not retain or mutate the caller's slice.
func TestDigestDoesNotMutateInput(t *testing.T) {
	in := []time.Duration{ms(3), ms(1), ms(2)}
	_ = NewDigest(in)
	if in[0] != ms(3) || in[1] != ms(1) || in[2] != ms(2) {
		t.Fatalf("input mutated: %v", in)
	}
}
