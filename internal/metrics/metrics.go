// Package metrics provides the latency statistics the evaluation reports:
// means, medians, percentiles (Figure 15 uses the 90th), and CDFs
// (Figure 16).
package metrics

import (
	"sort"
	"time"
)

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Percentile returns the p-quantile (0 < p <= 1) using nearest-rank on a
// sorted copy; 0 for empty input.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Median is the 50th percentile.
func Median(ds []time.Duration) time.Duration { return Percentile(ds, 0.5) }

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Latency time.Duration
	Prob    float64
}

// CDF summarizes the sample distribution at n evenly spaced probabilities
// (plus the maximum), sorted by latency.
func CDF(ds []time.Duration, n int) []CDFPoint {
	if len(ds) == 0 || n <= 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		p := float64(i) / float64(n)
		idx := int(p*float64(len(sorted))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out = append(out, CDFPoint{Latency: sorted[idx], Prob: p})
	}
	return out
}

// Reduction returns the fractional latency reduction from orig to accel
// (0.47 = 47 % lower); 0 when orig is 0.
func Reduction(orig, accel time.Duration) float64 {
	if orig <= 0 {
		return 0
	}
	r := 1 - float64(accel)/float64(orig)
	if r < 0 {
		return r // regressions are reported as negative reductions
	}
	return r
}
