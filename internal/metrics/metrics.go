// Package metrics provides the latency statistics the evaluation reports:
// means, medians, percentiles (Figure 15 uses the 90th), and CDFs
// (Figure 16).
//
// The Digest type (digest.go) is the current API: it sorts the sample once
// and serves every quantile and CDF read from that one sort. The package's
// original free functions remain as thin wrappers, each re-sorting per call;
// new code should build a Digest.
package metrics

import "time"

// Mean returns the arithmetic mean, 0 for empty input.
//
// Deprecated: use NewDigest(ds).Mean(); a Digest amortizes the pass over
// every statistic read from the same sample.
func Mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Percentile returns the p-quantile (0 < p <= 1) by nearest rank; 0 for
// empty input. The quantile definition is pinned by Digest.Quantile:
// index ceil(p·n)-1 of the ascending sample. (Earlier versions rounded with
// int(p·n+0.5)-1, which at small n disagreed with nearest rank — the median
// of two samples came out as the first element only by accident of the
// rounding, and some p produced indices inconsistent with the percentile
// definition used in the figures.)
//
// Deprecated: use NewDigest(ds).Quantile(p) — one sort for all reads.
func Percentile(ds []time.Duration, p float64) time.Duration {
	return NewDigest(ds).Quantile(p)
}

// Median is the 50th percentile.
//
// Deprecated: use NewDigest(ds).Median().
func Median(ds []time.Duration) time.Duration { return NewDigest(ds).Median() }

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Latency time.Duration
	Prob    float64
}

// CDF summarizes the sample distribution at n evenly spaced probabilities
// (plus the maximum), sorted by latency.
//
// Deprecated: use NewDigest(ds).CDF(n).
func CDF(ds []time.Duration, n int) []CDFPoint { return NewDigest(ds).CDF(n) }

// Reduction returns the fractional latency reduction from orig to accel
// (0.47 = 47 % lower); 0 when orig is 0.
func Reduction(orig, accel time.Duration) float64 {
	if orig <= 0 {
		return 0
	}
	r := 1 - float64(accel)/float64(orig)
	if r < 0 {
		return r // regressions are reported as negative reductions
	}
	return r
}
