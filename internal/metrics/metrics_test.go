package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]time.Duration{ms(100), ms(200), ms(300)}); got != ms(200) {
		t.Fatalf("Mean = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{ms(10), ms(20), ms(30), ms(40), ms(50), ms(60), ms(70), ms(80), ms(90), ms(100)}
	if got := Percentile(ds, 0.9); got != ms(90) {
		t.Fatalf("p90 = %v", got)
	}
	if got := Percentile(ds, 0.5); got != ms(50) {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(ds, 1); got != ms(100) {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(ds, 0); got != ms(10) {
		t.Fatalf("p0 = %v", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile != 0")
	}
	// Input order must not matter.
	shuffled := []time.Duration{ms(70), ms(10), ms(100), ms(40), ms(20), ms(90), ms(30), ms(60), ms(80), ms(50)}
	if Percentile(shuffled, 0.9) != ms(90) {
		t.Fatal("percentile depends on input order")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]time.Duration{ms(1), ms(2), ms(100)}); got != ms(2) {
		t.Fatalf("Median = %v", got)
	}
}

func TestCDF(t *testing.T) {
	ds := []time.Duration{ms(10), ms(20), ms(30), ms(40)}
	pts := CDF(ds, 4)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[3].Latency != ms(40) || pts[3].Prob != 1 {
		t.Fatalf("last point = %+v", pts[3])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency < pts[i-1].Latency || pts[i].Prob <= pts[i-1].Prob {
			t.Fatalf("CDF not monotone: %+v", pts)
		}
	}
	if CDF(nil, 4) != nil || CDF(ds, 0) != nil {
		t.Fatal("degenerate CDF not nil")
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(ms(100), ms(47)); got < 0.52 || got > 0.54 {
		t.Fatalf("Reduction = %v", got)
	}
	if got := Reduction(ms(100), ms(150)); got >= 0 {
		t.Fatalf("regression not negative: %v", got)
	}
	if Reduction(0, ms(10)) != 0 {
		t.Fatal("zero orig")
	}
}

// Property: Percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]time.Duration, len(raw))
		for i, r := range raw {
			ds[i] = time.Duration(r) * time.Microsecond
		}
		pa, pb := float64(a%101)/100, float64(b%101)/100
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(ds, pa), Percentile(ds, pb)
		lo, hi := Percentile(ds, 0), Percentile(ds, 1)
		return va <= vb && lo <= va && vb <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
