//go:build !race

package exp

// raceEnabled reports that the race detector is active.
const raceEnabled = false
