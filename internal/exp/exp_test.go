package exp

import (
	"strings"
	"testing"
	"time"
)

// tiny returns the smallest meaningful parameter set for CI.
func tiny() Params {
	return Params{
		Scale:         0.1,
		Runs:          2,
		Users:         3,
		TraceDuration: 60 * time.Second,
		ThinkSpeed:    8,
		FuzzEvents:    80,
		Seed:          7,
	}
}

func TestTable1(t *testing.T) {
	out := RunTable1().Render()
	for _, want := range []string{"Wish", "DoorDash", "Purple Ocean", "Postmates", "Shopping"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	out := RunTable2().Render()
	for _, want := range []string{"api.wish.example", "165 ms", "230 ms", "5 ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := RunTable3(tiny())
	if err != nil {
		t.Fatalf("RunTable3: %v", err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// The paper's headline Table-3 shape: static analysis identifies at
		// least as many unique and prefetchable signatures as either
		// dynamic baseline, and at least as long a chain.
		if r.SigsTotal < r.FuzzSigs || r.SigsTotal < r.UserSigs {
			t.Errorf("%s: APPx %d sigs < dynamic (%d fuzz / %d user)", r.App, r.SigsTotal, r.FuzzSigs, r.UserSigs)
		}
		if r.SigsPrefetchable < r.FuzzPrefetchable || r.SigsPrefetchable < r.UserPrefetchable {
			t.Errorf("%s: prefetchable shape violated: %+v", r.App, r)
		}
		if r.MaxChain < r.FuzzMaxChain || r.MaxChain < r.UserMaxChain {
			t.Errorf("%s: chain shape violated: %+v", r.App, r)
		}
		if r.SigsTotal == 0 || r.Deps == 0 {
			t.Errorf("%s: empty analysis: %+v", r.App, r)
		}
	}
	_ = res.Render()
}

func TestCaseStudies(t *testing.T) {
	f11, err := RunFig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(f11.Chain) < 4 {
		t.Fatalf("Fig 11 chain = %v", f11.Chain)
	}
	out := f11.Render()
	if !strings.Contains(out, "/v2/stores") {
		t.Errorf("Fig 11 missing store list:\n%s", out)
	}

	f12, err := RunFig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.FanOut) < 2 {
		t.Fatalf("Fig 12 fan-out = %v", f12.FanOut)
	}
	_ = f12.Render()
}

func TestAblationShape(t *testing.T) {
	res, err := RunAblation()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]map[string]AblationRow{}
	for _, r := range res.Rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]AblationRow{}
		}
		byApp[r.App][r.Variant] = r
	}
	for app, variants := range byApp {
		full, base := variants["full"], variants["baseline"]
		if full.Deps <= base.Deps {
			t.Errorf("%s: extensions add no dependencies (full %d, baseline %d)", app, full.Deps, base.Deps)
		}
		for _, v := range []string{"no-intents", "no-rx", "no-alias", "baseline"} {
			if variants[v].Deps > full.Deps {
				t.Errorf("%s/%s: ablated variant found MORE deps than full", app, v)
			}
		}
	}
	_ = res.Render()
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("wire-lab experiment")
	}
	if raceEnabled {
		t.Skip("timing-sensitive emulation distorted under -race")
	}
	res, err := RunFig13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Reduction <= 0 {
			t.Errorf("%s: no main-interaction speedup: orig=%v appx=%v", r.App, r.OrigTotal, r.AppxTotal)
		}
		if r.AppxNetwork >= r.OrigNetwork {
			t.Errorf("%s: network delay not reduced: %v -> %v", r.App, r.OrigNetwork, r.AppxNetwork)
		}
	}
	t.Log("\n" + res.Render())
}

func TestFig17Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("wire-lab experiment")
	}
	if raceEnabled {
		t.Skip("timing-sensitive emulation distorted under -race")
	}
	res, err := RunFig17(tiny(), []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The knob's shape: data usage grows with probability, median latency
	// shrinks (Figure 17).
	if res.Rows[2].DataUsage < res.Rows[0].DataUsage {
		t.Errorf("data usage not increasing with probability: %+v", res.Rows)
	}
	if res.Rows[2].Median > res.Rows[0].Median {
		t.Errorf("latency not decreasing with probability: p0=%v p1=%v",
			res.Rows[0].Median, res.Rows[2].Median)
	}
	t.Log("\n" + res.Render())
}

func TestFig15And16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("wire-lab experiment")
	}
	if raceEnabled {
		t.Skip("timing-sensitive emulation distorted under -race")
	}
	p := tiny()
	rtts := []time.Duration{100 * time.Millisecond}
	sweep, err := RunFig15(p, rtts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Rows) != 5 {
		t.Fatalf("rows = %d", len(sweep.Rows))
	}
	cdf, err := RunFig16(p, sweep, rtts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdf.Rows) != 5 {
		t.Fatalf("cdf rows = %d", len(cdf.Rows))
	}
	improved := 0
	for _, r := range cdf.Rows {
		if r.MedianReduction > 0 {
			improved++
		}
		if r.DataUsage < 1 {
			t.Errorf("%s: data usage below baseline: %.2f", r.App, r.DataUsage)
		}
	}
	// At tiny parameters individual apps are noisy; the aggregate shape —
	// most apps' medians improve — must hold.
	if improved < 3 {
		t.Errorf("only %d/5 apps improved median latency", improved)
	}
	t.Log("\n" + sweep.Render())
	t.Log("\n" + cdf.Render())
}

func TestMechAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wire-lab experiment")
	}
	if raceEnabled {
		t.Skip("timing-sensitive emulation distorted under -race")
	}
	p := tiny()
	res, err := RunMechAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MechRow{}
	for _, r := range res.Rows {
		byName[r.Variant] = r
	}
	full, noChain, none := byName["full"], byName["no-chain"], byName["no-prefetch"]
	// Full prefetching beats no prefetching; chaining contributes on top of
	// direct prefetching (the menu hop only warms through the chain).
	if full.StoreOpen >= none.StoreOpen {
		t.Errorf("full (%v) not faster than no-prefetch (%v)", full.StoreOpen, none.StoreOpen)
	}
	if full.StoreOpen > noChain.StoreOpen {
		t.Errorf("full (%v) slower than no-chain (%v)", full.StoreOpen, noChain.StoreOpen)
	}
	t.Log("\n" + res.Render())
}

func TestFaultSweepShape(t *testing.T) {
	res, err := RunFaultSweep(7, []float64{0, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	clean, faulted := res.Rows[0], res.Rows[1]
	// Graceful degradation: the healthy host's hit ratio is identical with
	// and without the fault, and the sick host's load is shed, not retried
	// forever.
	if clean.HealthyHitRatio != faulted.HealthyHitRatio || clean.HealthyHitRatio == 0 {
		t.Errorf("healthy hit ratio changed under fault: %.2f -> %.2f",
			clean.HealthyHitRatio, faulted.HealthyHitRatio)
	}
	if faulted.Breaker != "open" {
		t.Errorf("breaker = %q at 90%% fault, want open", faulted.Breaker)
	}
	if faulted.SickSuppressed == 0 {
		t.Error("no prefetches shed at 90% fault")
	}
	if clean.SickErrors != 0 || clean.SickSuppressed != 0 {
		t.Errorf("fault-free run saw errors=%d shed=%d", clean.SickErrors, clean.SickSuppressed)
	}
	t.Log("\n" + res.Render())
}

func TestCacheSweepShape(t *testing.T) {
	res, err := RunCacheSweep(7, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	one, four, sixteen := res.Rows[0], res.Rows[1], res.Rows[2]
	// A single user gains nothing from sharing: their catalog is fetched
	// once either way.
	if one.SavedPct > 0.05 {
		t.Errorf("1 user saved %.0f%%, want ~0", one.SavedPct*100)
	}
	// Savings and hit ratio grow with users: each added user consumes the
	// catalog from the shared tier instead of refetching it.
	if !(four.SavedPct > one.SavedPct && sixteen.SavedPct > four.SavedPct) {
		t.Errorf("origin savings not rising with users: %.2f, %.2f, %.2f",
			one.SavedPct, four.SavedPct, sixteen.SavedPct)
	}
	if sixteen.SavedPct < 0.5 {
		t.Errorf("16 users saved only %.0f%% origin bytes", sixteen.SavedPct*100)
	}
	if sixteen.HitRatio < four.HitRatio || sixteen.HitRatio <= 0 {
		t.Errorf("hit ratio not rising with users: %.2f -> %.2f", four.HitRatio, sixteen.HitRatio)
	}
	// Every hit in this workload is a shared-tier hit.
	for _, r := range res.Rows {
		if r.SharedHitRatio < 0.99 {
			t.Errorf("%d users: shared hit ratio %.2f, want ~1", r.Users, r.SharedHitRatio)
		}
	}
	t.Log("\n" + res.Render())
}
