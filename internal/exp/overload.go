package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"appx/internal/config"
	"appx/internal/httpmsg"
	"appx/internal/proxy"
	"appx/internal/proxy/sched"
	"appx/internal/sig"
)

// OverloadRow is one offered-load point of the overload sweep.
type OverloadRow struct {
	// Load is the offered-load multiplier over the base client count.
	Load float64
	// Clients is the concurrent client count at this point.
	Clients int
	// Requests counts foreground client requests attempted; Shed counts the
	// ones refused with an admission 503; ServerErrs counts other 5xx.
	Requests, Shed, ServerErrs int
	// P50/P95/P99 are client-observed foreground latencies.
	P50, P95, P99 time.Duration
	// HitRatio is the proxy-wide prefetch hit ratio at this load.
	HitRatio float64
	// ShallowDropped / DeepDropped count prefetch tasks shed by the
	// scheduler (class queue shares plus enqueue deadlines) per class.
	ShallowDropped, DeepDropped int64
	// Suppressed counts prefetches the governor declined to issue.
	Suppressed int64
	// Level and Mode are the governor's final state at this load.
	Level float64
	Mode  string
}

// OverloadSweep is the overload experiment: a fixed-capacity proxy swept
// past saturation by a growing closed-loop client population. The paper's §6
// never overloads the proxy itself; this guards the property its deployment
// story assumes — speculative prefetching must collapse before foreground
// latency does.
type OverloadSweep struct {
	Seed        int64
	BaseClients int
	Rows        []OverloadRow
}

// DefaultOverloadLoads are the sweep multipliers: 1× is uncontended, the
// top point drives admission shedding.
func DefaultOverloadLoads() []float64 {
	return []float64{1, 2, 4, 8}
}

const (
	overloadBaseClients = 6                      // client count at 1×
	overloadIters       = 60                     // foreground requests per client
	overloadSvc         = 3 * time.Millisecond   // origin service time
	overloadThink       = 6 * time.Millisecond   // client think time
	overloadFanOut      = 2                      // ids per list, details per item
	overloadListEvery   = 4                      // list once per this many iterations
	overloadGate        = 16                     // admission slots
	overloadWait        = 5 * time.Millisecond   // bounded admission wait
	overloadQueue       = 64                     // prefetch queue bound
	overloadWorkers     = 4                      // prefetch pool size
	overloadDeadline    = 100 * time.Millisecond // enqueue deadline
	overloadGovInterval = 50 * time.Millisecond  // AIMD adjustment period
)

// overloadGraph builds the one-host chain list→item→detail: items are
// shallow prefetches spawned by live list traffic, details are deep ones
// spawned by prefetched item responses — and are never client-requested, so
// they are the purely speculative work the proxy must shed first.
func overloadGraph() *sig.Graph {
	g := sig.NewGraph("overload")
	list := &sig.Signature{ID: "ov:list#0", Method: "GET", URI: sig.Literal("app.example/list")}
	item := &sig.Signature{ID: "ov:item#0", Method: "GET", URI: sig.Literal("app.example/item"),
		Query: []sig.Field{{Key: "id", Value: sig.DepValue(list.ID, "ids[*]")}}}
	detail := &sig.Signature{ID: "ov:detail#0", Method: "GET", URI: sig.Literal("app.example/detail"),
		Query: []sig.Field{{Key: "id", Value: sig.DepValue(item.ID, "did[*]")}}}
	g.Add(list)
	g.Add(item)
	g.Add(detail)
	g.AddDep(sig.Dependency{PredID: list.ID, SuccID: item.ID, RespPath: "ids[*]",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})
	g.AddDep(sig.Dependency{PredID: item.ID, SuccID: detail.ID, RespPath: "did[*]",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})
	return g
}

// RunOverload sweeps offered load past the proxy's prefetch capacity and
// reports foreground latency quantiles, shed rates, and per-class scheduler
// drops per point. Unlike the other sweeps this one runs on the real clock:
// admission waits, enqueue deadlines, and the AIMD governor are all
// time-driven, which is exactly the machinery under test.
func RunOverload(seed int64, loads []float64) (*OverloadSweep, error) {
	if seed == 0 {
		seed = 42
	}
	if len(loads) == 0 {
		loads = DefaultOverloadLoads()
	}
	out := &OverloadSweep{Seed: seed, BaseClients: overloadBaseClients}
	for _, load := range loads {
		row, err := runOverloadPoint(load)
		if err != nil {
			return nil, fmt.Errorf("overload@%gx: %w", load, err)
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

// runOverloadPoint drives one load multiplier against a fresh proxy.
func runOverloadPoint(load float64) (*OverloadRow, error) {
	g := overloadGraph()
	cfg := config.Default(g)
	cfg.Resilience = &config.Resilience{RetryAttempts: 1}
	cfg.Overload = &config.Overload{
		MaxConcurrentRequests: overloadGate,
		AdmissionWait:         config.Duration(overloadWait),
		GovernorInterval:      config.Duration(overloadGovInterval),
		QueueDeadline:         config.Duration(overloadDeadline),
		MaxQueue:              overloadQueue,
		DeepDepth:             1,
	}

	// The origin burns a fixed service time per request and hands out
	// globally fresh ids, so every list round spawns brand-new prefetch work
	// instead of deduplicating against the last round's.
	var idSeq atomic.Int64
	up := proxy.UpstreamFunc(func(_ context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		time.Sleep(overloadSvc)
		switch r.Path {
		case "/list":
			ids := make([]string, overloadFanOut)
			for i := range ids {
				ids[i] = fmt.Sprintf("i%d", idSeq.Add(1))
			}
			body, _ := json.Marshal(map[string]any{"ids": ids})
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   body}, nil
		case "/item":
			id := queryValue(r, "id")
			did := make([]string, overloadFanOut)
			for i := range did {
				did[i] = fmt.Sprintf("d%s-%d", id, i)
			}
			body, _ := json.Marshal(map[string]any{"did": did})
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   body}, nil
		default:
			return &httpmsg.Response{Status: 200, Body: []byte(`{}`)}, nil
		}
	})

	px := proxy.New(proxy.Options{Graph: g, Config: cfg, Upstream: up, Workers: overloadWorkers})

	clients := int(float64(overloadBaseClients) * load)
	if clients < 1 {
		clients = 1
	}
	get := func(user, path, id string) (*httpmsg.Response, error) {
		req := &httpmsg.Request{Method: "GET", Host: "app.example", Path: path,
			Header: []httpmsg.Field{{Key: "X-Appx-User", Value: user}}}
		if id != "" {
			req.Query = []httpmsg.Field{{Key: "id", Value: id}}
		}
		return httpmsg.ServeViaHandler(px, req)
	}

	// Exemplars are per-user state: each client teaches its own item and
	// detail exemplar before measurement so the chain can materialize.
	for c := 0; c < clients; c++ {
		user := fmt.Sprintf("c%d", c)
		if _, err := get(user, "/item", fmt.Sprintf("w%d", c)); err != nil {
			return nil, err
		}
		if _, err := get(user, "/detail", fmt.Sprintf("wd%d", c)); err != nil {
			return nil, err
		}
	}

	// Closed-loop clients: mostly item views picked from the latest list
	// (hits when prefetching keeps up), a fresh list round every few
	// iterations, think time between requests.
	type clientResult struct {
		lat                  []time.Duration
		requests, shed, errs int
	}
	results := make([]clientResult, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			user := fmt.Sprintf("c%d", c)
			res := &results[c]
			var ids []string
			for i := 0; i < overloadIters; i++ {
				path, id := "/item", ""
				if i%overloadListEvery == 0 || len(ids) == 0 {
					path = "/list"
				} else {
					id = ids[i%len(ids)]
				}
				start := time.Now()
				resp, err := get(user, path, id)
				res.requests++
				if err != nil {
					res.errs++
					continue
				}
				res.lat = append(res.lat, time.Since(start))
				switch {
				case resp.Status == 503:
					res.shed++
				case resp.Status >= 500:
					res.errs++
				case path == "/list":
					var body struct {
						IDs []string `json:"ids"`
					}
					if json.Unmarshal(resp.Body, &body) == nil && len(body.IDs) > 0 {
						ids = body.IDs
					}
				}
				time.Sleep(overloadThink)
			}
		}(c)
	}
	wg.Wait()

	// Scheduler counters must be read before Close: tearing the pool down
	// discards the backlog as closed-drops and would inflate the numbers.
	sm := px.SchedMetrics()
	snap := px.Stats().Snapshot()
	row := &OverloadRow{
		Load:           load,
		Clients:        clients,
		HitRatio:       snap.HitRatio(),
		ShallowDropped: dropsOf(sm.Shallow),
		DeepDropped:    dropsOf(sm.Deep),
		Suppressed:     px.GovernorSuppressed(),
		Level:          px.OverloadLevel(),
		Mode:           px.OverloadMode(),
	}
	var all []time.Duration
	for i := range results {
		row.Requests += results[i].requests
		row.Shed += results[i].shed
		row.ServerErrs += results[i].errs
		all = append(all, results[i].lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	row.P50, row.P95, row.P99 = quantileDur(all, 0.50), quantileDur(all, 0.95), quantileDur(all, 0.99)
	px.Close()
	return row, nil
}

// dropsOf sums a class's load-shedding drops: queue-share overflow plus
// enqueue-deadline expiry (not closed-drops, which are teardown artifacts).
func dropsOf(c sched.ClassMetrics) int64 {
	return c.DroppedFull + c.DroppedExpired
}

// queryValue extracts one query field.
func queryValue(r *httpmsg.Request, key string) string {
	for _, f := range r.Query {
		if f.Key == key {
			return f.Value
		}
	}
	return ""
}

// quantileDur reports the q-quantile of an ascending latency slice.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Render formats the overload sweep.
func (o *OverloadSweep) Render() string {
	rows := make([][]string, 0, len(o.Rows))
	for _, r := range o.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%gx", r.Load),
			fmt.Sprintf("%d", r.Clients),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.Shed),
			fmt.Sprintf("%.1f", float64(r.P50.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(r.P95.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(r.P99.Microseconds())/1000),
			fmtPct(r.HitRatio),
			fmt.Sprintf("%d", r.ShallowDropped),
			fmt.Sprintf("%d", r.DeepDropped),
			fmt.Sprintf("%d", r.Suppressed),
			fmt.Sprintf("%.2f", r.Level),
			r.Mode,
		})
	}
	return fmt.Sprintf("Overload sweep (%d clients at 1x): offered load vs foreground latency and prefetch shedding\n", o.BaseClients) +
		table([]string{"load", "clients", "reqs", "shed", "p50ms", "p95ms", "p99ms", "hits", "shallow drop", "deep drop", "suppressed", "level", "mode"}, rows)
}
