package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"appx/internal/config"
	"appx/internal/httpmsg"
	"appx/internal/netem"
	"appx/internal/proxy"
	"appx/internal/sig"
)

// FaultSweepRow is one fault-rate point of the origin fault sweep.
type FaultSweepRow struct {
	// Rate is the injected connect-refusal probability on the sick host.
	Rate float64
	// HealthyHitRatio is the cache hit ratio observed on the healthy host's
	// detail signature — graceful degradation means it stays flat across
	// fault rates.
	HealthyHitRatio float64
	// SickPrefetches / SickErrors / SickSuppressed count the sick host's
	// prefetches that succeeded, failed on the injected fault, and were
	// shed by the breaker or signature backoff before reaching the wire.
	SickPrefetches, SickErrors, SickSuppressed int
	// Retries counts origin attempts beyond the first, proxy-wide.
	Retries int
	// Breaker is the sick host's final circuit state.
	Breaker string
}

// FaultSweep is the origin fault sweep: a synthetic two-host workload —
// one healthy origin, one with seeded connect-failure injection at varying
// rates — exercising the resilience stack end to end. The paper's §6 has no
// fault experiment; this guards the degradation property the deployment
// story assumes: one sick origin must not drag down prefetching for the
// rest of the fleet.
type FaultSweep struct {
	Seed int64
	Rows []FaultSweepRow
}

// DefaultFaultRates are the sweep points: the top rate is high enough for
// the circuit breaker to open and shed the remaining rounds.
func DefaultFaultRates() []float64 {
	return []float64{0, 0.1, 0.3, 0.5, 0.9}
}

// faultSweepGraph builds the two-host dependency graph: a healthy list
// endpoint fanning out into details on the healthy host and on the
// faultable one.
func faultSweepGraph() *sig.Graph {
	g := sig.NewGraph("faultsweep")
	pred := &sig.Signature{ID: "fs:list#0", Method: "GET", URI: sig.Literal("ok.example/list")}
	okSucc := &sig.Signature{ID: "fs:okitem#0", Method: "GET", URI: sig.Literal("ok.example/detail"),
		Query: []sig.Field{{Key: "id", Value: sig.DepValue(pred.ID, "ok[*]")}}}
	sickSucc := &sig.Signature{ID: "fs:sickitem#0", Method: "GET", URI: sig.Literal("sick.example/item"),
		Query: []sig.Field{{Key: "id", Value: sig.DepValue(pred.ID, "sick[*]")}}}
	g.Add(pred)
	g.Add(okSucc)
	g.Add(sickSucc)
	g.AddDep(sig.Dependency{PredID: pred.ID, SuccID: okSucc.ID, RespPath: "ok[*]",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})
	g.AddDep(sig.Dependency{PredID: pred.ID, SuccID: sickSucc.ID, RespPath: "sick[*]",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})
	return g
}

// RunFaultSweep measures graceful degradation under injected origin faults.
// Every run is fully deterministic: a frozen clock, a seeded probability
// stream, a single prefetch worker, and the netem fault injector's seeded
// draws.
func RunFaultSweep(seed int64, rates []float64) (*FaultSweep, error) {
	if seed == 0 {
		seed = 42
	}
	if len(rates) == 0 {
		rates = DefaultFaultRates()
	}
	out := &FaultSweep{Seed: seed}
	for _, rate := range rates {
		row, err := runFaultPoint(seed, rate)
		if err != nil {
			return nil, fmt.Errorf("faultsweep@%.0f%%: %w", rate*100, err)
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

const (
	faultRounds   = 15 // list rounds driven per rate point
	faultPerRound = 6  // fresh ids per host per round
)

// runFaultPoint drives one fault-rate configuration.
func runFaultPoint(seed int64, rate float64) (*FaultSweepRow, error) {
	g := faultSweepGraph()
	cfg := config.Default(g)
	cfg.Resilience = &config.Resilience{
		RetryBaseDelay: config.Duration(time.Millisecond),
		RetryMaxDelay:  config.Duration(5 * time.Millisecond),
	}

	// Installed only after the exemplar-teaching requests below, so every
	// rate point starts from the same learned state.
	var in *netem.Injector
	round := 0
	up := proxy.UpstreamFunc(func(_ context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Host == "sick.example" && in != nil && in.ConnectRefused(r.Host) {
			return nil, fmt.Errorf("dial %s: %w", r.Host, netem.ErrInjectedRefusal)
		}
		if r.Path == "/list" {
			round++
			ok := make([]string, faultPerRound)
			sick := make([]string, faultPerRound)
			for i := range ok {
				ok[i] = fmt.Sprintf("r%d-%d", round, i)
				sick[i] = fmt.Sprintf("s%d-%d", round, i)
			}
			body, _ := json.Marshal(map[string]any{"ok": ok, "sick": sick})
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   body}, nil
		}
		return &httpmsg.Response{Status: 200, Body: []byte(`{}`)}, nil
	})

	now := time.Unix(1_700_000_000, 0)
	rnd := rand.New(rand.NewSource(seed))
	px := proxy.New(proxy.Options{Graph: g, Config: cfg, Upstream: up, Workers: 1,
		Now:  func() time.Time { return now },
		Rand: rnd.Float64,
	})
	defer px.Close()

	get := func(host, path, id string) error {
		req := &httpmsg.Request{Method: "GET", Host: host, Path: path,
			Header: []httpmsg.Field{{Key: "X-Appx-User", Value: "sweep-user"}}}
		if id != "" {
			req.Query = []httpmsg.Field{{Key: "id", Value: id}}
		}
		_, err := httpmsg.ServeViaHandler(px, req)
		return err
	}
	// Teach both successor exemplars, then drive the rounds: each /list
	// fans out fresh prefetch work, and two healthy details are consumed
	// per round (hits when prefetching stayed healthy).
	if err := get("ok.example", "/detail", "seed"); err != nil {
		return nil, err
	}
	if err := get("sick.example", "/item", "seed"); err != nil {
		return nil, err
	}
	if rate > 0 {
		in = netem.NewInjector(seed)
		in.SetFault("sick.example", netem.Fault{ConnectRefuseProb: rate})
	}
	for r := 1; r <= faultRounds; r++ {
		if err := get("ok.example", "/list", ""); err != nil {
			return nil, err
		}
		px.Drain()
		for i := 0; i < 2; i++ {
			if err := get("ok.example", "/detail", fmt.Sprintf("r%d-%d", r, i)); err != nil {
				return nil, err
			}
		}
	}

	snap := px.Stats().Snapshot()
	ok := snap.PerSig["fs:okitem#0"]
	sick := snap.PerSig["fs:sickitem#0"]
	hitRatio := 0.0
	if ok.Hits+ok.Misses > 0 {
		hitRatio = float64(ok.Hits) / float64(ok.Hits+ok.Misses)
	}
	return &FaultSweepRow{
		Rate:            rate,
		HealthyHitRatio: hitRatio,
		SickPrefetches:  sick.Prefetches,
		SickErrors:      sick.PrefetchErrors,
		SickSuppressed:  sick.PrefetchSuppressed,
		Retries:         snap.Retries,
		Breaker:         px.Breakers().State("sick.example").String(),
	}, nil
}

// Render formats the fault sweep.
func (f *FaultSweep) Render() string {
	rows := make([][]string, 0, len(f.Rows))
	for _, r := range f.Rows {
		rows = append(rows, []string{
			fmtPct(r.Rate),
			fmtPct(r.HealthyHitRatio),
			fmt.Sprintf("%d", r.SickPrefetches),
			fmt.Sprintf("%d", r.SickErrors),
			fmt.Sprintf("%d", r.SickSuppressed),
			fmt.Sprintf("%d", r.Retries),
			r.Breaker,
		})
	}
	return fmt.Sprintf("Origin fault sweep (seed %d): connect-failure injection on one of two hosts\n", f.Seed) +
		table([]string{"fault", "healthy hits", "sick prefetched", "sick errors", "sick shed", "retries", "breaker"}, rows)
}
