// Package exp regenerates every table and figure of the paper's evaluation
// (§6). Each experiment is a function returning a renderable result; the
// appx-bench command and the repository's benchmarks call them.
//
// All wall-clock emulation runs at Params.Scale and results are reported
// unscaled (divided by Scale), so the numbers print in paper-comparable
// milliseconds. Absolute values will not match the paper — the substrate is
// an emulation, not the authors' testbed — but the shapes must: who wins,
// by roughly what factor, and where the trends point.
package exp

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"appx/internal/apps"
	"appx/internal/device"
	"appx/internal/interp"
	"appx/internal/lab"
	"appx/internal/trace"
)

// Params are the shared experiment knobs.
type Params struct {
	// Scale compresses emulated time (default 0.2).
	Scale float64
	// Runs is the per-app repetition count for the microbenchmarks
	// (Figures 13/14; the paper averages 10 runs — default 5).
	Runs int
	// Users sizes the user study (the paper has 30 — default 8 to keep
	// bench runs affordable; appx-bench -users 30 reproduces the full one).
	Users int
	// TraceDuration is the per-user session length (paper: 3 min).
	TraceDuration time.Duration
	// ThinkSpeed additionally compresses think times during replay (they
	// carry no latency information; default 10 on top of Scale).
	ThinkSpeed float64
	// FuzzEvents drives the Table-3 fuzzing column (the paper runs Monkey
	// for an hour at 500 ms ≈ 7200 events; default 400).
	FuzzEvents int
	// Seed makes everything reproducible.
	Seed int64
}

// Fill applies defaults.
func (p *Params) Fill() {
	if p.Scale <= 0 {
		p.Scale = 0.2
	}
	if p.Runs <= 0 {
		p.Runs = 5
	}
	if p.Users <= 0 {
		p.Users = 8
	}
	if p.TraceDuration <= 0 {
		p.TraceDuration = 3 * time.Minute
	}
	if p.ThinkSpeed <= 0 {
		p.ThinkSpeed = 10
	}
	if p.FuzzEvents <= 0 {
		p.FuzzEvents = 400
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
}

// table renders rows of cells with aligned columns.
func table(header []string, rows [][]string) string {
	all := append([][]string{header}, rows...)
	widths := make([]int, len(header))
	for _, row := range all {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// fmtMS prints a duration as paper-style milliseconds.
func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%d ms", d.Milliseconds())
}

// fmtPct prints a fraction as a percentage.
func fmtPct(f float64) string {
	return fmt.Sprintf("%.0f%%", f*100)
}

// inProcDevice builds a device whose traffic goes straight to a transport —
// used where network emulation is irrelevant (Table 3's trace collection).
func inProcDevice(a *apps.App, tr interp.Transport) (*device.Device, error) {
	return device.New(device.Config{
		APK:       a.APK,
		Scale:     1,
		Transport: tr,
		Props: interp.DeviceProps{
			UserAgent:  "AppxExp/1.0",
			Locale:     "en-US",
			AppVersion: a.APK.Manifest.Version,
		},
	})
}

// studyRun is the shared workhorse for Figures 15–17: it replays the user
// study against a wire lab and returns per-interaction main latencies
// (unscaled) plus the proxy's data accounting.
type studyRun struct {
	// MainLatencies are unscaled user-perceived latencies of main
	// interactions across all users.
	MainLatencies []time.Duration
	// AllLatencies covers every measured interaction (launch + taps).
	AllLatencies []time.Duration
	// DataUsage is the Figure-16 normalized data metric.
	DataUsage float64
	// UsedPrefetchRatio is the fraction of prefetched responses consumed.
	UsedPrefetchRatio float64
	// Hits/Misses/Prefetches are raw proxy counters.
	Hits, Misses, Prefetches int
}

// runStudy executes one (app, RTT override, prefetch on/off) configuration.
func runStudy(p Params, app *apps.App, rttOverride time.Duration, prefetch bool) (*studyRun, error) {
	l, err := lab.New(lab.Options{
		App:            app,
		Scale:          p.Scale,
		Prefetch:       prefetch,
		ProxyOriginRTT: rttOverride,
	})
	if err != nil {
		return nil, err
	}
	defer l.Close()
	return replayStudy(p, l)
}

// replayStudy replays the generated user study against an existing lab, all
// users in parallel on their own devices.
func replayStudy(p Params, l *lab.Lab) (*studyRun, error) {
	traces := trace.GenerateStudy(l.App.APK, p.Users, p.Seed, p.TraceDuration)
	speed := p.ThinkSpeed / p.Scale // think times shrink with the world plus extra

	type userOut struct {
		measures []trace.InteractionMeasure
		err      error
	}
	outs := make([]userOut, len(traces))
	var wg sync.WaitGroup
	for i, tr := range traces {
		wg.Add(1)
		go func(i int, tr *trace.Trace) {
			defer wg.Done()
			// Stagger session starts: real participants do not all launch
			// the app at the same instant, and synchronized launches pile
			// every user's prefetch burst onto the same moment.
			time.Sleep(time.Duration(i) * 300 * time.Millisecond)
			d, err := l.NewDevice(tr.User)
			if err != nil {
				outs[i] = userOut{err: err}
				return
			}
			outs[i] = userOut{measures: trace.Replay(d, tr, speed)}
		}(i, tr)
	}
	wg.Wait()

	run := &studyRun{}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		for _, m := range o.measures {
			if m.Err != nil {
				return nil, fmt.Errorf("replay interaction: %w", m.Err)
			}
			lat := l.Unscale(m.Measure.Total)
			run.AllLatencies = append(run.AllLatencies, lat)
			if m.Event.Main {
				run.MainLatencies = append(run.MainLatencies, lat)
			}
		}
	}
	l.Proxy.Drain()
	snap := l.Proxy.Stats().Snapshot()
	run.DataUsage = snap.NormalizedDataUsage()
	run.UsedPrefetchRatio = snap.UsedPrefetchRatio()
	run.Hits, run.Misses, run.Prefetches = snap.Hits, snap.Misses, snap.Prefetches
	return run, nil
}

// transportFunc adapts a function to interp.Transport.
type transportFunc = interp.TransportFunc
