package exp

import (
	"fmt"
	"time"

	"appx/internal/apps"
	"appx/internal/lab"
	"appx/internal/metrics"
)

// MechRow is one mechanism variant's measurement.
type MechRow struct {
	Variant string
	// StoreOpen is the mean latency of a warmed main interaction.
	StoreOpen time.Duration
	// HitRatio is the proxy-wide cache hit ratio over the run.
	HitRatio float64
}

// MechAblation quantifies the proxy's own design choices (DESIGN.md's
// ablation index): full prefetching, prefetching without chain recursion
// (Figure 3(c) disabled), and no prefetching at all. Run on DoorDash, whose
// main interaction sits mid-chain — exactly where chaining pays.
type MechAblation struct {
	Rows []MechRow
}

// RunMechAblation measures a warmed DoorDash store-open under each variant.
func RunMechAblation(p Params) (*MechAblation, error) {
	p.Fill()
	variants := []struct {
		name string
		opts func(*lab.Options)
	}{
		{"full", func(o *lab.Options) { o.Prefetch = true }},
		{"no-chain", func(o *lab.Options) { o.Prefetch = true; o.DisableChaining = true }},
		{"no-prefetch", func(o *lab.Options) { o.Prefetch = false }},
	}
	out := &MechAblation{}
	for _, v := range variants {
		opts := lab.Options{App: apps.DoorDash(), Scale: p.Scale}
		v.opts(&opts)
		l, err := lab.New(opts)
		if err != nil {
			return nil, err
		}
		var totals []time.Duration
		for run := 0; run < p.Runs; run++ {
			d, err := l.NewDevice(fmt.Sprintf("mech-%s-%d", v.name, run))
			if err != nil {
				l.Close()
				return nil, err
			}
			if _, err := d.Launch(); err != nil {
				l.Close()
				return nil, err
			}
			// Warm-up walk teaches every chain level's run-time values.
			if _, err := d.TapMain(0); err != nil {
				l.Close()
				return nil, err
			}
			if _, err := d.Tap("menu-item", 0); err != nil {
				l.Close()
				return nil, err
			}
			d.Back()
			d.Back()
			l.Proxy.Drain()
			m, err := d.TapMain(1 + run%4)
			if err != nil {
				l.Close()
				return nil, err
			}
			totals = append(totals, l.Unscale(m.Total))
		}
		snap := l.Proxy.Stats().Snapshot()
		l.Close()
		out.Rows = append(out.Rows, MechRow{
			Variant:   v.name,
			StoreOpen: metrics.NewDigest(totals).Mean(),
			HitRatio:  snap.HitRatio(),
		})
	}
	return out, nil
}

// Render formats the mechanism ablation.
func (m *MechAblation) Render() string {
	rows := make([][]string, 0, len(m.Rows))
	for _, r := range m.Rows {
		rows = append(rows, []string{r.Variant, fmtMS(r.StoreOpen), fmtPct(r.HitRatio)})
	}
	return "Mechanism ablation: warmed DoorDash store-open per proxy variant\n" +
		table([]string{"Variant", "Store open", "Hit ratio"}, rows)
}
