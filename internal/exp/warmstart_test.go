package exp

import "testing"

// TestWarmStartRecovery pins the issue's acceptance criterion in experiment
// form: a warm restart recovers ≥80% of the pre-kill steady-state hit ratio
// in its first batch, and a corrupt snapshot degrades to the cold curve with
// a counted failure — never an error.
func TestWarmStartRecovery(t *testing.T) {
	res, err := RunWarmStart(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyState == 0 {
		t.Fatal("training never reached a steady state")
	}
	if res.RecoveredPct < 0.8 {
		t.Fatalf("warm restart recovered %.2f of steady state, want >= 0.80", res.RecoveredPct)
	}
	if res.WarmOutcome != "restored" || res.CorruptOutcome != "failed" || res.ColdOutcome != "cold" {
		t.Fatalf("restore outcomes warm=%q corrupt=%q cold=%q",
			res.WarmOutcome, res.CorruptOutcome, res.ColdOutcome)
	}
	for i, r := range res.Rows {
		if r.Corrupt > r.Warm+1e-9 {
			t.Fatalf("batch %d: corrupt restart (%.2f) outperformed warm (%.2f)", i+1, r.Corrupt, r.Warm)
		}
	}
	if first := res.Rows[0]; first.Cold >= first.Warm {
		t.Fatalf("first batch: cold (%.2f) not below warm (%.2f) — restart recovered nothing", first.Cold, first.Warm)
	}
}
