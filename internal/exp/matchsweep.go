package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"appx/internal/httpmsg"
	"appx/internal/sig"
)

// MatchSweepRow is one signature-count point of the match-index sweep.
type MatchSweepRow struct {
	// Sigs is the graph size at this point.
	Sigs int
	// NaiveNs and IndexedNs are the mean per-request match costs (ns) of the
	// linear regex scan and the two-level index on the same request stream.
	NaiveNs, IndexedNs float64
	// Speedup is NaiveNs / IndexedNs.
	Speedup float64
	// ExactHits, TrieCands, and RegexEvals are per-request means over the
	// indexed measurement window, from the graph's match telemetry.
	ExactHits, TrieCands, RegexEvals float64
}

// MatchSweep compares the seed's O(|Sigs|·regex) signature matching with the
// indexed hot path as the graph grows. The paper's static analysis emits one
// signature per network call site, so production graphs reach thousands of
// entries; this sweep shows the scan cost growing linearly while the indexed
// cost stays near-flat.
type MatchSweep struct {
	Seed int64
	Rows []MatchSweepRow
}

// DefaultMatchSigCounts are the sweep points.
func DefaultMatchSigCounts() []int {
	return []int{100, 1000, 10000}
}

// matchSweepGraph builds an n-signature graph with a production-like shape —
// mostly literal URIs across a few hosts, a slice of wildcard-tail patterns,
// and a few dynamic-host (leading wildcard) patterns — plus one request per
// signature instantiating it.
func matchSweepGraph(n int) (*sig.Graph, []*httpmsg.Request) {
	g := sig.NewGraph("matchsweep")
	reqs := make([]*httpmsg.Request, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ms%d", i)
		switch i % 10 {
		case 0:
			g.Add(&sig.Signature{ID: id, Method: "GET",
				URI: sig.Concat(sig.Literal(fmt.Sprintf("api%d.example/v1/items/", i%7)), sig.Wildcard(""))})
			reqs = append(reqs, &httpmsg.Request{Method: "GET",
				Host: fmt.Sprintf("api%d.example", i%7), Path: fmt.Sprintf("/v1/items/%d", i)})
		case 1:
			g.Add(&sig.Signature{ID: id, Method: "GET",
				URI: sig.Concat(sig.Wildcard("host"), sig.Literal(fmt.Sprintf("/api/feed%d", i)))})
			reqs = append(reqs, &httpmsg.Request{Method: "GET",
				Host: "cdn.example", Path: fmt.Sprintf("/api/feed%d", i)})
		default:
			g.Add(&sig.Signature{ID: id, Method: "GET",
				URI: sig.Literal(fmt.Sprintf("api%d.example/v1/res/%d", i%7, i))})
			reqs = append(reqs, &httpmsg.Request{Method: "GET",
				Host: fmt.Sprintf("api%d.example", i%7), Path: fmt.Sprintf("/v1/res/%d", i)})
		}
	}
	return g, reqs
}

// naiveMatch reimplements the seed's matcher from the public API: scan every
// signature's anchored regex, stable-sort by literal length descending.
func naiveMatch(g *sig.Graph, r *httpmsg.Request) []*sig.Signature {
	var out []*sig.Signature
	for _, s := range g.Sigs {
		if s.MatchesRequest(r) {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return patternLitLen(out[i].URI) > patternLitLen(out[j].URI)
	})
	return out
}

func patternLitLen(p sig.Pattern) int {
	n := 0
	for _, part := range p.Parts {
		if part.Kind == sig.Lit {
			n += len(part.Lit)
		}
	}
	return n
}

// RunMatchSweep runs the sweep. The request stream is deterministic (seeded
// shuffle of one instantiation per signature); the timings are measurements
// and vary with the machine.
func RunMatchSweep(seed int64, sigCounts []int) (*MatchSweep, error) {
	if seed == 0 {
		seed = 42
	}
	if len(sigCounts) == 0 {
		sigCounts = DefaultMatchSigCounts()
	}
	out := &MatchSweep{Seed: seed}
	for _, n := range sigCounts {
		row, err := runMatchPoint(seed, n)
		if err != nil {
			return nil, fmt.Errorf("matchsweep@%d sigs: %w", n, err)
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func runMatchPoint(seed int64, n int) (*MatchSweepRow, error) {
	g, reqs := matchSweepGraph(n)
	rnd := rand.New(rand.NewSource(seed))
	rnd.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })

	// Equivalence spot-check before timing: both matchers must agree.
	for i := 0; i < len(reqs) && i < 32; i++ {
		want := naiveMatch(g, reqs[i])
		got := g.MatchRequest(reqs[i])
		if len(got) != len(want) {
			return nil, fmt.Errorf("matchers disagree on %s%s: indexed %d, naive %d",
				reqs[i].Host, reqs[i].Path, len(got), len(want))
		}
		for k := range want {
			if got[k].ID != want[k].ID {
				return nil, fmt.Errorf("matchers order differs on %s%s", reqs[i].Host, reqs[i].Path)
			}
		}
	}

	// The naive scan is O(n) per request: shrink its iteration count as n
	// grows so the 10k point stays fast, but keep enough samples to average.
	naiveIters := 200000 / n
	if naiveIters < 20 {
		naiveIters = 20
	}
	indexedIters := 50 * naiveIters

	start := time.Now()
	for i := 0; i < naiveIters; i++ {
		naiveMatch(g, reqs[i%len(reqs)])
	}
	naiveNs := float64(time.Since(start).Nanoseconds()) / float64(naiveIters)

	before := g.MatchTelemetry()
	start = time.Now()
	for i := 0; i < indexedIters; i++ {
		g.MatchRequest(reqs[i%len(reqs)])
	}
	indexedNs := float64(time.Since(start).Nanoseconds()) / float64(indexedIters)
	after := g.MatchTelemetry()

	lookups := float64(after.Lookups - before.Lookups)
	return &MatchSweepRow{
		Sigs:       n,
		NaiveNs:    naiveNs,
		IndexedNs:  indexedNs,
		Speedup:    naiveNs / indexedNs,
		ExactHits:  float64(after.ExactHits-before.ExactHits) / lookups,
		TrieCands:  float64(after.TrieCandidates-before.TrieCandidates) / lookups,
		RegexEvals: float64(after.RegexEvals-before.RegexEvals) / lookups,
	}, nil
}

// Render formats the match sweep.
func (m *MatchSweep) Render() string {
	rows := make([][]string, 0, len(m.Rows))
	for _, r := range m.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Sigs),
			fmt.Sprintf("%.0f", r.NaiveNs),
			fmt.Sprintf("%.0f", r.IndexedNs),
			fmt.Sprintf("%.1fx", r.Speedup),
			fmt.Sprintf("%.2f", r.ExactHits),
			fmt.Sprintf("%.2f", r.TrieCands),
			fmt.Sprintf("%.2f", r.RegexEvals),
		})
	}
	return fmt.Sprintf("Match-index sweep (seed %d): per-request signature matching cost vs graph size\n", m.Seed) +
		table([]string{"sigs", "naive ns/op", "indexed ns/op", "speedup", "exact hits/req", "trie cands/req", "regex evals/req"}, rows)
}
