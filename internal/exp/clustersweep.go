package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync/atomic"
	"time"

	"appx/internal/cluster"
	"appx/internal/httpmsg"
	"appx/internal/proxy"
)

// ClusterSweepRow is one instance-count point of the scale-out sweep: the
// same workload driven round-robin across a clustered fleet and across the
// same number of independent (uncoordinated) instances.
type ClusterSweepRow struct {
	Instances int
	// HitRatio is the fleet-aggregate cache hit ratio of the clustered run.
	HitRatio float64
	// PeerFillHits/Misses count the sibling-before-origin protocol's
	// outcomes across the fleet; Forwarded counts owner relays.
	PeerFillHits, PeerFillMisses, Forwarded int64
	// ClusterOrigin and IndepOrigin count origin requests under each
	// topology; OffloadPct = 1 - ClusterOrigin/IndepOrigin is the share of
	// origin traffic the cluster protocols removed.
	ClusterOrigin, IndepOrigin int64
	OffloadPct                 float64
	// LocalP95Ms / FwdP95Ms split client-observed p95 latency by whether
	// the request was relayed to its owner (the forwarding tax).
	LocalP95Ms, FwdP95Ms float64
}

// ClusterSweep is the users x instances grid plus a kill/join churn phase
// at the largest fleet size. ChurnFailures counts foreground requests that
// failed (status >= 500 other than a shed, or a transport error against a
// live instance) while an instance was killed and later rejoined — the
// acceptance bar is zero.
type ClusterSweep struct {
	Seed  int64
	Users int
	Rows  []ClusterSweepRow

	ChurnRequests   int
	ChurnFailures   int
	ChurnRebalances int64
}

const (
	clusterSweepUsers     = 6
	clusterSweepInstances = 3
)

// csNode is one live proxy instance of the emulated fleet.
type csNode struct {
	addr string
	px   *proxy.Proxy
	srv  *http.Server
}

// csFleet is a set of proxy instances sharing one origin, clustered or
// independent. Killed slots hold nil.
type csFleet struct {
	nodes  []*csNode
	addrs  []string
	origin atomic.Int64
}

// csUpstream serves the cachesweep catalog, counting origin requests.
func (f *csFleet) upstream() proxy.UpstreamFunc {
	return func(_ context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		f.origin.Add(1)
		if r.Path == "/feed" {
			ids := make([]string, cacheCatalog)
			for i := range ids {
				ids[i] = fmt.Sprintf("a%d", i)
			}
			body, _ := json.Marshal(map[string]any{"ids": ids})
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   body}, nil
		}
		return &httpmsg.Response{Status: 200, Body: bytes.Repeat([]byte("x"), cacheAssetSize)}, nil
	}
}

// start boots instance i on ln. Clustered instances probe fast so churn
// phases converge in tens of milliseconds.
func (f *csFleet) start(i int, ln net.Listener, clustered bool) {
	var cc cluster.Config
	if clustered {
		cc = cluster.Config{
			Self:          f.addrs[i],
			Peers:         f.addrs,
			Replicas:      2,
			ProbeInterval: 25 * time.Millisecond,
			ProbeTimeout:  250 * time.Millisecond,
		}
	}
	px := proxy.New(proxy.Options{Graph: cacheSweepGraph(), Upstream: f.upstream(),
		Workers: 1, Cluster: cc})
	srv := &http.Server{Handler: px}
	go srv.Serve(ln)
	f.nodes[i] = &csNode{addr: f.addrs[i], px: px, srv: srv}
}

func newCSFleet(n int, clustered bool) (*csFleet, error) {
	f := &csFleet{nodes: make([]*csNode, n), addrs: make([]string, n)}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		f.addrs[i] = ln.Addr().String()
	}
	for i := range lns {
		f.start(i, lns[i], clustered)
	}
	return f, nil
}

// kill hard-stops instance i: listener and proxy down, no drain — the
// crash case, not the graceful one.
func (f *csFleet) kill(i int) {
	f.nodes[i].srv.Close()
	f.nodes[i].px.Close()
	f.nodes[i] = nil
}

// rejoin boots a fresh instance on the killed slot's address (the listener
// port may need a moment to free).
func (f *csFleet) rejoin(i int, clustered bool) error {
	var ln net.Listener
	var err error
	for try := 0; try < 100; try++ {
		ln, err = net.Listen("tcp", f.addrs[i])
		if err == nil {
			f.start(i, ln, clustered)
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("clustersweep: rebind %s: %w", f.addrs[i], err)
}

func (f *csFleet) close() {
	for i, n := range f.nodes {
		if n != nil {
			f.kill(i)
		}
	}
}

// drainAll waits out every live instance's prefetch queue.
func (f *csFleet) drainAll() {
	for _, n := range f.nodes {
		if n != nil {
			n.px.Drain()
		}
	}
}

// waitMembers blocks until every live instance's ring has exactly want
// members (or the timeout passes; the caller's assertions then fail).
func (f *csFleet) waitMembers(want int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, n := range f.nodes {
			if n != nil && len(n.px.ClusterStats().Members) != want {
				ok = false
			}
		}
		if ok {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// csDriver plays the role of a dumb round-robin load balancer in front of
// the fleet: each request goes to the next live instance, with no
// affinity — the worst case cluster routing has to fix.
type csDriver struct {
	fleet    *csFleet
	clients  map[string]*http.Client
	rr       int
	requests int
	failures int
	localLat []time.Duration
	fwdLat   []time.Duration
}

func newCSDriver(f *csFleet) *csDriver {
	d := &csDriver{fleet: f, clients: map[string]*http.Client{}}
	for _, addr := range f.addrs {
		d.clients[addr] = &http.Client{
			Timeout: 10 * time.Second,
			Transport: &http.Transport{
				Proxy:              http.ProxyURL(&url.URL{Scheme: "http", Host: addr}),
				DisableCompression: true,
			},
		}
	}
	return d
}

func (d *csDriver) nextLive() *csNode {
	for try := 0; try < len(d.fleet.nodes); try++ {
		n := d.fleet.nodes[d.rr%len(d.fleet.nodes)]
		d.rr++
		if n != nil {
			return n
		}
	}
	return nil
}

// get issues one request for user through the next live instance. A status
// >= 500 — except a shed (503 + Retry-After) — or a transport error counts
// as a foreground failure: the instance is alive, it must serve.
func (d *csDriver) get(user, path, id string) error {
	n := d.nextLive()
	if n == nil {
		return fmt.Errorf("clustersweep: no live instances")
	}
	u := "http://app.example" + path
	if id != "" {
		u += "?id=" + id
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Appx-User", user)
	req.Header.Set("User-Agent", "") // keep canonical keys header-free
	start := time.Now()
	resp, err := d.clients[n.addr].Do(req)
	elapsed := time.Since(start)
	d.requests++
	if err != nil {
		d.failures++
		return nil
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 500 {
		if !(resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "") {
			d.failures++
		}
		return nil
	}
	if resp.Header.Get("X-Appx-Cluster-Forwarded") != "" {
		d.fwdLat = append(d.fwdLat, elapsed)
	} else {
		d.localLat = append(d.localLat, elapsed)
	}
	return nil
}

// session drives one user through a feed open and the full catalog, with a
// fleet drain after the feed so the fan-out prefetch (and its peer fills)
// lands before the assets are requested.
func (d *csDriver) session(user string) error {
	if err := d.get(user, "/feed", ""); err != nil {
		return err
	}
	d.fleet.drainAll()
	for j := 0; j < cacheCatalog; j++ {
		if err := d.get(user, "/asset", fmt.Sprintf("a%d", j)); err != nil {
			return err
		}
	}
	d.fleet.drainAll()
	return nil
}

func durP95(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*95+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return float64(sorted[idx].Nanoseconds()) / 1e6
}

// csResult is everything a grid point needs from one fleet run, collected
// before the fleet is torn down.
type csResult struct {
	origin                                  int64
	hits, misses                            int64
	peerFillHits, peerFillMisses, forwarded int64
	localLat, fwdLat                        []time.Duration
	failures                                int
}

// spreadUsers picks user names so that user k is owned by addrs[k%n] in
// the clustered ring — every instance owns a share of the workload no
// matter which ephemeral ports the fleet landed on. The independent
// baseline reuses the same names, so both topologies see the same load.
func spreadUsers(addrs []string, count int) []string {
	r := cluster.NewRing(cluster.DefaultVNodes)
	for _, a := range addrs {
		r.Add(a)
	}
	out := make([]string, 0, count)
	next := 0
	for k := 0; k < count; k++ {
		want := addrs[k%len(addrs)]
		for ; ; next++ {
			name := fmt.Sprintf("u%d", next)
			if r.Owner(name) == want {
				out = append(out, name)
				next++
				break
			}
		}
	}
	return out
}

// drivePoint runs every user session against the fleet and collects the
// counters before the caller tears the fleet down.
func drivePoint(f *csFleet, users []string) (*csResult, error) {
	d := newCSDriver(f)
	// One live asset request teaches the first exemplar (the cachesweep
	// seeding idiom); later users' exemplars ride their own first miss.
	if err := d.get(users[0], "/asset", "seed"); err != nil {
		return nil, err
	}
	for _, u := range users {
		if err := d.session(u); err != nil {
			return nil, err
		}
	}
	res := &csResult{
		origin:   f.origin.Load(),
		localLat: d.localLat,
		fwdLat:   d.fwdLat,
		failures: d.failures,
	}
	for _, nd := range f.nodes {
		if nd == nil {
			continue
		}
		snap := nd.px.Stats().Snapshot()
		res.hits += int64(snap.Hits)
		res.misses += int64(snap.Misses)
		cs := nd.px.ClusterStats()
		res.peerFillHits += cs.PeerFill.Hits
		res.peerFillMisses += cs.PeerFill.Misses
		res.forwarded += cs.Forwarded
	}
	return res, nil
}

// RunClusterSweep runs the grid: 1..3 instances, clustered vs independent,
// then the kill/join churn phase on a fresh 3-instance clustered fleet.
func RunClusterSweep(seed int64) (*ClusterSweep, error) {
	if seed == 0 {
		seed = 42
	}
	out := &ClusterSweep{Seed: seed, Users: clusterSweepUsers}

	for n := 1; n <= clusterSweepInstances; n++ {
		fc, err := newCSFleet(n, true)
		if err != nil {
			return nil, err
		}
		users := spreadUsers(fc.addrs, clusterSweepUsers)
		rc, err := drivePoint(fc, users)
		fc.close()
		if err != nil {
			return nil, fmt.Errorf("clustersweep@%d clustered: %w", n, err)
		}
		fi, err := newCSFleet(n, false)
		if err != nil {
			return nil, err
		}
		ri, err := drivePoint(fi, users)
		fi.close()
		if err != nil {
			return nil, fmt.Errorf("clustersweep@%d independent: %w", n, err)
		}
		if rc.failures > 0 || ri.failures > 0 {
			return nil, fmt.Errorf("clustersweep@%d: steady-state failures (cluster %d, indep %d)", n, rc.failures, ri.failures)
		}
		row := ClusterSweepRow{
			Instances:      n,
			ClusterOrigin:  rc.origin,
			IndepOrigin:    ri.origin,
			PeerFillHits:   rc.peerFillHits,
			PeerFillMisses: rc.peerFillMisses,
			Forwarded:      rc.forwarded,
			LocalP95Ms:     durP95(rc.localLat),
			FwdP95Ms:       durP95(rc.fwdLat),
		}
		if rc.hits+rc.misses > 0 {
			row.HitRatio = float64(rc.hits) / float64(rc.hits+rc.misses)
		}
		if row.IndepOrigin > 0 {
			row.OffloadPct = 1 - float64(row.ClusterOrigin)/float64(row.IndepOrigin)
		}
		out.Rows = append(out.Rows, row)
	}

	if err := out.runChurn(); err != nil {
		return nil, err
	}
	return out, nil
}

// runChurn kills instance 2 of a 3-instance fleet mid-load, keeps driving
// through the survivors, waits for the rebalance, rejoins the instance on
// the same address, and counts foreground failures across all of it.
func (c *ClusterSweep) runChurn() error {
	f, err := newCSFleet(clusterSweepInstances, true)
	if err != nil {
		return err
	}
	defer f.close()
	// Three batches of users spread over the three instances: one driven
	// before the kill, one during the outage, one after the rejoin. The
	// spread guarantees each batch contains users owned by the victim.
	users := spreadUsers(f.addrs, 3*(clusterSweepUsers/2))
	d := newCSDriver(f)
	if err := d.get(users[0], "/asset", "seed"); err != nil {
		return err
	}
	batch := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := d.session(users[i]); err != nil {
				return err
			}
		}
		return nil
	}
	third := clusterSweepUsers / 2
	if err := batch(0, third); err != nil {
		return err
	}
	f.kill(clusterSweepInstances - 1)
	// Survivors keep serving while probes discover the death; forwards to
	// the dead owner fall back to local serving.
	if err := batch(third, 2*third); err != nil {
		return err
	}
	if !f.waitMembers(clusterSweepInstances-1, 3*time.Second) {
		return fmt.Errorf("clustersweep churn: fleet never converged after the kill")
	}
	if err := f.rejoin(clusterSweepInstances-1, true); err != nil {
		return err
	}
	if !f.waitMembers(clusterSweepInstances, 3*time.Second) {
		return fmt.Errorf("clustersweep churn: fleet never re-admitted the rejoined instance")
	}
	if err := batch(2*third, 3*third); err != nil {
		return err
	}
	c.ChurnRequests = d.requests
	c.ChurnFailures = d.failures
	for _, n := range f.nodes {
		if n != nil {
			c.ChurnRebalances += n.px.ClusterStats().Rebalances
		}
	}
	return nil
}

// Render formats the sweep and the churn verdict.
func (c *ClusterSweep) Render() string {
	rows := make([][]string, 0, len(c.Rows))
	for _, r := range c.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Instances),
			fmtPct(r.HitRatio),
			fmt.Sprintf("%d/%d", r.PeerFillHits, r.PeerFillHits+r.PeerFillMisses),
			fmt.Sprintf("%d", r.Forwarded),
			fmt.Sprintf("%d", r.ClusterOrigin),
			fmt.Sprintf("%d", r.IndepOrigin),
			fmtPct(r.OffloadPct),
			fmt.Sprintf("%.2f", r.LocalP95Ms),
			fmt.Sprintf("%.2f", r.FwdP95Ms),
		})
	}
	head := fmt.Sprintf(
		"Cluster sweep (seed %d): %d users round-robin across N instances, clustered vs independent\n"+
			"churn (kill+rejoin at %d instances): %d requests, %d foreground failures, %d rebalances\n",
		c.Seed, c.Users, clusterSweepInstances, c.ChurnRequests, c.ChurnFailures, c.ChurnRebalances)
	return head + table(
		[]string{"instances", "hit ratio", "peer fills", "forwarded", "cluster origin", "indep origin", "offload", "local p95 ms", "fwd p95 ms"},
		rows)
}
