package exp

import (
	"testing"
	"time"
)

// TestOverloadSweepShape checks the overload property the sweep guards:
// foreground latency holds (p95 within 2× of uncontended) while speculative
// prefetch work — not client traffic — absorbs the overload as deep-class
// scheduler drops. Timing-shaped, so skipped under the race detector.
func TestOverloadSweepShape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shaped experiment; race detector distorts it")
	}
	res, err := RunOverload(7, []float64{1, 2})
	if err != nil {
		t.Fatalf("RunOverload: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	base, over := res.Rows[0], res.Rows[1]

	if base.Shed != 0 || base.ServerErrs != 0 {
		t.Fatalf("1x load saw %d sheds, %d server errors; want a clean baseline", base.Shed, base.ServerErrs)
	}
	if base.HitRatio <= 0 {
		t.Fatal("1x load saw no prefetch hits; the chain never warmed up")
	}
	if over.DeepDropped == 0 {
		t.Fatal("2x load shed no deep prefetches; the scheduler absorbed nothing")
	}
	if over.ServerErrs != 0 {
		t.Fatalf("2x load saw %d foreground server errors; overload must shed prefetches, not clients", over.ServerErrs)
	}
	// The latency bound has slack for scheduler jitter on loaded CI
	// machines; the property is "same order", not "identical".
	if limit := 2*base.P95 + 2*time.Millisecond; over.P95 > limit {
		t.Fatalf("2x p95 = %v, want within 2x of uncontended %v (+2ms)", over.P95, base.P95)
	}
}
