package exp

import (
	"fmt"
	"os"

	"appx/internal/chaos"
)

// ChaosSweepRow is one schedule's outcome: workload tallies, the worst
// per-instance fill p99, hedge activity, and every oracle violation.
type ChaosSweepRow struct {
	Schedule     string
	Requests     int
	Availability float64
	Sheds        int
	Failures     int
	P50Ms        float64
	P99Ms        float64
	FillP99Ms    float64
	Hedges       int64
	HedgeWins    int64
	DiskFaults   int64
	WarmRestores int
	Violations   []chaos.Violation
}

// ChaosSweep runs every builtin fault schedule against a seeded 3-instance
// cluster with the invariant oracle armed, then replays the slow-peer
// schedule with hedging disabled to price what hedged reads buy.
type ChaosSweep struct {
	Seed      int64
	Instances int
	Rows      []ChaosSweepRow

	// HedgedFillP99Ms / UnhedgedFillP99Ms compare the slow-peer schedule's
	// worst fill p99 with hedging on (the builtin run above) and off.
	HedgedFillP99Ms   float64
	UnhedgedFillP99Ms float64
	// UnhedgedViolations carries oracle breaks from the control run (the
	// control must hold the invariants too — it is slower, not broken).
	UnhedgedViolations []chaos.Violation
}

// Violations sums oracle breaks across every run.
func (c *ChaosSweep) Violations() int {
	n := len(c.UnhedgedViolations)
	for _, r := range c.Rows {
		n += len(r.Violations)
	}
	return n
}

// RunChaosSweep replays all builtin schedules and the hedging control run.
func RunChaosSweep(seed int64) (*ChaosSweep, error) {
	if seed == 0 {
		seed = 42
	}
	root, err := os.MkdirTemp("", "appx-chaos-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	out := &ChaosSweep{Seed: seed, Instances: 3}
	for _, sched := range chaos.Schedules() {
		opts := chaos.Options{Seed: seed, Instances: 3}
		if sched.Persist {
			opts.StateRoot = fmt.Sprintf("%s/%s", root, sched.Name)
		}
		rep, err := chaos.Run(opts, sched)
		if err != nil {
			return nil, fmt.Errorf("chaossweep %s: %w", sched.Name, err)
		}
		out.Rows = append(out.Rows, ChaosSweepRow{
			Schedule:     rep.Schedule,
			Requests:     rep.Requests,
			Availability: rep.Availability,
			Sheds:        rep.Sheds,
			Failures:     rep.Failures,
			P50Ms:        rep.P50Ms,
			P99Ms:        rep.P99Ms,
			FillP99Ms:    rep.FillP99Ms,
			Hedges:       rep.HedgesLaunched,
			HedgeWins:    rep.HedgeWins,
			DiskFaults:   rep.DiskFaultsInjected,
			WarmRestores: rep.WarmRestores,
			Violations:   rep.Violations,
		})
		if sched.Name == "slowpeer" {
			out.HedgedFillP99Ms = rep.FillP99Ms
		}
	}

	slow, ok := chaos.ScheduleByName("slowpeer")
	if !ok {
		return nil, fmt.Errorf("chaossweep: slowpeer schedule missing")
	}
	control, err := chaos.Run(chaos.Options{Seed: seed, Instances: 3, DisableHedging: true}, slow)
	if err != nil {
		return nil, fmt.Errorf("chaossweep slowpeer control: %w", err)
	}
	out.UnhedgedFillP99Ms = control.FillP99Ms
	out.UnhedgedViolations = control.Violations
	return out, nil
}

// Render formats the schedule table and the hedging comparison.
func (c *ChaosSweep) Render() string {
	rows := make([][]string, 0, len(c.Rows))
	for _, r := range c.Rows {
		verdict := "ok"
		if len(r.Violations) > 0 {
			verdict = fmt.Sprintf("%d VIOLATIONS", len(r.Violations))
		}
		rows = append(rows, []string{
			r.Schedule,
			fmt.Sprintf("%d", r.Requests),
			fmtPct(r.Availability),
			fmt.Sprintf("%d", r.Sheds),
			fmt.Sprintf("%d", r.Failures),
			fmt.Sprintf("%.2f", r.P50Ms),
			fmt.Sprintf("%.2f", r.P99Ms),
			fmt.Sprintf("%.2f", r.FillP99Ms),
			fmt.Sprintf("%d/%d", r.HedgeWins, r.Hedges),
			fmt.Sprintf("%d", r.DiskFaults),
			verdict,
		})
	}
	head := fmt.Sprintf(
		"Chaos sweep (seed %d): seeded fault schedules vs a %d-instance cluster, invariant oracle armed\n"+
			"slow-peer hedging: fill p99 %.2f ms hedged vs %.2f ms unhedged\n"+
			"oracle: %d violations across all runs\n",
		c.Seed, c.Instances, c.HedgedFillP99Ms, c.UnhedgedFillP99Ms, c.Violations())
	out := head + table(
		[]string{"schedule", "requests", "avail", "sheds", "failures", "p50 ms", "p99 ms", "fill p99 ms", "hedge w/l", "disk faults", "oracle"},
		rows)
	for _, r := range c.Rows {
		for _, v := range r.Violations {
			out += fmt.Sprintf("\n  VIOLATION %s/%s: %s", r.Schedule, v.Invariant, v.Detail)
		}
	}
	for _, v := range c.UnhedgedViolations {
		out += fmt.Sprintf("\n  VIOLATION slowpeer-unhedged/%s: %s", v.Invariant, v.Detail)
	}
	return out
}
