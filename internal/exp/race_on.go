//go:build race

package exp

// raceEnabled reports that the race detector is active. Its ~10× CPU
// slowdown distorts the scaled time emulation, so timing-shape tests skip
// themselves under -race (the logic they exercise is covered un-instrumented
// elsewhere).
const raceEnabled = true
