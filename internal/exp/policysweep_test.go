package exp

import "testing"

// TestPolicySweepAcceptance pins the ISSUE-10 acceptance bars: the markov
// policy must beat static prefetch precision on the flash-crowd and
// mixed-fleet workloads, and may not waste more than 5% extra origin bytes
// on the structure-free legacy replay.
func TestPolicySweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("policysweep: full sweep is long for -short")
	}
	ps, err := RunPolicySweep(1)
	if err != nil {
		t.Fatalf("RunPolicySweep: %v", err)
	}
	cell := func(scenario, policy string) PolicySweepRow {
		for _, r := range ps.Rows {
			if r.Scenario == scenario && r.Policy == policy {
				return r
			}
		}
		t.Fatalf("missing cell %s/%s", scenario, policy)
		return PolicySweepRow{}
	}
	for _, r := range ps.Rows {
		t.Logf("%-13s %-7s precision=%.3f recall=%.3f prefetched=%d used=%d wasted=%.1fKB pruned=%d",
			r.Scenario, r.Policy, r.Precision, r.Recall, r.Prefetches, r.Used, r.WastedKB, r.Pruned)
	}

	for _, scenario := range []string{"flash-crowd", "mixed-fleet"} {
		s, m := cell(scenario, "static"), cell(scenario, "markov")
		if m.Precision <= s.Precision {
			t.Errorf("%s: markov precision %.3f not above static %.3f",
				scenario, m.Precision, s.Precision)
		}
	}
	s, m := cell("legacy-replay", "static"), cell("legacy-replay", "markov")
	if m.WastedKB > s.WastedKB*1.05 {
		t.Errorf("legacy-replay: markov wasted %.1fKB exceeds static %.1fKB by more than 5%%",
			m.WastedKB, s.WastedKB)
	}
	// The model must actually be intervening where it wins, not winning by
	// accident of scheduling.
	if fc := cell("flash-crowd", "markov"); fc.Pruned == 0 {
		t.Errorf("flash-crowd: markov pruned nothing")
	}
}
