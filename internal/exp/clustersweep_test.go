package exp

import "testing"

// TestClusterSweepAcceptance pins the issue's acceptance bars: at three
// instances the peer-fill/forwarding protocols must offload at least 30% of
// origin requests versus independent instances, and the kill/rejoin churn
// phase must complete with zero foreground failures. The assertions are
// structural (request counts), not timing, so the test holds under -race.
func TestClusterSweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-instance wire experiment")
	}
	res, err := RunClusterSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != clusterSweepInstances {
		t.Fatalf("rows = %d, want %d", len(res.Rows), clusterSweepInstances)
	}
	for _, r := range res.Rows {
		if r.ClusterOrigin == 0 || r.IndepOrigin == 0 {
			t.Fatalf("@%d instances: zero origin traffic (cluster %d, indep %d)",
				r.Instances, r.ClusterOrigin, r.IndepOrigin)
		}
	}
	one, three := res.Rows[0], res.Rows[len(res.Rows)-1]
	if one.Instances != 1 || three.Instances != clusterSweepInstances {
		t.Fatalf("unexpected grid: %+v", res.Rows)
	}
	// A single instance has nobody to coordinate with: both topologies
	// degenerate to the same thing.
	if one.Forwarded != 0 || one.PeerFillHits != 0 {
		t.Fatalf("@1 instance: forwarded=%d peerFillHits=%d, want 0/0",
			one.Forwarded, one.PeerFillHits)
	}
	if three.OffloadPct < 0.30 {
		t.Fatalf("@%d instances: origin offload %.1f%%, acceptance bar is 30%%",
			three.Instances, three.OffloadPct*100)
	}
	if three.PeerFillHits == 0 {
		t.Fatal("@3 instances: offload achieved without a single peer fill — wrong mechanism")
	}
	if three.Forwarded == 0 {
		t.Fatal("@3 instances: no request was ever relayed to its owner")
	}
	if res.ChurnFailures != 0 {
		t.Fatalf("churn phase: %d foreground failures out of %d requests, want 0",
			res.ChurnFailures, res.ChurnRequests)
	}
	if res.ChurnRebalances == 0 {
		t.Fatal("churn phase: no instance ever rebalanced")
	}
	_ = res.Render()
}
