package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"time"

	"appx/internal/config"
	"appx/internal/httpmsg"
	"appx/internal/obs/adminv1"
	"appx/internal/proxy"
	"appx/internal/sig"
	"appx/internal/trace"
)

// PolicySweep judges the prefetch policies on the adversarial workloads of
// internal/trace: each (scenario, policy) cell replays the same scripted
// request stream against a star-shaped app — one home signature fanning out
// to K branch signatures — under a frozen clock and reports prefetch
// precision (used/prefetched), recall (branch views served without a live
// origin round trip), and the origin bytes the unused prefetches wasted.
//
// The static policy prefetches the full fan-out on every home view, so its
// precision is pinned near 1/K wherever users have favourites; the markov
// policy should recover most of that waste on structured workloads
// (flash-crowd, mixed-fleet) while staying within noise of static on the
// structure-free legacy replay.
type PolicySweep struct {
	Seed     int64            `json:"seed"`
	Users    int              `json:"users"`
	Branches int              `json:"branches"`
	Rounds   int              `json:"rounds"`
	Rows     []PolicySweepRow `json:"rows"`
}

// PolicySweepRow is one (scenario, policy) cell.
type PolicySweepRow struct {
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`
	// Precision is used prefetched entries over all prefetched entries.
	Precision float64 `json:"precision"`
	// Recall is the fraction of branch views served without a synchronous
	// origin fetch (i.e. from a prefetched or still-fresh entry).
	Recall float64 `json:"recall"`
	// Prefetches and Used are the raw entry counts behind Precision.
	Prefetches int `json:"prefetches"`
	Used       int `json:"used"`
	// WastedKB is origin traffic spent on prefetched-but-never-used
	// branch bodies; OriginKB is total origin traffic.
	WastedKB float64 `json:"wastedKB"`
	OriginKB float64 `json:"originKB"`
	// Pruned and Reordered report the history model's interventions.
	Pruned    int64 `json:"pruned"`
	Reordered int64 `json:"reordered"`
}

const (
	policyUsers       = 8
	policyBranches    = 8
	policyRounds      = 5
	policyBranchBytes = 4096
	// policyExpiry is below trace.RoundGap, so every measurement round
	// forces a fresh prefetch decision.
	policyExpiry = 60 * time.Second
)

// policyGraph builds the star: a home signature whose response token feeds
// one dependent branch signature per branch index.
func policyGraph(branches int) *sig.Graph {
	g := sig.NewGraph("policysweep")
	home := &sig.Signature{ID: "ps:home#0", Method: "GET", URI: sig.Literal("app.example/home")}
	g.Add(home)
	for b := 0; b < branches; b++ {
		s := &sig.Signature{ID: fmt.Sprintf("ps:b%d#0", b), Method: "GET",
			URI:   sig.Literal(fmt.Sprintf("app.example/b%d", b)),
			Query: []sig.Field{{Key: "tok", Value: sig.DepValue(home.ID, "tok")}}}
		g.Add(s)
		g.AddDep(sig.Dependency{PredID: home.ID, SuccID: s.ID, RespPath: "tok",
			Loc: sig.FieldLoc{Where: "query", Key: "tok"}})
	}
	return g
}

// RunPolicySweep runs every (scenario, policy) cell. Fully deterministic:
// scripted workloads, a frozen clock advanced to each step's offset, one
// prefetch worker drained after every home view.
func RunPolicySweep(seed int64) (*PolicySweep, error) {
	if seed == 0 {
		seed = 42
	}
	out := &PolicySweep{Seed: seed, Users: policyUsers, Branches: policyBranches, Rounds: policyRounds}
	for _, h := range trace.Hostiles(policyUsers, policyBranches, policyRounds, seed) {
		for _, pol := range []string{"static", "markov"} {
			row, err := runPolicyCell(h, pol, seed)
			if err != nil {
				return nil, fmt.Errorf("policysweep %s/%s: %w", h.Name, pol, err)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// runPolicyCell replays one workload against one policy.
func runPolicyCell(h trace.Hostile, policyName string, seed int64) (PolicySweepRow, error) {
	row := PolicySweepRow{Scenario: h.Name, Policy: policyName}
	g := policyGraph(policyBranches)
	cfg := config.Default(g)
	cfg.DefaultExpiration = config.Duration(policyExpiry)
	// Per-user caching only: the shared tier would let one user's prefetch
	// serve the whole fleet and mask per-user precision differences.
	cc := cfg.EffectiveCache()
	cc.DisableSharedTier = true
	cfg.Cache = &cc

	var originBytes, liveBranch atomic.Int64
	// prefetching is set for the window from a home view through the drain
	// that follows it — the only time prefetch fetches reach the origin, as
	// branch views are synchronous on the driver goroutine. Branch fetches
	// outside that window are live misses, the recall counter.
	var prefetching atomic.Bool
	up := proxy.UpstreamFunc(func(_ context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Path == "/home" {
			body := []byte(`{"tok":"v1"}`)
			originBytes.Add(int64(len(body)))
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   body}, nil
		}
		if !prefetching.Load() {
			liveBranch.Add(1)
		}
		body := bytes.Repeat([]byte("b"), policyBranchBytes)
		originBytes.Add(int64(len(body)))
		return &httpmsg.Response{Status: 200, Body: body}, nil
	})

	base := time.Unix(1_700_000_000, 0)
	var nowNano atomic.Int64
	nowNano.Store(base.UnixNano())
	rnd := rand.New(rand.NewSource(seed))
	px := proxy.New(proxy.Options{Graph: g, Config: cfg, Upstream: up, Workers: 1,
		Now:            func() time.Time { return time.Unix(0, nowNano.Load()) },
		Rand:           rnd.Float64,
		PrefetchPolicy: policyName,
	})
	defer px.Close()

	get := func(user, path string, withTok bool) error {
		req := &httpmsg.Request{Method: "GET", Host: "app.example", Path: path,
			Header: []httpmsg.Field{{Key: "X-Appx-User", Value: user}}}
		if withTok {
			req.Query = []httpmsg.Field{{Key: "tok", Value: "v1"}}
		}
		_, err := httpmsg.ServeViaHandler(px, req)
		return err
	}

	branchGETs := 0
	for _, st := range h.Steps {
		nowNano.Store(base.Add(st.At).UnixNano())
		if st.Branch == trace.Home {
			prefetching.Store(true)
			err := get(st.User, "/home", false)
			px.Drain()
			prefetching.Store(false)
			if err != nil {
				return row, err
			}
			continue
		}
		branchGETs++
		if err := get(st.User, fmt.Sprintf("/b%d", st.Branch), true); err != nil {
			return row, err
		}
	}

	snap := px.Stats().Snapshot()
	row.Prefetches = snap.Prefetches
	row.Used = snap.UsedEntries
	row.Precision = snap.UsedPrefetchRatio()
	if branchGETs > 0 {
		row.Recall = 1 - float64(liveBranch.Load())/float64(branchGETs)
	}
	row.WastedKB = float64((snap.Prefetches-snap.UsedEntries)*policyBranchBytes) / 1000
	row.OriginKB = float64(originBytes.Load()) / 1000

	// The typed policy block of /appx/v1/stats carries the model's
	// intervention counters; fetching it over the admin API (a direct,
	// origin-form request) also keeps that surface exercised end to end.
	rec := httptest.NewRecorder()
	px.ServeHTTP(rec, httptest.NewRequest("GET", adminv1.PathStats, nil))
	var stats adminv1.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		return row, fmt.Errorf("decode %s: %w", adminv1.PathStats, err)
	}
	row.Pruned = stats.Policy.Pruned
	row.Reordered = stats.Policy.Reordered
	return row, nil
}

// Render formats the sweep.
func (p *PolicySweep) Render() string {
	rows := make([][]string, 0, len(p.Rows))
	for _, r := range p.Rows {
		rows = append(rows, []string{
			r.Scenario, r.Policy,
			fmtPct(r.Precision), fmtPct(r.Recall),
			fmt.Sprintf("%d", r.Prefetches), fmt.Sprintf("%d", r.Used),
			fmt.Sprintf("%.1f", r.WastedKB), fmt.Sprintf("%.1f", r.OriginKB),
			fmt.Sprintf("%d", r.Pruned), fmt.Sprintf("%d", r.Reordered),
		})
	}
	return fmt.Sprintf("Prefetch-policy sweep (seed %d): %d users, %d branches, %d rounds\n",
		p.Seed, p.Users, p.Branches, p.Rounds) +
		table([]string{"scenario", "policy", "precision", "recall", "prefetched", "used",
			"wasted KB", "origin KB", "pruned", "reordered"}, rows)
}

// WriteJSON writes the machine-readable result.
func (p *PolicySweep) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
