package exp

import (
	"fmt"
	"sort"
	"strings"

	"appx/internal/apps"
	"appx/internal/fuzz"
	"appx/internal/httpmsg"
	"appx/internal/sig"
	"appx/internal/static"
	"appx/internal/trace"
)

// Table1 reproduces Table 1: app descriptions and main interactions.
type Table1 struct {
	Rows [][]string
}

// RunTable1 builds Table 1 from the app registry.
func RunTable1() *Table1 {
	t := &Table1{}
	for _, a := range apps.All() {
		t.Rows = append(t.Rows, []string{a.APK.Manifest.Label, a.APK.Manifest.Category, a.APK.Manifest.MainInteraction})
	}
	return t
}

// Render formats the table.
func (t *Table1) Render() string {
	return "Table 1: apps and main interactions\n" +
		table([]string{"App", "Category", "Main Interaction"}, t.Rows)
}

// Table2 reproduces Table 2: main-interaction transactions and origin RTTs.
type Table2 struct {
	Rows [][]string
}

// RunTable2 builds Table 2 from the per-host link configuration.
func RunTable2() *Table2 {
	t := &Table2{}
	for _, a := range apps.All() {
		hosts := append([]string(nil), a.Hosts...)
		sort.Strings(hosts)
		for _, h := range hosts {
			t.Rows = append(t.Rows, []string{a.APK.Manifest.Label, h, fmtMS(a.HostRTT[h])})
		}
	}
	return t
}

// Render formats the table.
func (t *Table2) Render() string {
	return "Table 2: origin hosts and proxy<->origin RTTs\n" +
		table([]string{"App", "Origin host", "RTT"}, t.Rows)
}

// Table3Row is one app's signature/dependency comparison (Table 3).
type Table3Row struct {
	App string

	// APPx static analysis.
	SigsTotal, SigsPrefetchable, Deps, MaxChain int
	// Auto UI fuzzing baseline.
	FuzzSigs, FuzzPrefetchable, FuzzDeps, FuzzMaxChain int
	// User-study trace baseline.
	UserSigs, UserPrefetchable, UserDeps, UserMaxChain int
}

// Table3 reproduces Table 3.
type Table3 struct {
	Rows []Table3Row
}

// RunTable3 compares APPx's statically identified signatures against what
// automatic UI fuzzing and the user-study traces observe, using the paper's
// methodology: regex-match the URIs of collected traffic against the APPx
// signatures and count the unique matches (§6.1).
func RunTable3(p Params) (*Table3, error) {
	p.Fill()
	out := &Table3{}
	for _, a := range apps.All() {
		g, err := static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
		if err != nil {
			return nil, fmt.Errorf("table3: %s: %w", a.Name, err)
		}
		row := Table3Row{
			App:              a.APK.Manifest.Label,
			SigsTotal:        len(g.Sigs),
			SigsPrefetchable: len(g.Prefetchable()),
			Deps:             len(g.Deps),
			MaxChain:         g.MaxChainLen(),
		}

		// Auto UI fuzzing column: random events, collect traffic, match.
		fuzzObserved, err := observeFuzz(a, g, p)
		if err != nil {
			return nil, fmt.Errorf("table3: %s fuzz: %w", a.Name, err)
		}
		row.FuzzSigs, row.FuzzPrefetchable, row.FuzzDeps, row.FuzzMaxChain = summarizeObserved(g, fuzzObserved)

		// User-study column: replay generated traces, collect traffic, match.
		userObserved, err := observeStudy(a, g, p)
		if err != nil {
			return nil, fmt.Errorf("table3: %s study: %w", a.Name, err)
		}
		row.UserSigs, row.UserPrefetchable, row.UserDeps, row.UserMaxChain = summarizeObserved(g, userObserved)

		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// observeFuzz collects the set of signature IDs whose URIs the fuzz-driven
// app's traffic matches.
func observeFuzz(a *apps.App, g *sig.Graph, p Params) (map[string]bool, error) {
	observed := map[string]bool{}
	d, err := inProcDevice(a, recordingTransport(a, g, observed))
	if err != nil {
		return nil, err
	}
	if _, err := fuzz.Run(d, a.APK, fuzz.Options{Seed: p.Seed, Events: p.FuzzEvents}); err != nil {
		return nil, err
	}
	return observed, nil
}

// observeStudy collects signature coverage from the user-study traces.
func observeStudy(a *apps.App, g *sig.Graph, p Params) (map[string]bool, error) {
	observed := map[string]bool{}
	traces := trace.GenerateStudy(a.APK, p.Users, p.Seed, p.TraceDuration)
	for _, tr := range traces {
		d, err := inProcDevice(a, recordingTransport(a, g, observed))
		if err != nil {
			return nil, err
		}
		for _, m := range trace.Replay(d, tr, 1e9) {
			if m.Err != nil {
				return nil, m.Err
			}
		}
	}
	return observed, nil
}

// recordingTransport serves requests in process while recording which
// signatures they match.
func recordingTransport(a *apps.App, g *sig.Graph, observed map[string]bool) transportFunc {
	h := a.Handler(0)
	return func(r *httpmsg.Request) (*httpmsg.Response, error) {
		if ms := g.MatchRequest(r); len(ms) > 0 {
			observed[ms[0].ID] = true
		}
		return httpmsg.ServeViaHandler(h, r)
	}
}

// summarizeObserved counts observed unique signatures, observed
// prefetchable ones, dependency edges with both endpoints observed, and the
// longest chain within the observed subgraph.
func summarizeObserved(g *sig.Graph, observed map[string]bool) (sigs, prefetchable, deps, maxChain int) {
	sigs = len(observed)
	for _, id := range g.Prefetchable() {
		if observed[id] {
			prefetchable++
		}
	}
	sub := sig.NewGraph(g.App)
	for _, s := range g.Sigs {
		if observed[s.ID] {
			sub.Add(s)
		}
	}
	for _, d := range g.Deps {
		if observed[d.PredID] && observed[d.SuccID] {
			sub.AddDep(d)
			deps++
		}
	}
	maxChain = sub.MaxChainLen()
	return
}

// Render formats Table 3 in the paper's "APPx / fuzzing / user study" style.
func (t *Table3) Render() string {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.App,
			fmt.Sprintf("%d / %d / %d", r.SigsTotal, r.FuzzSigs, r.UserSigs),
			fmt.Sprintf("%d / %d / %d", r.SigsPrefetchable, r.FuzzPrefetchable, r.UserPrefetchable),
			fmt.Sprintf("%d / %d / %d", r.Deps, r.FuzzDeps, r.UserDeps),
			fmt.Sprintf("%d / %d / %d", r.MaxChain, r.FuzzMaxChain, r.UserMaxChain),
		})
	}
	return "Table 3: signatures and dependencies (APPx / auto UI fuzzing / user study)\n" +
		table([]string{"App", "Unique sigs", "Prefetchable", "Dependencies", "Max chain"}, rows)
}

// CaseStudy reproduces the Figure 11/12 dependency case studies.
type CaseStudy struct {
	App   string
	Title string
	// Chain is the longest successive dependency chain (Figure 11).
	Chain []string
	// FanOut maps one predecessor to its successors (Figure 12).
	FanOutPred string
	FanOut     []string
}

// RunFig11 extracts DoorDash's successive chain.
func RunFig11() (*CaseStudy, error) {
	a := apps.DoorDash()
	g, err := static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
	if err != nil {
		return nil, err
	}
	return &CaseStudy{
		App:   a.APK.Manifest.Label,
		Title: "Figure 11: successive dependency chain",
		Chain: describeSigs(g, g.Chain()),
	}, nil
}

// RunFig12 extracts Wish's single-transaction fan-out.
func RunFig12() (*CaseStudy, error) {
	a := apps.Wish()
	g, err := static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
	if err != nil {
		return nil, err
	}
	// The predecessor with the most distinct successors is the Figure-12
	// "product detail" pivot.
	var best string
	bestN := -1
	for _, s := range g.Sigs {
		if n := len(g.Successors(s.ID)); n > bestN {
			best, bestN = s.ID, n
		}
	}
	cs := &CaseStudy{
		App:        a.APK.Manifest.Label,
		Title:      "Figure 12: multiple relationships on a single transaction",
		FanOutPred: describeSig(g, best),
	}
	for _, succ := range g.Successors(best) {
		for _, d := range g.DepsInto(succ) {
			if d.PredID == best {
				cs.FanOut = append(cs.FanOut,
					fmt.Sprintf("%s  (%s <- %s)", describeSig(g, succ), d.Loc, d.RespPath))
			}
		}
	}
	return cs, nil
}

func describeSig(g *sig.Graph, id string) string {
	if s := g.Sig(id); s != nil {
		return s.Method + " " + s.URI.String()
	}
	return id
}

func describeSigs(g *sig.Graph, ids []string) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = describeSig(g, id)
	}
	return out
}

// Render formats a case study.
func (c *CaseStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", c.Title, c.App)
	if len(c.Chain) > 0 {
		for i, s := range c.Chain {
			fmt.Fprintf(&b, "  %d. %s\n", i+1, s)
		}
	}
	if c.FanOutPred != "" {
		fmt.Fprintf(&b, "  predecessor: %s\n", c.FanOutPred)
		for _, s := range c.FanOut {
			fmt.Fprintf(&b, "    -> %s\n", s)
		}
	}
	return b.String()
}

// AblationRow is one (app, feature-set) analysis outcome.
type AblationRow struct {
	App      string
	Variant  string
	Sigs     int
	Deps     int
	MaxChain int
}

// Ablation quantifies the §4.1 Extractocol extensions (the DESIGN.md ablation
// experiment): analysis quality with each extension disabled.
type Ablation struct {
	Rows []AblationRow
}

// RunAblation analyzes every app under full features, each single-feature
// removal, and the no-extension baseline.
func RunAblation() (*Ablation, error) {
	variants := []struct {
		name  string
		feats static.Features
	}{
		{"full", static.AllFeatures()},
		{"no-intents", static.Features{Rx: true, Alias: true}},
		{"no-rx", static.Features{Intents: true, Alias: true}},
		{"no-alias", static.Features{Intents: true, Rx: true}},
		{"baseline", static.BaselineFeatures()},
	}
	out := &Ablation{}
	for _, a := range apps.All() {
		for _, v := range variants {
			g, err := static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: v.feats})
			if err != nil {
				return nil, fmt.Errorf("ablation: %s/%s: %w", a.Name, v.name, err)
			}
			out.Rows = append(out.Rows, AblationRow{
				App: a.Name, Variant: v.name,
				Sigs: len(g.Sigs), Deps: len(g.Deps), MaxChain: g.MaxChainLen(),
			})
		}
	}
	return out, nil
}

// Render formats the ablation table.
func (a *Ablation) Render() string {
	rows := make([][]string, 0, len(a.Rows))
	for _, r := range a.Rows {
		rows = append(rows, []string{r.App, r.Variant,
			fmt.Sprintf("%d", r.Sigs), fmt.Sprintf("%d", r.Deps), fmt.Sprintf("%d", r.MaxChain)})
	}
	return "Ablation: static-analysis extensions (§4.1)\n" +
		table([]string{"App", "Variant", "Sigs", "Deps", "Max chain"}, rows)
}
