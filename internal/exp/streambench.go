package exp

// Stream data-plane benchmark: time-to-first-byte through the pooled
// chunked body path versus the whole-body completion time (which is what
// TTFB used to be when the proxy buffered entire bodies before writing),
// plus the per-request allocation budget on the miss path. `appx-bench
// -experiment stream` renders the table and writes BENCH_stream.json.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sort"
	"time"

	"appx/internal/httpmsg"
	"appx/internal/proxy"
	"appx/internal/sig"
)

// StreamBench is the machine-readable result of the stream experiment.
type StreamBench struct {
	Seed int64 `json:"seed"`

	// TTFB phase: a slow origin (first bytes immediate, full body over
	// ~streamOriginSpan) served through the streaming data plane.
	Requests       int     `json:"requests"`
	P50TTFBMs      float64 `json:"p50_ttfb_ms"`
	P95TTFBMs      float64 `json:"p95_ttfb_ms"`
	P50BodyDoneMs  float64 `json:"p50_body_done_ms"`
	P95BodyDoneMs  float64 `json:"p95_body_done_ms"`
	BufferedTTFBMs float64 `json:"buffered_baseline_ttfb_ms"`

	// Alloc phase: full miss-path requests (fast origin) through small
	// chunks, so any per-chunk allocation would dominate.
	ChunkBytes  int     `json:"chunk_bytes"`
	BodyBytes   int     `json:"body_bytes"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

const (
	streamTTFBRequests  = 20
	streamAllocRequests = 50
	streamAllocChunk    = 4 << 10
	streamAllocBody     = 1 << 20
	streamOriginSpan    = 30 * time.Millisecond
)

// streamBenchGraph is a single literal prefetch-free signature, so every
// request exercises the full miss-path flight.
func streamBenchGraph() *sig.Graph {
	g := sig.NewGraph("bench")
	g.Add(&sig.Signature{ID: "bench:asset#0", Method: "GET", URI: sig.Literal("app.example/asset")})
	return g
}

// firstByteWriter is a discard ResponseWriter that stamps the first
// client-visible write.
type firstByteWriter struct {
	h     http.Header
	first time.Time
	n     int64
}

func (w *firstByteWriter) Header() http.Header { return w.h }
func (w *firstByteWriter) Flush()              {}
func (w *firstByteWriter) WriteHeader(int) {
	if w.first.IsZero() {
		w.first = time.Now()
	}
}
func (w *firstByteWriter) Write(p []byte) (int, error) {
	if w.first.IsZero() {
		w.first = time.Now()
	}
	w.n += int64(len(p))
	return len(p), nil
}

func streamBenchRequest() *http.Request {
	u, _ := url.Parse("http://app.example/asset")
	return &http.Request{Method: "GET", URL: u, Host: "app.example",
		Header: http.Header{}, RemoteAddr: "10.9.9.9:1"}
}

// RunStreamBench measures the streaming data plane. Deterministic apart
// from scheduler jitter; seed is recorded for provenance only.
func RunStreamBench(seed int64) (*StreamBench, error) {
	if seed == 0 {
		seed = 42
	}
	out := &StreamBench{Seed: seed, Requests: streamTTFBRequests,
		ChunkBytes: streamAllocChunk, BodyBytes: streamAllocBody}

	// Phase 1: TTFB under a slow origin. The origin writes its first KiB
	// immediately, then trickles the rest over streamOriginSpan; the old
	// buffered path could not answer before the trickle finished.
	slow := proxy.UpstreamFunc(func(_ context.Context, _ *httpmsg.Request) (*httpmsg.Response, error) {
		pr, pw := io.Pipe()
		go func() {
			chunk := bytes.Repeat([]byte("x"), 1024)
			pw.Write(chunk)
			for i := 0; i < 3; i++ {
				time.Sleep(streamOriginSpan / 3)
				pw.Write(chunk)
			}
			pw.Close()
		}()
		resp := &httpmsg.Response{Status: 200}
		resp.SetStream(pr)
		return resp, nil
	})
	px := proxy.New(proxy.Options{Graph: streamBenchGraph(), Upstream: slow, Workers: 1})
	var ttfbs, totals []float64
	for i := 0; i < streamTTFBRequests; i++ {
		w := &firstByteWriter{h: http.Header{}}
		start := time.Now()
		px.ServeHTTP(w, streamBenchRequest())
		totals = append(totals, float64(time.Since(start).Microseconds())/1e3)
		ttfbs = append(ttfbs, float64(w.first.Sub(start).Microseconds())/1e3)
	}
	px.Close()
	out.P50TTFBMs, out.P95TTFBMs = quantileMs(ttfbs, 0.5), quantileMs(ttfbs, 0.95)
	out.P50BodyDoneMs, out.P95BodyDoneMs = quantileMs(totals, 0.5), quantileMs(totals, 0.95)
	// The buffered baseline's first byte could only follow body completion.
	out.BufferedTTFBMs = out.P50BodyDoneMs

	// Phase 2: allocations per full miss-path request, small chunks so a
	// per-chunk alloc would show up ~256-fold.
	body := bytes.Repeat([]byte("b"), streamAllocBody)
	fast := proxy.UpstreamFunc(func(_ context.Context, _ *httpmsg.Request) (*httpmsg.Response, error) {
		resp := &httpmsg.Response{Status: 200}
		resp.SetStream(io.NopCloser(bytes.NewReader(body)))
		return resp, nil
	})
	px = proxy.New(proxy.Options{Graph: streamBenchGraph(), Upstream: fast, Workers: 1,
		StreamChunkBytes: streamAllocChunk, CaptureMaxBytes: 4 << 20})
	defer px.Close()
	serve := func() {
		w := &firstByteWriter{h: http.Header{}}
		px.ServeHTTP(w, streamBenchRequest())
	}
	for i := 0; i < 3; i++ {
		serve() // warm the chunk pool and per-signature state
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < streamAllocRequests; i++ {
		serve()
	}
	runtime.ReadMemStats(&m1)
	out.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / streamAllocRequests
	out.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / streamAllocRequests
	return out, nil
}

func quantileMs(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// WriteJSON writes the machine-readable result.
func (b *StreamBench) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Render formats the benchmark summary.
func (b *StreamBench) Render() string {
	rows := [][]string{
		{"TTFB (streamed)", fmt.Sprintf("%.2f ms", b.P50TTFBMs), fmt.Sprintf("%.2f ms", b.P95TTFBMs)},
		{"body complete", fmt.Sprintf("%.2f ms", b.P50BodyDoneMs), fmt.Sprintf("%.2f ms", b.P95BodyDoneMs)},
		{"TTFB (buffered baseline)", fmt.Sprintf("%.2f ms", b.BufferedTTFBMs), "-"},
	}
	head := fmt.Sprintf(
		"Stream data plane (seed %d): %d slow-origin requests; alloc phase %d×%dKiB bodies through %dB chunks\n"+
			"miss path: %.0f allocs/op, %.0f B/op (heap-accounted; excludes pooled chunks)\n",
		b.Seed, b.Requests, streamAllocRequests, b.BodyBytes>>10, b.ChunkBytes,
		b.AllocsPerOp, b.BytesPerOp)
	return head + table([]string{"metric", "p50", "p95"}, rows)
}
