package exp

import "testing"

// TestChaosSweepAcceptance pins the issue's acceptance bars: at least four
// distinct seeded schedules run against the 3-instance cluster with zero
// oracle violations and >= 99% availability (sheds excluded), and the
// slow-peer schedule must show hedged reads beating the unhedged control on
// fill p99. The margin is the injected 100ms stall, so the comparison holds
// under -race despite its slowdown.
func TestChaosSweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-instance chaos experiment")
	}
	res, err := RunChaosSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("only %d schedules ran, want >= 4", len(res.Rows))
	}
	if n := res.Violations(); n != 0 {
		t.Fatalf("%d oracle violations:\n%s", n, res.Render())
	}
	seen := map[string]ChaosSweepRow{}
	for _, r := range res.Rows {
		seen[r.Schedule] = r
		if r.Requests == 0 {
			t.Fatalf("%s: no workload driven", r.Schedule)
		}
		if r.Failures != 0 {
			t.Fatalf("%s: %d foreground failures", r.Schedule, r.Failures)
		}
		if r.Availability < 0.99 {
			t.Fatalf("%s: availability %.4f, acceptance bar is 0.99", r.Schedule, r.Availability)
		}
	}
	if df, ok := seen["diskfault"]; !ok || df.DiskFaults == 0 {
		t.Fatalf("diskfault schedule injected nothing: %+v", seen["diskfault"])
	}
	if sp, ok := seen["slowpeer"]; !ok || sp.Hedges == 0 || sp.HedgeWins == 0 {
		t.Fatalf("slowpeer schedule launched no winning hedges: %+v", seen["slowpeer"])
	}
	if res.HedgedFillP99Ms <= 0 || res.UnhedgedFillP99Ms <= 0 {
		t.Fatalf("fill p99 missing: hedged %.2f, unhedged %.2f", res.HedgedFillP99Ms, res.UnhedgedFillP99Ms)
	}
	if res.HedgedFillP99Ms >= res.UnhedgedFillP99Ms {
		t.Fatalf("hedged fill p99 %.2f ms did not beat unhedged %.2f ms",
			res.HedgedFillP99Ms, res.UnhedgedFillP99Ms)
	}
}
