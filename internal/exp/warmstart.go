package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"appx/internal/httpmsg"
	"appx/internal/persist"
	"appx/internal/proxy"
)

// WarmStartRow is one post-restart batch (one user session: feed open plus
// full catalog consumption) with the cache hit ratio that batch saw under
// each restart mode.
type WarmStartRow struct {
	Batch int
	// Warm: intact snapshot + disk tier on the same state directory.
	// Corrupt: every snapshot rung overwritten with garbage (cold start,
	// counted). Cold: fresh empty state directory (first boot).
	Warm, Corrupt, Cold float64
}

// WarmStart measures crash-recovery quality: the same trained proxy is
// "killed" (snapshot + flushed spill queue, no graceful handover) and
// restarted three ways. The warm restart should recover the pre-kill steady
// state almost immediately; the corrupt restart must degrade to exactly the
// cold curve — never to an error.
type WarmStart struct {
	Seed int64
	// SteadyState is the pre-kill hit ratio of a fully warmed user session.
	SteadyState float64
	// Outcome per restart mode, as reported by the proxy ("restored",
	// "failed", "cold").
	WarmOutcome, CorruptOutcome, ColdOutcome string
	// RecoveredPct is the first post-restart batch's warm hit ratio over the
	// pre-kill steady state — the issue's ≥80% acceptance criterion.
	RecoveredPct float64
	Rows         []WarmStartRow
}

const warmstartBatches = 4

// RunWarmStart runs the experiment. Deterministic: frozen clock, fixed
// catalog, and a single prefetch worker per proxy.
func RunWarmStart(seed int64) (*WarmStart, error) {
	if seed == 0 {
		seed = 42
	}
	out := &WarmStart{Seed: seed}

	root, err := os.MkdirTemp("", "appx-warmstart-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	// Three identically trained state directories, then three restart modes.
	dirs := map[string]string{}
	for _, mode := range []string{"warm", "corrupt", "cold"} {
		dir := filepath.Join(root, mode)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		dirs[mode] = dir
		if mode == "cold" {
			continue // the cold baseline starts from an empty directory
		}
		steady, err := warmstartTrain(dir)
		if err != nil {
			return nil, fmt.Errorf("warmstart train (%s): %w", mode, err)
		}
		out.SteadyState = steady
	}
	for _, name := range []string{persist.SnapshotFile, persist.SnapshotPrevFile} {
		path := filepath.Join(dirs["corrupt"], name)
		if _, err := os.Stat(path); err == nil {
			if err := os.WriteFile(path, []byte("garbage, not an envelope"), 0o644); err != nil {
				return nil, err
			}
		}
	}

	curves := map[string][]float64{}
	for _, mode := range []string{"warm", "corrupt", "cold"} {
		curve, outcome, err := warmstartReplay(dirs[mode])
		if err != nil {
			return nil, fmt.Errorf("warmstart replay (%s): %w", mode, err)
		}
		curves[mode] = curve
		switch mode {
		case "warm":
			out.WarmOutcome = outcome
		case "corrupt":
			out.CorruptOutcome = outcome
		case "cold":
			out.ColdOutcome = outcome
		}
	}
	for i := 0; i < warmstartBatches; i++ {
		out.Rows = append(out.Rows, WarmStartRow{
			Batch:   i + 1,
			Warm:    curves["warm"][i],
			Corrupt: curves["corrupt"][i],
			Cold:    curves["cold"][i],
		})
	}
	if out.SteadyState > 0 {
		out.RecoveredPct = curves["warm"][0] / out.SteadyState
	}
	return out, nil
}

// warmstartUpstream serves the cachesweep catalog: a feed of ids fanning out
// into fixed-size assets.
func warmstartUpstream() proxy.UpstreamFunc {
	return func(_ context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Path == "/feed" {
			ids := make([]string, cacheCatalog)
			for i := range ids {
				ids[i] = fmt.Sprintf("a%d", i)
			}
			body, _ := json.Marshal(map[string]any{"ids": ids})
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   body}, nil
		}
		return &httpmsg.Response{Status: 200, Body: bytes.Repeat([]byte("x"), cacheAssetSize)}, nil
	}
}

func warmstartProxy(dir string) *proxy.Proxy {
	g := cacheSweepGraph()
	now := time.Unix(1_700_000_000, 0)
	return proxy.New(proxy.Options{Graph: g, Upstream: warmstartUpstream(), Workers: 1,
		StateDir: dir,
		Now:      func() time.Time { return now },
	})
}

// warmstartSession drives one user through a feed open and the full catalog,
// returning the hit ratio of just that session.
func warmstartSession(px *proxy.Proxy, user string) (float64, error) {
	get := func(path, id string) error {
		req := &httpmsg.Request{Method: "GET", Host: "app.example", Path: path,
			Header: []httpmsg.Field{{Key: "X-Appx-User", Value: user}}}
		if id != "" {
			req.Query = []httpmsg.Field{{Key: "id", Value: id}}
		}
		_, err := httpmsg.ServeViaHandler(px, req)
		return err
	}
	before := px.Stats().Snapshot()
	if err := get("/feed", ""); err != nil {
		return 0, err
	}
	px.Drain()
	for j := 0; j < cacheCatalog; j++ {
		if err := get("/asset", fmt.Sprintf("a%d", j)); err != nil {
			return 0, err
		}
	}
	px.Drain()
	after := px.Stats().Snapshot()
	lookups := (after.Hits - before.Hits) + (after.Misses - before.Misses)
	if lookups == 0 {
		return 0, nil
	}
	return float64(after.Hits-before.Hits) / float64(lookups), nil
}

// warmstartTrain warms a proxy on dir, measures the steady-state session hit
// ratio, then "kills" it: snapshot, flush the spill queue, abandon. Returns
// the steady-state ratio.
func warmstartTrain(dir string) (float64, error) {
	px := warmstartProxy(dir)
	defer px.Close()

	// Teach the asset exemplar with one live request, then warm with two
	// sessions; the third is the measured steady state.
	seedReq := &httpmsg.Request{Method: "GET", Host: "app.example", Path: "/asset",
		Header: []httpmsg.Field{{Key: "X-Appx-User", Value: "t1"}},
		Query:  []httpmsg.Field{{Key: "id", Value: "seed"}}}
	if _, err := httpmsg.ServeViaHandler(px, seedReq); err != nil {
		return 0, err
	}
	var steady float64
	for i := 1; i <= 3; i++ {
		r, err := warmstartSession(px, fmt.Sprintf("t%d", i))
		if err != nil {
			return 0, err
		}
		steady = r
	}
	if err := px.SnapshotNow(); err != nil {
		return 0, err
	}
	px.DiskTier().Flush()
	return steady, nil
}

// warmstartReplay boots a proxy on dir and replays fresh user sessions,
// returning the per-batch hit-ratio curve and the restore outcome.
func warmstartReplay(dir string) ([]float64, string, error) {
	px := warmstartProxy(dir)
	defer px.Close()
	curve := make([]float64, 0, warmstartBatches)
	for i := 1; i <= warmstartBatches; i++ {
		r, err := warmstartSession(px, fmt.Sprintf("r%d", i))
		if err != nil {
			return nil, "", err
		}
		curve = append(curve, r)
	}
	return curve, px.RestoreOutcome(), nil
}

// Render formats the recovery curves.
func (w *WarmStart) Render() string {
	rows := make([][]string, 0, len(w.Rows))
	for _, r := range w.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Batch),
			fmtPct(r.Warm),
			fmtPct(r.Corrupt),
			fmtPct(r.Cold),
		})
	}
	head := fmt.Sprintf(
		"Warm-restart recovery (seed %d): post-kill hit ratio per session batch\n"+
			"pre-kill steady state %s; first warm batch recovers %s of it\n"+
			"restore outcomes: warm=%q corrupt=%q cold=%q\n",
		w.Seed, fmtPct(w.SteadyState), fmtPct(w.RecoveredPct),
		w.WarmOutcome, w.CorruptOutcome, w.ColdOutcome)
	return head + table([]string{"batch", "warm restart", "corrupt snapshot", "cold start"}, rows)
}
