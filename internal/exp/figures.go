package exp

import (
	"fmt"
	"strings"
	"time"

	"appx/internal/apps"
	"appx/internal/config"
	"appx/internal/lab"
	"appx/internal/metrics"
)

// MicroRow is one app's Orig-vs-APPx microbenchmark result (Figures 13/14).
type MicroRow struct {
	App string

	OrigTotal, OrigNetwork, OrigProcessing time.Duration
	AppxTotal, AppxNetwork, AppxProcessing time.Duration
	Reduction                              float64
}

// Micro holds a Figure-13 or Figure-14 style result set.
type Micro struct {
	Title string
	Rows  []MicroRow
}

// RunFig13 measures the main interaction's user-perceived latency per app,
// with and without prefetching, against the Table-2 origin RTTs. Each
// APPx measurement is taken in the warmed state (one prior interaction has
// taught the proxy the run-time values, as in steady-state use).
func RunFig13(p Params) (*Micro, error) {
	return runMicro(p, "Figure 13: main-interaction user-perceived latency", measureMain)
}

// RunFig14 measures app-launch latency per app (cold launches; the proxy
// accelerates the thumbnail fan-out while the feed is still rendering).
func RunFig14(p Params) (*Micro, error) {
	return runMicro(p, "Figure 14: app-launch user-perceived latency", measureLaunch)
}

type microMeasure func(p Params, l *lab.Lab, run int) (time.Duration, time.Duration, error)

func runMicro(p Params, title string, measure microMeasure) (*Micro, error) {
	p.Fill()
	out := &Micro{Title: title}
	for _, a := range apps.All() {
		row := MicroRow{App: a.APK.Manifest.Label}
		for _, prefetch := range []bool{false, true} {
			l, err := lab.New(lab.Options{App: a, Scale: p.Scale, Prefetch: prefetch})
			if err != nil {
				return nil, err
			}
			var totals, nets []time.Duration
			for run := 0; run < p.Runs; run++ {
				total, net, err := measure(p, l, run)
				if err != nil {
					l.Close()
					return nil, fmt.Errorf("%s (prefetch=%v): %w", a.Name, prefetch, err)
				}
				totals = append(totals, l.Unscale(total))
				nets = append(nets, l.Unscale(net))
			}
			l.Close()
			total := metrics.NewDigest(totals).Mean()
			net := metrics.NewDigest(nets).Mean()
			if prefetch {
				row.AppxTotal, row.AppxNetwork, row.AppxProcessing = total, net, total-net
			} else {
				row.OrigTotal, row.OrigNetwork, row.OrigProcessing = total, net, total-net
			}
		}
		row.Reduction = metrics.Reduction(row.OrigTotal, row.AppxTotal)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// measureMain: one device per run; launch, warm-up interaction, back, then
// the measured main interaction on a different item.
func measureMain(p Params, l *lab.Lab, run int) (time.Duration, time.Duration, error) {
	d, err := l.NewDevice(fmt.Sprintf("fig13-u%d", run))
	if err != nil {
		return 0, 0, err
	}
	if _, err := d.Launch(); err != nil {
		return 0, 0, err
	}
	if _, err := d.TapMain(0); err != nil {
		return 0, 0, err
	}
	d.Back()
	l.Proxy.Drain()
	m, err := d.TapMain(1 + run%4)
	if err != nil {
		return 0, 0, err
	}
	return m.Total, m.Network, nil
}

// measureLaunch: a fresh user each run, cold launch.
func measureLaunch(p Params, l *lab.Lab, run int) (time.Duration, time.Duration, error) {
	d, err := l.NewDevice(fmt.Sprintf("fig14-u%d", run))
	if err != nil {
		return 0, 0, err
	}
	m, err := d.Launch()
	if err != nil {
		return 0, 0, err
	}
	return m.Total, m.Network, nil
}

// Render formats a microbenchmark in the paper's stacked-bar style.
func (m *Micro) Render() string {
	rows := make([][]string, 0, len(m.Rows))
	for _, r := range m.Rows {
		rows = append(rows, []string{
			r.App,
			fmtMS(r.OrigTotal), fmtMS(r.OrigNetwork), fmtMS(r.OrigProcessing),
			fmtMS(r.AppxTotal), fmtMS(r.AppxNetwork), fmtMS(r.AppxProcessing),
			fmtPct(r.Reduction),
		})
	}
	return m.Title + "\n" + table(
		[]string{"App", "Orig", "net", "proc", "APPx", "net", "proc", "saved"}, rows)
}

// RTTSweepRow is one (app, RTT) pair of Figure 15. The paper plots the
// 90th percentile; the median is reported alongside because at small study
// sizes the p90 lands on cold-start samples and is noisy run-to-run.
type RTTSweepRow struct {
	App string
	RTT time.Duration

	OrigP90, AppxP90 time.Duration
	Reduction        float64
	OrigMed, AppxMed time.Duration
	MedReduction     float64
}

// RTTSweep reproduces Figure 15: 90th-percentile main-interaction latency
// over the user-study workload while the proxy↔origin RTT varies.
type RTTSweep struct {
	Rows []RTTSweepRow
	// Runs holds the underlying per-configuration study results, reused by
	// Figure 16.
	Runs map[string]map[time.Duration][2]*studyRun // app → rtt → [orig, appx]
}

// DefaultRTTs are the paper's sweep points.
func DefaultRTTs() []time.Duration {
	return []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 150 * time.Millisecond}
}

// RunFig15 replays the user study at each RTT with and without prefetching.
func RunFig15(p Params, rtts []time.Duration) (*RTTSweep, error) {
	p.Fill()
	if len(rtts) == 0 {
		rtts = DefaultRTTs()
	}
	out := &RTTSweep{Runs: map[string]map[time.Duration][2]*studyRun{}}
	for _, a := range apps.All() {
		out.Runs[a.Name] = map[time.Duration][2]*studyRun{}
		for _, rtt := range rtts {
			orig, err := runStudy(p, a, rtt, false)
			if err != nil {
				return nil, fmt.Errorf("fig15: %s orig@%v: %w", a.Name, rtt, err)
			}
			appx, err := runStudy(p, a, rtt, true)
			if err != nil {
				return nil, fmt.Errorf("fig15: %s appx@%v: %w", a.Name, rtt, err)
			}
			out.Runs[a.Name][rtt] = [2]*studyRun{orig, appx}
			od := metrics.NewDigest(orig.MainLatencies)
			ad := metrics.NewDigest(appx.MainLatencies)
			op90, omed := od.Quantile(0.9), od.Median()
			ap90, amed := ad.Quantile(0.9), ad.Median()
			out.Rows = append(out.Rows, RTTSweepRow{
				App: a.APK.Manifest.Label, RTT: rtt,
				OrigP90: op90, AppxP90: ap90,
				Reduction: metrics.Reduction(op90, ap90),
				OrigMed:   omed, AppxMed: amed,
				MedReduction: metrics.Reduction(omed, amed),
			})
		}
	}
	return out, nil
}

// Render formats Figure 15.
func (s *RTTSweep) Render() string {
	rows := make([][]string, 0, len(s.Rows))
	for _, r := range s.Rows {
		rows = append(rows, []string{
			r.App, fmtMS(r.RTT),
			fmtMS(r.OrigP90), fmtMS(r.AppxP90), fmtPct(r.Reduction),
			fmtMS(r.OrigMed), fmtMS(r.AppxMed), fmtPct(r.MedReduction),
		})
	}
	return "Figure 15: main-interaction latency vs proxy<->origin RTT (p90 as in the paper; median for stability)\n" +
		table([]string{"App", "RTT", "Orig p90", "APPx p90", "saved", "Orig med", "APPx med", "saved"}, rows)
}

// CDFRow is one (app, RTT) distribution comparison of Figure 16.
type CDFRow struct {
	App string
	RTT time.Duration

	OrigMedian, AppxMedian time.Duration
	MedianReduction        float64
	OrigCDF, AppxCDF       []metrics.CDFPoint
	DataUsage              float64
	UsedPrefetchRatio      float64
}

// CDFResult reproduces Figure 16.
type CDFResult struct {
	Rows []CDFRow
}

// RunFig16 derives the latency CDFs and normalized data usage from the
// Figure-15 study runs (the paper draws both from the same replays).
func RunFig16(p Params, sweep *RTTSweep, rtts []time.Duration) (*CDFResult, error) {
	p.Fill()
	if sweep == nil {
		var err error
		sweep, err = RunFig15(p, rtts)
		if err != nil {
			return nil, err
		}
	}
	if len(rtts) == 0 {
		rtts = DefaultRTTs()
	}
	out := &CDFResult{}
	for _, a := range apps.All() {
		for _, rtt := range rtts {
			pair, ok := sweep.Runs[a.Name][rtt]
			if !ok {
				continue
			}
			orig, appx := pair[0], pair[1]
			od := metrics.NewDigest(orig.MainLatencies)
			ad := metrics.NewDigest(appx.MainLatencies)
			om, am := od.Median(), ad.Median()
			out.Rows = append(out.Rows, CDFRow{
				App: a.APK.Manifest.Label, RTT: rtt,
				OrigMedian: om, AppxMedian: am,
				MedianReduction:   metrics.Reduction(om, am),
				OrigCDF:           od.CDF(10),
				AppxCDF:           ad.CDF(10),
				DataUsage:         appx.DataUsage,
				UsedPrefetchRatio: appx.UsedPrefetchRatio,
			})
		}
	}
	return out, nil
}

// Render formats Figure 16 (medians, deciles, data usage).
func (c *CDFResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 16: latency CDF medians and normalized data usage\n")
	rows := make([][]string, 0, len(c.Rows))
	for _, r := range c.Rows {
		rows = append(rows, []string{
			r.App, fmtMS(r.RTT),
			fmtMS(r.OrigMedian), fmtMS(r.AppxMedian), fmtPct(r.MedianReduction),
			fmt.Sprintf("%.2fx", r.DataUsage),
			fmt.Sprintf("%.1f%%", r.UsedPrefetchRatio*100),
		})
	}
	b.WriteString(table([]string{"App", "RTT", "Orig med", "APPx med", "saved", "data usage", "prefetch used"}, rows))
	b.WriteString("\nCDF deciles (ms), orig vs appx:\n")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "  %-13s @%-6s orig:", r.App, fmtMS(r.RTT))
		for _, pt := range r.OrigCDF {
			fmt.Fprintf(&b, " %d", pt.Latency.Milliseconds())
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "  %-13s %-7s appx:", "", "")
		for _, pt := range r.AppxCDF {
			fmt.Fprintf(&b, " %d", pt.Latency.Milliseconds())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TradeoffRow is one probability point of Figure 17.
type TradeoffRow struct {
	Probability float64
	Median      time.Duration
	DataUsage   float64
}

// Tradeoff reproduces Figure 17: the latency/data-usage knob on Wish.
type Tradeoff struct {
	Rows []TradeoffRow
}

// DefaultProbabilities are the paper's sweep points.
func DefaultProbabilities() []float64 { return []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0} }

// RunFig17 sweeps the global prefetch probability on Wish and reports
// median main-interaction latency and normalized data usage.
func RunFig17(p Params, probs []float64) (*Tradeoff, error) {
	p.Fill()
	if len(probs) == 0 {
		probs = DefaultProbabilities()
	}
	a := apps.Wish()
	out := &Tradeoff{}
	for _, prob := range probs {
		prob := prob
		l, err := lab.New(lab.Options{
			App: a, Scale: p.Scale, Prefetch: prob > 0,
			Configure: func(c *config.Config) { c.GlobalProbability = prob },
		})
		if err != nil {
			return nil, err
		}
		run, err := replayInLab(p, l)
		l.Close()
		if err != nil {
			return nil, fmt.Errorf("fig17 p=%.2f: %w", prob, err)
		}
		out.Rows = append(out.Rows, TradeoffRow{
			Probability: prob,
			Median:      metrics.NewDigest(run.MainLatencies).Median(),
			DataUsage:   run.DataUsage,
		})
	}
	return out, nil
}

// replayInLab runs the user study against an existing lab (runStudy variant
// for pre-configured labs).
func replayInLab(p Params, l *lab.Lab) (*studyRun, error) {
	return replayStudy(p, l)
}

// Render formats Figure 17.
func (t *Tradeoff) Render() string {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", r.Probability*100),
			fmtMS(r.Median),
			fmt.Sprintf("%.2fx", r.DataUsage),
		})
	}
	return "Figure 17: latency vs data usage as prefetch probability varies (Wish)\n" +
		table([]string{"Probability", "Median latency", "Data usage"}, rows)
}
