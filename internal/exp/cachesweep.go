package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"appx/internal/config"
	"appx/internal/httpmsg"
	"appx/internal/proxy"
	"appx/internal/sig"
)

// CacheSweepRow is one user-count point of the shared-cache sweep.
type CacheSweepRow struct {
	// Users is the number of emulated users driving the same catalog.
	Users int
	// HitRatio is the proxy-wide cache hit ratio at this user count.
	HitRatio float64
	// SharedHitRatio is the fraction of hits served from the cross-user
	// shared tier.
	SharedHitRatio float64
	// OriginBytes counts response bytes leaving the origin with the shared
	// tier enabled; NoShareBytes is the same workload with the tier
	// disabled (every user prefetches their own copies).
	OriginBytes, NoShareBytes int64
	// SavedPct is the origin-byte saving the shared tier buys:
	// 1 - OriginBytes/NoShareBytes.
	SavedPct float64
}

// CacheSweep measures how the cross-user shared cache tier scales: the same
// public catalog driven by a growing number of emulated users, once with the
// shared tier and once without. The paper's prototype caches strictly per
// user, so its origin traffic grows linearly with users; the shared tier
// caches user-agnostic responses once, so its saving grows with every user
// added.
type CacheSweep struct {
	Seed int64
	Rows []CacheSweepRow
}

// DefaultCacheUserCounts are the sweep points.
func DefaultCacheUserCounts() []int {
	return []int{1, 2, 4, 8, 16}
}

const (
	cacheCatalog   = 8    // assets fanned out of one feed response
	cacheAssetSize = 2000 // bytes per asset response
)

// cacheSweepGraph builds the one-host fan-out: a feed whose ids feed asset
// fetches. Both signatures are free of per-user wildcards, so the assets
// are shared-tier eligible.
func cacheSweepGraph() *sig.Graph {
	g := sig.NewGraph("cachesweep")
	pred := &sig.Signature{ID: "cw:feed#0", Method: "GET", URI: sig.Literal("app.example/feed")}
	succ := &sig.Signature{ID: "cw:asset#0", Method: "GET", URI: sig.Literal("app.example/asset"),
		Query: []sig.Field{{Key: "id", Value: sig.DepValue(pred.ID, "ids[*]")}}}
	g.Add(pred)
	g.Add(succ)
	g.AddDep(sig.Dependency{PredID: pred.ID, SuccID: succ.ID, RespPath: "ids[*]",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})
	return g
}

// RunCacheSweep runs the sweep. Every point is fully deterministic: a frozen
// clock, a seeded probability stream, and a single prefetch worker.
func RunCacheSweep(seed int64, userCounts []int) (*CacheSweep, error) {
	if seed == 0 {
		seed = 42
	}
	if len(userCounts) == 0 {
		userCounts = DefaultCacheUserCounts()
	}
	out := &CacheSweep{Seed: seed}
	for _, n := range userCounts {
		shared, hitRatio, sharedRatio, err := runCachePoint(seed, n, false)
		if err != nil {
			return nil, fmt.Errorf("cachesweep@%d users: %w", n, err)
		}
		solo, _, _, err := runCachePoint(seed, n, true)
		if err != nil {
			return nil, fmt.Errorf("cachesweep@%d users (no share): %w", n, err)
		}
		saved := 0.0
		if solo > 0 {
			saved = 1 - float64(shared)/float64(solo)
		}
		out.Rows = append(out.Rows, CacheSweepRow{
			Users:          n,
			HitRatio:       hitRatio,
			SharedHitRatio: sharedRatio,
			OriginBytes:    shared,
			NoShareBytes:   solo,
			SavedPct:       saved,
		})
	}
	return out, nil
}

// runCachePoint drives one (user count, tier on/off) configuration and
// reports the origin bytes it cost.
func runCachePoint(seed int64, users int, disableShared bool) (originBytes int64, hitRatio, sharedRatio float64, err error) {
	g := cacheSweepGraph()
	cfg := config.Default(g)
	if disableShared {
		cc := cfg.EffectiveCache()
		cc.DisableSharedTier = true
		cfg.Cache = &cc
	}

	var origin atomic.Int64
	up := proxy.UpstreamFunc(func(_ context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		if r.Path == "/feed" {
			ids := make([]string, cacheCatalog)
			for i := range ids {
				ids[i] = fmt.Sprintf("a%d", i)
			}
			body, _ := json.Marshal(map[string]any{"ids": ids})
			origin.Add(int64(len(body)))
			return &httpmsg.Response{Status: 200,
				Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}},
				Body:   body}, nil
		}
		body := bytes.Repeat([]byte("x"), cacheAssetSize)
		origin.Add(int64(len(body)))
		return &httpmsg.Response{Status: 200, Body: body}, nil
	})

	now := time.Unix(1_700_000_000, 0)
	rnd := rand.New(rand.NewSource(seed))
	px := proxy.New(proxy.Options{Graph: g, Config: cfg, Upstream: up, Workers: 1,
		Now:  func() time.Time { return now },
		Rand: rnd.Float64,
	})
	defer px.Close()

	get := func(user, path, id string) error {
		req := &httpmsg.Request{Method: "GET", Host: "app.example", Path: path,
			Header: []httpmsg.Field{{Key: "X-Appx-User", Value: user}}}
		if id != "" {
			req.Query = []httpmsg.Field{{Key: "id", Value: id}}
		}
		_, err := httpmsg.ServeViaHandler(px, req)
		return err
	}

	// The first user's live asset request teaches the exemplar; each user
	// then opens the feed (always a live fetch — the feed is a root
	// signature) and consumes the catalog in two halves with a drain
	// between. With the shared tier, every user past the first consumes
	// entirely from the first fan-out. Without it, a later user's fan-out
	// waits on their own exemplar (taught by their first live miss), so
	// their first half misses and their second half hits their private
	// prefetch — per-user caching works, but refetches the catalog per
	// user.
	if err := get("u1", "/asset", "seed"); err != nil {
		return 0, 0, 0, err
	}
	for i := 1; i <= users; i++ {
		u := fmt.Sprintf("u%d", i)
		if err := get(u, "/feed", ""); err != nil {
			return 0, 0, 0, err
		}
		px.Drain()
		for j := 0; j < cacheCatalog/2; j++ {
			if err := get(u, "/asset", fmt.Sprintf("a%d", j)); err != nil {
				return 0, 0, 0, err
			}
		}
		px.Drain()
		for j := cacheCatalog / 2; j < cacheCatalog; j++ {
			if err := get(u, "/asset", fmt.Sprintf("a%d", j)); err != nil {
				return 0, 0, 0, err
			}
		}
	}

	snap := px.Stats().Snapshot()
	return origin.Load(), snap.HitRatio(), snap.SharedHitRatio(), nil
}

// Render formats the cache sweep.
func (c *CacheSweep) Render() string {
	rows := make([][]string, 0, len(c.Rows))
	for _, r := range c.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Users),
			fmtPct(r.HitRatio),
			fmtPct(r.SharedHitRatio),
			fmt.Sprintf("%.1f", float64(r.OriginBytes)/1000),
			fmt.Sprintf("%.1f", float64(r.NoShareBytes)/1000),
			fmtPct(r.SavedPct),
		})
	}
	return fmt.Sprintf("Shared-cache sweep (seed %d): one public catalog, growing user count\n", c.Seed) +
		table([]string{"users", "hit ratio", "shared hits", "origin KB", "no-share KB", "origin saved"}, rows)
}
