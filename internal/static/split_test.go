package static

import (
	"testing"

	"appx/internal/air"
	"appx/internal/sig"
)

func TestSplitURLPlainLiteral(t *testing.T) {
	uri, query := splitURL([]AVal{ALit{S: "http://api.example/path/sub"}})
	if uri.String() != "api.example/path/sub" {
		t.Fatalf("uri = %q", uri.String())
	}
	if len(query) != 0 {
		t.Fatalf("query = %v", query)
	}
}

func TestSplitURLEmbeddedQueryWithDynamicTail(t *testing.T) {
	// "http://h/img?cid=" + <dep> — the Figure 3(a) thumbnail pattern.
	uri, query := splitURL([]AVal{
		ALit{S: "http://img.example/img?cid="},
		ARespField{Pred: "p", Path: "items[*].id"},
	})
	if uri.String() != "img.example/img" {
		t.Fatalf("uri = %q", uri.String())
	}
	if len(query) != 1 || query[0].key != "cid" {
		t.Fatalf("query = %+v", query)
	}
	pat := toPattern(query[0].val)
	if !pat.HasDep() {
		t.Fatalf("cid value lost the dependency: %+v", pat)
	}
}

func TestSplitURLMultipleParams(t *testing.T) {
	uri, query := splitURL([]AVal{
		ALit{S: "https://h.example/s?a=1&b="},
		AWild{Origin: "x"},
		ALit{S: "&c=3"},
	})
	if uri.String() != "h.example/s" {
		t.Fatalf("uri = %q", uri.String())
	}
	if len(query) != 3 {
		t.Fatalf("query = %+v", query)
	}
	if query[0].key != "a" || query[1].key != "b" || query[2].key != "c" {
		t.Fatalf("keys = %s %s %s", query[0].key, query[1].key, query[2].key)
	}
	if lit, ok := toPattern(query[2].val).IsLiteral(); !ok || lit != "3" {
		t.Fatalf("c = %+v", toPattern(query[2].val))
	}
	if _, isLit := toPattern(query[1].val).IsLiteral(); isLit {
		t.Fatal("b should be dynamic")
	}
}

func TestSplitURLDynamicHost(t *testing.T) {
	// Fully response-derived URL: a single dep part.
	uri, query := splitURL([]AVal{ARespField{Pred: "p", Path: "data.url"}})
	if len(uri.Parts) != 1 || uri.Parts[0].Kind != sig.Dep {
		t.Fatalf("uri = %+v", uri)
	}
	if len(query) != 0 {
		t.Fatalf("query = %v", query)
	}
}

func TestSplitURLEmpty(t *testing.T) {
	uri, _ := splitURL(nil)
	if uri.String() != ".*" {
		t.Fatalf("empty url pattern = %q", uri.String())
	}
}

func TestIfNullBranching(t *testing.T) {
	// if-null on a literal never jumps; on an unknown it forks — a field
	// set only on the null arm must be optional.
	pb := air.NewProgramBuilder()
	c := pb.Class("N", air.KindActivity)
	m := c.Method("go", 0)
	nullArm := m.Block()
	done := m.Block()
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("POST"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://x.example/send"))
	maybe := m.CallAPI(air.APIIntentGet, m.ConstStr("missing-key"))
	m.IfNull(maybe, nullArm)
	m.CallAPI(air.APIHTTPSetBodyField, req, m.ConstStr("present"), m.ConstStr("1"))
	m.Goto(done)
	m.Enter(nullArm)
	m.CallAPI(air.APIHTTPSetBodyField, req, m.ConstStr("fallback"), m.ConstStr("1"))
	m.Goto(done)
	m.Enter(done)
	m.CallAPI(air.APIHTTPExecute, req)
	m.Done()

	g, err := Analyze(pb.MustBuild(), "t", []string{"N.go"}, Options{Features: AllFeatures()})
	if err != nil {
		t.Fatal(err)
	}
	s := g.Sig("t:N.go#0")
	if s == nil {
		t.Fatal("missing signature")
	}
	found := map[string]bool{}
	for _, f := range s.BodyForm {
		found[f.Key] = f.Optional
	}
	opt, ok := found["present"]
	if !ok || !opt {
		t.Fatalf("'present' = optional %v, ok %v (want optional)", opt, ok)
	}
	opt, ok = found["fallback"]
	if !ok || !opt {
		t.Fatalf("'fallback' = optional %v, ok %v (want optional)", opt, ok)
	}
}

func TestMapGetOnResponseDoc(t *testing.T) {
	// map-get on a parsed response document records the field access just
	// like json.get.
	pb := air.NewProgramBuilder()
	c := pb.Class("M", air.KindActivity)
	m := c.Method("go", 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://x.example/feed"))
	resp := m.CallAPI(air.APIHTTPExecute, req)
	body := m.CallAPI(air.APIHTTPRespBody, resp)
	id := m.MapGet(body, "top_id")
	req2 := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, req2, m.ConstStr("http://x.example/item"))
	m.CallAPI(air.APIHTTPAddQuery, req2, m.ConstStr("id"), id)
	m.CallAPI(air.APIHTTPExecute, req2)
	m.Done()

	g, err := Analyze(pb.MustBuild(), "t", []string{"M.go"}, Options{Features: AllFeatures()})
	if err != nil {
		t.Fatal(err)
	}
	deps := g.DepsInto("t:M.go#1")
	if len(deps) != 1 || deps[0].RespPath != "top_id" {
		t.Fatalf("map-get dep = %+v", deps)
	}
}

func TestMethodFromNonLiteralDefaultsGET(t *testing.T) {
	pb := air.NewProgramBuilder()
	c := pb.Class("D", air.KindActivity)
	m := c.Method("go", 0)
	dyn := m.CallAPI(air.APIDeviceLocale)
	req := m.CallAPI(air.APIHTTPNewRequest, dyn)
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://x.example/dyn"))
	m.CallAPI(air.APIHTTPExecute, req)
	m.Done()
	g, err := Analyze(pb.MustBuild(), "t", []string{"D.go"}, Options{Features: AllFeatures()})
	if err != nil {
		t.Fatal(err)
	}
	if s := g.Sig("t:D.go#0"); s == nil || s.Method != "GET" {
		t.Fatalf("dynamic-method signature = %+v", s)
	}
}

func TestForkBudgetDegradesGracefully(t *testing.T) {
	// Deep branch ladders exceed the fork budget; the analyzer must still
	// terminate and produce the signature.
	pb := air.NewProgramBuilder()
	c := pb.Class("F", air.KindActivity)
	m := c.Method("go", 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("POST"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://x.example/send"))
	done := m.Block()
	for i := 0; i < 24; i++ {
		arm := m.Block()
		cont := m.Block()
		flag := m.CallAPI(air.APIDeviceFlag, m.ConstStr("f"))
		m.If(flag, arm)
		m.Goto(cont)
		m.Enter(arm)
		m.CallAPI(air.APIHTTPSetBodyField, req, m.ConstStr("opt"), m.ConstStr("1"))
		m.Goto(cont)
		m.Enter(cont)
	}
	m.Goto(done)
	m.Enter(done)
	m.CallAPI(air.APIHTTPExecute, req)
	m.Done()

	g, err := Analyze(pb.MustBuild(), "t", []string{"F.go"}, Options{Features: AllFeatures(), MaxForks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if g.Sig("t:F.go#0") == nil {
		t.Fatal("signature lost under fork budget")
	}
}

func TestHeapListJoinInForEach(t *testing.T) {
	// A heap list built from response fields: for-each over it must carry
	// the dependency into the handler.
	pb := air.NewProgramBuilder()
	c := pb.Class("L", air.KindActivity)

	h := c.Method("loadItem", 1)
	req := h.CallAPI(air.APIHTTPNewRequest, h.ConstStr("GET"))
	h.CallAPI(air.APIHTTPSetURL, req, h.ConstStr("http://x.example/item"))
	h.CallAPI(air.APIHTTPAddQuery, req, h.ConstStr("id"), h.Param(0))
	h.CallAPI(air.APIHTTPExecute, req)
	h.Done()

	m := c.Method("go", 0)
	freq := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, freq, m.ConstStr("http://x.example/feed"))
	resp := m.CallAPI(air.APIHTTPExecute, freq)
	body := m.CallAPI(air.APIHTTPRespBody, resp)
	a := m.CallAPI(air.APIJSONGet, body, m.ConstStr("top.id"))
	b := m.CallAPI(air.APIJSONGet, body, m.ConstStr("alt.id"))
	list := m.NewList()
	m.ListAdd(list, a)
	m.ListAdd(list, b)
	m.ForEach(list, "L.loadItem")
	m.Done()

	g, err := Analyze(pb.MustBuild(), "t", []string{"L.go"}, Options{Features: AllFeatures()})
	if err != nil {
		t.Fatal(err)
	}
	deps := g.DepsInto("t:L.loadItem#0")
	// The two list elements join; the dep reference survives (either path).
	if len(deps) != 1 {
		t.Fatalf("deps = %+v", deps)
	}
}

func TestStepBudgetDegradesGracefully(t *testing.T) {
	// A tiny step budget: analysis must not error out, only under-report.
	prog := buildFeedDetail(t)
	g, err := Analyze(prog, "t", []string{"Main.launch"}, Options{Features: AllFeatures(), MaxSteps: 10})
	if err != nil {
		t.Fatalf("Analyze with tiny budget: %v", err)
	}
	full, err := Analyze(prog, "t", []string{"Main.launch"}, Options{Features: AllFeatures()})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sigs) > len(full.Sigs) {
		t.Fatalf("budgeted run found MORE sigs (%d > %d)", len(g.Sigs), len(full.Sigs))
	}
}

func TestCallDepthCutoff(t *testing.T) {
	// Mutual recursion terminates via the stack check.
	pb := air.NewProgramBuilder()
	c := pb.Class("R", air.KindPlain)
	fa := c.Method("a", 0)
	fa.Invoke("R.b")
	fa.Done()
	fb := c.Method("b", 0)
	fb.Invoke("R.a")
	fb.Done()
	if _, err := Analyze(pb.MustBuild(), "t", []string{"R.a"}, Options{}); err != nil {
		t.Fatalf("mutual recursion: %v", err)
	}
}

func TestConcatOfLiteralsFusesInSignature(t *testing.T) {
	pb := air.NewProgramBuilder()
	c := pb.Class("F", air.KindActivity)
	m := c.Method("go", 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	u := m.StrConcat("http://x.example", m.ConstStr("/a/b"))
	m.CallAPI(air.APIHTTPSetURL, req, u)
	m.CallAPI(air.APIHTTPExecute, req)
	m.Done()
	g, err := Analyze(pb.MustBuild(), "t", []string{"F.go"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := g.Sig("t:F.go#0")
	if lit, ok := s.URI.IsLiteral(); !ok || lit != "x.example/a/b" {
		t.Fatalf("URI = %+v", s.URI)
	}
}
