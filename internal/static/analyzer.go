// Package static implements APPx's network-aware static program analysis
// (§4.1 of the paper).
//
// The analyzer symbolically executes AIR programs from their UI entry points,
// tracking how HTTP requests are constructed: which parts of the URI, query
// string, headers, and body are string literals, which are run-time values
// (device properties, cookies), and which are derived from fields of earlier
// responses. Each http.execute site becomes a transaction signature; each
// response-derived request field becomes a dependency edge.
//
// Branches on run-time conditions fork the abstract state and are re-joined
// afterwards; request fields present on only some paths become *optional*
// fields — exactly the paper's Figure-8 "instance classes based on branch
// conditions". The three Extractocol extensions the paper contributes are
// modelled as switchable Features so their effect can be ablated:
//
//   - Intents: a dedicated pre-pass builds the Intent map (key → abstract
//     values put anywhere in the program); intent.get reads it.
//   - Rx: rx.just/map/flatMap/defer build deferred symbolic computations
//     that rx.subscribe forces.
//   - Alias: heap objects passed across method boundaries keep their field
//     contents; with the feature disabled, field reads on escaped objects
//     degrade to wildcards (Extractocol's documented failure mode).
package static

import (
	"fmt"

	"appx/internal/air"
	"appx/internal/sig"
)

// Features toggles the paper's three analysis extensions (§4.1).
type Features struct {
	Intents bool
	Rx      bool
	Alias   bool
}

// AllFeatures enables every extension — the full APPx analyzer.
func AllFeatures() Features { return Features{Intents: true, Rx: true, Alias: true} }

// BaselineFeatures disables all three — approximating stock Extractocol.
func BaselineFeatures() Features { return Features{} }

// Options configures an analysis run.
type Options struct {
	Features Features
	// MaxForks bounds path splits per entry point (default 128).
	MaxForks int
	// MaxSteps bounds abstract instructions per entry point (default 200000).
	MaxSteps int
	// MaxCallDepth bounds the abstract call stack (default 64).
	MaxCallDepth int
}

func (o *Options) fill() {
	if o.MaxForks == 0 {
		o.MaxForks = 128
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 200_000
	}
	if o.MaxCallDepth == 0 {
		o.MaxCallDepth = 64
	}
}

// Analyze statically analyzes prog, starting from the given entry-point
// methods (qualified names, invoked with wildcard arguments), and returns
// the app's signature/dependency graph.
func Analyze(prog *air.Program, app string, entries []string, opts Options) (*sig.Graph, error) {
	opts.fill()
	an := &analyzer{
		prog:      prog,
		app:       app,
		opts:      opts,
		sites:     map[string]*siteInfo{},
		intentMap: map[string]AVal{},
	}
	an.assignSiteIDs()

	// Pass 1: build the Intent map (when the feature is on). intent.get
	// returns wildcards during this pass; only puts are recorded.
	if opts.Features.Intents {
		an.intentPass = true
		if err := an.runEntries(entries); err != nil {
			return nil, fmt.Errorf("static: intent pass: %w", err)
		}
		an.intentPass = false
		// Reset transaction evidence gathered during pass 1.
		for _, s := range an.sites {
			s.snapshots = nil
			s.respFields = nil
		}
	}

	if err := an.runEntries(entries); err != nil {
		return nil, fmt.Errorf("static: %w", err)
	}
	return an.buildGraph(), nil
}

type analyzer struct {
	prog *air.Program
	app  string
	opts Options

	siteIDs    map[string]map[int]string // qualified method -> coord -> site ID
	sites      map[string]*siteInfo
	intentMap  map[string]AVal
	intentPass bool
}

// siteInfo accumulates evidence about one http.execute site.
type siteInfo struct {
	id         string
	snapshots  []*reqSnapshot
	respFields map[string]bool
}

// fieldVal is one request field in a snapshot.
type fieldVal struct {
	key      string
	val      AVal
	optional bool
}

// reqSnapshot is the request state captured at one execution of an execute
// site along one abstract path.
type reqSnapshot struct {
	method   string
	uriParts []AVal
	query    []fieldVal
	header   []fieldVal
	form     []fieldVal
}

// assignSiteIDs walks the program once and gives every http.execute
// instruction a stable ID: app:Class.Method#ordinal, keyed by its
// (block,instr) coordinates.
func (an *analyzer) assignSiteIDs() {
	an.siteIDs = map[string]map[int]string{}
	for _, m := range an.prog.Methods() {
		n := 0
		for bi, b := range m.Blocks {
			for ii, in := range b.Instrs {
				if in.Op == air.OpCallAPI && in.Sym == air.APIHTTPExecute {
					if an.siteIDs[m.QualifiedName()] == nil {
						an.siteIDs[m.QualifiedName()] = map[int]string{}
					}
					id := fmt.Sprintf("%s:%s#%d", an.app, m.QualifiedName(), n)
					an.siteIDs[m.QualifiedName()][coord(bi, ii)] = id
					n++
				}
			}
		}
	}
}

// coord packs block/instruction indices into one map key.
func coord(bi, ii int) int { return bi<<20 | ii }

func (an *analyzer) site(id string) *siteInfo {
	s, ok := an.sites[id]
	if !ok {
		s = &siteInfo{id: id, respFields: map[string]bool{}}
		an.sites[id] = s
	}
	if s.respFields == nil {
		s.respFields = map[string]bool{}
	}
	return s
}

func (an *analyzer) runEntries(entries []string) error {
	for _, entry := range entries {
		m := an.prog.Method(entry)
		if m == nil {
			return fmt.Errorf("unknown entry point %q", entry)
		}
		st := newPathState(an)
		args := make([]AVal, m.NumParams)
		for i := range args {
			args[i] = AWild{Origin: "entry-arg"}
		}
		if _, err := st.call(entry, args); err != nil {
			if _, ok := err.(errBudget); ok {
				// Budget exhaustion is graceful degradation, not failure:
				// keep whatever evidence this entry produced so far.
				continue
			}
			return fmt.Errorf("entry %s: %w", entry, err)
		}
	}
	return nil
}

// heapKind discriminates heap records.
type heapKind uint8

const (
	heapObj heapKind = iota
	heapMap
	heapList
	heapReq
)

// heapRec is one abstract heap cell.
type heapRec struct {
	kind    heapKind
	fields  map[string]AVal // obj/map fields
	maybe   map[string]bool // fields present on only some joined paths
	items   []AVal          // list elements
	req     *reqRec
	escaped bool // passed across a method boundary
}

func (r *heapRec) clone() *heapRec {
	c := &heapRec{kind: r.kind, escaped: r.escaped}
	if r.fields != nil {
		c.fields = make(map[string]AVal, len(r.fields))
		for k, v := range r.fields {
			c.fields[k] = v
		}
	}
	if r.maybe != nil {
		c.maybe = make(map[string]bool, len(r.maybe))
		for k, v := range r.maybe {
			c.maybe[k] = v
		}
	}
	c.items = append([]AVal(nil), r.items...)
	if r.req != nil {
		c.req = r.req.clone()
	}
	return c
}

// reqRec is an abstract HTTP request under construction.
type reqRec struct {
	method   string
	urlParts []AVal
	query    []fieldVal
	header   []fieldVal
	form     []fieldVal
}

func (r *reqRec) clone() *reqRec {
	return &reqRec{
		method:   r.method,
		urlParts: append([]AVal(nil), r.urlParts...),
		query:    append([]fieldVal(nil), r.query...),
		header:   append([]fieldVal(nil), r.header...),
		form:     append([]fieldVal(nil), r.form...),
	}
}

// pathState is the per-path abstract machine state.
type pathState struct {
	an    *analyzer
	heap  map[int]*heapRec
	next  *int // shared object-ID counter (monotonic across forks)
	forks *int // shared fork budget counter per entry
	steps *int // shared step counter per entry
	depth int  // call depth
	stack []string
}

func newPathState(an *analyzer) *pathState {
	next, forks, steps := 0, 0, 0
	return &pathState{an: an, heap: map[int]*heapRec{}, next: &next, forks: &forks, steps: &steps}
}

func (st *pathState) clone() *pathState {
	c := &pathState{an: st.an, next: st.next, forks: st.forks, steps: st.steps, depth: st.depth}
	c.heap = make(map[int]*heapRec, len(st.heap))
	for id, rec := range st.heap {
		c.heap[id] = rec.clone()
	}
	c.stack = append([]string(nil), st.stack...)
	return c
}

func (st *pathState) alloc(rec *heapRec) int {
	*st.next++
	id := *st.next
	st.heap[id] = rec
	return id
}

// joinWith merges another path's heap into this one after a branch join.
// Shared object IDs are joined field-wise; IDs present on only one side are
// adopted as-is.
func (st *pathState) joinWith(other *pathState) {
	for id, orec := range other.heap {
		rec, ok := st.heap[id]
		if !ok {
			st.heap[id] = orec
			continue
		}
		joinRec(rec, orec)
	}
}

func joinRec(a, b *heapRec) {
	if a.kind != b.kind {
		return // incompatible; keep a
	}
	switch a.kind {
	case heapObj, heapMap:
		if a.fields == nil {
			a.fields = map[string]AVal{}
		}
		if a.maybe == nil {
			a.maybe = map[string]bool{}
		}
		for k, av := range a.fields {
			bv, ok := b.fields[k]
			if !ok {
				a.maybe[k] = true
				continue
			}
			a.fields[k] = joinVal(av, bv)
			if b.maybe[k] {
				a.maybe[k] = true
			}
		}
		for k, bv := range b.fields {
			if _, ok := a.fields[k]; !ok {
				a.fields[k] = bv
				a.maybe[k] = true
			}
		}
	case heapList:
		if len(b.items) > len(a.items) {
			a.items = b.items
		}
	case heapReq:
		a.req.join(b.req)
	}
	a.escaped = a.escaped || b.escaped
}

func (r *reqRec) join(o *reqRec) {
	if r.method == "" {
		r.method = o.method
	}
	if len(o.urlParts) > 0 && len(r.urlParts) == 0 {
		r.urlParts = o.urlParts
	}
	r.query = joinFields(r.query, o.query)
	r.header = joinFields(r.header, o.header)
	r.form = joinFields(r.form, o.form)
}

// joinFields merges two field lists: fields on both sides keep a joined
// value; one-sided fields become optional. Order follows a's order with b's
// extras appended.
func joinFields(a, b []fieldVal) []fieldVal {
	bIdx := map[string]int{}
	for i, f := range b {
		if _, dup := bIdx[f.key]; !dup {
			bIdx[f.key] = i
		}
	}
	seen := map[string]bool{}
	out := make([]fieldVal, 0, len(a)+len(b))
	for _, f := range a {
		seen[f.key] = true
		if j, ok := bIdx[f.key]; ok {
			out = append(out, fieldVal{
				key:      f.key,
				val:      joinVal(f.val, b[j].val),
				optional: f.optional || b[j].optional,
			})
		} else {
			f.optional = true
			out = append(out, f)
		}
	}
	for _, f := range b {
		if !seen[f.key] {
			f.optional = true
			out = append(out, f)
		}
	}
	return out
}

// joinVal merges two abstract values from different paths: equal patterns
// stay, dependency references are preferred over wildcards, anything else
// degrades to a wildcard.
func joinVal(a, b AVal) AVal {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	pa, pb := toPattern(a), toPattern(b)
	if patternKey(pa) == patternKey(pb) {
		return a
	}
	if _, ok := a.(ARespField); ok {
		return a
	}
	if _, ok := b.(ARespField); ok {
		return b
	}
	return AWild{Origin: "join"}
}

// errBudget marks analysis resource exhaustion; the caller degrades
// gracefully rather than failing the whole analysis.
type errBudget struct{ what string }

func (e errBudget) Error() string { return "static: budget exhausted: " + e.what }

// call abstractly executes a method with the given argument values.
func (st *pathState) call(qualified string, args []AVal) (AVal, error) {
	m := st.an.prog.Method(qualified)
	if m == nil {
		return nil, fmt.Errorf("unknown method %q", qualified)
	}
	if st.depth >= st.an.opts.MaxCallDepth {
		return AUnknown{}, nil
	}
	for _, on := range st.stack {
		if on == qualified {
			return AUnknown{}, nil // recursion: cut off
		}
	}
	// Mark heap arguments as escaped (they crossed a method boundary).
	for _, a := range args {
		st.markEscaped(a)
	}
	st.depth++
	st.stack = append(st.stack, qualified)
	regs := make([]AVal, m.NumRegs)
	copy(regs, args)
	ret, err := st.runFrom(m, 0, 0, regs)
	st.stack = st.stack[:len(st.stack)-1]
	st.depth--
	st.markEscaped(ret)
	return ret, err
}

func (st *pathState) markEscaped(v AVal) {
	switch x := v.(type) {
	case AObj:
		if rec, ok := st.heap[x.ID]; ok {
			rec.escaped = true
		}
	case AReq:
		if rec, ok := st.heap[x.ID]; ok {
			rec.escaped = true
		}
	}
}

// runFrom abstractly executes method m beginning at block bi, instruction
// ii, until a return. Unknown branches fork the state; the forked path runs
// to method completion and is then joined back.
func (st *pathState) runFrom(m *air.Method, bi, ii int, regs []AVal) (AVal, error) {
	maxVisits := 2
	visits := map[int]int{}
	for {
		if bi >= len(m.Blocks) {
			return nil, nil
		}
		if ii == 0 {
			visits[bi]++
			if visits[bi] > maxVisits {
				return AUnknown{}, nil // loop cut-off
			}
		}
		blk := m.Blocks[bi]
		jumped := false
		for ; ii < len(blk.Instrs); ii++ {
			in := blk.Instrs[ii]
			*st.steps++
			if *st.steps > st.an.opts.MaxSteps {
				return nil, errBudget{"steps"}
			}
			switch in.Op {
			case air.OpConstStr:
				regs[in.Dst] = ALit{S: in.Str}
			case air.OpConstInt:
				regs[in.Dst] = ALit{S: fmt.Sprintf("%d", in.Int)}
			case air.OpConstBool:
				if in.Int != 0 {
					regs[in.Dst] = ALit{S: "true"}
				} else {
					regs[in.Dst] = ALit{S: "false"}
				}
			case air.OpMove:
				regs[in.Dst] = regs[in.A]
			case air.OpConcat:
				regs[in.Dst] = concat(regs[in.A], regs[in.B])
			case air.OpNewObject:
				regs[in.Dst] = AObj{ID: st.alloc(&heapRec{kind: heapObj, fields: map[string]AVal{}})}
			case air.OpIPut:
				if obj, ok := regs[in.A].(AObj); ok {
					if rec, ok2 := st.heap[obj.ID]; ok2 {
						rec.fields[in.Sym] = regs[in.B]
						delete(rec.maybe, in.Sym)
					}
				}
			case air.OpIGet:
				regs[in.Dst] = st.readField(regs[in.A], in.Sym)
			case air.OpNewMap:
				regs[in.Dst] = AObj{ID: st.alloc(&heapRec{kind: heapMap, fields: map[string]AVal{}})}
			case air.OpMapPut:
				if obj, ok := regs[in.A].(AObj); ok {
					if rec, ok2 := st.heap[obj.ID]; ok2 {
						rec.fields[in.Sym] = regs[in.B]
						delete(rec.maybe, in.Sym)
					}
				}
			case air.OpMapGet:
				regs[in.Dst] = st.readMapKey(regs[in.A], in.Sym)
			case air.OpNewList:
				regs[in.Dst] = AObj{ID: st.alloc(&heapRec{kind: heapList})}
			case air.OpListAdd:
				if obj, ok := regs[in.A].(AObj); ok {
					if rec, ok2 := st.heap[obj.ID]; ok2 {
						rec.items = append(rec.items, regs[in.B])
					}
				}
			case air.OpInvoke:
				args := make([]AVal, len(in.Args))
				for i, a := range in.Args {
					args[i] = regs[a]
				}
				v, err := st.call(in.Sym, args)
				if err != nil {
					return nil, err
				}
				regs[in.Dst] = v
			case air.OpCallAPI:
				args := make([]AVal, len(in.Args))
				for i, a := range in.Args {
					args[i] = regs[a]
				}
				v, err := st.callAPI(m, bi, ii, in, args)
				if err != nil {
					return nil, err
				}
				regs[in.Dst] = v
			case air.OpIf, air.OpIfNull:
				taken, known := st.decideBranch(in, regs)
				if known {
					if taken {
						bi, ii = in.Target, 0
						jumped = true
					}
					if jumped {
						break
					}
					continue
				}
				// Unknown condition: fork when budget allows.
				if *st.forks < st.an.opts.MaxForks {
					*st.forks++
					forked := st.clone()
					forkedRegs := append([]AVal(nil), regs...)
					retTaken, err := forked.runFrom(m, in.Target, 0, forkedRegs)
					if err != nil {
						if _, ok := err.(errBudget); !ok {
							return nil, err
						}
					}
					retFall, err := st.runFrom2(m, bi, ii+1, regs)
					if err != nil {
						if _, ok := err.(errBudget); !ok {
							return nil, err
						}
					}
					st.joinWith(forked)
					return joinVal(retFall, retTaken), nil
				}
				// Budget exhausted: fall through only.
			case air.OpGoto:
				bi, ii = in.Target, 0
				jumped = true
			case air.OpForEach:
				elem := st.elementOf(regs[in.A])
				extra := make([]AVal, len(in.Args))
				for i, a := range in.Args {
					extra[i] = regs[a]
				}
				if _, err := st.call(in.Sym, append([]AVal{elem}, extra...)); err != nil {
					return nil, err
				}
			case air.OpReturn:
				if in.A == air.NoReg {
					return nil, nil
				}
				return regs[in.A], nil
			}
			if jumped {
				break
			}
		}
		if !jumped {
			bi++
			ii = 0
		}
	}
}

// runFrom2 continues execution mid-block (after a fork point) without
// re-counting the block visit.
func (st *pathState) runFrom2(m *air.Method, bi, ii int, regs []AVal) (AVal, error) {
	return st.runFrom(m, bi, ii, regs)
}

// decideBranch resolves statically known conditions.
func (st *pathState) decideBranch(in air.Instr, regs []AVal) (taken, known bool) {
	v := regs[in.A]
	if in.Op == air.OpIfNull {
		if v == nil {
			return true, true
		}
		if _, ok := v.(ALit); ok {
			return false, true
		}
		return false, false
	}
	if s, ok := litString(v); ok {
		return s != "" && s != "false" && s != "0", true
	}
	return false, false
}

func (st *pathState) readField(v AVal, field string) AVal {
	obj, ok := v.(AObj)
	if !ok {
		return AWild{Origin: "iget-unknown"}
	}
	rec, ok := st.heap[obj.ID]
	if !ok {
		return AWild{Origin: "iget-unknown"}
	}
	if !st.an.opts.Features.Alias && rec.escaped {
		// Without the on-demand alias analysis, field reads on objects that
		// crossed a method boundary lose precision (Extractocol's limitation
		// the paper fixes via FlowDroid's backward alias analysis).
		return AWild{Origin: "no-alias"}
	}
	if fv, ok := rec.fields[field]; ok {
		return fv
	}
	return AWild{Origin: "iget-missing"}
}

func (st *pathState) readMapKey(v AVal, key string) AVal {
	switch x := v.(type) {
	case AObj:
		return st.readField(v, key)
	case ARespDoc:
		st.an.site(x.Pred).respFields[key] = true
		return ARespField{Pred: x.Pred, Path: key}
	case ARespField:
		full := x.Path + "." + key
		st.an.site(x.Pred).respFields[full] = true
		return ARespField{Pred: x.Pred, Path: full}
	default:
		return AWild{Origin: "map-get-unknown"}
	}
}

// elementOf describes a representative element of a list-like value.
func (st *pathState) elementOf(v AVal) AVal {
	switch x := v.(type) {
	case AListOf:
		return x.Elem
	case AObj:
		rec, ok := st.heap[x.ID]
		if !ok || rec.kind != heapList || len(rec.items) == 0 {
			return AWild{Origin: "foreach-elem"}
		}
		out := rec.items[0]
		for _, it := range rec.items[1:] {
			out = joinVal(out, it)
		}
		return out
	default:
		return AWild{Origin: "foreach-elem"}
	}
}

func (st *pathState) reqOf(v AVal) *reqRec {
	r, ok := v.(AReq)
	if !ok {
		return nil
	}
	rec, ok := st.heap[r.ID]
	if !ok || rec.kind != heapReq {
		return nil
	}
	return rec.req
}
