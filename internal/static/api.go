package static

import (
	"strings"

	"appx/internal/air"
	"appx/internal/jsonpath"
)

// callAPI abstractly interprets one semantic-API call.
func (st *pathState) callAPI(m *air.Method, bi, ii int, in air.Instr, args []AVal) (AVal, error) {
	an := st.an
	switch in.Sym {
	case air.APIHTTPNewRequest:
		method := "GET"
		if s, ok := litString(args[0]); ok {
			method = strings.ToUpper(s)
		}
		id := st.alloc(&heapRec{kind: heapReq, req: &reqRec{method: method}})
		return AReq{ID: id}, nil

	case air.APIHTTPSetURL:
		if r := st.reqOf(args[0]); r != nil {
			r.urlParts = flatten(args[1])
		}
		return nil, nil

	case air.APIHTTPAddQuery:
		if r := st.reqOf(args[0]); r != nil {
			if k, ok := litString(args[1]); ok {
				r.query = append(r.query, fieldVal{key: k, val: args[2]})
			}
		}
		return nil, nil

	case air.APIHTTPAddHeader:
		if r := st.reqOf(args[0]); r != nil {
			if k, ok := litString(args[1]); ok {
				r.header = append(r.header, fieldVal{key: k, val: args[2]})
			}
		}
		return nil, nil

	case air.APIHTTPSetBodyField:
		if r := st.reqOf(args[0]); r != nil {
			if k, ok := litString(args[1]); ok {
				r.form = append(r.form, fieldVal{key: k, val: args[2]})
			}
		}
		return nil, nil

	case air.APIHTTPExecute:
		siteID := an.siteIDs[m.QualifiedName()][coord(bi, ii)]
		if siteID == "" {
			// Defensive: every execute was enumerated in assignSiteIDs.
			siteID = an.app + ":" + m.QualifiedName() + "#?"
		}
		if r := st.reqOf(args[0]); r != nil && !an.intentPass {
			site := an.site(siteID)
			snap := &reqSnapshot{
				method:   r.method,
				uriParts: append([]AVal(nil), r.urlParts...),
				query:    append([]fieldVal(nil), r.query...),
				header:   append([]fieldVal(nil), r.header...),
				form:     append([]fieldVal(nil), r.form...),
			}
			site.snapshots = append(site.snapshots, snap)
		}
		return AResp{Pred: siteID}, nil

	case air.APIHTTPRespBody:
		if resp, ok := args[0].(AResp); ok {
			return ARespDoc{Pred: resp.Pred}, nil
		}
		return AWild{Origin: "resp-body"}, nil

	case air.APIJSONGet:
		pathLit, ok := litString(args[1])
		if !ok {
			return AWild{Origin: "json-path-dynamic"}, nil
		}
		return st.jsonGet(args[0], pathLit), nil

	case air.APIListGet:
		return st.elementOf(args[0]), nil
	case air.APIListLen:
		return AWild{Origin: "list.len"}, nil

	case air.APIDeviceUserAgent, air.APIDeviceLocale, air.APIDeviceVersion, air.APIDeviceCookie:
		return AWild{Origin: in.Sym}, nil
	case air.APIDeviceFlag:
		return AWild{Origin: in.Sym}, nil

	case air.APIIntentPut:
		if k, ok := litString(args[0]); ok {
			if cur, exists := an.intentMap[k]; exists {
				an.intentMap[k] = joinVal(cur, args[1])
			} else {
				an.intentMap[k] = args[1]
			}
		}
		return nil, nil
	case air.APIIntentGet:
		if !an.opts.Features.Intents || an.intentPass {
			return AWild{Origin: "intent"}, nil
		}
		if k, ok := litString(args[0]); ok {
			if v, exists := an.intentMap[k]; exists {
				return v, nil
			}
		}
		return AWild{Origin: "intent"}, nil

	case air.APIRxJust:
		if !an.opts.Features.Rx {
			return AUnknown{}, nil
		}
		v := args[0]
		return AObs{force: func(*pathState) (AVal, error) { return v, nil }}, nil
	case air.APIRxDefer:
		if !an.opts.Features.Rx {
			return AUnknown{}, nil
		}
		name, _ := litString(args[0])
		return AObs{force: func(s *pathState) (AVal, error) { return s.call(name, nil) }}, nil
	case air.APIRxMap:
		if !an.opts.Features.Rx {
			return AUnknown{}, nil
		}
		src, ok := args[0].(AObs)
		name, _ := litString(args[1])
		if !ok {
			return AUnknown{}, nil
		}
		return AObs{force: func(s *pathState) (AVal, error) {
			v, err := src.force(s)
			if err != nil {
				return nil, err
			}
			return s.call(name, []AVal{v})
		}}, nil
	case air.APIRxFlatMap:
		if !an.opts.Features.Rx {
			return AUnknown{}, nil
		}
		src, ok := args[0].(AObs)
		name, _ := litString(args[1])
		if !ok {
			return AUnknown{}, nil
		}
		return AObs{force: func(s *pathState) (AVal, error) {
			v, err := src.force(s)
			if err != nil {
				return nil, err
			}
			inner, err := s.call(name, []AVal{v})
			if err != nil {
				return nil, err
			}
			if io, ok := inner.(AObs); ok {
				return io.force(s)
			}
			return AUnknown{}, nil
		}}, nil
	case air.APIRxSubscribe:
		if !an.opts.Features.Rx {
			return AUnknown{}, nil
		}
		src, ok := args[0].(AObs)
		name, _ := litString(args[1])
		if !ok {
			return AUnknown{}, nil
		}
		v, err := src.force(st)
		if err != nil {
			return nil, err
		}
		return st.call(name, []AVal{v})

	case air.APIUIRender, air.APIUIShowImage:
		return nil, nil
	}
	return AUnknown{}, nil
}

// jsonGet models json.get over abstract response documents: accesses are
// recorded as response fields of the originating transaction site, and the
// returned value carries the dependency reference.
func (st *pathState) jsonGet(doc AVal, path string) AVal {
	switch x := doc.(type) {
	case ARespDoc:
		st.recordRespField(x.Pred, path)
		return respFieldVal(x.Pred, path)
	case ARespField:
		full := joinPath(x.Path, path)
		st.recordRespField(x.Pred, full)
		return respFieldVal(x.Pred, full)
	case AListOf:
		// json.get on each element of a fan-out — propagate through.
		inner := st.jsonGet(x.Elem, path)
		return AListOf{Elem: inner}
	default:
		return AWild{Origin: "json-get"}
	}
}

func (st *pathState) recordRespField(pred, path string) {
	st.an.site(pred).respFields[path] = true
}

// respFieldVal wraps a response access: wildcard paths denote a fan-out list
// whose elements are the individual values.
func respFieldVal(pred, path string) AVal {
	p, err := jsonpath.Parse(path)
	if err == nil && p.HasWildcard() {
		return AListOf{Elem: ARespField{Pred: pred, Path: path}}
	}
	return ARespField{Pred: pred, Path: path}
}

func joinPath(base, rel string) string {
	if base == "" {
		return rel
	}
	if rel == "" {
		return base
	}
	return base + "." + rel
}
