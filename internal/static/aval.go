package static

import (
	"strings"

	"appx/internal/sig"
)

// AVal is an abstract (symbolic) value in the analyzer's domain.
//
// The domain mirrors what APPx's extended Extractocol needs to express
// (§4.1 of the paper): statically known literals, values determined only at
// run time (wildcards), values derived from a predecessor transaction's
// response (dependency references), and concatenations thereof.
type AVal interface{ aval() }

// ALit is a statically known string literal.
type ALit struct{ S string }

// AWild is a run-time value unknown to static analysis; Origin names its
// source for diagnostics ("device.userAgent", "no-alias", ...).
type AWild struct{ Origin string }

// AConcat is an ordered concatenation of abstract values.
type AConcat struct{ Parts []AVal }

// ARespField is a scalar drawn from the response of transaction site Pred at
// the given JSON path (possibly containing [*] — one value per array
// element).
type ARespField struct {
	Pred string // predecessor site ID
	Path string // jsonpath into the predecessor's response body
}

// ARespDoc is a whole parsed response document of a transaction site.
type ARespDoc struct{ Pred string }

// AListOf is a list whose elements are described by Elem (the result of a
// wildcard json.get).
type AListOf struct{ Elem AVal }

// AObj is a reference to an abstract heap object (allocation-site
// abstraction); the fields live in the path state's heap.
type AObj struct{ ID int }

// AReq is a reference to an abstract HTTP request under construction; the
// request record lives in the path state's heap.
type AReq struct{ ID int }

// AResp is a received response handle for transaction site Pred.
type AResp struct{ Pred string }

// AObs is an Rx observable: a deferred symbolic computation.
type AObs struct {
	// force runs the deferred computation against a path state.
	force func(st *pathState) (AVal, error)
}

// AUnknown is a value the analyzer cannot describe at all.
type AUnknown struct{}

func (ALit) aval()       {}
func (AWild) aval()      {}
func (AConcat) aval()    {}
func (ARespField) aval() {}
func (ARespDoc) aval()   {}
func (AListOf) aval()    {}
func (AObj) aval()       {}
func (AReq) aval()       {}
func (AResp) aval()      {}
func (AObs) aval()       {}
func (AUnknown) aval()   {}

// concat joins two abstract values, flattening nested concatenations and
// fusing adjacent literals.
func concat(a, b AVal) AVal {
	parts := append(flatten(a), flatten(b)...)
	// Fuse adjacent literals.
	var fused []AVal
	for _, p := range parts {
		if l, ok := p.(ALit); ok && len(fused) > 0 {
			if prev, ok2 := fused[len(fused)-1].(ALit); ok2 {
				fused[len(fused)-1] = ALit{S: prev.S + l.S}
				continue
			}
		}
		fused = append(fused, p)
	}
	if len(fused) == 1 {
		return fused[0]
	}
	return AConcat{Parts: fused}
}

func flatten(v AVal) []AVal {
	if c, ok := v.(AConcat); ok {
		var out []AVal
		for _, p := range c.Parts {
			out = append(out, flatten(p)...)
		}
		return out
	}
	if v == nil {
		return []AVal{ALit{S: ""}}
	}
	return []AVal{v}
}

// toPattern lowers an abstract value to a signature pattern. Values the
// pattern language cannot express degrade to wildcards (a safe
// over-approximation: the proxy will learn them at run time).
func toPattern(v AVal) sig.Pattern {
	switch x := v.(type) {
	case nil:
		return sig.Literal("")
	case ALit:
		return sig.Literal(x.S)
	case AWild:
		return sig.Wildcard(x.Origin)
	case ARespField:
		return sig.DepValue(x.Pred, x.Path)
	case AConcat:
		var out sig.Pattern
		for _, p := range x.Parts {
			out = sig.Concat(out, toPattern(p))
		}
		return out
	case AListOf:
		return toPattern(x.Elem)
	default:
		return sig.Wildcard("unknown")
	}
}

// patternKey renders a pattern canonically for equality comparison during
// snapshot merging.
func patternKey(p sig.Pattern) string {
	var b strings.Builder
	for _, part := range p.Parts {
		switch part.Kind {
		case sig.Lit:
			b.WriteString("L(" + part.Lit + ")")
		case sig.Wild:
			b.WriteString("W")
		case sig.Dep:
			b.WriteString("D(" + part.PredID + "|" + part.RespPath + ")")
		}
	}
	return b.String()
}

// litString extracts the string when v is a literal.
func litString(v AVal) (string, bool) {
	if l, ok := v.(ALit); ok {
		return l.S, true
	}
	return "", false
}
