package static

import (
	"strings"
	"testing"

	"appx/internal/air"
	"appx/internal/httpmsg"
	"appx/internal/sig"
)

// buildFeedDetail compiles the canonical Wish-like pattern: GET feed →
// for each item id → POST detail (cid=id) with a branch-conditional
// credit_id field, plus an image GET whose URL embeds the id in the query
// string.
func buildFeedDetail(t testing.TB) *air.Program {
	t.Helper()
	pb := air.NewProgramBuilder()
	c := pb.Class("Main", air.KindActivity)

	m := c.Method("launch", 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://wish.example/api/get-feed"))
	m.CallAPI(air.APIHTTPAddHeader, req, m.ConstStr("User-Agent"), m.CallAPI(air.APIDeviceUserAgent))
	resp := m.CallAPI(air.APIHTTPExecute, req)
	body := m.CallAPI(air.APIHTTPRespBody, resp)
	ids := m.CallAPI(air.APIJSONGet, body, m.ConstStr("data.products[*].product_info.id"))
	m.ForEach(ids, "Main.loadDetail")
	m.CallAPI(air.APIUIRender, m.ConstStr("feed"))
	m.Done()

	d := c.Method("loadDetail", 1)
	dreq := d.CallAPI(air.APIHTTPNewRequest, d.ConstStr("POST"))
	d.CallAPI(air.APIHTTPSetURL, dreq, d.ConstStr("http://wish.example/product/get"))
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("cid"), d.Param(0))
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("_client"), d.ConstStr("android"))
	skip := d.Block()
	cont := d.Block()
	flag := d.CallAPI(air.APIDeviceFlag, d.ConstStr("no_credit"))
	d.If(flag, skip)
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("credit_id"), d.CallAPI(air.APIDeviceVersion))
	d.Goto(cont)
	d.Enter(skip)
	d.Goto(cont)
	d.Enter(cont)
	d.CallAPI(air.APIHTTPExecute, dreq)
	ireq := d.CallAPI(air.APIHTTPNewRequest, d.ConstStr("GET"))
	iurl := d.StrConcat("http://img.wish.example/img?cid=", d.Param(0))
	d.CallAPI(air.APIHTTPSetURL, ireq, iurl)
	iresp := d.CallAPI(air.APIHTTPExecute, ireq)
	d.CallAPI(air.APIUIShowImage, iresp)
	d.CallAPI(air.APIUIRender, d.ConstStr("detail"))
	d.Done()

	return pb.MustBuild()
}

func analyzeAll(t testing.TB, prog *air.Program, entries ...string) *sig.Graph {
	t.Helper()
	g, err := Analyze(prog, "testapp", entries, Options{Features: AllFeatures()})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return g
}

func TestFeedDetailSignatures(t *testing.T) {
	g := analyzeAll(t, buildFeedDetail(t), "Main.launch")
	if len(g.Sigs) != 3 {
		b, _ := g.Marshal()
		t.Fatalf("signatures = %d, want 3\n%s", len(g.Sigs), b)
	}

	feed := g.Sig("testapp:Main.launch#0")
	if feed == nil {
		t.Fatal("missing feed signature")
	}
	if feed.Method != "GET" || feed.URI.String() != "wish.example/api/get-feed" {
		t.Fatalf("feed = %s %s", feed.Method, feed.URI.String())
	}
	if len(feed.RespFields) != 1 || feed.RespFields[0] != "data.products[*].product_info.id" {
		t.Fatalf("feed.RespFields = %v", feed.RespFields)
	}
	// The User-Agent header must be a wildcard (device-determined).
	if len(feed.Header) != 1 || feed.Header[0].Key != "User-Agent" || feed.Header[0].Value.String() != ".*" {
		t.Fatalf("feed.Header = %+v", feed.Header)
	}

	detail := g.Sig("testapp:Main.loadDetail#0")
	if detail == nil {
		t.Fatal("missing detail signature")
	}
	if detail.Method != "POST" || detail.BodyKind != httpmsg.BodyForm {
		t.Fatalf("detail = %s %v", detail.Method, detail.BodyKind)
	}
	byKey := map[string]sig.Field{}
	for _, f := range detail.BodyForm {
		byKey[f.Key] = f
	}
	cid, ok := byKey["cid"]
	if !ok || !cid.Value.HasDep() {
		t.Fatalf("cid field = %+v", cid)
	}
	if cid.Value.Parts[0].PredID != "testapp:Main.launch#0" ||
		cid.Value.Parts[0].RespPath != "data.products[*].product_info.id" {
		t.Fatalf("cid dep = %+v", cid.Value.Parts[0])
	}
	if cl, ok := byKey["_client"]; !ok {
		t.Fatal("missing _client")
	} else if lit, isLit := cl.Value.IsLiteral(); !isLit || lit != "android" {
		t.Fatalf("_client = %+v", cl.Value)
	}
	credit, ok := byKey["credit_id"]
	if !ok {
		t.Fatal("missing credit_id")
	}
	if !credit.Optional {
		t.Fatal("credit_id should be optional (branch-conditional, Figure 8)")
	}
	if cid.Optional || byKey["_client"].Optional {
		t.Fatal("unconditional fields marked optional")
	}
}

func TestImageURLQueryDependency(t *testing.T) {
	g := analyzeAll(t, buildFeedDetail(t), "Main.launch")
	img := g.Sig("testapp:Main.loadDetail#1")
	if img == nil {
		t.Fatal("missing image signature")
	}
	if img.URI.String() != "img.wish.example/img" {
		t.Fatalf("img URI = %q", img.URI.String())
	}
	if len(img.Query) != 1 || img.Query[0].Key != "cid" || !img.Query[0].Value.HasDep() {
		t.Fatalf("img query = %+v", img.Query)
	}
}

func TestDependencyGraphShape(t *testing.T) {
	g := analyzeAll(t, buildFeedDetail(t), "Main.launch")
	pre := g.Predecessors("testapp:Main.loadDetail#0")
	if len(pre) != 1 || pre[0] != "testapp:Main.launch#0" {
		t.Fatalf("detail preds = %v", pre)
	}
	prefetchable := g.Prefetchable()
	if len(prefetchable) != 2 {
		t.Fatalf("prefetchable = %v, want detail+image", prefetchable)
	}
	if got := g.MaxChainLen(); got != 2 {
		t.Fatalf("MaxChainLen = %d, want 2", got)
	}
}

// buildIntentChain uses an Intent to pass the item id between two
// activities; without Intent support the dependency is lost.
func buildIntentChain(t testing.TB) *air.Program {
	t.Helper()
	pb := air.NewProgramBuilder()
	a := pb.Class("ListActivity", air.KindActivity)
	m := a.Method("onCreate", 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://api.example/list"))
	resp := m.CallAPI(air.APIHTTPExecute, req)
	body := m.CallAPI(air.APIHTTPRespBody, resp)
	id := m.CallAPI(air.APIJSONGet, body, m.ConstStr("items[0].id"))
	m.CallAPI(air.APIIntentPut, m.ConstStr("sel"), id)
	m.Invoke("DetailActivity.onCreate")
	m.Done()

	b := pb.Class("DetailActivity", air.KindActivity)
	d := b.Method("onCreate", 0)
	did := d.CallAPI(air.APIIntentGet, d.ConstStr("sel"))
	dreq := d.CallAPI(air.APIHTTPNewRequest, d.ConstStr("GET"))
	d.CallAPI(air.APIHTTPSetURL, dreq, d.ConstStr("http://api.example/detail"))
	d.CallAPI(air.APIHTTPAddQuery, dreq, d.ConstStr("id"), did)
	d.CallAPI(air.APIHTTPExecute, dreq)
	d.Done()
	return pb.MustBuild()
}

func TestIntentMapEnablesDependency(t *testing.T) {
	prog := buildIntentChain(t)
	g := analyzeAll(t, prog, "ListActivity.onCreate")
	deps := g.DepsInto("testapp:DetailActivity.onCreate#0")
	if len(deps) != 1 {
		t.Fatalf("deps with intents = %v", deps)
	}
	if deps[0].PredID != "testapp:ListActivity.onCreate#0" || deps[0].RespPath != "items[0].id" {
		t.Fatalf("dep = %+v", deps[0])
	}

	// Ablation: without Intent support the edge disappears.
	g2, err := Analyze(prog, "testapp", []string{"ListActivity.onCreate"},
		Options{Features: Features{Rx: true, Alias: true}})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if deps := g2.DepsInto("testapp:DetailActivity.onCreate#0"); len(deps) != 0 {
		t.Fatalf("deps without intents = %v, want none", deps)
	}
}

// buildRxChain issues the detail request from inside an Rx pipeline.
func buildRxChain(t testing.TB) *air.Program {
	t.Helper()
	pb := air.NewProgramBuilder()
	c := pb.Class("Rxc", air.KindActivity)

	fetch := c.Method("fetch", 0)
	req := fetch.CallAPI(air.APIHTTPNewRequest, fetch.ConstStr("GET"))
	fetch.CallAPI(air.APIHTTPSetURL, req, fetch.ConstStr("http://api.example/feed"))
	resp := fetch.CallAPI(air.APIHTTPExecute, req)
	body := fetch.CallAPI(air.APIHTTPRespBody, resp)
	fetch.Return(body)
	fetch.Done()

	pick := c.Method("pick", 1)
	id := pick.CallAPI(air.APIJSONGet, pick.Param(0), pick.ConstStr("top.id"))
	pick.Return(id)
	pick.Done()

	load := c.Method("load", 1)
	lreq := load.CallAPI(air.APIHTTPNewRequest, load.ConstStr("GET"))
	load.CallAPI(air.APIHTTPSetURL, lreq, load.ConstStr("http://api.example/item"))
	load.CallAPI(air.APIHTTPAddQuery, lreq, load.ConstStr("id"), load.Param(0))
	load.CallAPI(air.APIHTTPExecute, lreq)
	load.Done()

	m := c.Method("onCreate", 0)
	o := m.CallAPI(air.APIRxDefer, m.ConstStr("Rxc.fetch"))
	mapped := m.CallAPI(air.APIRxMap, o, m.ConstStr("Rxc.pick"))
	m.CallAPI(air.APIRxSubscribe, mapped, m.ConstStr("Rxc.load"))
	m.Done()
	return pb.MustBuild()
}

func TestRxModelsEnableDependency(t *testing.T) {
	prog := buildRxChain(t)
	g := analyzeAll(t, prog, "Rxc.onCreate")
	deps := g.DepsInto("testapp:Rxc.load#0")
	if len(deps) != 1 || deps[0].RespPath != "top.id" {
		t.Fatalf("rx deps = %+v", deps)
	}

	g2, err := Analyze(prog, "testapp", []string{"Rxc.onCreate"},
		Options{Features: Features{Intents: true, Alias: true}})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// Without Rx models the subscribe never runs, so the load signature
	// itself is missing.
	if s := g2.Sig("testapp:Rxc.load#0"); s != nil {
		t.Fatalf("load signature found without rx models: %+v", s)
	}
}

// buildAliasChain stores the feed id inside a heap object that crosses a
// method boundary before the dependent request reads it back.
func buildAliasChain(t testing.TB) *air.Program {
	t.Helper()
	pb := air.NewProgramBuilder()
	c := pb.Class("Al", air.KindActivity)

	m := c.Method("onCreate", 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://api.example/feed"))
	resp := m.CallAPI(air.APIHTTPExecute, req)
	body := m.CallAPI(air.APIHTTPRespBody, resp)
	id := m.CallAPI(air.APIJSONGet, body, m.ConstStr("top.id"))
	holder := m.NewObject("Holder")
	m.IPut(holder, "id", id)
	m.Invoke("Al.load", holder)
	m.Done()

	load := c.Method("load", 1)
	hid := load.IGet(load.Param(0), "id")
	lreq := load.CallAPI(air.APIHTTPNewRequest, load.ConstStr("GET"))
	load.CallAPI(air.APIHTTPSetURL, lreq, load.ConstStr("http://api.example/item"))
	load.CallAPI(air.APIHTTPAddQuery, lreq, load.ConstStr("id"), hid)
	load.CallAPI(air.APIHTTPExecute, lreq)
	load.Done()
	return pb.MustBuild()
}

func TestAliasAnalysisEnablesDependency(t *testing.T) {
	prog := buildAliasChain(t)
	g := analyzeAll(t, prog, "Al.onCreate")
	deps := g.DepsInto("testapp:Al.load#0")
	if len(deps) != 1 || deps[0].RespPath != "top.id" {
		t.Fatalf("alias deps = %+v", deps)
	}

	g2, err := Analyze(prog, "testapp", []string{"Al.onCreate"},
		Options{Features: Features{Intents: true, Rx: true}})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// The signature still exists but the dependency degrades to a wildcard.
	s := g2.Sig("testapp:Al.load#0")
	if s == nil {
		t.Fatal("load signature missing without alias analysis")
	}
	if deps := g2.DepsInto("testapp:Al.load#0"); len(deps) != 0 {
		t.Fatalf("deps without alias analysis = %v, want none", deps)
	}
}

// Successive chain: a → b → c → d, each consuming the previous response id
// (the DoorDash pattern of Figure 11).
func buildChain(t testing.TB, n int) *air.Program {
	t.Helper()
	pb := air.NewProgramBuilder()
	c := pb.Class("Chain", air.KindActivity)
	names := []string{"list", "store", "menu", "detail", "suggest", "extra", "more"}
	for i := n - 1; i >= 1; i-- {
		h := c.Method(names[i], 1)
		req := h.CallAPI(air.APIHTTPNewRequest, h.ConstStr("GET"))
		h.CallAPI(air.APIHTTPSetURL, req, h.ConstStr("http://dd.example/"+names[i]))
		h.CallAPI(air.APIHTTPAddQuery, req, h.ConstStr("id"), h.Param(0))
		resp := h.CallAPI(air.APIHTTPExecute, req)
		if i+1 < n {
			body := h.CallAPI(air.APIHTTPRespBody, resp)
			id := h.CallAPI(air.APIJSONGet, body, h.ConstStr("id"))
			h.Invoke("Chain."+names[i+1], id)
		}
		h.Done()
	}
	m := c.Method(names[0], 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://dd.example/"+names[0]))
	resp := m.CallAPI(air.APIHTTPExecute, req)
	body := m.CallAPI(air.APIHTTPRespBody, resp)
	id := m.CallAPI(air.APIJSONGet, body, m.ConstStr("id"))
	if n > 1 {
		m.Invoke("Chain."+names[1], id)
	}
	m.Done()
	return pb.MustBuild()
}

func TestSuccessiveChainLength(t *testing.T) {
	g := analyzeAll(t, buildChain(t, 4), "Chain.list")
	if got := g.MaxChainLen(); got != 4 {
		b, _ := g.Marshal()
		t.Fatalf("MaxChainLen = %d, want 4\n%s", got, b)
	}
	chain := g.Chain()
	if len(chain) != 4 || !strings.Contains(chain[0], "list") || !strings.Contains(chain[3], "detail") {
		t.Fatalf("Chain = %v", chain)
	}
}

func TestAnalyzeUnknownEntry(t *testing.T) {
	_, err := Analyze(buildFeedDetail(t), "x", []string{"No.method"}, Options{})
	if err == nil {
		t.Fatal("unknown entry accepted")
	}
}

func TestSnapshotsFromBothBranchArms(t *testing.T) {
	// Execute inside a branch: signature exists; a field set in only the
	// taken arm is optional.
	pb := air.NewProgramBuilder()
	c := pb.Class("Br", air.KindActivity)
	m := c.Method("go", 0)
	other := m.Block()
	done := m.Block()
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("POST"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://x.example/send"))
	flag := m.CallAPI(air.APIDeviceFlag, m.ConstStr("f"))
	m.If(flag, other)
	m.CallAPI(air.APIHTTPSetBodyField, req, m.ConstStr("mode"), m.ConstStr("a"))
	m.Goto(done)
	m.Enter(other)
	m.CallAPI(air.APIHTTPSetBodyField, req, m.ConstStr("mode"), m.ConstStr("b"))
	m.CallAPI(air.APIHTTPSetBodyField, req, m.ConstStr("extra"), m.ConstStr("1"))
	m.Goto(done)
	m.Enter(done)
	m.CallAPI(air.APIHTTPExecute, req)
	m.Done()

	g := analyzeAll(t, pb.MustBuild(), "Br.go")
	s := g.Sig("testapp:Br.go#0")
	if s == nil {
		t.Fatal("missing signature")
	}
	fields := map[string]sig.Field{}
	for _, f := range s.BodyForm {
		fields[f.Key] = f
	}
	mode, ok := fields["mode"]
	if !ok {
		t.Fatalf("mode missing: %+v", s.BodyForm)
	}
	// mode is set on both arms with different literals → required wildcard.
	if mode.Optional {
		t.Fatal("mode should be required (set on both arms)")
	}
	if mode.Value.String() != ".*" {
		t.Fatalf("mode value = %q, want wildcard after join", mode.Value.String())
	}
	extra, ok := fields["extra"]
	if !ok || !extra.Optional {
		t.Fatalf("extra = %+v, want optional", extra)
	}
}

func TestLoopCutOff(t *testing.T) {
	// A self-loop must not hang the analyzer.
	pb := air.NewProgramBuilder()
	c := pb.Class("L", air.KindPlain)
	m := c.Method("spin", 0)
	m.ConstInt(1)
	m.Goto(0)
	m.Done()
	g, err := Analyze(pb.MustBuild(), "x", []string{"L.spin"}, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(g.Sigs) != 0 {
		t.Fatalf("sigs = %d", len(g.Sigs))
	}
}

func TestRecursionCutOff(t *testing.T) {
	pb := air.NewProgramBuilder()
	c := pb.Class("R", air.KindPlain)
	m := c.Method("rec", 0)
	m.Invoke("R.rec")
	m.Done()
	if _, err := Analyze(pb.MustBuild(), "x", []string{"R.rec"}, Options{}); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
}

func TestFanOutDepCarriesWildcardPath(t *testing.T) {
	g := analyzeAll(t, buildFeedDetail(t), "Main.launch")
	deps := g.DepsInto("testapp:Main.loadDetail#0")
	found := false
	for _, d := range deps {
		if d.Loc.Where == "form" && d.Loc.Key == "cid" {
			found = true
			if !strings.Contains(d.RespPath, "[*]") {
				t.Fatalf("cid dep path = %q, want wildcard fan-out", d.RespPath)
			}
		}
	}
	if !found {
		t.Fatalf("no form:cid dep; deps = %+v", deps)
	}
}
