package static

import (
	"sort"
	"strconv"
	"strings"

	"appx/internal/httpmsg"
	"appx/internal/sig"
)

// buildGraph lowers the accumulated per-site evidence into the signature and
// dependency graph.
func (an *analyzer) buildGraph() *sig.Graph {
	g := sig.NewGraph(an.app)

	ids := make([]string, 0, len(an.sites))
	for id := range an.sites {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	for _, id := range ids {
		site := an.sites[id]
		if len(site.snapshots) == 0 {
			continue
		}
		s := an.buildSignature(site)
		g.Add(s)
		addDeps(g, s)
	}
	return g
}

// buildSignature merges a site's path snapshots into one signature, marking
// fields absent on some paths optional (Figure 8's instance classes).
func (an *analyzer) buildSignature(site *siteInfo) *sig.Signature {
	merged := site.snapshots[0]
	for _, snap := range site.snapshots[1:] {
		m := &reqSnapshot{
			method:   merged.method,
			uriParts: merged.uriParts,
			query:    joinFields(merged.query, snap.query),
			header:   joinFields(merged.header, snap.header),
			form:     joinFields(merged.form, snap.form),
		}
		if m.method == "" {
			m.method = snap.method
		}
		if len(m.uriParts) == 0 {
			m.uriParts = snap.uriParts
		} else if len(snap.uriParts) > 0 && patternKey(partsPattern(m.uriParts)) != patternKey(partsPattern(snap.uriParts)) {
			// URI differs across paths: degrade per-part via join.
			m.uriParts = joinURIParts(m.uriParts, snap.uriParts)
		}
		merged = m
	}

	uri, urlQuery := splitURL(merged.uriParts)
	s := &sig.Signature{
		ID:     site.id,
		App:    an.app,
		Method: merged.method,
		URI:    uri,
	}
	for _, f := range urlQuery {
		s.Query = append(s.Query, sig.Field{Key: f.key, Value: toPattern(f.val), Optional: f.optional})
	}
	for _, f := range merged.query {
		s.Query = append(s.Query, sig.Field{Key: f.key, Value: toPattern(f.val), Optional: f.optional})
	}
	for _, f := range merged.header {
		s.Header = append(s.Header, sig.Field{Key: f.key, Value: toPattern(f.val), Optional: f.optional})
	}
	if len(merged.form) > 0 {
		s.BodyKind = httpmsg.BodyForm
		for _, f := range merged.form {
			s.BodyForm = append(s.BodyForm, sig.Field{Key: f.key, Value: toPattern(f.val), Optional: f.optional})
		}
	}
	for path := range site.respFields {
		s.RespFields = append(s.RespFields, path)
	}
	sort.Strings(s.RespFields)
	return s
}

func partsPattern(parts []AVal) sig.Pattern {
	var p sig.Pattern
	for _, v := range parts {
		p = sig.Concat(p, toPattern(v))
	}
	return p
}

func joinURIParts(a, b []AVal) []AVal {
	if len(a) != len(b) {
		return []AVal{AWild{Origin: "uri-join"}}
	}
	out := make([]AVal, len(a))
	for i := range a {
		out[i] = joinVal(a[i], b[i])
	}
	return out
}

// splitURL lowers the abstract URL parts into a host+path URI pattern and
// URL-embedded query fields. The scheme prefix is stripped from the leading
// literal; a '?' inside a literal starts the query string, which is parsed
// as k=v pairs separated by '&' (values may continue into dynamic parts,
// e.g. "http://h/img?cid=" + id).
func splitURL(parts []AVal) (sig.Pattern, []fieldVal) {
	var uri sig.Pattern
	var query []fieldVal

	inQuery := false
	var curKey string
	var curVal sig.Pattern
	haveKey := false

	flush := func() {
		if haveKey {
			query = append(query, fieldVal{key: curKey, val: patternToAVal(curVal)})
			curKey, curVal, haveKey = "", sig.Pattern{}, false
		}
	}

	for i, part := range parts {
		lit, isLit := litString(part)
		if isLit && i == 0 {
			lit = stripScheme(lit)
		}
		if !inQuery {
			if !isLit {
				uri = sig.Concat(uri, toPattern(part))
				continue
			}
			qi := strings.IndexByte(lit, '?')
			if qi < 0 {
				uri = sig.Concat(uri, sig.Literal(lit))
				continue
			}
			if qi > 0 {
				uri = sig.Concat(uri, sig.Literal(lit[:qi]))
			}
			inQuery = true
			lit = lit[qi+1:]
			// fall through to query parsing of the remainder
		}
		if !isLit {
			// Dynamic fragment extends the current value.
			curVal = sig.Concat(curVal, toPattern(part))
			continue
		}
		for lit != "" {
			amp := strings.IndexByte(lit, '&')
			var seg string
			if amp >= 0 {
				seg, lit = lit[:amp], lit[amp+1:]
			} else {
				seg, lit = lit, ""
			}
			if !haveKey {
				if eq := strings.IndexByte(seg, '='); eq >= 0 {
					curKey = seg[:eq]
					haveKey = true
					if rest := seg[eq+1:]; rest != "" {
						curVal = sig.Concat(curVal, sig.Literal(rest))
					}
				}
				// A segment without '=' and no pending key is malformed; skip.
			} else {
				curVal = sig.Concat(curVal, sig.Literal(seg))
			}
			if amp >= 0 {
				flush()
			}
		}
	}
	flush()
	if len(uri.Parts) == 0 {
		uri = sig.Wildcard("uri")
	}
	return uri, query
}

func stripScheme(s string) string {
	for _, p := range []string{"https://", "http://"} {
		if strings.HasPrefix(s, p) {
			return s[len(p):]
		}
	}
	return s
}

// patternToAVal converts a lowered pattern back to an abstract value (used
// when query values were assembled during URL splitting).
func patternToAVal(p sig.Pattern) AVal {
	var parts []AVal
	for _, part := range p.Parts {
		switch part.Kind {
		case sig.Lit:
			parts = append(parts, ALit{S: part.Lit})
		case sig.Wild:
			parts = append(parts, AWild{Origin: part.Origin})
		case sig.Dep:
			parts = append(parts, ARespField{Pred: part.PredID, Path: part.RespPath})
		}
	}
	if len(parts) == 0 {
		return ALit{S: ""}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return AConcat{Parts: parts}
}

// addDeps emits dependency edges for every dep-referencing pattern in the
// signature.
func addDeps(g *sig.Graph, s *sig.Signature) {
	emit := func(p sig.Pattern, loc sig.FieldLoc) {
		for _, part := range p.Parts {
			if part.Kind == sig.Dep && part.PredID != s.ID {
				g.AddDep(sig.Dependency{
					PredID:   part.PredID,
					SuccID:   s.ID,
					RespPath: part.RespPath,
					Loc:      loc,
				})
			}
		}
	}
	for i, part := range s.URI.Parts {
		if part.Kind == sig.Dep && part.PredID != s.ID {
			g.AddDep(sig.Dependency{
				PredID:   part.PredID,
				SuccID:   s.ID,
				RespPath: part.RespPath,
				Loc:      sig.FieldLoc{Where: "uri", Key: strconv.Itoa(i)},
			})
		}
	}
	for _, f := range s.Query {
		emit(f.Value, sig.FieldLoc{Where: "query", Key: f.Key})
	}
	for _, f := range s.Header {
		emit(f.Value, sig.FieldLoc{Where: "header", Key: f.Key})
	}
	for _, f := range s.BodyForm {
		emit(f.Value, sig.FieldLoc{Where: "form", Key: f.Key})
	}
	for _, f := range s.BodyJSON {
		emit(f.Value, sig.FieldLoc{Where: "json", Key: f.Path})
	}
}
