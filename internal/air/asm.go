package air

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual AIR form produced by Program.Disassemble back
// into a verified Program. Together with the disassembler it gives AIR a
// human-writable surface syntax, so custom test apps can be authored as
// text and fed to the analyzer without touching the Go builder:
//
//	activity Main {
//	  method onCreate(params=0, regs=3) {
//	    b0:
//	      const-str v0, "GET"
//	      call-api v1, http.newRequest(v0)
//	      return _
//	  }
//	}
//
// Blank lines and '#' comments are ignored. Assemble(p.Disassemble()) is the
// identity for every verified program.
func Assemble(src string) (*Program, error) {
	p := &asmParser{prog: &Program{}}
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("air: line %d: %w", i+1, err)
		}
	}
	if p.class != nil {
		return nil, fmt.Errorf("air: unterminated class %q", p.class.Name)
	}
	p.prog.ReindexMethods()
	if err := Verify(p.prog); err != nil {
		return nil, err
	}
	return p.prog, nil
}

type asmParser struct {
	prog   *Program
	class  *Class
	method *Method
	block  int // current block index; -1 when none open
}

var kindByName = map[string]ComponentKind{
	"class":    KindPlain,
	"activity": KindActivity,
	"service":  KindService,
	"fragment": KindFragment,
}

func (p *asmParser) line(line string) error {
	switch {
	case line == "}":
		return p.closeScope()
	case p.method != nil && strings.HasPrefix(line, "b") && strings.HasSuffix(line, ":"):
		return p.openBlock(line)
	case p.method != nil:
		return p.instr(line)
	case p.class != nil && strings.HasPrefix(line, "method "):
		return p.openMethod(line)
	case p.class == nil:
		return p.openClass(line)
	default:
		return fmt.Errorf("unexpected %q", line)
	}
}

func (p *asmParser) openClass(line string) error {
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[2] != "{" {
		return fmt.Errorf("want '<kind> <Name> {', got %q", line)
	}
	kind, ok := kindByName[fields[0]]
	if !ok {
		return fmt.Errorf("unknown class kind %q", fields[0])
	}
	p.class = &Class{Name: fields[1], Kind: kind}
	return nil
}

func (p *asmParser) openMethod(line string) error {
	// method name(params=N, regs=M) {
	rest := strings.TrimPrefix(line, "method ")
	if !strings.HasSuffix(rest, "{") {
		return fmt.Errorf("method header missing '{': %q", line)
	}
	rest = strings.TrimSpace(strings.TrimSuffix(rest, "{"))
	open := strings.IndexByte(rest, '(')
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return fmt.Errorf("malformed method header %q", line)
	}
	name := rest[:open]
	params := strings.Split(rest[open+1:len(rest)-1], ",")
	m := &Method{Name: name, Class: p.class.Name}
	for _, kv := range params {
		kv = strings.TrimSpace(kv)
		var n int
		switch {
		case strings.HasPrefix(kv, "params="):
			if _, err := fmt.Sscanf(kv, "params=%d", &n); err != nil {
				return fmt.Errorf("bad %q", kv)
			}
			m.NumParams = n
		case strings.HasPrefix(kv, "regs="):
			if _, err := fmt.Sscanf(kv, "regs=%d", &n); err != nil {
				return fmt.Errorf("bad %q", kv)
			}
			m.NumRegs = n
		default:
			return fmt.Errorf("unknown method attribute %q", kv)
		}
	}
	p.method = m
	p.block = -1
	return nil
}

func (p *asmParser) openBlock(line string) error {
	idxStr := strings.TrimSuffix(strings.TrimPrefix(line, "b"), ":")
	idx, err := strconv.Atoi(idxStr)
	if err != nil {
		return fmt.Errorf("bad block label %q", line)
	}
	if idx != len(p.method.Blocks) {
		return fmt.Errorf("block label b%d out of order (want b%d)", idx, len(p.method.Blocks))
	}
	p.method.Blocks = append(p.method.Blocks, Block{})
	p.block = idx
	return nil
}

func (p *asmParser) closeScope() error {
	switch {
	case p.method != nil:
		p.class.Methods = append(p.class.Methods, p.method)
		p.method = nil
		return nil
	case p.class != nil:
		p.prog.Classes = append(p.prog.Classes, p.class)
		p.class = nil
		return nil
	default:
		return fmt.Errorf("unmatched '}'")
	}
}

// reg parses "v3" or "_".
func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if s == "_" {
		return NoReg, nil
	}
	if !strings.HasPrefix(s, "v") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

// parseTarget parses "->b7".
func parseTarget(s string) (int, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "->b") {
		return 0, fmt.Errorf("bad branch target %q", s)
	}
	return strconv.Atoi(s[3:])
}

// splitArgs splits "a, b, c" respecting no nesting (registers only).
func splitArgs(s string) ([]Reg, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]Reg, len(parts))
	for i, part := range parts {
		r, err := parseReg(part)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func (p *asmParser) instr(line string) error {
	if p.block < 0 {
		return fmt.Errorf("instruction outside a block: %q", line)
	}
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return fmt.Errorf("malformed instruction %q", line)
	}
	op, rest := line[:sp], strings.TrimSpace(line[sp+1:])
	in, err := parseInstr(op, rest)
	if err != nil {
		return err
	}
	b := &p.method.Blocks[p.block]
	b.Instrs = append(b.Instrs, in)
	return nil
}

func parseInstr(op, rest string) (Instr, error) {
	bad := func(err error) (Instr, error) { return Instr{}, err }
	two := func() (string, string, error) {
		i := strings.IndexByte(rest, ',')
		if i < 0 {
			return "", "", fmt.Errorf("%s: want two operands in %q", op, rest)
		}
		return strings.TrimSpace(rest[:i]), strings.TrimSpace(rest[i+1:]), nil
	}

	switch op {
	case "const-str":
		a, b, err := two()
		if err != nil {
			return bad(err)
		}
		dst, err := parseReg(a)
		if err != nil {
			return bad(err)
		}
		s, err := strconv.Unquote(b)
		if err != nil {
			return bad(fmt.Errorf("const-str: bad string %q", b))
		}
		return Instr{Op: OpConstStr, Dst: dst, Str: s, A: NoReg, B: NoReg}, nil

	case "const-int", "const-bool":
		a, b, err := two()
		if err != nil {
			return bad(err)
		}
		dst, err := parseReg(a)
		if err != nil {
			return bad(err)
		}
		n, err := strconv.ParseInt(b, 10, 64)
		if err != nil {
			return bad(fmt.Errorf("%s: bad integer %q", op, b))
		}
		o := OpConstInt
		if op == "const-bool" {
			o = OpConstBool
		}
		return Instr{Op: o, Dst: dst, Int: n, A: NoReg, B: NoReg}, nil

	case "move":
		a, b, err := two()
		if err != nil {
			return bad(err)
		}
		dst, err := parseReg(a)
		if err != nil {
			return bad(err)
		}
		src, err := parseReg(b)
		if err != nil {
			return bad(err)
		}
		return Instr{Op: OpMove, Dst: dst, A: src, B: NoReg}, nil

	case "concat":
		parts := strings.Split(rest, ",")
		if len(parts) != 3 {
			return bad(fmt.Errorf("concat: want 3 operands"))
		}
		dst, err := parseReg(parts[0])
		if err != nil {
			return bad(err)
		}
		a, err := parseReg(parts[1])
		if err != nil {
			return bad(err)
		}
		b, err := parseReg(parts[2])
		if err != nil {
			return bad(err)
		}
		return Instr{Op: OpConcat, Dst: dst, A: a, B: b}, nil

	case "new-object":
		a, b, err := two()
		if err != nil {
			return bad(err)
		}
		dst, err := parseReg(a)
		if err != nil {
			return bad(err)
		}
		return Instr{Op: OpNewObject, Dst: dst, Sym: b, A: NoReg, B: NoReg}, nil

	case "new-map", "new-list":
		dst, err := parseReg(rest)
		if err != nil {
			return bad(err)
		}
		o := OpNewMap
		if op == "new-list" {
			o = OpNewList
		}
		return Instr{Op: o, Dst: dst, A: NoReg, B: NoReg}, nil

	case "iput":
		// iput vA.field, vB
		a, b, err := two()
		if err != nil {
			return bad(err)
		}
		dot := strings.IndexByte(a, '.')
		if dot < 0 {
			return bad(fmt.Errorf("iput: want vA.field, got %q", a))
		}
		obj, err := parseReg(a[:dot])
		if err != nil {
			return bad(err)
		}
		src, err := parseReg(b)
		if err != nil {
			return bad(err)
		}
		return Instr{Op: OpIPut, A: obj, B: src, Sym: a[dot+1:], Dst: NoReg}, nil

	case "iget":
		// iget vD, vA.field
		a, b, err := two()
		if err != nil {
			return bad(err)
		}
		dst, err := parseReg(a)
		if err != nil {
			return bad(err)
		}
		dot := strings.IndexByte(b, '.')
		if dot < 0 {
			return bad(fmt.Errorf("iget: want vA.field, got %q", b))
		}
		obj, err := parseReg(b[:dot])
		if err != nil {
			return bad(err)
		}
		return Instr{Op: OpIGet, Dst: dst, A: obj, Sym: b[dot+1:], B: NoReg}, nil

	case "map-put":
		// map-put vA["k"], vB
		a, b, err := two()
		if err != nil {
			return bad(err)
		}
		obj, key, err := parseIndexed(a)
		if err != nil {
			return bad(err)
		}
		src, err := parseReg(b)
		if err != nil {
			return bad(err)
		}
		return Instr{Op: OpMapPut, A: obj, B: src, Sym: key, Dst: NoReg}, nil

	case "map-get":
		// map-get vD, vA["k"]
		a, b, err := two()
		if err != nil {
			return bad(err)
		}
		dst, err := parseReg(a)
		if err != nil {
			return bad(err)
		}
		obj, key, err := parseIndexed(b)
		if err != nil {
			return bad(err)
		}
		return Instr{Op: OpMapGet, Dst: dst, A: obj, Sym: key, B: NoReg}, nil

	case "list-add":
		a, b, err := two()
		if err != nil {
			return bad(err)
		}
		list, err := parseReg(a)
		if err != nil {
			return bad(err)
		}
		src, err := parseReg(b)
		if err != nil {
			return bad(err)
		}
		return Instr{Op: OpListAdd, A: list, B: src, Dst: NoReg}, nil

	case "invoke", "call-api":
		// invoke vD, Sym(args)
		a, b, err := two()
		if err != nil {
			return bad(err)
		}
		dst, err := parseReg(a)
		if err != nil {
			return bad(err)
		}
		open := strings.IndexByte(b, '(')
		if open < 0 || !strings.HasSuffix(b, ")") {
			return bad(fmt.Errorf("%s: want Sym(args), got %q", op, b))
		}
		args, err := splitArgs(b[open+1 : len(b)-1])
		if err != nil {
			return bad(err)
		}
		o := OpInvoke
		if op == "call-api" {
			o = OpCallAPI
		}
		return Instr{Op: o, Dst: dst, Sym: b[:open], Args: args, A: NoReg, B: NoReg}, nil

	case "if", "if-null":
		a, b, err := two()
		if err != nil {
			return bad(err)
		}
		cond, err := parseReg(a)
		if err != nil {
			return bad(err)
		}
		tgt, err := parseTarget(b)
		if err != nil {
			return bad(err)
		}
		o := OpIf
		if op == "if-null" {
			o = OpIfNull
		}
		return Instr{Op: o, A: cond, Target: tgt, B: NoReg, Dst: NoReg}, nil

	case "goto":
		tgt, err := parseTarget(rest)
		if err != nil {
			return bad(err)
		}
		return Instr{Op: OpGoto, Target: tgt, A: NoReg, B: NoReg, Dst: NoReg}, nil

	case "for-each":
		// for-each vA, Sym(item[, extras...])
		a, b, err := two()
		if err != nil {
			return bad(err)
		}
		list, err := parseReg(a)
		if err != nil {
			return bad(err)
		}
		open := strings.IndexByte(b, '(')
		if open < 0 || !strings.HasSuffix(b, ")") {
			return bad(fmt.Errorf("for-each: want Sym(item...), got %q", b))
		}
		inner := strings.TrimSpace(b[open+1 : len(b)-1])
		if inner != "item" && !strings.HasPrefix(inner, "item,") {
			return bad(fmt.Errorf("for-each: first argument must be 'item', got %q", inner))
		}
		var extras []Reg
		if rest := strings.TrimPrefix(inner, "item"); strings.HasPrefix(rest, ",") {
			extras, err = splitArgs(rest[1:])
			if err != nil {
				return bad(err)
			}
		}
		return Instr{Op: OpForEach, A: list, Sym: b[:open], Args: extras, B: NoReg, Dst: NoReg}, nil

	case "return":
		r, err := parseReg(rest)
		if err != nil {
			return bad(err)
		}
		return Instr{Op: OpReturn, A: r, B: NoReg, Dst: NoReg}, nil
	}
	return bad(fmt.Errorf("unknown opcode %q", op))
}

// parseIndexed parses `vA["key"]`.
func parseIndexed(s string) (Reg, string, error) {
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return 0, "", fmt.Errorf("want vA[\"key\"], got %q", s)
	}
	r, err := parseReg(s[:open])
	if err != nil {
		return 0, "", err
	}
	key, err := strconv.Unquote(s[open+1 : len(s)-1])
	if err != nil {
		return 0, "", fmt.Errorf("bad key in %q", s)
	}
	return r, key, nil
}
