package air

import (
	"strings"
	"testing"
)

func TestAssembleMinimal(t *testing.T) {
	src := `
# a tiny app
activity Main {
  method onCreate(params=0, regs=3) {
    b0:
      const-str v0, "GET"
      call-api v1, http.newRequest(v0)
      call-api v2, http.execute(v1)
      return _
  }
}
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := p.Method("Main.onCreate")
	if m == nil || len(m.Blocks) != 1 || len(m.Blocks[0].Instrs) != 4 {
		t.Fatalf("program shape wrong: %+v", m)
	}
	if m.Blocks[0].Instrs[1].Sym != APIHTTPNewRequest {
		t.Fatalf("api sym = %q", m.Blocks[0].Instrs[1].Sym)
	}
}

// TestAssembleDisassembleRoundTripSample: the disassembly of a builder-made
// program reassembles into an identical program.
func TestAssembleDisassembleRoundTripSample(t *testing.T) {
	p := buildSample(t)
	src := p.Disassemble()
	p2, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble(Disassemble(p)): %v\n%s", err, src)
	}
	if got := p2.Disassemble(); got != src {
		t.Fatalf("round trip changed program:\n--- original\n%s\n--- reassembled\n%s", src, got)
	}
}

func TestAssembleAllOpcodesRoundTrip(t *testing.T) {
	// A program exercising every opcode, built with the builder, then
	// round-tripped through text.
	pb := NewProgramBuilder()
	c := pb.Class("All", KindFragment)
	h := c.Method("each", 2)
	h.Done()
	m := c.Method("go", 1)
	then := m.Block()
	join := m.Block()
	s := m.ConstStr("s")
	n := m.ConstInt(42)
	bl := m.ConstBool(true)
	mv := m.Move(s)
	cc := m.Concat(mv, s)
	obj := m.NewObject("Holder")
	m.IPut(obj, "f", cc)
	fg := m.IGet(obj, "f")
	mp := m.NewMap()
	m.MapPut(mp, "key x", fg)
	mg := m.MapGet(mp, "key x")
	ls := m.NewList()
	m.ListAdd(ls, mg)
	m.ForEach(ls, "All.each", n)
	iv := m.Invoke("All.each", s, n)
	_ = iv
	api := m.CallAPI(APIDeviceLocale)
	m.IfNull(api, then)
	m.If(bl, then)
	m.Goto(join)
	m.Enter(then)
	m.Goto(join)
	m.Enter(join)
	m.Return(s)
	m.Done()
	p := pb.MustBuild()

	src := p.Disassemble()
	p2, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v\n%s", err, src)
	}
	if p2.Disassemble() != src {
		t.Fatal("all-opcode round trip changed the program")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unterminated class", "activity A {\n"},
		{"bad kind", "widget A {\n}\n"},
		{"bad method header", "activity A {\nmethod f{\n}\n}\n"},
		{"out of order block", "activity A {\nmethod f(params=0, regs=1) {\nb1:\nreturn _\n}\n}\n"},
		{"instr outside block", "activity A {\nmethod f(params=0, regs=1) {\nreturn _\n}\n}\n"},
		{"bad register", "activity A {\nmethod f(params=0, regs=1) {\nb0:\nmove x0, v0\nreturn _\n}\n}\n"},
		{"unknown opcode", "activity A {\nmethod f(params=0, regs=1) {\nb0:\nfly v0\nreturn _\n}\n}\n"},
		{"bad string", `activity A {
method f(params=0, regs=1) {
b0:
const-str v0, unquoted
return _
}
}`},
		{"verify fails", "activity A {\nmethod f(params=0, regs=1) {\nb0:\ninvoke v0, Missing.g()\nreturn _\n}\n}\n"},
		{"stray brace", "}\n"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestAssembleCommentsAndBlanks(t *testing.T) {
	src := `
# leading comment

class C {
  method f(params=0, regs=1) {
    b0:
      # comment inside block
      const-int v0, 7
      return v0
  }
}
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method("C.f") == nil {
		t.Fatal("method missing")
	}
	if !strings.Contains(p.Disassemble(), "const-int v0, 7") {
		t.Fatal("instruction lost")
	}
}
