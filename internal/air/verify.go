package air

import (
	"fmt"
	"sort"
)

// Verify checks structural well-formedness of a program:
//
//   - every block's branch targets are in range,
//   - every non-final block ends in a terminator or falls through to an
//     existing next block,
//   - register operands are within the method frame,
//   - invoked user methods exist and are called with the right arity,
//   - API names are known and called with plausible arity,
//   - ForEach handler methods exist and accept 1+len(extra) parameters.
//
// The interpreter and the static analyzer both assume a verified program.
func Verify(p *Program) error {
	p.ReindexMethods()
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			if err := verifyMethod(p, m); err != nil {
				return fmt.Errorf("air: %s: %w", m.QualifiedName(), err)
			}
		}
	}
	return nil
}

func verifyMethod(p *Program, m *Method) error {
	if len(m.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	if m.NumParams > m.NumRegs {
		return fmt.Errorf("numParams %d > numRegs %d", m.NumParams, m.NumRegs)
	}
	for bi, b := range m.Blocks {
		if len(b.Instrs) == 0 && bi != len(m.Blocks)-1 {
			// Empty interior block: permitted (falls through) but suspicious
			// enough to reject — the builder never produces it on purpose.
			return fmt.Errorf("block b%d is empty", bi)
		}
		for ii, in := range b.Instrs {
			if err := verifyInstr(p, m, in); err != nil {
				return fmt.Errorf("b%d[%d] %s: %w", bi, ii, in.String(), err)
			}
		}
	}
	// The final block must end in a terminator (Done() guarantees this).
	last := m.Blocks[len(m.Blocks)-1]
	if n := len(last.Instrs); n == 0 || !isTerminator(last.Instrs[n-1].Op) {
		return fmt.Errorf("final block does not end in a terminator")
	}
	return nil
}

func verifyInstr(p *Program, m *Method, in Instr) error {
	checkReg := func(r Reg, allowNone bool) error {
		if r == NoReg {
			if allowNone {
				return nil
			}
			return fmt.Errorf("missing register operand")
		}
		if int(r) < 0 || int(r) >= m.NumRegs {
			return fmt.Errorf("register %s out of range [0,%d)", r, m.NumRegs)
		}
		return nil
	}
	checkTarget := func(t int) error {
		if t < 0 || t >= len(m.Blocks) {
			return fmt.Errorf("branch target b%d out of range", t)
		}
		return nil
	}

	switch in.Op {
	case OpConstStr, OpConstInt, OpConstBool, OpNewObject, OpNewMap, OpNewList:
		return checkReg(in.Dst, false)
	case OpMove:
		if err := checkReg(in.Dst, false); err != nil {
			return err
		}
		return checkReg(in.A, false)
	case OpConcat:
		if err := checkReg(in.Dst, false); err != nil {
			return err
		}
		if err := checkReg(in.A, false); err != nil {
			return err
		}
		return checkReg(in.B, false)
	case OpIPut, OpMapPut:
		if in.Sym == "" {
			return fmt.Errorf("missing field/key name")
		}
		if err := checkReg(in.A, false); err != nil {
			return err
		}
		return checkReg(in.B, false)
	case OpIGet, OpMapGet:
		if in.Sym == "" {
			return fmt.Errorf("missing field/key name")
		}
		if err := checkReg(in.Dst, false); err != nil {
			return err
		}
		return checkReg(in.A, false)
	case OpListAdd:
		if err := checkReg(in.A, false); err != nil {
			return err
		}
		return checkReg(in.B, false)
	case OpInvoke:
		callee := p.Method(in.Sym)
		if callee == nil {
			return fmt.Errorf("unknown method %q", in.Sym)
		}
		if len(in.Args) != callee.NumParams {
			return fmt.Errorf("method %q wants %d args, got %d", in.Sym, callee.NumParams, len(in.Args))
		}
		for _, a := range in.Args {
			if err := checkReg(a, false); err != nil {
				return err
			}
		}
		return checkReg(in.Dst, false)
	case OpCallAPI:
		want, ok := apiArity[in.Sym]
		if !ok {
			return fmt.Errorf("unknown API %q", in.Sym)
		}
		if len(in.Args) != want {
			return fmt.Errorf("API %q wants %d args, got %d", in.Sym, want, len(in.Args))
		}
		for _, a := range in.Args {
			if err := checkReg(a, false); err != nil {
				return err
			}
		}
		return checkReg(in.Dst, false)
	case OpIf, OpIfNull:
		if err := checkReg(in.A, false); err != nil {
			return err
		}
		return checkTarget(in.Target)
	case OpGoto:
		return checkTarget(in.Target)
	case OpForEach:
		callee := p.Method(in.Sym)
		if callee == nil {
			return fmt.Errorf("unknown for-each handler %q", in.Sym)
		}
		if callee.NumParams != 1+len(in.Args) {
			return fmt.Errorf("for-each handler %q wants %d params, got element+%d extras", in.Sym, callee.NumParams, len(in.Args))
		}
		for _, a := range in.Args {
			if err := checkReg(a, false); err != nil {
				return err
			}
		}
		return checkReg(in.A, false)
	case OpReturn:
		return checkReg(in.A, true)
	default:
		return fmt.Errorf("unknown opcode %d", in.Op)
	}
}

// apiArity maps each semantic API to its expected argument count.
var apiArity = map[string]int{
	APIHTTPNewRequest:   1,
	APIHTTPSetURL:       2,
	APIHTTPAddQuery:     3,
	APIHTTPAddHeader:    3,
	APIHTTPSetBodyField: 3,
	APIHTTPExecute:      1,
	APIHTTPRespBody:     1,
	APIJSONGet:          2,
	APIJSONForEach:      2,
	APIListGet:          2,
	APIListLen:          1,
	APIDeviceUserAgent:  0,
	APIDeviceCookie:     1,
	APIDeviceLocale:     0,
	APIDeviceVersion:    0,
	APIDeviceFlag:       1,
	APIIntentPut:        2,
	APIIntentGet:        1,
	APIRxJust:           1,
	APIRxDefer:          1,
	APIRxMap:            2,
	APIRxFlatMap:        2,
	APIRxSubscribe:      2,
	APIUIRender:         1,
	APIUIShowImage:      1,
}

// APIs returns the sorted list of known semantic API names.
func APIs() []string {
	out := make([]string, 0, len(apiArity))
	for k := range apiArity {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// APIArity reports the arity of a semantic API, with ok=false for unknown
// names.
func APIArity(name string) (int, bool) {
	n, ok := apiArity[name]
	return n, ok
}
