package air

import "fmt"

// ProgramBuilder assembles a Program class by class. The synthetic apps in
// internal/apps use it as their "compiler back end".
type ProgramBuilder struct {
	prog *Program
}

// NewProgramBuilder returns an empty program builder.
func NewProgramBuilder() *ProgramBuilder {
	return &ProgramBuilder{prog: &Program{}}
}

// Class opens (or reopens) a class with the given kind.
func (pb *ProgramBuilder) Class(name string, kind ComponentKind) *ClassBuilder {
	for _, c := range pb.prog.Classes {
		if c.Name == name {
			return &ClassBuilder{pb: pb, class: c}
		}
	}
	c := &Class{Name: name, Kind: kind}
	pb.prog.Classes = append(pb.prog.Classes, c)
	return &ClassBuilder{pb: pb, class: c}
}

// Build finalizes and verifies the program.
func (pb *ProgramBuilder) Build() (*Program, error) {
	pb.prog.ReindexMethods()
	if err := Verify(pb.prog); err != nil {
		return nil, err
	}
	return pb.prog, nil
}

// MustBuild is Build that panics on error; the app definitions are static
// data, so a malformed one is a programming bug.
func (pb *ProgramBuilder) MustBuild() *Program {
	p, err := pb.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// ClassBuilder adds methods to one class.
type ClassBuilder struct {
	pb    *ClassBuilderParent
	class *Class
}

// ClassBuilderParent is the program builder interface ClassBuilder needs;
// concretely always *ProgramBuilder.
type ClassBuilderParent = ProgramBuilder

// Method opens a method body with the given parameter count.
func (cb *ClassBuilder) Method(name string, numParams int) *MethodBuilder {
	m := &Method{Name: name, Class: cb.class.Name, NumParams: numParams, NumRegs: numParams}
	cb.class.Methods = append(cb.class.Methods, m)
	mb := &MethodBuilder{method: m, class: cb}
	mb.newBlock() // entry block b0
	return mb
}

// MethodBuilder emits instructions into the current block of a method and
// allocates registers. Parameter i is register Reg(i).
type MethodBuilder struct {
	method *Method
	class  *ClassBuilder
	cur    int
}

// Param returns the register holding parameter i.
func (mb *MethodBuilder) Param(i int) Reg {
	if i < 0 || i >= mb.method.NumParams {
		panic(fmt.Sprintf("air: method %s has %d params, requested %d", mb.method.QualifiedName(), mb.method.NumParams, i))
	}
	return Reg(i)
}

func (mb *MethodBuilder) newReg() Reg {
	r := Reg(mb.method.NumRegs)
	mb.method.NumRegs++
	return r
}

func (mb *MethodBuilder) newBlock() int {
	mb.method.Blocks = append(mb.method.Blocks, Block{})
	mb.cur = len(mb.method.Blocks) - 1
	return mb.cur
}

// Block reserves a new basic block and returns its index without switching
// to it. Use Seal/Goto/If to wire control flow, then Enter to emit into it.
func (mb *MethodBuilder) Block() int {
	mb.method.Blocks = append(mb.method.Blocks, Block{})
	return len(mb.method.Blocks) - 1
}

// Enter switches emission to block idx.
func (mb *MethodBuilder) Enter(idx int) *MethodBuilder {
	if idx < 0 || idx >= len(mb.method.Blocks) {
		panic(fmt.Sprintf("air: invalid block %d", idx))
	}
	mb.cur = idx
	return mb
}

func (mb *MethodBuilder) emit(in Instr) {
	b := &mb.method.Blocks[mb.cur]
	b.Instrs = append(b.Instrs, in)
}

// ConstStr emits a string constant load and returns the destination register.
func (mb *MethodBuilder) ConstStr(s string) Reg {
	d := mb.newReg()
	mb.emit(Instr{Op: OpConstStr, Dst: d, Str: s, A: NoReg, B: NoReg})
	return d
}

// ConstInt emits an integer constant load.
func (mb *MethodBuilder) ConstInt(n int64) Reg {
	d := mb.newReg()
	mb.emit(Instr{Op: OpConstInt, Dst: d, Int: n, A: NoReg, B: NoReg})
	return d
}

// ConstBool emits a boolean constant load.
func (mb *MethodBuilder) ConstBool(v bool) Reg {
	d := mb.newReg()
	n := int64(0)
	if v {
		n = 1
	}
	mb.emit(Instr{Op: OpConstBool, Dst: d, Int: n, A: NoReg, B: NoReg})
	return d
}

// Move copies src into a fresh register.
func (mb *MethodBuilder) Move(src Reg) Reg {
	d := mb.newReg()
	mb.emit(Instr{Op: OpMove, Dst: d, A: src, B: NoReg})
	return d
}

// Concat emits dst = a + b.
func (mb *MethodBuilder) Concat(a, b Reg) Reg {
	d := mb.newReg()
	mb.emit(Instr{Op: OpConcat, Dst: d, A: a, B: b})
	return d
}

// ConcatStr concatenates a register with a trailing string literal.
func (mb *MethodBuilder) ConcatStr(a Reg, s string) Reg {
	return mb.Concat(a, mb.ConstStr(s))
}

// StrConcat concatenates a leading string literal with a register.
func (mb *MethodBuilder) StrConcat(s string, b Reg) Reg {
	return mb.Concat(mb.ConstStr(s), b)
}

// NewObject allocates an instance of class name.
func (mb *MethodBuilder) NewObject(class string) Reg {
	d := mb.newReg()
	mb.emit(Instr{Op: OpNewObject, Dst: d, Sym: class, A: NoReg, B: NoReg})
	return d
}

// IPut stores src into obj.field.
func (mb *MethodBuilder) IPut(obj Reg, field string, src Reg) {
	mb.emit(Instr{Op: OpIPut, A: obj, B: src, Sym: field, Dst: NoReg})
}

// IGet loads obj.field.
func (mb *MethodBuilder) IGet(obj Reg, field string) Reg {
	d := mb.newReg()
	mb.emit(Instr{Op: OpIGet, Dst: d, A: obj, Sym: field, B: NoReg})
	return d
}

// NewMap allocates an empty map.
func (mb *MethodBuilder) NewMap() Reg {
	d := mb.newReg()
	mb.emit(Instr{Op: OpNewMap, Dst: d, A: NoReg, B: NoReg})
	return d
}

// MapPut stores m[key] = src.
func (mb *MethodBuilder) MapPut(m Reg, key string, src Reg) {
	mb.emit(Instr{Op: OpMapPut, A: m, B: src, Sym: key, Dst: NoReg})
}

// MapGet loads m[key].
func (mb *MethodBuilder) MapGet(m Reg, key string) Reg {
	d := mb.newReg()
	mb.emit(Instr{Op: OpMapGet, Dst: d, A: m, Sym: key, B: NoReg})
	return d
}

// NewList allocates an empty list.
func (mb *MethodBuilder) NewList() Reg {
	d := mb.newReg()
	mb.emit(Instr{Op: OpNewList, Dst: d, A: NoReg, B: NoReg})
	return d
}

// ListAdd appends src to list.
func (mb *MethodBuilder) ListAdd(list, src Reg) {
	mb.emit(Instr{Op: OpListAdd, A: list, B: src, Dst: NoReg})
}

// Invoke calls a user method by qualified name.
func (mb *MethodBuilder) Invoke(qualified string, args ...Reg) Reg {
	d := mb.newReg()
	mb.emit(Instr{Op: OpInvoke, Dst: d, Sym: qualified, Args: args, A: NoReg, B: NoReg})
	return d
}

// CallAPI calls a semantic API.
func (mb *MethodBuilder) CallAPI(api string, args ...Reg) Reg {
	d := mb.newReg()
	mb.emit(Instr{Op: OpCallAPI, Dst: d, Sym: api, Args: args, A: NoReg, B: NoReg})
	return d
}

// If branches to block target when cond is truthy.
func (mb *MethodBuilder) If(cond Reg, target int) {
	mb.emit(Instr{Op: OpIf, A: cond, Target: target, B: NoReg, Dst: NoReg})
}

// IfNull branches to block target when v is null.
func (mb *MethodBuilder) IfNull(v Reg, target int) {
	mb.emit(Instr{Op: OpIfNull, A: v, Target: target, B: NoReg, Dst: NoReg})
}

// Goto jumps to block target.
func (mb *MethodBuilder) Goto(target int) {
	mb.emit(Instr{Op: OpGoto, Target: target, A: NoReg, B: NoReg, Dst: NoReg})
}

// ForEach iterates the list register, invoking the qualified method with
// (element, extra...) per iteration.
func (mb *MethodBuilder) ForEach(list Reg, qualified string, extra ...Reg) {
	mb.emit(Instr{Op: OpForEach, A: list, Sym: qualified, Args: extra, B: NoReg, Dst: NoReg})
}

// Return emits a return of v (pass NoReg for a void return).
func (mb *MethodBuilder) Return(v Reg) {
	mb.emit(Instr{Op: OpReturn, A: v, B: NoReg, Dst: NoReg})
}

// Done finishes the method, appending an implicit void return when the last
// block does not already end in a terminator.
func (mb *MethodBuilder) Done() *Method {
	last := &mb.method.Blocks[len(mb.method.Blocks)-1]
	if n := len(last.Instrs); n == 0 || !isTerminator(last.Instrs[n-1].Op) {
		last.Instrs = append(last.Instrs, Instr{Op: OpReturn, A: NoReg, B: NoReg, Dst: NoReg})
	}
	return mb.method
}

func isTerminator(op Op) bool {
	return op == OpReturn || op == OpGoto
}
