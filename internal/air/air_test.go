package air

import (
	"encoding/json"
	"strings"
	"testing"
)

// buildSample constructs a small two-class program exercising most opcodes:
// an activity that fetches a feed and hands each item id to a detail loader
// through an Intent.
func buildSample(t testing.TB) *Program {
	t.Helper()
	pb := NewProgramBuilder()

	main := pb.Class("MainActivity", KindActivity)
	m := main.Method("onCreate", 0)
	req := m.CallAPI(APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(APIHTTPSetURL, req, m.ConstStr("https://api.example.com/feed"))
	m.CallAPI(APIHTTPAddHeader, req, m.ConstStr("User-Agent"), m.CallAPI(APIDeviceUserAgent))
	resp := m.CallAPI(APIHTTPExecute, req)
	body := m.CallAPI(APIHTTPRespBody, resp)
	items := m.CallAPI(APIJSONGet, body, m.ConstStr("items"))
	m.ForEach(items, "MainActivity.openDetail")
	m.CallAPI(APIUIRender, m.ConstStr("feed"))
	m.Done()

	h := main.Method("openDetail", 1)
	id := h.CallAPI(APIJSONGet, h.Param(0), h.ConstStr("id"))
	h.CallAPI(APIIntentPut, h.ConstStr("item_id"), id)
	h.Invoke("DetailActivity.onCreate")
	h.Done()

	det := pb.Class("DetailActivity", KindActivity)
	d := det.Method("onCreate", 0)
	did := d.CallAPI(APIIntentGet, d.ConstStr("item_id"))
	dreq := d.CallAPI(APIHTTPNewRequest, d.ConstStr("GET"))
	url := d.StrConcat("https://api.example.com/detail/", did)
	d.CallAPI(APIHTTPSetURL, dreq, url)
	dresp := d.CallAPI(APIHTTPExecute, dreq)
	d.CallAPI(APIUIRender, d.ConstStr("detail"))
	_ = dresp
	d.Done()

	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuildAndVerify(t *testing.T) {
	p := buildSample(t)
	if got := len(p.Classes); got != 2 {
		t.Fatalf("classes = %d, want 2", got)
	}
	if p.Method("MainActivity.onCreate") == nil {
		t.Fatal("method index missing MainActivity.onCreate")
	}
	if p.Method("Nope.x") != nil {
		t.Fatal("unexpected method resolution")
	}
}

func TestMethodsOrder(t *testing.T) {
	p := buildSample(t)
	ms := p.Methods()
	want := []string{"MainActivity.onCreate", "MainActivity.openDetail", "DetailActivity.onCreate"}
	if len(ms) != len(want) {
		t.Fatalf("methods = %d, want %d", len(ms), len(want))
	}
	for i, m := range ms {
		if m.QualifiedName() != want[i] {
			t.Errorf("method[%d] = %s, want %s", i, m.QualifiedName(), want[i])
		}
	}
}

func TestDisassembleContainsOps(t *testing.T) {
	p := buildSample(t)
	dis := p.Disassemble()
	for _, want := range []string{
		"activity MainActivity",
		"call-api",
		"http.execute",
		"for-each",
		"intent.put",
		`const-str`,
		"concat",
	} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q\n%s", want, dis)
		}
	}
}

func TestVerifyRejectsUnknownMethod(t *testing.T) {
	pb := NewProgramBuilder()
	c := pb.Class("C", KindPlain)
	m := c.Method("f", 0)
	m.Invoke("Missing.method")
	m.Done()
	if _, err := pb.Build(); err == nil {
		t.Fatal("Build succeeded with unknown invoke target")
	}
}

func TestVerifyRejectsBadArity(t *testing.T) {
	pb := NewProgramBuilder()
	c := pb.Class("C", KindPlain)
	callee := c.Method("g", 2)
	callee.Return(callee.Param(0))
	m := c.Method("f", 0)
	one := m.ConstInt(1)
	m.Invoke("C.g", one) // wants 2 args
	m.Done()
	if _, err := pb.Build(); err == nil {
		t.Fatal("Build succeeded with wrong invoke arity")
	}
}

func TestVerifyRejectsUnknownAPI(t *testing.T) {
	pb := NewProgramBuilder()
	c := pb.Class("C", KindPlain)
	m := c.Method("f", 0)
	m.emit(Instr{Op: OpCallAPI, Dst: m.newReg(), Sym: "nope.api", A: NoReg, B: NoReg})
	m.Done()
	if _, err := pb.Build(); err == nil {
		t.Fatal("Build succeeded with unknown API")
	}
}

func TestVerifyRejectsBadAPIArity(t *testing.T) {
	pb := NewProgramBuilder()
	c := pb.Class("C", KindPlain)
	m := c.Method("f", 0)
	m.emit(Instr{Op: OpCallAPI, Dst: m.newReg(), Sym: APIHTTPExecute, A: NoReg, B: NoReg}) // wants 1 arg
	m.Done()
	if _, err := pb.Build(); err == nil {
		t.Fatal("Build succeeded with wrong API arity")
	}
}

func TestVerifyRejectsOutOfRangeRegister(t *testing.T) {
	pb := NewProgramBuilder()
	c := pb.Class("C", KindPlain)
	m := c.Method("f", 0)
	m.emit(Instr{Op: OpMove, Dst: m.newReg(), A: Reg(999), B: NoReg})
	m.Done()
	if _, err := pb.Build(); err == nil {
		t.Fatal("Build succeeded with out-of-range register")
	}
}

func TestVerifyRejectsBadBranchTarget(t *testing.T) {
	pb := NewProgramBuilder()
	c := pb.Class("C", KindPlain)
	m := c.Method("f", 0)
	cond := m.ConstBool(true)
	m.If(cond, 42)
	m.Done()
	if _, err := pb.Build(); err == nil {
		t.Fatal("Build succeeded with out-of-range branch target")
	}
}

func TestVerifyRejectsForEachHandlerArity(t *testing.T) {
	pb := NewProgramBuilder()
	c := pb.Class("C", KindPlain)
	h := c.Method("handler", 3) // wants element + 2 extras
	h.Done()
	m := c.Method("f", 0)
	list := m.NewList()
	m.ForEach(list, "C.handler") // provides element only
	m.Done()
	if _, err := pb.Build(); err == nil {
		t.Fatal("Build succeeded with bad for-each handler arity")
	}
}

func TestBranchConstruction(t *testing.T) {
	pb := NewProgramBuilder()
	c := pb.Class("C", KindPlain)
	m := c.Method("pick", 1)
	then := m.Block()
	join := m.Block()
	m.If(m.Param(0), then)
	a := m.ConstStr("no")
	m.emitMoveReturnHelper(a, join)
	m.Enter(then)
	b := m.ConstStr("yes")
	m.emitMoveReturnHelper(b, join)
	m.Enter(join)
	m.Return(NoReg)
	m.Done()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	meth := p.Method("C.pick")
	if len(meth.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(meth.Blocks))
	}
}

// emitMoveReturnHelper emits a goto to the join block (test helper standing
// in for richer terminator variety).
func (mb *MethodBuilder) emitMoveReturnHelper(_ Reg, join int) {
	mb.Goto(join)
}

func TestAPIArity(t *testing.T) {
	if n, ok := APIArity(APIHTTPAddQuery); !ok || n != 3 {
		t.Fatalf("APIArity(http.addQuery) = %d,%v", n, ok)
	}
	if _, ok := APIArity("bogus"); ok {
		t.Fatal("APIArity accepted bogus name")
	}
	apis := APIs()
	if len(apis) != 25 {
		t.Fatalf("APIs() = %d entries, want 25", len(apis))
	}
	for i := 1; i < len(apis); i++ {
		if apis[i-1] >= apis[i] {
			t.Fatalf("APIs() not sorted at %d: %s >= %s", i, apis[i-1], apis[i])
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConstStr, Dst: 3, Str: "x"}, `const-str v3, "x"`},
		{Instr{Op: OpIPut, A: 1, B: 2, Sym: "url"}, "iput v1.url, v2"},
		{Instr{Op: OpGoto, Target: 7}, "goto ->b7"},
		{Instr{Op: OpReturn, A: NoReg}, "return _"},
		{Instr{Op: OpMapGet, Dst: 4, A: 2, Sym: "k"}, `map-get v4, v2["k"]`},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestDoneAddsImplicitReturn(t *testing.T) {
	pb := NewProgramBuilder()
	c := pb.Class("C", KindPlain)
	m := c.Method("f", 0)
	m.ConstInt(1)
	meth := m.Done()
	last := meth.Blocks[len(meth.Blocks)-1]
	if last.Instrs[len(last.Instrs)-1].Op != OpReturn {
		t.Fatal("Done did not append implicit return")
	}
}

func TestDisassembleGolden(t *testing.T) {
	pb := NewProgramBuilder()
	c := pb.Class("Tiny", KindService)
	m := c.Method("go", 1)
	s := m.ConstStr("hi")
	cat := m.Concat(m.Param(0), s)
	m.Return(cat)
	m.Done()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := `service Tiny {
  method go(params=1, regs=3) {
    b0:
      const-str v1, "hi"
      concat v2, v0, v1
      return v2
  }
}
`
	if got := p.Disassemble(); got != want {
		t.Fatalf("disassembly mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestProgramJSONRoundTrip(t *testing.T) {
	p := buildSample(t)
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var p2 Program
	if err := json.Unmarshal(b, &p2); err != nil {
		t.Fatal(err)
	}
	p2.ReindexMethods()
	if err := Verify(&p2); err != nil {
		t.Fatalf("round-tripped program fails verification: %v", err)
	}
	if p2.Disassemble() != p.Disassemble() {
		t.Fatal("round trip changed the program")
	}
}

func TestComponentKindStrings(t *testing.T) {
	for k, want := range map[ComponentKind]string{
		KindPlain: "class", KindActivity: "activity", KindService: "service", KindFragment: "fragment",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestOpStringUnknown(t *testing.T) {
	if got := Op(200).String(); got != "op(200)" {
		t.Fatalf("unknown op string = %q", got)
	}
}

// TestVerifyRejectsMalformedInstrs drives every structural check in the
// verifier with a hand-built bad instruction.
func TestVerifyRejectsMalformedInstrs(t *testing.T) {
	cases := []struct {
		name string
		in   Instr
	}{
		{"iput-no-sym", Instr{Op: OpIPut, A: 0, B: 0}},
		{"iget-no-sym", Instr{Op: OpIGet, Dst: 0, A: 0}},
		{"mapput-no-sym", Instr{Op: OpMapPut, A: 0, B: 0}},
		{"concat-missing-b", Instr{Op: OpConcat, Dst: 0, A: 0, B: NoReg}},
		{"move-missing-src", Instr{Op: OpMove, Dst: 0, A: NoReg}},
		{"listadd-bad-reg", Instr{Op: OpListAdd, A: 0, B: Reg(99)}},
		{"if-bad-reg", Instr{Op: OpIf, A: Reg(99), Target: 0}},
		{"goto-bad-target", Instr{Op: OpGoto, Target: -1}},
		{"unknown-op", Instr{Op: Op(99)}},
		{"const-missing-dst", Instr{Op: OpConstStr, Dst: NoReg}},
	}
	for _, c := range cases {
		prog := &Program{Classes: []*Class{{
			Name: "C",
			Methods: []*Method{{
				Name: "f", Class: "C", NumRegs: 1,
				Blocks: []Block{{Instrs: []Instr{c.in, {Op: OpReturn, A: NoReg}}}},
			}},
		}}}
		if err := Verify(prog); err == nil {
			t.Errorf("%s: verifier accepted malformed instruction %v", c.name, c.in)
		}
	}
}

func TestVerifyRejectsStructuralIssues(t *testing.T) {
	// No blocks.
	p := &Program{Classes: []*Class{{Name: "C", Methods: []*Method{{Name: "f", Class: "C"}}}}}
	if err := Verify(p); err == nil {
		t.Error("method without blocks accepted")
	}
	// Params exceed registers.
	p = &Program{Classes: []*Class{{Name: "C", Methods: []*Method{{
		Name: "f", Class: "C", NumParams: 3, NumRegs: 1,
		Blocks: []Block{{Instrs: []Instr{{Op: OpReturn, A: NoReg}}}},
	}}}}}
	if err := Verify(p); err == nil {
		t.Error("params > regs accepted")
	}
	// Empty interior block.
	p = &Program{Classes: []*Class{{Name: "C", Methods: []*Method{{
		Name: "f", Class: "C", NumRegs: 1,
		Blocks: []Block{{}, {Instrs: []Instr{{Op: OpReturn, A: NoReg}}}},
	}}}}}
	if err := Verify(p); err == nil {
		t.Error("empty interior block accepted")
	}
	// Final block without terminator.
	p = &Program{Classes: []*Class{{Name: "C", Methods: []*Method{{
		Name: "f", Class: "C", NumRegs: 1,
		Blocks: []Block{{Instrs: []Instr{{Op: OpConstInt, Dst: 0}}}},
	}}}}}
	if err := Verify(p); err == nil {
		t.Error("missing terminator accepted")
	}
}

func TestBuilderPanics(t *testing.T) {
	pb := NewProgramBuilder()
	c := pb.Class("C", KindPlain)
	m := c.Method("f", 1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Param out of range", func() { m.Param(5) })
	mustPanic("Enter bad block", func() { m.Enter(42) })
	m.Done()
	mustPanic("MustBuild invalid", func() {
		bad := NewProgramBuilder()
		bc := bad.Class("X", KindPlain)
		bm := bc.Method("g", 0)
		bm.Invoke("Missing.h")
		bm.Done()
		bad.MustBuild()
	})
}

func TestClassReopen(t *testing.T) {
	pb := NewProgramBuilder()
	a := pb.Class("C", KindPlain)
	m1 := a.Method("f", 0)
	m1.Done()
	b := pb.Class("C", KindPlain) // reopen, not duplicate
	m2 := b.Method("g", 0)
	m2.Done()
	p := pb.MustBuild()
	if len(p.Classes) != 1 || len(p.Classes[0].Methods) != 2 {
		t.Fatalf("reopen created duplicate class: %d classes", len(p.Classes))
	}
}
