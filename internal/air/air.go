// Package air defines AIR (App Intermediate Representation), a compact
// register-based intermediate representation with Android-flavoured semantics.
//
// AIR plays the role that dex bytecode plays in the APPx paper: synthetic
// mobile apps are "compiled" into AIR, packaged into an app container
// (package apk), and then
//
//   - analyzed statically (package static) to extract HTTP message-format
//     signatures and inter-transaction dependencies, and
//   - executed dynamically (package interp) by the emulated device to
//     generate real HTTP traffic.
//
// Because both the analyzer and the runtime consume the very same IR, the
// static analysis faces the same ground truth the paper's Extractocol-based
// analysis faces: request construction scattered across methods and heap
// objects, values flowing through Intents and Rx operator chains, and
// branch-dependent optional fields.
//
// The instruction set is deliberately small but expressive enough to encode
// the patterns §4.1 of the paper calls out: field access on heap objects with
// aliasing, Intent put/get pairs, Rx map/flatMap/defer pipelines, string
// concatenation for URL building, and semantic API calls for HTTP, JSON and
// device properties.
package air

import (
	"fmt"
	"strings"
)

// Op enumerates AIR opcodes.
type Op uint8

const (
	// OpConstStr loads a string constant: dst = Str.
	OpConstStr Op = iota
	// OpConstInt loads an integer constant: dst = Int.
	OpConstInt
	// OpConstBool loads a boolean constant: dst = Int != 0.
	OpConstBool
	// OpMove copies a register: dst = src(A).
	OpMove
	// OpConcat concatenates string representations: dst = A + B.
	OpConcat
	// OpNewObject allocates an object of class Sym: dst = new Sym.
	OpNewObject
	// OpIPut stores into an instance field: obj(A).field(Sym) = src(B).
	OpIPut
	// OpIGet loads from an instance field: dst = obj(A).field(Sym).
	OpIGet
	// OpNewMap allocates a map: dst = {}.
	OpNewMap
	// OpMapPut stores map[key]: map(A)[Sym] = src(B).
	OpMapPut
	// OpMapGet loads map[key]: dst = map(A)[Sym].
	OpMapGet
	// OpNewList allocates a list: dst = [].
	OpNewList
	// OpListAdd appends: list(A) += src(B).
	OpListAdd
	// OpInvoke calls a user-defined method Sym with Args; dst = return value.
	OpInvoke
	// OpCallAPI calls a semantic API Sym (see API constants) with Args;
	// dst = return value.
	OpCallAPI
	// OpIf branches to block Target when src(A) is truthy.
	OpIf
	// OpIfNull branches to block Target when src(A) is null.
	OpIfNull
	// OpGoto jumps unconditionally to block Target.
	OpGoto
	// OpForEach iterates the list in A, invoking method Sym with each
	// element (appended to Args) per iteration. It models the ubiquitous
	// "for item in list: handle(item)" loop so that the analyzer can reason
	// about per-element fan-out (one prefetch instance per array element).
	OpForEach
	// OpReturn returns src(A); A == NoReg returns null.
	OpReturn
)

var opNames = map[Op]string{
	OpConstStr:  "const-str",
	OpConstInt:  "const-int",
	OpConstBool: "const-bool",
	OpMove:      "move",
	OpConcat:    "concat",
	OpNewObject: "new-object",
	OpIPut:      "iput",
	OpIGet:      "iget",
	OpNewMap:    "new-map",
	OpMapPut:    "map-put",
	OpMapGet:    "map-get",
	OpNewList:   "new-list",
	OpListAdd:   "list-add",
	OpInvoke:    "invoke",
	OpCallAPI:   "call-api",
	OpIf:        "if",
	OpIfNull:    "if-null",
	OpGoto:      "goto",
	OpForEach:   "for-each",
	OpReturn:    "return",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Reg identifies a virtual register within a method frame.
type Reg int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("v%d", int32(r))
}

// Semantic API names understood by both the static analyzer and the
// interpreter. They model the Android/OkHttp/Gson/RxJava surface the paper's
// semantic models cover.
const (
	// HTTP request construction and execution.
	APIHTTPNewRequest   = "http.newRequest"   // (method) -> request
	APIHTTPSetURL       = "http.setURL"       // (request, url)
	APIHTTPAddQuery     = "http.addQuery"     // (request, key, value)
	APIHTTPAddHeader    = "http.addHeader"    // (request, key, value)
	APIHTTPSetBodyField = "http.setBodyField" // (request, key, value) form body
	APIHTTPExecute      = "http.execute"      // (request) -> response   [network I/O]
	APIHTTPRespBody     = "http.respBody"     // (response) -> parsed JSON value

	// JSON access on parsed values.
	APIJSONGet     = "json.get"     // (value, path) -> value
	APIJSONForEach = "json.forEach" // handled via OpForEach on json.get result
	APIListGet     = "list.get"     // (list, index) -> element
	APIListLen     = "list.len"     // (list) -> int

	// Device- and session-scoped run-time values, unknowable statically.
	APIDeviceUserAgent = "device.userAgent"  // () -> string
	APIDeviceCookie    = "device.cookie"     // (host) -> string
	APIDeviceLocale    = "device.locale"     // () -> string
	APIDeviceVersion   = "device.appVersion" // () -> string
	APIDeviceFlag      = "device.flag"       // (name) -> bool, run-time condition

	// Intent passing across components (the paper's Intent map).
	APIIntentPut = "intent.put" // (key, value)
	APIIntentGet = "intent.get" // (key) -> value

	// Rx-style observable pipeline (the paper's RxAndroid models).
	APIRxJust      = "rx.just"      // (value) -> observable
	APIRxDefer     = "rx.defer"     // (methodName) -> observable
	APIRxMap       = "rx.map"       // (observable, methodName) -> observable
	APIRxFlatMap   = "rx.flatMap"   // (observable, methodName) -> observable
	APIRxSubscribe = "rx.subscribe" // (observable, methodName) terminal

	// UI effects.
	APIUIRender    = "ui.render"    // (screenName) marks interaction completion
	APIUIShowImage = "ui.showImage" // (bytesValue) render an image blob
)

// Instr is one AIR instruction. Operand meaning depends on Op; unused
// operands hold zero values (NoReg for registers).
type Instr struct {
	Op     Op
	Dst    Reg
	A, B   Reg
	Sym    string // field name, map key, method name, API name, class name
	Str    string // string constant
	Int    int64  // integer constant
	Args   []Reg  // invoke/call-api arguments
	Target int    // branch target block index
}

// String renders the instruction in disassembly form.
func (in Instr) String() string {
	switch in.Op {
	case OpConstStr:
		return fmt.Sprintf("%s %s, %q", in.Op, in.Dst, in.Str)
	case OpConstInt, OpConstBool:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, in.Int)
	case OpMove:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.A)
	case OpConcat:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.A, in.B)
	case OpNewObject:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Sym)
	case OpIPut:
		return fmt.Sprintf("%s %s.%s, %s", in.Op, in.A, in.Sym, in.B)
	case OpIGet:
		return fmt.Sprintf("%s %s, %s.%s", in.Op, in.Dst, in.A, in.Sym)
	case OpNewMap, OpNewList:
		return fmt.Sprintf("%s %s", in.Op, in.Dst)
	case OpMapPut:
		return fmt.Sprintf("%s %s[%q], %s", in.Op, in.A, in.Sym, in.B)
	case OpMapGet:
		return fmt.Sprintf("%s %s, %s[%q]", in.Op, in.Dst, in.A, in.Sym)
	case OpListAdd:
		return fmt.Sprintf("%s %s, %s", in.Op, in.A, in.B)
	case OpInvoke, OpCallAPI:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		return fmt.Sprintf("%s %s, %s(%s)", in.Op, in.Dst, in.Sym, strings.Join(args, ", "))
	case OpIf:
		return fmt.Sprintf("%s %s, ->b%d", in.Op, in.A, in.Target)
	case OpIfNull:
		return fmt.Sprintf("%s %s, ->b%d", in.Op, in.A, in.Target)
	case OpGoto:
		return fmt.Sprintf("%s ->b%d", in.Op, in.Target)
	case OpForEach:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		return fmt.Sprintf("%s %s, %s(item%s)", in.Op, in.A, in.Sym, joinPrefixed(args))
	case OpReturn:
		return fmt.Sprintf("%s %s", in.Op, in.A)
	}
	return in.Op.String()
}

func joinPrefixed(args []string) string {
	if len(args) == 0 {
		return ""
	}
	return ", " + strings.Join(args, ", ")
}

// Block is a basic block: a straight-line instruction sequence ending in a
// control transfer (or falling through to the next block).
type Block struct {
	Instrs []Instr
}

// Method is a callable unit. Registers 0..NumParams-1 hold the arguments on
// entry.
type Method struct {
	Name      string
	Class     string
	NumParams int
	NumRegs   int
	Blocks    []Block
}

// QualifiedName returns "Class.Name".
func (m *Method) QualifiedName() string {
	return m.Class + "." + m.Name
}

// Class groups methods, mirroring an Android component (activity, service,
// fragment...).
type Class struct {
	Name    string
	Kind    ComponentKind
	Methods []*Method
}

// ComponentKind tags the Android component flavour of a class. The analyzer
// uses it when building the Intent map (Intents connect components).
type ComponentKind uint8

const (
	KindPlain ComponentKind = iota
	KindActivity
	KindService
	KindFragment
)

func (k ComponentKind) String() string {
	switch k {
	case KindActivity:
		return "activity"
	case KindService:
		return "service"
	case KindFragment:
		return "fragment"
	default:
		return "class"
	}
}

// Program is a complete AIR program: all classes of an app.
type Program struct {
	Classes []*Class

	methodIndex map[string]*Method
}

// Method resolves a method by qualified name ("Class.Name"). It returns nil
// when absent.
func (p *Program) Method(qualified string) *Method {
	if p.methodIndex == nil {
		p.buildIndex()
	}
	return p.methodIndex[qualified]
}

// Methods returns every method in deterministic (declaration) order.
func (p *Program) Methods() []*Method {
	var out []*Method
	for _, c := range p.Classes {
		out = append(out, c.Methods...)
	}
	return out
}

func (p *Program) buildIndex() {
	p.methodIndex = make(map[string]*Method)
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			p.methodIndex[m.QualifiedName()] = m
		}
	}
}

// ReindexMethods invalidates the method lookup cache; call after mutating
// Classes.
func (p *Program) ReindexMethods() { p.methodIndex = nil }

// Disassemble renders the whole program as text, mainly for debugging and
// golden tests.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for _, c := range p.Classes {
		fmt.Fprintf(&b, "%s %s {\n", c.Kind, c.Name)
		for _, m := range c.Methods {
			fmt.Fprintf(&b, "  method %s(params=%d, regs=%d) {\n", m.Name, m.NumParams, m.NumRegs)
			for bi, blk := range m.Blocks {
				fmt.Fprintf(&b, "    b%d:\n", bi)
				for _, in := range blk.Instrs {
					fmt.Fprintf(&b, "      %s\n", in.String())
				}
			}
			b.WriteString("  }\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}
