package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Hostile workloads for judging prefetch policies. Unlike the device-driven
// traces above, these are request-level scripts against a star-shaped
// signature graph — one "home" predecessor fanning out to K branch
// signatures — designed to separate a history-aware policy from the static
// one: per-user structure a Markov model can exploit (flash crowds of loyal
// users, mixed fleets) next to structure it must not overfit (uniform
// legacy traffic, cache-hostile scanners, diurnal gaps longer than a
// session).
//
// Each workload opens with a teaching prologue (every user visits home and
// then their characteristic branches a few times, seconds apart) followed
// by measurement rounds spaced RoundGap apart — longer than the sweep's
// cache expiry, so every round forces a fresh prefetch decision.

// Step is one scripted request: Branch -1 is the home signature, otherwise
// an index into the K branch signatures. At is the offset from workload
// start at which the request is issued.
type Step struct {
	User   string
	Branch int
	At     time.Duration
}

// Home marks a Step that requests the home signature.
const Home = -1

// Hostile is one named adversarial workload.
type Hostile struct {
	Name  string
	Steps []Step
}

const (
	// teachReps is how many (home, branch) visits the prologue gives each
	// user: enough observations for a favourite to cross the Markov prune
	// threshold before measurement starts.
	teachReps = 6
	// teachGap separates prologue repetitions.
	teachGap = 10 * time.Second
	// visitGap separates a home visit from the branch visit that follows it.
	visitGap = 2 * time.Second
	// RoundGap separates measurement rounds. Sweeps set cache expiry below
	// it so every round re-decides the prefetch fan-out.
	RoundGap = 90 * time.Second
)

// userName labels the i-th workload user.
func userName(i int) string { return fmt.Sprintf("hostile-u%02d", i) }

// finish orders steps by time (stable: emission order breaks ties) and
// wraps them with the workload name.
func finish(name string, steps []Step) Hostile {
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	return Hostile{Name: name, Steps: steps}
}

// teachFavorites emits the prologue. It opens with one full scan per user —
// home, then every branch once (rotated by user index so the scan's own
// home→branch transition spreads over the fleet) — so each branch has a
// per-user exemplar and a static policy prefetches the complete fan-out
// from the first measurement round. It then repeats (home, characteristic
// branch) visits, where fav names the branch per (user, repetition).
// Returns the prologue duration.
func teachFavorites(steps *[]Step, users, branches int, fav func(user, rep int) int) time.Duration {
	for u := 0; u < users; u++ {
		base := time.Duration(u) * 250 * time.Millisecond
		*steps = append(*steps, Step{User: userName(u), Branch: Home, At: base})
		for j := 0; j < branches; j++ {
			*steps = append(*steps, Step{User: userName(u), Branch: (u + j) % branches,
				At: base + time.Duration(j+1)*visitGap})
		}
	}
	scan := time.Duration(branches+2) * visitGap
	for r := 0; r < teachReps; r++ {
		for u := 0; u < users; u++ {
			base := scan + time.Duration(r)*teachGap + time.Duration(u)*250*time.Millisecond
			*steps = append(*steps,
				Step{User: userName(u), Branch: Home, At: base},
				Step{User: userName(u), Branch: fav(u, r), At: base + visitGap})
		}
	}
	return scan + teachReps*teachGap
}

// FlashCrowd is the loyal-user stampede: every user has one favourite
// branch (spread uniformly over the K branches), and in each measurement
// round the whole fleet hits home within a second and then its favourite.
// A static policy prefetches all K branches per home view; a history-aware
// one should keep roughly the favourite.
func FlashCrowd(users, branches, rounds int, seed int64) Hostile {
	var steps []Step
	start := teachFavorites(&steps, users, branches, func(u, _ int) int { return u % branches })
	for r := 0; r < rounds; r++ {
		base := start + time.Duration(r)*RoundGap
		for u := 0; u < users; u++ {
			at := base + time.Duration(u)*20*time.Millisecond
			steps = append(steps,
				Step{User: userName(u), Branch: Home, At: at},
				Step{User: userName(u), Branch: u % branches, At: at + visitGap})
		}
	}
	return finish("flash-crowd", steps)
}

// MixedFleet interleaves a loyal half (favourite branch, as in FlashCrowd)
// with a roaming half that picks a uniformly random branch every visit —
// the policy must exploit the loyal users without penalizing the roamers.
func MixedFleet(users, branches, rounds int, seed int64) Hostile {
	rng := rand.New(rand.NewSource(seed))
	loyal := func(u int) bool { return u%2 == 0 }
	var steps []Step
	start := teachFavorites(&steps, users, branches, func(u, _ int) int {
		if loyal(u) {
			return (u / 2) % branches
		}
		return rng.Intn(branches)
	})
	for r := 0; r < rounds; r++ {
		base := start + time.Duration(r)*RoundGap
		for u := 0; u < users; u++ {
			at := base + time.Duration(u)*300*time.Millisecond
			br := (u / 2) % branches
			if !loyal(u) {
				br = rng.Intn(branches)
			}
			steps = append(steps,
				Step{User: userName(u), Branch: Home, At: at},
				Step{User: userName(u), Branch: br, At: at + visitGap})
		}
	}
	return finish("mixed-fleet", steps)
}

// ScanUsers is the cache-hostile sweep: every user reads home and then
// every branch in order, every round. All prefetches are consumed, so a
// policy that prunes aggressively sacrifices recall here — the scenario
// exists to expose that cost, not to be won.
func ScanUsers(users, branches, rounds int, seed int64) Hostile {
	var steps []Step
	start := teachFavorites(&steps, users, branches, func(_, r int) int { return r % branches })
	for r := 0; r < rounds; r++ {
		base := start + time.Duration(r)*RoundGap
		for u := 0; u < users; u++ {
			at := base + time.Duration(u)*500*time.Millisecond
			steps = append(steps, Step{User: userName(u), Branch: Home, At: at})
			for b := 0; b < branches; b++ {
				steps = append(steps, Step{User: userName(u), Branch: b,
					At: at + visitGap + time.Duration(b)*time.Second})
			}
		}
	}
	return finish("scan-users", steps)
}

// Diurnal spaces bursts of favourite-branch activity hours apart — longer
// than the Markov session gap and many history half-lives, so the model
// must relearn each burst from live traffic instead of coasting on stale
// counts.
func Diurnal(users, branches, rounds int, seed int64) Hostile {
	const bursts = 3
	const burstGap = 2 * time.Hour
	var steps []Step
	start := teachFavorites(&steps, users, branches, func(u, _ int) int { return u % branches })
	for b := 0; b < bursts; b++ {
		burst := start + time.Duration(b)*burstGap
		for r := 0; r < rounds; r++ {
			base := burst + time.Duration(r)*RoundGap
			for u := 0; u < users; u++ {
				at := base + time.Duration(u)*200*time.Millisecond
				steps = append(steps,
					Step{User: userName(u), Branch: Home, At: at},
					Step{User: userName(u), Branch: u % branches, At: at + visitGap})
			}
		}
	}
	return finish("diurnal", steps)
}

// LegacyReplay is the no-structure baseline: every visit picks a uniformly
// random branch, per user, so user history carries no signal. It is the
// regression guard — a history-aware policy may not waste more origin
// bytes here than the static one.
func LegacyReplay(users, branches, rounds int, seed int64) Hostile {
	rng := rand.New(rand.NewSource(seed))
	var steps []Step
	start := teachFavorites(&steps, users, branches, func(_, _ int) int { return rng.Intn(branches) })
	for r := 0; r < rounds; r++ {
		base := start + time.Duration(r)*RoundGap
		for u := 0; u < users; u++ {
			at := base + time.Duration(u)*300*time.Millisecond
			steps = append(steps,
				Step{User: userName(u), Branch: Home, At: at},
				Step{User: userName(u), Branch: rng.Intn(branches), At: at + visitGap})
		}
	}
	return finish("legacy-replay", steps)
}

// Hostiles builds the full adversarial suite with shared sizing.
func Hostiles(users, branches, rounds int, seed int64) []Hostile {
	return []Hostile{
		FlashCrowd(users, branches, rounds, seed),
		MixedFleet(users, branches, rounds, seed),
		ScanUsers(users, branches, rounds, seed),
		Diurnal(users, branches, rounds, seed),
		LegacyReplay(users, branches, rounds, seed),
	}
}
