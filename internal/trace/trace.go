// Package trace provides the user-study substrate of §6: event traces
// (click, scroll-select, back) with think times, a seeded synthetic
// behaviour generator standing in for the paper's 30 IRB participants ×
// 3 minutes per app (captured with Appetizer there), and a replayer that
// drives an emulated device "in real time to reflect the user think time"
// — optionally speed-scaled together with the rest of the emulation.
//
// The behaviour model reproduces the workload *shape* the paper reports:
// users glance over many list items, select only a few (so 1–5 % of
// prefetched responses are actually consumed), dwell on detail pages, and
// occasionally go one level deeper.
package trace

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"appx/internal/apk"
	"appx/internal/device"
)

// Kind enumerates event types.
type Kind string

const (
	// Launch starts (or restarts) the app.
	Launch Kind = "launch"
	// Tap activates a widget (list items carry an index).
	Tap Kind = "tap"
	// BackNav pops the screen stack.
	BackNav Kind = "back"
)

// Event is one recorded user action. Think is the pause *before* the event
// (the user reading the previous screen).
type Event struct {
	Kind   Kind          `json:"kind"`
	Widget string        `json:"widget,omitempty"`
	Index  int           `json:"index,omitempty"`
	Think  time.Duration `json:"think"`
	// Main marks the app's main interaction (Table 1) for reporting.
	Main bool `json:"main,omitempty"`
}

// Trace is one user session on one app.
type Trace struct {
	App    string  `json:"app"`
	User   string  `json:"user"`
	Events []Event `json:"events"`
}

// Duration sums think times plus a nominal per-interaction second, the
// session length the generator targets.
func (t *Trace) Duration() time.Duration {
	var d time.Duration
	for _, e := range t.Events {
		d += e.Think
		if e.Kind != BackNav {
			d += time.Second
		}
	}
	return d
}

// Marshal serializes the trace.
func (t *Trace) Marshal() ([]byte, error) { return json.MarshalIndent(t, "", " ") }

// Unmarshal parses a trace.
func Unmarshal(b []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &t, nil
}

// Generate synthesizes one user's session of roughly the given duration
// against the app's UI model. The same (app, user, seed) triple always
// yields the same trace.
func Generate(a *apk.APK, user string, seed int64, duration time.Duration) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{App: a.Manifest.Package, User: user}

	// Simulated navigation state mirrors the app's screen graph through
	// widget Target metadata.
	stack := []string{a.Manifest.LaunchScreen}
	t.Events = append(t.Events, Event{Kind: Launch})
	elapsed := 3 * time.Second // launch render + first look

	think := func(lo, hi time.Duration) time.Duration {
		d := lo + time.Duration(rng.Int63n(int64(hi-lo)))
		elapsed += d + time.Second
		return d
	}

	for elapsed < duration {
		cur := a.Screen(stack[len(stack)-1])
		if cur == nil || len(cur.Widgets) == 0 {
			// Dead-end screen: back out or relaunch.
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
				t.Events = append(t.Events, Event{Kind: BackNav, Think: think(1*time.Second, 3*time.Second)})
			} else {
				t.Events = append(t.Events, Event{Kind: Launch, Think: think(1*time.Second, 2*time.Second)})
			}
			continue
		}

		// Partition the widgets.
		var lists, buttons []apk.Widget
		hasBack := false
		for _, w := range cur.Widgets {
			switch w.Kind {
			case apk.ListItem:
				lists = append(lists, w)
			case apk.Button:
				buttons = append(buttons, w)
			case apk.Back:
				hasBack = true
			}
		}

		roll := rng.Float64()
		tapItem := func() {
			// Browse: select a list item, skewed toward the top of the list
			// (users glance over the first screenful).
			w := lists[rng.Intn(len(lists))]
			idx := int(rng.ExpFloat64() * 3)
			if idx >= w.MaxIndex {
				idx = rng.Intn(w.MaxIndex)
			}
			t.Events = append(t.Events, Event{
				Kind: Tap, Widget: w.ID, Index: idx, Main: w.Main,
				Think: think(2*time.Second, 8*time.Second),
			})
			if w.Target != "" {
				stack = append(stack, w.Target)
			}
		}
		tapButton := func() {
			w := buttons[rng.Intn(len(buttons))]
			t.Events = append(t.Events, Event{
				Kind: Tap, Widget: w.ID, Main: w.Main,
				Think: think(2*time.Second, 6*time.Second),
			})
			if w.Target != "" {
				stack = append(stack, w.Target)
			}
		}
		goBack := func() {
			stack = stack[:len(stack)-1]
			t.Events = append(t.Events, Event{Kind: BackNav, Think: think(1*time.Second, 4*time.Second)})
		}
		switch {
		case len(lists) > 0:
			// Browse screens: mostly item selections, occasionally a button
			// or a step back.
			switch {
			case roll < 0.70 || (!hasBack && len(buttons) == 0):
				tapItem()
			case len(buttons) > 0 && roll < 0.85:
				tapButton()
			case hasBack && len(stack) > 1:
				goBack()
			default:
				think(1*time.Second, 3*time.Second)
			}
		default:
			// Leaf screens (detail pages): after reading, users mostly go
			// back to browse more items — the paper's "glance over many
			// items" behaviour; sometimes they go one level deeper.
			switch {
			case len(buttons) > 0 && roll < 0.30:
				tapButton()
			case hasBack && len(stack) > 1:
				goBack()
			default:
				think(1*time.Second, 3*time.Second)
			}
		}
	}
	return t
}

// GenerateStudy produces the full user study: n users on one app, each a
// session of the given duration, deterministically from the base seed.
func GenerateStudy(a *apk.APK, n int, seed int64, duration time.Duration) []*Trace {
	out := make([]*Trace, n)
	for i := range out {
		out[i] = Generate(a, fmt.Sprintf("u%02d", i), seed+int64(i)*7919, duration)
	}
	return out
}

// Recorder captures a live session as a replayable trace — the role
// Appetizer plays in the paper's user study ("We record the user event
// traces (e.g., click and scrolling) ... while each user freely uses each
// app"). Wrap a device, drive it, then call Trace.
type Recorder struct {
	inner Driver
	trace *Trace
	// now supplies timestamps; injectable for deterministic tests.
	now  func() time.Time
	last time.Time
	apk  *apk.APK
}

// NewRecorder wraps a driver so every interaction is recorded. The APK is
// consulted to tag main interactions.
func NewRecorder(d Driver, a *apk.APK, user string) *Recorder {
	return &Recorder{
		inner: d,
		trace: &Trace{App: a.Manifest.Package, User: user},
		now:   time.Now,
		apk:   a,
	}
}

// SetClock injects a time source (tests).
func (r *Recorder) SetClock(now func() time.Time) { r.now = now }

// think computes the pause since the previous recorded event.
func (r *Recorder) think() time.Duration {
	t := r.now()
	if r.last.IsZero() {
		r.last = t
		return 0
	}
	d := t.Sub(r.last)
	r.last = t
	if d < 0 {
		return 0
	}
	return d
}

// Launch records and forwards an app launch.
func (r *Recorder) Launch() (device.Measure, error) {
	r.trace.Events = append(r.trace.Events, Event{Kind: Launch, Think: r.think()})
	return r.inner.Launch()
}

// Tap records and forwards a widget activation.
func (r *Recorder) Tap(widgetID string, index int) (device.Measure, error) {
	main := false
	if sc := r.apk.Screen(r.inner.Screen()); sc != nil {
		for _, w := range sc.Widgets {
			if w.ID == widgetID {
				main = w.Main
			}
		}
	}
	r.trace.Events = append(r.trace.Events, Event{Kind: Tap, Widget: widgetID, Index: index, Think: r.think(), Main: main})
	return r.inner.Tap(widgetID, index)
}

// Back records and forwards a back navigation.
func (r *Recorder) Back() bool {
	r.trace.Events = append(r.trace.Events, Event{Kind: BackNav, Think: r.think()})
	return r.inner.Back()
}

// Screen forwards to the device.
func (r *Recorder) Screen() string { return r.inner.Screen() }

// Trace returns the recorded session.
func (r *Recorder) Trace() *Trace { return r.trace }

// Driver abstracts the replay target (an emulated device).
type Driver interface {
	Launch() (device.Measure, error)
	Tap(widgetID string, index int) (device.Measure, error)
	Back() bool
	Screen() string
}

// InteractionMeasure couples a replayed event with its measured latency.
type InteractionMeasure struct {
	Event   Event
	Measure device.Measure
	Err     error
}

// Replay drives the device through the trace. Think times are divided by
// speed (1 = real time); interaction latencies are measured by the device
// itself and returned per event. Replay does not abort on individual
// interaction errors (a mid-session failure is recorded and the session
// continues, like a user retrying).
func Replay(d Driver, t *Trace, speed float64) []InteractionMeasure {
	if speed <= 0 {
		speed = 1
	}
	var out []InteractionMeasure
	for _, e := range t.Events {
		if e.Think > 0 {
			time.Sleep(time.Duration(float64(e.Think) / speed))
		}
		switch e.Kind {
		case Launch:
			m, err := d.Launch()
			out = append(out, InteractionMeasure{Event: e, Measure: m, Err: err})
		case Tap:
			m, err := d.Tap(e.Widget, e.Index)
			out = append(out, InteractionMeasure{Event: e, Measure: m, Err: err})
		case BackNav:
			d.Back()
		}
	}
	return out
}
