package trace

import (
	"reflect"
	"testing"
	"time"

	"appx/internal/apps"
	"appx/internal/device"
	"appx/internal/httpmsg"
	"appx/internal/interp"
)

func inProcDevice(t testing.TB, a *apps.App) *device.Device {
	t.Helper()
	h := a.Handler(0)
	d, err := device.New(device.Config{
		APK:   a.APK,
		Scale: 1,
		Transport: interp.TransportFunc(func(r *httpmsg.Request) (*httpmsg.Response, error) {
			return httpmsg.ServeViaHandler(h, r)
		}),
		Props: interp.DeviceProps{UserAgent: "Trace/1.0", AppVersion: a.APK.Manifest.Version},
	})
	if err != nil {
		t.Fatalf("device.New: %v", err)
	}
	return d
}

func TestGenerateDeterministic(t *testing.T) {
	a := apps.Wish()
	t1 := Generate(a.APK, "u1", 99, 3*time.Minute)
	t2 := Generate(a.APK, "u1", 99, 3*time.Minute)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("same seed produced different traces")
	}
	t3 := Generate(a.APK, "u1", 100, 3*time.Minute)
	if reflect.DeepEqual(t1.Events, t3.Events) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	a := apps.Wish()
	tr := Generate(a.APK, "u1", 7, 3*time.Minute)
	if len(tr.Events) < 10 {
		t.Fatalf("3-minute trace has only %d events", len(tr.Events))
	}
	if tr.Events[0].Kind != Launch {
		t.Fatal("trace does not start with launch")
	}
	var mains, taps int
	for _, e := range tr.Events {
		if e.Kind == Tap {
			taps++
			if e.Main {
				mains++
			}
		}
	}
	if taps == 0 || mains == 0 {
		t.Fatalf("taps = %d, main interactions = %d", taps, mains)
	}
	// Session duration target: within a factor of the requested 3 minutes.
	if d := tr.Duration(); d < 2*time.Minute || d > 5*time.Minute {
		t.Fatalf("trace duration = %v", d)
	}
	// Index skew: most selections near the top of the list.
	low, high := 0, 0
	for _, e := range tr.Events {
		if e.Kind == Tap && e.Widget == "item" {
			if e.Index < 8 {
				low++
			} else {
				high++
			}
		}
	}
	if low <= high {
		t.Fatalf("index skew missing: low=%d high=%d", low, high)
	}
}

func TestGenerateStudy(t *testing.T) {
	a := apps.DoorDash()
	traces := GenerateStudy(a.APK, 30, 1, 3*time.Minute)
	if len(traces) != 30 {
		t.Fatalf("traces = %d", len(traces))
	}
	users := map[string]bool{}
	for _, tr := range traces {
		if users[tr.User] {
			t.Fatalf("duplicate user %s", tr.User)
		}
		users[tr.User] = true
		if len(tr.Events) == 0 {
			t.Fatal("empty trace")
		}
	}
	if reflect.DeepEqual(traces[0].Events, traces[1].Events) {
		t.Fatal("users have identical traces")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a := apps.Postmates()
	tr := Generate(a.APK, "u5", 3, time.Minute)
	b, err := tr.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	tr2, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(tr, tr2) {
		t.Fatal("round trip mismatch")
	}
	if _, err := Unmarshal([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReplayExecutesTrace(t *testing.T) {
	a := apps.DoorDash()
	d := inProcDevice(t, a)
	tr := Generate(a.APK, "u1", 11, 90*time.Second)
	// Huge speed factor: think times vanish, interactions still happen.
	results := Replay(d, tr, 1e6)
	if len(results) == 0 {
		t.Fatal("no interactions replayed")
	}
	var errs int
	for _, r := range results {
		if r.Err != nil {
			errs++
		}
	}
	if errs > 0 {
		t.Fatalf("%d replay errors: %+v", errs, results)
	}
	// Replay measures must carry traffic for tap events.
	sawMain := false
	for _, r := range results {
		if r.Event.Main && r.Measure.Transactions > 0 {
			sawMain = true
		}
	}
	if !sawMain {
		t.Fatal("no measured main interaction in replay")
	}
}

func TestReplayAgainstUIModelNeverDesyncs(t *testing.T) {
	// The generator's simulated navigation must match the app's actual
	// ui.render navigation for every app — otherwise replays tap widgets
	// that don't exist.
	for _, a := range apps.All() {
		d := inProcDevice(t, a)
		tr := Generate(a.APK, "sync", 23, 2*time.Minute)
		for i, r := range Replay(d, tr, 1e6) {
			if r.Err != nil {
				t.Fatalf("%s: event %d (%+v): %v", a.Name, i, r.Event, r.Err)
			}
		}
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	a := apps.Wish()
	d := inProcDevice(t, a)
	rec := NewRecorder(d, a.APK, "recorded-user")
	virtual := time.Now()
	rec.SetClock(func() time.Time { return virtual })

	if _, err := rec.Launch(); err != nil {
		t.Fatal(err)
	}
	virtual = virtual.Add(3 * time.Second)
	if _, err := rec.Tap("item", 2); err != nil {
		t.Fatal(err)
	}
	virtual = virtual.Add(5 * time.Second)
	rec.Back()
	virtual = virtual.Add(2 * time.Second)
	if _, err := rec.Tap("item", 4); err != nil {
		t.Fatal(err)
	}

	tr := rec.Trace()
	if len(tr.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(tr.Events))
	}
	if tr.Events[0].Kind != Launch || tr.Events[0].Think != 0 {
		t.Fatalf("event 0 = %+v", tr.Events[0])
	}
	if tr.Events[1].Think != 3*time.Second || !tr.Events[1].Main {
		t.Fatalf("event 1 = %+v (want 3s think, main)", tr.Events[1])
	}
	if tr.Events[2].Kind != BackNav || tr.Events[2].Think != 5*time.Second {
		t.Fatalf("event 2 = %+v", tr.Events[2])
	}

	// The recorded trace must replay cleanly on a fresh device.
	d2 := inProcDevice(t, a)
	for i, m := range Replay(d2, tr, 1e9) {
		if m.Err != nil {
			t.Fatalf("replay event %d: %v", i, m.Err)
		}
	}
}
