package trace

import (
	"reflect"
	"sort"
	"testing"
)

// TestHostileDeterminism: the adversarial workloads are pure functions of
// their sizing and seed — same inputs, byte-identical scripts — and the
// randomized ones actually use the seed.
func TestHostileDeterminism(t *testing.T) {
	a := Hostiles(6, 8, 4, 11)
	b := Hostiles(6, 8, 4, 11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different workloads")
	}
	c := Hostiles(6, 8, 4, 12)
	for i, h := range a {
		if h.Name != c[i].Name {
			t.Fatalf("scenario order changed: %s vs %s", h.Name, c[i].Name)
		}
	}
	for _, name := range []string{"mixed-fleet", "legacy-replay"} {
		if reflect.DeepEqual(pick(t, a, name), pick(t, c, name)) {
			t.Fatalf("%s ignores its seed", name)
		}
	}
}

// TestHostileShape: every workload is time-ordered, in-range, and routes
// every user through both home and branch views.
func TestHostileShape(t *testing.T) {
	const users, branches = 5, 7
	for _, h := range Hostiles(users, branches, 3, 9) {
		if len(h.Steps) == 0 {
			t.Fatalf("%s: empty", h.Name)
		}
		if !sort.SliceIsSorted(h.Steps, func(i, j int) bool {
			return h.Steps[i].At < h.Steps[j].At
		}) {
			t.Fatalf("%s: steps not time-ordered", h.Name)
		}
		homes, leaves := map[string]bool{}, map[string]bool{}
		for _, st := range h.Steps {
			if st.Branch < Home || st.Branch >= branches {
				t.Fatalf("%s: branch %d out of range", h.Name, st.Branch)
			}
			if st.Branch == Home {
				homes[st.User] = true
			} else {
				leaves[st.User] = true
			}
		}
		if len(homes) != users || len(leaves) != users {
			t.Fatalf("%s: %d/%d users hit home/branches, want %d",
				h.Name, len(homes), len(leaves), users)
		}
	}
}

func pick(t *testing.T, hs []Hostile, name string) Hostile {
	t.Helper()
	for _, h := range hs {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("missing workload %s", name)
	return Hostile{}
}
