package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"appx/internal/cache"
	"appx/internal/httpmsg"
)

var frozen = time.Unix(1_700_000_000, 0)

func testEntry(body string, expires time.Time) *cache.Entry {
	return &cache.Entry{
		Resp:    &httpmsg.Response{Status: 200, Header: []httpmsg.Field{{Key: "Content-Type", Value: "application/json"}}, Body: []byte(body)},
		Req:     &httpmsg.Request{Method: "GET", Scheme: "http", Host: "api.example", Path: "/x"},
		SigID:   "t:sig#1",
		Expires: expires,
	}
}

// --- envelope ---

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte(`{"hello":"world"}`)
	enc := Encode(MagicSnapshot, payload)
	got, err := Decode(MagicSnapshot, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round trip: got %q", got)
	}
}

// TestEnvelopeCorruptionModes: every way a file can be damaged decodes to a
// *DecodeError with a stable reason — never a panic, never bad data.
func TestEnvelopeCorruptionModes(t *testing.T) {
	enc := Encode(MagicSnapshot, []byte(`{"a":1}`))
	cases := []struct {
		name   string
		mut    func([]byte) []byte
		reason string
	}{
		{"empty", func(b []byte) []byte { return nil }, "short-header"},
		{"truncated-header", func(b []byte) []byte { return b[:10] }, "short-header"},
		{"wrong-magic", func(b []byte) []byte { b[0] = 'Z'; return b }, "bad-magic"},
		{"entry-magic-on-snapshot", func(b []byte) []byte {
			copy(b[0:8], MagicEntry[:])
			return b
		}, "bad-magic"},
		{"future-version", func(b []byte) []byte { b[11] = 99; return b }, "bad-version"},
		{"truncated-body", func(b []byte) []byte { return b[:len(b)-3] }, "bad-length"},
		{"inflated-length", func(b []byte) []byte { b[19] += 7; return b }, "bad-length"},
		{"huge-length", func(b []byte) []byte {
			for i := 12; i < 20; i++ {
				b[i] = 0xff
			}
			return b
		}, "bad-length"},
		{"flipped-payload-byte", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, "bad-checksum"},
		{"flipped-checksum-byte", func(b []byte) []byte { b[25] ^= 0xff; return b }, "bad-checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mut(append([]byte(nil), enc...))
			_, err := Decode(MagicSnapshot, data)
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("err = %v, want *DecodeError", err)
			}
			if de.Reason != tc.reason {
				t.Fatalf("reason = %q, want %q", de.Reason, tc.reason)
			}
			if !IsCorrupt(err) {
				t.Fatalf("IsCorrupt(%v) = false", err)
			}
		})
	}
}

func TestDecodeSnapshotBadJSON(t *testing.T) {
	enc := Encode(MagicSnapshot, []byte(`{"users": [`)) // valid envelope, broken payload
	_, err := DecodeSnapshot(enc)
	var de *DecodeError
	if !errors.As(err, &de) || de.Reason != "bad-payload" {
		t.Fatalf("err = %v, want bad-payload DecodeError", err)
	}
}

// --- disk tier ---

func newTestTier(t *testing.T, opts TierOptions) *Tier {
	t.Helper()
	if opts.Now == nil {
		opts.Now = func() time.Time { return frozen }
	}
	tier, err := NewTier(filepath.Join(t.TempDir(), "cache"), opts)
	if err != nil {
		t.Fatalf("NewTier: %v", err)
	}
	t.Cleanup(tier.Close)
	return tier
}

func TestTierSpillLoadRoundTrip(t *testing.T) {
	tier := newTestTier(t, TierOptions{})
	e := testEntry(`{"v":1}`, frozen.Add(time.Hour))
	tier.Spill("user-a", "GET|api.example/x", e)
	tier.Flush()

	got, ok := tier.Load("user-a", "GET|api.example/x")
	if !ok {
		t.Fatal("Load miss after Spill+Flush")
	}
	if string(got.Resp.Body) != `{"v":1}` || got.SigID != "t:sig#1" || !got.Expires.Equal(e.Expires) {
		t.Fatalf("loaded entry mismatch: %+v", got)
	}
	if got.Req == nil || got.Req.Host != "api.example" {
		t.Fatalf("retained request lost: %+v", got.Req)
	}
	m := tier.Metrics()
	if m.Spilled != 1 || m.Hits != 1 || m.Entries != 1 || m.Bytes <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestTierLoadExpired(t *testing.T) {
	tier := newTestTier(t, TierOptions{})
	tier.Spill("u", "k", testEntry("x", frozen.Add(-time.Second)))
	tier.Flush()
	if _, ok := tier.Load("u", "k"); ok {
		t.Fatal("expired entry served from disk")
	}
	if m := tier.Metrics(); m.Stale != 1 || m.Entries != 0 {
		t.Fatalf("stale file not deleted: %+v", m)
	}
}

func TestTierCorruptFileIsMissAndDeleted(t *testing.T) {
	tier := newTestTier(t, TierOptions{})
	tier.Spill("u", "k", testEntry("x", frozen.Add(time.Hour)))
	tier.Flush()
	path := tier.entryPath("u", "k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry file: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt entry file: %v", err)
	}
	if _, ok := tier.Load("u", "k"); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt file not deleted after failed load")
	}
	if m := tier.Metrics(); m.LoadErrors != 1 {
		t.Fatalf("load error not counted: %+v", m)
	}
}

func TestTierScopeKeyMismatchNeverServed(t *testing.T) {
	tier := newTestTier(t, TierOptions{})
	tier.Spill("u", "k1", testEntry("x", frozen.Add(time.Hour)))
	tier.Flush()
	// Copy the file where another key's hash would live — a simulated hash
	// collision / misplaced file.
	src := tier.entryPath("u", "k1")
	dst := tier.entryPath("u", "k2")
	data, _ := os.ReadFile(src)
	os.MkdirAll(filepath.Dir(dst), 0o755)
	os.WriteFile(dst, data, 0o644)
	if _, ok := tier.Load("u", "k2"); ok {
		t.Fatal("entry served under the wrong key")
	}
}

func TestTierDropScope(t *testing.T) {
	tier := newTestTier(t, TierOptions{})
	tier.Spill("u1", "k", testEntry("a", frozen.Add(time.Hour)))
	tier.Spill("u2", "k", testEntry("b", frozen.Add(time.Hour)))
	tier.Flush()
	tier.Drop("u1")
	if _, ok := tier.Load("u1", "k"); ok {
		t.Fatal("dropped scope still served")
	}
	if _, ok := tier.Load("u2", "k"); !ok {
		t.Fatal("unrelated scope lost")
	}
	if m := tier.Metrics(); m.Dropped != 1 || m.Entries != 1 {
		t.Fatalf("metrics after drop: %+v", m)
	}
}

func TestTierBudgetEviction(t *testing.T) {
	tier := newTestTier(t, TierOptions{MaxBytes: 2048})
	big := make([]byte, 700)
	for i := 0; i < 6; i++ {
		tier.Spill("u", string(rune('a'+i)), testEntry(string(big), frozen.Add(time.Hour)))
		tier.Flush()
		// Distinct mtimes so oldest-first eviction is deterministic.
		time.Sleep(5 * time.Millisecond)
	}
	m := tier.Metrics()
	if m.Bytes > 2048 {
		t.Fatalf("over budget after eviction: %d bytes", m.Bytes)
	}
	if m.Evicted == 0 {
		t.Fatal("no evictions counted despite exceeding budget")
	}
	// The most recent entry must have survived.
	if _, ok := tier.Load("u", "f"); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestTierQueueOverflowDropsNotBlocks(t *testing.T) {
	tier := newTestTier(t, TierOptions{QueueLen: 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tier.Spill("u", "k", testEntry("x", frozen.Add(time.Hour)))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Spill blocked on a full queue")
	}
	tier.Flush()
	m := tier.Metrics()
	if m.Spilled+m.SpillDropped != 100 {
		t.Fatalf("spilled %d + dropped %d != 100", m.Spilled, m.SpillDropped)
	}
}

// TestTierFaultsDegradeToMiss: torn and corrupted writes report success at
// write time but must degrade to a clean miss at read time; ENOSPC fails
// the write and is counted. No mode panics or serves damaged bytes.
func TestTierFaultsDegradeToMiss(t *testing.T) {
	for _, tc := range []struct {
		name string
		set  func(*Faults)
	}{
		{"torn", func(f *Faults) { f.TornWriteProb = 1 }},
		{"corrupt", func(f *Faults) { f.CorruptProb = 1 }},
		{"enospc", func(f *Faults) { f.WriteErrProb = 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := NewFaults(42)
			tc.set(f)
			tier := newTestTier(t, TierOptions{Faults: f})
			tier.Spill("u", "k", testEntry(`{"big":"payload with enough bytes to tear"}`, frozen.Add(time.Hour)))
			tier.Flush()
			if e, ok := tier.Load("u", "k"); ok {
				// A torn write may truncate zero bytes (Intn can return
				// len); only identical bytes may ever be served.
				if string(e.Resp.Body) != `{"big":"payload with enough bytes to tear"}` {
					t.Fatalf("damaged entry served: %q", e.Resp.Body)
				}
			}
			fs := f.Stats()
			if fs.Torn+fs.Corrupted+fs.Failed == 0 {
				t.Fatal("fault injector never fired")
			}
			if tc.name == "enospc" {
				if m := tier.Metrics(); m.SpillErrors == 0 {
					t.Fatalf("ENOSPC not counted as spill error: %+v", m)
				}
			}
		})
	}
}

// --- store + tier integration ---

func TestStoreReadThroughPromotion(t *testing.T) {
	tier := newTestTier(t, TierOptions{})
	store := cache.New(cache.Options{Now: func() time.Time { return frozen }, Tier: tier})
	defer store.Close()

	store.Put("u", "k", testEntry(`{"v":1}`, frozen.Add(time.Hour)))
	tier.Flush()

	// A second store over the same tier simulates a restarted process:
	// memory empty, disk warm.
	store2 := cache.New(cache.Options{Now: func() time.Time { return frozen }, Tier: tier})
	defer store2.Close()
	e, fresh := store2.Get("u", "k")
	if !fresh || e == nil || string(e.Resp.Body) != `{"v":1}` {
		t.Fatalf("read-through miss: e=%v fresh=%v", e, fresh)
	}
	if m := store2.Metrics(); m.Hits != 1 || m.Misses != 0 {
		t.Fatalf("promotion not counted as hit: %+v", m)
	}
	// Promotion must not have re-spilled: still exactly one write.
	tier.Flush()
	if m := tier.Metrics(); m.Spilled != 1 {
		t.Fatalf("promotion echoed back to disk: %+v", m)
	}
	// And the promoted entry now serves from memory (no further tier loads).
	loadsBefore := tier.Metrics().Loads
	if _, fresh := store2.Get("u", "k"); !fresh {
		t.Fatal("promoted entry not in memory")
	}
	if tier.Metrics().Loads != loadsBefore {
		t.Fatal("memory hit still probed the disk tier")
	}
}

func TestStoreDropScopePropagatesToTier(t *testing.T) {
	tier := newTestTier(t, TierOptions{})
	store := cache.New(cache.Options{Now: func() time.Time { return frozen }, Tier: tier})
	defer store.Close()
	store.Put("u", "k", testEntry("x", frozen.Add(time.Hour)))
	tier.Flush()
	store.DropScope("u")
	if _, ok := tier.Load("u", "k"); ok {
		t.Fatal("dropped scope survived on disk")
	}
}

// --- snapshot manager ---

func testState() *State {
	return &State{
		SavedAt:          frozen,
		GraphFingerprint: "fp123",
		Users: []UserState{{
			Key:      "10.0.0.1",
			LastSeen: frozen,
			Exemplars: map[string]ExemplarState{
				"t:sig#1": {
					URIWilds:   []string{"api.example"},
					FieldWilds: map[string][]string{"query:v": {"7"}},
					Present:    map[string]bool{"query:v": true},
					Headers:    []httpmsg.Field{{Key: "User-Agent", Value: "test/1"}},
				},
			},
		}},
		Samples:    map[string]*httpmsg.Request{"t:sig#1": {Method: "GET", Scheme: "http", Host: "api.example", Path: "/x"}},
		Breakers:   map[string]BreakerState{"api.example": {State: "open", ConsecutiveFailures: 5, OpenForMs: 2000}},
		SigBackoff: map[string]BackoffState{"t:sig#2": {Consecutive: 3, RemainingMs: 1500}},
	}
}

func newTestManager(t *testing.T, opts ManagerOptions) *Manager {
	t.Helper()
	if opts.Now == nil {
		opts.Now = func() time.Time { return frozen }
	}
	m, err := NewManager(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	m := newTestManager(t, ManagerOptions{})
	if err := m.Save(testState()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	st, source, err := m.Load()
	if err != nil || st == nil || source != "current" {
		t.Fatalf("Load = (%v, %q, %v)", st, source, err)
	}
	if st.GraphFingerprint != "fp123" || len(st.Users) != 1 {
		t.Fatalf("state mismatch: %+v", st)
	}
	ex := st.Users[0].Exemplars["t:sig#1"]
	if len(ex.URIWilds) != 1 || ex.FieldWilds["query:v"][0] != "7" || !ex.Present["query:v"] {
		t.Fatalf("exemplar mismatch: %+v", ex)
	}
	if st.Breakers["api.example"].OpenForMs != 2000 || st.SigBackoff["t:sig#2"].Consecutive != 3 {
		t.Fatalf("resilience state mismatch: %+v", st)
	}
	if m.Snapshots() != 1 || m.Failures() != 0 {
		t.Fatalf("counters: %d/%d", m.Snapshots(), m.Failures())
	}
}

func TestSnapshotColdWhenEmpty(t *testing.T) {
	m := newTestManager(t, ManagerOptions{})
	st, source, err := m.Load()
	if st != nil || source != "" || err != nil {
		t.Fatalf("empty dir should be a clean cold start, got (%v, %q, %v)", st, source, err)
	}
}

// TestSnapshotLadder: a corrupt current snapshot falls back to the
// previous one; when both rungs are corrupt, Load reports the corruption
// so the caller can count restore_failed and start cold.
func TestSnapshotLadder(t *testing.T) {
	m := newTestManager(t, ManagerOptions{})
	first := testState()
	first.GraphFingerprint = "older"
	if err := m.Save(first); err != nil {
		t.Fatalf("Save 1: %v", err)
	}
	if err := m.Save(testState()); err != nil {
		t.Fatalf("Save 2: %v", err)
	}

	cur := filepath.Join(m.dir, SnapshotFile)
	data, _ := os.ReadFile(cur)
	data[len(data)-1] ^= 0xff
	os.WriteFile(cur, data, 0o644)

	st, source, err := m.Load()
	if err != nil || st == nil || source != "prev" {
		t.Fatalf("ladder fallback = (%v, %q, %v), want prev", st, source, err)
	}
	if st.GraphFingerprint != "older" {
		t.Fatalf("prev rung content wrong: %q", st.GraphFingerprint)
	}

	prev := filepath.Join(m.dir, SnapshotPrevFile)
	os.WriteFile(prev, []byte("garbage"), 0o644)
	st, _, err = m.Load()
	if st != nil || !IsCorrupt(err) {
		t.Fatalf("all-corrupt ladder = (%v, %v), want corrupt error", st, err)
	}
}

// TestSnapshotTruncatedFile: a truncation at any byte boundary (a torn
// write surviving a crash) decodes to an error, never a panic.
func TestSnapshotTruncatedFile(t *testing.T) {
	data, err := EncodeSnapshot(testState())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n += 7 {
		if _, err := DecodeSnapshot(data[:n]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", n, len(data))
		}
	}
}

func TestSnapshotFaultInjection(t *testing.T) {
	for _, tc := range []struct {
		name string
		set  func(*Faults)
	}{
		{"torn", func(f *Faults) { f.TornWriteProb = 1 }},
		{"corrupt", func(f *Faults) { f.CorruptProb = 1 }},
		{"enospc", func(f *Faults) { f.WriteErrProb = 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := NewFaults(7)
			tc.set(f)
			m := newTestManager(t, ManagerOptions{Faults: f})
			err := m.Save(testState())
			if tc.name == "enospc" {
				if err == nil || !errors.Is(err, ErrNoSpace) {
					t.Fatalf("Save under ENOSPC = %v", err)
				}
				if m.Failures() != 1 {
					t.Fatalf("failure not counted: %d", m.Failures())
				}
				return
			}
			// Torn/corrupt report success; damage must surface at Load as a
			// recoverable corruption (or, for a zero-byte tear, luck out
			// with an intact file — either is acceptable, crashing is not).
			st, _, lerr := m.Load()
			if lerr != nil && !IsCorrupt(lerr) {
				t.Fatalf("Load error not recoverable corruption: %v", lerr)
			}
			if st != nil && st.GraphFingerprint != "fp123" {
				t.Fatalf("damaged state served: %+v", st)
			}
		})
	}
}

// TestSnapshotAtomicity: a Save that fails (injected ENOSPC) must leave the
// previous snapshot untouched and readable.
func TestSnapshotAtomicity(t *testing.T) {
	f := NewFaults(11)
	m := newTestManager(t, ManagerOptions{Faults: f})
	if err := m.Save(testState()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	f.WriteErrProb = 1
	next := testState()
	next.GraphFingerprint = "newer"
	if err := m.Save(next); err == nil {
		t.Fatal("Save should fail under ENOSPC")
	}
	st, source, err := m.Load()
	if err != nil || st == nil || st.GraphFingerprint != "fp123" || source != "current" {
		t.Fatalf("previous snapshot damaged by failed save: (%v, %q, %v)", st, source, err)
	}
}

func TestManagerAge(t *testing.T) {
	now := frozen
	m := newTestManager(t, ManagerOptions{Now: func() time.Time { return now }})
	if m.Age() != -1 {
		t.Fatalf("age before any save = %v, want -1", m.Age())
	}
	if err := m.Save(testState()); err != nil {
		t.Fatal(err)
	}
	now = now.Add(90 * time.Second)
	if m.Age() != 90*time.Second {
		t.Fatalf("age = %v, want 90s", m.Age())
	}
}
