package persist

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"appx/internal/httpmsg"
)

// State is the snapshot payload: every piece of learned soft state the
// proxy would otherwise lose on restart. It deliberately uses plain data
// types (no proxy/resilience imports) so the wire format is owned here and
// the proxy adapts to it, not vice versa.
type State struct {
	// SavedAt anchors relative times (backoff windows, breaker open-for).
	SavedAt time.Time `json:"savedAt"`
	// GraphFingerprint identifies the signature graph this state was learned
	// against. A restored snapshot is only applied when it matches the
	// running graph — learned exemplars are meaningless against different
	// signatures.
	GraphFingerprint string `json:"graphFingerprint"`

	Users   []UserState                 `json:"users,omitempty"`
	Samples map[string]*httpmsg.Request `json:"samples,omitempty"`

	Breakers   map[string]BreakerState `json:"breakers,omitempty"`
	SigBackoff map[string]BackoffState `json:"sigBackoff,omitempty"`

	// Policy carries the prefetch policy's learned transition tables (the
	// markov model), when one is active. Like Users it is gated on the
	// graph fingerprint: transition counts between signatures of a
	// different graph are meaningless.
	Policy *PolicyState `json:"policy,omitempty"`
}

// PolicyState is the serialized form of a history-aware prefetch policy's
// model: per-user first-order transition tables plus the cross-user global
// table that seeds priors for users with thin history.
type PolicyState struct {
	// Name identifies the policy implementation that produced the tables.
	Name   string       `json:"name"`
	Users  []PolicyUser `json:"users,omitempty"`
	Global []PolicyRow  `json:"global,omitempty"`
}

// PolicyUser is one user's transition model.
type PolicyUser struct {
	Key      string      `json:"key"`
	LastSig  string      `json:"lastSig,omitempty"`
	LastAt   time.Time   `json:"lastAt,omitempty"`
	LastSeen time.Time   `json:"lastSeen,omitempty"`
	Rows     []PolicyRow `json:"rows,omitempty"`
}

// PolicyRow is the decayed successor counts observed after one signature.
type PolicyRow struct {
	From  string        `json:"from"`
	Total float64       `json:"total"`
	At    time.Time     `json:"at"`
	To    []PolicyCount `json:"to,omitempty"`
}

// PolicyCount is one (successor, decayed count) pair.
type PolicyCount struct {
	Sig string  `json:"sig"`
	N   float64 `json:"n"`
}

// UserState is one user's learned context.
type UserState struct {
	Key       string                   `json:"key"`
	LastSeen  time.Time                `json:"lastSeen"`
	Exemplars map[string]ExemplarState `json:"exemplars,omitempty"`
}

// ExemplarState is the serialized form of a learner exemplar: the captured
// run-time values of the most recent live instance of a signature.
type ExemplarState struct {
	URIWilds   []string            `json:"uriWilds,omitempty"`
	FieldWilds map[string][]string `json:"fieldWilds,omitempty"`
	Present    map[string]bool     `json:"present,omitempty"`
	Headers    []httpmsg.Field     `json:"headers,omitempty"`
}

// BreakerState is one origin host's circuit-breaker state. State uses the
// resilience package's string names ("closed", "open", "half-open").
type BreakerState struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutiveFailures,omitempty"`
	// OpenForMs is how long the breaker had been open at SavedAt, so the
	// restored breaker resumes its timeout mid-count instead of restarting.
	OpenForMs int64 `json:"openForMs,omitempty"`
}

// BackoffState is one signature's prefetch-failure backoff.
type BackoffState struct {
	Consecutive int `json:"consecutive"`
	// RemainingMs is how much suspension remained at SavedAt.
	RemainingMs int64 `json:"remainingMs,omitempty"`
}

// EncodeSnapshot envelopes a state for disk.
func EncodeSnapshot(st *State) ([]byte, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	return Encode(MagicSnapshot, payload), nil
}

// DecodeSnapshot validates and parses an enveloped snapshot. Malformed
// input of any shape returns a *DecodeError, never a panic.
func DecodeSnapshot(data []byte) (*State, error) {
	payload, err := Decode(MagicSnapshot, data)
	if err != nil {
		return nil, err
	}
	var st State
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, decodeErr("bad-payload", err)
	}
	return &st, nil
}

// Snapshot file names under the state directory.
const (
	SnapshotFile     = "snapshot.appx"
	SnapshotPrevFile = "snapshot.appx.prev"
	snapshotNewFile  = "snapshot.appx.new"
)

// ManagerOptions configures a snapshot Manager.
type ManagerOptions struct {
	// Now supplies time; defaults to time.Now.
	Now func() time.Time
	// Faults optionally injects disk faults into snapshot writes.
	Faults *Faults
}

// Manager owns the snapshot ladder in one state directory: Save rotates
// current → previous before installing the new snapshot, Load walks
// current → previous → cold. All methods are safe for concurrent use.
type Manager struct {
	dir  string
	opts ManagerOptions

	snapshots, failures atomic.Int64
	// lastSaved is the unix-nano time of the last successful Save (0 never).
	lastSaved atomic.Int64
}

// NewManager opens a snapshot manager rooted at dir.
func NewManager(dir string, opts ManagerOptions) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Manager{dir: dir, opts: opts}, nil
}

// Save writes a new snapshot, keeping the previous one as the ladder's
// second rung. The sequence — stage new, demote current to prev, promote
// new to current — means a crash at any instant leaves at least one
// complete snapshot reachable.
func (m *Manager) Save(st *State) error {
	data, err := EncodeSnapshot(st)
	if err != nil {
		m.failures.Add(1)
		return err
	}
	newPath := filepath.Join(m.dir, snapshotNewFile)
	curPath := filepath.Join(m.dir, SnapshotFile)
	prevPath := filepath.Join(m.dir, SnapshotPrevFile)
	if err := writeAtomic(newPath, data, m.opts.Faults); err != nil {
		m.failures.Add(1)
		return err
	}
	// Demote current; a missing current (first save, or a prior crash
	// between the renames) is fine.
	if err := os.Rename(curPath, prevPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		m.failures.Add(1)
		os.Remove(newPath)
		return err
	}
	if err := os.Rename(newPath, curPath); err != nil {
		m.failures.Add(1)
		os.Remove(newPath)
		return err
	}
	m.snapshots.Add(1)
	m.lastSaved.Store(m.opts.Now().UnixNano())
	return nil
}

// Load walks the recovery ladder: the current snapshot, then the previous
// one. Source names the rung that answered ("current", "prev"); a state
// directory with no snapshot at all returns (nil, "", nil) — a clean cold
// start, not an error. A corrupt current with an intact previous returns
// the previous and the current's error is folded into the walk (the caller
// sees source "prev" and err nil). Only when every rung is corrupt does
// Load return the first corruption error.
func (m *Manager) Load() (st *State, source string, err error) {
	var firstErr error
	for _, rung := range []struct {
		file, name string
	}{
		{SnapshotFile, "current"},
		{SnapshotPrevFile, "prev"},
	} {
		data, rerr := os.ReadFile(filepath.Join(m.dir, rung.file))
		if rerr != nil {
			continue
		}
		s, derr := DecodeSnapshot(data)
		if derr != nil {
			if firstErr == nil {
				firstErr = derr
			}
			continue
		}
		return s, rung.name, nil
	}
	return nil, "", firstErr
}

// Snapshots reports successful Save calls.
func (m *Manager) Snapshots() int64 { return m.snapshots.Load() }

// Failures reports failed Save calls.
func (m *Manager) Failures() int64 { return m.failures.Load() }

// LastSaved returns the time of the last successful Save (zero time when
// none has happened this process).
func (m *Manager) LastSaved() time.Time {
	n := m.lastSaved.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// Age reports time since the last successful Save, or -1 when none.
func (m *Manager) Age() time.Duration {
	ls := m.LastSaved()
	if ls.IsZero() {
		return -1
	}
	return m.opts.Now().Sub(ls)
}
