package persist

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkTierSpill measures the synchronous cost of handing an entry to
// the write-behind queue plus the worker's amortized write (Flush per N so
// the disk work is inside the measured window, as a deployment would pay
// it).
func BenchmarkTierSpill(b *testing.B) {
	tier, err := NewTier(b.TempDir(), TierOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer tier.Close()
	e := testEntry(`{"product":{"id":123,"name":"bench"}}`, time.Now().Add(time.Hour))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tier.Spill("user", fmt.Sprintf("key-%d", i%512), e)
	}
	tier.Flush()
}

// BenchmarkTierLoad measures one read-through probe: stat + read + decode +
// checksum verify.
func BenchmarkTierLoad(b *testing.B) {
	tier, err := NewTier(b.TempDir(), TierOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer tier.Close()
	e := testEntry(`{"product":{"id":123,"name":"bench"}}`, time.Now().Add(time.Hour))
	for i := 0; i < 512; i++ {
		tier.Spill("user", fmt.Sprintf("key-%d", i), e)
	}
	tier.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tier.Load("user", fmt.Sprintf("key-%d", i%512)); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkSnapshotSave measures a full snapshot write (encode + checksum +
// atomic rename ladder) for a mid-sized state.
func BenchmarkSnapshotSave(b *testing.B) {
	m, err := NewManager(b.TempDir(), ManagerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	st := testState()
	for i := 0; i < 100; i++ {
		st.Users = append(st.Users, st.Users[0])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Save(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvelopeDecode isolates the codec: header validation plus
// SHA-256 over the payload.
func BenchmarkEnvelopeDecode(b *testing.B) {
	data, err := EncodeSnapshot(testState())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(MagicSnapshot, data); err != nil {
			b.Fatal(err)
		}
	}
}
