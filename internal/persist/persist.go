// Package persist gives the proxy crash-safe durability: a file-backed
// cache tier below internal/cache and versioned snapshots of the learned
// soft state (signature graph fingerprint, learner exemplars, per-host
// breaker and per-signature backoff state).
//
// Every restart of the seed proxy threw away the prefetch cache, the
// learned run-time values, and the resilience state — at production scale a
// routine deploy becomes an origin flash crowd, exactly the overload the
// admission/governor layer exists to prevent. This package lets a
// restarted proxy resume near its trained hit ratio instead of cold.
//
// Crash-safety invariants:
//
//  1. Every on-disk artifact is a checksummed, versioned envelope; a torn
//     or corrupt file is detected at read time and reported as a
//     *DecodeError, never served and never a panic.
//  2. Writes are atomic: payloads land in a temp file in the same
//     directory and are renamed into place, so readers only ever observe
//     the previous complete file or the new complete file.
//  3. Recovery degrades, never crashes: corrupt snapshot → previous
//     snapshot → cold start. A cold start is always correct (the proxy
//     re-learns); restore is purely an optimization.
package persist

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Format constants. The envelope is:
//
//	[8]byte  magic (artifact kind + format generation)
//	uint32   version (big endian)
//	uint64   payload length (big endian)
//	[32]byte SHA-256 of payload
//	payload
const (
	// Version is the current payload schema version. Decoders reject
	// versions they do not understand (forward compatibility is a new
	// magic/version, never a silent reinterpretation).
	Version = 1

	headerLen = 8 + 4 + 8 + sha256.Size

	// maxPayload bounds decoded payloads so a corrupt length field cannot
	// drive a multi-gigabyte allocation.
	maxPayload = 1 << 30
)

// Magic values discriminate artifact kinds so a cache entry file can never
// be mistaken for a snapshot.
var (
	MagicSnapshot = [8]byte{'A', 'P', 'P', 'X', 'S', 'N', 'P', '1'}
	MagicEntry    = [8]byte{'A', 'P', 'P', 'X', 'E', 'N', 'T', '1'}
)

// DecodeError reports a malformed on-disk artifact. All decode failures —
// short file, bad magic, unsupported version, length mismatch, checksum
// mismatch, unparseable payload — are wrapped in it, so callers can treat
// "is this recoverable corruption?" as one errors.As check. Recovery is
// always: discard the artifact and proceed cold.
type DecodeError struct {
	// Reason is a short machine-stable cause: "short-header", "bad-magic",
	// "bad-version", "bad-length", "bad-checksum", "bad-payload".
	Reason string
	Err    error
}

func (e *DecodeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("persist: corrupt artifact (%s): %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("persist: corrupt artifact (%s)", e.Reason)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// decodeErr builds a DecodeError.
func decodeErr(reason string, err error) error {
	return &DecodeError{Reason: reason, Err: err}
}

// IsCorrupt reports whether err (anywhere in its chain) is a DecodeError —
// i.e. recoverable on-disk corruption rather than an environmental failure.
func IsCorrupt(err error) bool {
	var de *DecodeError
	return errors.As(err, &de)
}

// Encode wraps payload in the checksummed envelope for the given magic.
func Encode(magic [8]byte, payload []byte) []byte {
	out := make([]byte, headerLen+len(payload))
	copy(out[0:8], magic[:])
	binary.BigEndian.PutUint32(out[8:12], Version)
	binary.BigEndian.PutUint64(out[12:20], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[20:20+sha256.Size], sum[:])
	copy(out[headerLen:], payload)
	return out
}

// Decode validates the envelope and returns the payload. Every failure is a
// *DecodeError; Decode never panics on any input.
func Decode(magic [8]byte, data []byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, decodeErr("short-header", fmt.Errorf("%d bytes, want at least %d", len(data), headerLen))
	}
	if string(data[0:8]) != string(magic[:]) {
		return nil, decodeErr("bad-magic", fmt.Errorf("got %q", data[0:8]))
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != Version {
		return nil, decodeErr("bad-version", fmt.Errorf("version %d, support %d", v, Version))
	}
	n := binary.BigEndian.Uint64(data[12:20])
	if n > maxPayload || int(n) != len(data)-headerLen {
		return nil, decodeErr("bad-length", fmt.Errorf("declared %d, have %d", n, len(data)-headerLen))
	}
	payload := data[headerLen:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[20:20+sha256.Size]) {
		return nil, decodeErr("bad-checksum", nil)
	}
	return payload, nil
}

// writeAtomic writes data to path via a same-directory temp file and
// rename, so a crash at any instant leaves either the old complete file or
// the new complete file — never a half-written one. An optional fault
// injector perturbs the write for hostile-recovery tests.
func writeAtomic(path string, data []byte, f *Faults) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// On any failure below, remove the temp file; the target is untouched.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if f != nil {
		var ferr error
		data, ferr = f.perturb(data)
		if ferr != nil {
			return fail(ferr)
		}
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// readEnvelope reads and decodes one enveloped file. Missing files return
// (nil, os.ErrNotExist-wrapped error); corrupt files return *DecodeError.
func readEnvelope(magic [8]byte, path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(magic, data)
}
