package persist

import (
	"fmt"
	"math/rand"
	"sync"
)

// Faults is a deterministic disk-fault injector in the mold of
// internal/netem's network injector: seeded draws decide, per write,
// whether the bytes land intact, land torn (truncated mid-payload, as a
// power loss after rename would leave them), land silently corrupted (a
// flipped byte, as a failing disk would leave them), or fail outright with
// an ENOSPC-style error.
//
// Torn and corrupt writes report success to the writer — the damage is
// only discoverable at read time, which is exactly the property the
// recovery ladder must survive.
type Faults struct {
	mu  sync.Mutex
	rng *rand.Rand

	// TornWriteProb truncates the written payload at a random point and
	// reports success.
	TornWriteProb float64
	// CorruptProb flips one byte of the written payload and reports
	// success.
	CorruptProb float64
	// WriteErrProb fails the write with ErrNoSpace before any bytes land.
	WriteErrProb float64

	// Counters (read with Stats) record what was actually injected.
	torn, corrupted, failed int64
}

// ErrNoSpace is the injected "device full" failure.
var ErrNoSpace = fmt.Errorf("persist: injected write failure: no space left on device")

// NewFaults builds an injector with the given seed. Probabilities are set
// directly on the returned struct before use.
func NewFaults(seed int64) *Faults {
	return &Faults{rng: rand.New(rand.NewSource(seed))}
}

// SetProbs replaces the injection probabilities under the injector's lock,
// so chaos schedules can raise and lower fault rates while spill workers
// and snapshot loops are concurrently drawing from the injector.
func (f *Faults) SetProbs(torn, corrupt, writeErr float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.TornWriteProb, f.CorruptProb, f.WriteErrProb = torn, corrupt, writeErr
}

// FaultStats counts injected faults by kind.
type FaultStats struct {
	Torn, Corrupted, Failed int64
}

// Stats returns the injected-fault counters.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FaultStats{Torn: f.torn, Corrupted: f.corrupted, Failed: f.failed}
}

// perturb applies at most one fault to a pending write. It returns the
// (possibly damaged) bytes to write, or an error when the write must fail.
// The input slice is never modified; corruption copies first.
func (f *Faults) perturb(data []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch draw := f.rng.Float64(); {
	case draw < f.WriteErrProb:
		f.failed++
		return nil, ErrNoSpace
	case draw < f.WriteErrProb+f.TornWriteProb:
		f.torn++
		if len(data) == 0 {
			return data, nil
		}
		return data[:f.rng.Intn(len(data))], nil
	case draw < f.WriteErrProb+f.TornWriteProb+f.CorruptProb:
		f.corrupted++
		if len(data) == 0 {
			return data, nil
		}
		out := append([]byte(nil), data...)
		out[f.rng.Intn(len(out))] ^= 0xff
		return out, nil
	default:
		return data, nil
	}
}
