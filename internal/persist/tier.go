package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"appx/internal/cache"
	"appx/internal/httpmsg"
)

// EntryRecord is the on-disk form of one spilled cache entry. Scope and Key
// are stored redundantly (the file path already encodes their hashes) so a
// hash collision or a misplaced file can never serve the wrong payload:
// Load verifies them against the request before returning anything.
type EntryRecord struct {
	Scope     string            `json:"scope"`
	Key       string            `json:"key"`
	SigID     string            `json:"sig,omitempty"`
	Expires   time.Time         `json:"expires"`
	Refreshed bool              `json:"refreshed,omitempty"`
	Resp      *httpmsg.Response `json:"resp"`
	Req       *httpmsg.Request  `json:"req,omitempty"`
}

// EncodeEntry envelopes an entry record for disk.
func EncodeEntry(rec *EntryRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return Encode(MagicEntry, payload), nil
}

// DecodeEntry validates and parses an enveloped entry file. Malformed input
// of any shape returns a *DecodeError, never a panic.
func DecodeEntry(data []byte) (*EntryRecord, error) {
	payload, err := Decode(MagicEntry, data)
	if err != nil {
		return nil, err
	}
	var rec EntryRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, decodeErr("bad-payload", err)
	}
	if rec.Resp == nil {
		return nil, decodeErr("bad-payload", errNoResponse)
	}
	return &rec, nil
}

var errNoResponse = jsonError("entry record has no response")

type jsonError string

func (e jsonError) Error() string { return string(e) }

// TierOptions configures a disk tier.
type TierOptions struct {
	// MaxBytes is the disk budget (default 1 GiB); exceeding it deletes the
	// oldest entry files. <0 disables the budget.
	MaxBytes int64
	// QueueLen bounds the write-behind spill queue (default 1024). A full
	// queue drops the spill (counted) — the memory tier is never blocked on
	// the disk.
	QueueLen int
	// Now supplies time; defaults to time.Now.
	Now func() time.Time
	// Faults optionally injects disk faults (tests and drills).
	Faults *Faults
}

func (o TierOptions) filled() TierOptions {
	if o.MaxBytes == 0 {
		o.MaxBytes = 1 << 30
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// spillOp is one queued write-behind operation: either an entry to write
// or a Flush fence (closed by the worker when every earlier op is done).
type spillOp struct {
	rec   *EntryRecord
	fence chan struct{}
}

// Tier is the file-backed cache level below the in-memory store. Writes are
// write-behind (Spill enqueues; a single worker encodes, checksums, and
// atomically writes), reads are read-through (Load verifies and decodes, so
// corruption degrades to a miss). It implements cache.Tier.
//
// Layout: dir/<scopeHash>/<keyHash>.ent — one file per entry, one directory
// per scope, so dropping a user's scope is one RemoveAll.
type Tier struct {
	dir  string
	opts TierOptions

	q    chan spillOp
	stop chan struct{}
	done chan struct{}

	// closed gates Spill/Drop so late callers after Close are no-ops
	// instead of panics on the closed channel.
	closed atomic.Bool

	bytes atomic.Int64

	// Counters.
	spilled, spillDropped, spillErrors atomic.Int64
	loads, hits, loadErrors            atomic.Int64
	stale, evicted, dropped            atomic.Int64

	// evictMu serializes budget sweeps; bytes accounting itself is atomic.
	evictMu sync.Mutex
}

// NewTier opens (or creates) a disk tier rooted at dir, recovers the
// resident-byte count from the existing files, and starts the spill worker.
func NewTier(dir string, opts TierOptions) (*Tier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	t := &Tier{
		dir:  dir,
		opts: opts.filled(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	t.q = make(chan spillOp, t.opts.QueueLen)
	t.bytes.Store(t.walkBytes())
	go t.worker()
	return t, nil
}

// walkBytes sums the size of all entry files under the tier root.
func (t *Tier) walkBytes() int64 {
	var total int64
	filepath.WalkDir(t.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".ent" {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

func hashHex(s string, n int) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])[:n]
}

// entryPath maps scope/key to the entry file path.
func (t *Tier) entryPath(scope, key string) string {
	return filepath.Join(t.dir, hashHex(scope, 16), hashHex(scope+"\x00"+key, 24)+".ent")
}

// Spill enqueues a write-behind copy of the entry. It never blocks: when
// the queue is full (the disk cannot keep up) the spill is dropped and
// counted — losing a disk copy costs a future cold fetch, never latency
// now. Implements cache.Tier.
func (t *Tier) Spill(scope, key string, e *cache.Entry) {
	if t.closed.Load() || e == nil || e.Resp == nil {
		return
	}
	rec := &EntryRecord{
		Scope:     scope,
		Key:       key,
		SigID:     e.SigID,
		Expires:   e.Expires,
		Refreshed: e.Refreshed,
		Resp:      e.Resp,
		Req:       e.Req,
	}
	select {
	case t.q <- spillOp{rec: rec}:
	default:
		t.spillDropped.Add(1)
	}
}

// Load reads scope/key through the disk tier. It returns (entry, true) only
// for an intact, unexpired record whose stored scope and key match the
// request; corrupt files are deleted and counted, stale files are deleted,
// and every failure mode is a miss, never an error to the caller.
// Implements cache.Tier.
func (t *Tier) Load(scope, key string) (*cache.Entry, bool) {
	t.loads.Add(1)
	path := t.entryPath(scope, key)
	info, err := os.Stat(path)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.loadErrors.Add(1)
		return nil, false
	}
	rec, err := DecodeEntry(data)
	if err != nil {
		// Corrupt on disk: delete so the damage is paid for once.
		t.loadErrors.Add(1)
		t.removeFile(path, info.Size())
		return nil, false
	}
	if rec.Scope != scope || rec.Key != key {
		// Hash collision or a copied file: never serve it.
		t.loadErrors.Add(1)
		return nil, false
	}
	if !t.opts.Now().Before(rec.Expires) {
		t.stale.Add(1)
		t.removeFile(path, info.Size())
		return nil, false
	}
	t.hits.Add(1)
	return &cache.Entry{
		Resp:      rec.Resp,
		Req:       rec.Req,
		SigID:     rec.SigID,
		Expires:   rec.Expires,
		Refreshed: rec.Refreshed,
	}, true
}

// Drop removes a scope's directory — called when the memory tier evicts a
// user, so their spilled responses do not outlive them. Synchronous: user
// eviction is a privacy boundary, not a best-effort optimization.
// Implements cache.Tier.
func (t *Tier) Drop(scope string) {
	dir := filepath.Join(t.dir, hashHex(scope, 16))
	var freed int64
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			freed += info.Size()
		}
		t.dropped.Add(1)
		return nil
	})
	if err := os.RemoveAll(dir); err == nil {
		t.bytes.Add(-freed)
	}
}

// removeFile deletes one entry file and credits its bytes.
func (t *Tier) removeFile(path string, size int64) {
	if err := os.Remove(path); err == nil {
		t.bytes.Add(-size)
	}
}

// worker drains the spill queue: encode, checksum, write atomically,
// enforce the disk budget. One goroutine, so entry files are never written
// concurrently with themselves.
func (t *Tier) worker() {
	defer close(t.done)
	handle := func(op spillOp) {
		if op.fence != nil {
			close(op.fence)
			return
		}
		t.writeEntry(op.rec)
	}
	for {
		select {
		case op := <-t.q:
			handle(op)
		case <-t.stop:
			// Drain what was queued before Close so a graceful shutdown
			// flushes the write-behind backlog.
			for {
				select {
				case op := <-t.q:
					handle(op)
				default:
					return
				}
			}
		}
	}
}

// writeEntry performs one spill: envelope + atomic write + accounting.
func (t *Tier) writeEntry(rec *EntryRecord) {
	data, err := EncodeEntry(rec)
	if err != nil {
		t.spillErrors.Add(1)
		return
	}
	path := t.entryPath(rec.Scope, rec.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.spillErrors.Add(1)
		return
	}
	var old int64
	if info, err := os.Stat(path); err == nil {
		old = info.Size()
	}
	if err := writeAtomic(path, data, t.opts.Faults); err != nil {
		t.spillErrors.Add(1)
		return
	}
	// A fault injector may have torn the payload; account what actually
	// landed, not what we meant to write.
	written := int64(len(data))
	if info, err := os.Stat(path); err == nil {
		written = info.Size()
	}
	t.bytes.Add(written - old)
	t.spilled.Add(1)
	if t.opts.MaxBytes > 0 && t.bytes.Load() > t.opts.MaxBytes {
		t.evictOldest()
	}
}

// evictOldest deletes entry files oldest-modified-first until the tier is
// back under budget. Runs on the spill worker (or a test); the scan is
// O(files) but only triggered on budget breach.
func (t *Tier) evictOldest() {
	t.evictMu.Lock()
	defer t.evictMu.Unlock()
	type fileAge struct {
		path string
		size int64
		mod  time.Time
	}
	var files []fileAge
	filepath.WalkDir(t.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".ent" {
			return nil
		}
		if info, err := d.Info(); err == nil {
			files = append(files, fileAge{path: path, size: info.Size(), mod: info.ModTime()})
		}
		return nil
	})
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for _, f := range files {
		if t.bytes.Load() <= t.opts.MaxBytes {
			return
		}
		t.removeFile(f.path, f.size)
		t.evicted.Add(1)
	}
}

// Flush blocks until every spill enqueued before the call has been written.
// The fence rides the queue itself: a single FIFO worker closing it proves
// all earlier ops completed. Tests (and the kill/restart experiment) use
// it to make write-behind deterministic.
func (t *Tier) Flush() {
	if t.closed.Load() {
		return
	}
	fence := make(chan struct{})
	select {
	case t.q <- spillOp{fence: fence}:
	case <-t.stop:
		return
	}
	select {
	case <-fence:
	case <-t.done:
	}
}

// Close stops the spill worker after draining the queued backlog. The tier
// stays readable (Load) — Close only ends background writes.
func (t *Tier) Close() {
	if t.closed.CompareAndSwap(false, true) {
		close(t.stop)
		<-t.done
	}
}

// TierMetrics is an immutable snapshot of the tier's counters.
type TierMetrics struct {
	// Bytes is the resident on-disk footprint; Entries counts entry files.
	Bytes   int64
	Entries int
	// Spilled counts entries written; SpillDropped counts spills lost to a
	// full queue; SpillErrors counts write failures (ENOSPC, IO).
	Spilled, SpillDropped, SpillErrors int64
	// Loads counts read-through probes; Hits the ones that returned an
	// entry; LoadErrors corrupt or mismatched files; Stale expired files
	// deleted at read; Evicted budget deletions; Dropped scope deletions.
	Loads, Hits, LoadErrors int64
	Stale, Evicted, Dropped int64
}

// Metrics snapshots the tier's counters. Entries is counted by walking the
// directory (scrape-time only, not on any hot path).
func (t *Tier) Metrics() TierMetrics {
	entries := 0
	filepath.WalkDir(t.dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".ent" {
			entries++
		}
		return nil
	})
	return TierMetrics{
		Bytes:        t.bytes.Load(),
		Entries:      entries,
		Spilled:      t.spilled.Load(),
		SpillDropped: t.spillDropped.Load(),
		SpillErrors:  t.spillErrors.Load(),
		Loads:        t.loads.Load(),
		Hits:         t.hits.Load(),
		LoadErrors:   t.loadErrors.Load(),
		Stale:        t.stale.Load(),
		Evicted:      t.evicted.Load(),
		Dropped:      t.dropped.Load(),
	}
}

// Purge deletes every entry file (used when a restored snapshot proves
// incompatible with the running graph: stale spilled state must not outlive
// the decision to cold-start).
func (t *Tier) Purge() {
	t.evictMu.Lock()
	defer t.evictMu.Unlock()
	names, err := os.ReadDir(t.dir)
	if err != nil {
		return
	}
	for _, d := range names {
		os.RemoveAll(filepath.Join(t.dir, d.Name()))
	}
	t.bytes.Store(0)
}
