package stream

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*7)
	}
	return b
}

func TestPoolRoundTrip(t *testing.T) {
	p := NewPool(128)
	if p.ChunkBytes() != 128 {
		t.Fatalf("chunk = %d, want 128", p.ChunkBytes())
	}
	a := p.Get()
	b := p.Get()
	if len(a) != 128 || len(b) != 128 {
		t.Fatalf("chunk lengths %d/%d", len(a), len(b))
	}
	if got := p.Outstanding(); got != 2 {
		t.Fatalf("outstanding = %d, want 2", got)
	}
	p.Put(a)
	p.Put(b)
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d, want 0", got)
	}
	// Foreign slices must be rejected, not counted.
	p.Put(make([]byte, 64))
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("outstanding after foreign put = %d, want 0", got)
	}
}

func TestSpoolCaptureSmallBody(t *testing.T) {
	p := NewPool(32)
	s := NewSpool(p, 1<<20, nil)
	body := fill(100, 3) // spans 4 chunks of 32
	for i := 0; i < len(body); i += 7 {
		end := i + 7
		if end > len(body) {
			end = len(body)
		}
		if _, err := s.Append(body[i:end]); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	s.CloseWriter(nil)
	got, ok := s.Bytes()
	if !ok {
		t.Fatal("Bytes: !ok for small complete body")
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("capture mismatch: got %d bytes", len(got))
	}
	s.Discard()
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("leak: %d chunks outstanding after discard", n)
	}
}

func TestSpoolReaderSeesFullStream(t *testing.T) {
	p := NewPool(64)
	s := NewSpool(p, 1<<20, nil)
	body := fill(1000, 9)

	r, err := s.ReaderAt(0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		if _, err := io.Copy(&buf, r); err != nil {
			t.Errorf("copy: %v", err)
		}
		r.Close()
		done <- buf.Bytes()
	}()

	for i := 0; i < len(body); i += 33 {
		end := i + 33
		if end > len(body) {
			end = len(body)
		}
		if _, err := s.Append(body[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	s.CloseWriter(nil)
	if got := <-done; !bytes.Equal(got, body) {
		t.Fatalf("reader saw %d bytes, want %d", len(got), len(body))
	}
	s.Discard()
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("leak: %d chunks outstanding", n)
	}
}

func TestSpoolOverflowUncapturableButStreams(t *testing.T) {
	p := NewPool(64)
	s := NewSpool(p, 256, nil) // cap far below body size
	body := fill(4096, 1)

	r, err := s.ReaderAt(0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		io.Copy(&buf, r)
		r.Close()
	}()
	if _, err := s.Append(body); err != nil {
		t.Fatalf("append: %v", err)
	}
	s.CloseWriter(nil)
	wg.Wait()

	if !s.Overflowed() {
		t.Fatal("want overflow")
	}
	if _, ok := s.Bytes(); ok {
		t.Fatal("Bytes: ok for overflowed body")
	}
	if !bytes.Equal(buf.Bytes(), body) {
		t.Fatalf("reader saw %d bytes, want %d", buf.Len(), len(body))
	}
	s.Discard()
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("leak: %d chunks outstanding", n)
	}
}

// TestSpoolOverflowBackpressure proves a slow reader bounds the writer's
// retained window rather than the writer buffering the whole body.
func TestSpoolOverflowBackpressure(t *testing.T) {
	p := NewPool(64)
	cap := int64(256)
	s := NewSpool(p, cap, nil)
	r, err := s.ReaderAt(0)
	if err != nil {
		t.Fatal(err)
	}

	total := 64 << 10
	wrote := make(chan struct{})
	go func() {
		defer close(wrote)
		chunk := fill(1024, 5)
		for n := 0; n < total; n += len(chunk) {
			if _, err := s.Append(chunk); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			// The retained window must stay bounded: cap (or 2 chunks)
			// plus one chunk of slack for the in-progress append.
			if ret := s.Size() - readerOff(r); ret > cap+3*64 && s.Overflowed() {
				// Retained relative to the reader can lag; check the
				// spool's own window instead.
				_ = ret
			}
		}
		s.CloseWriter(nil)
	}()

	h := sha256.New()
	buf := make([]byte, 97)
	var got int
	for {
		n, err := r.Read(buf)
		h.Write(buf[:n])
		got += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		// A slow reader must never observe the spool retaining much more
		// than the overflow window.
		if ret := s.retained(); ret > cap+2*64 {
			t.Fatalf("retained window %d exceeds bound %d", ret, cap+2*64)
		}
	}
	<-wrote
	r.Close()
	if got != total {
		t.Fatalf("read %d bytes, want %d", got, total)
	}
	s.Discard()
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("leak: %d chunks outstanding", n)
	}
}

// retained exposes the retained window size for tests.
func (s *Spool) retained() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retainedLocked()
}

func readerOff(r *Reader) int64 {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return r.off
}

func TestSpoolOverflowNoReadersDropsData(t *testing.T) {
	p := NewPool(64)
	s := NewSpool(p, 128, nil)
	// No readers: an overflowed append must not block and must not retain
	// more than one trailing chunk.
	if _, err := s.Append(fill(8192, 2)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if got := s.retained(); got > 64 {
		t.Fatalf("retained %d with no readers, want <= one chunk", got)
	}
	s.CloseWriter(nil)
	s.Discard()
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("leak: %d chunks outstanding", n)
	}
}

func TestReaderAtTrimmedOffset(t *testing.T) {
	p := NewPool(64)
	s := NewSpool(p, 64, nil)
	s.Append(fill(1024, 4)) // overflows; no readers → leading chunks dropped
	if _, err := s.ReaderAt(0); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("ReaderAt(0) err = %v, want ErrTrimmed", err)
	}
	s.CloseWriter(nil)
	s.Discard()
	if _, err := s.ReaderAt(0); !errors.Is(err, ErrReleased) {
		t.Fatalf("ReaderAt after release err = %v, want ErrReleased", err)
	}
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("leak: %d chunks", n)
	}
}

func TestReaderLimitAndOffset(t *testing.T) {
	p := NewPool(16)
	s := NewSpool(p, 1<<20, nil)
	body := fill(100, 8)
	s.Append(body)
	s.CloseWriter(nil)

	r, err := s.ReaderAt(10)
	if err != nil {
		t.Fatal(err)
	}
	r.Limit(25)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body[10:35]) {
		t.Fatalf("ranged read mismatch: got %d bytes", len(got))
	}
	r.Close()

	// WriteTo honours the same window.
	r2, err := s.ReaderAt(90)
	if err != nil {
		t.Fatal(err)
	}
	r2.Limit(100) // beyond EOF: truncated at stream end
	var buf bytes.Buffer
	n, err := r2.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || !bytes.Equal(buf.Bytes(), body[90:]) {
		t.Fatalf("WriteTo = %d bytes, want 10", n)
	}
	r2.Close()
	s.Discard()
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("leak: %d chunks", n)
	}
}

func TestSpoolWriterError(t *testing.T) {
	p := NewPool(64)
	s := NewSpool(p, 1<<20, nil)
	s.Append(fill(10, 1))
	boom := errors.New("origin reset")
	s.CloseWriter(boom)

	if _, ok := s.Bytes(); ok {
		t.Fatal("Bytes ok after writer error")
	}
	r, err := s.ReaderAt(0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _ := r.Read(buf)
	if n != 10 {
		t.Fatalf("read %d buffered bytes, want 10", n)
	}
	if _, err := r.Read(buf); !errors.Is(err, boom) {
		t.Fatalf("read err = %v, want writer error", err)
	}
	r.Close()
	s.Discard()
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("leak: %d chunks", n)
	}
}

func TestSpoolEmptyBody(t *testing.T) {
	p := NewPool(64)
	s := NewSpool(p, 1<<20, nil)
	s.CloseWriter(nil)
	b, ok := s.Bytes()
	if !ok || len(b) != 0 {
		t.Fatalf("empty body: ok=%v len=%d", ok, len(b))
	}
	if s.FirstByte().IsZero() || s.LastByte().IsZero() {
		t.Fatal("timestamps not stamped on empty close")
	}
	s.Discard()
}

func TestSpoolTimestamps(t *testing.T) {
	var tick int64
	now := func() time.Time { tick++; return time.Unix(0, tick) }
	s := NewSpool(NewPool(64), 1<<20, now)
	s.Append([]byte("ab"))
	s.Append([]byte("cd"))
	s.CloseWriter(nil)
	if fb, lb := s.FirstByte(), s.LastByte(); !fb.Before(lb) {
		t.Fatalf("first=%v last=%v, want first < last", fb, lb)
	}
	s.Discard()
}

// TestSpoolConcurrentReaders runs many readers attached at random offsets
// against one writer under -race; every reader must see exactly the stream
// suffix from its offset.
func TestSpoolConcurrentReaders(t *testing.T) {
	p := NewPool(128)
	s := NewSpool(p, 1<<20, nil)
	body := fill(32<<10, 6)

	const readers = 8
	rng := rand.New(rand.NewSource(1))
	offs := make([]int64, readers)
	for i := range offs {
		offs[i] = int64(rng.Intn(4096))
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		off := offs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := s.ReaderAt(off)
			if err != nil {
				errs <- err
				return
			}
			defer r.Close()
			got, err := io.ReadAll(r)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, body[off:]) {
				errs <- fmt.Errorf("reader at %d: got %d bytes, want %d", off, len(got), len(body)-int(off))
			}
		}()
	}

	for i := 0; i < len(body); i += 257 {
		end := i + 257
		if end > len(body) {
			end = len(body)
		}
		if _, err := s.Append(body[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	s.CloseWriter(nil)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s.Discard()
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("leak: %d chunks outstanding", n)
	}
}

// TestSpoolAbortReleasesChunks covers the early-abort path: a reader
// detaches mid-stream and the writer errors out; the pool must drain to
// zero once the owner discards.
func TestSpoolAbortReleasesChunks(t *testing.T) {
	p := NewPool(64)
	s := NewSpool(p, 1<<20, nil)
	r, _ := s.ReaderAt(0)
	s.Append(fill(500, 7))
	r.Close() // client went away
	s.CloseWriter(errors.New("aborted"))
	s.Discard()
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("leak: %d chunks outstanding after abort", n)
	}
}

func BenchmarkSpoolAppendRead(b *testing.B) {
	p := NewPool(DefaultChunkBytes)
	body := fill(256<<10, 3)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSpool(p, 1<<20, nil)
		r, _ := s.ReaderAt(0)
		go func() {
			for off := 0; off < len(body); off += 8192 {
				end := off + 8192
				if end > len(body) {
					end = len(body)
				}
				s.Append(body[off:end])
			}
			s.CloseWriter(nil)
		}()
		if _, err := r.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
		r.Close()
		s.Discard()
	}
	if n := p.Outstanding(); n != 0 {
		b.Fatalf("leak: %d chunks", n)
	}
}
